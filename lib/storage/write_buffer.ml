open Sim

type config = {
  capacity_blocks : int;
  writeback_delay : Time.span;
  refresh_on_rewrite : bool;
}

let default_config =
  { capacity_blocks = Units.mib / 512; writeback_delay = Time.span_s 30.0;
    refresh_on_rewrite = true }

type t = {
  cfg : config;
  deadlines : (int, Time.t) Hashtbl.t;  (* block -> current deadline *)
  (* Deadline-ordered queue with lazy invalidation: an entry is stale when
     the table disagrees with its timestamp (refreshed or removed). *)
  queue : int Event_queue.t;
  mutable absorbed : int;
  mutable cancelled : int;
  mutable admitted : int;
}

let create cfg =
  if cfg.capacity_blocks < 0 then invalid_arg "Write_buffer.create: negative capacity";
  {
    cfg;
    deadlines = Hashtbl.create 1024;
    queue = Event_queue.create ();
    absorbed = 0;
    cancelled = 0;
    admitted = 0;
  }

let config t = t.cfg
let size t = Hashtbl.length t.deadlines
let capacity t = t.cfg.capacity_blocks
let is_full t = size t >= capacity t
let mem t ~block = Hashtbl.mem t.deadlines block

type admit = Absorbed | Admitted | Needs_eviction

let p_absorbed = Probe.counter "storage.write_buffer.absorbed"
let p_admitted = Probe.counter "storage.write_buffer.admitted"
let p_cancelled = Probe.counter "storage.write_buffer.cancelled"

(* A deadline refresh leaves the block's previous queue entry behind
   (lazy invalidation), so refresh-heavy hot-block workloads would grow
   the queue without bound.  When stale entries outnumber live ones,
   rebuild the queue: pop everything in delivery order and re-add only
   the entries the table still agrees with.  Popped order is preserved,
   so same-deadline FIFO ties break exactly as before — delivery is
   unchanged, and the cost is amortized O(1) per enqueue.  (The queue is
   Heap-kind, which accepts re-adds at any instant.) *)
let compact t =
  let rec collect acc =
    match Event_queue.pop t.queue with
    | None -> List.rev acc
    | Some (at, block) -> (
      match Hashtbl.find_opt t.deadlines block with
      | Some d when Time.equal d at -> collect ((at, block) :: acc)
      | Some _ | None -> collect acc)
  in
  List.iter
    (fun (at, block) -> ignore (Event_queue.add t.queue ~at block))
    (collect [])

let enqueue t ~block ~deadline =
  Hashtbl.replace t.deadlines block deadline;
  ignore (Event_queue.add t.queue ~at:deadline block);
  let pending = Event_queue.length t.queue in
  if pending > 16 && pending > 2 * Hashtbl.length t.deadlines then compact t

let write t ~now ~block =
  (* Zero capacity is a true pass-through: nothing is ever admitted, so
     there is nothing to absorb or refresh either — don't touch the
     tables, just tell the caller to write through. *)
  if t.cfg.capacity_blocks = 0 then Needs_eviction
  else
  match Hashtbl.find_opt t.deadlines block with
  | Some _ ->
    t.absorbed <- t.absorbed + 1;
    Probe.incr p_absorbed;
    if t.cfg.refresh_on_rewrite then
      enqueue t ~block ~deadline:(Time.add now t.cfg.writeback_delay);
    Absorbed
  | None ->
    if is_full t then Needs_eviction
    else begin
      t.admitted <- t.admitted + 1;
      Probe.incr p_admitted;
      enqueue t ~block ~deadline:(Time.add now t.cfg.writeback_delay);
      Admitted
    end

let remove t ~block =
  if Hashtbl.mem t.deadlines block then begin
    Hashtbl.remove t.deadlines block;
    t.cancelled <- t.cancelled + 1;
    Probe.incr p_cancelled;
    true
  end
  else false

(* Pop queue entries; skip entries whose table deadline disagrees (stale). *)
let rec pop_live t ~keep_if =
  match Event_queue.peek_time t.queue with
  | None -> None
  | Some at ->
    if not (keep_if at) then None
    else begin
      match Event_queue.pop t.queue with
      | None -> None
      | Some (at, block) -> begin
        match Hashtbl.find_opt t.deadlines block with
        | Some d when Time.equal d at ->
          Hashtbl.remove t.deadlines block;
          Some block
        | Some _ | None -> pop_live t ~keep_if
      end
    end

let take_expired ?(limit = max_int) t ~now =
  let rec go n acc =
    if n >= limit then List.rev acc
    else begin
      match pop_live t ~keep_if:(fun at -> Time.( <= ) at now) with
      | Some block -> go (n + 1) (block :: acc)
      | None -> List.rev acc
    end
  in
  go 0 []

(* Find the earliest live entry without removing it. *)
let rec peek_live t =
  match Event_queue.pop t.queue with
  | None -> None
  | Some (at, block) -> begin
    match Hashtbl.find_opt t.deadlines block with
    | Some d when Time.equal d at ->
      (* Re-insert: we only wanted to look. *)
      ignore (Event_queue.add t.queue ~at block);
      Some (at, block)
    | Some _ | None -> peek_live t
  end

let oldest t = Option.map snd (peek_live t)

let take t ~block =
  if Hashtbl.mem t.deadlines block then begin
    Hashtbl.remove t.deadlines block;
    true
  end
  else false

let next_deadline t = Option.map fst (peek_live t)

let readmit t ~now ~block =
  if is_full t || Hashtbl.mem t.deadlines block then false
  else begin
    enqueue t ~block ~deadline:(Time.add now t.cfg.writeback_delay);
    true
  end

let drain t =
  let rec go acc =
    match pop_live t ~keep_if:(fun _ -> true) with
    | Some block -> go (block :: acc)
    | None -> List.rev acc
  in
  go []

let pending_entries t = Event_queue.length t.queue

let absorbed_writes t = t.absorbed
let cancelled_blocks t = t.cancelled
let admitted_blocks t = t.admitted

let reset_counters t =
  t.absorbed <- 0;
  t.cancelled <- 0;
  t.admitted <- 0
