(* This module IS [Storage.Array]; rebind the name so the [a.(i)]
   indexing operators (which desugar to [Array.get]) hit the stdlib. *)
module Array = Stdlib.Array
module A = Stdlib.Array
open Sim

let log_src = Logs.Src.create "ssmc.storage.array" ~doc:"Striped multi-card array"

module Log = (val Logs.src_log log_src)

let p_flush_groups = Probe.counter "storage.array.flush_card_groups"

type t = {
  striping : Striping.policy;
  cards : Manager.t A.t;
  front : Front_cache.t option;  (* [None] = cache off (capacity 0). *)
  front_capacity : int;
  dram : Device.Dram.t;
  engine : Engine.t;
  mutable next_global : int;
}

let ncards t = A.length t.cards
let striping t = t.striping
let manager t i = t.cards.(i)
let dram t = t.dram
let engine t = t.engine
let block_bytes t = Manager.block_bytes t.cards.(0)
let front_cache_capacity t = t.front_capacity

let card_of_block t b = Striping.card_of t.striping ~ncards:(ncards t) ~block:b
let local_of_block t b = Striping.local_of t.striping ~ncards:(ncards t) ~block:b

let create ?(front_cache_blocks = 0) ~striping cfg ~engine ~flashes ~dram =
  let n = A.length flashes in
  (match Striping.validate striping ~ncards:n with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Array.create: " ^ msg));
  if front_cache_blocks < 0 then
    invalid_arg "Array.create: negative front cache capacity";
  let sector = Device.Flash.sector_bytes flashes.(0) in
  A.iter
    (fun f ->
      if Device.Flash.sector_bytes f <> sector then
        invalid_arg "Array.create: cards must share a sector size")
    flashes;
  let cards =
    A.init n (fun i -> Manager.create ~card:i cfg ~engine ~flash:flashes.(i) ~dram)
  in
  {
    striping;
    cards;
    front =
      (if front_cache_blocks = 0 then None
       else Some (Front_cache.create ~capacity_blocks:front_cache_blocks));
    front_capacity = front_cache_blocks;
    dram;
    engine;
    next_global = 0;
  }

let capacity_blocks t =
  A.fold_left (fun acc m -> acc + Manager.capacity_blocks m) 0 t.cards

(* --- Client operations ----------------------------------------------------

   Every operation is routing arithmetic plus the card's own code path; the
   only array-level state is the front cache and the allocation cursor. *)

let alloc t =
  let g = t.next_global in
  t.next_global <- g + 1;
  let c = card_of_block t g in
  let l = Manager.alloc t.cards.(c) in
  (* Dense global allocation + dense per-card allocation make the local
     handle a pure function of the global one; everything else here (and
     table-free crash recovery) rests on that. *)
  if l <> local_of_block t g then
    Fmt.failwith "Array.alloc: card %d handed out local %d, expected %d" c l
      (local_of_block t g);
  g

let invalidate_front t b =
  match t.front with None -> () | Some fc -> Front_cache.invalidate fc ~key:b

let write_block_at t ~at b =
  invalidate_front t b;
  Manager.write_block_at t.cards.(card_of_block t b) ~at (local_of_block t b)

let write_block t b =
  let now = Engine.now t.engine in
  Time.diff (write_block_at t ~at:now b) now

let read_block_at ?bytes t ~at b =
  let c = card_of_block t b in
  let l = local_of_block t b in
  match t.front with
  | None -> Manager.read_block_at ?bytes t.cards.(c) ~at l
  | Some fc ->
    if not (Manager.block_exists t.cards.(c) l) then
      (* Let the card raise its usual error without polluting the cache. *)
      Manager.read_block_at ?bytes t.cards.(c) ~at l
    else begin
      match Front_cache.find_or_insert fc ~key:b with
      | Front_cache.Hit ->
        let bytes = Option.value bytes ~default:(block_bytes t) in
        Time.add at (Device.Dram.read t.dram ~bytes)
      | Front_cache.Miss -> Manager.read_block_at ?bytes t.cards.(c) ~at l
    end

let read_block ?bytes t b =
  let now = Engine.now t.engine in
  Time.diff (read_block_at ?bytes t ~at:now b) now

let free_block t b =
  invalidate_front t b;
  Manager.free_block t.cards.(card_of_block t b) (local_of_block t b)

let load_cold t b =
  Manager.load_cold t.cards.(card_of_block t b) (local_of_block t b)

let flush_all t =
  (* One contiguous drain per card — flushed sectors are grouped by
     destination card, never interleaved across cards — and the drains
     overlap in simulated time (each card programs its own banks), so the
     caller's stall is the slowest card's. *)
  let now = Engine.now t.engine in
  let groups = ref 0 in
  let worst =
    A.fold_left
      (fun worst m ->
        let span = Manager.flush_all m in
        if Time.span_to_us span > 0.0 then incr groups;
        Time.max_span worst span)
      Time.span_zero t.cards
  in
  if !groups > 0 then begin
    Probe.add p_flush_groups !groups;
    if Probe.timeline_enabled () then
      Probe.span ~name:"array.flush" ~cat:"storage"
        ~args:[ ("card_groups", string_of_int !groups) ]
        ~start:now ~finish:(Time.add now worst) ()
  end;
  worst

(* --- Introspection -------------------------------------------------------- *)

let card_stats t i = Manager.stats t.cards.(i)
let wear_evenness t i = Manager.wear_evenness t.cards.(i)
let front_cache_hits t = match t.front with None -> 0 | Some fc -> Front_cache.hits fc
let front_cache_misses t =
  match t.front with None -> 0 | Some fc -> Front_cache.misses fc

let stats t =
  let sum f = A.fold_left (fun acc m -> acc + f (Manager.stats m)) 0 t.cards in
  let writes = sum (fun s -> s.Manager.client_writes) in
  let flushed = sum (fun s -> s.Manager.blocks_flushed) in
  let cleaned = sum (fun s -> s.Manager.blocks_cleaned) in
  {
    Manager.client_writes = writes;
    (* Front-cache hits never reach a card, but they are client reads. *)
    client_reads = sum (fun s -> s.Manager.client_reads) + front_cache_hits t;
    absorbed_writes = sum (fun s -> s.Manager.absorbed_writes);
    cancelled_blocks = sum (fun s -> s.Manager.cancelled_blocks);
    blocks_flushed = flushed;
    blocks_cleaned = cleaned;
    cold_loads = sum (fun s -> s.Manager.cold_loads);
    hot_retained = sum (fun s -> s.Manager.hot_retained);
    cleanings = sum (fun s -> s.Manager.cleanings);
    dirty_blocks = sum (fun s -> s.Manager.dirty_blocks);
    free_segments = sum (fun s -> s.Manager.free_segments);
    retired_segments = sum (fun s -> s.Manager.retired_segments);
    live_blocks = sum (fun s -> s.Manager.live_blocks);
    write_reduction =
      (if writes = 0 then 0.0
       else 1.0 -. (float_of_int flushed /. float_of_int writes));
    write_amplification =
      Cleaner.write_amplification ~blocks_written:(flushed + cleaned)
        ~blocks_flushed:flushed;
  }

let segment_of_block t b =
  Manager.segment_of_block t.cards.(card_of_block t b) (local_of_block t b)

let block_is_dirty t b =
  Manager.block_is_dirty t.cards.(card_of_block t b) (local_of_block t b)

let block_exists t b =
  b >= 0
  && Manager.block_exists t.cards.(card_of_block t b) (local_of_block t b)

let reset_traffic t =
  A.iter Manager.reset_traffic t.cards;
  match t.front with None -> () | Some fc -> Front_cache.reset_counters fc

(* --- Crash recovery ------------------------------------------------------- *)

let crash_and_remount t =
  let n = ncards t in
  (* Every card remounts from its own headers; the scans overlap in
     simulated time (independent devices), so recovery latency is the
     slowest card's scan, not the sum. *)
  let worst = ref Time.span_zero in
  let scanned = ref 0 and live = ref 0 and stale = ref 0 and lost = ref 0 in
  let cards =
    A.map
      (fun m ->
        let fresh, span, r = Manager.crash_and_remount m in
        worst := Time.max_span !worst span;
        scanned := !scanned + r.Manager.sectors_scanned;
        live := !live + r.Manager.live_recovered;
        stale := !stale + r.Manager.stale_discarded;
        lost := !lost + r.Manager.buffered_lost;
        fresh)
      t.cards
  in
  (* The front cache was DRAM: gone.  Reuse the object (counters are
     cumulative traffic, reset via [reset_traffic]) with residency wiped. *)
  (match t.front with None -> () | Some fc -> Front_cache.clear fc);
  (* Rebuild the global cursor: the highest surviving global handle is on
     whichever card kept the deepest local cursor. *)
  let next_global =
    A.to_list cards
    |> List.mapi (fun c m ->
           let nb = Manager.next_fresh_block m in
           if nb = 0 then 0
           else Striping.global_of t.striping ~ncards:n ~card:c ~local:(nb - 1) + 1)
    |> List.fold_left max 0
  in
  (* Cards that lost never-flushed tail allocations restart their local
     cursor short of the global one; pad them so local handles stay a pure
     function of global ones. *)
  A.iteri
    (fun c m ->
      Manager.reserve_blocks m
        ~next:(Striping.locals_before t.striping ~ncards:n ~card:c next_global))
    cards;
  let fresh = { t with cards; next_global } in
  let report =
    {
      Manager.sectors_scanned = !scanned;
      live_recovered = !live;
      stale_discarded = !stale;
      buffered_lost = !lost;
    }
  in
  Log.info (fun m ->
      m "array remount (%d cards): %a" n Manager.pp_remount_report report);
  (fresh, !worst, report)
