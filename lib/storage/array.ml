(* This module IS [Storage.Array]; rebind the name so the [a.(i)]
   indexing operators (which desugar to [Array.get]) hit the stdlib. *)
module Array = Stdlib.Array
module A = Stdlib.Array
open Sim

let log_src = Logs.Src.create "ssmc.storage.array" ~doc:"Striped multi-card array"

module Log = (val Logs.src_log log_src)

let p_flush_groups = Probe.counter "storage.array.flush_card_groups"
let p_parity_writes = Probe.counter "storage.array.parity_writes"
let p_reconstructed = Probe.counter "storage.array.reconstructed_reads"
let p_rebuilt = Probe.counter "storage.array.rebuilt_blocks"

(* What the array remembers about each local slot of a card that is out
   (or being rebuilt): enough to answer reads/writes for the slot and to
   know what rebuild must reconstruct, nothing more.  [Data_slot] means
   the newest version of the block is recoverable from the survivors
   (parity XOR data mates); [Blank_slot] means the handle existed but was
   never written; [Absent] means no such handle (freed, or lost to a
   crash while the card was out). *)
type slot_status = Absent | Blank_slot | Data_slot

type degraded = {
  missing : int;
  mutable st : slot_status A.t;  (* grows as allocation continues *)
  mutable st_len : int;
}

type rebuilding = {
  r_card : int;
  r_st : slot_status A.t;
  r_len : int;  (* slots the rebuild covers; later allocs are live on the fresh manager *)
  mutable r_cursor : int;  (* slots below this are already rebuilt *)
  mutable r_ev : Event_queue.handle option;
  r_started : Time.t;
}

type health_state = Healthy | Degraded of degraded | Rebuilding of rebuilding

type t = {
  striping : Striping.policy;
  config : Manager.config;  (* to mint a fresh manager on reinsert *)
  cards : Manager.t A.t;
  front : Front_cache.t option;  (* [None] = cache off (capacity 0). *)
  front_capacity : int;
  dram : Device.Dram.t;
  engine : Engine.t;
  mutable next_global : int;
  mutable health : health_state;
  (* Parity/degraded traffic, counted at the array layer so client-visible
     stats can subtract redundancy maintenance from the per-card sums. *)
  mutable parity_writes : int;
  mutable parity_reads : int;
  mutable parity_cold : int;
  mutable degraded_writes : int;
  mutable degraded_reads : int;
  mutable degraded_cold : int;
  mutable reconstructed_reads : int;
  mutable rebuilt_blocks : int;
  mutable last_rebuild : Time.span option;
}

let ncards t = A.length t.cards
let striping t = t.striping
let manager t i = t.cards.(i)
let dram t = t.dram
let engine t = t.engine
let block_bytes t = Manager.block_bytes t.cards.(0)
let front_cache_capacity t = t.front_capacity

let card_of_block t b = Striping.card_of t.striping ~ncards:(ncards t) ~block:b
let local_of_block t b = Striping.local_of t.striping ~ncards:(ncards t) ~block:b

let create ?(front_cache_blocks = 0) ~striping cfg ~engine ~flashes ~dram =
  let n = A.length flashes in
  (match Striping.validate striping ~ncards:n with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Array.create: " ^ msg));
  if front_cache_blocks < 0 then
    invalid_arg "Array.create: negative front cache capacity";
  let sector = Device.Flash.sector_bytes flashes.(0) in
  A.iter
    (fun f ->
      if Device.Flash.sector_bytes f <> sector then
        invalid_arg "Array.create: cards must share a sector size")
    flashes;
  let cards =
    A.init n (fun i -> Manager.create ~card:i cfg ~engine ~flash:flashes.(i) ~dram)
  in
  {
    striping;
    config = cfg;
    cards;
    front =
      (if front_cache_blocks = 0 then None
       else Some (Front_cache.create ~capacity_blocks:front_cache_blocks));
    front_capacity = front_cache_blocks;
    dram;
    engine;
    next_global = 0;
    health = Healthy;
    parity_writes = 0;
    parity_reads = 0;
    parity_cold = 0;
    degraded_writes = 0;
    degraded_reads = 0;
    degraded_cold = 0;
    reconstructed_reads = 0;
    rebuilt_blocks = 0;
    last_rebuild = None;
  }

let capacity_blocks t =
  A.fold_left (fun acc m -> acc + Manager.capacity_blocks m) 0 t.cards

(* --- Parity plumbing ------------------------------------------------------ *)

let parity_slot t b = Striping.parity_slot t.striping ~ncards:(ncards t) ~block:b

(* Does the manager hold actual content for this local — a buffered copy
   or a flash copy?  (A Blank block exists but contributes nothing to
   parity and costs nothing to read.) *)
let has_data m l =
  Manager.block_exists m l
  && (Manager.block_is_dirty m l || Manager.segment_of_block m l <> None)

(* Is [(card, local)] currently served by the array's degraded
   bookkeeping rather than the card's manager?  Under [Degraded] every
   slot the missing card ever held; under [Rebuilding] only the
   not-yet-reconstructed window — rebuilt slots (and slots allocated
   after the reinsert) live on the fresh manager. *)
let slot_pending t c l =
  match t.health with
  | Healthy -> false
  | Degraded d -> c = d.missing && l < d.st_len
  | Rebuilding r -> c = r.r_card && l >= r.r_cursor && l < r.r_len

let pending_status t l =
  match t.health with
  | Degraded d -> d.st.(l)
  | Rebuilding r -> r.r_st.(l)
  | Healthy -> assert false

let set_pending_status t l v =
  match t.health with
  | Degraded d -> d.st.(l) <- v
  | Rebuilding r -> r.r_st.(l) <- v
  | Healthy -> assert false

let degraded_push (d : degraded) status =
  if d.st_len = A.length d.st then begin
    let bigger = A.make (max 64 (2 * A.length d.st)) Absent in
    A.blit d.st 0 bigger 0 d.st_len;
    d.st <- bigger
  end;
  d.st.(d.st_len) <- status;
  d.st_len <- d.st_len + 1

(* --- Client operations ----------------------------------------------------

   Every operation is routing arithmetic plus the card's own code path;
   the array-level state is the front cache, the allocation cursor, and
   (under parity) the health machine above. *)

let alloc t =
  let g = t.next_global in
  (* Under parity, opening a stripe allocates its parity strip first, so
     every per-card cursor stays a pure function of the global cursor. *)
  (match Striping.parity_prealloc t.striping ~ncards:(ncards t) ~block:g with
  | None -> ()
  | Some (pc, first_local, count) -> (
    match t.health with
    | Degraded d when d.missing = pc ->
      for _ = 1 to count do
        degraded_push d Blank_slot
      done
    | _ ->
      for i = 0 to count - 1 do
        let l = Manager.alloc t.cards.(pc) in
        if l <> first_local + i then
          Fmt.failwith "Array.alloc: parity card %d handed out local %d, expected %d"
            pc l (first_local + i)
      done));
  t.next_global <- g + 1;
  let c = card_of_block t g in
  (match t.health with
  | Degraded d when d.missing = c -> degraded_push d Blank_slot
  | _ ->
    let l = Manager.alloc t.cards.(c) in
    (* Dense global allocation + dense per-card allocation make the local
       handle a pure function of the global one; everything else here (and
       table-free crash recovery) rests on that. *)
    if l <> local_of_block t g then
      Fmt.failwith "Array.alloc: card %d handed out local %d, expected %d" c l
        (local_of_block t g));
  g

let invalidate_front t b =
  match t.front with None -> () | Some fc -> Front_cache.invalidate fc ~key:b

let count_parity_read t = t.parity_reads <- t.parity_reads + 1

let count_parity_write t =
  t.parity_writes <- t.parity_writes + 1;
  Probe.incr p_parity_writes

(* Parity read-modify-write (the RAID small-write penalty): the parity
   delta needs the old data and the old parity, so a rewrite costs up to
   two extra reads plus the extra parity program.  The parity block's
   metadata may be missing after a crash (parity never gets a global
   handle, so remount padding skips over unlushed parity slots); it is
   revived in place — the new parity supersedes whatever was lost. *)
let rmw_write t ~at b ~c ~l ~pc ~pl =
  let m = t.cards.(c) and pm = t.cards.(pc) in
  if not (Manager.block_exists m l) then
    invalid_arg (Printf.sprintf "Array.write_block: unknown block %d" b);
  let r1 =
    if has_data m l then begin
      count_parity_read t;
      Manager.read_block_at m ~at l
    end
    else at
  in
  if not (Manager.block_exists pm pl) then Manager.revive_block pm pl;
  let r2 =
    if has_data pm pl then begin
      count_parity_read t;
      Manager.read_block_at pm ~at pl
    end
    else at
  in
  let w_data = Manager.write_block_at m ~at:r1 l in
  count_parity_write t;
  let w_parity = Manager.write_block_at pm ~at:(Time.max r1 r2) pl in
  Time.max w_data w_parity

(* Write to a block whose card is out: the data cannot land anywhere, so
   fold the new version into parity instead — new parity = XOR of the new
   data with every surviving data mate of the row (the old parity is not
   needed).  The newest version now lives, reconstructibly, in the parity
   equation; mate reads are threaded (summed), the degraded-write cost. *)
let degraded_data_write t ~at ~skip ~l ~pc ~pl =
  let cursor = ref at in
  A.iteri
    (fun c' m ->
      if c' <> skip && c' <> pc && has_data m l then begin
        count_parity_read t;
        cursor := Manager.read_block_at m ~at:!cursor l
      end)
    t.cards;
  let pm = t.cards.(pc) in
  if not (Manager.block_exists pm pl) then Manager.revive_block pm pl;
  count_parity_write t;
  t.degraded_writes <- t.degraded_writes + 1;
  Manager.write_block_at pm ~at:!cursor pl

let write_block_at t ~at b =
  invalidate_front t b;
  let c = card_of_block t b in
  let l = local_of_block t b in
  match parity_slot t b with
  | None -> Manager.write_block_at t.cards.(c) ~at l
  | Some (pc, pl) ->
    if slot_pending t c l then begin
      (match pending_status t l with
      | Absent ->
        invalid_arg (Printf.sprintf "Array.write_block: unknown block %d" b)
      | Blank_slot | Data_slot -> ());
      set_pending_status t l Data_slot;
      degraded_data_write t ~at ~skip:c ~l ~pc ~pl
    end
    else if slot_pending t pc pl then begin
      (* The parity strip is on the missing (or not-yet-rebuilt) card:
         plain data write, and mark the parity slot stale so the rebuild
         reconstructs it from the row's data. *)
      let fin = Manager.write_block_at t.cards.(c) ~at l in
      set_pending_status t pl Data_slot;
      fin
    end
    else rmw_write t ~at b ~c ~l ~pc ~pl

let write_block t b =
  let now = Engine.now t.engine in
  Time.diff (write_block_at t ~at:now b) now

let dram_read_at ?bytes t ~at =
  let bytes = Option.value bytes ~default:(block_bytes t) in
  Time.add at (Device.Dram.read t.dram ~bytes)

(* Reconstruct local [l] of card [skip] by reading the row's surviving
   members (whole blocks — the XOR needs every sector) in sequence:
   summed cost, the degraded-read penalty. *)
let reconstruct_read_at t ~at ~skip ~l =
  let cursor = ref at in
  A.iteri
    (fun c' m ->
      if c' <> skip && has_data m l then begin
        count_parity_read t;
        cursor := Manager.read_block_at m ~at:!cursor l
      end)
    t.cards;
  !cursor

let read_block_at ?bytes t ~at b =
  let c = card_of_block t b in
  let l = local_of_block t b in
  if slot_pending t c l then begin
    match pending_status t l with
    | Absent -> invalid_arg (Printf.sprintf "Array.read_block: unknown block %d" b)
    | Blank_slot ->
      (* Never-written block: nothing to fetch from any card. *)
      t.degraded_reads <- t.degraded_reads + 1;
      dram_read_at ?bytes t ~at
    | Data_slot ->
      let front_hit =
        match t.front with
        | None -> false
        | Some fc -> Front_cache.lookup fc ~key:b = Front_cache.Hit
      in
      if front_hit then dram_read_at ?bytes t ~at
      else begin
        let fin = reconstruct_read_at t ~at ~skip:c ~l in
        t.degraded_reads <- t.degraded_reads + 1;
        t.reconstructed_reads <- t.reconstructed_reads + 1;
        Probe.incr p_reconstructed;
        (match t.front with
        | Some fc -> Front_cache.insert fc ~key:b
        | None -> ());
        fin
      end
  end
  else begin
    let m = t.cards.(c) in
    match t.front with
    | None -> Manager.read_block_at ?bytes m ~at l
    | Some fc ->
      if not (Manager.block_exists m l) then
        (* Let the card raise its usual error without polluting the cache. *)
        Manager.read_block_at ?bytes m ~at l
      else begin
        match Front_cache.lookup fc ~key:b with
        | Front_cache.Hit -> dram_read_at ?bytes t ~at
        | Front_cache.Miss ->
          let fin = Manager.read_block_at ?bytes m ~at l in
          (* Residency commits only now, after the card read returned —
             a raising read must not leave the handle resident. *)
          Front_cache.insert fc ~key:b;
          fin
      end
  end

let read_block ?bytes t b =
  let now = Engine.now t.engine in
  Time.diff (read_block_at ?bytes t ~at:now b) now

let free_block t b =
  invalidate_front t b;
  let c = card_of_block t b in
  let l = local_of_block t b in
  match parity_slot t b with
  | None -> Manager.free_block t.cards.(c) l
  | Some (pc, pl) ->
    (* Free is an uncharged metadata operation on a single manager; under
       parity it additionally rewrites the parity block (removing the
       freed block's contribution) but reads nothing — the delta is
       computable from the buffered copy being dropped, and charging
       reads for frees would distort the write-path metric this module
       exists to measure. *)
    if slot_pending t c l then begin
      let was =
        match pending_status t l with
        | Absent ->
          invalid_arg (Printf.sprintf "Array.free_block: unknown block %d" b)
        | s -> s
      in
      set_pending_status t l Absent;
      let pm = t.cards.(pc) in
      if was = Data_slot && Manager.block_exists pm pl then begin
        count_parity_write t;
        ignore (Manager.write_block pm pl)
      end
    end
    else if slot_pending t pc pl then begin
      Manager.free_block t.cards.(c) l;
      set_pending_status t pl Data_slot
    end
    else begin
      let had = has_data t.cards.(c) l in
      Manager.free_block t.cards.(c) l;
      if had then begin
        let pm = t.cards.(pc) in
        if not (Manager.block_exists pm pl) then Manager.revive_block pm pl;
        count_parity_write t;
        ignore (Manager.write_block pm pl)
      end
    end

let load_cold t b =
  let c = card_of_block t b in
  let l = local_of_block t b in
  match parity_slot t b with
  | None -> Manager.load_cold t.cards.(c) l
  | Some (pc, pl) ->
    if slot_pending t pc pl then begin
      Manager.load_cold t.cards.(c) l;
      set_pending_status t pl Data_slot
    end
    else begin
      (* The first cold touch of a row also cold-loads its parity block —
         a factory image arrives with parity precomputed — so the row's
         later cold loads are free of parity traffic. *)
      if not (slot_pending t c l) && not (Manager.block_exists t.cards.(c) l)
      then
        invalid_arg (Printf.sprintf "Array.load_cold: unknown block %d" b);
      let pm = t.cards.(pc) in
      if not (has_data pm pl) then begin
        if not (Manager.block_exists pm pl) then Manager.revive_block pm pl;
        t.parity_cold <- t.parity_cold + 1;
        Manager.load_cold pm pl
      end;
      if slot_pending t c l then begin
        (match pending_status t l with
        | Absent ->
          invalid_arg (Printf.sprintf "Array.load_cold: unknown block %d" b)
        | Blank_slot | Data_slot -> ());
        set_pending_status t l Data_slot;
        t.degraded_cold <- t.degraded_cold + 1
      end
      else Manager.load_cold t.cards.(c) l
    end

let flush_all t =
  (* One contiguous drain per card — flushed sectors are grouped by
     destination card, never interleaved across cards — and the drains
     overlap in simulated time (each card programs its own banks), so the
     caller's stall is the slowest card's.  A missing card is skipped:
     its dormant manager's buffer was dropped at detach. *)
  let skip = match t.health with Degraded d -> d.missing | _ -> -1 in
  let now = Engine.now t.engine in
  let groups = ref 0 in
  let worst = ref Time.span_zero in
  A.iteri
    (fun i m ->
      if i <> skip then begin
        let span = Manager.flush_all m in
        if Time.span_to_us span > 0.0 then incr groups;
        worst := Time.max_span !worst span
      end)
    t.cards;
  let worst = !worst in
  if !groups > 0 then begin
    Probe.add p_flush_groups !groups;
    if Probe.timeline_enabled () then
      Probe.span ~name:"array.flush" ~cat:"storage"
        ~args:[ ("card_groups", string_of_int !groups) ]
        ~start:now ~finish:(Time.add now worst) ()
  end;
  worst

(* --- Card eject / reinsert / rebuild -------------------------------------- *)

type eject_report = { lost_buffered : int; degraded_blocks : int }

let pp_eject_report ppf r =
  Fmt.pf ppf "lost_buffered=%d degraded_blocks=%d" r.lost_buffered r.degraded_blocks

let eject_card ?(surprise = false) t ~card =
  (match t.striping with
  | Striping.Parity _ -> ()
  | _ ->
    invalid_arg
      "Array.eject_card: non-redundant striping cannot survive a card loss");
  (match t.health with
  | Healthy -> ()
  | Degraded _ | Rebuilding _ ->
    invalid_arg "Array.eject_card: array is already missing a card");
  if card < 0 || card >= ncards t then
    invalid_arg "Array.eject_card: no such card";
  let m = t.cards.(card) in
  if not surprise then ignore (Manager.flush_all m);
  (* Snapshot what the card held BEFORE detaching: a block still dirty in
     the host-side buffer at a surprise eject is lost as a copy, but its
     parity was updated when it was written, so the newest version stays
     reconstructible — [Data_slot], not a casualty. *)
  let st_len = Manager.next_fresh_block m in
  assert (
    st_len
    = Striping.locals_before t.striping ~ncards:(ncards t) ~card t.next_global);
  let st =
    A.init st_len (fun l ->
        if not (Manager.block_exists m l) then Absent
        else if has_data m l then Data_slot
        else Blank_slot)
  in
  let lost = Manager.detach m in
  let degraded =
    A.fold_left (fun acc s -> if s = Data_slot then acc + 1 else acc) 0 st
  in
  t.health <- Degraded { missing = card; st; st_len };
  Log.info (fun f ->
      f "card %d %s-ejected: %d slots, %d with data, %d buffered lost" card
        (if surprise then "surprise" else "orderly")
        st_len degraded lost);
  { lost_buffered = lost; degraded_blocks = degraded }

let default_rebuild_batch = 32
let default_rebuild_spacing = Time.span_ms 1.0

let rec schedule_rebuild t (r : rebuilding) ~batch ~spacing ~at =
  r.r_ev <-
    Some (Engine.schedule t.engine ~at (fun _ -> rebuild_step t r ~batch ~spacing))

(* One rebuild quantum: reconstruct up to [batch] slots onto the fresh
   card, then yield the engine back to foreground traffic and reschedule.
   Slots that already exist on the fresh manager (the crash-recovered
   prefix of an interrupted rebuild) are skipped. *)
and rebuild_step t (r : rebuilding) ~batch ~spacing =
  r.r_ev <- None;
  let fresh = t.cards.(r.r_card) in
  let now = Engine.now t.engine in
  let cursor = ref now in
  let n = min batch (r.r_len - r.r_cursor) in
  for i = 0 to n - 1 do
    let l = r.r_cursor + i in
    match r.r_st.(l) with
    | Absent -> ()
    | Blank_slot ->
      if not (Manager.block_exists fresh l) then Manager.revive_block fresh l
    | Data_slot ->
      if not (Manager.block_exists fresh l) then begin
        A.iteri
          (fun c' m ->
            if c' <> r.r_card && has_data m l then begin
              count_parity_read t;
              cursor := Manager.read_block_at m ~at:!cursor l
            end)
          t.cards;
        Manager.revive_block fresh l;
        t.parity_cold <- t.parity_cold + 1;
        Manager.load_cold fresh l;
        t.rebuilt_blocks <- t.rebuilt_blocks + 1;
        Probe.incr p_rebuilt
      end
  done;
  r.r_cursor <- r.r_cursor + n;
  if r.r_cursor >= r.r_len then begin
    t.health <- Healthy;
    let span = Time.diff (Engine.now t.engine) r.r_started in
    t.last_rebuild <- Some span;
    Log.info (fun f ->
        f "card %d rebuilt (%d slots) in %a" r.r_card r.r_len Time.pp_span span)
  end
  else
    schedule_rebuild t r ~batch ~spacing
      ~at:(Time.max !cursor (Time.add now spacing))

let reinsert_card ?(batch = default_rebuild_batch)
    ?(spacing = default_rebuild_spacing) t ~card =
  let d =
    match t.health with
    | Degraded d when d.missing = card -> d
    | Degraded d ->
      invalid_arg
        (Printf.sprintf "Array.reinsert_card: card %d is present (card %d is out)"
           card d.missing)
    | Healthy | Rebuilding _ ->
      invalid_arg "Array.reinsert_card: array is not degraded"
  in
  if batch <= 0 then invalid_arg "Array.reinsert_card: batch must be positive";
  (* The returning card is blank media — a replacement, or the same card
     wiped — and everything it held is reconstructed from the survivors. *)
  let flash = Manager.flash t.cards.(card) in
  Device.Flash.factory_reset flash;
  let fresh = Manager.create ~card t.config ~engine:t.engine ~flash ~dram:t.dram in
  Manager.reserve_blocks fresh ~next:d.st_len;
  t.cards.(card) <- fresh;
  let r =
    {
      r_card = card;
      r_st = d.st;
      r_len = d.st_len;
      r_cursor = 0;
      r_ev = None;
      r_started = Engine.now t.engine;
    }
  in
  if d.st_len = 0 then begin
    (* Nothing was ever striped onto this card: the rebuild covers zero
       slots, so complete immediately rather than burning one spacing
       tick on an empty rebuild_step. *)
    t.health <- Healthy;
    t.last_rebuild <- Some Time.span_zero;
    Log.info (fun f -> f "card %d reinserted; nothing to rebuild" card)
  end
  else begin
    t.health <- Rebuilding r;
    Log.info (fun f -> f "card %d reinserted; rebuilding %d slots" card d.st_len);
    schedule_rebuild t r ~batch ~spacing ~at:(Engine.now t.engine)
  end

(* --- Introspection -------------------------------------------------------- *)

let health t =
  match t.health with
  | Healthy -> `Healthy
  | Degraded d -> `Degraded d.missing
  | Rebuilding r -> `Rebuilding r.r_card

type parity_stats = {
  parity_writes : int;
  parity_reads : int;
  parity_cold_loads : int;
  degraded_writes : int;
  degraded_reads : int;
  degraded_cold_loads : int;
  reconstructed_reads : int;
  rebuilt_blocks : int;
  last_rebuild : Time.span option;
}

let parity_stats (t : t) =
  {
    parity_writes = t.parity_writes;
    parity_reads = t.parity_reads;
    parity_cold_loads = t.parity_cold;
    degraded_writes = t.degraded_writes;
    degraded_reads = t.degraded_reads;
    degraded_cold_loads = t.degraded_cold;
    reconstructed_reads = t.reconstructed_reads;
    rebuilt_blocks = t.rebuilt_blocks;
    last_rebuild = t.last_rebuild;
  }

let pp_parity_stats ppf s =
  Fmt.pf ppf
    "parity: writes=%d reads=%d cold=%d | degraded: writes=%d reads=%d \
     reconstructed=%d | rebuilt=%d%a"
    s.parity_writes s.parity_reads s.parity_cold_loads s.degraded_writes
    s.degraded_reads s.reconstructed_reads s.rebuilt_blocks
    (fun ppf -> function
      | None -> ()
      | Some span -> Fmt.pf ppf " in %a" Time.pp_span span)
    s.last_rebuild

let card_stats t i = Manager.stats t.cards.(i)
let wear_evenness t i = Manager.wear_evenness t.cards.(i)

let diff_stats (t : t) =
  Stdlib.Array.fold_left
    (fun acc card ->
      match (acc, Manager.diff_stats card) with
      | None, s | s, None -> s
      | Some a, Some b -> Some (Diff_log.add_stats a b))
    None t.cards
let front_cache_hits t = match t.front with None -> 0 | Some fc -> Front_cache.hits fc
let front_cache_misses t =
  match t.front with None -> 0 | Some fc -> Front_cache.misses fc

(* A pending data slot's durable home is its parity block (the row can
   be reconstructed as long as the parity copy survives), so the
   introspection surface reports the parity block's residency for it:
   dirty while the parity update sits in a surviving card's buffer, and
   the parity block's segment once it is flushed.  This keeps the fsck
   identity — every reachable block is buffered or in flash — true
   while a card is out. *)
let parity_home_manager t l =
  let pc = Striping.parity_card_of_local t.striping ~ncards:(ncards t) ~local:l in
  t.cards.(pc)

(* The [live_blocks]/[dirty_blocks] gauges as the *client* sees them
   under parity: parity slots are the array's own and invisible (the
   namespace can never reach them), and a pending slot is charged to its
   parity home — dirty while the parity update is buffered, live once it
   is flushed.  Recounted from the slot map because the per-card gauges
   drift from the client's view the moment parity blocks exist (and,
   while a card is out, the dormant manager's frozen gauges ignore
   degraded frees).  O(locals); only the parity policy pays it. *)
let client_gauges (t : t) =
  let n = ncards t in
  let live = ref 0 and dirty = ref 0 in
  for c = 0 to n - 1 do
    let m = t.cards.(c) in
    let bound =
      match t.health with
      | Degraded d when c = d.missing -> d.st_len
      | Healthy | Degraded _ | Rebuilding _ -> Manager.next_fresh_block m
    in
    for l = 0 to bound - 1 do
      if Striping.parity_card_of_local t.striping ~ncards:n ~local:l <> c then
        if slot_pending t c l then (
          match pending_status t l with
          | Data_slot ->
            let pm = parity_home_manager t l in
            if Manager.block_is_dirty pm l then incr dirty
            else if Manager.segment_of_block pm l <> None then incr live
          | Blank_slot | Absent -> ())
        else if Manager.block_exists m l then
          if Manager.block_is_dirty m l then incr dirty
          else if Manager.segment_of_block m l <> None then incr live
    done
  done;
  (!live, !dirty)

let stats (t : t) =
  let sum f = A.fold_left (fun acc m -> acc + f (Manager.stats m)) 0 t.cards in
  (* The per-card sums include parity maintenance and reconstruction
     traffic; subtract what the array itself issued and add back the
     client operations that never reached a card (front-cache hits,
     degraded ops served from parity). *)
  let writes = sum (fun s -> s.Manager.client_writes) - t.parity_writes + t.degraded_writes in
  let flushed = sum (fun s -> s.Manager.blocks_flushed) in
  let cleaned = sum (fun s -> s.Manager.blocks_cleaned) in
  let live_blocks, dirty_blocks =
    match t.striping with
    | Striping.Parity _ -> client_gauges t
    | _ ->
      ( sum (fun s -> s.Manager.live_blocks),
        sum (fun s -> s.Manager.dirty_blocks) )
  in
  {
    Manager.client_writes = writes;
    client_reads =
      sum (fun s -> s.Manager.client_reads)
      - t.parity_reads + front_cache_hits t + t.degraded_reads;
    absorbed_writes = sum (fun s -> s.Manager.absorbed_writes);
    cancelled_blocks = sum (fun s -> s.Manager.cancelled_blocks);
    blocks_flushed = flushed;
    blocks_cleaned = cleaned;
    cold_loads = sum (fun s -> s.Manager.cold_loads) - t.parity_cold + t.degraded_cold;
    hot_retained = sum (fun s -> s.Manager.hot_retained);
    cleanings = sum (fun s -> s.Manager.cleanings);
    dirty_blocks;
    free_segments = sum (fun s -> s.Manager.free_segments);
    retired_segments = sum (fun s -> s.Manager.retired_segments);
    live_blocks;
    write_reduction =
      (if writes = 0 then 0.0
       else 1.0 -. (float_of_int flushed /. float_of_int writes));
    write_amplification =
      Cleaner.write_amplification ~blocks_written:(flushed + cleaned)
        ~blocks_flushed:flushed;
  }

let segment_of_block t b =
  let c = card_of_block t b and l = local_of_block t b in
  if slot_pending t c l then
    match pending_status t l with
    | Data_slot ->
      let pm = parity_home_manager t l in
      if Manager.block_is_dirty pm l then None else Manager.segment_of_block pm l
    | Blank_slot | Absent -> None
  else Manager.segment_of_block t.cards.(c) l

let block_is_dirty t b =
  let c = card_of_block t b and l = local_of_block t b in
  if slot_pending t c l then
    match pending_status t l with
    | Data_slot -> Manager.block_is_dirty (parity_home_manager t l) l
    | Blank_slot | Absent -> false
  else Manager.block_is_dirty t.cards.(c) l

let block_exists t b =
  b >= 0
  &&
  let c = card_of_block t b and l = local_of_block t b in
  if slot_pending t c l then pending_status t l <> Absent
  else Manager.block_exists t.cards.(c) l

let reset_traffic (t : t) =
  A.iter Manager.reset_traffic t.cards;
  t.parity_writes <- 0;
  t.parity_reads <- 0;
  t.parity_cold <- 0;
  t.degraded_writes <- 0;
  t.degraded_reads <- 0;
  t.degraded_cold <- 0;
  t.reconstructed_reads <- 0;
  t.rebuilt_blocks <- 0;
  match t.front with None -> () | Some fc -> Front_cache.reset_counters fc

(* --- Crash recovery ------------------------------------------------------- *)

(* What survives of a pending slot after total power loss: the degraded
   bookkeeping lived in DRAM, so it is only as good as what flash kept.
   A blank slot's metadata existed nowhere durable — gone.  A data slot
   survives iff its recovery source survives: the remounted parity block
   for a data slot, the surviving data mates for a stale parity slot
   (those are re-derived at rebuild, so stale parity stays [Data_slot]). *)
let filter_slot striping cards ~n ~mc ~l status =
  match status with
  | Absent | Blank_slot -> Absent
  | Data_slot ->
    let pc = Striping.parity_card_of_local striping ~ncards:n ~local:l in
    if pc = mc then Data_slot
    else if Manager.block_exists cards.(pc) l then Data_slot
    else Absent

let crash_and_remount t =
  let n = ncards t in
  (* A rebuild in flight holds an engine event over the pre-crash array:
     cancel it; the remounted array reschedules its own. *)
  (match t.health with
  | Rebuilding r -> (
    match r.r_ev with
    | Some ev ->
      Engine.cancel t.engine ev;
      r.r_ev <- None
    | None -> ())
  | _ -> ());
  let missing = match t.health with Degraded d -> Some d.missing | _ -> None in
  (* Every present card remounts from its own headers; the scans overlap
     in simulated time (independent devices), so recovery latency is the
     slowest card's scan, not the sum.  A missing card stays out: its
     dormant manager rides along untouched. *)
  let worst = ref Time.span_zero in
  let scanned = ref 0 and live = ref 0 and stale = ref 0 and lost = ref 0 in
  let cards =
    A.mapi
      (fun c m ->
        if missing = Some c then m
        else begin
          let fresh, span, r = Manager.crash_and_remount m in
          worst := Time.max_span !worst span;
          scanned := !scanned + r.Manager.sectors_scanned;
          live := !live + r.Manager.live_recovered;
          stale := !stale + r.Manager.stale_discarded;
          lost := !lost + r.Manager.buffered_lost;
          fresh
        end)
      t.cards
  in
  (* The front cache was DRAM: gone.  Reuse the object (counters are
     cumulative traffic, reset via [reset_traffic]) with residency wiped. *)
  (match t.front with None -> () | Some fc -> Front_cache.clear fc);
  (* Rebuild the global cursor: the highest surviving global handle is on
     whichever card kept the deepest local cursor.  (Not [global_of]: a
     parity slot has no global handle, but its existence still implies
     its stripe had opened.) *)
  let next_global =
    A.to_list cards
    |> List.mapi (fun c m ->
           if missing = Some c then 0
           else
             let nb = Manager.next_fresh_block m in
             if nb = 0 then 0
             else
               Striping.min_global_cursor t.striping ~ncards:n ~card:c
                 ~local:(nb - 1))
    |> List.fold_left max 0
  in
  (* A flushed parity block is durable evidence its row saw a write —
     so the row's first data member was allocated, even when that member
     lived on the missing card and its only surviving copy *is* the
     parity.  Without this the recovered cursor (and with it the
     degraded slot map) stops short of reconstructible blocks whose row
     never advanced any present card's own cursor. *)
  let next_global =
    match t.striping with
    | Striping.Parity _ ->
      let ng = ref next_global in
      A.iteri
        (fun c m ->
          if missing <> Some c then
            for l = 0 to Manager.next_fresh_block m - 1 do
              if
                Striping.parity_card_of_local t.striping ~ncards:n ~local:l = c
                && has_data m l
              then begin
                let first = if c > 0 then 0 else 1 in
                let g = Striping.global_of t.striping ~ncards:n ~card:first ~local:l in
                if g + 1 > !ng then ng := g + 1
              end
            done)
        cards;
      !ng
    | Striping.Round_robin _ | Striping.Hashed -> next_global
  in
  (* Cards that lost never-flushed tail allocations restart their local
     cursor short of the global one; pad them so local handles stay a pure
     function of global ones. *)
  A.iteri
    (fun c m ->
      if missing <> Some c then
        Manager.reserve_blocks m
          ~next:(Striping.locals_before t.striping ~ncards:n ~card:c next_global))
    cards;
  let health =
    match t.health with
    | Healthy -> Healthy
    | Degraded d ->
      let st_len =
        Striping.locals_before t.striping ~ncards:n ~card:d.missing next_global
      in
      let st =
        A.init (max st_len 1) (fun l ->
            if l < st_len && l < d.st_len then
              filter_slot t.striping cards ~n ~mc:d.missing ~l d.st.(l)
            else Absent)
      in
      Degraded { missing = d.missing; st; st_len }
    | Rebuilding r ->
      (* The reinserted card is physically present and remounted like the
         others; whatever the rebuild had flushed onto it survived, and
         the restarted rebuild skips those slots. *)
      let r_len =
        min r.r_len
          (Striping.locals_before t.striping ~ncards:n ~card:r.r_card next_global)
      in
      let st =
        A.init (max r_len 1) (fun l ->
            if l >= r_len || l >= r.r_len then Absent
            else if
              r.r_st.(l) = Data_slot && Manager.block_exists cards.(r.r_card) l
            then Data_slot
            else filter_slot t.striping cards ~n ~mc:r.r_card ~l r.r_st.(l))
      in
      if r_len = 0 then Healthy
      else
        Rebuilding
          {
            r_card = r.r_card;
            r_st = st;
            r_len;
            r_cursor = 0;
            r_ev = None;
            r_started = Engine.now t.engine;
          }
  in
  let fresh = { t with cards; next_global; health } in
  (match health with
  | Rebuilding r ->
    schedule_rebuild fresh r ~batch:default_rebuild_batch
      ~spacing:default_rebuild_spacing ~at:(Engine.now t.engine)
  | Healthy | Degraded _ -> ());
  let report =
    {
      Manager.sectors_scanned = !scanned;
      live_recovered = !live;
      stale_discarded = !stale;
      buffered_lost = !lost;
    }
  in
  Log.info (fun m ->
      m "array remount (%d cards%s): %a" n
        (match missing with
        | Some c -> Printf.sprintf ", card %d out" c
        | None -> "")
        Manager.pp_remount_report report);
  (fresh, !worst, report)
