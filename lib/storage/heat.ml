open Sim

type entry = { mutable value : float; mutable stamp : Time.t }

type t = {
  half_life_ns : float;
  table : (int, entry) Hashtbl.t;
  mutable writes_since_sweep : int;
}

(* One decayed write from 20 half-lives ago: cold beyond recovery.  Entries
   below this are dead weight — no realistic threshold keeps them hot — and
   used to accumulate forever on long replays. *)
let floor_value = Float.pow 2.0 (-20.0)

(* Amortize eviction: a full-table pass every [sweep_interval] writes keeps
   record_write O(1) amortized while bounding the table to live entries. *)
let sweep_interval = 1024

let p_tracked = Probe.gauge "storage.heat.tracked"
let p_swept = Probe.counter "storage.heat.swept"

let create ~half_life () =
  let ns = Time.span_to_ns half_life in
  (* Time.span rejects negative construction, so ns < 0 can only arrive via
     a future representation change — but a negative half-life would turn
     decay into unbounded growth, so reject it here too, not just zero. *)
  if ns <= 0 then invalid_arg "Heat.create: non-positive half_life";
  { half_life_ns = float_of_int ns; table = Hashtbl.create 1024;
    writes_since_sweep = 0 }

let decayed t e ~now =
  let dt = float_of_int (Time.to_ns now - Time.to_ns e.stamp) in
  if dt <= 0.0 then e.value else e.value *. Float.pow 2.0 (-.dt /. t.half_life_ns)

let sweep t ~now =
  let before = Hashtbl.length t.table in
  Hashtbl.filter_map_inplace
    (fun _block e -> if decayed t e ~now < floor_value then None else Some e)
    t.table;
  t.writes_since_sweep <- 0;
  let evicted = before - Hashtbl.length t.table in
  Probe.add p_swept evicted;
  Probe.set p_tracked (float_of_int (Hashtbl.length t.table));
  evicted

let record_write t ~now ~block =
  (match Hashtbl.find_opt t.table block with
  | Some e ->
    e.value <- decayed t e ~now +. 1.0;
    e.stamp <- now
  | None -> Hashtbl.replace t.table block { value = 1.0; stamp = now });
  t.writes_since_sweep <- t.writes_since_sweep + 1;
  if t.writes_since_sweep >= sweep_interval then ignore (sweep t ~now)

let heat t ~now ~block =
  match Hashtbl.find_opt t.table block with
  | Some e -> decayed t e ~now
  | None -> 0.0

let is_hot t ~now ~block ~threshold = heat t ~now ~block >= threshold
let forget t ~block = Hashtbl.remove t.table block
let tracked t = Hashtbl.length t.table
