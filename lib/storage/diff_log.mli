(** Page-differential logging state (Section 3.3's erase/write penalty,
    attacked the Kim/Whang/Song way).

    Instead of rewriting a whole flash page when a previously-flushed
    block is overwritten, the manager programs only a small {e delta}
    record against the block's durable {e base} page.  Deltas chain in
    overwrite order; a read reassembles the block by reading the base
    page plus every delta in the chain (summed cost), and once a chain
    passes the configured length/size threshold it is merged back into a
    single full base page.

    This module is the pure bookkeeping: which blocks have chains, where
    their base pages and delta records live, and when a chain is due for
    a merge.  Devices, headers, and scheduling live in {!Manager}, which
    consults this table on the flush, read, free, cleaning, and remount
    paths.  A manager created without a diff config never touches this
    module, so the plain flush path is byte-identical with the policy
    off. *)

type config = {
  delta_bytes : int;
      (** Bytes programmed per delta record (the encoded diff plus its
          sector header).  The cost model: an overwrite flush programs
          this many bytes instead of a whole page. *)
  merge_len : int;
      (** Merge a chain back into a full base page once it holds this
          many deltas. *)
  merge_bytes : int;
      (** ... or once the chain's summed delta bytes reach this
          (whichever threshold trips first). *)
}

val default_config : config
(** 64-byte deltas, merge at 4 deltas, byte threshold effectively off. *)

(** One delta record's location.  Coordinates are mutable because the
    cleaner relocates delta records like any other live slot. *)
type delta = {
  mutable d_seg : int;
  mutable d_slot : int;
  mutable d_sector : int;
  d_pos : int;  (** Position in the chain, dense from 0. *)
  d_bytes : int;  (** Bytes the record occupies (programmed cost). *)
}

type t

val create : config -> t
val config : t -> config

val has_chain : t -> block:int -> bool
val base : t -> block:int -> (int * int) option
(** The chained block's base-page [(segment, slot)], if it has a chain. *)

val deltas : t -> block:int -> delta list
(** The chain's delta records, position-ascending; [[]] without a chain. *)

val chain_length : t -> block:int -> int
val next_pos : t -> block:int -> int
(** The position the next {!push_delta} should use (= current length). *)

val begin_chain : t -> block:int -> seg:int -> slot:int -> unit
(** Start an empty chain anchored at the block's current flash copy.
    No-op semantics are the caller's problem: raises [Invalid_argument]
    if the block already has a chain. *)

val push_delta :
  t -> block:int -> pos:int -> seg:int -> slot:int -> sector:int -> bytes:int -> unit
(** Append a delta record to the chain.  [pos] must equal {!next_pos}
    (dense positions are what remount's truncation rule relies on).
    @raise Invalid_argument without a chain or on a position gap. *)

val should_merge : t -> block:int -> bool
(** Has the chain reached either merge threshold? *)

val rebase : t -> block:int -> seg:int -> slot:int -> unit
(** The cleaner moved the base page; update its coordinates. *)

val relocate_delta :
  t -> block:int -> pos:int -> seg:int -> slot:int -> sector:int -> unit
(** The cleaner moved the delta at [pos]; update its coordinates. *)

val drop : t -> block:int -> unit
(** Forget the block's chain (after a merge, or when the block is
    freed).  No-op if it has none. *)

val iter_chains : t -> f:(block:int -> ndeltas:int -> unit) -> unit
(** Visit every chained block (unspecified order). *)

(** {1 Traffic counters}

    Structural state above; programmed/merged/reassembled counts below.
    The manager bumps these where it charges the device, so they stay in
    lockstep with the flash traffic counters. *)

val note_delta_programmed : t -> bytes:int -> unit
val note_merge : t -> unit
val note_reassembly : t -> unit

type stats = {
  chains : int;  (** Blocks currently holding a delta chain. *)
  chained_deltas : int;  (** Delta records across every live chain. *)
  deltas_flushed : int;  (** Overwrite flushes encoded as deltas. *)
  delta_bytes_flushed : int;
  merges : int;  (** Chains folded back into a full base page. *)
  reassembled_reads : int;  (** Reads that walked a chain. *)
}

val stats : t -> stats
val add_stats : stats -> stats -> stats
(** Field-wise sum, for aggregating a card array's per-card tables. *)

val reset_counters : t -> unit
(** Zero the traffic counters; chain state is unaffected. *)
