type config = {
  delta_bytes : int;
  merge_len : int;
  merge_bytes : int;
}

let default_config = { delta_bytes = 64; merge_len = 4; merge_bytes = max_int }

type delta = {
  mutable d_seg : int;
  mutable d_slot : int;
  mutable d_sector : int;
  d_pos : int;
  d_bytes : int;
}

type chain = {
  mutable c_base_seg : int;
  mutable c_base_slot : int;
  (* Position-ascending; chains are bounded by the merge threshold, so the
     list append below never walks more than a handful of records. *)
  mutable c_deltas : delta list;
  mutable c_bytes : int;
}

type t = {
  cfg : config;
  chains : (int, chain) Hashtbl.t;
  mutable deltas_flushed : int;
  mutable delta_bytes_flushed : int;
  mutable merges : int;
  mutable reassembled_reads : int;
}

let create cfg =
  if cfg.delta_bytes < 1 then invalid_arg "Diff_log.create: delta_bytes < 1";
  if cfg.merge_len < 1 then invalid_arg "Diff_log.create: merge_len < 1";
  if cfg.merge_bytes < 1 then invalid_arg "Diff_log.create: merge_bytes < 1";
  {
    cfg;
    chains = Hashtbl.create 256;
    deltas_flushed = 0;
    delta_bytes_flushed = 0;
    merges = 0;
    reassembled_reads = 0;
  }

let config t = t.cfg
let has_chain t ~block = Hashtbl.mem t.chains block

let base t ~block =
  match Hashtbl.find_opt t.chains block with
  | Some c -> Some (c.c_base_seg, c.c_base_slot)
  | None -> None

let deltas t ~block =
  match Hashtbl.find_opt t.chains block with Some c -> c.c_deltas | None -> []

let chain_length t ~block =
  match Hashtbl.find_opt t.chains block with
  | Some c -> List.length c.c_deltas
  | None -> 0

let next_pos t ~block = chain_length t ~block

let begin_chain t ~block ~seg ~slot =
  if Hashtbl.mem t.chains block then
    invalid_arg (Printf.sprintf "Diff_log.begin_chain: block %d already chained" block);
  Hashtbl.replace t.chains block
    { c_base_seg = seg; c_base_slot = slot; c_deltas = []; c_bytes = 0 }

let chain_exn t ~block ~op =
  match Hashtbl.find_opt t.chains block with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Diff_log.%s: block %d has no chain" op block)

let push_delta t ~block ~pos ~seg ~slot ~sector ~bytes =
  let c = chain_exn t ~block ~op:"push_delta" in
  if pos <> List.length c.c_deltas then
    invalid_arg
      (Printf.sprintf "Diff_log.push_delta: block %d position %d, expected %d" block
         pos (List.length c.c_deltas));
  c.c_deltas <-
    c.c_deltas @ [ { d_seg = seg; d_slot = slot; d_sector = sector; d_pos = pos; d_bytes = bytes } ];
  c.c_bytes <- c.c_bytes + bytes

let should_merge t ~block =
  match Hashtbl.find_opt t.chains block with
  | None -> false
  | Some c -> List.length c.c_deltas >= t.cfg.merge_len || c.c_bytes >= t.cfg.merge_bytes

let rebase t ~block ~seg ~slot =
  let c = chain_exn t ~block ~op:"rebase" in
  c.c_base_seg <- seg;
  c.c_base_slot <- slot

let relocate_delta t ~block ~pos ~seg ~slot ~sector =
  let c = chain_exn t ~block ~op:"relocate_delta" in
  match List.find_opt (fun d -> d.d_pos = pos) c.c_deltas with
  | None ->
    invalid_arg
      (Printf.sprintf "Diff_log.relocate_delta: block %d has no delta at %d" block pos)
  | Some d ->
    d.d_seg <- seg;
    d.d_slot <- slot;
    d.d_sector <- sector

let drop t ~block = Hashtbl.remove t.chains block

let iter_chains t ~f =
  Hashtbl.iter (fun block c -> f ~block ~ndeltas:(List.length c.c_deltas)) t.chains

let note_delta_programmed t ~bytes =
  t.deltas_flushed <- t.deltas_flushed + 1;
  t.delta_bytes_flushed <- t.delta_bytes_flushed + bytes

let note_merge t = t.merges <- t.merges + 1
let note_reassembly t = t.reassembled_reads <- t.reassembled_reads + 1

type stats = {
  chains : int;
  chained_deltas : int;
  deltas_flushed : int;
  delta_bytes_flushed : int;
  merges : int;
  reassembled_reads : int;
}

let stats (t : t) =
  let chained = ref 0 in
  Hashtbl.iter (fun _ c -> chained := !chained + List.length c.c_deltas) t.chains;
  {
    chains = Hashtbl.length t.chains;
    chained_deltas = !chained;
    deltas_flushed = t.deltas_flushed;
    delta_bytes_flushed = t.delta_bytes_flushed;
    merges = t.merges;
    reassembled_reads = t.reassembled_reads;
  }

let add_stats a b =
  {
    chains = a.chains + b.chains;
    chained_deltas = a.chained_deltas + b.chained_deltas;
    deltas_flushed = a.deltas_flushed + b.deltas_flushed;
    delta_bytes_flushed = a.delta_bytes_flushed + b.delta_bytes_flushed;
    merges = a.merges + b.merges;
    reassembled_reads = a.reassembled_reads + b.reassembled_reads;
  }

let reset_counters (t : t) =
  t.deltas_flushed <- 0;
  t.delta_bytes_flushed <- 0;
  t.merges <- 0;
  t.reassembled_reads <- 0
