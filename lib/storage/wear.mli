(** Wear-leveling policies.

    Flash sectors endure a bounded number of erase cycles, so the storage
    manager must "evenly balance the write load throughout flash memory"
    (Section 3.3).  Three policies, in increasing strength:

    - {e None}: take any free segment (first fit).  Hot segments cycle
      through erases while segments holding cold data never wear at all.
    - {e Dynamic}: open the free segment with the lowest erase count.
      Levels wear among segments that circulate, but cold data still pins
      fresh segments out of circulation.
    - {e Static}: dynamic allocation, plus forced relocation — when the
      spread between the most- and least-worn segments exceeds a threshold,
      the manager cleans the least-worn {e cold} segment even though it is
      fully live, putting its under-used sectors back into rotation.

    The evenness of the resulting wear directly multiplies device lifetime:
    the device dies when its hottest sectors die. *)

type policy =
  | None_
  | Dynamic
  | Static of { spread_threshold : int }
      (** Force cold-data relocation when
          [max erase - mean erase > spread_threshold]. *)

val pp_policy : Format.formatter -> policy -> unit
val policy_name : policy -> string

val pick_free :
  ?for_cold:bool ->
  policy -> erase_count:(Segment.t -> int) -> Segment.t array -> Segment.t option
(** Choose which Free segment to open next.  With [for_cold] (data the
    cleaner judged long-lived), [Static] picks the {e most}-worn free
    segment — parking cold data on tired sectors and releasing fresh ones
    into circulation, the essence of static wear leveling.  Hot
    (default) allocation picks the least-worn segment under [Dynamic] and
    [Static], and first-fit under [None_]. *)

val relocation_victim :
  policy ->
  erase_count:(Segment.t -> int) ->
  eligible:(Segment.t -> bool) ->
  Segment.t array ->
  Segment.t option
(** Under [Static], the Closed segment that should be forcibly relocated —
    the least-worn one — when the wear spread exceeds the threshold.
    [None] for other policies or when the spread is within bounds.  The
    spread is computed over {e all} segments' erase counts. *)

(** {1 Wear metrics} *)

type evenness = {
  min_erases : int;
  max_erases : int;
  mean_erases : float;
  stddev_erases : float;
}

type acc
(** Running wear statistics (count, total, sum of squares, per-level
    multiplicities) in exact integer form.  Integer sums are
    order-independent, so an accumulator maintained incrementally — one
    {!acc_bump} per segment cleaning — holds byte-for-byte the same
    values as one built by {!acc_of_scan} over the array, and the
    evenness floats derived from either are identical. *)

val acc_create : unit -> acc
val acc_clear : acc -> unit

val acc_add : acc -> int -> unit
(** Register one more segment currently at the given erase count. *)

val acc_bump : acc -> old_count:int -> new_count:int -> unit
(** A segment moved from [old_count] to [new_count] erases. *)

val acc_of_scan : erase_count:(Segment.t -> int) -> Segment.t array -> acc
(** The reference: fold every segment's current erase count. *)

val evenness_of_acc : acc -> evenness
(** The single derivation of the evenness floats; both the scan and the
    incremental paths go through it. *)

val evenness : erase_count:(Segment.t -> int) -> Segment.t array -> evenness
(** [evenness_of_acc] of [acc_of_scan]. *)

val spread_exceeds : evenness -> spread_threshold:int -> bool
(** The [Static] relocation trigger: [max - mean > threshold].  Max minus
    mean rather than max minus min, so one never-erased outlier segment
    cannot keep forced relocation running forever. *)

val lifetime_writes :
  endurance:int -> total_sectors:int -> max_erases:int -> total_erases:int -> float
(** Estimated total sector-erases the device can sustain before its first
    sector dies, extrapolating the observed wear skew: with perfectly even
    wear this is [endurance * total_sectors]; skew divides it by
    [max_erases / mean_erases].  Returns [infinity] when nothing was erased
    yet. *)
