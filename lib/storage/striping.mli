(** Block-placement policies for multi-card arrays.

    An array over N cards needs a pure function from a global block handle
    to the card that stores it.  Global handles are allocated densely from
    zero and never reused (the managers' own allocation discipline), so the
    card-local handle is fully determined too: it is the rank of the global
    handle among all handles routed to that card.  Both directions are
    closed-form for every policy here — the array keeps {e no} placement
    table, which is what makes crash recovery trivial: remounting each card
    recovers its local handles, and the inverse mapping reconstructs the
    global ones.

    [Round_robin] with strip size [s] sends [s] consecutive handles to each
    card in turn (the PFS striping shape: sequential files spread across
    every card at strip granularity).  [Hashed] is the modulo baseline —
    equivalent to a strip size of 1.

    [Parity] adds redundancy (the RAID-4/5 shapes): each stripe of
    [s * (N-1)] data blocks is protected by a strip of [s] parity blocks
    on one card — fixed at card [N-1] when [rotate] is false (RAID-4),
    rotating across cards per stripe when true (RAID-5, spreading the
    parity write load).  Client handles name data blocks only; the array
    allocates the parity strip's locals eagerly when a stripe opens, so
    every card still receives exactly [s] locals per complete stripe and
    the per-card cursors remain pure functions of the global one.  Row
    [off] of stripe [k] — the [N-1] data blocks plus their parity block —
    all sit at the {e same} local handle [k*s + off] on their respective
    cards, which is what makes degraded reconstruction "read local [l]
    from every surviving card". *)

type policy =
  | Round_robin of { strip_blocks : int }
  | Hashed
  | Parity of { strip_blocks : int; rotate : bool }

val policy_name : policy -> string
val pp_policy : Format.formatter -> policy -> unit

val validate : policy -> ncards:int -> (unit, string) result
(** [ncards] must be positive; strips must be positive; parity needs at
    least 2 cards (one data + one parity). *)

val card_of : policy -> ncards:int -> block:int -> int
(** The card storing global handle [block]. *)

val local_of : policy -> ncards:int -> block:int -> int
(** The card-local handle: how many global handles before [block] were
    routed to the same card (under [Parity], counting the eagerly
    allocated parity locals).  Dense allocation makes this the exact
    handle the card's manager hands out. *)

val global_of : policy -> ncards:int -> card:int -> local:int -> int
(** Inverse of [card_of]/[local_of]:
    [global_of p ~ncards ~card:(card_of p ~ncards ~block:g)
       ~local:(local_of p ~ncards ~block:g) = g].
    @raise Invalid_argument under [Parity] when [(card, local)] is a
    parity slot — parity blocks have no global handle. *)

val locals_before : policy -> ncards:int -> card:int -> int -> int
(** [locals_before p ~ncards ~card g]: how many locals [card] holds when
    the global cursor is [g] — data locals routed there plus (under
    [Parity]) parity locals allocated eagerly at stripe opens.  After a
    crash, cards may have lost different numbers of tail allocations
    (blocks that died before ever reaching flash); the array uses this to
    re-align every card's cursor with the recovered global one. *)

(** {1 Parity geometry} — all [None]/raising for non-parity policies. *)

val parity_slot : policy -> ncards:int -> block:int -> (int * int) option
(** The [(card, local)] of the parity block covering [block]'s row.  The
    local equals [local_of block] — a row occupies the same local on
    every card. *)

val parity_card_of_local : policy -> ncards:int -> local:int -> int
(** Which card holds the parity strip of the stripe containing [local]
    ([local / strip_blocks]).  A slot [(card, local)] is a parity slot
    iff [card = parity_card_of_local local].
    @raise Invalid_argument for non-parity policies. *)

val parity_prealloc : policy -> ncards:int -> block:int -> (int * int * int) option
(** When allocating global [block] opens a new stripe, the parity strip
    to allocate first: [Some (card, first_local, count)].  [None] when
    the stripe is already open (or the policy has no parity). *)

val min_global_cursor : policy -> ncards:int -> card:int -> local:int -> int
(** The smallest global allocation cursor consistent with [local]
    existing on [card] — [global_of + 1] for a data slot; for a parity
    slot (which eager allocation creates the moment its stripe opens),
    one past the stripe's first data block.  Remount rebuilds the global
    cursor as the max of this over every card's deepest recovered
    local. *)
