(** Block-placement policies for multi-card arrays.

    An array over N cards needs a pure function from a global block handle
    to the card that stores it.  Global handles are allocated densely from
    zero and never reused (the managers' own allocation discipline), so the
    card-local handle is fully determined too: it is the rank of the global
    handle among all handles routed to that card.  Both directions are
    closed-form for every policy here — the array keeps {e no} placement
    table, which is what makes crash recovery trivial: remounting each card
    recovers its local handles, and the inverse mapping reconstructs the
    global ones.

    [Round_robin] with strip size [s] sends [s] consecutive handles to each
    card in turn (the PFS striping shape: sequential files spread across
    every card at strip granularity).  [Hashed] is the modulo baseline —
    equivalent to a strip size of 1. *)

type policy = Round_robin of { strip_blocks : int } | Hashed

val policy_name : policy -> string
val pp_policy : Format.formatter -> policy -> unit

val validate : policy -> ncards:int -> (unit, string) result
(** [ncards] must be positive; round-robin strips must be positive. *)

val card_of : policy -> ncards:int -> block:int -> int
(** The card storing global handle [block]. *)

val local_of : policy -> ncards:int -> block:int -> int
(** The card-local handle: how many global handles before [block] were
    routed to the same card.  Dense allocation makes this the exact handle
    the card's manager hands out. *)

val global_of : policy -> ncards:int -> card:int -> local:int -> int
(** Inverse of [card_of]/[local_of]:
    [global_of p ~ncards ~card:(card_of p ~ncards ~block:g)
       ~local:(local_of p ~ncards ~block:g) = g]. *)

val locals_before : policy -> ncards:int -> card:int -> int -> int
(** [locals_before p ~ncards ~card g]: how many globals in [\[0, g)] route
    to [card] — the card-local allocation cursor consistent with a global
    cursor of [g].  After a crash, cards may have lost different numbers of
    tail allocations (blocks that died before ever reaching flash); the
    array uses this to re-align every card's cursor with the recovered
    global one. *)
