(* [Storage.Array] (the card array) would shadow the stdlib inside this library. *)
module Array = Stdlib.Array
open Sim

type policy = Greedy | Cost_benefit

let policy_name = function Greedy -> "greedy" | Cost_benefit -> "cost-benefit"
let pp_policy ppf p = Fmt.string ppf (policy_name p)

let score policy ~now seg =
  let u = Segment.utilization seg in
  match policy with
  | Greedy -> 1.0 -. u
  | Cost_benefit ->
    let age =
      Time.span_to_s (Time.diff (Time.max now (Segment.last_touched seg))
                        (Segment.last_touched seg))
    in
    (* +1s keeps brand-new segments from scoring zero across the board. *)
    (age +. 1.0) *. (1.0 -. u) /. (1.0 +. u)

let select policy ~now ~eligible segments =
  Array.fold_left
    (fun best seg ->
      if Segment.state seg <> Segment.Closed || not (eligible seg) then best
      else begin
        let s = score policy ~now seg in
        match best with
        | Some (_, best_score) when best_score >= s -> best
        | Some _ | None -> Some (seg, s)
      end)
    None segments
  |> Option.map fst

let write_amplification ~blocks_written ~blocks_flushed =
  if blocks_flushed = 0 then 1.0
  else float_of_int blocks_written /. float_of_int blocks_flushed
