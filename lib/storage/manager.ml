(* The library now exports [Storage.Array] (the card array), which would
   otherwise shadow the stdlib inside the library. *)
module Array = Stdlib.Array
open Sim

let log_src = Logs.Src.create "ssmc.storage.manager" ~doc:"Physical storage manager"

module Log = (val Logs.src_log log_src)

exception Out_of_space

(* Probe handles are per-instance so each card of an array accounts under
   its own label prefix ([Banks.probe_label]); a standalone manager
   ([card = None]) keeps the historical ["storage.manager.*"] names, so
   single-card machines are observably unchanged.  Handles are cheap
   interned names — creating a record per manager costs a few words. *)
type probes = {
  p_writes : Probe.counter;
  p_reads : Probe.counter;
  p_flushed : Probe.counter;
  p_cleaned : Probe.counter;
  p_cold : Probe.counter;
  p_hot_retained : Probe.counter;
  p_cleanings : Probe.counter;
  p_remounts : Probe.counter;
  p_busy_us : Probe.summary;
  (* Per-bank media-operation accounting, same label scheme as the
     per-card counters above so an array wrapping banked managers never
     duplicates a counter name. *)
  p_bank_programs : Probe.counter array;
  p_bank_erases : Probe.counter array;
}

let make_probes ?card ~nbanks () =
  let l m = Banks.probe_label ?card m in
  let lb b m = Banks.probe_label ?card ~bank:b m in
  {
    p_writes = Probe.counter (l "client_writes");
    p_reads = Probe.counter (l "client_reads");
    p_flushed = Probe.counter (l "blocks_flushed");
    p_cleaned = Probe.counter (l "blocks_cleaned");
    p_cold = Probe.counter (l "cold_loads");
    p_hot_retained = Probe.counter (l "hot_retained");
    p_cleanings = Probe.counter (l "clean_ops");
    p_remounts = Probe.counter (l "remounts");
    p_busy_us = Probe.summary (l "busy_us");
    p_bank_programs = Array.init nbanks (fun b -> Probe.counter (lb b "programs"));
    p_bank_erases = Array.init nbanks (fun b -> Probe.counter (lb b "erases"));
  }

type selector = Indexed | Scan | Checked

let selector_name = function
  | Indexed -> "indexed"
  | Scan -> "scan"
  | Checked -> "checked"

type config = {
  segment_sectors : int;
  buffer : Write_buffer.config;
  cleaner : Cleaner.policy;
  wear : Wear.policy;
  banking : Banks.policy;
  low_water : int;
  high_water : int;
  hot_threshold : float option;
  heat_half_life : Time.span;
  max_flush_batch : int;
  flush_spacing : Time.span;
  flush_watermark : float option;
  selector : selector;
  diff_log : Diff_log.config option;
}

let default_config =
  {
    segment_sectors = 32;
    buffer = Write_buffer.default_config;
    cleaner = Cleaner.Cost_benefit;
    wear = Wear.Dynamic;
    banking = Banks.Unified;
    low_water = 2;
    high_water = 4;
    hot_threshold = None;
    heat_half_life = Time.span_s 60.0;
    max_flush_batch = 16;
    flush_spacing = Time.span_ms 100.0;
    flush_watermark = None;
    selector = Indexed;
    diff_log = None;
  }

type block = int

type loc =
  | Blank  (** Allocated, no data anywhere yet. *)
  | Buffered  (** Dirty in the DRAM write buffer. *)
  | Flashed of { seg : int; slot : int }

type meta = {
  mutable loc : loc;
  (* Sector holding this block's newest durable header, -1 if none.  It can
     trail [loc]: a rewritten-but-dirty block keeps its old on-flash header
     live so a crash rolls back to the previous version instead of losing
     the block outright. *)
  mutable hdr_sector : int;
}

(* A sector header as the log-structured convention stores it on the
   medium.  [h_live] is the in-place obsoletion bit: NOR flash can clear
   bits without an erase, so superseding or deleting a block marks its old
   header dead where it lies — remount then never resurrects stale data.
   [h_pos] distinguishes a full base page (-1, the only kind without diff
   logging) from a delta record at that position in its block's chain. *)
type header = { h_block : int; h_version : int; mutable h_live : bool; h_pos : int }

(* Both metadata tables are dense-keyed — block ids count up from zero and
   sector numbers are bounded by the flash geometry — so each is an array
   indexed directly by its key, with absence a shared sentinel compared by
   physical identity.  A lookup on the replay hot path is one bounds check
   and one load, and an insert allocates nothing beyond the record itself;
   the hashtables these replace allocated a bucket per insert and their
   resizes dominated preload.  The sentinels are never mutated: every
   mutation goes through a record a successful lookup returned ([find_meta]
   raises on the sentinel, [obsolete_header] guards on [h_block]). *)
let no_meta : meta = { loc = Blank; hdr_sector = min_int }

let no_header : header =
  { h_block = min_int; h_version = min_int; h_live = false; h_pos = -1 }

type t = {
  cfg : config;
  card : int option;  (** Position in a [Storage.Array], [None] standalone. *)
  probes : probes;
  engine : Engine.t;
  flash : Device.Flash.t;
  dram : Device.Dram.t;
  segments : Segment.t array;
  (* Page-differential chain table, [None] when the policy is off — every
     consult is guarded on it, so the off path is byte-identical to the
     pre-diff manager. *)
  diff : Diff_log.t option;
  retired : bool array;
  segs_per_bank : int;
  buffer : Write_buffer.t;
  heat : Heat.t;
  mutable meta : meta array; (* indexed by block id; [no_meta] = absent *)
  mutable next_block : block;
  mutable open_fresh : int option;
  mutable open_clean : int option;
  mutable open_cold : int option;
  mutable timer : (Event_queue.handle * Time.t) option;
  mutable cleaning : bool;  (** Re-entrancy guard for the cleaner. *)
  (* Sector headers: which logical block a sector holds, its write version,
     and whether it is still live.  Conceptually part of flash (it survives
     power loss); kept here because the device model does not store
     payloads. *)
  durable : header array; (* indexed by sector; [no_header] = absent *)
  mutable next_version : int;
  (* Incrementally maintained segment-state indexes and counters.  The
     indexes answer every allocation/cleaning decision in O(log n); the
     counters replace the O(#segments) rescans in stats and the
     maybe_clean loop condition.  Maintained in every selector mode (the
     Scan reference consults the arrays instead, which is what the
     differential tests compare against). *)
  idx : Seg_index.t;
  wear_acc : Wear.acc;
  in_closed_idx : bool array;
  mutable n_live_blocks : int;
  mutable n_retired : int;
  (* Counters. *)
  mutable c_writes : int;
  mutable c_reads : int;
  mutable c_flushed : int;
  mutable c_cleaned : int;
  mutable c_cold : int;
  mutable c_hot_retained : int;
  mutable c_cleanings : int;
}

let block_bytes t = Device.Flash.sector_bytes t.flash
let nsegments t = Array.length t.segments
let bank_of_segment t i = i / t.segs_per_bank
let flash t = t.flash
let dram t = t.dram
let engine t = t.engine
let card t = t.card

(* Busy-time accounting: every client-visible operation observes the span
   it occupied the card (including bank-queue waits), so an array's
   per-card utilization falls out of one summary per card. *)
let note_busy t ~start ~finish =
  Probe.observe t.probes.p_busy_us (Time.span_to_us (Time.diff finish start))

(* Timeline spans carry the card position when the manager is part of an
   array; standalone managers emit exactly the historical span args. *)
let card_args t args =
  match t.card with
  | None -> args
  | Some c -> ("card", string_of_int c) :: args

let find_meta t b =
  let m = if b >= 0 && b < Array.length t.meta then t.meta.(b) else no_meta in
  if m != no_meta then m
  else invalid_arg (Printf.sprintf "Manager: unknown block %d" b)

let ensure_meta_capacity t b =
  let cap = Array.length t.meta in
  if b >= cap then begin
    let narr = Array.make (max (b + 1) (max 1024 (2 * cap))) no_meta in
    Array.blit t.meta 0 narr 0 cap;
    t.meta <- narr
  end

let set_meta t b m =
  ensure_meta_capacity t b;
  t.meta.(b) <- m

let erase_count_of_segment t seg =
  (* Segments wear uniformly (whole-segment erases), so the first sector's
     count stands for the segment. *)
  Device.Flash.erase_count t.flash ~sector:(Segment.first_sector seg)

(* --- Index maintenance ----------------------------------------------------

   Every segment state transition flows through these hooks, keeping the
   per-bank free/victim structures, the wear accumulator, and the O(1)
   counters in sync with the array the reference scans walk. *)

(* The free index key: erase count under wear-leveling allocation, 0 under
   first-fit (so the min entry is simply the lowest free id). *)
let wear_key t seg =
  if Seg_index.wear_keyed t.idx then erase_count_of_segment t seg else 0

let free_index_add t seg =
  let i = Segment.id seg in
  Seg_index.add_free t.idx ~bank:(bank_of_segment t i) ~key:(wear_key t seg) ~id:i

let free_index_remove t seg =
  let i = Segment.id seg in
  Seg_index.remove_free t.idx ~bank:(bank_of_segment t i) ~key:(wear_key t seg) ~id:i

let lt_ns seg = Time.to_ns (Segment.last_touched seg)

let closed_index_add t seg =
  let i = Segment.id seg in
  if not t.retired.(i) then begin
    Seg_index.add_closed t.idx ~bank:(bank_of_segment t i) ~id:i
      ~live:(Segment.live_count seg) ~erase:(erase_count_of_segment t seg)
      ~lt_ns:(lt_ns seg);
    t.in_closed_idx.(i) <- true
  end

let closed_index_remove t seg =
  let i = Segment.id seg in
  if t.in_closed_idx.(i) then begin
    Seg_index.remove_closed t.idx ~bank:(bank_of_segment t i) ~id:i
      ~live:(Segment.live_count seg) ~erase:(erase_count_of_segment t seg)
      ~lt_ns:(lt_ns seg);
    t.in_closed_idx.(i) <- false
  end

(* After [Segment.kill seg ~slot]. *)
let note_kill t seg =
  t.n_live_blocks <- t.n_live_blocks - 1;
  let i = Segment.id seg in
  if t.in_closed_idx.(i) then begin
    let live = Segment.live_count seg in
    Seg_index.closed_live_changed t.idx ~bank:(bank_of_segment t i) ~id:i
      ~old_live:(live + 1) ~new_live:live ~lt_ns:(lt_ns seg)
  end

(* Append a live block to an Open segment: the one place segments fill,
   touch, and transition to Closed (where they become victim candidates). *)
let log_append_exn t seg ~block ~touch_at =
  match Segment.append seg ~block with
  | None -> assert false (* callers hold an Open (non-full) segment *)
  | Some slot ->
    t.n_live_blocks <- t.n_live_blocks + 1;
    Segment.touch seg ~at:touch_at;
    if Segment.state seg = Segment.Closed then closed_index_add t seg;
    slot

(* Rebuild every index, counter, and the wear accumulator from the segment
   array (manager creation and crash recovery, where the rebuild loop
   manipulates segments directly). *)
let rebuild_indexes t =
  Seg_index.clear t.idx;
  Wear.acc_clear t.wear_acc;
  Array.fill t.in_closed_idx 0 (Array.length t.in_closed_idx) false;
  t.n_live_blocks <- 0;
  t.n_retired <- 0;
  Array.iteri
    (fun i seg ->
      Wear.acc_add t.wear_acc (erase_count_of_segment t seg);
      t.n_live_blocks <- t.n_live_blocks + Segment.live_count seg;
      if t.retired.(i) then t.n_retired <- t.n_retired + 1
      else
        match Segment.state seg with
        | Segment.Free -> free_index_add t seg
        | Segment.Closed -> closed_index_add t seg
        | Segment.Open -> ())
    t.segments

let create ?card cfg ~engine ~flash ~dram =
  if cfg.segment_sectors <= 0 then invalid_arg "Manager.create: segment_sectors <= 0";
  if cfg.segment_sectors > Device.Flash.sectors_per_bank flash then
    invalid_arg "Manager.create: segment does not fit in a bank";
  if cfg.low_water < 1 || cfg.high_water < cfg.low_water then
    invalid_arg "Manager.create: watermarks must satisfy 1 <= low <= high";
  (match Banks.validate cfg.banking ~nbanks:(Device.Flash.nbanks flash) with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Manager.create: " ^ msg));
  (match cfg.diff_log with
  | Some d when d.Diff_log.delta_bytes > Device.Flash.sector_bytes flash ->
    invalid_arg "Manager.create: diff_log delta_bytes exceed a sector"
  | Some _ | None -> ());
  let nbanks = Device.Flash.nbanks flash in
  let segs_per_bank = Device.Flash.sectors_per_bank flash / cfg.segment_sectors in
  if segs_per_bank < 1 then invalid_arg "Manager.create: bank smaller than a segment";
  let nsegments = nbanks * segs_per_bank in
  if nsegments < cfg.high_water + 1 then
    invalid_arg "Manager.create: flash too small for the cleaning watermarks";
  let segments =
    Array.init nsegments (fun i ->
        let bank = i / segs_per_bank in
        let index_in_bank = i mod segs_per_bank in
        let first_sector =
          (bank * Device.Flash.sectors_per_bank flash)
          + (index_in_bank * cfg.segment_sectors)
        in
        Segment.create ~id:i ~first_sector ~nslots:cfg.segment_sectors)
  in
  let t =
    {
      cfg;
      card;
      probes = make_probes ?card ~nbanks ();
      engine;
      flash;
      dram;
      segments;
      diff = Option.map Diff_log.create cfg.diff_log;
      retired = Array.make nsegments false;
      segs_per_bank;
      buffer = Write_buffer.create cfg.buffer;
      heat = Heat.create ~half_life:cfg.heat_half_life ();
      meta = Array.make (nsegments * cfg.segment_sectors) no_meta;
      next_block = 0;
      open_fresh = None;
      open_clean = None;
      open_cold = None;
      timer = None;
      cleaning = false;
      durable = Array.make (Device.Flash.nsectors flash) no_header;
      next_version = 0;
      idx =
        Seg_index.create ~nbanks
          ~wear_keyed:(cfg.wear <> Wear.None_)
          ~track_live:(cfg.cleaner = Cleaner.Greedy)
          ~track_erase:(match cfg.wear with Wear.Static _ -> true | _ -> false)
          ~track_age:(cfg.cleaner = Cleaner.Cost_benefit);
      wear_acc = Wear.acc_create ();
      in_closed_idx = Array.make nsegments false;
      n_live_blocks = 0;
      n_retired = 0;
      c_writes = 0;
      c_reads = 0;
      c_flushed = 0;
      c_cleaned = 0;
      c_cold = 0;
      c_hot_retained = 0;
      c_cleanings = 0;
    }
  in
  rebuild_indexes t;
  t

(* --- Reference scans (the pre-index implementation, kept verbatim) --------

   These remain the executable specification: the Scan selector routes
   every decision and statistic through them, and the Checked selector
   runs both paths and fails loudly on any divergence.  The differential
   tests in test/test_manager_diff.ml hold the two implementations
   byte-identical. *)

let free_segment_count_scan t =
  let n = ref 0 in
  Array.iteri
    (fun i seg ->
      if (not t.retired.(i)) && Segment.state seg = Segment.Free then incr n)
    t.segments;
  !n

let live_block_count_scan t =
  Array.fold_left (fun acc seg -> acc + Segment.live_count seg) 0 t.segments

let capacity_blocks_scan t =
  let usable = ref 0 in
  Array.iteri
    (fun i seg -> if not t.retired.(i) then usable := !usable + Segment.nslots seg)
    t.segments;
  !usable

let free_segment_count t =
  match t.cfg.selector with
  | Scan -> free_segment_count_scan t
  | Indexed -> Seg_index.free_count t.idx
  | Checked ->
    let n = Seg_index.free_count t.idx in
    let scan = free_segment_count_scan t in
    if n <> scan then
      Fmt.failwith "Manager: free-segment counter %d but scan says %d" n scan;
    n

let live_block_count t =
  match t.cfg.selector with
  | Scan -> live_block_count_scan t
  | Indexed -> t.n_live_blocks
  | Checked ->
    let n = t.n_live_blocks in
    let scan = live_block_count_scan t in
    if n <> scan then
      Fmt.failwith "Manager: live-block counter %d but scan says %d" n scan;
    n

let capacity_blocks t =
  match t.cfg.selector with
  | Scan -> capacity_blocks_scan t
  | Indexed -> (nsegments t - t.n_retired) * t.cfg.segment_sectors
  | Checked ->
    let n = (nsegments t - t.n_retired) * t.cfg.segment_sectors in
    let scan = capacity_blocks_scan t in
    if n <> scan then Fmt.failwith "Manager: capacity counter %d but scan says %d" n scan;
    n

(* Kill a block's flash copy (data superseded or freed). *)
let kill_flash_copy t m =
  match m.loc with
  | Flashed { seg; slot } ->
    let s = t.segments.(seg) in
    Segment.kill s ~slot;
    note_kill t s;
    m.loc <- Blank
  | Blank | Buffered -> ()

let or_device_failure = function
  | Ok op -> op
  | Error e -> Fmt.failwith "Manager: unexpected flash failure: %a" Device.Flash.pp_error e

(* Clear a block's previous header's liveness bit in place, if it still
   exists and still belongs to this block (cleaning may have erased the
   sector and a later program reused it for someone else). *)
let obsolete_header t ~block ~hdr_sector =
  if hdr_sector >= 0 then begin
    let h = t.durable.(hdr_sector) in
    if h.h_block = block then h.h_live <- false
  end

(* Written as part of every sector program (the 16-byte header).  The new
   header supersedes the block's previous one, which is obsoleted in place
   — the bit-clear rides along with programs the caller already charged to
   the device, so it costs no extra bank time. *)
let record_header t m ~sector ~block =
  obsolete_header t ~block ~hdr_sector:m.hdr_sector;
  let version = t.next_version in
  t.next_version <- version + 1;
  t.durable.(sector) <- { h_block = block; h_version = version; h_live = true; h_pos = -1 };
  m.hdr_sector <- sector

(* A delta record's header.  Deltas deliberately bypass [m.hdr_sector]:
   that pointer tracks the block's base header (the rollback anchor), and
   a chain keeps base plus every delta live at once.  [prev_sector]
   obsoletes the delta's own superseded copy when the cleaner relocates
   it. *)
let record_delta_header t ~sector ~block ~pos ~prev_sector =
  (match prev_sector with
  | Some s -> obsolete_header t ~block ~hdr_sector:s
  | None -> ());
  let version = t.next_version in
  t.next_version <- version + 1;
  t.durable.(sector) <- { h_block = block; h_version = version; h_live = true; h_pos = pos }

(* --- Free-segment picks --------------------------------------------------- *)

(* The reference: materialize the eligible set, restrict it to the
   least-busy bank, hand it to Wear.pick_free. *)
let pick_scan t ~purpose ~for_cold ~restrict =
  let nbanks = Device.Flash.nbanks t.flash in
  let eligible seg =
    let i = Segment.id seg in
    Segment.state seg = Segment.Free
    && (not t.retired.(i))
    && ((not restrict)
       || Banks.allowed t.cfg.banking ~nbanks purpose ~bank:(bank_of_segment t i))
  in
  let candidates = Array.of_list (List.filter eligible (Array.to_list t.segments)) in
  if Array.length candidates = 0 then None
  else begin
    (* Prefer the least-busy bank so queued writeback spreads across the
       banks it is allowed to use; wear policy picks within that bank. *)
    let bank_busy seg =
      Device.Flash.bank_busy_until t.flash ~bank:(bank_of_segment t (Segment.id seg))
    in
    let best_busy =
      Array.fold_left (fun acc seg -> Time.min acc (bank_busy seg))
        (bank_busy candidates.(0)) candidates
    in
    let in_best =
      Array.of_list
        (List.filter
           (fun seg -> Time.equal (bank_busy seg) best_busy)
           (Array.to_list candidates))
    in
    Wear.pick_free ~for_cold t.cfg.wear ~erase_count:(erase_count_of_segment t) in_best
  end

(* The index walk: per allowed bank, one O(log n) min/max lookup; across
   banks, prefer the least-busy bank, then the wear policy's key, then the
   lowest id — exactly the reference's tie-breaking (ids ascend with
   banks, and each bank entry already carries its lowest tied id).  No
   closures, no intermediate lists. *)
let pick_indexed t ~purpose ~for_cold ~restrict =
  let nbanks = Device.Flash.nbanks t.flash in
  (* Under Static wear leveling, cold data parks on the most-worn free
     segment; everything else takes the least-worn (or first-fit, where
     keys are constant 0). *)
  let want_most_worn =
    match t.cfg.wear with Wear.Static _ -> for_cold | Wear.None_ | Wear.Dynamic -> false
  in
  let best_id = ref (-1) in
  let best_key = ref 0 in
  let best_busy = ref Time.zero in
  for bank = 0 to nbanks - 1 do
    if
      Seg_index.bank_free_count t.idx ~bank > 0
      && ((not restrict) || Banks.allowed t.cfg.banking ~nbanks purpose ~bank)
    then begin
      let entry =
        if want_most_worn then Seg_index.most_worn_free t.idx ~bank
        else Seg_index.least_worn_free t.idx ~bank
      in
      match entry with
      | None -> assert false (* bank_free_count > 0 *)
      | Some (key, id) ->
        let better =
          !best_id < 0
          ||
          let busy = Device.Flash.bank_busy_until t.flash ~bank in
          Time.( < ) busy !best_busy
          || Time.equal busy !best_busy
             && (if want_most_worn then key > !best_key else key < !best_key)
        in
        if better then begin
          best_id := id;
          best_key := key;
          best_busy := Device.Flash.bank_busy_until t.flash ~bank
        end
    end
  done;
  if !best_id < 0 then None else Some t.segments.(!best_id)

let pick_for t ~purpose ~for_cold ~restrict =
  match t.cfg.selector with
  | Indexed -> pick_indexed t ~purpose ~for_cold ~restrict
  | Scan -> pick_scan t ~purpose ~for_cold ~restrict
  | Checked ->
    let i = pick_indexed t ~purpose ~for_cold ~restrict in
    let s = pick_scan t ~purpose ~for_cold ~restrict in
    (match (i, s) with
    | None, None -> ()
    | Some a, Some b when Segment.id a = Segment.id b -> ()
    | _ ->
      Fmt.failwith "Manager: pick divergence (indexed %a, scan %a)"
        Fmt.(option ~none:(any "none") int)
        (Option.map Segment.id i)
        Fmt.(option ~none:(any "none") int)
        (Option.map Segment.id s));
    i

(* --- Victim selection ----------------------------------------------------- *)

let bank_allowed_for t ~purpose ~bank =
  match purpose with
  | None -> true
  | Some p -> Banks.allowed t.cfg.banking ~nbanks:(Device.Flash.nbanks t.flash) p ~bank

(* The reference: Wear.relocation_victim then Cleaner.select, both full
   folds over the segment array. *)
let select_victim_scan t ~now ~purpose =
  (* Only Closed segments are ever selected (both selectors filter on
     state), so retirement (and the caller's bank constraint) are the
     only extra eligibility conditions. *)
  let eligible seg =
    let i = Segment.id seg in
    (not t.retired.(i)) && bank_allowed_for t ~purpose ~bank:(bank_of_segment t i)
  in
  match
    Wear.relocation_victim t.cfg.wear ~erase_count:(erase_count_of_segment t) ~eligible
      t.segments
  with
  | Some v -> Some v
  | None -> Cleaner.select t.cfg.cleaner ~now ~eligible t.segments

let select_victim_indexed t ~now ~purpose =
  let nbanks = Device.Flash.nbanks t.flash in
  let relocation =
    match t.cfg.wear with
    | Wear.None_ | Wear.Dynamic -> None
    | Wear.Static { spread_threshold } ->
      let e = Wear.evenness_of_acc t.wear_acc in
      if not (Wear.spread_exceeds e ~spread_threshold) then None
      else begin
        (* The least-worn closed segment in the allowed banks, lowest id
           on ties. *)
        let best_id = ref (-1) in
        let best_key = ref 0 in
        for bank = 0 to nbanks - 1 do
          if bank_allowed_for t ~purpose ~bank then
            match Seg_index.coldest_closed t.idx ~bank with
            | Some (key, id) ->
              if !best_id < 0 || key < !best_key then begin
                best_id := id;
                best_key := key
              end
            | None -> ()
        done;
        if !best_id < 0 then None else Some t.segments.(!best_id)
      end
  in
  match relocation with
  | Some v -> Some v
  | None -> (
    match t.cfg.cleaner with
    | Cleaner.Greedy ->
      (* Greedy maximizes 1 - u, i.e. minimizes the live count; lowest id
         on ties (per-bank entries carry their lowest tied id, and ids
         ascend with banks). *)
      let best_id = ref (-1) in
      let best_key = ref 0 in
      for bank = 0 to nbanks - 1 do
        if bank_allowed_for t ~purpose ~bank then
          match Seg_index.least_live_closed t.idx ~bank with
          | Some (key, id) ->
            if !best_id < 0 || key < !best_key then begin
              best_id := id;
              best_key := key
            end
          | None -> ()
      done;
      if !best_id < 0 then None else Some t.segments.(!best_id)
    | Cleaner.Cost_benefit ->
      (* Within one last-touched group the age factor is shared, so only
         the group's emptiest-lowest-id member can win; across groups,
         walk oldest-first and stop once the group's score ceiling
         (age + 1, utilization 0) can no longer beat the best so far.
         Scores are computed by Cleaner.score itself, so the floats are
         the reference's floats. *)
      let best_id = ref (-1) in
      let best_score = ref neg_infinity in
      for bank = 0 to nbanks - 1 do
        if bank_allowed_for t ~purpose ~bank then
          Seg_index.iter_age_reps t.idx ~bank ~f:(fun ~lt_ns ~id ->
              let lt = Time.of_ns lt_ns in
              let age = Time.span_to_s (Time.diff (Time.max now lt) lt) in
              if !best_id >= 0 && age +. 1.0 < !best_score then false
              else begin
                let s = Cleaner.score t.cfg.cleaner ~now t.segments.(id) in
                if
                  !best_id < 0 || s > !best_score
                  || (s = !best_score && id < !best_id)
                then begin
                  best_id := id;
                  best_score := s
                end;
                true
              end)
      done;
      if !best_id < 0 then None else Some t.segments.(!best_id))

let select_victim t ~now ~purpose =
  match t.cfg.selector with
  | Indexed -> select_victim_indexed t ~now ~purpose
  | Scan -> select_victim_scan t ~now ~purpose
  | Checked ->
    let i = select_victim_indexed t ~now ~purpose in
    let s = select_victim_scan t ~now ~purpose in
    (match (i, s) with
    | None, None -> ()
    | Some a, Some b when Segment.id a = Segment.id b -> ()
    | _ ->
      Fmt.failwith "Manager: victim divergence (indexed %a, scan %a)"
        Fmt.(option ~none:(any "none") int)
        (Option.map Segment.id i)
        Fmt.(option ~none:(any "none") int)
        (Option.map Segment.id s));
    i

(* --- Log appends, segment acquisition, cleaning -------------------------- *)

let rec ensure_open t ~purpose ~cursor =
  let slot_ref, set =
    match purpose with
    | Banks.Fresh_write -> (t.open_fresh, fun v -> t.open_fresh <- v)
    | Banks.Clean_out -> (t.open_clean, fun v -> t.open_clean <- v)
    | Banks.Cold_load -> (t.open_cold, fun v -> t.open_cold <- v)
  in
  match slot_ref with
  | Some i when Segment.state t.segments.(i) = Segment.Open -> t.segments.(i)
  | Some _ | None ->
    let seg = acquire t ~purpose ~cursor in
    set (Some (Segment.id seg));
    seg

and acquire t ~purpose ~cursor =
  if not t.cleaning then maybe_clean t ~cursor;
  let for_cold =
    match purpose with
    | Banks.Clean_out | Banks.Cold_load -> true
    | Banks.Fresh_write -> false
  in
  let choice =
    match pick_for t ~purpose ~for_cold ~restrict:true with
    | Some s -> Some s
    | None ->
      (* No free segment in the banks this purpose may use: try to recycle
         one there before polluting the other banks' partition. *)
      if (not t.cleaning) && clean_one t ~cursor ~purpose:(Some purpose) then
        pick_for t ~purpose ~for_cold ~restrict:true
      else None
  in
  let choice =
    match choice with
    | Some s -> Some s
    | None -> pick_for t ~purpose ~for_cold ~restrict:false
  in
  match choice with
  | Some seg ->
    free_index_remove t seg;
    Segment.open_ seg;
    Segment.touch seg ~at:(Engine.now t.engine);
    seg
  | None ->
    if t.cleaning then begin
      Log.err (fun m -> m "out of space (during cleaning)");
      raise Out_of_space
    end
    else begin
      (* One forced cleaning pass, then give up. *)
      if not (clean_one t ~cursor ~purpose:None) then begin
        Log.err (fun m ->
            m "out of space: %d live blocks, %d free segments" (live_block_count t)
              (free_segment_count t));
        raise Out_of_space
      end;
      acquire t ~purpose ~cursor
    end

and maybe_clean t ~cursor =
  while
    free_segment_count t < t.cfg.low_water
    && free_segment_count t < t.cfg.high_water
    && clean_one t ~cursor ~purpose:None
  do
    ()
  done

and clean_one t ~cursor ~purpose =
  if t.cleaning then false
  else begin
    t.cleaning <- true;
    Fun.protect ~finally:(fun () -> t.cleaning <- false) @@ fun () ->
    let now = Engine.now t.engine in
    match select_victim t ~now ~purpose with
    | None ->
      Log.debug (fun m -> m "cleaner: no eligible victim");
      false
    | Some victim ->
      Log.debug (fun m ->
          m "cleaning segment %d (live %d/%d, %d erases)" (Segment.id victim)
            (Segment.live_count victim) (Segment.nslots victim)
            (erase_count_of_segment t victim));
      (* The victim leaves the candidate structures now; the copy-out
         kills below adjust only the live-block counter. *)
      closed_index_remove t victim;
      (* Don't clean a segment that frees nothing unless wear leveling
         forced it (in which case it was returned by relocation_victim). *)
      t.c_cleanings <- t.c_cleanings + 1;
      Probe.incr t.probes.p_cleanings;
      let clean_start = !cursor in
      let live_in = Segment.live_count victim in
      let bytes = block_bytes t in
      (* Copy out the survivors.  With diff logging on, a live slot may
         hold a chain's base page or one of its delta records rather than
         the block's only copy; relocating those updates the chain table
         (and, for deltas, the record's own header) instead of [m.loc]. *)
      List.iter
        (fun (slot, b) ->
          let sector = Segment.sector_of_slot victim slot in
          let role =
            match t.diff with
            | Some d when Diff_log.has_chain d ~block:b -> (
              match Diff_log.base d ~block:b with
              | Some (bs, bl) when bs = Segment.id victim && bl = slot -> `Base d
              | Some _ | None -> (
                match
                  List.find_opt
                    (fun (dl : Diff_log.delta) ->
                      dl.Diff_log.d_seg = Segment.id victim && dl.Diff_log.d_slot = slot)
                    (Diff_log.deltas d ~block:b)
                with
                | Some dl -> `Delta (d, dl)
                | None -> `Whole))
            | Some _ | None -> `Whole
          in
          let nbytes =
            match role with `Delta (_, dl) -> dl.Diff_log.d_bytes | `Base _ | `Whole -> bytes
          in
          let read_op =
            or_device_failure
              (Device.Flash.read t.flash ~now:!cursor ~sector ~bytes:nbytes)
          in
          cursor := read_op.Device.Flash.finish;
          let out = ensure_open t ~purpose:Banks.Clean_out ~cursor in
          let out_slot = log_append_exn t out ~block:b ~touch_at:now in
          let out_sector = Segment.sector_of_slot out out_slot in
          let prog =
            or_device_failure
              (Device.Flash.program t.flash ~now:!cursor ~sector:out_sector ~bytes:nbytes)
          in
          cursor := prog.Device.Flash.finish;
          Probe.incr t.probes.p_bank_programs.(bank_of_segment t (Segment.id out));
          (match role with
          | `Whole ->
            let m = find_meta t b in
            record_header t m ~sector:out_sector ~block:b;
            m.loc <- Flashed { seg = Segment.id out; slot = out_slot }
          | `Base d ->
            let m = find_meta t b in
            record_header t m ~sector:out_sector ~block:b;
            Diff_log.rebase d ~block:b ~seg:(Segment.id out) ~slot:out_slot;
            (* While the block sits dirty its loc stays Buffered; the
               chain table alone tracks where the base went. *)
            (match m.loc with
            | Flashed _ -> m.loc <- Flashed { seg = Segment.id out; slot = out_slot }
            | Buffered | Blank -> ())
          | `Delta (d, dl) ->
            record_delta_header t ~sector:out_sector ~block:b ~pos:dl.Diff_log.d_pos
              ~prev_sector:(Some dl.Diff_log.d_sector);
            Diff_log.relocate_delta d ~block:b ~pos:dl.Diff_log.d_pos
              ~seg:(Segment.id out) ~slot:out_slot ~sector:out_sector);
          Segment.kill victim ~slot;
          note_kill t victim;
          t.c_cleaned <- t.c_cleaned + 1;
          Probe.incr t.probes.p_cleaned)
        (Segment.live_blocks victim);
      (* Erase the sectors that were programmed since the last erase. *)
      let erases_before = erase_count_of_segment t victim in
      let victim_bank = bank_of_segment t (Segment.id victim) in
      for slot = 0 to Segment.used_slots victim - 1 do
        let sector = Segment.sector_of_slot victim slot in
        t.durable.(sector) <- no_header;
        match Device.Flash.erase t.flash ~now:!cursor ~sector with
        | Ok op ->
          cursor := op.Device.Flash.finish;
          Probe.incr t.probes.p_bank_erases.(victim_bank)
        | Error Device.Flash.Bad_sector -> ()
        | Error e ->
          Fmt.failwith "Manager: erase failed: %a" Device.Flash.pp_error e
      done;
      Wear.acc_bump t.wear_acc ~old_count:erases_before
        ~new_count:(erase_count_of_segment t victim);
      Segment.reset_to_free victim;
      (* Retire the segment if wear-out claimed any of its sectors. *)
      let worn = ref false in
      for slot = 0 to Segment.nslots victim - 1 do
        if Device.Flash.is_bad t.flash ~sector:(Segment.sector_of_slot victim slot)
        then worn := true
      done;
      if !worn then begin
        t.retired.(Segment.id victim) <- true;
        t.n_retired <- t.n_retired + 1;
        Log.warn (fun m ->
            m "segment %d retired (worn out); %d segments remain"
              (Segment.id victim)
              (Array.length t.segments - t.n_retired))
      end
      else free_index_add t victim;
      if Probe.timeline_enabled () then
        Probe.span ~name:"cleaner.pass" ~cat:"cleaner"
          ~args:
            (card_args t
               [
                 ("segment", string_of_int (Segment.id victim));
                 ("copied", string_of_int live_in);
               ])
          ~start:clean_start ~finish:!cursor ();
      true
  end

(* Program one client/cold block at the head of the log, whole. *)
let append_full t ~purpose ~cursor b =
  let seg = ensure_open t ~purpose ~cursor in
  let slot = log_append_exn t seg ~block:b ~touch_at:(Engine.now t.engine) in
  let sector = Segment.sector_of_slot seg slot in
  let prog =
    or_device_failure
      (Device.Flash.program t.flash ~now:!cursor ~sector ~bytes:(block_bytes t))
  in
  cursor := prog.Device.Flash.finish;
  Probe.incr t.probes.p_bank_programs.(bank_of_segment t (Segment.id seg));
  let m = find_meta t b in
  record_header t m ~sector ~block:b;
  m.loc <- Flashed { seg = Segment.id seg; slot }

(* Program an overwrite as a delta record against the chain's base page:
   one log slot, but only [delta_bytes] of program traffic.  The block's
   loc goes back to the base page — reads reassemble base + chain, and
   the crash harness's placement invariant is over the base. *)
let append_delta t d ~cursor b ~bseg ~bslot =
  let nbytes = (Diff_log.config d).Diff_log.delta_bytes in
  let seg = ensure_open t ~purpose:Banks.Fresh_write ~cursor in
  let slot = log_append_exn t seg ~block:b ~touch_at:(Engine.now t.engine) in
  let sector = Segment.sector_of_slot seg slot in
  let prog =
    or_device_failure (Device.Flash.program t.flash ~now:!cursor ~sector ~bytes:nbytes)
  in
  cursor := prog.Device.Flash.finish;
  Probe.incr t.probes.p_bank_programs.(bank_of_segment t (Segment.id seg));
  let pos = Diff_log.next_pos d ~block:b in
  record_delta_header t ~sector ~block:b ~pos ~prev_sector:None;
  Diff_log.push_delta d ~block:b ~pos ~seg:(Segment.id seg) ~slot ~sector ~bytes:nbytes;
  Diff_log.note_delta_programmed d ~bytes:nbytes;
  (find_meta t b).loc <- Flashed { seg = bseg; slot = bslot }

(* Fold a chain back into a single full base page: read base + deltas
   (the reassembly cost), retire every chain slot and delta header, then
   program the merged page as a fresh full write.  Runs on the flush
   cursor right after the delta that tripped the threshold, so merges
   ride the writeback timer's pacing like any other flush work. *)
let merge_chain t d ~cursor b =
  let m = find_meta t b in
  let bseg, bslot =
    match Diff_log.base d ~block:b with Some p -> p | None -> assert false
  in
  let full = block_bytes t in
  let read sector nbytes =
    let op =
      or_device_failure (Device.Flash.read t.flash ~now:!cursor ~sector ~bytes:nbytes)
    in
    cursor := op.Device.Flash.finish
  in
  read (Segment.sector_of_slot t.segments.(bseg) bslot) full;
  let ds = Diff_log.deltas d ~block:b in
  List.iter (fun (dl : Diff_log.delta) -> read dl.Diff_log.d_sector dl.Diff_log.d_bytes) ds;
  (* Retire the chain before acquiring the output segment, so a cleaning
     pass the allocation may trigger never copies slots we are folding. *)
  let kill seg slot =
    let s = t.segments.(seg) in
    Segment.kill s ~slot;
    note_kill t s
  in
  kill bseg bslot;
  List.iter
    (fun (dl : Diff_log.delta) ->
      kill dl.Diff_log.d_seg dl.Diff_log.d_slot;
      obsolete_header t ~block:b ~hdr_sector:dl.Diff_log.d_sector)
    ds;
  Diff_log.drop d ~block:b;
  Diff_log.note_merge d;
  let seg = ensure_open t ~purpose:Banks.Fresh_write ~cursor in
  let slot = log_append_exn t seg ~block:b ~touch_at:(Engine.now t.engine) in
  let sector = Segment.sector_of_slot seg slot in
  let prog =
    or_device_failure (Device.Flash.program t.flash ~now:!cursor ~sector ~bytes:full)
  in
  cursor := prog.Device.Flash.finish;
  Probe.incr t.probes.p_bank_programs.(bank_of_segment t (Segment.id seg));
  record_header t m ~sector ~block:b;
  m.loc <- Flashed { seg = Segment.id seg; slot }

(* The flush dispatch: a chained block's flush becomes a delta append
   (merging once over the threshold); everything else — first flushes,
   cold loads, the whole path with the policy off — programs full pages. *)
let append_block t ~purpose ~cursor b =
  match t.diff with
  | Some d when Diff_log.has_chain d ~block:b ->
    let bseg, bslot =
      match Diff_log.base d ~block:b with Some p -> p | None -> assert false
    in
    append_delta t d ~cursor b ~bseg ~bslot;
    if Diff_log.should_merge d ~block:b then merge_chain t d ~cursor b
  | Some _ | None -> append_full t ~purpose ~cursor b

(* --- Writeback timer ------------------------------------------------------ *)

let rec arm_timer t =
  match Write_buffer.next_deadline t.buffer with
  | None -> ()
  | Some deadline ->
    let need_schedule =
      match t.timer with
      | Some (_, at) -> Time.( < ) deadline at
      | None -> true
    in
    if need_schedule then begin
      (match t.timer with Some (h, _) -> Engine.cancel t.engine h | None -> ());
      let at = Time.max deadline (Engine.now t.engine) in
      let handle = Engine.schedule t.engine ~at (fun _ -> timer_fired t) in
      t.timer <- Some (handle, at)
    end

and over_watermark t =
  match t.cfg.flush_watermark with
  | None -> false
  | Some w ->
    Write_buffer.capacity t.buffer > 0
    && float_of_int (Write_buffer.size t.buffer)
       >= w *. float_of_int (Write_buffer.capacity t.buffer)

and timer_fired t =
  t.timer <- None;
  let now = Engine.now t.engine in
  let expired = Write_buffer.take_expired ~limit:t.cfg.max_flush_batch t.buffer ~now in
  (* Capacity-threshold policy: above the watermark, flush ahead of the
     deadlines, oldest first. *)
  let expired =
    if List.length expired >= t.cfg.max_flush_batch then expired
    else begin
      let extra = ref [] in
      while
        over_watermark t
        && List.length expired + List.length !extra < t.cfg.max_flush_batch
        &&
        match Write_buffer.oldest t.buffer with
        | Some b -> Write_buffer.take t.buffer ~block:b && (extra := b :: !extra; true)
        | None -> false
      do
        ()
      done;
      expired @ List.rev !extra
    end
  in
  let cursor = ref now in
  List.iter
    (fun b ->
      let retain =
        match t.cfg.hot_threshold with
        | Some threshold when Heat.is_hot t.heat ~now ~block:b ~threshold ->
          Write_buffer.readmit t.buffer ~now ~block:b
        | Some _ | None -> false
      in
      if retain then begin
        t.c_hot_retained <- t.c_hot_retained + 1;
        Probe.incr t.probes.p_hot_retained
      end
      else begin
        (* Reading the buffered copy out of DRAM. *)
        ignore (Device.Dram.read t.dram ~bytes:(block_bytes t));
        append_block t ~purpose:Banks.Fresh_write ~cursor b;
        t.c_flushed <- t.c_flushed + 1;
        Probe.incr t.probes.p_flushed
      end)
    expired;
  if expired <> [] then note_busy t ~start:now ~finish:!cursor;
  if expired <> [] && Probe.timeline_enabled () then
    Probe.span ~name:"write_buffer.flush_batch" ~cat:"storage"
      ~args:(card_args t [ ("blocks", string_of_int (List.length expired)) ])
      ~start:now ~finish:!cursor ();
  (* If a backlog remains, continue only after the device digested this
     batch and a spacing gap — pacing bounds how much bank time queued
     writeback can steal from foreground reads. *)
  match Write_buffer.next_deadline t.buffer with
  | Some d when Time.( <= ) d now || over_watermark t ->
    ignore d;
    let at = Time.max (Time.add now t.cfg.flush_spacing) !cursor in
    let handle = Engine.schedule t.engine ~at (fun _ -> timer_fired t) in
    t.timer <- Some (handle, at)
  | Some _ | None -> arm_timer t

(* --- Client operations ---------------------------------------------------- *)

let alloc t =
  let b = t.next_block in
  t.next_block <- b + 1;
  set_meta t b { loc = Blank; hdr_sector = -1 };
  b

let next_fresh_block t = t.next_block

let reserve_blocks t ~next =
  if next > t.next_block then t.next_block <- next

let block_exists t b = b >= 0 && b < Array.length t.meta && t.meta.(b) != no_meta

(* Recreate an empty (Blank) block under an already-reserved handle.  A
   striped array's rebuild path reserves the reinserted card's cursor in
   one jump ([reserve_blocks]), then revives exactly the handles the
   degraded bookkeeping says existed — gaps (freed blocks) stay absent. *)
let revive_block t b =
  if b < 0 || b >= t.next_block then
    invalid_arg
      (Printf.sprintf "Manager.revive_block: handle %d beyond the cursor %d" b
         t.next_block);
  if block_exists t b then
    invalid_arg (Printf.sprintf "Manager.revive_block: block %d already exists" b);
  set_meta t b { loc = Blank; hdr_sector = -1 }

(* The card is leaving the machine: cancel the pending writeback timer and
   drop the buffer, so the dormant manager can never program a device that
   is no longer there.  Returns how many dirty blocks the drop lost. *)
let detach t =
  (match t.timer with Some (h, _) -> Engine.cancel t.engine h | None -> ());
  t.timer <- None;
  List.length (Write_buffer.drain t.buffer)

(* Flush one specific dirty block synchronously (eviction path). *)
let flush_now t ~cursor b =
  if Write_buffer.take t.buffer ~block:b then begin
    ignore (Device.Dram.read t.dram ~bytes:(block_bytes t));
    append_block t ~purpose:Banks.Fresh_write ~cursor b;
    t.c_flushed <- t.c_flushed + 1;
    Probe.incr t.probes.p_flushed
  end

let write_block_at t ~at b =
  let m = find_meta t b in
  t.c_writes <- t.c_writes + 1;
  Probe.incr t.probes.p_writes;
  Heat.record_write t.heat ~now:at ~block:b;
  (match t.diff with
  | None -> kill_flash_copy t m
  | Some d -> (
    (* Keep the flash copy live: it becomes (or already is) the base page
       the overwrite will flush a delta against.  A crash before that
       flush rolls the block back to base + already-flushed deltas. *)
    match m.loc with
    | Flashed { seg; slot } ->
      if not (Diff_log.has_chain d ~block:b) then Diff_log.begin_chain d ~block:b ~seg ~slot
    | Blank | Buffered -> ()));
  let cursor = ref at in
  let dram_latency = Device.Dram.write t.dram ~bytes:(block_bytes t) in
  cursor := Time.add !cursor dram_latency;
  if Write_buffer.capacity t.buffer = 0 then begin
    (* Write-through: straight to flash; the client eats the program time. *)
    append_block t ~purpose:Banks.Fresh_write ~cursor b;
    t.c_flushed <- t.c_flushed + 1;
    Probe.incr t.probes.p_flushed
  end
  else begin
    let rec admit () =
      match Write_buffer.write t.buffer ~now:at ~block:b with
      | Write_buffer.Absorbed | Write_buffer.Admitted -> m.loc <- Buffered
      | Write_buffer.Needs_eviction -> begin
        match Write_buffer.oldest t.buffer with
        | Some victim ->
          flush_now t ~cursor victim;
          admit ()
        | None -> assert false (* full implies non-empty *)
      end
    in
    admit ();
    (if over_watermark t then begin
       (* Pull the next flush forward to now. *)
       let now_t = Engine.now t.engine in
       let need =
         match t.timer with Some (_, at) -> Time.( < ) now_t at | None -> true
       in
       if need then begin
         (match t.timer with Some (h, _) -> Engine.cancel t.engine h | None -> ());
         let handle = Engine.schedule t.engine ~at:now_t (fun _ -> timer_fired t) in
         t.timer <- Some (handle, now_t)
       end
     end);
    arm_timer t
  end;
  note_busy t ~start:at ~finish:!cursor;
  !cursor

let write_block t b =
  let now = Engine.now t.engine in
  Time.diff (write_block_at t ~at:now b) now

let read_block_at ?bytes t ~at b =
  let m = find_meta t b in
  let bytes = Option.value bytes ~default:(block_bytes t) in
  t.c_reads <- t.c_reads + 1;
  Probe.incr t.probes.p_reads;
  match m.loc with
  | Blank | Buffered -> Time.add at (Device.Dram.read t.dram ~bytes)
  | Flashed { seg; slot } ->
    let sector = Segment.sector_of_slot t.segments.(seg) slot in
    let op = or_device_failure (Device.Flash.read t.flash ~now:at ~sector ~bytes) in
    let finish = op.Device.Flash.finish in
    (* Chain reassembly: the base page read above plus every delta record,
       cursor-threaded — the read-latency side of the diff-log trade. *)
    let finish =
      match t.diff with
      | Some d when Diff_log.has_chain d ~block:b ->
        Diff_log.note_reassembly d;
        List.fold_left
          (fun fin (dl : Diff_log.delta) ->
            let op =
              or_device_failure
                (Device.Flash.read t.flash ~now:fin ~sector:dl.Diff_log.d_sector
                   ~bytes:dl.Diff_log.d_bytes)
            in
            op.Device.Flash.finish)
          finish (Diff_log.deltas d ~block:b)
      | Some _ | None -> finish
    in
    note_busy t ~start:at ~finish;
    finish

let read_block ?bytes t b =
  let now = Engine.now t.engine in
  Time.diff (read_block_at ?bytes t ~at:now b) now

let free_block t b =
  let m = find_meta t b in
  (match m.loc with
  | Buffered -> ignore (Write_buffer.remove t.buffer ~block:b)
  | Flashed _ | Blank -> ());
  (match t.diff with
  | Some d when Diff_log.has_chain d ~block:b ->
    (* The whole chain dies with the block: base page (live even while
       the block sat dirty) and every delta record and header. *)
    let kill seg slot =
      let s = t.segments.(seg) in
      Segment.kill s ~slot;
      note_kill t s
    in
    (match Diff_log.base d ~block:b with
    | Some (bseg, bslot) -> kill bseg bslot
    | None -> assert false);
    List.iter
      (fun (dl : Diff_log.delta) ->
        kill dl.Diff_log.d_seg dl.Diff_log.d_slot;
        obsolete_header t ~block:b ~hdr_sector:dl.Diff_log.d_sector)
      (Diff_log.deltas d ~block:b);
    Diff_log.drop d ~block:b;
    m.loc <- Blank
  | Some _ | None -> ( match m.loc with Flashed _ -> kill_flash_copy t m | _ -> ()));
  (* Deletion is durable: whatever header the block still has on flash —
     even a rollback copy left live while the block sat dirty — is
     obsoleted in place, so a crash cannot resurrect freed data. *)
  obsolete_header t ~block:b ~hdr_sector:m.hdr_sector;
  Heat.forget t.heat ~block:b;
  t.meta.(b) <- no_meta

let load_cold t b =
  let m = find_meta t b in
  (match m.loc with
  | Blank -> ()
  | Buffered | Flashed _ -> invalid_arg "Manager.load_cold: block already has data");
  let cursor = ref (Engine.now t.engine) in
  append_block t ~purpose:Banks.Cold_load ~cursor b;
  t.c_cold <- t.c_cold + 1;
  Probe.incr t.probes.p_cold

let flush_all t =
  let now = Engine.now t.engine in
  let cursor = ref now in
  List.iter
    (fun b ->
      ignore (Device.Dram.read t.dram ~bytes:(block_bytes t));
      append_block t ~purpose:Banks.Fresh_write ~cursor b;
      t.c_flushed <- t.c_flushed + 1;
      Probe.incr t.probes.p_flushed)
    (Write_buffer.drain t.buffer);
  if not (Time.equal !cursor now) then note_busy t ~start:now ~finish:!cursor;
  Time.diff !cursor now

(* --- Introspection -------------------------------------------------------- *)

type stats = {
  client_writes : int;
  client_reads : int;
  absorbed_writes : int;
  cancelled_blocks : int;
  blocks_flushed : int;
  blocks_cleaned : int;
  cold_loads : int;
  hot_retained : int;
  cleanings : int;
  dirty_blocks : int;
  free_segments : int;
  retired_segments : int;
  live_blocks : int;
  write_reduction : float;
  write_amplification : float;
}

let retired_count t =
  match t.cfg.selector with
  | Scan -> Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 t.retired
  | Indexed | Checked -> t.n_retired

(* [live_block_count] counts live log slots — with chains, a block holds
   several (base + deltas), and a dirty chained block's base is live with
   the block counted under [dirty_blocks].  Correct both out so
   [stats.live_blocks] keeps meaning "blocks whose current data is a
   flash copy", which fs-level accounting sums against the namespace. *)
let resident_blocks t =
  let phys = live_block_count t in
  match t.diff with
  | None -> phys
  | Some d ->
    let extra = ref 0 in
    Diff_log.iter_chains d ~f:(fun ~block ~ndeltas ->
        extra :=
          !extra + ndeltas
          + (match (find_meta t block).loc with Buffered -> 1 | Blank | Flashed _ -> 0));
    phys - !extra

let stats t =
  {
    client_writes = t.c_writes;
    client_reads = t.c_reads;
    absorbed_writes = Write_buffer.absorbed_writes t.buffer;
    cancelled_blocks = Write_buffer.cancelled_blocks t.buffer;
    blocks_flushed = t.c_flushed;
    blocks_cleaned = t.c_cleaned;
    cold_loads = t.c_cold;
    hot_retained = t.c_hot_retained;
    cleanings = t.c_cleanings;
    dirty_blocks = Write_buffer.size t.buffer;
    free_segments = free_segment_count t;
    retired_segments = retired_count t;
    live_blocks = resident_blocks t;
    write_reduction =
      (if t.c_writes = 0 then 0.0
       else 1.0 -. (float_of_int t.c_flushed /. float_of_int t.c_writes));
    write_amplification =
      Cleaner.write_amplification
        ~blocks_written:(t.c_flushed + t.c_cleaned)
        ~blocks_flushed:t.c_flushed;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "writes=%d reads=%d absorbed=%d cancelled=%d flushed=%d cleaned=%d \
     reduction=%.1f%% amplification=%.2f dirty=%d free_segs=%d live=%d"
    s.client_writes s.client_reads s.absorbed_writes s.cancelled_blocks
    s.blocks_flushed s.blocks_cleaned
    (100.0 *. s.write_reduction)
    s.write_amplification s.dirty_blocks s.free_segments s.live_blocks

let wear_evenness t =
  match t.cfg.selector with
  | Scan -> Wear.evenness ~erase_count:(erase_count_of_segment t) t.segments
  | Indexed -> Wear.evenness_of_acc t.wear_acc
  | Checked ->
    let inc = Wear.evenness_of_acc t.wear_acc in
    let scan = Wear.evenness ~erase_count:(erase_count_of_segment t) t.segments in
    if inc <> scan then
      Fmt.failwith "Manager: wear accumulator diverged from the scan";
    inc

(* A chained block keeps a durable base page on flash even while its
   newest data sits dirty in DRAM, so placement introspection reports the
   base — that is the copy a crash rolls back to, and the placement the
   crash harness asserts survives a remount. *)
let chain_base t b =
  match t.diff with Some d -> Diff_log.base d ~block:b | None -> None

let segment_of_block t b =
  match (find_meta t b).loc with
  | Flashed { seg; _ } -> Some seg
  | Buffered -> Option.map fst (chain_base t b)
  | Blank -> None

let location_of_block t b =
  match (find_meta t b).loc with
  | Flashed { seg; slot } -> Some (seg, slot)
  | Buffered -> chain_base t b
  | Blank -> None

let buffer_pending_entries t = Write_buffer.pending_entries t.buffer

let diff_stats t = Option.map Diff_log.stats t.diff

let delta_chain_length t b =
  match t.diff with Some d -> Diff_log.chain_length d ~block:b | None -> 0

type segment_snapshot = {
  seg_state : Segment.state;
  seg_live : int;
  seg_used : int;
  seg_erases : int;
  seg_retired : bool;
}

let segment_snapshots t =
  Array.mapi
    (fun i seg ->
      {
        seg_state = Segment.state seg;
        seg_live = Segment.live_count seg;
        seg_used = Segment.used_slots seg;
        seg_erases = erase_count_of_segment t seg;
        seg_retired = t.retired.(i);
      })
    t.segments

let block_is_dirty t b =
  match (find_meta t b).loc with Buffered -> true | Blank | Flashed _ -> false

let known_blocks t =
  let acc = ref [] in
  for b = Array.length t.meta - 1 downto 0 do
    if t.meta.(b) != no_meta then acc := b :: !acc
  done;
  !acc

(* The one reset chokepoint for the storage stack: module counters and the
   probe registry clear together, so neither can drift from the other.
   (Probe state is per-domain and shared by every component on this domain,
   which is exactly the Machine.preload "start clean" contract.) *)
let reset_traffic t =
  t.c_writes <- 0;
  t.c_reads <- 0;
  t.c_flushed <- 0;
  t.c_cleaned <- 0;
  t.c_cold <- 0;
  t.c_hot_retained <- 0;
  t.c_cleanings <- 0;
  Write_buffer.reset_counters t.buffer;
  (match t.diff with Some d -> Diff_log.reset_counters d | None -> ());
  Device.Flash.reset_stats t.flash;
  Device.Dram.reset_stats t.dram;
  Probe.reset ()

(* --- Crash recovery ---------------------------------------------------------- *)

type remount_report = {
  sectors_scanned : int;
  live_recovered : int;
  stale_discarded : int;
  buffered_lost : int;
}

let pp_remount_report ppf r =
  Fmt.pf ppf "scanned=%d recovered=%d stale=%d lost_from_buffer=%d" r.sectors_scanned
    r.live_recovered r.stale_discarded r.buffered_lost

let crash_and_remount t =
  let buffered_lost = Write_buffer.size t.buffer in
  (* Power is gone: the dead manager must never touch the (shared) flash
     again.  Cancel its pending writeback timer and discard the DRAM
     buffer's contents — that is exactly the data the crash loses. *)
  (match t.timer with Some (h, _) -> Engine.cancel t.engine h | None -> ());
  t.timer <- None;
  ignore (Write_buffer.drain t.buffer);
  let fresh = create ?card:t.card t.cfg ~engine:t.engine ~flash:t.flash ~dram:t.dram in
  (* Deep-copy the headers: they model on-flash state shared by old and new
     manager, but the records are mutable and the dead manager must not
     alias the live one's. *)
  Array.iteri
    (fun k h ->
      if h != no_header then
        fresh.durable.(k) <-
          { h_block = h.h_block; h_version = h.h_version; h_live = h.h_live;
            h_pos = h.h_pos })
    t.durable;
  fresh.next_version <- t.next_version;
  (* Scan every readable sector's header, charging the device. *)
  let now = Engine.now t.engine in
  let cursor = ref now in
  let scanned = ref 0 in
  for sector = 0 to Device.Flash.nsectors t.flash - 1 do
    match Device.Flash.read t.flash ~now:!cursor ~sector ~bytes:16 with
    | Ok op ->
      incr scanned;
      cursor := op.Device.Flash.finish
    | Error Device.Flash.Bad_sector -> ()
    | Error e -> Fmt.failwith "remount: %a" Device.Flash.pp_error e
  done;
  (* Newest live version of each block's base page wins; headers obsoleted
     in place (superseded or deleted data) never come back.  Delta headers
     (h_pos >= 0, diff logging only) are chain members, not base
     candidates. *)
  let winner = Hashtbl.create 1024 in
  Array.iteri
    (fun sector h ->
      if h != no_header && h.h_live && h.h_pos < 0 then
        match Hashtbl.find_opt winner h.h_block with
        | Some (v, _) when v >= h.h_version -> ()
        | Some _ | None -> Hashtbl.replace winner h.h_block (h.h_version, sector))
    fresh.durable;
  (* Chain recovery (diff logging only): per block, the newest live delta
     header at each position; then accept only the longest contiguous
     position prefix of blocks that kept a base.  A chain truncated at a
     gap — or orphaned by a freed base — rolls the block back to base plus
     the accepted prefix, the same allowance rollback-to-stale makes for a
     block that died dirty.  Everything past the cut is discarded as
     stale. *)
  let accepted = Hashtbl.create 64 in
  (match fresh.diff with
  | None -> ()
  | Some _ ->
    let candidates = Hashtbl.create 64 in
    Array.iteri
      (fun sector h ->
        if h != no_header && h.h_live && h.h_pos >= 0 then begin
          let per =
            match Hashtbl.find_opt candidates h.h_block with
            | Some per -> per
            | None ->
              let per = Hashtbl.create 8 in
              Hashtbl.replace candidates h.h_block per;
              per
          in
          match Hashtbl.find_opt per h.h_pos with
          | Some (v, _) when v >= h.h_version -> ()
          | Some _ | None -> Hashtbl.replace per h.h_pos (h.h_version, sector)
        end)
      fresh.durable;
    Hashtbl.iter
      (fun block per ->
        if Hashtbl.mem winner block then begin
          let rec go pos =
            match Hashtbl.find_opt per pos with
            | Some (_, sector) ->
              Hashtbl.replace accepted sector (block, pos);
              go (pos + 1)
            | None -> ()
          in
          go 0
        end)
      candidates);
  (* Accepted delta slots, recorded as the segment rebuild walks them, so
     the fresh manager's chain table can be rebuilt afterwards. *)
  let recovered_deltas : (int, (int * int * int * int) list) Hashtbl.t =
    Hashtbl.create 64
  in
  (* Rebuild segment occupancy: appends were sequential, so each segment's
     programmed sectors are a prefix of its slots.  The loop drives the
     segments directly; indexes and counters are rebuilt wholesale at the
     end. *)
  let stale = ref 0 in
  let max_block = ref (-1) in
  Array.iter
    (fun seg ->
      let nslots = Segment.nslots seg in
      let occupied = ref 0 in
      for slot = 0 to nslots - 1 do
        if fresh.durable.(Segment.sector_of_slot seg slot) != no_header then
          incr occupied
      done;
      if !occupied > 0 then begin
        Segment.open_ seg;
        for slot = 0 to !occupied - 1 do
          let sector = Segment.sector_of_slot seg slot in
          let h = fresh.durable.(sector) in
          (* A hole would mean appends were not sequential. *)
          assert (h != no_header);
          (match Segment.append seg ~block:h.h_block with
          | Some s -> assert (s = slot)
          | None -> assert false);
          (* Even a dead header pins its block id: a resurrected id would
             otherwise collide with it on the next remount. *)
          max_block := max !max_block h.h_block;
          let winning =
            h.h_live && h.h_pos < 0
            &&
            match Hashtbl.find_opt winner h.h_block with
            | Some (_, s) -> s = sector
            | None -> false
          in
          if winning then
            set_meta fresh h.h_block
              { loc = Flashed { seg = Segment.id seg; slot }; hdr_sector = sector }
          else if h.h_pos >= 0 && Hashtbl.mem accepted sector then begin
            (* An accepted chain member: the slot stays live; the chain
               table entry is registered once every segment is rebuilt. *)
            let block, pos = Hashtbl.find accepted sector in
            Hashtbl.replace recovered_deltas block
              ((pos, Segment.id seg, slot, sector)
              :: (Option.value ~default:[] (Hashtbl.find_opt recovered_deltas block)))
          end
          else begin
            incr stale;
            Segment.kill seg ~slot
          end
        done;
        if Segment.state seg = Segment.Open then Segment.close seg
      end)
    fresh.segments;
  (* Mark wear-retired segments on the fresh manager too. *)
  Array.iteri
    (fun i seg ->
      let worn = ref false in
      for slot = 0 to Segment.nslots seg - 1 do
        if Device.Flash.is_bad t.flash ~sector:(Segment.sector_of_slot seg slot) then
          worn := true
      done;
      if !worn then fresh.retired.(i) <- true)
    fresh.segments;
  (* Re-register the recovered chains: base coordinates come from the
     winning base's meta, deltas in position order from the rebuild walk. *)
  (match fresh.diff with
  | None -> ()
  | Some d ->
    Hashtbl.iter
      (fun block lst ->
        (match (find_meta fresh block).loc with
        | Flashed { seg; slot } -> Diff_log.begin_chain d ~block ~seg ~slot
        | Blank | Buffered -> assert false);
        List.iter
          (fun (pos, seg, slot, sector) ->
            let bytes = (Diff_log.config d).Diff_log.delta_bytes in
            Diff_log.push_delta d ~block ~pos ~seg ~slot ~sector ~bytes)
          (List.sort compare lst))
      recovered_deltas);
  fresh.next_block <- !max_block + 1;
  rebuild_indexes fresh;
  let report =
    {
      sectors_scanned = !scanned;
      live_recovered = Hashtbl.length winner;
      stale_discarded = !stale;
      buffered_lost;
    }
  in
  Log.info (fun m -> m "remount: %a" pp_remount_report report);
  Probe.incr t.probes.p_remounts;
  if Probe.timeline_enabled () then
    Probe.span ~name:"manager.remount" ~cat:"recovery"
      ~args:
        (card_args t
           [
             ("sectors_scanned", string_of_int report.sectors_scanned);
             ("live_recovered", string_of_int report.live_recovered);
             ("stale_discarded", string_of_int report.stale_discarded);
             ("buffered_lost", string_of_int report.buffered_lost);
           ])
      ~start:now ~finish:!cursor ();
  (fresh, Time.diff !cursor now, report)
