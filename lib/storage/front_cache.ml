(* Clean LRU over global block handles: a doubly-linked recency list
   threaded through a hash table, same shape as the fs-level
   [Buffer_cache] but with no dirty state (the array invalidates on
   write/free, so residents are always clean). *)

type node = {
  key : int;
  mutable prev : node option;  (* toward MRU *)
  mutable next : node option;  (* toward LRU *)
}

type t = {
  capacity : int;
  table : (int, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
  mutable hits : int;
  mutable misses : int;
}

let p_hits = Sim.Probe.counter "storage.front_cache.hits"
let p_misses = Sim.Probe.counter "storage.front_cache.misses"

let create ~capacity_blocks =
  if capacity_blocks < 0 then
    invalid_arg "Front_cache.create: negative capacity";
  {
    capacity = capacity_blocks;
    table = Hashtbl.create (max 16 capacity_blocks);
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
  }

let capacity t = t.capacity
let size t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.mru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.lru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.mru;
  node.prev <- None;
  (match t.mru with Some m -> m.prev <- Some node | None -> t.lru <- Some node);
  t.mru <- Some node

type lookup = Hit | Miss

let count_hit t =
  t.hits <- t.hits + 1;
  Sim.Probe.incr p_hits

let count_miss t =
  t.misses <- t.misses + 1;
  Sim.Probe.incr p_misses

let evict_one t =
  match t.lru with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key

(* The key is known absent: make it resident unless we are a pass-through.
   Counts nothing itself. *)
let insert_fresh t ~key =
  if t.capacity > 0 then begin
    while size t >= t.capacity do
      evict_one t
    done;
    let node = { key; prev = None; next = None } in
    Hashtbl.replace t.table key node;
    push_front t node
  end

let find_or_insert t ~key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    count_hit t;
    unlink t node;
    push_front t node;
    Hit
  | None ->
    count_miss t;
    insert_fresh t ~key;
    Miss

let insert t ~key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    unlink t node;
    push_front t node
  | None -> insert_fresh t ~key

let contains t ~key = Hashtbl.mem t.table key

let invalidate t ~key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table key
  | None -> ()

let clear t =
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None

let hits t = t.hits
let misses t = t.misses

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0
