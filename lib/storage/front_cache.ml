(* Clean LRU over global block handles: a doubly-linked recency list
   threaded through a hash table, same shape as the fs-level
   [Buffer_cache] but with no dirty state (the array invalidates on
   write/free, so residents are always clean).

   Removal is lazy: the array's hot write path calls [invalidate] on
   every write and free, and stdlib [Hashtbl] has no single-call
   remove-and-return, so eager removal would pay two hash lookups per
   write.  Instead a dead node stays in the table as a tombstone
   ([live = false], unlinked from the recency list) and is either revived
   in place by a later insert of the same key — again one lookup — or
   swept out when tombstones outnumber live entries.  The sweep is
   O(table) but runs at most once per [live + 16] deaths, so every
   operation stays amortized O(1) with exactly one hash lookup. *)

type node = {
  key : int;
  mutable prev : node option;  (* toward MRU *)
  mutable next : node option;  (* toward LRU *)
  mutable live : bool;
}

type t = {
  capacity : int;
  table : (int, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
  mutable nlive : int;
  mutable ndead : int;
  mutable hits : int;
  mutable misses : int;
}

let p_hits = Sim.Probe.counter "storage.front_cache.hits"
let p_misses = Sim.Probe.counter "storage.front_cache.misses"

let create ~capacity_blocks =
  if capacity_blocks < 0 then
    invalid_arg "Front_cache.create: negative capacity";
  {
    capacity = capacity_blocks;
    table = Hashtbl.create (max 16 capacity_blocks);
    mru = None;
    lru = None;
    nlive = 0;
    ndead = 0;
    hits = 0;
    misses = 0;
  }

let capacity t = t.capacity
let size t = t.nlive

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.mru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.lru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.mru;
  node.prev <- None;
  (match t.mru with Some m -> m.prev <- Some node | None -> t.lru <- Some node);
  t.mru <- Some node

type lookup = Hit | Miss

let count_hit t =
  t.hits <- t.hits + 1;
  Sim.Probe.incr p_hits

let count_miss t =
  t.misses <- t.misses + 1;
  Sim.Probe.incr p_misses

(* Sweep tombstones once they dominate: amortized O(1) per death.  Never
   called between a lookup and the revival of the node it returned. *)
let maybe_compact t =
  if t.ndead > max 16 t.nlive then begin
    Hashtbl.filter_map_inplace
      (fun _ node -> if node.live then Some node else None)
      t.table;
    t.ndead <- 0
  end

let kill t node =
  node.live <- false;
  t.nlive <- t.nlive - 1;
  t.ndead <- t.ndead + 1

let evict_one t =
  match t.lru with
  | None -> ()
  | Some node ->
    unlink t node;
    kill t node

(* Make a looked-up node resident.  [Some node] must be this call's own
   lookup result (a dead node revives in place — the single-lookup path);
   [None] means the key is known absent from the table.  Revive before
   evicting so compaction never sweeps the node we are holding. *)
let admit t ~key found =
  if t.capacity > 0 then begin
    (match found with
    | Some node ->
      node.live <- true;
      t.ndead <- t.ndead - 1;
      push_front t node
    | None ->
      let node = { key; prev = None; next = None; live = true } in
      Hashtbl.add t.table key node;
      push_front t node);
    t.nlive <- t.nlive + 1;
    while t.nlive > t.capacity do
      evict_one t
    done;
    maybe_compact t
  end

let find_or_insert t ~key =
  match Hashtbl.find_opt t.table key with
  | Some node when node.live ->
    count_hit t;
    unlink t node;
    push_front t node;
    Hit
  | (Some _ | None) as found ->
    count_miss t;
    admit t ~key found;
    Miss

let lookup t ~key =
  match Hashtbl.find_opt t.table key with
  | Some node when node.live ->
    count_hit t;
    unlink t node;
    push_front t node;
    Hit
  | Some _ | None ->
    count_miss t;
    Miss

let insert t ~key =
  match Hashtbl.find_opt t.table key with
  | Some node when node.live ->
    unlink t node;
    push_front t node
  | (Some _ | None) as found -> admit t ~key found

let contains t ~key =
  match Hashtbl.find_opt t.table key with
  | Some node -> node.live
  | None -> false

let invalidate t ~key =
  match Hashtbl.find_opt t.table key with
  | Some node when node.live ->
    unlink t node;
    kill t node;
    maybe_compact t
  | Some _ | None -> ()

let clear t =
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None;
  t.nlive <- 0;
  t.ndead <- 0

let hits t = t.hits
let misses t = t.misses

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0
