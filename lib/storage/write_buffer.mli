(** The battery-backed DRAM write buffer.

    Section 3.3's central mechanism: written data sits in (stable,
    battery-backed) DRAM for a writeback delay before going to flash.
    Because "a large percentage of write operations are to short-lived
    files or to file blocks that are soon overwritten", many buffered
    blocks are superseded or deleted before their deadline and never reach
    flash at all — reducing write traffic, latency, and wear.

    This module is the pure data structure: a set of dirty blocks with
    deadlines and a capacity bound.  Devices and flushing live in
    {!Manager}. *)

type config = {
  capacity_blocks : int;  (** 0 disables buffering (write-through). *)
  writeback_delay : Sim.Time.span;  (** Residence time before flush. *)
  refresh_on_rewrite : bool;
      (** Rewriting a dirty block restarts its deadline, so continuously
          hot blocks stay in DRAM — the paper's "keep data that is
          frequently written in DRAM". *)
}

val default_config : config
(** 1 MB of 512 B blocks, 30 s delay, refresh on rewrite — the Baker et
    al. configuration the paper quotes. *)

type t

val create : config -> t
(** A zero [capacity_blocks] is legal and means write-through: {!write}
    always answers [Needs_eviction] without touching any state, nothing is
    ever buffered, and no flush deadline ever exists ({!next_deadline} is
    [None], {!drain} is empty).
    @raise Invalid_argument on a negative capacity. *)

val config : t -> config
val size : t -> int
(** Dirty blocks currently held. *)

val capacity : t -> int
val is_full : t -> bool
val mem : t -> block:int -> bool

type admit = Absorbed | Admitted | Needs_eviction

val write : t -> now:Sim.Time.t -> block:int -> admit
(** Record a write.  [Absorbed]: the block was already dirty — no new
    traffic.  [Admitted]: inserted.  [Needs_eviction]: the buffer is full
    and nothing was inserted; evict, then retry.  With zero capacity,
    always [Needs_eviction]. *)

val remove : t -> block:int -> bool
(** Drop a block (its data died: deleted or truncated away).  True if it
    was dirty — a flush avoided. *)

val take_expired : ?limit:int -> t -> now:Sim.Time.t -> int list
(** Remove and return blocks whose deadline has passed, in deadline order,
    at most [limit] of them (unbounded by default). *)

val oldest : t -> int option
(** The block with the earliest deadline — the eviction victim. *)

val take : t -> block:int -> bool
(** Remove a specific block (used when evicting or force-flushing);
    true if present. *)

val next_deadline : t -> Sim.Time.t option

val readmit : t -> now:Sim.Time.t -> block:int -> bool
(** Put a block back with a fresh deadline without touching the traffic
    counters — used to retain hot blocks in DRAM at their flush deadline.
    False (and no insertion) if the buffer is full or the block is already
    present. *)

val drain : t -> int list
(** Remove and return everything, in deadline order ([flush_all]). *)

val pending_entries : t -> int
(** Queue entries currently held, including stale ones left behind by
    deadline refreshes and removals.  Compaction keeps this within a
    constant factor of {!size}; exposed so tests can pin the bound. *)

(** {1 Counters} *)

val absorbed_writes : t -> int
(** Writes that hit an already-dirty block. *)

val cancelled_blocks : t -> int
(** Dirty blocks dropped by {!remove} before flushing. *)

val admitted_blocks : t -> int

val reset_counters : t -> unit
(** Zero the three counters above; buffered contents are unaffected. *)
