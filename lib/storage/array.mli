(** A striped array of flash cards behind one block interface.

    The scale-out analog of Section 3.3's bank partitioning: one machine,
    several PCMCIA flash cards, each owned by an independent {!Manager}
    over its own {!Device.Flash.t}.  Blocks map to [(card, local)] by a
    pure {!Striping} policy — no placement table — so a program or erase
    in flight on one card never delays operations routed to another: every
    card has its own banks, its own write buffer, and its own writeback
    timer on the shared engine (queue occupancy is exactly the engine's
    timer state, per card).  Busy time is accounted per card through each
    manager's ["storage.card<i>.busy_us"] probe summary.

    In front of the cards sits an optional shared {!Front_cache}: a clean
    DRAM LRU over global handles that serves cross-card hot reads without
    touching any card.

    Under a {!Striping.Parity} policy the array additionally maintains a
    parity strip per stripe (RAID-4/5 over removable cards): every client
    write also updates the row's parity block on another card — the
    small-write penalty of two extra reads and one extra program — and in
    exchange the array survives losing any single card.  With a card out
    ({!eject_card}) the array runs {e degraded}: reads of the missing
    card's blocks are reconstructed from the surviving row members at
    summed read cost, writes fold the new version into parity, and
    allocation continues.  {!reinsert_card} accepts blank replacement
    media and rebuilds the missing card's contents in the background
    (batched engine events interleaved with foreground traffic) until the
    array is healthy again.  The write-ahead parity ordering is {e not}
    modeled — there is no write hole in the simulation because a write's
    data and parity updates are applied atomically within one engine
    event.

    All managers share one engine and one DRAM device; each card gets its
    own flash device.  All flash devices must share a sector size.

    With one card, an identity striping, and the front cache off, every
    operation forwards verbatim to the single manager — the array is
    byte-identical to the pre-array path (pinned by test and in CI); with
    a non-parity striping the array is byte-identical to the pre-parity
    path (same pin). *)

type t

val create :
  ?front_cache_blocks:int ->
  striping:Striping.policy ->
  Manager.config ->
  engine:Sim.Engine.t ->
  flashes:Device.Flash.t array ->
  dram:Device.Dram.t ->
  t
(** One manager per element of [flashes], all sharing [engine] and [dram].
    [front_cache_blocks] (default 0 = off) sizes the shared front cache.
    @raise Invalid_argument on an empty [flashes], mismatched sector
    sizes, an invalid striping policy, or any per-card configuration
    error {!Manager.create} would reject. *)

val ncards : t -> int
val striping : t -> Striping.policy
val manager : t -> int -> Manager.t
(** The card's manager, for per-card introspection (stats, wear,
    segment state).  Mutating through it bypasses the front cache —
    introspection only.  While the card is missing this is its dormant
    pre-eject manager; during a rebuild, the fresh one. *)

val block_bytes : t -> int
val capacity_blocks : t -> int
(** Sum over cards (parity capacity included — the redundancy tax is
    visible as client-usable space being [ncards-1] of these). *)

val card_of_block : t -> Manager.block -> int
(** Where the policy places this global handle. *)

(** {1 Client operations} — the same surface {!Manager} exposes; global
    handles are dense from zero and never reused, exactly like a single
    manager's.  Under parity, handles name data blocks only; parity
    blocks are internal. *)

val alloc : t -> Manager.block
val write_block : t -> Manager.block -> Sim.Time.span
val write_block_at : t -> at:Sim.Time.t -> Manager.block -> Sim.Time.t
val read_block : ?bytes:int -> t -> Manager.block -> Sim.Time.span
val read_block_at : ?bytes:int -> t -> at:Sim.Time.t -> Manager.block -> Sim.Time.t
(** A front-cache hit is served at DRAM read cost without touching the
    block's card; a miss reads through the card and makes the handle
    resident only after the read returns (a raising read leaves nothing
    resident).  With the block's card missing, a miss reconstructs the
    block from the surviving row members at summed read cost. *)

val free_block : t -> Manager.block -> unit
val load_cold : t -> Manager.block -> unit
(** Under parity, the first cold load of a row also cold-loads the row's
    parity block (a factory image ships with parity precomputed), so
    later cold loads of the row are parity-free.  [free_block] rewrites
    parity without reads: the delta is computable from the copy being
    dropped, and free stays an uncharged metadata operation. *)

val flush_all : t -> Sim.Time.span
(** Drain every card's write buffer, grouped by destination card (one
    contiguous drain per card, never interleaved across cards), cards
    flushing in parallel: the returned span is the slowest card's.  The
    ["storage.array.flush_card_groups"] probe counts cards that had work
    per drain.  A missing card is skipped. *)

(** {1 Card eject / reinsert (parity arrays only)} *)

type eject_report = {
  lost_buffered : int;
      (** Dirty blocks dropped with the write buffer on a surprise eject
          (0 when orderly).  Their newest versions remain reconstructible:
          parity was updated when they were written. *)
  degraded_blocks : int;
      (** Blocks on the ejected card whose reads now reconstruct. *)
}

val pp_eject_report : Format.formatter -> eject_report -> unit

val eject_card : ?surprise:bool -> t -> card:int -> eject_report
(** Remove [card] from the array.  Orderly (default) flushes the card
    first; [surprise] drops its buffered dirty data on the floor — but
    under parity the newest version of every block stays reconstructible,
    because the parity update of each write landed on a {e different}
    card's buffer.  The array continues degraded: every operation works,
    at degraded cost.  The dormant manager stays readable through
    {!manager} for introspection.
    @raise Invalid_argument on a non-parity striping (nothing would
    survive), when a card is already out, or on a bad index. *)

val reinsert_card : ?batch:int -> ?spacing:Sim.Time.span -> t -> card:int -> unit
(** A blank replacement card in the missing slot: the old flash is
    factory-reset, a fresh manager takes over, and a background rebuild
    streams the missing contents back — [batch] slots (default 32) per
    engine event, successive events at least [spacing] (default 1ms)
    apart, foreground traffic interleaving freely.  Slots the rebuild
    has not reached yet keep their degraded behavior; the array turns
    [`Healthy] when the rebuild completes.
    @raise Invalid_argument unless the array is degraded and [card] is
    the missing one. *)

val health : t -> [ `Healthy | `Degraded of int | `Rebuilding of int ]
(** The payload names the missing / rebuilding card. *)

(** {1 Introspection} *)

val stats : t -> Manager.stats
(** Client-visible counters: per-card sums with the array's own parity
    maintenance and reconstruction traffic subtracted, and client
    operations that never reached a card (front-cache hits, degraded
    reads and writes served from parity) added back.  [blocks_flushed]
    keeps parity programs — the parity write penalty is visible as
    [write_reduction] dropping (possibly below zero).  Under parity the
    [live_blocks]/[dirty_blocks] gauges are recounted from the client's
    view: parity blocks are invisible, and a missing card's blocks are
    charged to their parity home (dirty while the parity update is
    buffered, live once flushed) — so [live + dirty] always equals the
    blocks the namespace can reach, healthy or degraded.  Segment
    gauges ([free_segments], [retired_segments]) keep the dormant
    card's frozen values while it is out. *)

type parity_stats = {
  parity_writes : int;  (** Parity-block programs issued by the array. *)
  parity_reads : int;
      (** Reads issued for parity deltas, reconstruction, and rebuild. *)
  parity_cold_loads : int;  (** Parity blocks cold-loaded (incl. rebuild). *)
  degraded_writes : int;  (** Client writes folded into parity only. *)
  degraded_reads : int;  (** Client reads of missing-card blocks (non-front-hit). *)
  degraded_cold_loads : int;  (** Cold loads of missing-card blocks. *)
  reconstructed_reads : int;  (** Degraded reads that XOR-reconstructed. *)
  rebuilt_blocks : int;  (** Blocks streamed onto reinserted cards. *)
  last_rebuild : Sim.Time.span option;
      (** Wall-clock of the last completed rebuild. *)
}

val parity_stats : t -> parity_stats
(** All zero / [None] for non-parity stripings. *)

val pp_parity_stats : Format.formatter -> parity_stats -> unit

val card_stats : t -> int -> Manager.stats
val wear_evenness : t -> int -> Wear.evenness
(** Per card. *)

val diff_stats : t -> Diff_log.stats option
(** Per-card page-differential counters summed; [None] when no card has
    diff logging enabled. *)

val dram : t -> Device.Dram.t
val engine : t -> Sim.Engine.t
val segment_of_block : t -> Manager.block -> int option
(** The card-local segment holding the block's flash copy, if flushed
    (pair with {!card_of_block} to disambiguate).  While the block's
    card is missing, its durable home is its {e parity} block: this
    reports the parity block's segment once the parity copy is flushed
    (and [None] while the parity update is still buffered — the block
    is {!block_is_dirty} then), so "buffered or in flash" stays true
    for every reachable block even degraded. *)

val block_is_dirty : t -> Manager.block -> bool
val block_exists : t -> Manager.block -> bool
(** A missing card's blocks still exist (they are reconstructible) until
    freed — or until a crash while degraded loses the parity copy. *)

val front_cache_capacity : t -> int
val front_cache_hits : t -> int
val front_cache_misses : t -> int
val reset_traffic : t -> unit

(** {1 Crash recovery} *)

val crash_and_remount : t -> t * Sim.Time.span * Manager.remount_report
(** Total power loss: every present card remounts from its own sector
    headers (scans run in parallel — the span is the slowest card's), the
    front cache is wiped (it was DRAM), reports are summed, and the
    global allocation cursor is rebuilt from the recovered per-card
    cursors — cards that lost different numbers of never-flushed tail
    allocations are re-aligned, so handles stay collision-free.  Global
    handles for recovered blocks remain valid.

    A degraded array remounts degraded: the missing card stays out, and
    the degraded bookkeeping is re-derived from what flash kept — a
    missing-card block survives iff its parity block was flushed before
    the crash.  A crash during a rebuild remounts every card (the
    replacement is physically present), keeps whatever the rebuild had
    already flushed, and restarts the rebuild over the remainder. *)
