(** A striped array of flash cards behind one block interface.

    The scale-out analog of Section 3.3's bank partitioning: one machine,
    several PCMCIA flash cards, each owned by an independent {!Manager}
    over its own {!Device.Flash.t}.  Blocks map to [(card, local)] by a
    pure {!Striping} policy — no placement table — so a program or erase
    in flight on one card never delays operations routed to another: every
    card has its own banks, its own write buffer, and its own writeback
    timer on the shared engine (queue occupancy is exactly the engine's
    timer state, per card).  Busy time is accounted per card through each
    manager's ["storage.card<i>.busy_us"] probe summary.

    In front of the cards sits an optional shared {!Front_cache}: a clean
    DRAM LRU over global handles that serves cross-card hot reads without
    touching any card.

    All managers share one engine and one DRAM device; each card gets its
    own flash device.  All flash devices must share a sector size.

    With one card, an identity striping, and the front cache off, every
    operation forwards verbatim to the single manager — the array is
    byte-identical to the pre-array path (pinned by test and in CI). *)

type t

val create :
  ?front_cache_blocks:int ->
  striping:Striping.policy ->
  Manager.config ->
  engine:Sim.Engine.t ->
  flashes:Device.Flash.t array ->
  dram:Device.Dram.t ->
  t
(** One manager per element of [flashes], all sharing [engine] and [dram].
    [front_cache_blocks] (default 0 = off) sizes the shared front cache.
    @raise Invalid_argument on an empty [flashes], mismatched sector
    sizes, an invalid striping policy, or any per-card configuration
    error {!Manager.create} would reject. *)

val ncards : t -> int
val striping : t -> Striping.policy
val manager : t -> int -> Manager.t
(** The card's manager, for per-card introspection (stats, wear,
    segment state).  Mutating through it bypasses the front cache —
    introspection only. *)

val block_bytes : t -> int
val capacity_blocks : t -> int
(** Sum over cards. *)

val card_of_block : t -> Manager.block -> int
(** Where the policy places this global handle. *)

(** {1 Client operations} — the same surface {!Manager} exposes; global
    handles are dense from zero and never reused, exactly like a single
    manager's. *)

val alloc : t -> Manager.block
val write_block : t -> Manager.block -> Sim.Time.span
val write_block_at : t -> at:Sim.Time.t -> Manager.block -> Sim.Time.t
val read_block : ?bytes:int -> t -> Manager.block -> Sim.Time.span
val read_block_at : ?bytes:int -> t -> at:Sim.Time.t -> Manager.block -> Sim.Time.t
(** A front-cache hit is served at DRAM read cost without touching the
    block's card; a miss reads through the card and leaves the handle
    resident. *)

val free_block : t -> Manager.block -> unit
val load_cold : t -> Manager.block -> unit

val flush_all : t -> Sim.Time.span
(** Drain every card's write buffer, grouped by destination card (one
    contiguous drain per card, never interleaved across cards), cards
    flushing in parallel: the returned span is the slowest card's.  The
    ["storage.array.flush_card_groups"] probe counts cards that had work
    per drain. *)

(** {1 Introspection} *)

val stats : t -> Manager.stats
(** Counters summed across cards (plus front-cache hits folded into
    [client_reads]); [write_reduction]/[write_amplification] recomputed
    from the sums. *)

val card_stats : t -> int -> Manager.stats
val wear_evenness : t -> int -> Wear.evenness
(** Per card. *)

val dram : t -> Device.Dram.t
val engine : t -> Sim.Engine.t
val segment_of_block : t -> Manager.block -> int option
(** The card-local segment holding the block's flash copy, if flushed
    (pair with {!card_of_block} to disambiguate). *)

val block_is_dirty : t -> Manager.block -> bool
val block_exists : t -> Manager.block -> bool
val front_cache_capacity : t -> int
val front_cache_hits : t -> int
val front_cache_misses : t -> int
val reset_traffic : t -> unit

(** {1 Crash recovery} *)

val crash_and_remount : t -> t * Sim.Time.span * Manager.remount_report
(** Total power loss: every card remounts from its own sector headers
    (scans run in parallel — the span is the slowest card's), the front
    cache is wiped (it was DRAM), reports are summed, and the global
    allocation cursor is rebuilt from the recovered per-card cursors —
    cards that lost different numbers of never-flushed tail allocations
    are re-aligned, so handles stay collision-free.  Global handles for
    recovered blocks remain valid. *)
