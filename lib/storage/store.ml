type t = Single of Manager.t | Striped of Array.t

let block_bytes = function
  | Single m -> Manager.block_bytes m
  | Striped a -> Array.block_bytes a

let capacity_blocks = function
  | Single m -> Manager.capacity_blocks m
  | Striped a -> Array.capacity_blocks a

let alloc = function Single m -> Manager.alloc m | Striped a -> Array.alloc a

let write_block t b =
  match t with Single m -> Manager.write_block m b | Striped a -> Array.write_block a b

let write_block_at t ~at b =
  match t with
  | Single m -> Manager.write_block_at m ~at b
  | Striped a -> Array.write_block_at a ~at b

let read_block ?bytes t b =
  match t with
  | Single m -> Manager.read_block ?bytes m b
  | Striped a -> Array.read_block ?bytes a b

let read_block_at ?bytes t ~at b =
  match t with
  | Single m -> Manager.read_block_at ?bytes m ~at b
  | Striped a -> Array.read_block_at ?bytes a ~at b

let free_block t b =
  match t with Single m -> Manager.free_block m b | Striped a -> Array.free_block a b

let load_cold t b =
  match t with Single m -> Manager.load_cold m b | Striped a -> Array.load_cold a b

let flush_all = function
  | Single m -> Manager.flush_all m
  | Striped a -> Array.flush_all a

let stats = function Single m -> Manager.stats m | Striped a -> Array.stats a
let dram = function Single m -> Manager.dram m | Striped a -> Array.dram a
let engine = function Single m -> Manager.engine m | Striped a -> Array.engine a

let segment_of_block t b =
  match t with
  | Single m -> Manager.segment_of_block m b
  | Striped a -> Array.segment_of_block a b

let block_is_dirty t b =
  match t with
  | Single m -> Manager.block_is_dirty m b
  | Striped a -> Array.block_is_dirty a b

let block_exists t b =
  match t with
  | Single m -> Manager.block_exists m b
  | Striped a -> Array.block_exists a b

let reset_traffic = function
  | Single m -> Manager.reset_traffic m
  | Striped a -> Array.reset_traffic a

let managers = function
  | Single m -> [| m |]
  | Striped a -> Stdlib.Array.init (Array.ncards a) (Array.manager a)

let health = function
  | Single _ -> `Healthy
  | Striped a -> Array.health a

let diff_stats = function
  | Single m -> Manager.diff_stats m
  | Striped a -> Array.diff_stats a

let parity_stats = function
  | Single _ -> None
  | Striped a -> (
    match Array.striping a with
    | Striping.Parity _ -> Some (Array.parity_stats a)
    | Striping.Round_robin _ | Striping.Hashed -> None)

let crash_and_remount = function
  | Single m ->
    let fresh, span, report = Manager.crash_and_remount m in
    (Single fresh, span, report)
  | Striped a ->
    let fresh, span, report = Array.crash_and_remount a in
    (Striped fresh, span, report)
