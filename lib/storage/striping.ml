type policy =
  | Round_robin of { strip_blocks : int }
  | Hashed
  | Parity of { strip_blocks : int; rotate : bool }

let policy_name = function
  | Round_robin _ -> "round-robin"
  | Hashed -> "hashed"
  | Parity { rotate = true; _ } -> "parity-rotating"
  | Parity { rotate = false; _ } -> "parity-fixed"

let pp_policy ppf = function
  | Round_robin { strip_blocks } ->
      Format.fprintf ppf "round-robin(strip=%d)" strip_blocks
  | Hashed -> Format.fprintf ppf "hashed"
  | Parity { strip_blocks; rotate } ->
      Format.fprintf ppf "parity(strip=%d,%s)" strip_blocks
        (if rotate then "rotating" else "fixed")

let validate p ~ncards =
  if ncards <= 0 then Error (Printf.sprintf "array needs >= 1 card, got %d" ncards)
  else
    match p with
    | Round_robin { strip_blocks } when strip_blocks <= 0 ->
        Error
          (Printf.sprintf "round-robin strip size must be positive, got %d"
             strip_blocks)
    | Parity { strip_blocks; _ } when strip_blocks <= 0 ->
        Error
          (Printf.sprintf "parity strip size must be positive, got %d"
             strip_blocks)
    | Parity _ when ncards < 2 ->
        Error
          (Printf.sprintf "parity needs >= 2 cards (1 data + 1 parity), got %d"
             ncards)
    | Round_robin _ | Hashed | Parity _ -> Ok ()

(* Handles are dense from 0, so [Hashed] is exactly round-robin with a
   strip of one block; both directions stay pure integer arithmetic.

   [Parity] reserves one strip per stripe for parity.  A stripe is [s]
   rows by [ncards] columns; each row holds [ncards - 1] data blocks plus
   one parity block, and the whole parity column of stripe [k] sits on
   card [p(k)] ([ncards - 1] fixed for RAID-4, rotating right-to-left for
   RAID-5).  Client handles cover {e data} blocks only — [s * (ncards-1)]
   per stripe — while the array allocates the parity strip's locals
   eagerly when a stripe opens, so every card still receives exactly [s]
   locals per complete stripe and the per-card cursors stay pure
   functions of the global one (the table-free recovery invariant).

   Row geometry: global [g] in stripe [k = g / (s*(ncards-1))] at data
   column [j = (g mod stripe) / s], in-strip offset [off = g mod s].  The
   block lands on card [j] if [j < p(k)], else [j + 1] (skipping the
   parity column), always at local [k*s + off] — the same local its row
   mates and its parity block occupy on their cards, which is what makes
   degraded reconstruction "read local l on every other card". *)

let stripe_data ~ncards s = s * (ncards - 1)

let parity_card_of_stripe ~ncards ~rotate k =
  if rotate then ncards - 1 - (k mod ncards) else ncards - 1

let card_of p ~ncards ~block =
  match p with
  | Hashed -> block mod ncards
  | Round_robin { strip_blocks = s } -> block / s mod ncards
  | Parity { strip_blocks = s; rotate } ->
      let sd = stripe_data ~ncards s in
      let k = block / sd in
      let j = block mod sd / s in
      if j < parity_card_of_stripe ~ncards ~rotate k then j else j + 1

let local_of p ~ncards ~block =
  match p with
  | Hashed -> block / ncards
  | Round_robin { strip_blocks = s } ->
      (* Full stripes before this one contribute [s] blocks to every card;
         the current strip contributes the in-strip offset. *)
      (block / (s * ncards) * s) + (block mod s)
  | Parity { strip_blocks = s; rotate = _ } ->
      (block / stripe_data ~ncards s * s) + (block mod s)

let global_of p ~ncards ~card ~local =
  match p with
  | Hashed -> (local * ncards) + card
  | Round_robin { strip_blocks = s } ->
      (local / s * (s * ncards)) + (card * s) + (local mod s)
  | Parity { strip_blocks = s; rotate } ->
      let k = local / s in
      let pc = parity_card_of_stripe ~ncards ~rotate k in
      if card = pc then
        invalid_arg
          (Printf.sprintf
             "Striping.global_of: (card %d, local %d) is stripe %d's parity \
              slot, not a data block"
             card local k)
      else
        let j = if card < pc then card else card - 1 in
        (k * stripe_data ~ncards s) + (j * s) + (local mod s)

let locals_before p ~ncards ~card g =
  match p with
  | Hashed -> if g > card then (g - card + ncards - 1) / ncards else 0
  | Round_robin { strip_blocks = s } ->
      (* Whole stripes contribute [s] each; within the current stripe the
         card's strip is [card*s .. card*s + s). *)
      let stripe = s * ncards in
      let full = g / stripe * s in
      let rem = g mod stripe in
      full + max 0 (min s (rem - (card * s)))
  | Parity { strip_blocks = s; rotate } ->
      (* Complete stripes contribute [s] to every card (data strip or
         eagerly allocated parity strip).  In the open stripe, the parity
         card got all [s] of its locals the moment the stripe opened; a
         data card's strip fills [s] globals at a time in column order. *)
      let sd = stripe_data ~ncards s in
      let k = g / sd in
      let r = g mod sd in
      let full = k * s in
      if r = 0 then full
      else
        let pc = parity_card_of_stripe ~ncards ~rotate k in
        if card = pc then full + s
        else
          let j = if card < pc then card else card - 1 in
          full + max 0 (min s (r - (j * s)))

let parity_slot p ~ncards ~block =
  match p with
  | Round_robin _ | Hashed -> None
  | Parity { strip_blocks = s; rotate } ->
      let k = block / stripe_data ~ncards s in
      Some
        ( parity_card_of_stripe ~ncards ~rotate k,
          (k * s) + (block mod s) )

let parity_card_of_local p ~ncards ~local =
  match p with
  | Round_robin _ | Hashed ->
      invalid_arg "Striping.parity_card_of_local: not a parity policy"
  | Parity { strip_blocks = s; rotate } ->
      parity_card_of_stripe ~ncards ~rotate (local / s)

let parity_prealloc p ~ncards ~block =
  match p with
  | Round_robin _ | Hashed -> None
  | Parity { strip_blocks = s; rotate } ->
      let sd = stripe_data ~ncards s in
      if block mod sd <> 0 then None
      else
        let k = block / sd in
        Some (parity_card_of_stripe ~ncards ~rotate k, k * s, s)

let min_global_cursor p ~ncards ~card ~local =
  match p with
  | Round_robin _ | Hashed -> global_of p ~ncards ~card ~local + 1
  | Parity { strip_blocks = s; rotate } ->
      let k = local / s in
      if card = parity_card_of_stripe ~ncards ~rotate k then
        (* A parity local exists as soon as its stripe opens: all it
           implies is that stripe [k]'s first data block was allocated. *)
        (k * stripe_data ~ncards s) + 1
      else global_of p ~ncards ~card ~local + 1
