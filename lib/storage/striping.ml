type policy = Round_robin of { strip_blocks : int } | Hashed

let policy_name = function
  | Round_robin _ -> "round-robin"
  | Hashed -> "hashed"

let pp_policy ppf = function
  | Round_robin { strip_blocks } ->
      Format.fprintf ppf "round-robin(strip=%d)" strip_blocks
  | Hashed -> Format.fprintf ppf "hashed"

let validate p ~ncards =
  if ncards <= 0 then Error (Printf.sprintf "array needs >= 1 card, got %d" ncards)
  else
    match p with
    | Round_robin { strip_blocks } when strip_blocks <= 0 ->
        Error
          (Printf.sprintf "round-robin strip size must be positive, got %d"
             strip_blocks)
    | Round_robin _ | Hashed -> Ok ()

(* Handles are dense from 0, so [Hashed] is exactly round-robin with a
   strip of one block; both directions stay pure integer arithmetic. *)

let card_of p ~ncards ~block =
  match p with
  | Hashed -> block mod ncards
  | Round_robin { strip_blocks = s } -> block / s mod ncards

let local_of p ~ncards ~block =
  match p with
  | Hashed -> block / ncards
  | Round_robin { strip_blocks = s } ->
      (* Full stripes before this one contribute [s] blocks to every card;
         the current strip contributes the in-strip offset. *)
      (block / (s * ncards) * s) + (block mod s)

let global_of p ~ncards ~card ~local =
  match p with
  | Hashed -> (local * ncards) + card
  | Round_robin { strip_blocks = s } ->
      (local / s * (s * ncards)) + (card * s) + (local mod s)

let locals_before p ~ncards ~card g =
  match p with
  | Hashed -> if g > card then (g - card + ncards - 1) / ncards else 0
  | Round_robin { strip_blocks = s } ->
      (* Whole stripes contribute [s] each; within the current stripe the
         card's strip is [card*s .. card*s + s). *)
      let stripe = s * ncards in
      let full = g / stripe * s in
      let rem = g mod stripe in
      full + max 0 (min s (rem - (card * s)))
