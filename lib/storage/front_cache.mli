(** Shared front cache for a multi-card array.

    A clean (read-only) LRU over global block handles, sitting in DRAM in
    front of every card so cross-card hot blocks are served without
    touching any card's flash.  It follows the [Buffer_cache] counting
    contract: [find_or_insert] counts exactly one hit or one miss and
    refreshes recency exactly once per logical access; [insert] counts
    nothing; zero capacity is a true pass-through (nothing is retained,
    every access is a counted miss).

    The cache holds no payloads — residency alone decides whether a read
    is served from DRAM or routed to a card — and never holds dirty data:
    writes and frees must [invalidate] the handle, and a crash [clear]s
    the whole cache (it lives in volatile DRAM). *)

type t

val create : capacity_blocks:int -> t
(** Raises [Invalid_argument] on negative capacity. *)

val capacity : t -> int
val size : t -> int

type lookup = Hit | Miss

val find_or_insert : t -> key:int -> lookup
(** One counted lookup: on [Hit] the entry moves to MRU; on [Miss] the
    handle becomes resident (evicting the LRU entry if full).  At zero
    capacity always a counted [Miss], nothing retained. *)

val lookup : t -> key:int -> lookup
(** One counted lookup that commits {e nothing} on a miss: on [Hit] the
    entry moves to MRU exactly as {!find_or_insert}; on [Miss] the key
    does not become resident.  For read paths that must not leave a
    handle resident until the backing read actually returned — pair with
    {!insert} after the read succeeds (if the read raises, nothing was
    ever resident, so no spurious hit can follow). *)

val insert : t -> key:int -> unit
(** Make [key] resident (refreshing recency if already present) without
    counting a hit or a miss.  No-op at zero capacity. *)

val contains : t -> key:int -> bool
val invalidate : t -> key:int -> unit
val clear : t -> unit
(** Drop all residency (crash / remount).  Counters survive;
    use [reset_counters] for the traffic-reset chokepoint. *)

val hits : t -> int
val misses : t -> int
val reset_counters : t -> unit
