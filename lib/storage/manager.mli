(** The physical storage manager (Section 3.3).

    The manager owns the machine's DRAM write buffer and its flash device
    and presents a flat store of fixed-size logical blocks (one block = one
    flash sector's worth of data) to the file and virtual-memory systems.
    It implements every responsibility the paper assigns it:

    - buffering written data in battery-backed DRAM and flushing it to
      flash only after a writeback delay, so data that dies young never
      reaches flash;
    - keeping frequently-written (hot) blocks in DRAM past their deadline
      and read-mostly data in flash;
    - log-structured allocation of flash space in segments, with garbage
      collection by a pluggable victim-selection policy;
    - wear leveling across erase sectors;
    - partitioning flash banks between read-mostly and frequently-written
      data;
    - free-list maintenance for both flash segments and buffer space.

    All operations happen at the owning engine's current instant; returned
    spans are the stall observed by the caller.  Background flushes and
    cleaning run as engine events and stall nobody directly — but they
    occupy flash banks, which later operations (and concurrent reads) wait
    for. *)

exception Out_of_space
(** Raised when live data exceeds what flash can hold even after cleaning. *)

(** How allocation and cleaning decisions are answered.

    [Indexed] (the default) consults incrementally maintained per-bank
    indexes — O(log n) per decision, O(1) counters for statistics.
    [Scan] is the original implementation, a full scan over the segment
    array per decision; it is kept as the executable reference.  [Checked]
    runs both and raises [Failure] on any divergence (used by the
    differential tests; the two are byte-identical by construction). *)
type selector = Indexed | Scan | Checked

val selector_name : selector -> string

type config = {
  segment_sectors : int;  (** Sectors (= blocks) per log segment. *)
  buffer : Write_buffer.config;
  cleaner : Cleaner.policy;
  wear : Wear.policy;
  banking : Banks.policy;
  low_water : int;  (** Demand-clean when free segments drop below this. *)
  high_water : int;  (** ... and clean until at least this many are free. *)
  hot_threshold : float option;
      (** Decayed-write-count above which a block is retained in DRAM at
          its flush deadline; [None] disables migration. *)
  heat_half_life : Sim.Time.span;
  max_flush_batch : int;
      (** Background flushes program at most this many blocks per timer
          firing, so foreground reads are never stuck behind an unbounded
          writeback burst; the remainder follows after [flush_spacing]. *)
  flush_spacing : Sim.Time.span;
  flush_watermark : float option;
      (** Capacity-threshold flushing: when buffer occupancy reaches this
          fraction, start flushing the oldest entries immediately instead
          of waiting for their writeback deadline.  Trades absorption for
          headroom (fewer synchronous evictions on bursts).  [None]
          disables it (pure writeback-delay policy). *)
  selector : selector;
  diff_log : Diff_log.config option;
      (** Page-differential logging: a flushed overwrite programs a small
          delta record against the block's durable base page instead of a
          whole page; reads reassemble base + chain at summed cost, and
          chains past the {!Diff_log.config} threshold merge back into a
          full page on the flush cursor.  [None] (the default) disables
          the policy — the flush path is then byte-identical to a manager
          built before it existed. *)
}

val default_config : config
(** 32-sector segments, the {!Write_buffer.default_config} buffer,
    cost-benefit cleaning, dynamic wear leveling, unified banks,
    watermarks 2/4, migration off. *)

type t

type block = int
(** A logical block handle. *)

val create :
  ?card:int ->
  config -> engine:Sim.Engine.t -> flash:Device.Flash.t -> dram:Device.Dram.t -> t
(** [card] is this manager's position in a multi-card {!Array}; it only
    changes probe labels ([Banks.probe_label]: ["storage.card<i>.*"]
    instead of the historical ["storage.manager.*"]) and timeline span
    args, never behavior.
    @raise Invalid_argument if the configuration is inconsistent with the
    flash geometry (segments must fit within a bank; partitioning must be
    valid; watermarks must satisfy [1 <= low_water <= high_water]). *)

val card : t -> int option

val block_bytes : t -> int
val capacity_blocks : t -> int
(** Data blocks flash can hold (excluding retired segments). *)

val alloc : t -> block
(** A fresh, empty logical block.  Handles are dense from zero and never
    reused. *)

val next_fresh_block : t -> block
(** The handle the next {!alloc} will return (also an exclusive upper
    bound on every handle ever allocated, including freed ones — remount
    pins even dead headers' ids).  A striped array uses this to rebuild
    its global allocation cursor after remounting every card. *)

val reserve_blocks : t -> next:block -> unit
(** Advance the allocation cursor so the next {!alloc} returns at least
    [next] (no-op if it already would).  After a remount, cards that lost
    never-flushed tail allocations restart their cursor below the global
    one; the array re-aligns them with this. *)

val revive_block : t -> block -> unit
(** Recreate an empty (Blank) block under a handle that sits below the
    allocation cursor but currently has no metadata — the gap handles
    {!reserve_blocks} skips over.  A striped array's rebuild streams a
    reinserted card back to life this way: reserve the cursor in one
    jump, then revive exactly the handles its degraded bookkeeping says
    existed and {!load_cold} the reconstructed ones.
    @raise Invalid_argument if the handle is at or beyond the cursor, or
    already exists. *)

val detach : t -> int
(** The card is leaving the machine: cancel any pending writeback timer
    and drop the write buffer's contents, so the dormant manager can
    never again touch a device that is no longer present.  Returns the
    number of dirty blocks dropped (what a surprise eject loses; call
    {!flush_all} first for an orderly eject and this returns 0).  The
    manager is introspection-only afterwards. *)

val write_block : t -> block -> Sim.Time.span
(** (Re)write a block.  Supersedes any flash copy immediately; the new data
    enters the write buffer (or goes straight to flash when buffering is
    off).  The returned span includes any synchronous eviction or cleaning
    the write had to wait for.
    @raise Invalid_argument on an unknown block.
    @raise Out_of_space. *)

val read_block : ?bytes:int -> t -> block -> Sim.Time.span
(** Read ([bytes] defaults to the whole block) from wherever the block
    lives: DRAM if buffered or never flushed, flash otherwise — including
    any wait for a busy flash bank. *)

(** {2 Cursor-threaded variants}

    A client operation that touches several blocks in sequence (a
    multi-block file read, a program load) must issue each access when the
    previous one finished, not stack them all at the engine's current
    instant — otherwise each access re-pays its predecessors' bank waits.
    The [_at] variants take an explicit issue time and return the
    completion time, for threading through a loop. *)

val read_block_at : ?bytes:int -> t -> at:Sim.Time.t -> block -> Sim.Time.t
(** @raise Invalid_argument if [at] is before the engine's clock would
    allow scheduling semantics to hold (it never is in practice: pass the
    previous completion). *)

val write_block_at : t -> at:Sim.Time.t -> block -> Sim.Time.t

val free_block : t -> block -> unit
(** Discard a block: cancels its buffered copy (a flush avoided) and kills
    its flash copy (space the cleaner will recycle). *)

val load_cold : t -> block -> unit
(** Place a block directly into flash through the cold-data path (the
    read-mostly banks under partitioning), bypassing the buffer.  Used to
    preload long-lived data — installed programs, existing files. *)

val flush_all : t -> Sim.Time.span
(** Synchronously flush every dirty block (sync / orderly shutdown). *)

(** {1 Introspection} *)

type stats = {
  client_writes : int;  (** write_block calls. *)
  client_reads : int;
  absorbed_writes : int;  (** Writes that hit an already-dirty block. *)
  cancelled_blocks : int;  (** Dirty blocks freed before flushing. *)
  blocks_flushed : int;  (** Client blocks programmed into flash. *)
  blocks_cleaned : int;  (** Live blocks copied by the cleaner. *)
  cold_loads : int;
  hot_retained : int;  (** Deadline flushes deferred because the block was hot. *)
  cleanings : int;  (** Victim segments cleaned. *)
  dirty_blocks : int;  (** Currently in the buffer. *)
  free_segments : int;
  retired_segments : int;
  live_blocks : int;  (** Blocks with a live flash copy. *)
  write_reduction : float;
      (** 1 - flushed/writes: the Section 3.3 headline metric. *)
  write_amplification : float;
      (** (flushed + cleaned) / flushed. *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val wear_evenness : t -> Wear.evenness
(** Erase-count spread across segments. *)

val buffer_pending_entries : t -> int
(** Writeback-queue entries, stale refresh leftovers included (see
    {!Write_buffer.pending_entries}) — the gauge the allocation benches
    pin to show compaction keeps the queue bounded. *)

val diff_stats : t -> Diff_log.stats option
(** Chain and delta-traffic counters; [None] when diff logging is off. *)

val delta_chain_length : t -> block -> int
(** Delta records currently chained against the block's base page (0
    without a chain or with diff logging off). *)

val flash : t -> Device.Flash.t
val dram : t -> Device.Dram.t
val engine : t -> Sim.Engine.t
val nsegments : t -> int
val segment_of_block : t -> block -> int option
(** The segment holding the block's flash copy, if flushed. *)

val location_of_block : t -> block -> (int * int) option
(** The exact [(segment, slot)] of the block's flash copy, if flushed —
    the placement the crash-consistency harness asserts survives a
    remount. *)

(** A point-in-time view of one segment, for comparing physical flash
    state across a crash or between managers. *)
type segment_snapshot = {
  seg_state : Segment.state;
  seg_live : int;  (** Live blocks resident in the segment. *)
  seg_used : int;  (** Programmed slots since the last erase. *)
  seg_erases : int;
  seg_retired : bool;
}

val segment_snapshots : t -> segment_snapshot array
(** One snapshot per segment, indexed by segment id. *)

val block_is_dirty : t -> block -> bool
(** Is the block's current data in the DRAM write buffer? *)

val block_exists : t -> block -> bool
(** Does the manager know this handle (allocated and not freed)? *)

val known_blocks : t -> block list
(** Every live handle, ascending.  O(blocks); for recovery tools. *)

val reset_traffic : t -> unit
(** Zero the traffic counters and device statistics (after preloading). *)

(** {1 Crash recovery}

    Every programmed sector carries a small header naming the logical
    block it holds, a monotonically increasing version, and a liveness bit
    (the log-structured convention).  Superseding or deleting a block
    clears its old header's liveness bit in place — flash can clear bits
    without an erase — so freed data stays freed across a crash.  One
    deliberate exception: a block rewritten while its new data is still
    dirty in DRAM keeps its previous flash copy live, so a crash rolls the
    block back to the last durable version instead of losing it entirely.

    If the machine loses {e all} power — both batteries — the DRAM-resident
    block map and the write buffer are gone, but flash and its headers
    survive; a remount rebuilds the map by scanning them.  Battery-backed
    DRAM exists precisely so this scan (and the loss of buffered data)
    almost never happens. *)

type remount_report = {
  sectors_scanned : int;
  live_recovered : int;  (** Blocks whose newest copy was found in flash. *)
  stale_discarded : int;  (** Superseded copies encountered and killed. *)
  buffered_lost : int;
      (** Dirty blocks that existed only in the (now lost) write buffer. *)
}

val crash_and_remount : t -> t * Sim.Time.span * remount_report
(** Simulate total power loss and recovery: a fresh manager over the same
    flash device, its block map rebuilt by reading every sector's header.
    Block handles for recovered blocks remain valid on the new manager.
    The returned span is the scan time (the recovery-latency cost the
    battery-backed organization avoids).  The crashed manager is dead
    afterwards: its pending writeback timer is cancelled and its buffer
    emptied, so it can never touch the shared flash again. *)

val pp_remount_report : Format.formatter -> remount_report -> unit
