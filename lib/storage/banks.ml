type policy = Unified | Partitioned of { write_banks : int }
type purpose = Fresh_write | Clean_out | Cold_load

let policy_name = function
  | Unified -> "unified"
  | Partitioned { write_banks } -> Printf.sprintf "partitioned(%d)" write_banks

let pp_policy ppf p = Fmt.string ppf (policy_name p)

let validate policy ~nbanks =
  match policy with
  | Unified -> Ok ()
  | Partitioned { write_banks } ->
    if write_banks < 1 then Error "write_banks must be >= 1"
    else if write_banks >= nbanks then
      Error
        (Printf.sprintf "write_banks (%d) must leave a read-mostly bank (nbanks = %d)"
           write_banks nbanks)
    else Ok ()

let probe_label ?card ?bank metric =
  let base =
    match card with
    | None -> "storage.manager"
    | Some c -> Printf.sprintf "storage.card%d" c
  in
  match bank with
  | None -> base ^ "." ^ metric
  | Some b -> Printf.sprintf "%s.bank%d.%s" base b metric

let allowed policy ~nbanks purpose ~bank =
  if bank < 0 || bank >= nbanks then invalid_arg "Banks.allowed: bank out of range";
  match policy with
  | Unified -> true
  | Partitioned { write_banks } -> begin
    match purpose with
    | Fresh_write -> bank < write_banks
    | Clean_out | Cold_load -> bank >= write_banks
  end
