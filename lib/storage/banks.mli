(** Flash bank partitioning policy.

    Section 3.3: "it may prove necessary to partition flash memory into two
    or more banks.  One bank would hold read-mostly data ... while others
    would be used for data that is more frequently written."  A bank busy
    with a slow program or erase cannot service reads, so segregating hot
    writes into dedicated banks keeps the read-mostly banks' latency flat.

    Under [Partitioned], fresh writes go to the first [write_banks] banks;
    cleaning output and cold preloads — data that has survived long enough
    to be presumed cold — go to the remaining banks. *)

type policy =
  | Unified  (** Any purpose may use any bank. *)
  | Partitioned of { write_banks : int }

type purpose =
  | Fresh_write  (** Flushes of newly written data. *)
  | Clean_out  (** Live data relocated by the cleaner (presumed cold). *)
  | Cold_load  (** Bulk preload of long-lived data (installed programs). *)

val pp_policy : Format.formatter -> policy -> unit
val policy_name : policy -> string

val validate : policy -> nbanks:int -> (unit, string) result
(** Partitioning must leave at least one bank on each side. *)

val allowed : policy -> nbanks:int -> purpose -> bank:int -> bool
(** May a segment in [bank] be opened for [purpose]? *)

val probe_label : ?card:int -> ?bank:int -> string -> string
(** The one probe label scheme shared by bank accounting and per-card
    accounting, so an array wrapping banked managers never produces
    duplicated counter names:

    - [probe_label "client_writes"] = ["storage.manager.client_writes"]
      (the historical single-manager names, unchanged);
    - [probe_label ~card:2 "client_writes"] = ["storage.card2.client_writes"];
    - [probe_label ~card:2 ~bank:1 "programs"] =
      ["storage.card2.bank1.programs"];
    - [probe_label ~bank:1 "programs"] = ["storage.manager.bank1.programs"]. *)
