(** The block store a machine mounts: one manager or a striped array.

    The fs layer and the machine consume this one surface; [Single]
    forwards every operation verbatim to the manager — zero wrapping
    state, zero extra accounting — which is what makes a [cards = 1]
    machine byte-identical to the pre-array path. *)

type t = Single of Manager.t | Striped of Array.t

val block_bytes : t -> int
val capacity_blocks : t -> int
val alloc : t -> Manager.block
val write_block : t -> Manager.block -> Sim.Time.span
val write_block_at : t -> at:Sim.Time.t -> Manager.block -> Sim.Time.t
val read_block : ?bytes:int -> t -> Manager.block -> Sim.Time.span
val read_block_at : ?bytes:int -> t -> at:Sim.Time.t -> Manager.block -> Sim.Time.t
val free_block : t -> Manager.block -> unit
val load_cold : t -> Manager.block -> unit
val flush_all : t -> Sim.Time.span
val stats : t -> Manager.stats
val dram : t -> Device.Dram.t
val engine : t -> Sim.Engine.t

val segment_of_block : t -> Manager.block -> int option
(** Card-local segment id under [Striped] — unambiguous per block since a
    block lives on exactly one card. *)

val block_is_dirty : t -> Manager.block -> bool
val block_exists : t -> Manager.block -> bool
val reset_traffic : t -> unit

val managers : t -> Manager.t array
(** The underlying manager(s) — one per card — for per-card lifetime,
    wear, and stats reporting.  Introspection only. *)

val health : t -> [ `Healthy | `Degraded of int | `Rebuilding of int ]
(** A [Single] store is always [`Healthy]; see {!Array.health}. *)

val parity_stats : t -> Array.parity_stats option
(** [Some] only for a parity-striped array. *)

val diff_stats : t -> Diff_log.stats option
(** Summed page-differential logging counters; [None] with the policy
    off everywhere. *)

val crash_and_remount : t -> t * Sim.Time.span * Manager.remount_report
(** Cold restart: remount every card (see {!Array.crash_and_remount});
    summed report, slowest-card span. *)
