(* [Storage.Array] (the card array) would shadow the stdlib inside this library. *)
module Array = Stdlib.Array
type state = Free | Open | Closed

type t = {
  id : int;
  first_sector : int;
  slots : int option array;  (** [Some block] = live block in this slot. *)
  mutable state : state;
  mutable next_slot : int;
  mutable live : int;
  mutable last_touched : Sim.Time.t;
}

let create ~id ~first_sector ~nslots =
  if nslots <= 0 then invalid_arg "Segment.create: nslots <= 0";
  {
    id;
    first_sector;
    slots = Array.make nslots None;
    state = Free;
    next_slot = 0;
    live = 0;
    last_touched = Sim.Time.zero;
  }

let id t = t.id
let state t = t.state
let nslots t = Array.length t.slots
let first_sector t = t.first_sector

let sector_of_slot t slot =
  if slot < 0 || slot >= nslots t then invalid_arg "Segment.sector_of_slot";
  t.first_sector + slot

let open_ t =
  match t.state with
  | Free -> t.state <- Open
  | Open | Closed -> invalid_arg "Segment.open_: not free"

let append t ~block =
  (match t.state with
  | Open -> ()
  | Free | Closed -> invalid_arg "Segment.append: not open");
  if t.next_slot >= nslots t then None
  else begin
    let slot = t.next_slot in
    t.slots.(slot) <- Some block;
    t.next_slot <- slot + 1;
    t.live <- t.live + 1;
    if t.next_slot = nslots t then t.state <- Closed;
    Some slot
  end

let kill t ~slot =
  if slot < 0 || slot >= nslots t then invalid_arg "Segment.kill: slot out of range";
  match t.slots.(slot) with
  | None -> invalid_arg "Segment.kill: slot empty"
  | Some _ ->
    t.slots.(slot) <- None;
    t.live <- t.live - 1

let live_blocks t =
  let acc = ref [] in
  for slot = nslots t - 1 downto 0 do
    match t.slots.(slot) with
    | Some block -> acc := (slot, block) :: !acc
    | None -> ()
  done;
  !acc

let live_count t = t.live
let used_slots t = t.next_slot
let utilization t = float_of_int t.live /. float_of_int (nslots t)

let close t =
  match t.state with
  | Open -> t.state <- Closed
  | Free | Closed -> invalid_arg "Segment.close: not open"

let reset_to_free t =
  if t.live > 0 then invalid_arg "Segment.reset_to_free: live blocks remain";
  Array.fill t.slots 0 (nslots t) None;
  t.next_slot <- 0;
  t.state <- Free

let touch t ~at = t.last_touched <- at
let last_touched t = t.last_touched
