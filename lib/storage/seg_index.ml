(* [Storage.Array] (the card array) would shadow the stdlib inside this library. *)
module Array = Stdlib.Array
module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)

module Bucketed = struct
  type t = {
    mutable buckets : Int_set.t Int_map.t;
    mutable size : int;
  }

  let create () = { buckets = Int_map.empty; size = 0 }
  let size t = t.size

  let mem t ~key id =
    match Int_map.find_opt key t.buckets with
    | None -> false
    | Some set -> Int_set.mem id set

  let add t ~key id =
    let set =
      match Int_map.find_opt key t.buckets with
      | None -> Int_set.empty
      | Some set ->
        if Int_set.mem id set then
          invalid_arg
            (Printf.sprintf "Seg_index.Bucketed.add: id %d already under key %d" id key);
        set
    in
    t.buckets <- Int_map.add key (Int_set.add id set) t.buckets;
    t.size <- t.size + 1

  let remove t ~key id =
    match Int_map.find_opt key t.buckets with
    | None ->
      invalid_arg (Printf.sprintf "Seg_index.Bucketed.remove: no bucket for key %d" key)
    | Some set ->
      if not (Int_set.mem id set) then
        invalid_arg
          (Printf.sprintf "Seg_index.Bucketed.remove: id %d not under key %d" id key);
      let set = Int_set.remove id set in
      t.buckets <-
        (if Int_set.is_empty set then Int_map.remove key t.buckets
         else Int_map.add key set t.buckets);
      t.size <- t.size - 1

  let min_entry t =
    match Int_map.min_binding_opt t.buckets with
    | None -> None
    | Some (key, set) -> Some (key, Int_set.min_elt set)

  let max_entry t =
    match Int_map.max_binding_opt t.buckets with
    | None -> None
    | Some (key, set) -> Some (key, Int_set.min_elt set)
end

(* Cost-benefit candidates: last-touched instant -> (live count -> ids).
   Empty groups are removed eagerly so iteration visits only real
   candidates. *)
type age_bank = { mutable groups : Bucketed.t Int_map.t }

type t = {
  nbanks : int;
  wear_keyed : bool;
  track_live : bool;
  track_erase : bool;
  track_age : bool;
  free : Bucketed.t array;
  by_live : Bucketed.t array;
  by_erase : Bucketed.t array;
  by_age : age_bank array;
  mutable free_total : int;
}

let create ~nbanks ~wear_keyed ~track_live ~track_erase ~track_age =
  if nbanks < 1 then invalid_arg "Seg_index.create: nbanks < 1";
  {
    nbanks;
    wear_keyed;
    track_live;
    track_erase;
    track_age;
    free = Array.init nbanks (fun _ -> Bucketed.create ());
    by_live = Array.init nbanks (fun _ -> Bucketed.create ());
    by_erase = Array.init nbanks (fun _ -> Bucketed.create ());
    by_age = Array.init nbanks (fun _ -> { groups = Int_map.empty });
    free_total = 0;
  }

let clear t =
  for bank = 0 to t.nbanks - 1 do
    t.free.(bank) <- Bucketed.create ();
    t.by_live.(bank) <- Bucketed.create ();
    t.by_erase.(bank) <- Bucketed.create ();
    t.by_age.(bank).groups <- Int_map.empty
  done;
  t.free_total <- 0

let wear_keyed t = t.wear_keyed

let check_bank t bank =
  if bank < 0 || bank >= t.nbanks then invalid_arg "Seg_index: bank out of range"

(* --- Free side ------------------------------------------------------------ *)

let free_count t = t.free_total

let bank_free_count t ~bank =
  check_bank t bank;
  Bucketed.size t.free.(bank)

let add_free t ~bank ~key ~id =
  check_bank t bank;
  Bucketed.add t.free.(bank) ~key id;
  t.free_total <- t.free_total + 1

let remove_free t ~bank ~key ~id =
  check_bank t bank;
  Bucketed.remove t.free.(bank) ~key id;
  t.free_total <- t.free_total - 1

let least_worn_free t ~bank =
  check_bank t bank;
  Bucketed.min_entry t.free.(bank)

let most_worn_free t ~bank =
  check_bank t bank;
  Bucketed.max_entry t.free.(bank)

(* --- Closed (victim) side ------------------------------------------------- *)

let age_add t ~bank ~id ~live ~lt_ns =
  let ab = t.by_age.(bank) in
  let group =
    match Int_map.find_opt lt_ns ab.groups with
    | Some g -> g
    | None ->
      let g = Bucketed.create () in
      ab.groups <- Int_map.add lt_ns g ab.groups;
      g
  in
  Bucketed.add group ~key:live id

let age_remove t ~bank ~id ~live ~lt_ns =
  let ab = t.by_age.(bank) in
  match Int_map.find_opt lt_ns ab.groups with
  | None ->
    invalid_arg (Printf.sprintf "Seg_index: no age group at %d ns for id %d" lt_ns id)
  | Some group ->
    Bucketed.remove group ~key:live id;
    if Bucketed.size group = 0 then ab.groups <- Int_map.remove lt_ns ab.groups

let add_closed t ~bank ~id ~live ~erase ~lt_ns =
  check_bank t bank;
  if t.track_live then Bucketed.add t.by_live.(bank) ~key:live id;
  if t.track_erase then Bucketed.add t.by_erase.(bank) ~key:erase id;
  if t.track_age then age_add t ~bank ~id ~live ~lt_ns

let remove_closed t ~bank ~id ~live ~erase ~lt_ns =
  check_bank t bank;
  if t.track_live then Bucketed.remove t.by_live.(bank) ~key:live id;
  if t.track_erase then Bucketed.remove t.by_erase.(bank) ~key:erase id;
  if t.track_age then age_remove t ~bank ~id ~live ~lt_ns

let closed_live_changed t ~bank ~id ~old_live ~new_live ~lt_ns =
  check_bank t bank;
  if t.track_live then begin
    Bucketed.remove t.by_live.(bank) ~key:old_live id;
    Bucketed.add t.by_live.(bank) ~key:new_live id
  end;
  if t.track_age then begin
    age_remove t ~bank ~id ~live:old_live ~lt_ns;
    age_add t ~bank ~id ~live:new_live ~lt_ns
  end

let least_live_closed t ~bank =
  check_bank t bank;
  Bucketed.min_entry t.by_live.(bank)

let coldest_closed t ~bank =
  check_bank t bank;
  Bucketed.min_entry t.by_erase.(bank)

let iter_age_reps t ~bank ~f =
  check_bank t bank;
  let rec go seq =
    match seq () with
    | Seq.Nil -> ()
    | Seq.Cons ((lt_ns, group), rest) -> (
      match Bucketed.min_entry group with
      | None -> go rest (* unreachable: empty groups are removed eagerly *)
      | Some (_live, id) -> if f ~lt_ns ~id then go rest)
  in
  go (Int_map.to_seq t.by_age.(bank).groups)
