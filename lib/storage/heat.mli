(** Write-frequency classification for DRAM/flash migration.

    The storage manager "keeps data that is frequently written in DRAM, and
    data that is mostly read in flash memory" (Section 3.3).  To decide
    which is which it tracks an exponentially-decayed write count per
    block: each write adds one, and the accumulated value halves every
    [half_life].  Blocks whose decayed count exceeds a threshold are hot —
    the manager keeps them in DRAM past their writeback deadline. *)

type t

val create : half_life:Sim.Time.span -> unit -> t
(** @raise Invalid_argument if [half_life] is not positive. *)

val record_write : t -> now:Sim.Time.t -> block:int -> unit
(** Also triggers an automatic {!sweep} every 1024 recorded writes, so the
    table stays bounded by the live write set on arbitrarily long replays. *)

val sweep : t -> now:Sim.Time.t -> int
(** Evict every entry whose decayed count has fallen below 2{^-20} (cold
    beyond any realistic hot threshold) and return how many were dropped. *)

val heat : t -> now:Sim.Time.t -> block:int -> float
(** The decayed write count as of [now]; 0 for unknown blocks. *)

val is_hot : t -> now:Sim.Time.t -> block:int -> threshold:float -> bool

val forget : t -> block:int -> unit
(** Drop tracking state (block freed). *)

val tracked : t -> int
