(* [Storage.Array] (the card array) would shadow the stdlib inside this library. *)
module Array = Stdlib.Array
module Int_map = Map.Make (Int)

type policy = None_ | Dynamic | Static of { spread_threshold : int }

let policy_name = function
  | None_ -> "none"
  | Dynamic -> "dynamic"
  | Static { spread_threshold } -> Printf.sprintf "static(%d)" spread_threshold

let pp_policy ppf p = Fmt.string ppf (policy_name p)

let fold_free f acc segments =
  Array.fold_left
    (fun acc seg -> if Segment.state seg = Segment.Free then f acc seg else acc)
    acc segments

let pick_free ?(for_cold = false) policy ~erase_count segments =
  let least_worn () =
    fold_free
      (fun best seg ->
        match best with
        | Some b when erase_count b <= erase_count seg -> best
        | Some _ | None -> Some seg)
      None segments
  in
  let most_worn () =
    fold_free
      (fun best seg ->
        match best with
        | Some b when erase_count b >= erase_count seg -> best
        | Some _ | None -> Some seg)
      None segments
  in
  match policy with
  | None_ ->
    fold_free (fun best seg -> match best with None -> Some seg | some -> some) None segments
  | Dynamic -> least_worn ()
  | Static _ -> if for_cold then most_worn () else least_worn ()

type evenness = {
  min_erases : int;
  max_erases : int;
  mean_erases : float;
  stddev_erases : float;
}

(* Running wear statistics over the segments' erase counts, kept in exact
   integer form: the counts are small (bounded by endurance, ~1e6) so the
   total and the sum of squares fit an int with headroom, and integer sums
   are order-independent — an accumulator maintained incrementally (one
   [bump] per segment cleaning) holds byte-for-byte the same values as one
   folded over the array.  [evenness_of_acc] is the single place the
   floats are derived, so the scan and the incremental paths can never
   disagree in the low bits.  The min (which can move when the least-worn
   segment is erased) comes from a count-per-erase-level map. *)
type acc = {
  mutable count : int;
  mutable total : int;
  mutable sum_sq : int;
  mutable levels : int Int_map.t;  (** erase count -> number of segments *)
}

let acc_create () = { count = 0; total = 0; sum_sq = 0; levels = Int_map.empty }

let acc_clear a =
  a.count <- 0;
  a.total <- 0;
  a.sum_sq <- 0;
  a.levels <- Int_map.empty

let level_incr levels c =
  Int_map.update c (function None -> Some 1 | Some n -> Some (n + 1)) levels

let level_decr levels c =
  Int_map.update c
    (function
      | None | Some 1 -> None
      | Some n -> Some (n - 1))
    levels

let acc_add a c =
  a.count <- a.count + 1;
  a.total <- a.total + c;
  a.sum_sq <- a.sum_sq + (c * c);
  a.levels <- level_incr a.levels c

let acc_bump a ~old_count ~new_count =
  a.total <- a.total + new_count - old_count;
  a.sum_sq <- a.sum_sq + (new_count * new_count) - (old_count * old_count);
  a.levels <- level_incr (level_decr a.levels old_count) new_count

let acc_of_scan ~erase_count segments =
  let a = acc_create () in
  Array.iter (fun seg -> acc_add a (erase_count seg)) segments;
  a

let evenness_of_acc a =
  if a.count = 0 then
    { min_erases = 0; max_erases = 0; mean_erases = 0.0; stddev_erases = 0.0 }
  else begin
    let min_e, _ = Int_map.min_binding a.levels in
    let max_e, _ = Int_map.max_binding a.levels in
    let n = float_of_int a.count in
    let mean = float_of_int a.total /. n in
    let variance =
      if a.count < 2 then 0.0
      else
        Float.max 0.0
          ((float_of_int a.sum_sq -. (float_of_int a.total *. float_of_int a.total /. n))
          /. float_of_int (a.count - 1))
    in
    { min_erases = min_e; max_erases = max_e; mean_erases = mean;
      stddev_erases = sqrt variance }
  end

let evenness ~erase_count segments = evenness_of_acc (acc_of_scan ~erase_count segments)

(* Trigger on max - mean rather than max - min: a single segment that
   happens never to erase (an outlier minimum) must not keep forced
   relocation running forever. *)
let spread_exceeds e ~spread_threshold =
  float_of_int e.max_erases -. e.mean_erases > float_of_int spread_threshold

let relocation_victim policy ~erase_count ~eligible segments =
  match policy with
  | None_ | Dynamic -> None
  | Static { spread_threshold } ->
    let e = evenness ~erase_count segments in
    if not (spread_exceeds e ~spread_threshold) then None
    else
      Array.fold_left
        (fun best seg ->
          if Segment.state seg <> Segment.Closed || not (eligible seg) then best
          else
            match best with
            | Some b when erase_count b <= erase_count seg -> best
            | Some _ | None -> Some seg)
        None segments

let lifetime_writes ~endurance ~total_sectors ~max_erases ~total_erases =
  if max_erases = 0 then infinity
  else begin
    let mean = float_of_int total_erases /. float_of_int total_sectors in
    let skew = float_of_int max_erases /. Float.max mean 1e-9 in
    float_of_int endurance *. float_of_int total_sectors /. skew
  end
