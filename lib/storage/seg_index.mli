(** Incrementally maintained segment-state indexes for {!Manager}.

    The storage manager's hot decisions — which free segment to open
    ({!Wear.pick_free} plus the least-busy-bank restriction), which closed
    segment to clean ({!Cleaner.select}, {!Wear.relocation_victim}) — were
    originally full scans over the segment array on every call.  This
    module keeps the same decisions available as O(log n) lookups over
    structures updated at each segment state transition:

    - per bank, the {e free} segments bucketed by wear key (erase count,
      or a constant under first-fit allocation), so least-worn / most-worn
      / first-fit picks are a [min_binding] away;
    - per bank, the {e closed} segments bucketed by live-block count
      (greedy victim selection), by erase count (static wear-leveling
      relocation), and grouped by last-touched time with a live-count
      bucket per group (cost-benefit victim selection: within one age
      group relative scores are constant, so only each group's
      emptiest-lowest-id member can ever win).

    Buckets are [Map]/[Set] based, so every entry point is O(log n) and
    min/max queries return the {e lowest segment id} within the extreme
    bucket — matching the first-in-id-order tie-breaking of the reference
    scans, which the differential tests pin down.

    This module is pure bookkeeping over [(bank, id, key)] integers; it
    never touches devices or segments.  {!Manager} owns the hook points
    and the policy logic that combines per-bank answers. *)

module Bucketed : sig
  (** A multiset of segment ids bucketed by an integer key, with O(log n)
      add/remove and O(log n) (key, lowest id) min/max queries. *)

  type t

  val create : unit -> t
  val size : t -> int
  val mem : t -> key:int -> int -> bool

  val add : t -> key:int -> int -> unit
  (** @raise Invalid_argument if the id is already present under [key]. *)

  val remove : t -> key:int -> int -> unit
  (** @raise Invalid_argument if the id is not present under [key]. *)

  val min_entry : t -> (int * int) option
  (** [(lowest key, lowest id within that bucket)]. *)

  val max_entry : t -> (int * int) option
  (** [(highest key, lowest id within that bucket)]. *)
end

type t

val create :
  nbanks:int ->
  wear_keyed:bool ->
  track_live:bool ->
  track_erase:bool ->
  track_age:bool ->
  t
(** [wear_keyed] selects the free-index key: the segment's erase count
    (wear-leveling allocation) or [0] (first-fit, so the min entry is
    simply the lowest free id).  The three [track_*] flags enable the
    closed-segment structures a given policy pair actually consults;
    disabled structures cost nothing to maintain. *)

val clear : t -> unit
(** Empty every structure (before a full reindex). *)

val wear_keyed : t -> bool

(** {1 Free side} *)

val free_count : t -> int
(** Total free segments across banks, O(1). *)

val bank_free_count : t -> bank:int -> int

val add_free : t -> bank:int -> key:int -> id:int -> unit
val remove_free : t -> bank:int -> key:int -> id:int -> unit

val least_worn_free : t -> bank:int -> (int * int) option
(** [(key, id)] of the least-worn free segment in the bank, lowest id on
    ties.  Under [wear_keyed = false] every key is [0], so this is
    first-fit: the lowest free id. *)

val most_worn_free : t -> bank:int -> (int * int) option

(** {1 Closed (victim) side} *)

val add_closed : t -> bank:int -> id:int -> live:int -> erase:int -> lt_ns:int -> unit
(** Index a segment that just transitioned to Closed.  [lt_ns] is its
    last-touched instant in nanoseconds (the cost-benefit age key). *)

val remove_closed :
  t -> bank:int -> id:int -> live:int -> erase:int -> lt_ns:int -> unit

val closed_live_changed :
  t -> bank:int -> id:int -> old_live:int -> new_live:int -> lt_ns:int -> unit
(** A block in an indexed closed segment died (or, during recovery
    replay, revived): move the segment between live-count buckets. *)

val least_live_closed : t -> bank:int -> (int * int) option
(** [(live count, id)] of the greedy victim candidate in the bank. *)

val coldest_closed : t -> bank:int -> (int * int) option
(** [(erase count, id)] of the least-worn closed segment in the bank
    (static wear-leveling relocation candidate). *)

val iter_age_reps : t -> bank:int -> f:(lt_ns:int -> id:int -> bool) -> unit
(** Visit one cost-benefit candidate per distinct last-touched instant,
    oldest first: the emptiest (then lowest-id) member of each age group,
    the only member that can maximize [age * (1-u)/(1+u)] within the
    group.  [f] returns [false] to stop early (callers cut off once the
    group-age upper bound can no longer beat the best score so far). *)
