open Sim

type program = { prog_name : string; text_bytes : int; data_bytes : int }

let install_text manager program =
  if program.text_bytes <= 0 then invalid_arg "Exec.install_text: empty text";
  let bs = Storage.Manager.block_bytes manager in
  let n = Units.ceil_div program.text_bytes bs in
  Array.init n (fun _ ->
      let b = Storage.Manager.alloc manager in
      Storage.Manager.load_cold manager b;
      b)

type strategy = Execute_in_place | Copy_to_dram | Load_from_disk of Device.Disk.t

let strategy_name = function
  | Execute_in_place -> "execute-in-place"
  | Copy_to_dram -> "copy-to-dram"
  | Load_from_disk _ -> "load-from-disk"

type launched = {
  space : Addr_space.t;
  text : Addr_space.region;
  data : Addr_space.region;
  launch_latency : Time.span;
  text_dram_bytes : int;
}

let ok_or_fault = function
  | Ok span -> span
  | Error _ -> invalid_arg "Exec: unexpected fault on a region we just mapped"

(* Copy text into anonymous pages: every page is zero-filled (frame
   allocation) and then overwritten with text read from the source. *)
let load_text vm space region ~read_source =
  let page_bytes = Addr_space.page_bytes space in
  let span = ref Time.span_zero in
  for i = 0 to region.Addr_space.pages - 1 do
    let addr = region.Addr_space.base + (i * page_bytes) in
    span := Time.span_add !span (read_source i);
    span :=
      Time.span_add !span
        (ok_or_fault (Vm.touch vm space ~addr ~access:`Write ~bytes:page_bytes ()))
  done;
  !span

let p_launches = Probe.counter "vm.exec.launches"
let p_fetches = Probe.counter "vm.exec.fetches"

let launch vm program ~text_blocks strategy =
  Probe.incr p_launches;
  let space = Vm.new_space vm in
  let page_bytes = Addr_space.page_bytes space in
  let data, data_span =
    Vm.map_anon vm space ~kind:Addr_space.Data ~prot:Page_table.prot_rw
      ~bytes:(max 1 program.data_bytes)
  in
  match strategy with
  | Execute_in_place ->
    let text, text_span =
      Vm.map_file vm space ~kind:Addr_space.Text ~prot:Page_table.prot_rx ~cow:false
        ~blocks:text_blocks ~bytes:program.text_bytes
    in
    {
      space;
      text;
      data;
      launch_latency = Time.span_add data_span text_span;
      text_dram_bytes = 0;
    }
  | Copy_to_dram ->
    let text, text_span =
      Vm.map_anon vm space ~kind:Addr_space.Text ~prot:Page_table.prot_rwx
        ~bytes:program.text_bytes
    in
    let manager = Vm.manager vm in
    let blocks_per_page = page_bytes / Storage.Manager.block_bytes manager in
    (* Thread the read cursor across the whole sequential copy. *)
    let cursor = ref (Sim.Engine.now (Storage.Manager.engine manager)) in
    let read_source i =
      let before = !cursor in
      for j = i * blocks_per_page to min ((i + 1) * blocks_per_page) (Array.length text_blocks) - 1 do
        cursor := Storage.Manager.read_block_at manager ~at:!cursor text_blocks.(j)
      done;
      Time.diff !cursor before
    in
    let copy_span = load_text vm space text ~read_source in
    {
      space;
      text;
      data;
      launch_latency = Time.span_add data_span (Time.span_add text_span copy_span);
      text_dram_bytes = text.Addr_space.pages * page_bytes;
    }
  | Load_from_disk disk ->
    let text, text_span =
      Vm.map_anon vm space ~kind:Addr_space.Text ~prot:Page_table.prot_rwx
        ~bytes:program.text_bytes
    in
    let cursor = ref Time.zero in
    let read_source i =
      (* Sequential image read: one page-sized disk transfer per page. *)
      let sectors_per_page = page_bytes / 512 in
      let capacity = Device.Disk.capacity_bytes disk / 512 in
      let lba = i * sectors_per_page mod max 1 (capacity - sectors_per_page) in
      let before = !cursor in
      let op = Device.Disk.access disk ~now:before ~lba ~bytes:page_bytes ~kind:`Read in
      cursor := op.Device.Disk.finish;
      Time.diff op.Device.Disk.finish before
    in
    let copy_span = load_text vm space text ~read_source in
    {
      space;
      text;
      data;
      launch_latency = Time.span_add data_span (Time.span_add text_span copy_span);
      text_dram_bytes = text.Addr_space.pages * page_bytes;
    }

let run vm launched ~rng ~fetches =
  Probe.add p_fetches fetches;
  let page_bytes = Addr_space.page_bytes launched.space in
  let text = launched.text in
  let text_bytes = text.Addr_space.pages * page_bytes in
  let line = 64 in
  let engine = Storage.Manager.engine (Vm.manager vm) in
  (* Closed loop: the CPU issues the next fetch when this one completes. *)
  let advance span =
    Sim.Engine.run_until engine (Time.add (Sim.Engine.now engine) span)
  in
  let total = ref Time.span_zero in
  let pc = ref text.Addr_space.base in
  for i = 0 to fetches - 1 do
    (* 0.9 sequential, 0.1 jump to a random line. *)
    if Rng.bernoulli rng ~p:0.1 then
      pc := text.Addr_space.base + (Rng.int rng (max 1 (text_bytes / line)) * line);
    let span =
      ok_or_fault (Vm.touch vm launched.space ~addr:!pc ~access:`Exec ~bytes:line ())
    in
    total := Time.span_add !total span;
    advance span;
    pc := !pc + line;
    if !pc >= text.Addr_space.base + text_bytes then pc := text.Addr_space.base;
    (* A data access roughly every four instructionfetches. *)
    if i mod 4 = 3 then begin
      let daddr =
        launched.data.Addr_space.base
        + (Rng.int rng (max 1 (launched.data.Addr_space.pages * page_bytes / line))
          * line)
      in
      let access = if Rng.bernoulli rng ~p:0.3 then `Write else `Read in
      let span =
        ok_or_fault (Vm.touch vm launched.space ~addr:daddr ~access ~bytes:line ())
      in
      total := Time.span_add !total span;
      advance span
    end
  done;
  !total
