type t = string list

let valid_name name =
  name <> "" && name <> "." && name <> ".." && not (String.contains name '/')

let parse s =
  if String.length s = 0 || s.[0] <> '/' then Error Fs_error.Einval
  else begin
    (* One right-to-left pass building the component list in order —
       equivalent to split-on-'/' + drop empties + validate, without the
       intermediate lists (this runs once per replayed record).  A
       component cannot contain '/' by construction, so validity reduces
       to rejecting "." and "..". *)
    let ok = ref true in
    let acc = ref [] in
    let stop = ref (String.length s) in
    for i = String.length s - 1 downto 0 do
      if String.unsafe_get s i = '/' then begin
        if !stop > i + 1 then begin
          let c = String.sub s (i + 1) (!stop - i - 1) in
          if c = "." || c = ".." then ok := false;
          acc := c :: !acc
        end;
        stop := i
      end
    done;
    if !ok then Ok !acc else Error Fs_error.Einval
  end

let to_string = function
  | [] -> "/"
  | components -> "/" ^ String.concat "/" components

let split_last t =
  match List.rev t with
  | [] -> None
  | last :: rev_parent -> Some (List.rev rev_parent, last)
