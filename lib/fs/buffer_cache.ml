(* Doubly-linked LRU list threaded through a hash table. *)

type node = {
  key : int;
  mutable dirty : bool;
  mutable prev : node option;  (* toward MRU *)
  mutable next : node option;  (* toward LRU *)
}

type t = {
  capacity : int;
  table : (int, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

let p_hits = Sim.Probe.counter "fs.buffer_cache.hits"
let p_misses = Sim.Probe.counter "fs.buffer_cache.misses"
let p_writebacks = Sim.Probe.counter "fs.buffer_cache.writebacks"

let create ~capacity_blocks =
  if capacity_blocks < 0 then invalid_arg "Buffer_cache.create: negative capacity";
  {
    capacity = capacity_blocks;
    table = Hashtbl.create (max 16 capacity_blocks);
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    writebacks = 0;
  }

let capacity t = t.capacity
let size t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.mru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.lru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.mru;
  node.prev <- None;
  (match t.mru with Some m -> m.prev <- Some node | None -> t.lru <- Some node);
  t.mru <- Some node

type lookup = Hit | Miss

let count_hit t =
  t.hits <- t.hits + 1;
  Sim.Probe.incr p_hits

let count_miss t =
  t.misses <- t.misses + 1;
  Sim.Probe.incr p_misses

let count_writeback t =
  t.writebacks <- t.writebacks + 1;
  Sim.Probe.incr p_writebacks

let find t ~key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    count_hit t;
    unlink t node;
    push_front t node;
    Hit
  | None ->
    count_miss t;
    Miss

let evict_one t =
  match t.lru with
  | None -> None
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    if node.dirty then begin
      count_writeback t;
      Some node.key
    end
    else None

(* The block is known absent: make it resident (or pass it through at zero
   capacity) and return the dirty victims.  Shared by [insert] and the miss
   arm of [find_or_insert]; counts nothing itself. *)
let insert_fresh t ~key ~dirty =
  if t.capacity = 0 then begin
    if dirty then begin
      count_writeback t;
      [ key ]
    end
    else []
  end
  else begin
    let victims = ref [] in
    while size t >= t.capacity do
      match evict_one t with
      | Some victim -> victims := victim :: !victims
      | None -> ()
    done;
    let node = { key; dirty; prev = None; next = None } in
    Hashtbl.replace t.table key node;
    push_front t node;
    List.rev !victims
  end

let insert t ~key ~dirty =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    node.dirty <- node.dirty || dirty;
    unlink t node;
    push_front t node;
    []
  | None -> insert_fresh t ~key ~dirty

let find_or_insert t ~key ~dirty =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    count_hit t;
    node.dirty <- node.dirty || dirty;
    unlink t node;
    push_front t node;
    (Hit, [])
  | None ->
    count_miss t;
    (Miss, insert_fresh t ~key ~dirty)

let mark_dirty t ~key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    node.dirty <- true;
    true
  | None -> false

let is_dirty t ~key =
  match Hashtbl.find_opt t.table key with Some node -> node.dirty | None -> false

let contains t ~key = Hashtbl.mem t.table key

let forget t ~key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table key
  | None -> ()

let take_dirty t =
  (* Oldest first: walk from the LRU end. *)
  let rec collect acc = function
    | None -> List.rev acc
    | Some node ->
      let acc = if node.dirty then node.key :: acc else acc in
      node.dirty <- false;
      collect acc node.prev
  in
  collect [] t.lru

let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0
