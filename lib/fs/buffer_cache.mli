(** LRU buffer cache for the disk file system.

    The conventional organization the paper contrasts against keeps a cache
    of disk blocks in DRAM: reads hit it or fault to disk; writes dirty it
    and are written back later (the update daemon) or on demand (eviction,
    sync).  The memory-resident file system needs none of this — which is
    exactly the comparison experiment E3 draws.

    This module is the pure replacement structure; device charging is the
    caller's job. *)

type t

val create : capacity_blocks:int -> t
(** @raise Invalid_argument if capacity is negative. *)

val capacity : t -> int
val size : t -> int

type lookup = Hit | Miss

(** {2 Counting contract}

    {!find} counts one hit or one miss and refreshes recency on a hit only.
    {!insert} counts {e nothing} (it reports dirty evictions through the
    {!writebacks} counter but never hit/miss) and always refreshes recency.
    So the classic miss sequence [find] (counts the miss) then [insert]
    (silent) counts exactly once — but any other composition miscounts:
    [insert] alone leaves the access invisible to hit/miss, and [find]
    followed by a hit-path [insert] touches recency twice, which changes
    eviction order relative to a single access.  Callers accounting one
    logical block access should use {!find_or_insert}. *)

val find : t -> key:int -> lookup
(** Probe for a block; a hit refreshes its recency and counts one hit, a
    miss counts one miss (and does not touch recency — the block is not
    resident). *)

val insert : t -> key:int -> dirty:bool -> int list
(** Make the block resident (MRU, with the given dirty state — an
    already-resident block keeps its dirty bit ORed).  Returns the dirty
    victims evicted to make room, which the caller must write back.  With
    zero capacity the block is not retained and, if dirty, is its own
    victim.  Counts no hit or miss; see the counting contract above. *)

val find_or_insert : t -> key:int -> dirty:bool -> lookup * int list
(** One logical block access: probe, and on a miss make the block resident
    as {!insert} would.  Counts exactly one hit or one miss and refreshes
    recency exactly once, whatever the outcome — immune to the
    [find]-then-[insert] double-touch.  Returns the outcome and the dirty
    victims (always [[]] on a hit). *)

val mark_dirty : t -> key:int -> bool
(** Returns false if the block is not resident. *)

val is_dirty : t -> key:int -> bool
val contains : t -> key:int -> bool

val forget : t -> key:int -> unit
(** Drop a block without writeback (its file was deleted). *)

val take_dirty : t -> int list
(** All dirty blocks, oldest first; their dirty bits are cleared (they
    remain resident).  Used by sync and the update daemon. *)

val hits : t -> int
val misses : t -> int
val writebacks : t -> int
(** Dirty blocks returned by {!insert}/{!find_or_insert} evictions so far. *)

val reset_counters : t -> unit
(** Zero {!hits}, {!misses}, and {!writebacks} (residency and recency are
    untouched).  Part of [Machine.preload]'s start-clean contract. *)
