open Sim

(* A growable array of block handles: the flat block map.  Slots hold the
   handle directly (block ids are non-negative ints) with [no_block] as the
   hole sentinel, so the per-block read/write path never touches an option
   box — every replayed record walks this structure. *)
module Blockmap = struct
  type t = { mutable slots : int array; mutable len : int }

  let no_block = -1

  let create () = { slots = [||]; len = 0 }
  let length t = t.len

  (* Unboxed lookup: the handle, or [no_block] for a hole / out of range. *)
  let find t i = if i < t.len then t.slots.(i) else no_block

  let get t i =
    let b = find t i in
    if b = no_block then None else Some b

  let ensure t n =
    if n > Array.length t.slots then begin
      let cap = max 8 (max n (2 * Array.length t.slots)) in
      let slots = Array.make cap no_block in
      Array.blit t.slots 0 slots 0 t.len;
      t.slots <- slots
    end;
    if n > t.len then t.len <- n

  let set t i b =
    if b < 0 then invalid_arg "Blockmap.set: negative block";
    ensure t (i + 1);
    t.slots.(i) <- b

  (* Shrink to [n] slots, returning the dropped live handles. *)
  let crop t n =
    let n = max n 0 in
    let dropped = ref [] in
    for i = t.len - 1 downto n do
      let b = t.slots.(i) in
      if b <> no_block then dropped := b :: !dropped;
      t.slots.(i) <- no_block
    done;
    if n < t.len then t.len <- n;
    !dropped

  let iter_live f t =
    for i = 0 to t.len - 1 do
      let b = t.slots.(i) in
      if b <> no_block then f b
    done
end

type node = File of file | Dir of (string, node) Hashtbl.t

and file = { mutable size : int; map : Blockmap.t }

(* Directory tables start large enough that workload-scale directories
   (hundreds to thousands of entries under one data directory) do not pay
   repeated rehash-and-copy cycles while a trace replays. *)
let dir_table_size = 64

type t = {
  store : Storage.Store.t;
  root : (string, node) Hashtbl.t;
  mutable files : int;
  mutable dirs : int;
}

let create_fs_store ~store () =
  { store; root = Hashtbl.create 64; files = 0; dirs = 1 }

let create_fs ~manager () = create_fs_store ~store:(Storage.Store.Single manager) ()
let store t = t.store

let manager t =
  match t.store with
  | Storage.Store.Single m -> m
  | Storage.Store.Striped _ ->
    invalid_arg "Memfs.manager: fs is mounted on a multi-card array"

let name _ = "memfs"

(* Metadata touches are ordinary DRAM accesses; 64 bytes approximates a
   directory entry or inode record. *)
let meta_read t = Device.Dram.read (Storage.Store.dram t.store) ~bytes:64
let meta_write t = Device.Dram.write (Storage.Store.dram t.store) ~bytes:64

let ( let* ) = Result.bind

(* Walk to the directory table holding the last component; charges one
   metadata read per component traversed. *)
let rec walk_dir t table components ~charge =
  match components with
  | [] -> Ok table
  | name :: rest -> begin
    charge := Time.span_add !charge (meta_read t);
    match Hashtbl.find_opt table name with
    | Some (Dir sub) -> walk_dir t sub rest ~charge
    | Some (File _) -> Error Fs_error.Enotdir
    | None -> Error Fs_error.Enoent
  end

let resolve t path ~charge =
  let* components = Path.parse path in
  match Path.split_last components with
  | None -> Ok (`Root t.root)
  | Some (parent, name) ->
    let* table = walk_dir t t.root parent ~charge in
    charge := Time.span_add !charge (meta_read t);
    Ok (`In (table, name, Hashtbl.find_opt table name))

let lookup_file t path ~charge =
  match resolve t path ~charge with
  | Error e -> Error e
  | Ok (`Root _) -> Error Fs_error.Eisdir
  | Ok (`In (_, _, None)) -> Error Fs_error.Enoent
  | Ok (`In (_, _, Some (Dir _))) -> Error Fs_error.Eisdir
  | Ok (`In (_, _, Some (File f))) -> Ok f

let mkdir t path =
  let charge = ref Time.span_zero in
  match resolve t path ~charge with
  | Error e -> Error e
  | Ok (`Root _) -> Error Fs_error.Eexist
  | Ok (`In (_, _, Some _)) -> Error Fs_error.Eexist
  | Ok (`In (table, fname, None)) ->
    Hashtbl.replace table fname (Dir (Hashtbl.create dir_table_size));
    t.dirs <- t.dirs + 1;
    Ok (Time.span_add !charge (meta_write t))

let create t path =
  let charge = ref Time.span_zero in
  match resolve t path ~charge with
  | Error e -> Error e
  | Ok (`Root _) -> Error Fs_error.Eexist
  | Ok (`In (_, _, Some _)) -> Error Fs_error.Eexist
  | Ok (`In (table, fname, None)) ->
    Hashtbl.replace table fname (File { size = 0; map = Blockmap.create () });
    t.files <- t.files + 1;
    Ok (Time.span_add !charge (meta_write t))

let block_bytes t = Storage.Store.block_bytes t.store

let p_writes = Sim.Probe.counter "fs.memfs.writes"
let p_reads = Sim.Probe.counter "fs.memfs.reads"

(* Op bodies shared by the path-resolving entry points and the
   pre-resolved routes below: everything after the leaf lookup, with the
   walk's charge threaded in. *)

let write_body t f ~offset ~bytes ~charge =
  if bytes > 0 then begin
    let bs = block_bytes t in
    let first = offset / bs and last = (offset + bytes - 1) / bs in
    (* Thread completion time through the blocks: each access issues when
       its predecessor finished. *)
    let start = Sim.Engine.now (Storage.Store.engine t.store) in
    let cursor = ref (Time.add start !charge) in
    for i = first to last do
      let b =
        let b = Blockmap.find f.map i in
        if b <> Blockmap.no_block then b
        else begin
          let b = Storage.Store.alloc t.store in
          Blockmap.set f.map i b;
          b
        end
      in
      cursor := Storage.Store.write_block_at t.store ~at:!cursor b
    done;
    charge := Time.diff !cursor start;
    f.size <- max f.size (offset + bytes)
  end;
  charge := Time.span_add !charge (meta_write t);
  Ok !charge

let read_body t f ~offset ~bytes ~charge =
  let bytes = max 0 (min bytes (f.size - offset)) in
  if bytes > 0 then begin
    let bs = block_bytes t in
    let first = offset / bs and last = (offset + bytes - 1) / bs in
    let start = Sim.Engine.now (Storage.Store.engine t.store) in
    let cursor = ref (Time.add start !charge) in
    for i = first to last do
      (* How much of this block the range covers. *)
      let lo = max offset (i * bs) and hi = min (offset + bytes) ((i + 1) * bs) in
      let n = hi - lo in
      let b = Blockmap.find f.map i in
      if b <> Blockmap.no_block then
        cursor := Storage.Store.read_block_at ~bytes:n t.store ~at:!cursor b
      else
        cursor :=
          Time.add !cursor (Device.Dram.read (Storage.Store.dram t.store) ~bytes:n)
    done;
    charge := Time.diff !cursor start
  end;
  Ok !charge

let truncate_body t f ~size ~charge =
  let bs = block_bytes t in
  let keep = Units.ceil_div size bs in
  List.iter (Storage.Store.free_block t.store) (Blockmap.crop f.map keep);
  f.size <- min f.size size;
  charge := Time.span_add !charge (meta_write t);
  Ok !charge

let write t path ~offset ~bytes =
  if offset < 0 || bytes < 0 then Error Fs_error.Einval
  else begin
    Sim.Probe.incr p_writes;
    let charge = ref Time.span_zero in
    let* f = lookup_file t path ~charge in
    write_body t f ~offset ~bytes ~charge
  end

let read t path ~offset ~bytes =
  if offset < 0 || bytes < 0 then Error Fs_error.Einval
  else begin
    Sim.Probe.incr p_reads;
    let charge = ref Time.span_zero in
    let* f = lookup_file t path ~charge in
    read_body t f ~offset ~bytes ~charge
  end

let truncate t path ~size =
  if size < 0 then Error Fs_error.Einval
  else begin
    let charge = ref Time.span_zero in
    let* f = lookup_file t path ~charge in
    truncate_body t f ~size ~charge
  end

(* Is [dst] inside the subtree rooted at [src]?  (Moving a directory into
   itself would orphan the whole subtree.) *)
let is_path_prefix ~src ~dst =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | x :: a', y :: b' when String.equal x y -> go a' b'
    | _ -> false
  in
  go src dst

let rename t src_path dst_path =
  let charge = ref Time.span_zero in
  let* src = Path.parse src_path in
  let* dst = Path.parse dst_path in
  if is_path_prefix ~src ~dst then Error Fs_error.Einval
  else begin
    match resolve t src_path ~charge with
    | Error e -> Error e
    | Ok (`Root _) -> Error Fs_error.Einval
    | Ok (`In (_, _, None)) -> Error Fs_error.Enoent
    | Ok (`In (src_table, src_name, Some node)) -> begin
      match resolve t dst_path ~charge with
      | Error e -> Error e
      | Ok (`Root _) -> Error Fs_error.Eexist
      | Ok (`In (_, _, Some _)) -> Error Fs_error.Eexist
      | Ok (`In (dst_table, dst_name, None)) ->
        Hashtbl.remove src_table src_name;
        Hashtbl.replace dst_table dst_name node;
        Ok (Time.span_add !charge (meta_write t))
    end
  end

let unlink t path =
  let charge = ref Time.span_zero in
  match resolve t path ~charge with
  | Error e -> Error e
  | Ok (`Root _) -> Error Fs_error.Eisdir
  | Ok (`In (_, _, None)) -> Error Fs_error.Enoent
  | Ok (`In (_, _, Some (Dir _))) -> Error Fs_error.Eisdir
  | Ok (`In (table, fname, Some (File f))) ->
    Blockmap.iter_live (Storage.Store.free_block t.store) f.map;
    Hashtbl.remove table fname;
    t.files <- t.files - 1;
    Ok (Time.span_add !charge (meta_write t))

let rmdir t path =
  let charge = ref Time.span_zero in
  match resolve t path ~charge with
  | Error e -> Error e
  | Ok (`Root _) -> Error Fs_error.Einval
  | Ok (`In (_, _, None)) -> Error Fs_error.Enoent
  | Ok (`In (_, _, Some (File _))) -> Error Fs_error.Enotdir
  | Ok (`In (table, fname, Some (Dir sub))) ->
    if Hashtbl.length sub > 0 then Error Fs_error.Enotempty
    else begin
      Hashtbl.remove table fname;
      t.dirs <- t.dirs - 1;
      Ok (Time.span_add !charge (meta_write t))
    end

let file_size t path =
  let charge = ref Time.span_zero in
  let* f = lookup_file t path ~charge in
  Ok f.size

let exists t path =
  let charge = ref Time.span_zero in
  match resolve t path ~charge with
  | Ok (`Root _) -> true
  | Ok (`In (_, _, Some _)) -> true
  | Ok (`In (_, _, None)) | Error _ -> false

let readdir t path =
  let charge = ref Time.span_zero in
  match resolve t path ~charge with
  | Error e -> Error e
  | Ok (`Root table) | Ok (`In (_, _, Some (Dir table))) ->
    Ok (List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) table []))
  | Ok (`In (_, _, Some (File _))) -> Error Fs_error.Enotdir
  | Ok (`In (_, _, None)) -> Error Fs_error.Enoent

let sync t = Storage.Store.flush_all t.store

let preload t path ~size =
  if size < 0 then Error Fs_error.Einval
  else begin
    let* _span = create t path in
    let charge = ref Time.span_zero in
    let* f = lookup_file t path ~charge in
    let bs = block_bytes t in
    for i = 0 to Units.ceil_div size bs - 1 do
      let b = Storage.Store.alloc t.store in
      Storage.Store.load_cold t.store b;
      Blockmap.set f.map i b
    done;
    f.size <- size;
    Ok ()
  end

(* --- Pre-resolved routes (compiled replay) --------------------------------

   A route pins a file's parent directory table so the hot replay loop
   skips path formatting, parsing, and the per-component string lookups —
   while charging exactly what the path-based walk charges (one metadata
   read per component plus one for the leaf) and still looking the leaf up
   on every operation (files come and go mid-trace).  Resolving the route
   itself is side-effect-free setup: no metadata charges, so building or
   rebuilding routes mid-run (after a cold restart) cannot perturb the
   device meters. *)

type dirh = { parent : (string, node) Hashtbl.t; depth : int }

let route t dirpath =
  let* components = Path.parse dirpath in
  let rec go table = function
    | [] -> Ok { parent = table; depth = List.length components }
    | name :: rest -> begin
      match Hashtbl.find_opt table name with
      | Some (Dir sub) -> go sub rest
      | Some (File _) -> Error Fs_error.Enotdir
      | None -> Error Fs_error.Enoent
    end
  in
  go t.root components

(* The walk's charges, without the walk. *)
let resolve_in t (d : dirh) name ~charge =
  let c = ref !charge in
  for _ = 1 to d.depth do
    c := Time.span_add !c (meta_read t)
  done;
  c := Time.span_add !c (meta_read t);
  charge := !c;
  Hashtbl.find_opt d.parent name

let create_in t d name =
  let charge = ref Time.span_zero in
  match resolve_in t d name ~charge with
  | Some _ -> Error Fs_error.Eexist
  | None ->
    Hashtbl.replace d.parent name (File { size = 0; map = Blockmap.create () });
    t.files <- t.files + 1;
    Ok (Time.span_add !charge (meta_write t))

let exists_in t d name =
  (* Like [exists], the walk's device charges land but the span is the
     caller's to discard. *)
  let charge = ref Time.span_zero in
  match resolve_in t d name ~charge with Some _ -> true | None -> false

let write_in t d name ~offset ~bytes =
  if offset < 0 || bytes < 0 then Error Fs_error.Einval
  else begin
    Sim.Probe.incr p_writes;
    let charge = ref Time.span_zero in
    match resolve_in t d name ~charge with
    | None -> Error Fs_error.Enoent
    | Some (Dir _) -> Error Fs_error.Eisdir
    | Some (File f) -> write_body t f ~offset ~bytes ~charge
  end

let read_in t d name ~offset ~bytes =
  if offset < 0 || bytes < 0 then Error Fs_error.Einval
  else begin
    Sim.Probe.incr p_reads;
    let charge = ref Time.span_zero in
    match resolve_in t d name ~charge with
    | None -> Error Fs_error.Enoent
    | Some (Dir _) -> Error Fs_error.Eisdir
    | Some (File f) -> read_body t f ~offset ~bytes ~charge
  end

let truncate_in t d name ~size =
  if size < 0 then Error Fs_error.Einval
  else begin
    let charge = ref Time.span_zero in
    match resolve_in t d name ~charge with
    | None -> Error Fs_error.Enoent
    | Some (Dir _) -> Error Fs_error.Eisdir
    | Some (File f) -> truncate_body t f ~size ~charge
  end

let unlink_in t d name =
  let charge = ref Time.span_zero in
  match resolve_in t d name ~charge with
  | None -> Error Fs_error.Enoent
  | Some (Dir _) -> Error Fs_error.Eisdir
  | Some (File f) ->
    Blockmap.iter_live (Storage.Store.free_block t.store) f.map;
    Hashtbl.remove d.parent name;
    t.files <- t.files - 1;
    Ok (Time.span_add !charge (meta_write t))

let enumerate t =
  let acc = ref [] in
  let rec walk prefix node =
    match node with
    | File f ->
      let blocks = ref [] in
      Blockmap.iter_live (fun b -> blocks := b :: !blocks) f.map;
      acc := (prefix, f.size, List.rev !blocks) :: !acc
    | Dir table ->
      Hashtbl.iter (fun name child -> walk (prefix ^ "/" ^ name) child) table
  in
  Hashtbl.iter (fun name child -> walk ("/" ^ name) child) t.root;
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !acc

let adopt t path ~size ~blocks =
  List.iter
    (fun b ->
      if not (Storage.Store.block_exists t.store b) then
        invalid_arg "Memfs.adopt: unknown block")
    blocks;
  let* _span = create t path in
  let charge = ref Time.span_zero in
  let* f = lookup_file t path ~charge in
  List.iteri (fun i b -> Blockmap.set f.map i b) blocks;
  f.size <- size;
  Ok ()

(* Slot-indexed variants: a crash can lose arbitrary blocks out of the
   middle of a file, and rebuilding the namespace through the dense
   [enumerate]/[adopt] pair would silently shift every survivor into the
   wrong offset.  These keep each block pinned to its slot. *)

let enumerate_sparse t =
  let acc = ref [] in
  let rec walk prefix node =
    match node with
    | File f ->
      let blocks = ref [] in
      for i = Blockmap.length f.map - 1 downto 0 do
        let b = Blockmap.find f.map i in
        if b <> Blockmap.no_block then blocks := (i, b) :: !blocks
      done;
      acc := (prefix, f.size, !blocks) :: !acc
    | Dir table ->
      Hashtbl.iter (fun name child -> walk (prefix ^ "/" ^ name) child) table
  in
  Hashtbl.iter (fun name child -> walk ("/" ^ name) child) t.root;
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !acc

let adopt_sparse t path ~size ~blocks =
  List.iter
    (fun (_, b) ->
      if not (Storage.Store.block_exists t.store b) then
        invalid_arg "Memfs.adopt_sparse: unknown block")
    blocks;
  let* _span = create t path in
  let charge = ref Time.span_zero in
  let* f = lookup_file t path ~charge in
  List.iter (fun (i, b) -> Blockmap.set f.map i b) blocks;
  f.size <- size;
  Ok ()

let rec node_metadata_bytes = function
  | File f -> 64 + (8 * Blockmap.length f.map)
  | Dir table -> Hashtbl.fold (fun _ n acc -> acc + 64 + node_metadata_bytes n) table 64

let metadata_bytes t = node_metadata_bytes (Dir t.root)

let file_blocks t path =
  let charge = ref Time.span_zero in
  let* f = lookup_file t path ~charge in
  let acc = ref [] in
  Blockmap.iter_live (fun b -> acc := b :: !acc) f.map;
  Ok (List.rev !acc)

let check t =
  (* Collect every block reachable from the namespace, rejecting double
     references. *)
  let seen = Hashtbl.create 1024 in
  let duplicate = ref None in
  let rec walk path = function
    | File f ->
      Blockmap.iter_live
        (fun b ->
          if Hashtbl.mem seen b then duplicate := Some (path, b)
          else Hashtbl.replace seen b ())
        f.map
    | Dir table -> Hashtbl.iter (fun name node -> walk (path ^ "/" ^ name) node) table
  in
  walk "" (Dir t.root);
  match !duplicate with
  | Some (path, b) -> Error (Printf.sprintf "block %d referenced twice (at %s)" b path)
  | None ->
    let stats = Storage.Store.stats t.store in
    let managed =
      stats.Storage.Manager.live_blocks + stats.Storage.Manager.dirty_blocks
    in
    if managed <> Hashtbl.length seen then
      Error
        (Printf.sprintf "manager holds %d blocks but the namespace reaches %d" managed
           (Hashtbl.length seen))
    else begin
      (* Every reachable block must have a home: buffered or in flash. *)
      let homeless =
        Hashtbl.fold
          (fun b () acc ->
            match Storage.Store.segment_of_block t.store b with
            | Some _ -> acc
            | None -> if Storage.Store.block_is_dirty t.store b then acc else b :: acc)
          seen []
      in
      match homeless with
      | [] -> Ok ()
      | b :: _ -> Error (Printf.sprintf "block %d has no flash home and is not dirty" b)
    end
