open Sim

type config = {
  fs_block_bytes : int;
  frag_per_block : int;
  groups : int;
  ninodes : int;
  cache_blocks : int;
  sync_metadata : bool;
  update_interval : Time.span;
}

let default_config =
  {
    fs_block_bytes = 4096;
    frag_per_block = 4;  (* 1KB fragments, as in 4.2BSD's 4096/1024 *)
    groups = 8;
    ninodes = 8192;
    cache_blocks = 64;  (* 256 KB of cache *)
    sync_metadata = true;
    update_interval = Time.span_s 30.0;
  }

type inode = {
  mutable kind : [ `File | `Dir ];
  mutable size : int;
  direct : int array;  (* fs-block addresses; -1 = hole *)
  mutable single : int;  (* address of the single-indirect block; -1 = none *)
  mutable double : int;
  mutable tail_frags : int;
      (* Fragments backing the file's final partial block (0 = the tail,
         if any, occupies a whole block).  The fragment-carrying block's
         address sits in the ordinary block map at index [size / bs]. *)
}

type t = {
  cfg : config;
  engine : Engine.t;
  disk : Device.Disk.t;
  dram : Device.Dram.t;
  cache : Buffer_cache.t;
  ptrs : int;
  nblocks : int;  (* total fs blocks on the disk *)
  data_start : int;  (* first data-region block *)
  itable_start : int;
  free : bool array;  (* data-region occupancy, indexed from data_start *)
  mutable free_count : int;
  group_hint : int array;  (* next-fit hint per allocation group *)
  inodes : inode option array;
  mutable ino_hint : int;
  indirects : (int, int array) Hashtbl.t;  (* block address -> pointers *)
  dir_entries : (int, (string, int) Hashtbl.t) Hashtbl.t;
  dir_blocks : (int, int list) Hashtbl.t;  (* ino -> data blocks, newest first *)
  frag_free : (int, int) Hashtbl.t;
      (* Fragmented blocks: address -> fragments still free.  Blocks not in
         this table are either whole-block allocations or free. *)
}

let dir_entries_per_block = 64
let root_ino = 0

let sectors_per_block cfg = cfg.fs_block_bytes / 512

let name _ = "ffs"
let config t = t.cfg
let disk t = t.disk
let cache t = t.cache
let free_blocks t = t.free_count
let data_blocks t = Array.length t.free

let used_bytes t =
  let whole = (Array.length t.free - t.free_count) * t.cfg.fs_block_bytes in
  let frag_slack =
    Hashtbl.fold (fun _ free acc -> acc + free) t.frag_free 0
    * (t.cfg.fs_block_bytes / t.cfg.frag_per_block)
  in
  whole - frag_slack

(* --- Raw block access through the buffer cache --------------------------- *)

let disk_io t ~cursor ~addr ~kind =
  let lba = addr * sectors_per_block t.cfg in
  let op =
    Device.Disk.access t.disk ~now:!cursor ~lba ~bytes:t.cfg.fs_block_bytes ~kind
  in
  cursor := op.Device.Disk.finish

let dram_span ~cursor span = cursor := Time.add !cursor span

let write_back_victims t ~cursor victims =
  List.iter (fun addr -> disk_io t ~cursor ~addr ~kind:`Write) victims

type access_kind = Read | Write_delayed | Write_sync | Write_fresh
(* [Write_fresh]: a full overwrite of a newly allocated block — no read
   needed, dirty in cache. *)

let p_reads = Probe.counter "fs.ffs.block_reads"
let p_writes = Probe.counter "fs.ffs.block_writes"

(* Every path is one logical cache access, so each goes through
   [find_or_insert]: exactly one hit or miss is counted per call.  The
   write paths used to reach the cache through bare [insert], which counts
   nothing — so write hits and misses were invisible to the hit-ratio
   counters E3 reports. *)
let access t ~cursor ~addr kind =
  (match kind with Read -> Probe.incr p_reads | _ -> Probe.incr p_writes);
  match kind with
  | Read -> begin
    dram_span ~cursor (Device.Dram.read t.dram ~bytes:t.cfg.fs_block_bytes);
    match Buffer_cache.find_or_insert t.cache ~key:addr ~dirty:false with
    | Buffer_cache.Hit, _ -> ()
    | Buffer_cache.Miss, victims ->
      disk_io t ~cursor ~addr ~kind:`Read;
      write_back_victims t ~cursor victims
  end
  | Write_delayed | Write_fresh ->
    dram_span ~cursor (Device.Dram.write t.dram ~bytes:t.cfg.fs_block_bytes);
    let _, victims = Buffer_cache.find_or_insert t.cache ~key:addr ~dirty:true in
    write_back_victims t ~cursor victims
  | Write_sync ->
    dram_span ~cursor (Device.Dram.write t.dram ~bytes:t.cfg.fs_block_bytes);
    let _, victims = Buffer_cache.find_or_insert t.cache ~key:addr ~dirty:false in
    disk_io t ~cursor ~addr ~kind:`Write;
    write_back_victims t ~cursor victims

let meta_write_kind t = if t.cfg.sync_metadata then Write_sync else Write_delayed

let reset_counters t = Buffer_cache.reset_counters t.cache

(* --- Layout --------------------------------------------------------------- *)

let bits_per_block cfg = cfg.fs_block_bytes * 8
let inodes_per_block cfg = cfg.fs_block_bytes / 128

let bitmap_block_of_data t idx = 1 + (idx / bits_per_block t.cfg)
let itable_block_of_ino t ino = t.itable_start + (ino / inodes_per_block t.cfg)

(* --- Allocation ------------------------------------------------------------ *)

let group_of_data_idx t idx = idx * t.cfg.groups / data_blocks t
let group_of_ino t ino = ino * t.cfg.groups / t.cfg.ninodes

(* First-fit from the preferred group's hint, wrapping around the whole
   data region; returns the fs-block address. *)
let alloc_block t ~cursor ~group =
  if t.free_count = 0 then None
  else begin
    let n = data_blocks t in
    let start = t.group_hint.(group) in
    let rec scan tried i =
      if tried >= n then None
      else if t.free.(i) then Some i
      else scan (tried + 1) ((i + 1) mod n)
    in
    match scan 0 start with
    | None -> None
    | Some idx ->
      t.free.(idx) <- false;
      t.free_count <- t.free_count - 1;
      t.group_hint.(group) <- (idx + 1) mod n;
      (* The allocator consulted and updated the bitmap block. *)
      access t ~cursor ~addr:(bitmap_block_of_data t idx) Write_delayed;
      Some (t.data_start + idx)
  end

let free_data_block t ~cursor addr =
  let idx = addr - t.data_start in
  if idx < 0 || idx >= data_blocks t then invalid_arg "Ffs.free_data_block";
  if not t.free.(idx) then begin
    t.free.(idx) <- true;
    t.free_count <- t.free_count + 1;
    let g = group_of_data_idx t idx in
    if idx < t.group_hint.(g) then t.group_hint.(g) <- idx;
    Buffer_cache.forget t.cache ~key:addr;
    Hashtbl.remove t.indirects addr;
    access t ~cursor ~addr:(bitmap_block_of_data t idx) Write_delayed
  end

(* --- Fragments ---------------------------------------------------------------- *)

let frag_bytes t = t.cfg.fs_block_bytes / t.cfg.frag_per_block

let frags_needed t bytes = Units.ceil_div bytes (frag_bytes t)

(* Allocate [n] fragments, sharing a partially-filled fragment block when
   one has room, else breaking a fresh block into fragments. *)
let alloc_frags t ~cursor ~group n =
  if n <= 0 || n > t.cfg.frag_per_block then invalid_arg "Ffs.alloc_frags";
  let reuse =
    Hashtbl.fold
      (fun addr free acc ->
        match acc with
        | Some _ -> acc
        | None -> if free >= n then Some addr else None)
      t.frag_free None
  in
  match reuse with
  | Some addr ->
    Hashtbl.replace t.frag_free addr (Hashtbl.find t.frag_free addr - n);
    (* The fragment map lives with the allocation bitmap. *)
    access t ~cursor ~addr:(bitmap_block_of_data t (addr - t.data_start)) Write_delayed;
    Some addr
  | None -> begin
    match alloc_block t ~cursor ~group with
    | None -> None
    | Some addr ->
      Hashtbl.replace t.frag_free addr (t.cfg.frag_per_block - n);
      Some addr
  end

let free_frags t ~cursor addr n =
  let free = Option.value (Hashtbl.find_opt t.frag_free addr) ~default:0 in
  let free = free + n in
  if free > t.cfg.frag_per_block then invalid_arg "Ffs.free_frags: over-free";
  if free = t.cfg.frag_per_block then begin
    Hashtbl.remove t.frag_free addr;
    free_data_block t ~cursor addr
  end
  else begin
    Hashtbl.replace t.frag_free addr free;
    access t ~cursor ~addr:(bitmap_block_of_data t (addr - t.data_start)) Write_delayed
  end

let alloc_ino t ~cursor =
  let n = t.cfg.ninodes in
  let rec scan tried i =
    if tried >= n then None
    else if t.inodes.(i) = None then Some i
    else scan (tried + 1) ((i + 1) mod n)
  in
  match scan 0 t.ino_hint with
  | None -> None
  | Some ino ->
    t.ino_hint <- (ino + 1) mod n;
    access t ~cursor ~addr:(itable_block_of_ino t ino) Read;
    Some ino

let touch_inode t ~cursor ~ino kind = access t ~cursor ~addr:(itable_block_of_ino t ino) kind

let get_inode t ino =
  match t.inodes.(ino) with
  | Some inode -> inode
  | None -> invalid_arg (Printf.sprintf "Ffs: dangling inode %d" ino)

(* --- Indirect-block plumbing ----------------------------------------------- *)

let indirect_entries t addr =
  match Hashtbl.find_opt t.indirects addr with
  | Some entries -> entries
  | None ->
    (* Freshly formatted indirect block: all holes. *)
    let entries = Array.make t.ptrs (-1) in
    Hashtbl.replace t.indirects addr entries;
    entries

let alloc_indirect t ~cursor ~group =
  match alloc_block t ~cursor ~group with
  | None -> None
  | Some addr ->
    ignore (indirect_entries t addr);
    access t ~cursor ~addr Write_fresh;
    Some addr

(* Resolve a file-block index to a data-block address, optionally
   allocating holes along the way.  Charges one cache access per indirect
   level touched. *)
let bmap t ~cursor ~inode ~group ~alloc i =
  let data_slot entries j =
    if entries.(j) = -1 && alloc then begin
      match alloc_block t ~cursor ~group with
      | None -> None
      | Some addr ->
        entries.(j) <- addr;
        Some addr
    end
    else if entries.(j) = -1 then None
    else Some entries.(j)
  in
  match Ffs_inode.classify ~ptrs:t.ptrs i with
  | None -> None
  | Some (Ffs_inode.Direct d) ->
    if inode.direct.(d) = -1 && alloc then begin
      match alloc_block t ~cursor ~group with
      | None -> None
      | Some addr ->
        inode.direct.(d) <- addr;
        Some addr
    end
    else if inode.direct.(d) = -1 then None
    else Some inode.direct.(d)
  | Some (Ffs_inode.Single j) -> begin
    (if inode.single = -1 && alloc then
       match alloc_indirect t ~cursor ~group with
       | Some addr -> inode.single <- addr
       | None -> ());
    if inode.single = -1 then None
    else begin
      access t ~cursor ~addr:inode.single Read;
      let entries = indirect_entries t inode.single in
      let r = data_slot entries j in
      if r <> None && alloc then access t ~cursor ~addr:inode.single Write_delayed;
      r
    end
  end
  | Some (Ffs_inode.Double (j, k)) -> begin
    (if inode.double = -1 && alloc then
       match alloc_indirect t ~cursor ~group with
       | Some addr -> inode.double <- addr
       | None -> ());
    if inode.double = -1 then None
    else begin
      access t ~cursor ~addr:inode.double Read;
      let level1 = indirect_entries t inode.double in
      (if level1.(j) = -1 && alloc then
         match alloc_indirect t ~cursor ~group with
         | Some addr ->
           level1.(j) <- addr;
           access t ~cursor ~addr:inode.double Write_delayed
         | None -> ());
      if level1.(j) = -1 then None
      else begin
        access t ~cursor ~addr:level1.(j) Read;
        let entries = indirect_entries t level1.(j) in
        let r = data_slot entries k in
        if r <> None && alloc then access t ~cursor ~addr:level1.(j) Write_delayed;
        r
      end
    end
  end

(* Point the block map's entry [i] at [addr] (-1 clears it), allocating
   indirect blocks on the way if needed; false on ENOSPC.  Used by the
   fragment plumbing, which places non-block-aligned allocations itself. *)
let bmap_assign t ~cursor ~inode ~group i addr =
  match Ffs_inode.classify ~ptrs:t.ptrs i with
  | None -> false
  | Some (Ffs_inode.Direct d) ->
    inode.direct.(d) <- addr;
    true
  | Some (Ffs_inode.Single j) -> begin
    (if inode.single = -1 && addr <> -1 then
       match alloc_indirect t ~cursor ~group with
       | Some a -> inode.single <- a
       | None -> ());
    if inode.single = -1 then addr = -1
    else begin
      (indirect_entries t inode.single).(j) <- addr;
      access t ~cursor ~addr:inode.single Write_delayed;
      true
    end
  end
  | Some (Ffs_inode.Double (j, k)) -> begin
    (if inode.double = -1 && addr <> -1 then
       match alloc_indirect t ~cursor ~group with
       | Some a -> inode.double <- a
       | None -> ());
    if inode.double = -1 then addr = -1
    else begin
      let level1 = indirect_entries t inode.double in
      (if level1.(j) = -1 && addr <> -1 then
         match alloc_indirect t ~cursor ~group with
         | Some a ->
           level1.(j) <- a;
           access t ~cursor ~addr:inode.double Write_delayed
         | None -> ());
      if level1.(j) = -1 then addr = -1
      else begin
        (indirect_entries t level1.(j)).(k) <- addr;
        access t ~cursor ~addr:level1.(j) Write_delayed;
        true
      end
    end
  end

(* Free an inode's fragment tail (if any) and clear its map slot. *)
let drop_tail t ~cursor inode =
  if inode.tail_frags > 0 then begin
    let i = inode.size / t.cfg.fs_block_bytes in
    (match bmap t ~cursor ~inode ~group:0 ~alloc:false i with
    | Some addr ->
      free_frags t ~cursor addr inode.tail_frags;
      ignore (bmap_assign t ~cursor ~inode ~group:0 i (-1))
    | None -> ());
    inode.tail_frags <- 0
  end

(* --- Directories ------------------------------------------------------------ *)

let dir_table t ino =
  match Hashtbl.find_opt t.dir_entries ino with
  | Some table -> table
  | None -> invalid_arg (Printf.sprintf "Ffs: inode %d is not a directory" ino)

let dir_block_list t ino =
  Option.value (Hashtbl.find_opt t.dir_blocks ino) ~default:[]

(* Scanning a directory reads its data blocks: all of them on a miss, half
   (rounded up) on a hit — the expected cost of a linear scan. *)
let charge_dir_scan t ~cursor ~ino ~found =
  let blocks = dir_block_list t ino in
  let k = List.length blocks in
  let to_read = if found then (k + 1) / 2 else k in
  List.iteri (fun i addr -> if i < to_read then access t ~cursor ~addr Read) blocks

let dir_lookup t ~cursor ~ino name =
  let table = dir_table t ino in
  let result = Hashtbl.find_opt table name in
  charge_dir_scan t ~cursor ~ino ~found:(result <> None);
  result

(* Add an entry, growing the directory by a block when it fills. *)
let dir_add t ~cursor ~dir_ino ~name ~child =
  let table = dir_table t dir_ino in
  Hashtbl.replace table name child;
  let needed = Units.ceil_div (Hashtbl.length table) dir_entries_per_block in
  let blocks = dir_block_list t dir_ino in
  let blocks =
    if List.length blocks < needed then begin
      match alloc_block t ~cursor ~group:(group_of_ino t dir_ino) with
      | Some addr ->
        access t ~cursor ~addr Write_fresh;
        addr :: blocks
      | None -> blocks (* full disk: the entry still lives in memory *)
    end
    else blocks
  in
  Hashtbl.replace t.dir_blocks dir_ino blocks;
  (match blocks with
  | addr :: _ -> access t ~cursor ~addr (meta_write_kind t)
  | [] -> ());
  let inode = get_inode t dir_ino in
  inode.size <- Hashtbl.length table * 64;
  touch_inode t ~cursor ~ino:dir_ino (meta_write_kind t)

let dir_remove t ~cursor ~dir_ino ~name =
  let table = dir_table t dir_ino in
  Hashtbl.remove table name;
  (match dir_block_list t dir_ino with
  | addr :: _ -> access t ~cursor ~addr (meta_write_kind t)
  | [] -> ());
  let inode = get_inode t dir_ino in
  inode.size <- Hashtbl.length table * 64;
  touch_inode t ~cursor ~ino:dir_ino (meta_write_kind t)

(* --- Path resolution --------------------------------------------------------- *)

let ( let* ) = Result.bind

(* Walk to the parent directory of the path's last component. *)
let resolve t ~cursor path =
  let* components = Path.parse path in
  match Path.split_last components with
  | None -> Ok `Root
  | Some (parent, leaf) ->
    let rec walk ino = function
      | [] -> Ok ino
      | comp :: rest -> begin
        touch_inode t ~cursor ~ino Read;
        match dir_lookup t ~cursor ~ino comp with
        | Some child when (get_inode t child).kind = `Dir -> walk child rest
        | Some _ -> Error Fs_error.Enotdir
        | None -> Error Fs_error.Enoent
      end
    in
    let* dir_ino = walk root_ino parent in
    touch_inode t ~cursor ~ino:dir_ino Read;
    Ok (`In (dir_ino, leaf, dir_lookup t ~cursor ~ino:dir_ino leaf))

let lookup_kind t ~cursor path ~want =
  match resolve t ~cursor path with
  | Error e -> Error e
  | Ok `Root -> if want = `Dir then Ok root_ino else Error Fs_error.Eisdir
  | Ok (`In (_, _, None)) -> Error Fs_error.Enoent
  | Ok (`In (_, _, Some ino)) ->
    let inode = get_inode t ino in
    if inode.kind = want then Ok ino
    else Error (if want = `File then Fs_error.Eisdir else Fs_error.Enotdir)

(* --- Construction ------------------------------------------------------------ *)

let rec flush_dirty t ~cursor =
  match Buffer_cache.take_dirty t.cache with
  | [] -> ()
  | dirty ->
    (* One elevator sweep: writing back in address order turns the batch's
       seeks into short forward hops. *)
    List.iter (fun addr -> disk_io t ~cursor ~addr ~kind:`Write)
      (List.sort compare dirty);
    (* take_dirty cleared the bits; nothing new can appear meanwhile. *)
    ignore (flush_dirty : t -> cursor:Time.t ref -> unit)

let create_fs ?(config = default_config) ~engine ~disk ~dram () =
  let cfg = config in
  if cfg.fs_block_bytes mod 512 <> 0 || cfg.fs_block_bytes < 512 then
    invalid_arg "Ffs.create_fs: block size must be a positive multiple of 512";
  if cfg.groups < 1 then invalid_arg "Ffs.create_fs: groups < 1";
  let nblocks = Device.Disk.capacity_bytes disk / cfg.fs_block_bytes in
  let nbitmap = Units.ceil_div nblocks (bits_per_block cfg) in
  let nitable = Units.ceil_div cfg.ninodes (inodes_per_block cfg) in
  let data_start = 1 + nbitmap + nitable in
  if data_start >= nblocks then invalid_arg "Ffs.create_fs: disk too small";
  let ndata = nblocks - data_start in
  let t =
    {
      cfg;
      engine;
      disk;
      dram;
      cache = Buffer_cache.create ~capacity_blocks:cfg.cache_blocks;
      ptrs = Ffs_inode.ptrs_per_block ~block_bytes:cfg.fs_block_bytes;
      nblocks;
      data_start;
      itable_start = 1 + nbitmap;
      free = Array.make ndata true;
      free_count = ndata;
      group_hint = Array.init cfg.groups (fun g -> g * ndata / cfg.groups);
      inodes = Array.make cfg.ninodes None;
      ino_hint = 1;
      indirects = Hashtbl.create 64;
      dir_entries = Hashtbl.create 64;
      dir_blocks = Hashtbl.create 64;
      frag_free = Hashtbl.create 64;
    }
  in
  (* Root directory. *)
  t.inodes.(root_ino) <-
    Some { kind = `Dir; size = 0; direct = Array.make Ffs_inode.direct_count (-1);
           single = -1; double = -1; tail_frags = 0 };
  Hashtbl.replace t.dir_entries root_ino (Hashtbl.create 16);
  (* The update daemon pushes delayed writes out periodically. *)
  Engine.schedule_every engine ~every:cfg.update_interval (fun engine ->
      let cursor = ref (Engine.now engine) in
      flush_dirty t ~cursor);
  t

(* --- VFS operations ------------------------------------------------------------ *)

let fresh_inode kind =
  { kind; size = 0; direct = Array.make Ffs_inode.direct_count (-1); single = -1;
    double = -1; tail_frags = 0 }

let make_node t path ~kind =
  let cursor = ref (Engine.now t.engine) in
  match resolve t ~cursor path with
  | Error e -> Error e
  | Ok `Root -> Error Fs_error.Eexist
  | Ok (`In (_, _, Some _)) -> Error Fs_error.Eexist
  | Ok (`In (dir_ino, leaf, None)) -> begin
    match alloc_ino t ~cursor with
    | None -> Error Fs_error.Enospc
    | Some ino ->
      t.inodes.(ino) <- Some (fresh_inode kind);
      if kind = `Dir then begin
        Hashtbl.replace t.dir_entries ino (Hashtbl.create 16);
        Hashtbl.replace t.dir_blocks ino []
      end;
      touch_inode t ~cursor ~ino (meta_write_kind t);
      dir_add t ~cursor ~dir_ino ~name:leaf ~child:ino;
      Ok (Time.diff !cursor (Engine.now t.engine))
  end

let create t path = make_node t path ~kind:`File
let mkdir t path = make_node t path ~kind:`Dir

let write t path ~offset ~bytes =
  if offset < 0 || bytes < 0 then Error Fs_error.Einval
  else begin
    let cursor = ref (Engine.now t.engine) in
    let* ino = lookup_kind t ~cursor path ~want:`File in
    let inode = get_inode t ino in
    let group = group_of_ino t ino in
    let bs = t.cfg.fs_block_bytes in
    let result = ref (Ok ()) in
    if bytes > 0 then begin
      let old_size = inode.size in
      let new_size = max old_size (offset + bytes) in
      let old_tail_idx = old_size / bs in
      let new_full = new_size / bs in
      let new_tail_bytes = new_size mod bs in
      let first = offset / bs and last = (offset + bytes - 1) / bs in
      let enospc () =
        result := Error Fs_error.Enospc;
        raise Exit
      in
      (try
         (* If the file grows past its fragment tail, upgrade the tail to a
            whole block first (the classic FFS fragment reallocation). *)
         if
           inode.tail_frags > 0
           && (old_tail_idx < new_full || (old_tail_idx = new_full && new_tail_bytes = 0))
         then begin
           (match bmap t ~cursor ~inode ~group ~alloc:false old_tail_idx with
           | Some frag_addr ->
             (* Copy the fragments out... *)
             access t ~cursor ~addr:frag_addr Read;
             free_frags t ~cursor frag_addr inode.tail_frags;
             ignore (bmap_assign t ~cursor ~inode ~group old_tail_idx (-1))
           | None -> ());
           inode.tail_frags <- 0;
           (* ...into a freshly allocated whole block. *)
           match bmap t ~cursor ~inode ~group ~alloc:true old_tail_idx with
           | Some addr -> access t ~cursor ~addr Write_fresh
           | None -> enospc ()
         end;
         (* Whole-block region of the write. *)
         let full_last = if new_tail_bytes > 0 then min last (new_full - 1) else last in
         for i = first to full_last do
           let lo = max offset (i * bs) and hi = min (offset + bytes) ((i + 1) * bs) in
           let partial = hi - lo < bs in
           let existed = bmap t ~cursor ~inode ~group ~alloc:false i <> None in
           match bmap t ~cursor ~inode ~group ~alloc:true i with
           | None -> enospc ()
           | Some addr ->
             (* A partial update of existing data must read the block in. *)
             if partial && existed then access t ~cursor ~addr Read;
             access t ~cursor ~addr (if existed then Write_delayed else Write_fresh)
         done;
         (* Fragment tail, when the write reaches it. *)
         if new_tail_bytes > 0 && last = new_full then begin
           let needed = frags_needed t new_tail_bytes in
           if inode.tail_frags > 0 && old_tail_idx = new_full then begin
             (* The tail already exists at this index. *)
             match bmap t ~cursor ~inode ~group ~alloc:false new_full with
             | None -> enospc () (* tail slot vanished: cannot happen *)
             | Some addr ->
               if needed > inode.tail_frags then begin
                 (* Grow into a larger fragment run. *)
                 access t ~cursor ~addr Read;
                 free_frags t ~cursor addr inode.tail_frags;
                 inode.tail_frags <- 0;
                 match alloc_frags t ~cursor ~group needed with
                 | Some naddr ->
                   if not (bmap_assign t ~cursor ~inode ~group new_full naddr) then
                     enospc ();
                   inode.tail_frags <- needed;
                   access t ~cursor ~addr:naddr Write_fresh
                 | None -> enospc ()
               end
               else begin
                 access t ~cursor ~addr Read;
                 access t ~cursor ~addr Write_delayed
               end
           end
           else begin
             match bmap t ~cursor ~inode ~group ~alloc:false new_full with
             | Some addr ->
               (* A whole block already covers the tail index: write it. *)
               access t ~cursor ~addr Read;
               access t ~cursor ~addr Write_delayed
             | None -> begin
               match alloc_frags t ~cursor ~group needed with
               | Some addr ->
                 if not (bmap_assign t ~cursor ~inode ~group new_full addr) then
                   enospc ();
                 inode.tail_frags <- needed;
                 access t ~cursor ~addr Write_fresh
               | None -> enospc ()
             end
           end
         end
       with Exit -> ());
      inode.size <- new_size;
      touch_inode t ~cursor ~ino Write_delayed
    end;
    match !result with
    | Ok () -> Ok (Time.diff !cursor (Engine.now t.engine))
    | Error e -> Error e
  end

let read t path ~offset ~bytes =
  if offset < 0 || bytes < 0 then Error Fs_error.Einval
  else begin
    let cursor = ref (Engine.now t.engine) in
    let* ino = lookup_kind t ~cursor path ~want:`File in
    let inode = get_inode t ino in
    let bytes = max 0 (min bytes (inode.size - offset)) in
    if bytes > 0 then begin
      let bs = t.cfg.fs_block_bytes in
      let first = offset / bs and last = (offset + bytes - 1) / bs in
      for i = first to last do
        match bmap t ~cursor ~inode ~group:0 ~alloc:false i with
        | Some addr -> access t ~cursor ~addr Read
        | None -> dram_span ~cursor (Device.Dram.read t.dram ~bytes:bs)
      done
    end;
    Ok (Time.diff !cursor (Engine.now t.engine))
  end

(* Release every data and indirect block of an inode past block index
   [keep] (0 = everything). *)
let release_blocks t ~cursor inode ~keep =
  let release_data addr = if addr <> -1 then free_data_block t ~cursor addr in
  (* Direct pointers. *)
  for d = 0 to Ffs_inode.direct_count - 1 do
    if d >= keep then begin
      release_data inode.direct.(d);
      inode.direct.(d) <- -1
    end
  done;
  let release_single addr ~base =
    if addr = -1 then false
    else begin
      access t ~cursor ~addr Read;
      let entries = indirect_entries t addr in
      let any_kept = ref false in
      for j = 0 to t.ptrs - 1 do
        if base + j >= keep then begin
          release_data entries.(j);
          entries.(j) <- -1
        end
        else if entries.(j) <> -1 then any_kept := true
      done;
      if not !any_kept then begin
        free_data_block t ~cursor addr;
        false
      end
      else true
    end
  in
  let base1 = Ffs_inode.direct_count in
  if not (release_single inode.single ~base:base1) then inode.single <- -1;
  if inode.double <> -1 then begin
    access t ~cursor ~addr:inode.double Read;
    let level1 = indirect_entries t inode.double in
    let any_kept = ref false in
    for j = 0 to t.ptrs - 1 do
      let base = base1 + t.ptrs + (j * t.ptrs) in
      if not (release_single level1.(j) ~base) then level1.(j) <- -1;
      if level1.(j) <> -1 then any_kept := true
    done;
    if not !any_kept then begin
      free_data_block t ~cursor inode.double;
      inode.double <- -1
    end
  end

let truncate t path ~size =
  if size < 0 then Error Fs_error.Einval
  else begin
    let cursor = ref (Engine.now t.engine) in
    let* ino = lookup_kind t ~cursor path ~want:`File in
    let inode = get_inode t ino in
    let bs = t.cfg.fs_block_bytes in
    if size < inode.size then begin
      let keep_full = size / bs and new_tail = size mod bs in
      (* Settle the fragment tail before the block walk frees whole
         blocks: fragment blocks are shared and must never go through
         free_data_block while other files use them. *)
      (if inode.tail_frags > 0 then begin
         let ti = inode.size / bs in
         if ti > keep_full || (ti = keep_full && new_tail = 0) then
           drop_tail t ~cursor inode
         else if ti = keep_full then begin
           let needed = frags_needed t new_tail in
           if needed < inode.tail_frags then begin
             match bmap t ~cursor ~inode ~group:0 ~alloc:false ti with
             | Some addr ->
               free_frags t ~cursor addr (inode.tail_frags - needed);
               inode.tail_frags <- needed
             | None -> ()
           end
         end
       end);
      release_blocks t ~cursor inode ~keep:(Units.ceil_div size bs)
    end;
    inode.size <- min inode.size size;
    touch_inode t ~cursor ~ino (meta_write_kind t);
    Ok (Time.diff !cursor (Engine.now t.engine))
  end

(* Is [dst] inside the subtree rooted at [src]? *)
let is_path_prefix ~src ~dst =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | x :: a', y :: b' when String.equal x y -> go a' b'
    | _ -> false
  in
  go src dst

let rename t src_path dst_path =
  let cursor = ref (Engine.now t.engine) in
  let* src = Path.parse src_path in
  let* dst = Path.parse dst_path in
  if is_path_prefix ~src ~dst then Error Fs_error.Einval
  else begin
    match resolve t ~cursor src_path with
    | Error e -> Error e
    | Ok `Root -> Error Fs_error.Einval
    | Ok (`In (_, _, None)) -> Error Fs_error.Enoent
    | Ok (`In (src_dir, src_name, Some ino)) -> begin
      match resolve t ~cursor dst_path with
      | Error e -> Error e
      | Ok `Root -> Error Fs_error.Eexist
      | Ok (`In (_, _, Some _)) -> Error Fs_error.Eexist
      | Ok (`In (dst_dir, dst_name, None)) ->
        dir_remove t ~cursor ~dir_ino:src_dir ~name:src_name;
        dir_add t ~cursor ~dir_ino:dst_dir ~name:dst_name ~child:ino;
        Ok (Time.diff !cursor (Engine.now t.engine))
    end
  end

let unlink t path =
  let cursor = ref (Engine.now t.engine) in
  match resolve t ~cursor path with
  | Error e -> Error e
  | Ok `Root -> Error Fs_error.Eisdir
  | Ok (`In (_, _, None)) -> Error Fs_error.Enoent
  | Ok (`In (dir_ino, leaf, Some ino)) ->
    let inode = get_inode t ino in
    if inode.kind = `Dir then Error Fs_error.Eisdir
    else begin
      drop_tail t ~cursor inode;
      release_blocks t ~cursor inode ~keep:0;
      t.inodes.(ino) <- None;
      touch_inode t ~cursor ~ino (meta_write_kind t);
      dir_remove t ~cursor ~dir_ino ~name:leaf;
      Ok (Time.diff !cursor (Engine.now t.engine))
    end

let rmdir t path =
  let cursor = ref (Engine.now t.engine) in
  match resolve t ~cursor path with
  | Error e -> Error e
  | Ok `Root -> Error Fs_error.Einval
  | Ok (`In (_, _, None)) -> Error Fs_error.Enoent
  | Ok (`In (dir_ino, leaf, Some ino)) ->
    let inode = get_inode t ino in
    if inode.kind <> `Dir then Error Fs_error.Enotdir
    else if Hashtbl.length (dir_table t ino) > 0 then Error Fs_error.Enotempty
    else begin
      List.iter (free_data_block t ~cursor) (dir_block_list t ino);
      Hashtbl.remove t.dir_entries ino;
      Hashtbl.remove t.dir_blocks ino;
      t.inodes.(ino) <- None;
      touch_inode t ~cursor ~ino (meta_write_kind t);
      dir_remove t ~cursor ~dir_ino ~name:leaf;
      Ok (Time.diff !cursor (Engine.now t.engine))
    end

let file_size t path =
  let cursor = ref (Engine.now t.engine) in
  let* ino = lookup_kind t ~cursor path ~want:`File in
  Ok (get_inode t ino).size

let exists t path =
  let cursor = ref (Engine.now t.engine) in
  match resolve t ~cursor path with
  | Ok `Root -> true
  | Ok (`In (_, _, Some _)) -> true
  | Ok (`In (_, _, None)) | Error _ -> false

let readdir t path =
  let cursor = ref (Engine.now t.engine) in
  let* ino = lookup_kind t ~cursor path ~want:`Dir in
  charge_dir_scan t ~cursor ~ino ~found:false;
  Ok
    (List.sort String.compare
       (Hashtbl.fold (fun k _ acc -> k :: acc) (dir_table t ino) []))

let sync t =
  let cursor = ref (Engine.now t.engine) in
  flush_dirty t ~cursor;
  Time.diff !cursor (Engine.now t.engine)

let preload t path ~size =
  if size < 0 then Error Fs_error.Einval
  else begin
    let* _ = create t path in
    let rec fill offset =
      if offset >= size then Ok ()
      else begin
        let n = min t.cfg.fs_block_bytes (size - offset) in
        let* _ = write t path ~offset ~bytes:n in
        fill (offset + n)
      end
    in
    fill 0
  end

(* --- Consistency check (fsck) ------------------------------------------------- *)

(* Pure map lookup for the checker: no cache charges, no allocation. *)
let bmap_peek t inode i =
  let entry v = if v = -1 then None else Some v in
  match Ffs_inode.classify ~ptrs:t.ptrs i with
  | None -> None
  | Some (Ffs_inode.Direct d) -> entry inode.direct.(d)
  | Some (Ffs_inode.Single j) ->
    if inode.single = -1 then None else entry (indirect_entries t inode.single).(j)
  | Some (Ffs_inode.Double (j, k)) ->
    if inode.double = -1 then None
    else begin
      let level1 = (indirect_entries t inode.double).(j) in
      if level1 = -1 then None else entry (indirect_entries t level1).(k)
    end

let check t =
  let seen = Hashtbl.create 1024 in
  (* Fragment-carrying blocks are shared between files: tally the
     fragments referenced per address instead of claiming exclusively. *)
  let frag_refs = Hashtbl.create 64 in
  let problem = ref None in
  let claim what addr =
    if addr <> -1 then begin
      if Hashtbl.mem seen addr || Hashtbl.mem frag_refs addr then
        problem := Some (Printf.sprintf "block %d referenced twice (%s)" addr what)
      else if addr < t.data_start || addr >= t.data_start + data_blocks t then
        problem := Some (Printf.sprintf "block %d outside the data region (%s)" addr what)
      else Hashtbl.replace seen addr ()
    end
  in
  let claim_frags what addr n =
    if Hashtbl.mem seen addr then
      problem := Some (Printf.sprintf "block %d used whole and as fragments (%s)" addr what)
    else
      Hashtbl.replace frag_refs addr
        (Option.value (Hashtbl.find_opt frag_refs addr) ~default:0 + n)
  in
  let claim_single ~skip what addr =
    if addr <> -1 then begin
      claim (what ^ " indirect") addr;
      let entries = indirect_entries t addr in
      Array.iteri (fun j a -> if not (skip j) then claim what a) entries
    end
  in
  Array.iteri
    (fun ino inode_opt ->
      match inode_opt with
      | None -> ()
      | Some inode ->
        let what = Printf.sprintf "inode %d" ino in
        (* The fragment tail (if any) is tallied, not claimed. *)
        let tail_idx =
          if inode.tail_frags > 0 then Some (inode.size / t.cfg.fs_block_bytes)
          else None
        in
        (match tail_idx with
        | Some i -> begin
          match bmap_peek t inode i with
          | Some addr -> claim_frags what addr inode.tail_frags
          | None ->
            problem := Some (Printf.sprintf "%s: fragment tail has no address" what)
        end
        | None -> ());
        let is_tail global_index =
          match tail_idx with Some i -> global_index = i | None -> false
        in
        Array.iteri (fun d a -> if not (is_tail d) then claim what a) inode.direct;
        let base1 = Ffs_inode.direct_count in
        claim_single ~skip:(fun j -> is_tail (base1 + j)) what inode.single;
        if inode.double <> -1 then begin
          claim (what ^ " double indirect") inode.double;
          Array.iteri
            (fun j a ->
              claim_single ~skip:(fun k -> is_tail (base1 + t.ptrs + (j * t.ptrs) + k))
                what a)
            (indirect_entries t inode.double)
        end)
    t.inodes;
  Hashtbl.iter
    (fun ino addrs ->
      List.iter (claim (Printf.sprintf "directory %d" ino)) addrs)
    t.dir_blocks;
  match !problem with
  | Some msg -> Error msg
  | None ->
    let used_in_bitmap =
      Array.fold_left (fun acc free -> if free then acc else acc + 1) 0 t.free
    in
    let reachable = Hashtbl.length seen + Hashtbl.length frag_refs in
    if used_in_bitmap <> reachable then
      Error
        (Printf.sprintf "bitmap allocates %d blocks but %d are reachable" used_in_bitmap
           reachable)
    else if t.free_count <> data_blocks t - used_in_bitmap then
      Error
        (Printf.sprintf "free_count %d inconsistent with bitmap (%d used of %d)"
           t.free_count used_in_bitmap (data_blocks t))
    else begin
      (* Fragment accounting: per shared block, referenced + free = total. *)
      let frag_problem =
        Hashtbl.fold
          (fun addr refs acc ->
            match acc with
            | Some _ -> acc
            | None ->
              let free = Option.value (Hashtbl.find_opt t.frag_free addr) ~default:0 in
              if refs + free <> t.cfg.frag_per_block then
                Some
                  (Printf.sprintf
                     "fragment block %d: %d referenced + %d free <> %d" addr refs free
                     t.cfg.frag_per_block)
              else None)
          frag_refs None
      in
      match frag_problem with
      | Some msg -> Error msg
      | None ->
        (* Every frag_free entry must belong to a reachable fragment block. *)
        let orphan =
          Hashtbl.fold
            (fun addr _ acc ->
              match acc with
              | Some _ -> acc
              | None -> if Hashtbl.mem frag_refs addr then None else Some addr)
            t.frag_free None
        in
        match orphan with
        | Some addr -> Error (Printf.sprintf "fragment block %d has no references" addr)
        | None ->
          let stray =
            Hashtbl.fold
              (fun addr () acc ->
                if t.free.(addr - t.data_start) then addr :: acc else acc)
              seen []
          in
          (match stray with
          | [] -> Ok ()
          | addr :: _ ->
            Error (Printf.sprintf "block %d reachable but marked free" addr))
    end
