(** The memory-resident file system (Section 3.1).

    All metadata — directories, inodes, block maps — lives in battery-backed
    DRAM and is reached by ordinary memory accesses: no buffer cache, no
    clustering, no multi-level indirect blocks (a file's block map is a flat
    extent array).  File data lives wherever the physical storage manager
    put it: dirty and hot blocks in DRAM, long-lived data in flash, read in
    place.  Writes supersede flash copies copy-on-write style: the affected
    block's new contents go to the DRAM write buffer and reach flash only
    if they survive the writeback delay.

    Implements {!Vfs.S}. *)

type t

(** The flat per-file block map.  Stored unboxed — one int per slot, with a
    sentinel for holes — because every replayed data operation walks it.
    Exposed for white-box property tests; file-system clients never need
    it. *)
module Blockmap : sig
  type t

  val create : unit -> t

  val length : t -> int
  (** Slots in use (holes included): one past the highest index ever set. *)

  val no_block : int
  (** The hole sentinel returned by {!find}; never a valid handle. *)

  val find : t -> int -> int
  (** The handle at a slot, or {!no_block} for a hole or an index at or
      beyond {!length}.  Allocation-free. *)

  val get : t -> int -> Storage.Manager.block option
  (** Boxing variant of {!find}. *)

  val set : t -> int -> Storage.Manager.block -> unit
  (** Store a handle, growing the map as needed (intermediate slots become
      holes).  @raise Invalid_argument on a negative handle. *)

  val crop : t -> int -> Storage.Manager.block list
  (** [crop t n] shrinks to [n] slots and returns the dropped live handles
      in ascending slot order.  Negative [n] behaves as [0]. *)

  val iter_live : (Storage.Manager.block -> unit) -> t -> unit
end

val create_fs : manager:Storage.Manager.t -> unit -> t
(** A fresh, empty file system ("/" exists) over a single manager
    (equivalent to [create_fs_store ~store:(Single manager)]). *)

val create_fs_store : store:Storage.Store.t -> unit -> t
(** Mount over any block store — a single manager or a striped multi-card
    array; the fs is oblivious to which. *)

val store : t -> Storage.Store.t

val manager : t -> Storage.Manager.t
(** The single underlying manager.
    @raise Invalid_argument when mounted on a multi-card array. *)

val preload : t -> string -> size:int -> (unit, Fs_error.t) result
(** Install a file of [size] bytes directly into flash through the
    cold-data path — existing long-lived data present before the
    simulation starts (programs, archives).  Untimed setup. *)

val metadata_bytes : t -> int
(** Approximate DRAM occupied by metadata (inodes + directory entries) —
    the space the paper says is saved by not duplicating it in a cache. *)

val file_blocks : t -> string -> (Storage.Manager.block list, Fs_error.t) result
(** The storage-manager blocks backing a file, for experiments that need to
    reason about placement. *)

val enumerate : t -> (string * int * Storage.Manager.block list) list
(** Every regular file: (path, size, backing blocks), sorted by path.
    Used to checkpoint a namespace (removable cards) and by tools. *)

val adopt : t -> string -> size:int -> blocks:Storage.Manager.block list ->
  (unit, Fs_error.t) result
(** Create a file over blocks that already hold its data (namespace
    reconstruction after recovery).  The parent directory must exist.
    @raise Invalid_argument if any block is unknown to the manager. *)

val enumerate_sparse : t -> (string * int * (int * Storage.Manager.block) list) list
(** Like {!enumerate} but each block carries its slot index, so holes — and
    blocks a crash removed from the middle of a file — keep every survivor
    at its original offset. *)

val adopt_sparse :
  t -> string -> size:int -> blocks:(int * Storage.Manager.block) list ->
  (unit, Fs_error.t) result
(** Slot-indexed {!adopt}: each [(slot, block)] lands at exactly [slot].
    The crash path rebuilds damaged files through this so surviving blocks
    never shift position.
    @raise Invalid_argument if any block is unknown to the manager. *)

val check : t -> (unit, string) result
(** Consistency check (fsck): every block reachable from a file is alive
    in the storage manager exactly once, and the manager holds no blocks
    the namespace cannot reach — i.e. no leaks and no double use.  O(files
    + blocks); used by the test suite after random operation sequences. *)

(** {2 Pre-resolved routes}

    The compiled-replay fast path: a {!dirh} pins a directory table once,
    and the [_in] operations act on a leaf name under it — skipping path
    formatting, parsing, and per-component table lookups while charging
    exactly what the path-based walk charges (one metadata read per
    component, one for the leaf) and still resolving the leaf on every
    call, since files come and go mid-trace.  A route dies with its file
    system: rebuild after anything that replaces [t] (cold restart). *)

type dirh
(** A resolved directory under which leaves are addressed by name. *)

val route : t -> string -> (dirh, Fs_error.t) result
(** Resolve a directory path to a route.  Side-effect-free setup: charges
    nothing to the device meters, so routes can be (re)built mid-run. *)

val create_in : t -> dirh -> string -> (Vfs.span, Fs_error.t) result
val exists_in : t -> dirh -> string -> bool

val write_in :
  t -> dirh -> string -> offset:int -> bytes:int -> (Vfs.span, Fs_error.t) result

val read_in :
  t -> dirh -> string -> offset:int -> bytes:int -> (Vfs.span, Fs_error.t) result

val truncate_in : t -> dirh -> string -> size:int -> (Vfs.span, Fs_error.t) result
val unlink_in : t -> dirh -> string -> (Vfs.span, Fs_error.t) result

include Vfs.S with type t := t
