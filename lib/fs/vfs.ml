type span = Sim.Time.span

module type S = sig
  type t

  val name : t -> string
  val mkdir : t -> string -> (span, Fs_error.t) result
  val create : t -> string -> (span, Fs_error.t) result
  val write : t -> string -> offset:int -> bytes:int -> (span, Fs_error.t) result
  val read : t -> string -> offset:int -> bytes:int -> (span, Fs_error.t) result
  val truncate : t -> string -> size:int -> (span, Fs_error.t) result
  val rename : t -> string -> string -> (span, Fs_error.t) result
  val unlink : t -> string -> (span, Fs_error.t) result
  val rmdir : t -> string -> (span, Fs_error.t) result
  val file_size : t -> string -> (int, Fs_error.t) result
  val exists : t -> string -> bool
  val readdir : t -> string -> (string list, Fs_error.t) result
  val sync : t -> span
end

(* Replay calls this once per record; a [Printf] per call is measurable in
   the hot loop, so intern the formatted paths per id.  Ids are small and
   dense.  Domains may race on the cache: the array swap is atomic, entries
   are write-once immutable strings, and a lost update only costs a
   re-format — never a wrong path. *)
let path_cache = ref [||]

let path_of_file_id id =
  let cache = !path_cache in
  if id >= 0 && id < Array.length cache && String.length cache.(id) > 0 then
    cache.(id)
  else begin
    let path = "/data/f" ^ string_of_int id in
    if id >= 0 then begin
      if id >= Array.length cache then begin
        let bigger = Array.make (max (id + 1) ((2 * Array.length cache) + 64)) "" in
        Array.blit cache 0 bigger 0 (Array.length cache);
        path_cache := bigger
      end;
      !path_cache.(id) <- path
    end;
    path
  end
