(** The conventional disk-based file system — the baseline.

    A Berkeley-FFS-flavoured file system over the magnetic-disk model: a
    superblock, a free bitmap, an inode table, and data blocks grouped into
    cylinder-group-style allocation regions so related data clusters near
    its inode (short seeks).  An LRU buffer cache in DRAM absorbs re-reads;
    writes are delayed in the cache and pushed out by a periodic update
    daemon (and by eviction and [sync]); metadata updates are synchronous
    by default, as in classic Unix.

    Everything in this module is machinery the paper's solid-state
    organization deletes: experiment E3 measures exactly that deletion. *)

type config = {
  fs_block_bytes : int;  (** File-system block size (default 4096). *)
  frag_per_block : int;
      (** Fragments per block (default 4, i.e. 1 KB fragments as in
          4.2BSD): a file's final partial block occupies only the
          fragments it needs, sharing a fragmented block with other
          files' tails. *)
  groups : int;  (** Allocation groups (default 8). *)
  ninodes : int;
  cache_blocks : int;  (** Buffer cache capacity, in fs blocks. *)
  sync_metadata : bool;  (** Write inode/directory updates through. *)
  update_interval : Sim.Time.span;  (** Update-daemon period (30 s). *)
}

val default_config : config

type t

val create_fs :
  ?config:config -> engine:Sim.Engine.t -> disk:Device.Disk.t -> dram:Device.Dram.t ->
  unit -> t
(** Format the disk and start the update daemon.
    @raise Invalid_argument if the configuration does not fit the disk. *)

val config : t -> config
val disk : t -> Device.Disk.t
val free_blocks : t -> int
(** Unallocated data blocks. *)

val used_bytes : t -> int
(** Space actually consumed in the data region, counting only the
    occupied fragments of shared fragment blocks. *)

val data_blocks : t -> int
(** Total data blocks the disk holds. *)

val cache : t -> Buffer_cache.t

val reset_counters : t -> unit
(** Zero the buffer cache's hit/miss/writeback counters; part of
    [Machine.preload]'s start-clean contract (cache residency is kept — a
    warm cache is state, not accounting). *)

val preload : t -> string -> size:int -> (unit, Fs_error.t) result
(** Install a file before the experiment starts (untimed, but laid out
    exactly as a normal write would be). *)

val check : t -> (unit, string) result
(** Consistency check (fsck): every data and indirect block reachable from
    an inode or directory is allocated in the bitmap exactly once, and the
    bitmap allocates nothing unreachable; the free count matches.  Used by
    the test suite after random operation sequences. *)

include Vfs.S with type t := t
