(** Minimal JSON, for the machine-readable results the bench harness
    emits.

    The writer produces strictly RFC 8259-conformant documents: JSON has no
    representation for NaN or the infinities, so {!number} maps every
    non-finite float to [Null] instead of leaking a bare [inf] (invalid
    JSON) or a quoted ["inf"] (a type-inconsistent string where consumers
    expect a number).  The parser exists so the test suite can feed every
    emitted document back through a real grammar, not a regex. *)

type t =
  | Null
  | Bool of bool
  | Number of float  (** Must be finite; use {!number} to construct. *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val number : float -> t
(** [Number v] when [v] is finite, [Null] otherwise. *)

val int : int -> t

val to_string : t -> string
(** Serialize.  Numbers print with ["%.6g"] (integers without a point);
    strings are escaped per RFC 8259.
    @raise Invalid_argument on a non-finite [Number] (construct with
    {!number}). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document (surrounding whitespace allowed).
    Numbers come back as floats; object member order is preserved.  Errors
    carry a byte offset. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on a missing field or a non-object. *)
