(* Hierarchical timing wheel: the O(1) agenda behind Event_queue's [Wheel]
   kind.  See the interface for the contract; the shape of the structure:

   13 levels of 32 slots each.  A pending entry lives at the level indexed
   by the highest 5-bit group in which its instant differs from [cursor]
   (the time of the last extracted batch), in the slot given by those bits
   of the instant.  Because every pending instant is >= cursor and the
   cursor only advances to instants that are still pending, all entries in
   one slot agree on every bit above the slot's level — so slots within a
   level are ordered by index, and a level-0 slot holds exactly one
   timestamp.  Popping the minimum therefore extracts a whole
   same-timestamp batch at once, which is what Engine's group delivery
   consumes.

   Two operations mutate placement:
   - [pop_exn] advances the cursor to the minimum pending instant and
     cascades the one slot per level whose window contains it down to the
     levels below (each entry cascades at most [levels] times over its
     life, so adds and pops are O(1) amortized).
   - [add] appends to a slot and never touches the rest of the structure.

   [peek_exn] is deliberately non-destructive: replay drivers peek an
   instant beyond their window, walk away, and then schedule *earlier*
   events — advancing the cursor on peek would put those adds in the past.
   Peeks take the minimum over the lowest occupied slot of each level,
   each slot answering from a cached minimum entry ([min_e]) that pushes
   keep exact from the moment the slot first fills; only a cancellation
   landing on the cached entry forces a rescan of that one slot.  Without
   the cache, the lowest occupied slot of a high level — which can hold a
   large fraction of everything pending — would be rescanned on every
   batch extraction, turning pops quadratic. *)

type 'a entry = {
  at : Time.t;
  seq : int;
  payload : 'a;
  mutable cancelled : bool;
}

let bits = 5
let wheel_size = 32
let slot_mask = wheel_size - 1
let levels = 13 (* 5 * 13 = 65 bits: covers every non-negative OCaml int *)

(* Vacated array cells are reset to this shared dummy so popped entries —
   and the payload closures they hold — do not stay reachable from the
   wheel (the Event_queue heap had exactly that leak).  The dummy's payload
   is never read: every read goes through [len]/[head_len] bounds. *)
let shared_dummy : unit entry =
  { at = Time.zero; seq = min_int; payload = (); cancelled = true }

let dummy : 'a. unit -> 'a entry = fun () -> Obj.magic shared_dummy

(* [min_e] is the slot's live minimum by (at, seq), or the dummy when the
   slot is empty.  Pushes keep it exact; a cancellation is detected lazily
   (the cached entry's [cancelled] flag) and triggers a rescan. *)
type 'a slot = {
  mutable arr : 'a entry array;
  mutable len : int;
  mutable min_e : 'a entry;
}

type 'a t = {
  slots : 'a slot array; (* [levels * wheel_size], flattened level-major *)
  occ : int array; (* per-level bitmap of non-empty slots *)
  mutable summary : int; (* bitmap of levels with [occ <> 0] *)
  mutable cursor : int; (* ns of the last extracted batch; adds must be >= *)
  mutable head : 'a entry array; (* staged batch: one timestamp, seq order *)
  mutable head_len : int;
  mutable head_pos : int;
  mutable cached_min : 'a entry option; (* memoized peek *)
}

exception Empty

let create () =
  {
    slots =
      Array.init (levels * wheel_size) (fun _ ->
          { arr = [||]; len = 0; min_e = dummy () });
    occ = Array.make levels 0;
    summary = 0;
    cursor = 0;
    head = [||];
    head_len = 0;
    head_pos = 0;
    cached_min = None;
  }

(* Index of the lowest set bit (De Bruijn); [x] must be non-zero and fit
   32 bits, which covers both the slot bitmaps and the level summary. *)
let lsb_table =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let lsb_index x = lsb_table.((((x land -x) * 0x077CB531) land 0xFFFFFFFF) lsr 27)

let level_for t at =
  let rec go x k = if x land lnot slot_mask = 0 then k else go (x lsr bits) (k + 1) in
  go (at lxor t.cursor) 0

(* Is [e] smaller than [m] in delivery order (at, then seq)? *)
let entry_lt e m =
  Time.( < ) e.at m.at || (Time.equal e.at m.at && e.seq < m.seq)

let slot_push s e =
  let cap = Array.length s.arr in
  if s.len = cap then begin
    let narr = Array.make (if cap = 0 then 4 else 2 * cap) (dummy ()) in
    Array.blit s.arr 0 narr 0 s.len;
    s.arr <- narr
  end;
  s.arr.(s.len) <- e;
  s.len <- s.len + 1;
  if s.len = 1 || entry_lt e s.min_e then s.min_e <- e

let place t e =
  let at = Time.to_ns e.at in
  let lvl = level_for t at in
  let s = (at lsr (bits * lvl)) land slot_mask in
  slot_push t.slots.((lvl * wheel_size) + s) e;
  t.occ.(lvl) <- t.occ.(lvl) lor (1 lsl s);
  t.summary <- t.summary lor (1 lsl lvl)

let add t e =
  if Time.to_ns e.at < t.cursor then
    invalid_arg "Timing_wheel.add: instant before the wheel cursor";
  place t e;
  match t.cached_min with
  | Some m when Time.( <= ) m.at e.at -> ()
  | Some _ | None -> t.cached_min <- None

(* Swap-remove cancelled entries so peeks do not re-scan dead weight. *)
let prune_slot s =
  let i = ref 0 in
  while !i < s.len do
    if s.arr.(!i).cancelled then begin
      s.len <- s.len - 1;
      s.arr.(!i) <- s.arr.(s.len);
      s.arr.(s.len) <- dummy ()
    end
    else incr i
  done

(* Recompute a slot's cached minimum after its previous one was cancelled
   (pruning the dead weight while here). *)
let refresh_slot_min s =
  prune_slot s;
  if s.len > 0 then begin
    let m = ref s.arr.(0) in
    for i = 1 to s.len - 1 do
      let e = Array.unsafe_get s.arr i in
      if entry_lt e !m then m := e
    done;
    s.min_e <- !m
  end
  else s.min_e <- dummy ()

(* The live minimum, without moving the cursor: the candidates are the
   lowest occupied slot of every level (slots within a level are ordered;
   windows of different levels can interleave, so each level contributes
   one candidate).  Each candidate slot answers from [min_e] — O(1) unless
   a cancellation invalidated it. *)
let scan_min t =
  let best = ref None in
  let lvls = ref t.summary in
  while !lvls <> 0 do
    let lvl = lsb_index !lvls in
    lvls := !lvls land (!lvls - 1);
    let searching = ref true in
    while !searching && t.occ.(lvl) <> 0 do
      let s = lsb_index t.occ.(lvl) in
      let slot = t.slots.((lvl * wheel_size) + s) in
      if slot.min_e.cancelled then refresh_slot_min slot;
      if slot.len = 0 then t.occ.(lvl) <- t.occ.(lvl) land lnot (1 lsl s)
      else begin
        (match !best with
        | Some b when not (entry_lt slot.min_e b) -> ()
        | Some _ | None -> best := Some slot.min_e);
        searching := false
      end
    done;
    if t.occ.(lvl) = 0 then t.summary <- t.summary land lnot (1 lsl lvl)
  done;
  !best

let ensure_head_cap t n =
  if Array.length t.head < n then
    t.head <- Array.make (max 16 (max n (2 * Array.length t.head))) (dummy ())

(* Cascading can interleave seqs within a slot; restore FIFO. *)
let sort_head t =
  let unsorted = ref false in
  for i = 1 to t.head_len - 1 do
    if t.head.(i - 1).seq > t.head.(i).seq then unsorted := true
  done;
  if !unsorted then begin
    let sub = Array.sub t.head 0 t.head_len in
    Array.sort (fun a b -> compare a.seq b.seq) sub;
    Array.blit sub 0 t.head 0 t.head_len
  end

(* Advance the cursor to [at_ns] (the minimum pending instant) and stage
   every live entry with that timestamp into [head]. *)
let extract_batch t at_ns =
  t.cursor <- at_ns;
  for lvl = levels - 1 downto 1 do
    let s = (at_ns lsr (bits * lvl)) land slot_mask in
    if t.occ.(lvl) land (1 lsl s) <> 0 then begin
      let slot = t.slots.((lvl * wheel_size) + s) in
      (* Only cascade the slot whose window contains the new cursor; a
         same-indexed slot ahead of it shares no upper bits with [at_ns]. *)
      if slot.len > 0 && (Time.to_ns slot.arr.(0).at lxor at_ns) lsr (bits * lvl) = 0
      then begin
        let n = slot.len in
        slot.len <- 0;
        slot.min_e <- dummy ();
        t.occ.(lvl) <- t.occ.(lvl) land lnot (1 lsl s);
        for i = 0 to n - 1 do
          let e = slot.arr.(i) in
          slot.arr.(i) <- dummy ();
          if not e.cancelled then place t e
        done;
        if t.occ.(lvl) = 0 then t.summary <- t.summary land lnot (1 lsl lvl)
      end
    end
  done;
  let s0 = at_ns land slot_mask in
  let slot = t.slots.(s0) in
  ensure_head_cap t slot.len;
  t.head_len <- 0;
  t.head_pos <- 0;
  for i = 0 to slot.len - 1 do
    let e = slot.arr.(i) in
    slot.arr.(i) <- dummy ();
    if not e.cancelled then begin
      t.head.(t.head_len) <- e;
      t.head_len <- t.head_len + 1
    end
  done;
  slot.len <- 0;
  slot.min_e <- dummy ();
  t.occ.(0) <- t.occ.(0) land lnot (1 lsl s0);
  if t.occ.(0) = 0 then t.summary <- t.summary land lnot 1;
  sort_head t

(* Skip head entries cancelled since extraction. *)
let settle_head t =
  while
    t.head_pos < t.head_len
    &&
    let e = t.head.(t.head_pos) in
    e.cancelled
    && begin
         t.head.(t.head_pos) <- dummy ();
         t.head_pos <- t.head_pos + 1;
         true
       end
  do
    ()
  done

let rec pop_exn t =
  settle_head t;
  if t.head_pos < t.head_len then begin
    let e = t.head.(t.head_pos) in
    t.head.(t.head_pos) <- dummy ();
    t.head_pos <- t.head_pos + 1;
    e
  end
  else begin
    let min =
      match t.cached_min with
      | Some m when not m.cancelled -> Some m
      | Some _ | None -> scan_min t
    in
    match min with
    | None -> raise Empty
    | Some e ->
      t.cached_min <- None;
      extract_batch t (Time.to_ns e.at);
      pop_exn t
  end

let peek_exn t =
  settle_head t;
  if t.head_pos < t.head_len then t.head.(t.head_pos)
  else begin
    match t.cached_min with
    | Some m when not m.cancelled -> m
    | Some _ | None -> (
      match scan_min t with
      | Some e ->
        t.cached_min <- Some e;
        e
      | None -> raise Empty)
  end

let clear t =
  Array.iter
    (fun s ->
      s.arr <- [||];
      s.len <- 0;
      s.min_e <- dummy ())
    t.slots;
  Array.fill t.occ 0 levels 0;
  t.summary <- 0;
  t.cursor <- 0;
  t.head <- [||];
  t.head_len <- 0;
  t.head_pos <- 0;
  t.cached_min <- None
