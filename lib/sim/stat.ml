module Counter = struct
  type t = { mutable value : int }

  let create () = { value = 0 }
  let incr t = t.value <- t.value + 1
  let add t n = t.value <- t.value + n
  let value t = t.value
  let reset t = t.value <- 0
end

module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

  let observe t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.total <- t.total +. x

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = if t.count = 0 then None else Some t.min
  let max t = if t.count = 0 then None else Some t.max
  let total t = t.total

  let reset t =
    t.count <- 0;
    t.mean <- 0.0;
    t.m2 <- 0.0;
    t.min <- infinity;
    t.max <- neg_infinity;
    t.total <- 0.0

  let pp ppf t =
    if t.count = 0 then Fmt.string ppf "(empty)"
    else
      Fmt.pf ppf "n=%d mean=%.3g sd=%.3g min=%.3g max=%.3g" t.count (mean t)
        (stddev t) t.min t.max
end

module Quantiles = struct
  (* A deterministic compacting quantile sketch (KLL-shaped, but with no
     randomness): level [i] holds at most [k] values, each standing for 2^i
     observations.  When a level overflows it is sorted and every other
     value survives to the next level, the kept parity alternating per
     level so the systematic half-rank bias cancels across compactions
     instead of accumulating.  Memory is O(k log (n/k)) no matter how many
     observations stream through; with n <= k observations the sketch is
     exact.  Everything — observe, compact, merge — is a pure function of
     the observation order, so sketches folded in a fixed order are
     byte-identical at any job count (the fleet driver's requirement). *)

  type t = {
    k : int;
    mutable levels : float array array;  (* levels.(i): buffer, unsorted *)
    mutable sizes : int array;  (* fill of each level *)
    mutable flips : bool array;  (* next kept parity per level *)
    mutable count : int;  (* observations absorbed (= total weight) *)
  }

  let default_k = 256

  let create ?(k = default_k) () =
    if k < 2 then invalid_arg "Quantiles.create: k < 2";
    {
      k;
      levels = [| Array.make k 0.0 |];
      sizes = [| 0 |];
      flips = [| false |];
      count = 0;
    }

  let nlevels t = Array.length t.sizes

  let ensure_level t i =
    if i >= nlevels t then begin
      let n = nlevels t in
      let grow_to = i + 1 in
      let levels = Array.make grow_to [||] in
      let sizes = Array.make grow_to 0 in
      let flips = Array.make grow_to false in
      Array.blit t.levels 0 levels 0 n;
      Array.blit t.sizes 0 sizes 0 n;
      Array.blit t.flips 0 flips 0 n;
      for j = n to grow_to - 1 do
        levels.(j) <- Array.make t.k 0.0
      done;
      t.levels <- levels;
      t.sizes <- sizes;
      t.flips <- flips
    end

  (* Insert one value carrying weight 2^i at level [i], compacting first if
     the level is full.  Compaction sorts the level, promotes every other
     value of the largest even prefix to level i+1 (where each survivor's
     doubled weight keeps total weight exact), and leaves the odd leftover
     — the largest value — behind at this level. *)
  let rec push t i x =
    ensure_level t i;
    if t.sizes.(i) = t.k then compact t i;
    t.levels.(i).(t.sizes.(i)) <- x;
    t.sizes.(i) <- t.sizes.(i) + 1

  and compact t i =
    let buf = t.levels.(i) in
    let size = t.sizes.(i) in
    let slice = Array.sub buf 0 size in
    Array.sort Float.compare slice;
    let even = size - (size land 1) in
    let start = if t.flips.(i) then 1 else 0 in
    t.flips.(i) <- not t.flips.(i);
    t.sizes.(i) <- 0;
    if size > even then begin
      buf.(0) <- slice.(even);
      t.sizes.(i) <- 1
    end;
    let j = ref start in
    while !j < even do
      push t (i + 1) slice.(!j);
      j := !j + 2
    done

  let observe t x =
    push t 0 x;
    t.count <- t.count + 1

  let count t = t.count

  let space t =
    Array.fold_left ( + ) 0 t.sizes

  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Quantiles.quantile";
    if t.count = 0 then 0.0
    else begin
      let items = Array.make (space t) (0.0, 0) in
      let n = ref 0 in
      for i = 0 to nlevels t - 1 do
        let w = 1 lsl i in
        for j = 0 to t.sizes.(i) - 1 do
          items.(!n) <- (t.levels.(i).(j), w);
          incr n
        done
      done;
      Array.sort (fun (a, _) (b, _) -> Float.compare a b) items;
      (* Same nearest-rank convention as [Histogram.quantile]: the value
         whose cumulative weight first exceeds round (q * (W - 1)). *)
      let target = int_of_float (Float.round (q *. float_of_int (t.count - 1))) in
      let rec go i seen =
        if i >= Array.length items then fst items.(Array.length items - 1)
        else begin
          let v, w = items.(i) in
          let seen' = seen + w in
          if seen' > target then v else go (i + 1) seen'
        end
      in
      go 0 0
    end

  let merge a b =
    if a.k <> b.k then invalid_arg "Quantiles.merge: sketches of different k";
    let t = create ~k:a.k () in
    let absorb src =
      for i = 0 to nlevels src - 1 do
        for j = 0 to src.sizes.(i) - 1 do
          push t i src.levels.(i).(j)
        done
      done
    in
    absorb a;
    absorb b;
    t.count <- a.count + b.count;
    t

  let reset t =
    t.levels <- [| Array.make t.k 0.0 |];
    t.sizes <- [| 0 |];
    t.flips <- [| false |];
    t.count <- 0
end

module Histogram = struct
  (* Buckets are geometric with ratio 2: bucket 0 holds [0, 1), bucket i>0
     holds [2^(i-1), 2^i).  62 buckets cover the full positive int range. *)
  let nbuckets = 64

  type t = {
    counts : int array;
    mutable count : int;
    mutable sum : float;
  }

  let create () = { counts = Array.make nbuckets 0; count = 0; sum = 0.0 }

  let bucket_of x =
    if x < 1.0 then 0
    else begin
      let i = 1 + int_of_float (Float.log2 x) in
      Stdlib.min i (nbuckets - 1)
    end

  let bounds i =
    if i = 0 then (0.0, 1.0) else (Float.pow 2.0 (float_of_int (i - 1)), Float.pow 2.0 (float_of_int i))

  let observe t x =
    let x = if x < 0.0 then 0.0 else x in
    t.counts.(bucket_of x) <- t.counts.(bucket_of x) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. x

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile";
    if t.count = 0 then 0.0
    else begin
      let target = int_of_float (Float.round (q *. float_of_int (t.count - 1))) in
      let rec go i seen =
        if i >= nbuckets then fst (bounds (nbuckets - 1))
        else begin
          let seen' = seen + t.counts.(i) in
          if seen' > target then begin
            let lo, hi = bounds i in
            if i = 0 then hi /. 2.0 else sqrt (lo *. hi)
          end
          else go (i + 1) seen'
        end
      in
      go 0 0
    end

  let buckets t =
    let acc = ref [] in
    for i = nbuckets - 1 downto 0 do
      if t.counts.(i) > 0 then begin
        let lo, hi = bounds i in
        acc := (lo, hi, t.counts.(i)) :: !acc
      end
    done;
    !acc

  let merge a b =
    let t = create () in
    Array.blit a.counts 0 t.counts 0 nbuckets;
    for i = 0 to nbuckets - 1 do
      t.counts.(i) <- t.counts.(i) + b.counts.(i)
    done;
    t.count <- a.count + b.count;
    t.sum <- a.sum +. b.sum;
    t

  let reset t =
    Array.fill t.counts 0 nbuckets 0;
    t.count <- 0;
    t.sum <- 0.0
end
