module Counter = struct
  type t = { mutable value : int }

  let create () = { value = 0 }
  let incr t = t.value <- t.value + 1
  let add t n = t.value <- t.value + n
  let value t = t.value
  let reset t = t.value <- 0
end

module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

  let observe t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.total <- t.total +. x

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = if t.count = 0 then None else Some t.min
  let max t = if t.count = 0 then None else Some t.max
  let total t = t.total

  let reset t =
    t.count <- 0;
    t.mean <- 0.0;
    t.m2 <- 0.0;
    t.min <- infinity;
    t.max <- neg_infinity;
    t.total <- 0.0

  let pp ppf t =
    if t.count = 0 then Fmt.string ppf "(empty)"
    else
      Fmt.pf ppf "n=%d mean=%.3g sd=%.3g min=%.3g max=%.3g" t.count (mean t)
        (stddev t) t.min t.max
end

module Histogram = struct
  (* Buckets are geometric with ratio 2: bucket 0 holds [0, 1), bucket i>0
     holds [2^(i-1), 2^i).  62 buckets cover the full positive int range. *)
  let nbuckets = 64

  type t = {
    counts : int array;
    mutable count : int;
    mutable sum : float;
  }

  let create () = { counts = Array.make nbuckets 0; count = 0; sum = 0.0 }

  let bucket_of x =
    if x < 1.0 then 0
    else begin
      let i = 1 + int_of_float (Float.log2 x) in
      Stdlib.min i (nbuckets - 1)
    end

  let bounds i =
    if i = 0 then (0.0, 1.0) else (Float.pow 2.0 (float_of_int (i - 1)), Float.pow 2.0 (float_of_int i))

  let observe t x =
    let x = if x < 0.0 then 0.0 else x in
    t.counts.(bucket_of x) <- t.counts.(bucket_of x) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. x

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile";
    if t.count = 0 then 0.0
    else begin
      let target = int_of_float (Float.round (q *. float_of_int (t.count - 1))) in
      let rec go i seen =
        if i >= nbuckets then fst (bounds (nbuckets - 1))
        else begin
          let seen' = seen + t.counts.(i) in
          if seen' > target then begin
            let lo, hi = bounds i in
            if i = 0 then hi /. 2.0 else sqrt (lo *. hi)
          end
          else go (i + 1) seen'
        end
      in
      go 0 0
    end

  let buckets t =
    let acc = ref [] in
    for i = nbuckets - 1 downto 0 do
      if t.counts.(i) > 0 then begin
        let lo, hi = bounds i in
        acc := (lo, hi, t.counts.(i)) :: !acc
      end
    done;
    !acc

  let merge a b =
    let t = create () in
    Array.blit a.counts 0 t.counts 0 nbuckets;
    for i = 0 to nbuckets - 1 do
      t.counts.(i) <- t.counts.(i) + b.counts.(i)
    done;
    t.count <- a.count + b.count;
    t.sum <- a.sum +. b.sum;
    t

  let reset t =
    Array.fill t.counts 0 nbuckets 0;
    t.count <- 0;
    t.sum <- 0.0
end
