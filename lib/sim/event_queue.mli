(** A priority queue of timestamped events.

    Events with equal timestamps are delivered in insertion order (FIFO),
    which keeps simulations deterministic.  Events can be cancelled in O(1)
    (lazy deletion). *)

type 'a t

type handle
(** Identifies a scheduled event for cancellation. *)

val create : unit -> 'a t

val add : 'a t -> at:Time.t -> 'a -> handle
(** Schedule a payload at an instant. *)

val cancel : 'a t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest live event, or [None] if empty. *)

val peek_time : 'a t -> Time.t option
(** The timestamp of the earliest live event. *)

exception Empty

(** Allocation-free variants for hot loops: {!peek_time} and {!pop} box
    their results ([Some], a tuple) on every call, which the simulation
    engine pays once per event.  Pattern: check {!is_empty}, read
    {!peek_time_exn}, then take the payload with {!pop_exn}. *)

val pop_exn : 'a t -> 'a
(** Remove the earliest live event and return its payload.
    @raise Empty when the queue has no live events. *)

val peek_time_exn : 'a t -> Time.t
(** The timestamp of the earliest live event, unboxed.
    @raise Empty when the queue has no live events. *)

val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val is_empty : 'a t -> bool

val clear : 'a t -> unit
