(** A priority queue of timestamped events.

    Events with equal timestamps are delivered in insertion order (FIFO),
    which keeps simulations deterministic.  Events can be cancelled in O(1)
    (lazy deletion).

    Two interchangeable structures implement the queue, selected at
    creation: a binary min-heap (the reference: O(log n), no insertion
    constraints) and a hierarchical {!Timing_wheel} (O(1) for the
    near-FIFO instant distributions replay produces, but adds must not
    land before the last popped instant — the engine's scheduling rule
    already guarantees that).  [Checked] runs both over physically shared
    entries and fails loudly if they ever disagree on a delivery — the
    same differential pattern [Storage.Manager] uses for its index. *)

type 'a t

type handle
(** Identifies a scheduled event for cancellation. *)

type kind = Heap | Wheel | Checked

val kind_name : kind -> string

val create : ?kind:kind -> unit -> 'a t
(** A fresh queue; [kind] defaults to [Heap], which accepts adds at any
    instant.  Choose [Wheel] (or [Checked]) only for engine-shaped
    workloads where instants never precede the last delivery. *)

val kind : 'a t -> kind

val add : 'a t -> at:Time.t -> 'a -> handle
(** Schedule a payload at an instant.
    @raise Invalid_argument under [Wheel]/[Checked] if [at] precedes the
    instant of the last popped event. *)

val cancel : 'a t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest live event, or [None] if empty. *)

val peek_time : 'a t -> Time.t option
(** The timestamp of the earliest live event. *)

exception Empty

(** Allocation-free variants for hot loops: {!peek_time} and {!pop} box
    their results ([Some], a tuple) on every call, which the simulation
    engine pays once per event.  Pattern: check {!is_empty}, read
    {!peek_time_exn}, then take the payload with {!pop_exn}. *)

val pop_exn : 'a t -> 'a
(** Remove the earliest live event and return its payload.
    @raise Empty when the queue has no live events. *)

val peek_time_exn : 'a t -> Time.t
(** The timestamp of the earliest live event, unboxed.
    @raise Empty when the queue has no live events. *)

val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Drop every pending event (and the queue's references to their
    payloads), and reset the FIFO tie-break counter so a reused queue
    reproduces a fresh one's delivery order exactly. *)
