(** Statistics collection.

    Simulation components record scalar observations (latencies, sizes,
    counts) into these accumulators; experiment harnesses read them out as
    summaries.  All accumulators are O(1) or O(buckets) in space regardless of
    how many observations they absorb. *)

(** {1 Counters} *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** {1 Scalar summaries}

    Mean and variance by Welford's online algorithm, plus min/max. *)

module Summary : sig
  type t

  val create : unit -> t
  val observe : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; 0 with fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float option
  (** [None] when empty.  An empty summary has no extrema; returning the
      [infinity] sentinels here used to leak non-finite floats into JSON
      output, which RFC 8259 cannot represent. *)

  val max : t -> float option
  (** [None] when empty. *)

  val total : t -> float
  val reset : t -> unit
  val pp : Format.formatter -> t -> unit
end

(** {1 Streaming quantile sketches}

    A deterministic compacting sketch (KLL-shaped, no randomness) for
    quantiles over value ranges a power-of-two {!Histogram} resolves too
    coarsely — wear counts or lifetimes across a fleet of devices.  Space
    is O(k log (n/k)) in the observation count [n]; with [n <= k] the
    sketch is exact.  Observation and merge are pure functions of their
    input order, so sketches folded in a fixed order are byte-identical at
    any job count. *)

module Quantiles : sig
  type t

  val create : ?k:int -> unit -> t
  (** [k] (default 256) is the per-level buffer width: larger [k] is more
      accurate and more space.  Exact while the observation count stays
      within [k].
      @raise Invalid_argument if [k < 2]. *)

  val observe : t -> float -> unit
  val count : t -> int

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [\[0, 1\]]; 0 when empty.  Nearest-rank over
      the retained weighted values (the same convention as
      {!Histogram.quantile}); exact when fewer than [k] values have been
      observed, approximate with rank error O(log (n/k) / k) beyond.
      @raise Invalid_argument if [q] is outside [\[0, 1\]]. *)

  val merge : t -> t -> t
  (** A sketch summarizing the observations of both arguments.  Pure: the
      arguments are unchanged, and the result depends only on their
      retained state (in argument order).
      @raise Invalid_argument if the sketches were created with
      different [k]. *)

  val space : t -> int
  (** Values currently retained — the sketch's memory footprint, which
      stays O(k log (n/k)) regardless of [count] (under test). *)

  val reset : t -> unit
end

(** {1 Histograms}

    Power-of-two bucketed histograms over non-negative values, supporting
    approximate quantiles with bounded relative error. *)

module Histogram : sig
  type t

  val create : unit -> t
  val observe : t -> float -> unit
  (** Negative observations are clamped to zero. *)

  val count : t -> int
  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [\[0, 1\]]; 0 when empty.  The result is the
      geometric midpoint of the bucket containing the [q]-th observation.
      @raise Invalid_argument if [q] is outside [\[0, 1\]]. *)

  val mean : t -> float
  val buckets : t -> (float * float * int) list
  (** [(lo, hi, count)] for each non-empty bucket, ascending. *)

  val merge : t -> t -> t
  (** A histogram holding the observations of both arguments. *)

  val reset : t -> unit
end
