(** Deterministic pseudo-random number generation.

    Every stochastic component of the simulator draws from an explicit [Rng.t]
    so that experiments are reproducible from a seed and independent streams
    can be split off for independent subsystems (workload generation vs
    cleaner randomization, for example) without interference.

    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny,
    fast, passes BigCrush, and supports cheap stream splitting. *)

type t

val create : seed:int -> t
(** A fresh generator determined entirely by [seed]. *)

val split : t -> t
(** [split t] returns a new generator whose future output is independent of
    [t]'s, and advances [t].  Use one stream per subsystem. *)

val split_ix : t -> index:int -> t
(** [split_ix t ~index] is the stream the [(index+1)]-th consecutive
    {!split} of a copy of [t] would return, without advancing [t]: a pure
    function of [t]'s current state and [index].  Indexed work items in
    parallel sweeps ({!Pool}) derive their RNG this way so that item [i]'s
    randomness is independent of how many items ran, and on which domain.
    @raise Invalid_argument if [index < 0]. *)

val split_ix2 : t -> index:int -> stream:int -> t
(** [split_ix2 t ~index ~stream] ≡ [split_ix (split_ix t ~index)
    ~index:stream], in one call and without the intermediate generator: the
    [stream]-th member of work item [index]'s seed family.  Pure in [t]'s
    current state, [index], and [stream], so a million-device fleet can
    derive each device's generators (spec draw, workload draw, trace,
    faults) independently, with no stream collisions across
    (index × stream) pairs ({!Fleet} relies on this; the test suite checks
    it at N ≥ 2{^20} × 4).
    @raise Invalid_argument if [index < 0] or [stream < 0]. *)

val copy : t -> t
(** A generator that will produce the same future sequence as [t]. *)

val bits64 : t -> int64
(** The next raw 64-bit draw. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [\[lo, hi\]].
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
val bernoulli : t -> p:float -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** A uniformly random element.
    @raise Invalid_argument on an empty array. *)
