(* The observability registry.

   The fast path is the disabled one: every recording entry point loads one
   atomic flag and branches away, so instrumentation can sit on simulator
   hot paths permanently (the probe micro-benchmark in bench/ pins this).

   When enabled, each domain accumulates into its own DLS-held state — no
   locks, no sharing, no cross-domain interference — and registers that
   state once in a global list so [snapshot_all]/[reset_all] can merge or
   clear everything when the harness knows all workers are idle. *)

(* A handle interns its name into a process-wide dense id when it is
   created (module-load time in practice).  Recording through a handle
   resolves id -> per-domain cell by array index: the enabled path costs
   an array load and a tag check, never a string hash.  The intern table
   is only touched at handle creation and snapshot time, both cold. *)
type handle = { id : int; h_name : string }

type counter = handle
type gauge = handle
type summary = handle
type histogram = handle

let intern_mu = Mutex.create ()
let intern_ids : (string, int) Hashtbl.t = Hashtbl.create 64
let intern_names : string array ref = ref (Array.make 64 "")
let intern_count = ref 0

let handle name =
  Mutex.lock intern_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock intern_mu)
    (fun () ->
      match Hashtbl.find_opt intern_ids name with
      | Some id -> { id; h_name = name }
      | None ->
        let id = !intern_count in
        incr intern_count;
        if id >= Array.length !intern_names then begin
          let bigger = Array.make (2 * Array.length !intern_names) "" in
          Array.blit !intern_names 0 bigger 0 id;
          intern_names := bigger
        end;
        !intern_names.(id) <- name;
        Hashtbl.add intern_ids name id;
        { id; h_name = name })

(* The name for a dense id, for snapshots.  Taken under the intern mutex:
   ids below [intern_count] are fully published once the lock is held. *)
let name_of_id id =
  Mutex.lock intern_mu;
  let n = !intern_names.(id) in
  Mutex.unlock intern_mu;
  n

let counter = handle
let gauge = handle
let summary = handle
let histogram = handle

let metrics_on = Atomic.make false
let timeline_on = Atomic.make false
let metrics_enabled () = Atomic.get metrics_on
let set_metrics b = Atomic.set metrics_on b
let timeline_enabled () = Atomic.get timeline_on
let set_timeline b = Atomic.set timeline_on b

type ccell = { mutable c : int }
type gcell = { mutable g : float }

type scell = {
  mutable n : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

type cell =
  | Empty  (** Slot allocated but this domain never touched the metric. *)
  | Ccell of ccell
  | Gcell of gcell
  | Scell of scell
  | Hcell of Stat.Histogram.t

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts_ns : int;
  ev_dur_ns : int option;
  ev_tid : int;
  ev_args : (string * string) list;
}

(* Events are kept newest-first; [Timeline.events] reverses and sorts.  The
   cap bounds memory on pathological runs; overflow is counted, not silent. *)
let max_events = 2_000_000

type state = {
  mutable cells : cell array;  (** Indexed by handle id. *)
  mutable events : event list;
  mutable nevents : int;
  mutable dropped : int;
}

let registry : state list ref = ref []
let registry_mu = Mutex.create ()

let dls_key =
  Domain.DLS.new_key (fun () ->
      let st =
        { cells = Array.make 64 Empty; events = []; nevents = 0; dropped = 0 }
      in
      Mutex.lock registry_mu;
      registry := st :: !registry;
      Mutex.unlock registry_mu;
      st)

let state () = Domain.DLS.get dls_key

(* A name is expected to keep one kind for the whole process; a clash is an
   instrumentation bug and fails loudly rather than miscounting. *)
let kind_clash name =
  invalid_arg (Printf.sprintf "Probe: metric %S used with two kinds" name)

let[@inline never] grow_cells st id =
  let bigger = Array.make (Stdlib.max (2 * Array.length st.cells) (id + 1)) Empty in
  Array.blit st.cells 0 bigger 0 (Array.length st.cells);
  st.cells <- bigger

let slot st (h : handle) =
  if h.id >= Array.length st.cells then grow_cells st h.id;
  Array.unsafe_get st.cells h.id

let ccell st (h : counter) =
  match slot st h with
  | Ccell c -> c
  | Empty ->
    let c = { c = 0 } in
    st.cells.(h.id) <- Ccell c;
    c
  | _ -> kind_clash h.h_name

let gcell st (h : gauge) =
  match slot st h with
  | Gcell g -> g
  | Empty ->
    let g = { g = 0.0 } in
    st.cells.(h.id) <- Gcell g;
    g
  | _ -> kind_clash h.h_name

let scell st (h : summary) =
  match slot st h with
  | Scell s -> s
  | Empty ->
    let s = { n = 0; sum = 0.0; vmin = infinity; vmax = neg_infinity } in
    st.cells.(h.id) <- Scell s;
    s
  | _ -> kind_clash h.h_name

let hcell st (h : histogram) =
  match slot st h with
  | Hcell hist -> hist
  | Empty ->
    let hist = Stat.Histogram.create () in
    st.cells.(h.id) <- Hcell hist;
    hist
  | _ -> kind_clash h.h_name

let incr h =
  if Atomic.get metrics_on then begin
    let c = ccell (state ()) h in
    c.c <- c.c + 1
  end

let add h k =
  if Atomic.get metrics_on then begin
    let c = ccell (state ()) h in
    c.c <- c.c + k
  end

let set h v =
  if Atomic.get metrics_on then begin
    let g = gcell (state ()) h in
    g.g <- v
  end

let observe h v =
  if Atomic.get metrics_on then begin
    let s = scell (state ()) h in
    s.n <- s.n + 1;
    s.sum <- s.sum +. v;
    if v < s.vmin then s.vmin <- v;
    if v > s.vmax then s.vmax <- v
  end

let observe_hist h v =
  if Atomic.get metrics_on then
    Stat.Histogram.observe (hcell (state ()) h) v

let push_event st ev =
  if st.nevents >= max_events then st.dropped <- st.dropped + 1
  else begin
    st.events <- ev :: st.events;
    st.nevents <- st.nevents + 1
  end

let span ~name ~cat ?(tid = 0) ?(args = []) ~start ~finish () =
  if Atomic.get timeline_on then begin
    if Time.(finish < start) then
      invalid_arg "Probe.span: finish precedes start";
    push_event (state ())
      {
        ev_name = name;
        ev_cat = cat;
        ev_ts_ns = Time.to_ns start;
        ev_dur_ns = Some (Time.to_ns finish - Time.to_ns start);
        ev_tid = tid;
        ev_args = args;
      }
  end

let instant ~name ~cat ?(tid = 0) ?(args = []) ~at () =
  if Atomic.get timeline_on then
    push_event (state ())
      {
        ev_name = name;
        ev_cat = cat;
        ev_ts_ns = Time.to_ns at;
        ev_dur_ns = None;
        ev_tid = tid;
        ev_args = args;
      }

module Snapshot = struct
  type value =
    | Counter of int
    | Gauge of float
    | Summary of { n : int; sum : float; vmin : float; vmax : float }
    | Histogram of (float * float * int) list

  type t = (string * value) list

  let empty = []
  let find t name = List.assoc_opt name t

  let counter_value t name =
    match find t name with Some (Counter n) -> n | _ -> 0

  (* Both operands' bucket lists are ascending by [lo] (Histogram.buckets);
     a plain two-pointer merge keeps the result ascending and exact. *)
  let merge_buckets a b =
    let rec go a b =
      match (a, b) with
      | [], rest | rest, [] -> rest
      | ((alo, ahi, ac) as ha) :: ta, ((blo, _, bc) as hb) :: tb ->
        if alo = blo then (alo, ahi, ac + bc) :: go ta tb
        else if alo < blo then ha :: go ta (hb :: tb)
        else hb :: go (ha :: ta) tb
    in
    go a b

  let sub_buckets later earlier =
    let rec go a b =
      match (a, b) with
      | rest, [] -> rest
      | [], _ -> []
      | ((alo, ahi, ac) as ha) :: ta, (blo, _, bc) :: tb ->
        if alo = blo then
          let d = Stdlib.max 0 (ac - bc) in
          if d = 0 then go ta tb else (alo, ahi, d) :: go ta tb
        else if alo < blo then ha :: go ta b
        else go a tb
    in
    go later earlier

  let merge_value a b =
    match (a, b) with
    | Counter x, Counter y -> Counter (x + y)
    | Gauge _, Gauge y -> Gauge y
    | Summary a, Summary b ->
      Summary
        {
          n = a.n + b.n;
          sum = a.sum +. b.sum;
          vmin = Float.min a.vmin b.vmin;
          vmax = Float.max a.vmax b.vmax;
        }
    | Histogram a, Histogram b -> Histogram (merge_buckets a b)
    | _, y -> y

  let merge a b =
    let rec go a b =
      match (a, b) with
      | [], rest | rest, [] -> rest
      | ((ka, va) as ha) :: ta, ((kb, vb) as hb) :: tb ->
        let c = String.compare ka kb in
        if c = 0 then (ka, merge_value va vb) :: go ta tb
        else if c < 0 then ha :: go ta (hb :: tb)
        else hb :: go (ha :: ta) tb
    in
    go a b

  let diff_value later earlier =
    match (later, earlier) with
    | Counter x, Counter y -> Counter (Stdlib.max 0 (x - y))
    | Summary l, Summary e ->
      let n = Stdlib.max 0 (l.n - e.n) in
      Summary
        {
          n;
          sum = (if n = 0 then 0.0 else l.sum -. e.sum);
          vmin = l.vmin;
          vmax = l.vmax;
        }
    | Histogram l, Histogram e -> Histogram (sub_buckets l e)
    | v, _ -> v

  (* Names present only in [earlier] have vanished from the registry (a
     reset happened in between); nothing meaningful can be said about them,
     so the diff covers [later]'s names only. *)
  let diff ~later ~earlier =
    List.map
      (fun (name, v) ->
        match List.assoc_opt name earlier with
        | None -> (name, v)
        | Some e -> (name, diff_value v e))
      later

  let is_zero = function
    | Counter n -> n = 0
    | Gauge _ -> true
    | Summary { n; _ } -> n = 0
    | Histogram buckets -> List.for_all (fun (_, _, c) -> c = 0) buckets

  let to_json t =
    let open Json in
    let value_json = function
      | Counter n -> int n
      | Gauge g -> Obj [ ("gauge", number g) ]
      | Summary { n; sum; vmin; vmax } ->
        Obj
          [
            ("count", int n);
            ("sum", number sum);
            ("min", if n = 0 then Null else number vmin);
            ("max", if n = 0 then Null else number vmax);
            ("mean", if n = 0 then Null else number (sum /. float_of_int n));
          ]
      | Histogram buckets ->
        let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 buckets in
        Obj
          [
            ("count", int total);
            ( "buckets",
              List
                (List.map
                   (fun (lo, hi, c) ->
                     Obj
                       [
                         ("lo", number lo); ("hi", number hi); ("count", int c);
                       ])
                   buckets) );
          ]
    in
    Obj (List.map (fun (name, v) -> (name, value_json v)) t)
end

let snapshot_state st =
  let acc = ref [] in
  for id = Array.length st.cells - 1 downto 0 do
    match st.cells.(id) with
    | Empty -> ()
    | cell ->
      let v =
        match cell with
        | Empty -> assert false
        | Ccell { c } -> Snapshot.Counter c
        | Gcell { g } -> Snapshot.Gauge g
        | Scell { n; sum; vmin; vmax } -> Snapshot.Summary { n; sum; vmin; vmax }
        | Hcell h -> Snapshot.Histogram (Stat.Histogram.buckets h)
      in
      acc := (name_of_id id, v) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let snapshot () = snapshot_state (state ())

let reset_state st =
  Array.fill st.cells 0 (Array.length st.cells) Empty;
  st.events <- [];
  st.nevents <- 0;
  st.dropped <- 0

let reset () = reset_state (state ())

let with_registry f =
  Mutex.lock registry_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mu) (fun () ->
      f !registry)

let snapshot_all () =
  with_registry (fun states ->
      List.fold_left
        (fun acc st -> Snapshot.merge acc (snapshot_state st))
        Snapshot.empty states)

let reset_all () = with_registry (List.iter reset_state)

module Timeline = struct
  type nonrec event = event = {
    ev_name : string;
    ev_cat : string;
    ev_ts_ns : int;
    ev_dur_ns : int option;
    ev_tid : int;
    ev_args : (string * string) list;
  }

  let sort_events evs =
    List.stable_sort (fun a b -> compare a.ev_ts_ns b.ev_ts_ns) evs

  let events () = sort_events (List.rev (state ()).events)

  let events_all () =
    with_registry (fun states ->
        sort_events
          (List.concat_map (fun st -> List.rev st.events) states))

  let dropped () =
    with_registry
      (List.fold_left (fun acc st -> acc + st.dropped) 0)

  let to_chrome_json evs =
    let open Json in
    let ev_json e =
      let head =
        [
          ("name", String e.ev_name);
          ("cat", String e.ev_cat);
          ("ts", number (float_of_int e.ev_ts_ns /. 1e3));
          ("pid", int 1);
          ("tid", int e.ev_tid);
        ]
      in
      let phase =
        match e.ev_dur_ns with
        | Some d ->
          [ ("ph", String "X"); ("dur", number (float_of_int d /. 1e3)) ]
        | None -> [ ("ph", String "i"); ("s", String "g") ]
      in
      let args =
        match e.ev_args with
        | [] -> []
        | kvs -> [ ("args", Obj (List.map (fun (k, v) -> (k, String v)) kvs)) ]
      in
      Obj (head @ phase @ args)
    in
    Obj
      [
        ("traceEvents", List (List.map ev_json evs));
        ("displayTimeUnit", String "ms");
      ]
end
