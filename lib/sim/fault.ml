type kind =
  | Power_failure
  | Battery_swap
  | Battery_depletion
  | Card_eject of { card : int; surprise : bool }
  | Card_reinsert of { card : int }

let kind_name = function
  | Power_failure -> "power-failure"
  | Battery_swap -> "battery-swap"
  | Battery_depletion -> "battery-depletion"
  | Card_eject { card; surprise } ->
    Printf.sprintf "card-eject(%d%s)" card (if surprise then ",surprise" else "")
  | Card_reinsert { card } -> Printf.sprintf "card-reinsert(%d)" card

let pp_kind ppf k = Fmt.string ppf (kind_name k)

type event = { after : Time.span; kind : kind }
type schedule = event list

let schedule events =
  List.stable_sort (fun a b -> compare (Time.span_to_ns a.after) (Time.span_to_ns b.after)) events

let all_kinds = [ Power_failure; Battery_swap; Battery_depletion ]

let random ~rng ?(kinds = all_kinds) ~n ~over () =
  if n < 0 then invalid_arg "Fault.random: n < 0";
  if Time.span_to_ns over <= 0 then invalid_arg "Fault.random: empty window";
  if kinds = [] then invalid_arg "Fault.random: no kinds";
  let kinds = Array.of_list kinds in
  let events =
    List.init n (fun _ ->
        let after = Time.span_ns (1 + Rng.int rng (Time.span_to_ns over)) in
        { after; kind = Rng.choose rng kinds })
  in
  schedule events

let pp_event ppf e = Fmt.pf ppf "%a at +%a" pp_kind e.kind Time.pp_span e.after
