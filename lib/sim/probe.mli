(** Unified observability: a named-metric registry plus an optional event
    timeline.

    Simulation components register label-scoped metrics (counters, gauges,
    latency summaries, histograms — e.g. ["storage.manager.clean_ops"]) and
    record into them through handles.  Everything is disabled by default:
    each recording call is one atomic load and a branch, so instrumented hot
    paths cost nothing measurable until a harness opts in with
    {!set_metrics} / {!set_timeline}.

    {2 Domains}

    State is kept per domain ([Domain.DLS]), so {!Pool} workers record
    without locks and without perturbing each other.  {!snapshot} and
    {!reset} act on the calling domain only — a pool work item that resets,
    runs, and snapshots sees exactly its own activity, deterministically at
    any job count (items run sequentially within a domain).  {!snapshot_all}
    and {!reset_all} merge/clear every domain that ever recorded; call them
    only while no worker is mid-item (between {!Pool.run_map} calls).

    {2 Timeline}

    When enabled, {!span} and {!instant} record events (op apply, flash
    program/erase, cleaner pass, remount, fault) that
    {!Timeline.to_chrome_json} turns into Chrome [trace_event] JSON loadable
    in Perfetto or about:tracing.  The buffer is bounded; events past the
    cap are counted as dropped, never silently lost. *)

type counter
type gauge
type summary
type histogram

val counter : string -> counter
(** Handle to the counter named [s].  Handles are cheap names, safe to
    create at module-load time and share across domains; the backing cell
    is interned per domain on first use. *)

val gauge : string -> gauge
val summary : string -> summary
val histogram : string -> histogram

(** {1 Enabling} *)

val metrics_enabled : unit -> bool
val set_metrics : bool -> unit
val timeline_enabled : unit -> bool
val set_timeline : bool -> unit

(** {1 Recording} — no-ops while the corresponding switch is off. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : summary -> float -> unit
val observe_hist : histogram -> float -> unit

val span :
  name:string ->
  cat:string ->
  ?tid:int ->
  ?args:(string * string) list ->
  start:Time.t ->
  finish:Time.t ->
  unit ->
  unit
(** A complete ("X") event covering [start..finish].
    @raise Invalid_argument if [finish] precedes [start]. *)

val instant :
  name:string -> cat:string -> ?tid:int -> ?args:(string * string) list ->
  at:Time.t -> unit -> unit

(** {1 Snapshots} *)

module Snapshot : sig
  type value =
    | Counter of int
    | Gauge of float
    | Summary of { n : int; sum : float; vmin : float; vmax : float }
    | Histogram of (float * float * int) list
        (** [(lo, hi, count)] per non-empty bucket, ascending — the
            {!Stat.Histogram.buckets} shape. *)

  type t = (string * value) list
  (** Sorted by metric name; at most one entry per name. *)

  val empty : t
  val find : t -> string -> value option

  val counter_value : t -> string -> int
  (** 0 when absent or not a counter. *)

  val merge : t -> t -> t
  (** Pointwise combination: counters and histogram buckets add (exact,
      integer), summaries pool (n and sum add, extrema widen), gauges keep
      the right argument's value.  [merge] is commutative up to gauge
      choice and float addition; on counters and histograms it is exact and
      order-independent. *)

  val diff : later:t -> earlier:t -> t
  (** What happened between two snapshots of the same registry: counters
      and histogram buckets subtract (clamped at zero), summary [n]/[sum]
      subtract (extrema cannot be un-observed and keep [later]'s), gauges
      keep [later]'s value. *)

  val is_zero : value -> bool
  (** True for a zero counter, an empty summary or histogram, and any
      gauge (gauges describe state, not accumulation). *)

  val to_json : t -> Json.t
end

val snapshot : unit -> Snapshot.t
(** The calling domain's metrics. *)

val reset : unit -> unit
(** Clear the calling domain's metrics and timeline — the "start the
    measured window clean" primitive [Machine.preload] and
    [Manager.reset_traffic] route through. *)

val snapshot_all : unit -> Snapshot.t
(** {!Snapshot.merge} over every domain that ever recorded. *)

val reset_all : unit -> unit

(** {1 Timeline} *)

module Timeline : sig
  type event = {
    ev_name : string;
    ev_cat : string;
    ev_ts_ns : int;
    ev_dur_ns : int option;  (** [None] for an instant event. *)
    ev_tid : int;
    ev_args : (string * string) list;
  }

  val events : unit -> event list
  (** The calling domain's events, sorted by timestamp (stable). *)

  val events_all : unit -> event list
  val dropped : unit -> int
  (** Events discarded after the buffer cap, across all domains. *)

  val to_chrome_json : event list -> Json.t
  (** A Chrome [trace_event] document: [{"traceEvents": [...]}] with
      timestamps and durations in microseconds, complete events as
      [ph:"X"] and instants as [ph:"i"]. *)
end
