(** Discrete-event simulation engine.

    The engine owns the simulated clock and an agenda of callbacks.  Running
    the engine repeatedly pops the earliest event, advances the clock to its
    timestamp, and invokes its callback; callbacks may schedule further
    events.  Time never moves backwards. *)

type t

val create : ?queue:Event_queue.kind -> unit -> t
(** A fresh engine with the clock at {!Time.zero} and an empty agenda.
    [queue] picks the agenda structure (see {!Event_queue.kind}); when
    omitted it comes from the [SSMC_QUEUE] environment variable
    ([heap]/[wheel]/[checked]), defaulting to [Wheel]. *)

val now : t -> Time.t
(** The current simulated instant. *)

val queue_kind : t -> Event_queue.kind
(** The agenda structure this engine runs on. *)

val schedule : t -> at:Time.t -> (t -> unit) -> Event_queue.handle
(** Schedule a callback at an absolute instant.
    @raise Invalid_argument if [at] is in the past. *)

val schedule_after : t -> after:Time.span -> (t -> unit) -> Event_queue.handle
(** Schedule a callback relative to the current instant. *)

val schedule_every :
  t -> every:Time.span -> ?until:Time.t -> (t -> unit) -> unit
(** Schedule a callback periodically, first firing one period from now.
    [until] is inclusive: a tick landing exactly on it fires, later ticks
    are never enqueued (the agenda holds nothing past [until], so a
    drained run's clock stops at the last tick).
    @raise Invalid_argument if [every] is zero. *)

val cancel : t -> Event_queue.handle -> unit

val step : t -> bool
(** Execute every event at the earliest pending instant (one clock write
    per same-timestamp group, including events the callbacks add at that
    instant).  Returns [false] if the agenda was empty (and the clock did
    not move). *)

val run_until : t -> Time.t -> unit
(** Execute every event scheduled strictly before or at the given instant,
    then advance the clock to exactly that instant. *)

val run : t -> unit
(** Execute events until the agenda drains. *)

val advance_to : t -> Time.t -> unit
(** Move the clock forward without running events — used by sequential
    (trace-replay) drivers that interleave with the agenda by hand.  A no-op
    if the instant is in the past. *)

val pending : t -> int
(** Number of events on the agenda. *)
