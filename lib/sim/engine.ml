type t = {
  mutable clock : Time.t;
  agenda : callback Event_queue.t;
}

and callback = t -> unit

let create () = { clock = Time.zero; agenda = Event_queue.create () }
let now t = t.clock

let schedule t ~at f =
  if Time.( < ) at t.clock then invalid_arg "Engine.schedule: instant in the past";
  Event_queue.add t.agenda ~at f

let schedule_after t ~after f = schedule t ~at:(Time.add t.clock after) f

let schedule_every t ~every ?until f =
  if Time.span_to_ns every = 0 then invalid_arg "Engine.schedule_every: zero period";
  let rec fire engine =
    let stop =
      match until with None -> false | Some limit -> Time.( < ) limit engine.clock
    in
    if not stop then begin
      f engine;
      ignore (schedule_after engine ~after:every fire)
    end
  in
  ignore (schedule_after t ~after:every fire)

let cancel t handle = Event_queue.cancel t.agenda handle

(* The innermost simulation loop: peek the timestamp (an unboxed int), then
   take the payload, so delivering an event allocates nothing. *)
let step t =
  if Event_queue.is_empty t.agenda then false
  else begin
    let at = Event_queue.peek_time_exn t.agenda in
    let f = Event_queue.pop_exn t.agenda in
    t.clock <- at;
    f t;
    true
  end

let run_until t limit =
  let rec go () =
    if
      (not (Event_queue.is_empty t.agenda))
      && Time.( <= ) (Event_queue.peek_time_exn t.agenda) limit
    then begin
      ignore (step t);
      go ()
    end
  in
  go ();
  if Time.( < ) t.clock limit then t.clock <- limit

let run t = while step t do () done

let advance_to t at = if Time.( < ) t.clock at then begin
    (* Deliver any events that should have fired before [at] first. *)
    run_until t at
  end

let pending t = Event_queue.length t.agenda
