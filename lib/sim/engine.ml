type t = {
  mutable clock : Time.t;
  agenda : callback Event_queue.t;
}

and callback = t -> unit

(* The agenda structure for engines that don't pick one explicitly:
   SSMC_QUEUE=heap|wheel|checked, defaulting to the wheel (the heap stays
   the reference; CI pins the experiments byte-identical across all
   three). *)
let default_queue =
  lazy
    (match Option.map String.lowercase_ascii (Sys.getenv_opt "SSMC_QUEUE") with
    | Some "heap" -> Event_queue.Heap
    | Some "wheel" | None -> Event_queue.Wheel
    | Some "checked" -> Event_queue.Checked
    | Some other ->
      Fmt.invalid_arg "SSMC_QUEUE=%s (expected heap, wheel, or checked)" other)

let create ?queue () =
  let kind = match queue with Some k -> k | None -> Lazy.force default_queue in
  { clock = Time.zero; agenda = Event_queue.create ~kind () }

let now t = t.clock
let queue_kind t = Event_queue.kind t.agenda

let schedule t ~at f =
  if Time.( < ) at t.clock then invalid_arg "Engine.schedule: instant in the past";
  Event_queue.add t.agenda ~at f

let schedule_after t ~after f = schedule t ~at:(Time.add t.clock after) f

let schedule_every t ~every ?until f =
  if Time.span_to_ns every = 0 then invalid_arg "Engine.schedule_every: zero period";
  let within at = match until with None -> true | Some limit -> Time.( <= ) at limit in
  (* Decide before scheduling, not when the tick fires: the old shape
     enqueued one phantom event a full period past [until], which kept a
     drained run's clock (and whatever idle accounting hangs off it)
     running beyond the requested window. *)
  let rec fire engine =
    f engine;
    let next = Time.add engine.clock every in
    if within next then ignore (schedule engine ~at:next fire)
  in
  let first = Time.add t.clock every in
  if within first then ignore (schedule t ~at:first fire)

let cancel t handle = Event_queue.cancel t.agenda handle

(* The innermost simulation loop: peek the timestamp (an unboxed int), then
   take the payload, so delivering an event allocates nothing.  Events
   sharing a timestamp are delivered as one batch — the clock is written
   once per group, and the wheel extracts the whole group in one touch
   (callbacks scheduling more work at the current instant extend the
   batch, preserving per-event semantics). *)
let deliver_group t at =
  t.clock <- at;
  let more = ref true in
  while !more do
    let f = Event_queue.pop_exn t.agenda in
    f t;
    if
      Event_queue.is_empty t.agenda
      || not (Time.equal (Event_queue.peek_time_exn t.agenda) at)
    then more := false
  done

let step t =
  if Event_queue.is_empty t.agenda then false
  else begin
    deliver_group t (Event_queue.peek_time_exn t.agenda);
    true
  end

let run_until t limit =
  let running = ref true in
  while !running do
    if Event_queue.is_empty t.agenda then running := false
    else begin
      let at = Event_queue.peek_time_exn t.agenda in
      if Time.( <= ) at limit then deliver_group t at else running := false
    end
  done;
  if Time.( < ) t.clock limit then t.clock <- limit

let run t = while step t do () done

let advance_to t at = if Time.( < ) t.clock at then begin
    (* Deliver any events that should have fired before [at] first. *)
    run_until t at
  end

let pending t = Event_queue.length t.agenda
