(** A fixed-size Domain pool for deterministic parallel sweeps.

    The simulator's experiments are grids of mutually independent points —
    budget splits, policy × utilization products, per-device machine runs,
    multi-seed replications.  This module fans such grids out over OCaml 5
    Domains while keeping the results {e byte-identical regardless of job
    count}:

    - work items are indexed, and results are collected into the submission
      order, never the completion order;
    - the pool shares no state with the work function: each item must be
      self-contained (build its own engine, machine, and RNG).  Derive
      per-item randomness from an index-keyed {!Rng.split_ix}, never from a
      mutable generator shared across items;
    - [jobs = 1] degrades to a plain sequential [List.map] on the calling
      domain — no Domains are spawned and no behavior changes.

    An exception raised by a work item is re-raised by the submitting call
    once the batch has drained; when several items fail, the one with the
    smallest index wins, so failures are deterministic too. *)

type t
(** A pool of worker domains of fixed size.  The submitting domain also
    executes work, so a pool of size [jobs] holds [jobs - 1] Domains. *)

val default_jobs : unit -> int
(** The ambient parallelism: the last {!set_default_jobs}, else the
    [SSMC_JOBS] environment variable, else
    [Domain.recommended_domain_count ()].  Always at least 1. *)

val set_default_jobs : int -> unit
(** Set the ambient parallelism (the [--jobs] flag lands here).  Replaces
    the ambient pool on its next use if the size changed.
    @raise Invalid_argument if the argument is [< 1]. *)

val create : ?jobs:int -> unit -> t
(** A fresh pool of [jobs] (default {!default_jobs}) workers.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; using the pool
    afterwards raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)

(** {1 Mapping}

    All functions preserve submission order and are observationally
    equivalent to their sequential [List]/[Array] counterparts. [?chunk]
    (default 1) hands each worker [chunk] consecutive indices at a time —
    raise it when items are tiny so the per-item dispatch cost amortizes. *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f items] ≡ [List.map f items]. *)

val mapi : ?chunk:int -> t -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** [mapi pool f items] ≡ [List.mapi f items]. *)

val map_array : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f items] ≡ [Array.map f items]. *)

val map_reduce :
  ?chunk:int ->
  t ->
  map:('a -> 'b) ->
  combine:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a list ->
  'acc
(** Parallel [map], then a sequential in-order fold of [combine] on the
    submitting domain — deterministic even for non-associative [combine]. *)

(** {1 Ambient pool}

    The process-wide pool sized by {!default_jobs}, created lazily and
    reused across calls (and torn down at exit).  This is what the
    experiment hot paths use, so one [--jobs]/[SSMC_JOBS] setting governs
    the whole run. *)

val run_map : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [run_map f items] maps on the ambient pool.  [~jobs] overrides the
    ambient size for this call alone (a transient pool; [~jobs:1] is a
    direct sequential map). *)

val run_mapi : ?jobs:int -> ?chunk:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
