type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let number v = if Float.is_finite v then Number v else Null
let int i = Number (float_of_int i)

let escape buf s =
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_string v =
  let buf = Buffer.create 1024 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number v ->
      if not (Float.is_finite v) then
        invalid_arg "Json.to_string: non-finite number (use Json.number)";
      Buffer.add_string buf (Printf.sprintf "%.6g" v)
    | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ", ";
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\": ";
          go item)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- Parser: recursive descent over the string, tracking a byte offset. --- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> begin
          if !pos >= n then error "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if !pos + 4 > n then error "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> error "bad \\u escape"
            in
            (* Escaped codepoints here are ASCII controls; decode what fits
               in one byte and transliterate the rest. *)
            if code < 0x100 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
          | _ -> error "bad escape");
          go ()
        end
        | c when Char.code c < 0x20 -> error "raw control character in string"
        | c ->
          Buffer.add_char buf c;
          go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some v when Float.is_finite v -> Number v
    | Some _ -> error "non-finite number"
    | None -> error "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> error "expected ',' or ']'"
        in
        items []
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec members acc =
          let kv = member () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members (kv :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev (kv :: acc))
          | _ -> error "expected ',' or '}'"
        in
        members []
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
