type 'a entry = {
  at : Time.t;
  seq : int;
  payload : 'a;
  mutable cancelled : bool;
}

type handle = H : 'a entry -> handle

type 'a t = {
  mutable heap : 'a entry array;
  (* [heap] slots >= [size] hold stale entries kept only to satisfy the
     array type; they are never read. *)
  mutable size : int;
  mutable next_seq : int;
  mutable live : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0; live = 0 }

let entry_before a b =
  let c = Time.compare a.at b.at in
  if c <> 0 then c < 0 else a.seq < b.seq

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && entry_before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t entry =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nheap = Array.make ncap entry in
    Array.blit t.heap 0 nheap 0 t.size;
    t.heap <- nheap
  end

let add t ~at payload =
  let entry = { at; seq = t.next_seq; payload; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  t.live <- t.live + 1;
  sift_up t (t.size - 1);
  H entry

let cancel t (H entry) =
  if not entry.cancelled then begin
    entry.cancelled <- true;
    t.live <- t.live - 1
  end

let remove_min t =
  let entry = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  entry

(* Discard cancelled entries sitting at the root. *)
let rec drop_cancelled t =
  if t.size > 0 && t.heap.(0).cancelled then begin
    ignore (remove_min t);
    drop_cancelled t
  end

exception Empty

let pop t =
  drop_cancelled t;
  if t.size = 0 then None
  else begin
    let entry = remove_min t in
    t.live <- t.live - 1;
    Some (entry.at, entry.payload)
  end

let pop_exn t =
  drop_cancelled t;
  if t.size = 0 then raise Empty
  else begin
    let entry = remove_min t in
    t.live <- t.live - 1;
    entry.payload
  end

let peek_time t =
  drop_cancelled t;
  if t.size = 0 then None else Some t.heap.(0).at

let peek_time_exn t =
  drop_cancelled t;
  if t.size = 0 then raise Empty else t.heap.(0).at

let length t = t.live
let is_empty t = length t = 0

let clear t =
  t.heap <- [||];
  t.size <- 0;
  t.live <- 0
