type 'a entry = 'a Timing_wheel.entry = {
  at : Time.t;
  seq : int;
  payload : 'a;
  mutable cancelled : bool;
}

type handle = H : 'a entry -> handle
type kind = Heap | Wheel | Checked

let kind_name = function Heap -> "heap" | Wheel -> "wheel" | Checked -> "checked"

exception Empty

(* --- Binary min-heap ------------------------------------------------------

   The original implementation, kept as the reference structure: no
   constraints on insertion order, O(log n) add/pop.  Vacated cells are
   reset to the shared dummy so popped payload closures are not retained
   until a later add overwrites the slot. *)

module Heap_impl = struct
  type 'a t = {
    mutable heap : 'a entry array;
    (* [heap] slots >= [size] hold the dummy entry; they are never read. *)
    mutable size : int;
  }

  let create () = { heap = [||]; size = 0 }

  let entry_before a b =
    let c = Time.compare a.at b.at in
    if c <> 0 then c < 0 else a.seq < b.seq

  let swap t i j =
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(j);
    t.heap.(j) <- tmp

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if entry_before t.heap.(i) t.heap.(parent) then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && entry_before t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && entry_before t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let grow t =
    let cap = Array.length t.heap in
    if t.size = cap then begin
      let ncap = if cap = 0 then 16 else 2 * cap in
      let nheap = Array.make ncap (Timing_wheel.dummy ()) in
      Array.blit t.heap 0 nheap 0 t.size;
      t.heap <- nheap
    end

  let add t entry =
    grow t;
    t.heap.(t.size) <- entry;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let remove_min t =
    let entry = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    t.heap.(t.size) <- Timing_wheel.dummy ();
    entry

  (* Discard cancelled entries sitting at the root. *)
  let rec drop_cancelled t =
    if t.size > 0 && t.heap.(0).cancelled then begin
      ignore (remove_min t);
      drop_cancelled t
    end

  let pop_exn t =
    drop_cancelled t;
    if t.size = 0 then raise Empty else remove_min t

  let peek_exn t =
    drop_cancelled t;
    if t.size = 0 then raise Empty else t.heap.(0)

  let clear t =
    t.heap <- [||];
    t.size <- 0
end

(* --- The kind-dispatching queue ------------------------------------------- *)

type 'a impl =
  | Heap_q of 'a Heap_impl.t
  | Wheel_q of 'a Timing_wheel.t
  (* Both structures over physically shared entries; every pop asserts
     they deliver the same one. *)
  | Checked_q of 'a Heap_impl.t * 'a Timing_wheel.t

type 'a t = {
  impl : 'a impl;
  mutable next_seq : int;
  mutable live : int;
}

let create ?(kind = Heap) () =
  let impl =
    match kind with
    | Heap -> Heap_q (Heap_impl.create ())
    | Wheel -> Wheel_q (Timing_wheel.create ())
    | Checked -> Checked_q (Heap_impl.create (), Timing_wheel.create ())
  in
  { impl; next_seq = 0; live = 0 }

let kind t =
  match t.impl with Heap_q _ -> Heap | Wheel_q _ -> Wheel | Checked_q _ -> Checked

let add t ~at payload =
  let entry = { at; seq = t.next_seq; payload; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  (match t.impl with
  | Heap_q h -> Heap_impl.add h entry
  | Wheel_q w -> Timing_wheel.add w entry
  | Checked_q (h, w) ->
    Heap_impl.add h entry;
    Timing_wheel.add w entry);
  H entry

let cancel t (H entry) =
  if not entry.cancelled then begin
    entry.cancelled <- true;
    t.live <- t.live - 1
  end

let divergence ~op (eh : _ entry) (ew : _ entry) =
  Fmt.failwith
    "Event_queue(checked): %s divergence: heap seq %d at %dns, wheel seq %d at %dns"
    op eh.seq (Time.to_ns eh.at) ew.seq (Time.to_ns ew.at)

let pop_entry_exn t =
  if t.live = 0 then raise Empty;
  let entry =
    match t.impl with
    | Heap_q h -> Heap_impl.pop_exn h
    | Wheel_q w -> Timing_wheel.pop_exn w
    | Checked_q (h, w) ->
      let eh = Heap_impl.pop_exn h in
      let ew = Timing_wheel.pop_exn w in
      if eh != ew then divergence ~op:"pop" eh ew;
      eh
  in
  t.live <- t.live - 1;
  entry

let pop_exn t = (pop_entry_exn t).payload

let pop t =
  if t.live = 0 then None
  else begin
    let entry = pop_entry_exn t in
    Some (entry.at, entry.payload)
  end

let peek_time_exn t =
  if t.live = 0 then raise Empty;
  match t.impl with
  | Heap_q h -> (Heap_impl.peek_exn h).at
  | Wheel_q w -> (Timing_wheel.peek_exn w).at
  | Checked_q (h, w) ->
    let eh = Heap_impl.peek_exn h in
    let ew = Timing_wheel.peek_exn w in
    if eh != ew then divergence ~op:"peek" eh ew;
    eh.at

let peek_time t = if t.live = 0 then None else Some (peek_time_exn t)
let length t = t.live
let is_empty t = t.live = 0

let clear t =
  (match t.impl with
  | Heap_q h -> Heap_impl.clear h
  | Wheel_q w -> Timing_wheel.clear w
  | Checked_q (h, w) ->
    Heap_impl.clear h;
    Timing_wheel.clear w);
  (* Reset the tie-break counter too: a cleared queue replays a fresh
     run's delivery order exactly. *)
  t.next_seq <- 0;
  t.live <- 0
