(** Fault schedules for trace-driven runs.

    A fault schedule is a list of power events — sudden power failures,
    battery swaps, battery depletion — pinned to instants relative to the
    start of a run.  The schedule itself is pure data: the machine layer
    interprets each kind against its battery and storage state when the
    simulated clock reaches it (scheduling the firing through the event
    {!Engine}).  Keeping the schedule in [Sim] lets device- and
    storage-level tests construct fault points without depending on the
    machine assembly. *)

type kind =
  | Power_failure
      (** External power vanishes mid-operation.  Whether DRAM (and with
          it the write buffer and block map) survives depends on the
          battery state at that instant. *)
  | Battery_swap
      (** The primary battery is pulled and replaced; only the lithium
          backup can carry DRAM through the gap. *)
  | Battery_depletion
      (** The primary battery runs out abruptly (the gauge lied); the
          machine falls onto its backup, if any. *)
  | Card_eject of { card : int; surprise : bool }
      (** One card of a striped array leaves the machine — pulled from
          its PCMCIA slot mid-run when [surprise], after an orderly flush
          otherwise.  Only a parity-striped array survives this (the
          machine layer rejects it for anything else). *)
  | Card_reinsert of { card : int }
      (** Blank replacement media arrives in the missing slot; the array
          rebuilds it in the background. *)

val kind_name : kind -> string
val pp_kind : Format.formatter -> kind -> unit

type event = {
  after : Time.span;  (** Offset from the start of the run. *)
  kind : kind;
}

type schedule = event list
(** Events ordered by [after] (construct with {!schedule}). *)

val schedule : event list -> schedule
(** Sort events by offset (stable: simultaneous events keep their given
    order). *)

val random :
  rng:Rng.t -> ?kinds:kind list -> n:int -> over:Time.span -> unit -> schedule
(** [n] events at uniformly random offsets in [(0, over]], each with a
    kind drawn uniformly from [kinds] (default: the three power kinds —
    card events need a target and are never generated randomly).
    Deterministic in the generator's state.
    @raise Invalid_argument if [n < 0], [over] is zero, or [kinds] is
    empty. *)

val pp_event : Format.formatter -> event -> unit
