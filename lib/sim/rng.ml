type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let split_ix t ~index =
  if index < 0 then invalid_arg "Rng.split_ix: negative index";
  (* The stream the (index+1)-th consecutive [split] of a copy of [t] would
     yield, computed directly: [t] itself is not advanced, and any index can
     be derived independently of the others — the property parallel sweeps
     need to hand item [i] its RNG without threading a generator through
     items [0..i-1]. *)
  { state = mix (Int64.add t.state (Int64.mul (Int64.of_int (index + 1)) golden_gamma)) }

let split_ix2 t ~index ~stream =
  if index < 0 then invalid_arg "Rng.split_ix2: negative index";
  if stream < 0 then invalid_arg "Rng.split_ix2: negative stream";
  (* [split_ix (split_ix t ~index) ~index:stream], fused: one call derives
     the [stream]-th member of item [index]'s seed family.  Fleet-scale
     sweeps hand device [i] its k independent generators (spec draw,
     workload draw, trace, faults, ...) this way without materializing the
     intermediate generator per purpose. *)
  let s = mix (Int64.add t.state (Int64.mul (Int64.of_int (index + 1)) golden_gamma)) in
  { state = mix (Int64.add s (Int64.mul (Int64.of_int (stream + 1)) golden_gamma)) }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling over the top 62 bits to avoid modulo bias. *)
  let mask = max_int in
  let rec go () =
    let v = Int64.to_int (bits64 t) land mask in
    let r = v mod bound in
    if v - r + (bound - 1) < 0 then go () else r
  in
  go ()

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits *. 0x1p-53

let float t bound = unit_float t *. bound
let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t ~p = unit_float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
