(* A fixed-size Domain pool.  Determinism is the design constraint: work is
   handed out by index from an atomic cursor (any worker may compute any
   item), but every result lands in a slot fixed by its submission index,
   so the output never depends on scheduling.  See pool.mli. *)

type task = unit -> unit

type t = {
  jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  pending : task Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* --- Sizing ---------------------------------------------------------------- *)

let env_jobs () =
  match Sys.getenv_opt "SSMC_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Some j
    | _ -> None)

let configured_jobs = ref None

let default_jobs () =
  match !configured_jobs with
  | Some j -> j
  | None -> (
    match env_jobs () with
    | Some j -> j
    | None -> max 1 (Domain.recommended_domain_count ()))

let set_default_jobs j =
  if j < 1 then invalid_arg "Pool.set_default_jobs: jobs < 1";
  configured_jobs := Some j

(* --- Lifecycle ------------------------------------------------------------- *)

let worker pool () =
  let rec loop () =
    Mutex.lock pool.mutex;
    while (not pool.stop) && Queue.is_empty pool.pending do
      Condition.wait pool.has_work pool.mutex
    done;
    match Queue.take_opt pool.pending with
    | Some task ->
      Mutex.unlock pool.mutex;
      task ();
      loop ()
    | None ->
      (* Stopped and drained. *)
      Mutex.unlock pool.mutex
  in
  loop ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs < 1";
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      pending = Queue.create ();
      stop = false;
      workers = [];
    }
  in
  pool.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker pool));
  pool

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.stop <- true;
  t.workers <- [];
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* --- Indexed execution ------------------------------------------------------ *)

(* Run [f 0 .. f (n-1)], each exactly once, on up to [t.jobs] domains (the
   caller included), returning only when all are done.  Workers claim
   [chunk] consecutive indices per trip to the shared cursor. *)
let run_indexed ?(chunk = 1) t ~n f =
  if chunk < 1 then invalid_arg "Pool.run_indexed: chunk < 1";
  if t.stop then invalid_arg "Pool: pool is shut down";
  if n > 0 then begin
    if t.jobs = 1 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let cursor = Atomic.make 0 in
      let remaining = Atomic.make n in
      let finished = Mutex.create () in
      let all_done = Condition.create () in
      (* First failure by submission index, so re-raising is deterministic. *)
      let failure : (int * exn * Printexc.raw_backtrace) option ref = ref None in
      let record_failure i exn bt =
        Mutex.lock finished;
        (match !failure with
        | Some (j, _, _) when j <= i -> ()
        | _ -> failure := Some (i, exn, bt));
        Mutex.unlock finished
      in
      let work () =
        let continue = ref true in
        while !continue do
          let lo = Atomic.fetch_and_add cursor chunk in
          if lo >= n then continue := false
          else begin
            let hi = min (lo + chunk) n in
            for i = lo to hi - 1 do
              (try f i
               with exn -> record_failure i exn (Printexc.get_raw_backtrace ()));
              if Atomic.fetch_and_add remaining (-1) = 1 then begin
                Mutex.lock finished;
                Condition.broadcast all_done;
                Mutex.unlock finished
              end
            done
          end
        done
      in
      let helpers = min (t.jobs - 1) (n - 1) in
      Mutex.lock t.mutex;
      for _ = 1 to helpers do
        Queue.push work t.pending
      done;
      Condition.broadcast t.has_work;
      Mutex.unlock t.mutex;
      work ();
      Mutex.lock finished;
      while Atomic.get remaining > 0 do
        Condition.wait all_done finished
      done;
      Mutex.unlock finished;
      match !failure with
      | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
      | None -> ()
    end
  end

(* --- Maps -------------------------------------------------------------------- *)

let map_array ?chunk t f items =
  let n = Array.length items in
  if t.jobs = 1 then Array.map f items
  else begin
    let out = Array.make n None in
    run_indexed ?chunk t ~n (fun i -> out.(i) <- Some (f items.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let mapi ?chunk t f items =
  if t.jobs = 1 then List.mapi f items
  else begin
    let arr = Array.of_list items in
    let n = Array.length arr in
    let out = Array.make n None in
    run_indexed ?chunk t ~n (fun i -> out.(i) <- Some (f i arr.(i)));
    Array.to_list (Array.map (function Some v -> v | None -> assert false) out)
  end

let map ?chunk t f items =
  if t.jobs = 1 then List.map f items else mapi ?chunk t (fun _ x -> f x) items

let map_reduce ?chunk t ~map:fm ~combine ~init items =
  List.fold_left combine init (map ?chunk t fm items)

(* --- Ambient pool ------------------------------------------------------------- *)

let ambient : t option ref = ref None

let () =
  at_exit (fun () ->
      match !ambient with
      | Some pool ->
        ambient := None;
        shutdown pool
      | None -> ())

let ambient_pool () =
  let want = default_jobs () in
  match !ambient with
  | Some pool when pool.jobs = want -> pool
  | existing ->
    Option.iter shutdown existing;
    let pool = create ~jobs:want () in
    ambient := Some pool;
    pool

let run_mapi ?jobs ?chunk f items =
  match jobs with
  | None -> mapi ?chunk (ambient_pool ()) f items
  | Some 1 -> List.mapi f items
  | Some j -> with_pool ~jobs:j (fun pool -> mapi ?chunk pool f items)

let run_map ?jobs ?chunk f items =
  match jobs with
  | None -> map ?chunk (ambient_pool ()) f items
  | Some 1 -> List.map f items
  | Some j -> with_pool ~jobs:j (fun pool -> map ?chunk pool f items)
