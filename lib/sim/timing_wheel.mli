(** Hierarchical timing wheel: O(1) add/cancel and amortized-O(1) pop for
    the near-FIFO instant distributions a replay-driven simulation
    produces (the binary heap pays O(log n) per operation).

    The wheel is one of the two implementations behind {!Event_queue} —
    use that module unless you are the queue itself.  It shares
    {!Event_queue}'s entry representation so the [Checked] kind can run
    both structures over physically identical entries.

    Contract, narrower than the heap's:
    - Instants are non-negative and {!add} must not move backwards past
      the wheel's cursor, which trails the minimum instant ever popped.
      The simulation engine guarantees this (it refuses to schedule in
      the past); standalone users get [Invalid_argument] otherwise.
    - {!peek_exn} is non-destructive: it never advances the cursor, so an
      abandoned peek (e.g. a replay driver looking one event past its
      window) leaves earlier instants schedulable.
    - Cancellation is lazy: mark [cancelled] on the entry (via
      {!Event_queue.cancel}); the wheel drops the entry when it next
      touches its slot. *)

type 'a entry = {
  at : Time.t;
  seq : int;  (** Tie-break: equal instants deliver in [seq] order. *)
  payload : 'a;
  mutable cancelled : bool;
}

type 'a t

exception Empty

val create : unit -> 'a t

val dummy : unit -> 'a entry
(** A shared sentinel for vacated entry slots (its payload must never be
    read).  Exposed for {!Event_queue}'s heap, which nulls popped cells
    with it to avoid retaining payload closures. *)

val add : 'a t -> 'a entry -> unit
(** Insert an entry at [entry.at].
    @raise Invalid_argument if the instant is before the wheel cursor. *)

val peek_exn : 'a t -> 'a entry
(** The earliest live entry, without structural movement.
    @raise Empty when no live entries remain. *)

val pop_exn : 'a t -> 'a entry
(** Remove and return the earliest live entry.  Advances the cursor to
    its instant: later adds must be at or after it.
    @raise Empty when no live entries remain. *)

val clear : 'a t -> unit
(** Drop every entry (and every reference to their payloads). *)
