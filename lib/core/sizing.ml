open Sim

type point = {
  dram_fraction : float;
  dram_mb : float;
  flash_mb : float;
  buffer_mb : float;
  mean_write_us : float;
  mean_read_us : float;
  write_reduction : float;
  energy_j : float;
  lifetime_years : float;
  permanent_capacity_mb : float;
  out_of_space : bool;
}

let default_fractions = [ 0.05; 0.1; 0.15; 0.2; 0.3; 0.4; 0.5; 0.6 ]

(* DRAM not spent on the OS and the FS working state backs the write
   buffer; 1 MB is reserved for the kernel and metadata. *)
let reserved_dram_mb = 1.0

let point_of_run ~fraction ~dram_mb ~flash_mb ~buffer_mb ~(result : Machine.result) =
  let stats = result.Machine.manager_stats in
  let write_reduction =
    match stats with Some s -> s.Storage.Manager.write_reduction | None -> 0.0
  in
  let live_mb =
    match stats with
    | Some s -> float_of_int (s.Storage.Manager.live_blocks * 512) /. 1048576.0
    | None -> 0.0
  in
  {
    dram_fraction = fraction;
    dram_mb;
    flash_mb;
    buffer_mb;
    mean_write_us = Stat.Summary.mean result.Machine.write_latency;
    mean_read_us = Stat.Summary.mean result.Machine.read_latency;
    write_reduction;
    energy_j = result.Machine.energy_j;
    lifetime_years = Option.value result.Machine.lifetime_years ~default:infinity;
    permanent_capacity_mb = Float.max 0.0 (flash_mb *. 0.9 -. live_mb);
    out_of_space = false;
  }

let sweep ?(budget_dollars = 1000.0) ?(fractions = default_fractions)
    ?(duration = Time.span_s 1200.0) ?(seed = 7) ?jobs ~profile () =
  let dram_cost = Device.Specs.(nec_dram.d_econ.dollars_per_mb) in
  let flash_cost = Device.Specs.(intel_flash.f_econ.dollars_per_mb) in
  (* Every point builds its own machine, engine, and RNGs from [seed]
     alone, so the points are independent and the pool map below returns
     byte-identical results at any job count. *)
  Pool.run_map ?jobs
    (fun fraction ->
      let dram_mb = budget_dollars *. fraction /. dram_cost in
      let flash_mb = budget_dollars *. (1.0 -. fraction) /. flash_cost in
      let buffer_mb = Float.max 0.0625 (dram_mb -. reserved_dram_mb) in
      let manager_cfg =
        {
          Storage.Manager.default_config with
          Storage.Manager.buffer =
            {
              Storage.Write_buffer.default_config with
              Storage.Write_buffer.capacity_blocks =
                int_of_float (buffer_mb *. 1048576.0 /. 512.0);
            };
        }
      in
      let cfg =
        Config.solid_state
          ~name:(Printf.sprintf "split-%.0f%%" (100.0 *. fraction))
          ~dram_mb:(max 1 (int_of_float (Float.round dram_mb)))
          ~flash_mb:(max 1 (int_of_float (Float.round flash_mb)))
          ~manager:manager_cfg ~seed ()
      in
      let machine = Machine.create cfg in
      (* Stream generation straight into the replay: each sweep point holds
         at most one in-flight record, not the whole trace. *)
      let trace =
        Trace.Synth.generate_seq profile ~rng:(Rng.create ~seed:(seed + 1)) ~duration
      in
      match
        Machine.preload machine trace.Trace.Synth.stream_initial_files;
        Machine.run_seq machine trace.Trace.Synth.seq
      with
      | result -> point_of_run ~fraction ~dram_mb ~flash_mb ~buffer_mb ~result
      | exception Storage.Manager.Out_of_space ->
        {
          dram_fraction = fraction;
          dram_mb;
          flash_mb;
          buffer_mb;
          mean_write_us = nan;
          mean_read_us = nan;
          write_reduction = 0.0;
          energy_j = nan;
          lifetime_years = 0.0;
          permanent_capacity_mb = 0.0;
          out_of_space = true;
        })
    fractions

let knee ?(tolerance = 1.2) points =
  if not (tolerance >= 1.0) then invalid_arg "Sizing.knee: tolerance < 1.0";
  let usable = List.filter (fun p -> not p.out_of_space) points in
  match usable with
  | [] -> None
  | _ ->
    let best =
      List.fold_left (fun acc p -> Float.min acc p.mean_write_us) infinity usable
    in
    usable
    |> List.filter (fun p -> p.mean_write_us <= best *. tolerance)
    |> List.sort (fun a b -> Float.compare a.dram_fraction b.dram_fraction)
    |> function
    | [] -> None
    | p :: _ -> Some p

let pp_point ppf p =
  if p.out_of_space then
    Fmt.pf ppf "%.0f%% DRAM (%.1fMB/%.1fMB): out of space"
      (100.0 *. p.dram_fraction)
      p.dram_mb p.flash_mb
  else
    Fmt.pf ppf
      "%.0f%% DRAM (%.1fMB/%.1fMB buf=%.2fMB): write=%.1fus read=%.1fus red=%.0f%% \
       life=%.1fy"
      (100.0 *. p.dram_fraction)
      p.dram_mb p.flash_mb p.buffer_mb p.mean_write_us p.mean_read_us
      (100.0 *. p.write_reduction)
      p.lifetime_years
