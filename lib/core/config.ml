open Sim

type storage =
  | Solid_state of {
      flash_bytes : int;  (** Per card. *)
      nbanks : int;
      flash_spec : Device.Specs.flash_spec;
      endurance_override : int option;
      manager : Storage.Manager.config;
      cards : int;
      striping : Storage.Striping.policy;
      front_cache_blocks : int;
    }
  | Conventional of {
      disk_spec : Device.Specs.disk_spec;
      spindown_timeout : Time.span option;
      ffs : Fs.Ffs.config;
    }

type t = {
  name : string;
  dram_bytes : int;
  battery_backed_dram : bool;
  storage : storage;
  battery_wh : float;
  backup_wh : float;
  seed : int;
}

let default_striping = Storage.Striping.Round_robin { strip_blocks = 4 }

let solid_state ?(name = "solid-state") ?(dram_mb = 4) ?(flash_mb = 20) ?(nbanks = 4)
    ?(manager = Storage.Manager.default_config) ?(flash_spec = Device.Specs.intel_flash)
    ?endurance_override ?(cards = 1) ?(striping = default_striping)
    ?(front_cache_blocks = 0) ?(battery_wh = 10.0) ?(backup_wh = 0.5) ?(seed = 42) () =
  {
    name;
    dram_bytes = dram_mb * Units.mib;
    battery_backed_dram = true;
    storage =
      Solid_state
        {
          flash_bytes = flash_mb * Units.mib;
          nbanks;
          flash_spec;
          endurance_override;
          manager;
          cards;
          striping;
          front_cache_blocks;
        };
    battery_wh;
    backup_wh;
    seed;
  }

let conventional ?(name = "conventional") ?(dram_mb = 4)
    ?(disk_spec = Device.Specs.hp_kittyhawk) ?spindown_timeout
    ?(ffs = Fs.Ffs.default_config) ?(battery_wh = 10.0) ?(seed = 42) () =
  let spindown =
    match spindown_timeout with Some _ as s -> s | None -> Some (Time.span_s 10.0)
  in
  {
    name;
    dram_bytes = dram_mb * Units.mib;
    battery_backed_dram = true;
    storage = Conventional { disk_spec; spindown_timeout = spindown; ffs };
    battery_wh;
    backup_wh = 0.5;
    seed;
  }

let dollars t =
  let dram =
    Units.to_mib t.dram_bytes *. Device.Specs.(nec_dram.d_econ.dollars_per_mb)
  in
  let stable =
    match t.storage with
    | Solid_state { flash_bytes; flash_spec; cards; _ } ->
      Units.to_mib flash_bytes *. float_of_int cards
      *. flash_spec.Device.Specs.f_econ.Device.Specs.dollars_per_mb
    | Conventional { disk_spec; _ } ->
      Units.to_mib disk_spec.Device.Specs.k_capacity_bytes
      *. disk_spec.Device.Specs.k_econ.Device.Specs.dollars_per_mb
  in
  dram +. stable
