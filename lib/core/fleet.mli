(** Fleet-scale simulation: a whole product line of solid-state mobile
    computers in one run.

    The paper argues about product lines — millions of palmtops and
    notebooks — while every experiment elsewhere in this repository drives
    one machine.  This module instantiates [N] heterogeneous devices
    (hardware drawn from weighted {!variant}s over {!Device.Specs} presets,
    per-device workloads drawn from a {!Trace.Workloads} mix, per-device
    randomness from index-keyed {!Sim.Rng.split_ix2} seed families) and
    streams them through the {!Sim.Pool} Domain pool in sharded batches:
    each device is constructed (recycling allocations via
    {!Machine.recycle}), replayed on the compiled fast path
    ({!Machine.run_compiled}), reduced to a small {!device_report}, and
    released before the next shard starts.  Peak memory is therefore
    O(shard × jobs), never O(N) — a million devices fit in the heap a few
    dozen would otherwise need.

    Per-device results fold into fleet-level aggregates in device-index
    order: scalar {!Sim.Stat.Summary}s, streaming {!Sim.Stat.Quantiles}
    sketches for the population distributions (wear across devices,
    lifetime), and merged {!Sim.Probe} snapshots.  Because work items share
    nothing, the pool preserves submission order, and the fold order is
    fixed, the whole {!report} is byte-identical at any job count and any
    shard size — enforced in CI next to the other determinism pins. *)

(** One hardware model in the product line: a weighted configuration
    template.  [v_mix] optionally overrides the fleet-wide workload mix —
    a palmtop model runs palmtop software — and is also how a model avoids
    workloads whose preload footprint exceeds its flash. *)
type variant = {
  v_weight : float;
  v_name : string;
  v_flash_mb : int;
  v_dram_mb : int;
  v_nbanks : int;
  v_flash_spec : Device.Specs.flash_spec;
  v_endurance_override : int option;
  v_buffer_kb : int option;  (** Write-buffer capacity; [None] = default. *)
  v_mix : (float * Trace.Synth.profile) list option;
}

val default_variants : variant list
(** Three 1993-flavoured models: a 20 MB Intel-flash workstation-class
    machine, a 10 MB budget palmtop (PIM/compile mix), and a 40 MB
    SunDisk-flash "pro" machine that also carries the database workload. *)

type spec = {
  devices : int;  (** Fleet size [N]. *)
  shard : int;  (** Devices constructed and live per batch. *)
  base_seed : int;
  duration : Sim.Time.span;  (** Per-device simulated trace duration. *)
  mix : (float * Trace.Synth.profile) list;
      (** Fleet-wide workload mix (weights need not sum to 1); a variant's
          [v_mix] takes precedence for its devices. *)
  variants : variant list;
  faults_per_device : int;
      (** Random power events injected into every device's run, offsets
          uniform over [duration] ({!Sim.Fault.random}); 0 disables. *)
  fault_kinds : Sim.Fault.kind list;
  wearout_horizon_years : float;
      (** The "year Y" for the fraction-past-wear-out headline. *)
}

val spec :
  ?shard:int ->
  ?base_seed:int ->
  ?duration:Sim.Time.span ->
  ?mix:(float * Trace.Synth.profile) list ->
  ?variants:variant list ->
  ?faults_per_device:int ->
  ?fault_kinds:Sim.Fault.kind list ->
  ?wearout_horizon_years:float ->
  devices:int ->
  unit ->
  spec
(** Defaults: shard 256, seed 1993, 10 simulated minutes per device, an
    engineering/PIM/compile mix, {!default_variants}, no faults (kinds
    default to all three), 10-year horizon. *)

val validate : spec -> (unit, string) result

(** What survives of a device once its shard is released: a few dozen
    scalars.  [d_lifetime_years] is [infinity] when the device flushed
    nothing to flash. *)
type device_report = {
  d_index : int;
  d_variant : string;
  d_workload : string;
  d_out_of_space : bool;
      (** The device ran out of flash (workload bigger than the model);
          its other fields are zero. *)
  d_ops : int;
  d_op_errors : int;
  d_read_us : float;  (** Mean per-op foreground read latency. *)
  d_write_us : float;
  d_energy_j : float;
  d_max_erases : int;  (** Most-worn sector's erase count. *)
  d_wear_stddev : float;
  d_write_amp : float;
  d_lifetime_years : float;
  d_faults : int;
  d_cold_restarts : int;
  d_blocks_lost : int;
  d_files_damaged : int;
}

val simulate_device : spec -> index:int -> device_report
(** Run device [index] alone — the exact per-device path {!run} executes,
    exposed for tests and spot checks.  Deterministic in
    [(spec.base_seed, index)] and nothing else. *)

(** Fleet-level aggregates, folded in device-index order.  Distribution
    sketches answer the population questions: [wear_max_erases] for wear
    percentiles across devices, [lifetime_years] for the lifetime
    distribution (finite lifetimes only; [unbounded_lifetimes] counts the
    rest). *)
type report = {
  devices : int;
  out_of_space : int;
  ops : int;
  op_errors : int;
  read_us : Sim.Stat.Summary.t;  (** Across devices, of per-device means. *)
  write_us : Sim.Stat.Summary.t;
  energy_j : Sim.Stat.Summary.t;
  wear_max_erases : Sim.Stat.Quantiles.t;
  wear_stddev : Sim.Stat.Summary.t;
  write_amp : Sim.Stat.Summary.t;
  lifetime_years : Sim.Stat.Quantiles.t;
  unbounded_lifetimes : int;
  past_wearout : int;
      (** Devices whose estimated lifetime is within the horizon. *)
  faults : int;
  cold_restarts : int;
  blocks_lost : int;
  files_damaged : int;
  by_variant : (string * int) list;  (** Device counts, in [variants] order. *)
  by_workload : (string * int) list;  (** In effective-mix profile order. *)
  probes : Sim.Probe.Snapshot.t;
      (** Per-device probe snapshots merged in index order (empty unless
          {!Sim.Probe.set_metrics} is on). *)
}

val run :
  ?jobs:int ->
  ?on_shard:(done_devices:int -> total:int -> unit) ->
  spec ->
  report
(** Stream the fleet through the Domain pool shard by shard.  [on_shard]
    fires after each shard folds (progress reporting).  The report is
    byte-identical at any [jobs] and any [spec.shard].
    @raise Invalid_argument if {!validate} rejects the spec. *)

val pp_report : Format.formatter -> report -> unit
