(** A whole simulated mobile computer.

    Assembles the devices, the physical storage manager, a file system, and
    a battery according to a {!Config.t}, then replays file-system traces
    against it while accounting time, energy, and battery drain.  This is
    the object every end-to-end experiment manipulates. *)

type t

val create : Config.t -> t

val recycle : t -> Config.t -> t
(** [recycle old cfg] is a machine observationally identical to
    [create cfg] — byte-identical run results for a fixed seed, which the
    test suite asserts — but allocation-lean: when [old]'s flash device has
    exactly the geometry, spec, and endurance [cfg] asks for, its
    per-sector arrays are factory-reset ({!Device.Flash.factory_reset})
    and reused instead of reallocated.  Built for shard-churning fleet
    sweeps ({!Fleet}) that construct and release one machine per simulated
    device.  [old] is dead afterwards when reuse happened: its manager and
    file system still point at the recycled flash.  Falls back to a plain
    [create] when the shapes differ or either machine is conventional. *)

val config : t -> Config.t
val engine : t -> Sim.Engine.t
val dram : t -> Device.Dram.t
val battery : t -> Device.Battery.t
val rng : t -> Sim.Rng.t

val store : t -> Storage.Store.t option
(** The block store — a single manager or a striped multi-card array
    ([None] on a conventional machine).  Replaced by a cold restart. *)

val manager : t -> Storage.Manager.t option
(** The storage manager ([None] on a conventional machine {e or} a
    multi-card array; use {!store} to handle both). *)

val flash : t -> Device.Flash.t option
(** The flash device of a single-card machine ([None] on conventional or
    multi-card machines; use {!flashes} for the per-card devices). *)

val flashes : t -> Device.Flash.t array
(** Every flash card, in card order (empty on a conventional machine). *)

val disk : t -> Device.Disk.t option

val memfs : t -> Fs.Memfs.t option
val ffs : t -> Fs.Ffs.t option

(** {1 Running workloads} *)

val preload : t -> (int * int) list -> unit
(** Install the workload's initial files ((id, size) pairs, under
    ["/data"]) through the cold path, settle the devices, and zero every
    traffic counter and meter: the measured run starts clean. *)

val apply : t -> Trace.Record.t -> Sim.Time.span
(** Apply one trace record through the file system at the engine's current
    instant.  Writes to missing files create them first (traces elide the
    create when it is implicit).  Failed operations (e.g. reads of deleted
    files) are counted and charged nothing. *)

(** {1 Fault injection}

    A {!Sim.Fault.kind} interpreted against the machine's battery and
    storage state at the instant it fires.  While any battery holds,
    battery-backed DRAM rides the event out and nothing is lost — the
    paper's §3.3 safety argument.  When no battery holds, the machine
    cold-restarts: the write buffer's dirty blocks are dropped, the
    storage manager remounts from the surviving flash headers, and the
    namespace is rebuilt over whatever blocks flash still has.  Only
    solid-state machines accept faults (a conventional machine raises
    [Invalid_argument]).

    [Card_eject]/[Card_reinsert] are storage faults rather than power
    faults: they require a parity-striped array (anything else raises
    [Invalid_argument]) and never restart the machine — the array runs
    degraded until the reinserted card's background rebuild completes
    (see {!Storage.Array.eject_card}). *)

type fault_outcome = {
  at : Sim.Time.t;
  kind : Sim.Fault.kind;
  survived_by : [ `Primary_battery | `Backup_battery | `Parity | `Nothing ];
  dirty_at_fault : int;  (** Write-buffer occupancy when the fault hit. *)
  blocks_lost : int;  (** 0 unless [survived_by = `Nothing]. *)
  cold_restart : bool;
  remount : Storage.Manager.remount_report option;  (** Cold restarts only. *)
  remount_span : Sim.Time.span;  (** Header-scan time of the remount. *)
  files_damaged : int;  (** Files that lost at least one block. *)
}

val inject_fault : t -> Sim.Fault.kind -> fault_outcome
(** Fire one fault right now.  On a cold restart the machine's manager and
    file system are replaced; previously obtained handles to them are dead.
    Power/battery state afterwards: a fresh primary after a swap, a
    recharged battery after a restart (the machine is plugged in to come
    back up).
    @raise Invalid_argument on a conventional (disk) machine. *)

val pp_fault_outcome : Format.formatter -> fault_outcome -> unit

type result = {
  ops_applied : int;
  op_errors : int;
  elapsed : Sim.Time.span;  (** Wall-clock of the whole run. *)
  busy : Sim.Time.span;  (** Sum of foreground operation latencies. *)
  read_latency : Sim.Stat.Summary.t;  (** Per-op foreground latency, us. *)
  write_latency : Sim.Stat.Summary.t;
  meta_latency : Sim.Stat.Summary.t;  (** create/delete/truncate, us. *)
  read_hist_us : Sim.Stat.Histogram.t;  (** For percentiles. *)
  write_hist_us : Sim.Stat.Histogram.t;
  energy_j : float;
  battery_fraction_left : float;
  manager_stats : Storage.Manager.stats option;
  lifetime_years : float option;  (** Flash-wear extrapolation. *)
  fault_log : fault_outcome list;  (** Injected faults, in firing order. *)
}

val run_seq :
  ?drain:Sim.Time.span ->
  ?faults:Sim.Fault.schedule ->
  t ->
  Trace.Record.t Seq.t ->
  result
(** Replay a trace (timestamps are shifted so the trace starts "now"),
    then keep the engine running [drain] longer (default 120 s) so pending
    flushes and cleaning settle, then do the final power accounting.

    Each [faults] event fires at [start + after] through {!inject_fault}
    while the replay runs; the trace resumes on the (possibly remounted)
    machine and the outcomes land in [fault_log].  Events scheduled past
    the end of the drain window never fire.

    Records are pulled one at a time and none is retained: replaying a
    streamed ({!Trace.Synth.generate_seq}) or file-backed
    ({!Trace.Format_io.read_seq}) trace keeps peak memory constant in the
    trace length (file-system state aside). *)

val run :
  ?drain:Sim.Time.span ->
  ?faults:Sim.Fault.schedule ->
  t ->
  Trace.Record.t list ->
  result
(** [run_seq] over a materialized trace. *)

val run_compiled :
  ?drain:Sim.Time.span ->
  ?faults:Sim.Fault.schedule ->
  t ->
  Trace.Replay.Compiled.t ->
  result
(** {!run_seq} over a pre-lowered trace ({!Trace.Replay.Compiled}): the
    raw-speed replay path.  Dispatch is pre-resolved — flat array indexing
    instead of per-record variant matching, and a pinned route to ["/data"]
    instead of per-record path formatting and parsing — but every device
    charge, probe observation, and statistic is issued in exactly the order
    the interpreted driver issues them, so the result (and all headline
    metrics) is byte-identical to [run_seq] on the same trace.  Records the
    route cannot serve (disk-backed machines, files outside ["/data"]) fall
    back to the interpreted {!apply} per record; a mid-run cold restart
    invalidates and transparently rebuilds the route. *)

val pp_result : Format.formatter -> result -> unit

(** {1 Multi-seed replication}

    A single seed gives one sample of every stochastic quantity; paper-grade
    claims want the spread.  [run_replicated] runs one complete machine per
    seed on the Domain pool and reduces the headline metrics to mean ± 95 %
    confidence half-widths.  Experiments opt in by wrapping their per-seed
    setup in the [run] callback. *)

type ci = {
  mean : float;
  half_width : float;  (** 95 % confidence half-width (normal approx.). *)
  n : int;
}

type replicated = {
  runs : (int * result) list;  (** Per-seed results, in [seeds] order. *)
  read_us : ci;  (** Across seeds: mean per-op read latency. *)
  write_us : ci;
  energy_j : ci;
}

val run_replicated :
  ?jobs:int -> seeds:int list -> (seed:int -> result) -> replicated
(** [run_replicated ~seeds run] evaluates [run ~seed] for each seed on the
    ambient Domain pool ([~jobs] overrides, [1] is sequential).  [run] must
    build a fresh machine (and trace) from its seed and share nothing:
    results are collected in [seeds] order and are byte-identical at any
    job count.
    @raise Invalid_argument if [seeds] is empty. *)

val pp_ci : Format.formatter -> ci -> unit
val pp_replicated : Format.formatter -> replicated -> unit

(** {1 Power accounting}

    Accounting runs automatically every simulated minute during {!run};
    call {!account} manually around hand-driven operations. *)

val account : t -> unit
(** Charge background power for the interval since the last accounting and
    drain the battery by all energy consumed since then. *)
