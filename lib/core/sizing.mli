(** Apportioning storage between DRAM and flash (Section 4).

    "At some point DRAM and flash memory are likely to attain costs and
    densities comparable to each other ...  How should a system apportion
    its storage capacity between the two technologies?"  The paper's
    answer is workload-dependent: enough DRAM to hold the writable working
    set, flash for everything long-lived.  This module runs that sweep: a
    fixed storage budget split at different DRAM:flash ratios, the same
    workload replayed on each split, and the performance / power /
    endurance consequences tabulated. *)

type point = {
  dram_fraction : float;  (** Share of the budget spent on DRAM. *)
  dram_mb : float;
  flash_mb : float;
  buffer_mb : float;  (** Write-buffer capacity the DRAM afforded. *)
  mean_write_us : float;
  mean_read_us : float;
  write_reduction : float;  (** Flash write traffic avoided. *)
  energy_j : float;
  lifetime_years : float;
  permanent_capacity_mb : float;
      (** Flash space left for long-lived data after cleaning headroom. *)
  out_of_space : bool;  (** The split could not hold the workload. *)
}

val sweep :
  ?budget_dollars:float ->
  ?fractions:float list ->
  ?duration:Sim.Time.span ->
  ?seed:int ->
  ?jobs:int ->
  profile:Trace.Synth.profile ->
  unit ->
  point list
(** Run the workload over each DRAM budget fraction (default 0.1–0.6 in
    steps, $1000 budget, 20 simulated minutes).  Points whose flash could
    not hold the workload's live data are returned with [out_of_space]
    set.

    The points are independent and run on the Domain pool ([~jobs]
    overrides the ambient {!Sim.Pool.default_jobs}); the result list is
    byte-identical at any job count, and [~jobs:1] is the plain sequential
    path. *)

val knee : ?tolerance:float -> point list -> point option
(** The cheapest-DRAM point whose mean write latency is within [tolerance]
    (default [1.2], i.e. 20 %) of the best achieved — the "enough DRAM to
    buffer the writable working set" answer.  Ties break toward the
    smaller DRAM share.
    @raise Invalid_argument if [tolerance < 1.0]. *)

val pp_point : Format.formatter -> point -> unit
