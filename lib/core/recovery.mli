(** Crash and power-failure semantics.

    "The contents of DRAM will not survive a battery failure.  Such
    failures will be relatively common in mobile computers."  The paper's
    answer: battery-backed DRAM rides out ordinary operation and battery
    swaps (the lithium backup), while flash is the ultimate repository —
    so the only data at risk at any instant is what sits in the DRAM write
    buffer, and only if every battery is gone.

    This module evaluates what a sudden power event would cost a machine
    in a given state, and models the paper's holdup arithmetic ("many
    days" on primary, "many hours" on backup). *)

type outcome = {
  dirty_blocks : int;  (** In the write buffer at the instant of failure. *)
  lost_blocks : int;  (** Actually lost (0 while any battery holds). *)
  survived_by : [ `Primary_battery | `Backup_battery | `Nothing ];
  flash_blocks_intact : int;  (** Live flash data is never at risk. *)
}

val power_failure :
  manager:Storage.Manager.t -> battery:Device.Battery.t -> dram_battery_backed:bool ->
  outcome
(** What a power failure right now would do. *)

type holdup = {
  primary_days : float;
      (** Days the primary battery preserves an otherwise idle machine's
          DRAM. *)
  backup_hours : float;
      (** Hours the lithium backup alone does.  Deliberately a different
          unit from [primary_days] — the paper quotes "many days" versus
          "many hours" — and a labelled field so the pair can't be
          destructured in the wrong order. *)
}

val dram_holdup :
  dram:Device.Dram.t -> battery:Device.Battery.t -> holdup
(** The self-refresh-only draw arithmetic behind Section 3.1's retention
    claim. *)

val pp_holdup : Format.formatter -> holdup -> unit

val pp_outcome : Format.formatter -> outcome -> unit
