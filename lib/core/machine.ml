open Sim

type fs_impl = Mem of Fs.Memfs.t | Disk_fs of Fs.Ffs.t

type t = {
  cfg : Config.t;
  engine : Engine.t;
  rng : Rng.t;
  dram : Device.Dram.t;
  flashes : Device.Flash.t array;  (* One per card; empty on conventional. *)
  disk : Device.Disk.t option;
  (* A cold restart (crash + remount) replaces both: the old store and
     file system die with the DRAM contents. *)
  mutable store : Storage.Store.t option;
  mutable fs : fs_impl;
  (* Bumped whenever [fs] is replaced, so pre-resolved file-system routes
     (compiled replay) know to re-resolve. *)
  mutable fs_gen : int;
  battery : Device.Battery.t;
  mutable last_account : Time.t;
  mutable accounted_j : float;  (** Energy already drained from the battery. *)
  mutable errors : int;
}

(* The solid-state assembly, shared by [create] (fresh flash devices) and
   [recycle] (factory-reset flash devices): everything except the flash
   arrays is built from scratch, so a recycled machine is observationally
   identical to a fresh one.  A single card mounts its manager directly
   ([Store.Single]) — exactly the pre-array machine; two or more cards go
   behind a striped [Storage.Array]. *)
let assemble_solid (cfg : Config.t) ~manager_cfg ~striping ~front_cache_blocks
    ~flashes =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:cfg.Config.seed in
  let dram =
    Device.Dram.create ~size_bytes:cfg.Config.dram_bytes
      ~battery_backed:cfg.Config.battery_backed_dram ()
  in
  let battery =
    Device.Battery.of_watt_hours ~backup_wh:cfg.Config.backup_wh cfg.Config.battery_wh
  in
  let store =
    if Array.length flashes = 1 then
      Storage.Store.Single
        (Storage.Manager.create manager_cfg ~engine ~flash:flashes.(0) ~dram)
    else
      Storage.Store.Striped
        (Storage.Array.create ~front_cache_blocks ~striping manager_cfg ~engine
           ~flashes ~dram)
  in
  let memfs = Fs.Memfs.create_fs_store ~store () in
  {
    cfg;
    engine;
    rng;
    dram;
    flashes;
    disk = None;
    store = Some store;
    fs = Mem memfs;
    fs_gen = 0;
    battery;
    last_account = Time.zero;
    accounted_j = 0.0;
    errors = 0;
  }

let create (cfg : Config.t) =
  match cfg.Config.storage with
  | Config.Solid_state
      {
        flash_bytes;
        nbanks;
        flash_spec;
        endurance_override;
        manager;
        cards;
        striping;
        front_cache_blocks;
      } ->
    if cards < 1 then invalid_arg "Machine.create: cards must be at least 1";
    let flashes =
      Array.init cards (fun _ ->
          Device.Flash.create
            (Device.Flash.config ~spec:flash_spec ~nbanks ?endurance_override
               ~size_bytes:flash_bytes ()))
    in
    assemble_solid cfg ~manager_cfg:manager ~striping ~front_cache_blocks ~flashes
  | Config.Conventional { disk_spec; spindown_timeout; ffs } ->
    let engine = Engine.create () in
    let rng = Rng.create ~seed:cfg.Config.seed in
    let dram =
      Device.Dram.create ~size_bytes:cfg.Config.dram_bytes
        ~battery_backed:cfg.Config.battery_backed_dram ()
    in
    let battery =
      Device.Battery.of_watt_hours ~backup_wh:cfg.Config.backup_wh
        cfg.Config.battery_wh
    in
    let disk =
      Device.Disk.create ~spec:disk_spec ?spindown_timeout ~rng:(Rng.split rng) ()
    in
    let fs = Fs.Ffs.create_fs ~config:ffs ~engine ~disk ~dram () in
    {
      cfg;
      engine;
      rng;
      dram;
      flashes = [||];
      disk = Some disk;
      store = None;
      fs = Disk_fs fs;
      fs_gen = 0;
      battery;
      last_account = Time.zero;
      accounted_j = 0.0;
      errors = 0;
    }

let recycle old (cfg : Config.t) =
  match cfg.Config.storage with
  | Config.Solid_state
      {
        flash_bytes;
        nbanks;
        flash_spec;
        endurance_override;
        manager;
        cards;
        striping;
        front_cache_blocks;
      }
    when cards >= 1 && Array.length old.flashes = cards ->
    let desired =
      Device.Flash.config ~spec:flash_spec ~nbanks ?endurance_override
        ~size_bytes:flash_bytes ()
    in
    let matches flash =
      let endurance_matches =
        match endurance_override with
        | Some e -> Device.Flash.endurance flash = e && e > 0
        | None -> Device.Flash.endurance flash = flash_spec.Device.Specs.f_endurance
      in
      Device.Flash.nbanks flash = desired.Device.Flash.nbanks
      && Device.Flash.sectors_per_bank flash = desired.Device.Flash.sectors_per_bank
      && Device.Flash.spec flash = desired.Device.Flash.spec
      && endurance_matches
    in
    if Array.for_all matches old.flashes then begin
      Array.iter Device.Flash.factory_reset old.flashes;
      assemble_solid cfg ~manager_cfg:manager ~striping ~front_cache_blocks
        ~flashes:old.flashes
    end
    else create cfg
  | Config.Solid_state _ | Config.Conventional _ -> create cfg

let config t = t.cfg
let engine t = t.engine
let dram t = t.dram
let battery t = t.battery
let rng t = t.rng
let store t = t.store

let manager t =
  match t.store with
  | Some (Storage.Store.Single m) -> Some m
  | Some (Storage.Store.Striped _) | None -> None

let flash t = if Array.length t.flashes = 1 then Some t.flashes.(0) else None
let flashes t = t.flashes
let disk t = t.disk
let memfs t = match t.fs with Mem m -> Some m | Disk_fs _ -> None
let ffs t = match t.fs with Disk_fs f -> Some f | Mem _ -> None

(* --- FS dispatch ------------------------------------------------------------ *)

let fs_create t path =
  match t.fs with Mem m -> Fs.Memfs.create m path | Disk_fs f -> Fs.Ffs.create f path

let fs_mkdir t path =
  match t.fs with Mem m -> Fs.Memfs.mkdir m path | Disk_fs f -> Fs.Ffs.mkdir f path

let fs_write t path ~offset ~bytes =
  match t.fs with
  | Mem m -> Fs.Memfs.write m path ~offset ~bytes
  | Disk_fs f -> Fs.Ffs.write f path ~offset ~bytes

let fs_read t path ~offset ~bytes =
  match t.fs with
  | Mem m -> Fs.Memfs.read m path ~offset ~bytes
  | Disk_fs f -> Fs.Ffs.read f path ~offset ~bytes

let fs_truncate t path ~size =
  match t.fs with
  | Mem m -> Fs.Memfs.truncate m path ~size
  | Disk_fs f -> Fs.Ffs.truncate f path ~size

let fs_unlink t path =
  match t.fs with Mem m -> Fs.Memfs.unlink m path | Disk_fs f -> Fs.Ffs.unlink f path

let fs_exists t path =
  match t.fs with Mem m -> Fs.Memfs.exists m path | Disk_fs f -> Fs.Ffs.exists f path

let fs_preload t path ~size =
  match t.fs with
  | Mem m -> Fs.Memfs.preload m path ~size
  | Disk_fs f -> Fs.Ffs.preload f path ~size

(* --- Power accounting ---------------------------------------------------------- *)

let total_energy t =
  let meters =
    Device.Power.Meter.total_joules (Device.Dram.meter t.dram)
    +. Array.fold_left
         (fun acc f -> acc +. Device.Power.Meter.total_joules (Device.Flash.meter f))
         0.0 t.flashes
    +.
    match t.disk with
    | Some d -> Device.Power.Meter.total_joules (Device.Disk.meter d)
    | None -> 0.0
  in
  meters

let account t =
  let now = Engine.now t.engine in
  if Time.( < ) t.last_account now then begin
    let dt = Time.diff now t.last_account in
    Device.Dram.charge_idle t.dram dt;
    Array.iter (fun f -> Device.Flash.charge_idle f dt) t.flashes;
    (match t.disk with Some d -> Device.Disk.finish_accounting d ~now | None -> ());
    t.last_account <- now
  end;
  let total = total_energy t in
  let delta = total -. t.accounted_j in
  if delta > 0.0 then begin
    Device.Battery.drain t.battery ~joules:delta;
    t.accounted_j <- total
  end

(* --- Preload -------------------------------------------------------------------- *)

let settle_time t =
  let flash_busy =
    let busy = ref Time.zero in
    Array.iter
      (fun f ->
        for bank = 0 to Device.Flash.nbanks f - 1 do
          busy := Time.max !busy (Device.Flash.bank_busy_until f ~bank)
        done)
      t.flashes;
    !busy
  in
  let disk_busy =
    match t.disk with Some d -> Device.Disk.busy_until d | None -> Time.zero
  in
  Time.max flash_busy disk_busy

let preload t files =
  (match fs_mkdir t "/data" with
  | Ok _ -> ()
  | Error Fs.Fs_error.Eexist -> ()
  | Error e -> Fmt.failwith "Machine.preload: mkdir /data: %a" Fs.Fs_error.pp e);
  List.iter
    (fun (id, size) ->
      match fs_preload t (Fs.Vfs.path_of_file_id id) ~size with
      | Ok () -> ()
      | Error e ->
        Fmt.failwith "Machine.preload: file %d (%d bytes): %a" id size Fs.Fs_error.pp e)
    files;
  (* Let the devices drain, then start the measured run from zero.  The
     "start clean" contract: every counter the run reports — manager,
     write buffer, devices, buffer cache, and the probe registry — is zero
     here.  Solid-state resets route through Manager.reset_traffic (which
     also clears the probe registry); the conventional path clears its own
     pieces and the registry explicitly. *)
  let settle = Time.add (settle_time t) (Time.span_s 1.0) in
  Engine.run_until t.engine settle;
  (match t.store with Some s -> Storage.Store.reset_traffic s | None -> ());
  (match t.disk with Some d -> Device.Disk.reset_stats d | None -> ());
  (match t.fs with
  | Mem _ -> ()
  | Disk_fs f ->
    (* The buffer cache's hit/miss/writeback counters were missed by the
       original reset sweep: preloads left them non-zero, skewing E3's
       hit ratios.  Residency stays (a warm cache is state, not
       accounting). *)
    Fs.Ffs.reset_counters f;
    Device.Dram.reset_stats t.dram;
    Probe.reset ());
  t.accounted_j <- 0.0;
  t.last_account <- Engine.now t.engine;
  t.errors <- 0

(* --- Trace application ------------------------------------------------------------ *)

let p_ops = Probe.counter "machine.ops"
let p_op_errors = Probe.counter "machine.op_errors"
let p_faults = Probe.counter "machine.faults"
let p_read_us = Probe.summary "machine.read_latency_us"
let p_write_us = Probe.summary "machine.write_latency_us"
let p_meta_us = Probe.summary "machine.meta_latency_us"
let ph_read_us = Probe.histogram "machine.read_hist_us"
let ph_write_us = Probe.histogram "machine.write_hist_us"

let op_label = function
  | Trace.Record.Create _ -> "op.create"
  | Trace.Record.Delete _ -> "op.delete"
  | Trace.Record.Truncate _ -> "op.truncate"
  | Trace.Record.Read _ -> "op.read"
  | Trace.Record.Write _ -> "op.write"

let span_or_error t result =
  match result with
  | Ok span -> span
  | Error _ ->
    t.errors <- t.errors + 1;
    Probe.incr p_op_errors;
    Time.span_zero

let apply t record =
  Probe.incr p_ops;
  let path = Fs.Vfs.path_of_file_id (Trace.Record.file record) in
  match record.Trace.Record.op with
  | Trace.Record.Create _ -> span_or_error t (fs_create t path)
  | Trace.Record.Delete _ -> span_or_error t (fs_unlink t path)
  | Trace.Record.Truncate { size; _ } -> span_or_error t (fs_truncate t path ~size)
  | Trace.Record.Read { offset; bytes; _ } ->
    span_or_error t (fs_read t path ~offset ~bytes)
  | Trace.Record.Write { offset; bytes; _ } ->
    let create_span =
      if fs_exists t path then Time.span_zero else span_or_error t (fs_create t path)
    in
    Time.span_add create_span (span_or_error t (fs_write t path ~offset ~bytes))

(* --- Fault injection --------------------------------------------------------- *)

type fault_outcome = {
  at : Time.t;
  kind : Fault.kind;
  survived_by : [ `Primary_battery | `Backup_battery | `Parity | `Nothing ];
  dirty_at_fault : int;
  blocks_lost : int;
  cold_restart : bool;
  remount : Storage.Manager.remount_report option;
  remount_span : Time.span;
  files_damaged : int;
}

let rec mkdir_parents t path =
  match String.rindex_opt path '/' with
  | Some i when i > 0 -> begin
    let parent = String.sub path 0 i in
    mkdir_parents t parent;
    match Fs.Memfs.mkdir t parent with
    | Ok _ | Error Fs.Fs_error.Eexist -> ()
    | Error e -> Fmt.failwith "crash recovery: mkdir %s: %a" parent Fs.Fs_error.pp e
  end
  | Some _ | None -> ()

(* Total loss of DRAM: remount the flash and rebuild the namespace over
   whatever survived.  File names and sizes carry across (a real layout
   stores per-block back-references and metadata logs on flash; the model
   keeps the bookkeeping in one place), but any block whose only copy sat
   in the write buffer is gone, and the file it belonged to is damaged. *)
let cold_crash t =
  let store, fs =
    match (t.store, t.fs) with
    | Some s, Mem fs -> (s, fs)
    | _ -> invalid_arg "Machine: fault injection requires solid-state storage"
  in
  let files = Fs.Memfs.enumerate_sparse fs in
  let fresh_store, span, report = Storage.Store.crash_and_remount store in
  let fresh_fs = Fs.Memfs.create_fs_store ~store:fresh_store () in
  let lost = ref 0 in
  let damaged = ref 0 in
  List.iter
    (fun (path, size, blocks) ->
      let survivors =
        List.filter (fun (_, b) -> Storage.Store.block_exists fresh_store b) blocks
      in
      let nlost = List.length blocks - List.length survivors in
      if nlost > 0 then incr damaged;
      lost := !lost + nlost;
      mkdir_parents fresh_fs path;
      match Fs.Memfs.adopt_sparse fresh_fs path ~size ~blocks:survivors with
      | Ok () -> ()
      | Error e -> Fmt.failwith "crash recovery: adopt %s: %a" path Fs.Fs_error.pp e)
    files;
  t.store <- Some fresh_store;
  t.fs <- Mem fresh_fs;
  t.fs_gen <- t.fs_gen + 1;
  (!lost, !damaged, report, span)

let inject_fault t kind =
  let store =
    match t.store with
    | Some s -> s
    | None -> invalid_arg "Machine: fault injection requires solid-state storage"
  in
  (* Settle the energy books first: battery state at the instant of the
     fault decides what survives. *)
  account t;
  let now = Engine.now t.engine in
  let dirty = (Storage.Store.stats store).Storage.Manager.dirty_blocks in
  Probe.incr p_faults;
  Probe.instant ~name:"fault" ~cat:"fault"
    ~args:
      [
        ("kind", Fmt.str "%a" Fault.pp_kind kind);
        ("dirty_blocks", string_of_int dirty);
      ]
    ~at:now ();
  let dram_backed = Device.Dram.battery_backed t.dram in
  let warm survived_by =
    {
      at = now;
      kind;
      survived_by;
      dirty_at_fault = dirty;
      blocks_lost = 0;
      cold_restart = false;
      remount = None;
      remount_span = Time.span_zero;
      files_damaged = 0;
    }
  in
  let cold () =
    let blocks_lost, files_damaged, report, remount_span = cold_crash t in
    {
      at = now;
      kind;
      survived_by = `Nothing;
      dirty_at_fault = dirty;
      blocks_lost;
      cold_restart = true;
      remount = Some report;
      remount_span;
      files_damaged;
    }
  in
  match kind with
  | Fault.Power_failure ->
    (* External power vanishes.  Battery-backed DRAM rides it out on
       whichever battery holds; otherwise the machine cold-restarts when
       power returns. *)
    if dram_backed && not (Device.Battery.exhausted t.battery) then
      warm
        (if Device.Battery.on_backup t.battery then `Backup_battery
         else `Primary_battery)
    else begin
      let o = cold () in
      Device.Battery.recharge t.battery;
      o
    end
  | Fault.Battery_swap ->
    (* The primary is pulled; only the lithium backup can carry DRAM
       through the gap.  Either way a fresh primary goes in afterwards. *)
    if dram_backed && Device.Battery.backup_joules t.battery > 0.0 then begin
      Device.Battery.swap_primary t.battery;
      warm `Backup_battery
    end
    else begin
      let o = cold () in
      Device.Battery.swap_primary t.battery;
      o
    end
  | Fault.Battery_depletion ->
    (* The gauge lied: the primary dies abruptly.  The backup (if any)
       keeps DRAM alive until the user swaps; with no backup the machine
       is down until external power returns. *)
    Device.Battery.deplete_primary t.battery;
    if dram_backed && Device.Battery.backup_joules t.battery > 0.0 then
      warm `Backup_battery
    else begin
      let o = cold () in
      Device.Battery.recharge t.battery;
      o
    end
  | Fault.Card_eject { card; surprise } -> (
    (* A card leaves the machine.  Power and DRAM are fine — this is a
       storage fault, survivable only by a parity-striped array (the
       array itself rejects anything else). *)
    match store with
    | Storage.Store.Striped a ->
      let r = Storage.Array.eject_card ~surprise a ~card in
      ignore (r : Storage.Array.eject_report);
      (* [blocks_lost] stays 0: even the buffered blocks dropped with the
         card's write buffer remain reconstructible from parity. *)
      warm `Parity
    | Storage.Store.Single _ ->
      invalid_arg "Machine: card eject requires a striped parity array")
  | Fault.Card_reinsert { card } -> (
    match store with
    | Storage.Store.Striped a ->
      Storage.Array.reinsert_card a ~card;
      warm `Parity
    | Storage.Store.Single _ ->
      invalid_arg "Machine: card reinsert requires a striped parity array")

let pp_fault_outcome ppf o =
  Fmt.pf ppf "%a at %a: %s, dirty=%d lost=%d" Fault.pp_kind o.kind Time.pp o.at
    (match o.survived_by with
    | `Primary_battery -> "rode out on primary"
    | `Backup_battery -> "rode out on backup"
    | `Parity -> "survived on parity"
    | `Nothing -> "cold restart")
    o.dirty_at_fault o.blocks_lost;
  match o.remount with
  | Some r ->
    Fmt.pf ppf " (remount %a in %a, %d files damaged)"
      Storage.Manager.pp_remount_report r Time.pp_span o.remount_span o.files_damaged
  | None -> ()

type result = {
  ops_applied : int;
  op_errors : int;
  elapsed : Time.span;
  busy : Time.span;
  read_latency : Stat.Summary.t;
  write_latency : Stat.Summary.t;
  meta_latency : Stat.Summary.t;
  read_hist_us : Stat.Histogram.t;
  write_hist_us : Stat.Histogram.t;
  energy_j : float;
  battery_fraction_left : float;
  manager_stats : Storage.Manager.stats option;
  lifetime_years : float option;
  fault_log : fault_outcome list;
}

let run_seq ?(drain = Time.span_s 120.0) ?(faults = []) t records =
  let started = Engine.now t.engine in
  let fault_log = ref [] in
  List.iter
    (fun e ->
      let at = Time.add started e.Fault.after in
      ignore
        (Engine.schedule t.engine ~at (fun _ ->
             fault_log := inject_fault t e.Fault.kind :: !fault_log)))
    faults;
  let offset = Time.diff started Time.zero in
  let shifted =
    if Time.equal started Time.zero then records
    else
      Seq.map
        (fun r -> { r with Trace.Record.at = Time.add r.Trace.Record.at offset })
        records
  in
  let read_latency = Stat.Summary.create () in
  let write_latency = Stat.Summary.create () in
  let meta_latency = Stat.Summary.create () in
  let read_hist_us = Stat.Histogram.create () in
  let write_hist_us = Stat.Histogram.create () in
  let busy = ref Time.span_zero in
  let ops = ref 0 in
  (* The final record's timestamp bounds the drain window, but a streamed
     trace's length is unknown until it ends: track it as records go by
     instead of scanning the materialized trace.  The periodic power
     accounting (an OS housekeeping task) likewise cannot take an [until]
     bound up front; the chain stops rescheduling once the drain is done. *)
  let last_at = ref started in
  let accounting_done = ref false in
  let rec account_tick engine =
    if not !accounting_done then begin
      account t;
      ignore (Engine.schedule_after engine ~after:(Time.span_s 60.0) account_tick)
    end
  in
  ignore (Engine.schedule_after t.engine ~after:(Time.span_s 60.0) account_tick);
  Trace.Replay.run_seq t.engine shifted ~f:(fun engine record ->
      last_at := record.Trace.Record.at;
      let op_start = Engine.now engine in
      let span = apply t record in
      incr ops;
      busy := Time.span_add !busy span;
      let us = Time.span_to_us span in
      if Probe.timeline_enabled () then
        Probe.span
          ~name:(op_label record.Trace.Record.op)
          ~cat:"op"
          ~args:[ ("file", string_of_int (Trace.Record.file record)) ]
          ~start:op_start ~finish:(Time.add op_start span) ();
      (match record.Trace.Record.op with
      | Trace.Record.Read _ ->
        Stat.Summary.observe read_latency us;
        Stat.Histogram.observe read_hist_us us;
        Probe.observe p_read_us us;
        Probe.observe_hist ph_read_us us
      | Trace.Record.Write _ ->
        Stat.Summary.observe write_latency us;
        Stat.Histogram.observe write_hist_us us;
        Probe.observe p_write_us us;
        Probe.observe_hist ph_write_us us
      | Trace.Record.Create _ | Trace.Record.Delete _ | Trace.Record.Truncate _ ->
        Stat.Summary.observe meta_latency us;
        Probe.observe p_meta_us us);
      (* Closed loop: the (single-threaded) client does not issue its next
         operation until this one completed. *)
      Engine.run_until engine (Time.add (Engine.now engine) span));
  Engine.run_until t.engine (Time.add !last_at drain);
  accounting_done := true;
  account t;
  let elapsed = Time.diff (Engine.now t.engine) started in
  let manager_stats = Option.map Storage.Store.stats t.store in
  let lifetime_years =
    (* On an array the machine dies with its first worn-out card: the
       extrapolated lifetime is the minimum over cards. *)
    match t.store with
    | Some s ->
      Some
        (Array.fold_left
           (fun acc m ->
             Float.min acc
               (Lifetime.of_run ~flash:(Storage.Manager.flash m)
                  ~stats:(Storage.Manager.stats m)
                  ~evenness:(Storage.Manager.wear_evenness m) ~elapsed))
           infinity (Storage.Store.managers s))
    | None -> None
  in
  {
    ops_applied = !ops;
    op_errors = t.errors;
    elapsed;
    busy = !busy;
    read_latency;
    write_latency;
    meta_latency;
    read_hist_us;
    write_hist_us;
    energy_j = total_energy t;
    battery_fraction_left = Device.Battery.fraction_remaining t.battery;
    manager_stats;
    lifetime_years;
    fault_log = List.rev !fault_log;
  }

let run ?drain ?faults t records = run_seq ?drain ?faults t (List.to_seq records)

(* --- Compiled replay ----------------------------------------------------------

   The raw-speed path over a pre-lowered trace: flat array indexing instead
   of per-record variant matching, and pre-resolved file-system routes
   instead of per-record path formatting and parsing.  Charging is
   byte-identical to [run_seq] — the [_in] operations issue the same DRAM
   metadata accesses in the same order as the path walk they replace, and
   every probe/stat observation below mirrors its interpreted twin — so the
   two drivers produce the same result on the same trace, which the test
   suite asserts.  Anything the fast path cannot serve (disk-backed file
   systems, records outside the common "/data" directory) falls back to the
   interpreted [apply] per record. *)

module Compiled = Trace.Replay.Compiled

let tag_label =
  (* Indexed by dispatch tag; same strings as [op_label]. *)
  [| "op.create"; "op.write"; "op.read"; "op.truncate"; "op.delete" |]

(* Leaf names under "/data", interned per file id so the hot loop never
   formats a path.  [Vfs.path_of_file_id id] is "/data/f<id>". *)
let name_cache = ref [||]

let leaf_name id =
  let cache = !name_cache in
  if id >= 0 && id < Array.length cache && String.length cache.(id) > 0 then
    cache.(id)
  else begin
    let name = "f" ^ string_of_int id in
    if id >= 0 then begin
      if id >= Array.length cache then begin
        let bigger = Array.make (max (id + 1) ((2 * Array.length cache) + 64)) "" in
        Array.blit cache 0 bigger 0 (Array.length cache);
        name_cache := bigger
      end;
      !name_cache.(id) <- name
    end;
    name
  end

let run_compiled ?(drain = Time.span_s 120.0) ?(faults = []) t (c : Compiled.t) =
  let started = Engine.now t.engine in
  let fault_log = ref [] in
  List.iter
    (fun e ->
      let at = Time.add started e.Fault.after in
      ignore
        (Engine.schedule t.engine ~at (fun _ ->
             fault_log := inject_fault t e.Fault.kind :: !fault_log)))
    faults;
  let offset_ns = Time.to_ns started in
  let read_latency = Stat.Summary.create () in
  let write_latency = Stat.Summary.create () in
  let meta_latency = Stat.Summary.create () in
  let read_hist_us = Stat.Histogram.create () in
  let write_hist_us = Stat.Histogram.create () in
  let busy = ref Time.span_zero in
  let ops = ref 0 in
  let last_at = ref started in
  let accounting_done = ref false in
  let rec account_tick engine =
    if not !accounting_done then begin
      account t;
      ignore (Engine.schedule_after engine ~after:(Time.span_s 60.0) account_tick)
    end
  in
  ignore (Engine.schedule_after t.engine ~after:(Time.span_s 60.0) account_tick);
  (* The pre-resolved route to "/data".  A cold restart replaces the file
     system out from under us ([t.fs_gen] bumps), so the route is looked up
     lazily against the current generation; resolution is side-effect-free,
     so rebuilding mid-run cannot perturb the meters. *)
  let route_gen = ref (-1) in
  let route_dir = ref None in
  let data_dir m =
    if !route_gen <> t.fs_gen then begin
      route_dir :=
        (match Fs.Memfs.route m "/data" with Ok d -> Some d | Error _ -> None);
      route_gen := t.fs_gen
    end;
    !route_dir
  in
  let at_ns = c.Compiled.at_ns
  and tags = c.Compiled.tag
  and files = c.Compiled.file
  and arg1 = c.Compiled.arg1
  and arg2 = c.Compiled.arg2 in
  for i = 0 to c.Compiled.n - 1 do
    let at = Time.of_ns (at_ns.(i) + offset_ns) in
    if Time.( < ) (Engine.now t.engine) at then Engine.run_until t.engine at;
    last_at := at;
    let op_start = Engine.now t.engine in
    let tag = tags.(i) in
    let span =
      match t.fs with
      | Mem m -> begin
        match data_dir m with
        | Some dir ->
          Probe.incr p_ops;
          let name = leaf_name files.(i) in
          if tag = Compiled.tag_write then begin
            let create_span =
              if Fs.Memfs.exists_in m dir name then Time.span_zero
              else span_or_error t (Fs.Memfs.create_in m dir name)
            in
            Time.span_add create_span
              (span_or_error t
                 (Fs.Memfs.write_in m dir name ~offset:arg1.(i) ~bytes:arg2.(i)))
          end
          else if tag = Compiled.tag_read then
            span_or_error t (Fs.Memfs.read_in m dir name ~offset:arg1.(i) ~bytes:arg2.(i))
          else if tag = Compiled.tag_create then
            span_or_error t (Fs.Memfs.create_in m dir name)
          else if tag = Compiled.tag_truncate then
            span_or_error t (Fs.Memfs.truncate_in m dir name ~size:arg1.(i))
          else span_or_error t (Fs.Memfs.unlink_in m dir name)
        | None -> apply t (Compiled.record c i)
      end
      | Disk_fs _ -> apply t (Compiled.record c i)
    in
    incr ops;
    busy := Time.span_add !busy span;
    let us = Time.span_to_us span in
    if Probe.timeline_enabled () then
      Probe.span ~name:tag_label.(tag) ~cat:"op"
        ~args:[ ("file", string_of_int files.(i)) ]
        ~start:op_start ~finish:(Time.add op_start span) ();
    if tag = Compiled.tag_read then begin
      Stat.Summary.observe read_latency us;
      Stat.Histogram.observe read_hist_us us;
      Probe.observe p_read_us us;
      Probe.observe_hist ph_read_us us
    end
    else if tag = Compiled.tag_write then begin
      Stat.Summary.observe write_latency us;
      Stat.Histogram.observe write_hist_us us;
      Probe.observe p_write_us us;
      Probe.observe_hist ph_write_us us
    end
    else begin
      Stat.Summary.observe meta_latency us;
      Probe.observe p_meta_us us
    end;
    Engine.run_until t.engine (Time.add (Engine.now t.engine) span)
  done;
  Engine.run_until t.engine (Time.add !last_at drain);
  accounting_done := true;
  account t;
  let elapsed = Time.diff (Engine.now t.engine) started in
  let manager_stats = Option.map Storage.Store.stats t.store in
  let lifetime_years =
    (* On an array the machine dies with its first worn-out card: the
       extrapolated lifetime is the minimum over cards. *)
    match t.store with
    | Some s ->
      Some
        (Array.fold_left
           (fun acc m ->
             Float.min acc
               (Lifetime.of_run ~flash:(Storage.Manager.flash m)
                  ~stats:(Storage.Manager.stats m)
                  ~evenness:(Storage.Manager.wear_evenness m) ~elapsed))
           infinity (Storage.Store.managers s))
    | None -> None
  in
  {
    ops_applied = !ops;
    op_errors = t.errors;
    elapsed;
    busy = !busy;
    read_latency;
    write_latency;
    meta_latency;
    read_hist_us;
    write_hist_us;
    energy_j = total_energy t;
    battery_fraction_left = Device.Battery.fraction_remaining t.battery;
    manager_stats;
    lifetime_years;
    fault_log = List.rev !fault_log;
  }

(* --- Multi-seed replication --------------------------------------------------- *)

type ci = { mean : float; half_width : float; n : int }

type replicated = {
  runs : (int * result) list;
  read_us : ci;
  write_us : ci;
  energy_j : ci;
}

let ci_of values =
  let n = List.length values in
  let mean = List.fold_left ( +. ) 0.0 values /. float_of_int n in
  let half_width =
    if n < 2 then 0.0
    else begin
      let ss =
        List.fold_left (fun acc v -> acc +. ((v -. mean) *. (v -. mean))) 0.0 values
      in
      let stddev = sqrt (ss /. float_of_int (n - 1)) in
      (* Normal-approximation 95% interval; fine for the "is the spread
         small relative to the effect" question replication answers here. *)
      1.96 *. stddev /. sqrt (float_of_int n)
    end
  in
  { mean; half_width; n }

let run_replicated ?jobs ~seeds run =
  if seeds = [] then invalid_arg "Machine.run_replicated: no seeds";
  (* Each replica builds its own machine from its seed inside [run]; the
     replicas share nothing, so the pool map is deterministic in [seeds]
     order at any job count. *)
  let runs = Pool.run_map ?jobs (fun seed -> (seed, run ~seed)) seeds in
  let stat f = ci_of (List.map (fun (_, r) -> f r) runs) in
  {
    runs;
    read_us = stat (fun r -> Stat.Summary.mean r.read_latency);
    write_us = stat (fun r -> Stat.Summary.mean r.write_latency);
    energy_j = stat (fun r -> r.energy_j);
  }

let pp_ci ppf c = Fmt.pf ppf "%.1f ±%.1f (n=%d)" c.mean c.half_width c.n

let pp_replicated ppf r =
  Fmt.pf ppf "@[<v>read us: %a@,write us: %a@,energy J: %a@]" pp_ci r.read_us pp_ci
    r.write_us pp_ci r.energy_j

let pp_result ppf r =
  Fmt.pf ppf
    "@[<v>ops=%d errors=%d elapsed=%a busy=%a@,read: %a@,write: %a@,meta: %a@,\
     energy=%.1fJ battery=%.1f%%%a@]"
    r.ops_applied r.op_errors Time.pp_span r.elapsed Time.pp_span r.busy
    Stat.Summary.pp r.read_latency Stat.Summary.pp r.write_latency Stat.Summary.pp
    r.meta_latency r.energy_j
    (100.0 *. r.battery_fraction_left)
    (Fmt.list ~sep:Fmt.nop (fun ppf o -> Fmt.pf ppf "@,fault: %a" pp_fault_outcome o))
    r.fault_log
