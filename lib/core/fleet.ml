open Sim

type variant = {
  v_weight : float;
  v_name : string;
  v_flash_mb : int;
  v_dram_mb : int;
  v_nbanks : int;
  v_flash_spec : Device.Specs.flash_spec;
  v_endurance_override : int option;
  v_buffer_kb : int option;
  v_mix : (float * Trace.Synth.profile) list option;
}

(* Preload footprints bound which workloads a model can host: engineering
   installs ~12 MB of initial files, database ~26 MB, so the palmtop keeps
   to PIM/compile and only the 40 MB machine carries the database load. *)
let default_variants =
  [
    {
      v_weight = 0.5;
      v_name = "slate-20";
      v_flash_mb = 20;
      v_dram_mb = 4;
      v_nbanks = 4;
      v_flash_spec = Device.Specs.intel_flash;
      v_endurance_override = None;
      v_buffer_kb = None;
      v_mix = None;
    };
    {
      v_weight = 0.3;
      v_name = "palmtop-10";
      v_flash_mb = 10;
      v_dram_mb = 2;
      v_nbanks = 2;
      v_flash_spec = Device.Specs.intel_flash;
      v_endurance_override = None;
      v_buffer_kb = Some 128;
      v_mix =
        Some [ (0.7, Trace.Workloads.pim); (0.3, Trace.Workloads.compile) ];
    };
    {
      v_weight = 0.2;
      v_name = "pro-40";
      v_flash_mb = 40;
      v_dram_mb = 8;
      v_nbanks = 8;
      v_flash_spec = Device.Specs.sundisk_flash;
      v_endurance_override = None;
      v_buffer_kb = None;
      v_mix =
        Some
          [
            (0.4, Trace.Workloads.engineering);
            (0.3, Trace.Workloads.database);
            (0.3, Trace.Workloads.compile);
          ];
    };
  ]

type spec = {
  devices : int;
  shard : int;
  base_seed : int;
  duration : Time.span;
  mix : (float * Trace.Synth.profile) list;
  variants : variant list;
  faults_per_device : int;
  fault_kinds : Fault.kind list;
  wearout_horizon_years : float;
}

let default_mix =
  [
    (0.5, Trace.Workloads.engineering);
    (0.3, Trace.Workloads.pim);
    (0.2, Trace.Workloads.compile);
  ]

let spec ?(shard = 256) ?(base_seed = 1993) ?(duration = Time.span_s 600.0)
    ?(mix = default_mix) ?(variants = default_variants)
    ?(faults_per_device = 0)
    ?(fault_kinds = [ Fault.Power_failure; Fault.Battery_swap; Fault.Battery_depletion ])
    ?(wearout_horizon_years = 10.0) ~devices () =
  {
    devices;
    shard;
    base_seed;
    duration;
    mix;
    variants;
    faults_per_device;
    fault_kinds;
    wearout_horizon_years;
  }

let validate_mix what mix =
  if mix = [] then Error (what ^ ": empty workload mix")
  else
    List.fold_left
      (fun acc (w, p) ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          if not (Float.is_finite w) || w <= 0.0 then
            Error
              (Printf.sprintf "%s: weight of %s must be positive" what
                 p.Trace.Synth.name)
          else
            Result.map_error
              (fun m -> Printf.sprintf "%s: profile %s: %s" what p.Trace.Synth.name m)
              (Trace.Synth.validate p))
      (Ok ()) mix

let validate s =
  let ( let* ) = Result.bind in
  let check cond msg = if cond then Ok () else Error msg in
  let* () = check (s.devices >= 1) "devices < 1" in
  let* () = check (s.shard >= 1) "shard < 1" in
  let* () = check (Time.span_to_ns s.duration > 0) "duration <= 0" in
  let* () = check (s.variants <> []) "no variants" in
  let* () =
    List.fold_left
      (fun acc v ->
        let* () = acc in
        let what = "variant " ^ v.v_name in
        let* () =
          check
            (Float.is_finite v.v_weight && v.v_weight > 0.0)
            (what ^ ": weight must be positive")
        in
        let* () = check (v.v_flash_mb >= 1) (what ^ ": flash_mb < 1") in
        let* () = check (v.v_dram_mb >= 1) (what ^ ": dram_mb < 1") in
        let* () = check (v.v_nbanks >= 1) (what ^ ": nbanks < 1") in
        let* () =
          check
            (match v.v_buffer_kb with Some kb -> kb >= 0 | None -> true)
            (what ^ ": negative buffer_kb")
        in
        match v.v_mix with Some m -> validate_mix what m | None -> Ok ())
      (Ok ()) s.variants
  in
  let* () = validate_mix "mix" s.mix in
  let* () = check (s.faults_per_device >= 0) "faults_per_device < 0" in
  let* () =
    check
      (s.faults_per_device = 0 || s.fault_kinds <> [])
      "faults_per_device > 0 with no fault kinds"
  in
  check
    (Float.is_finite s.wearout_horizon_years && s.wearout_horizon_years > 0.0)
    "wearout_horizon_years must be positive"

type device_report = {
  d_index : int;
  d_variant : string;
  d_workload : string;
  d_out_of_space : bool;
  d_ops : int;
  d_op_errors : int;
  d_read_us : float;
  d_write_us : float;
  d_energy_j : float;
  d_max_erases : int;
  d_wear_stddev : float;
  d_write_amp : float;
  d_lifetime_years : float;
  d_faults : int;
  d_cold_restarts : int;
  d_blocks_lost : int;
  d_files_damaged : int;
}

(* Per-device seed family: everything device [i] randomizes is a pure
   split of (base_seed, i, stream).  Streams are fixed small ints, so no
   two decisions anywhere in the fleet share generator state. *)
let stream_variant = 0
let stream_workload = 1
let stream_machine = 2
let stream_trace = 3
let stream_faults = 4

let device_rng s ~index ~stream =
  Rng.split_ix2 (Rng.create ~seed:s.base_seed) ~index ~stream

let pick_weighted rng ~weight items =
  let total = List.fold_left (fun acc x -> acc +. weight x) 0.0 items in
  let u = Rng.float rng total in
  let rec go acc = function
    | [] -> assert false
    | [ x ] -> x  (* float slack: the last candidate absorbs the remainder *)
    | x :: rest ->
      let acc = acc +. weight x in
      if u < acc then x else go acc rest
  in
  go 0.0 items

let effective_mix s v = match v.v_mix with Some m -> m | None -> s.mix

let config_of_variant v ~seed =
  let manager =
    match v.v_buffer_kb with
    | None -> None
    | Some kb ->
      let capacity_blocks = kb * 1024 / v.v_flash_spec.Device.Specs.f_sector_bytes in
      Some
        {
          Storage.Manager.default_config with
          Storage.Manager.buffer =
            {
              Storage.Write_buffer.default_config with
              Storage.Write_buffer.capacity_blocks;
            };
        }
  in
  Config.solid_state ~name:v.v_name ~dram_mb:v.v_dram_mb ~flash_mb:v.v_flash_mb
    ~nbanks:v.v_nbanks ~flash_spec:v.v_flash_spec
    ?endurance_override:v.v_endurance_override ?manager ~seed ()

(* One machine allocation per worker domain, recycled across the shard
   churn.  Safe because [Machine.recycle] is pinned byte-identical to a
   fresh [create] by the test suite — a cache hit cannot change results. *)
let machine_slot : Machine.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let obtain_machine cfg =
  let slot = Domain.DLS.get machine_slot in
  let machine =
    match !slot with
    | Some old -> Machine.recycle old cfg
    | None -> Machine.create cfg
  in
  slot := Some machine;
  machine

let out_of_space_report ~index ~variant ~workload =
  {
    d_index = index;
    d_variant = variant;
    d_workload = workload;
    d_out_of_space = true;
    d_ops = 0;
    d_op_errors = 0;
    d_read_us = 0.0;
    d_write_us = 0.0;
    d_energy_j = 0.0;
    d_max_erases = 0;
    d_wear_stddev = 0.0;
    d_write_amp = 0.0;
    d_lifetime_years = infinity;
    d_faults = 0;
    d_cold_restarts = 0;
    d_blocks_lost = 0;
    d_files_damaged = 0;
  }

(* The full per-device path: pick hardware and workload, build (or
   recycle) the machine, stream-generate and compile the trace, run it on
   the compiled fast path, reduce to scalars.  Returns the probe snapshot
   alongside so [run] can fold fleet-wide metrics; the snapshot is empty
   unless the harness enabled metrics. *)
let simulate_device_full s ~index =
  let variant =
    pick_weighted (device_rng s ~index ~stream:stream_variant)
      ~weight:(fun v -> v.v_weight)
      s.variants
  in
  let _, profile =
    pick_weighted (device_rng s ~index ~stream:stream_workload)
      ~weight:fst (effective_mix s variant)
  in
  let machine_seed =
    Rng.int (device_rng s ~index ~stream:stream_machine) 0x3FFFFFFF
  in
  let cfg = config_of_variant variant ~seed:machine_seed in
  let workload = profile.Trace.Synth.name in
  try
    let machine = obtain_machine cfg in
    let stream =
      Trace.Synth.generate_seq profile
        ~rng:(device_rng s ~index ~stream:stream_trace)
        ~duration:s.duration
    in
    Machine.preload machine stream.Trace.Synth.stream_initial_files;
    let compiled = Trace.Replay.Compiled.compile_seq stream.Trace.Synth.seq in
    let faults =
      if s.faults_per_device = 0 then None
      else
        Some
          (Fault.random
             ~rng:(device_rng s ~index ~stream:stream_faults)
             ~kinds:s.fault_kinds ~n:s.faults_per_device ~over:s.duration ())
    in
    let result = Machine.run_compiled ?faults machine compiled in
    let evenness =
      match Machine.manager machine with
      | Some m -> Some (Storage.Manager.wear_evenness m)
      | None -> None
    in
    let report =
      {
        d_index = index;
        d_variant = variant.v_name;
        d_workload = workload;
        d_out_of_space = false;
        d_ops = result.Machine.ops_applied;
        d_op_errors = result.Machine.op_errors;
        d_read_us = Stat.Summary.mean result.Machine.read_latency;
        d_write_us = Stat.Summary.mean result.Machine.write_latency;
        d_energy_j = result.Machine.energy_j;
        d_max_erases =
          (match evenness with
          | Some e -> e.Storage.Wear.max_erases
          | None -> 0);
        d_wear_stddev =
          (match evenness with
          | Some e -> e.Storage.Wear.stddev_erases
          | None -> 0.0);
        d_write_amp =
          (match result.Machine.manager_stats with
          | Some st -> st.Storage.Manager.write_amplification
          | None -> 0.0);
        d_lifetime_years =
          (match result.Machine.lifetime_years with
          | Some y -> y
          | None -> infinity);
        d_faults = List.length result.Machine.fault_log;
        d_cold_restarts =
          List.length
            (List.filter
               (fun f -> f.Machine.cold_restart)
               result.Machine.fault_log);
        d_blocks_lost =
          List.fold_left
            (fun acc f -> acc + f.Machine.blocks_lost)
            0 result.Machine.fault_log;
        d_files_damaged =
          List.fold_left
            (fun acc f -> acc + f.Machine.files_damaged)
            0 result.Machine.fault_log;
      }
    in
    (report, Probe.snapshot ())
  with Storage.Manager.Out_of_space ->
    (* The workload outgrew the model's flash: a real fleet datum, not a
       crash.  The machine may be mid-operation; drop the cached instance
       so the next device starts from a clean build. *)
    Domain.DLS.get machine_slot := None;
    (out_of_space_report ~index ~variant:variant.v_name ~workload,
     Probe.snapshot ())

let simulate_device s ~index =
  (match validate s with
  | Ok () -> ()
  | Error m -> invalid_arg ("Fleet.simulate_device: " ^ m));
  if index < 0 || index >= s.devices then
    invalid_arg "Fleet.simulate_device: index out of range";
  fst (simulate_device_full s ~index)

type report = {
  devices : int;
  out_of_space : int;
  ops : int;
  op_errors : int;
  read_us : Stat.Summary.t;
  write_us : Stat.Summary.t;
  energy_j : Stat.Summary.t;
  wear_max_erases : Stat.Quantiles.t;
  wear_stddev : Stat.Summary.t;
  write_amp : Stat.Summary.t;
  lifetime_years : Stat.Quantiles.t;
  unbounded_lifetimes : int;
  past_wearout : int;
  faults : int;
  cold_restarts : int;
  blocks_lost : int;
  files_damaged : int;
  by_variant : (string * int) list;
  by_workload : (string * int) list;
  probes : Probe.Snapshot.t;
}

let workload_names s =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add (_, p) =
    let name = p.Trace.Synth.name in
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      out := name :: !out
    end
  in
  List.iter add s.mix;
  List.iter
    (fun v -> match v.v_mix with Some m -> List.iter add m | None -> ())
    s.variants;
  List.rev !out

let run ?jobs ?on_shard s =
  (match validate s with
  | Ok () -> ()
  | Error m -> invalid_arg ("Fleet.run: " ^ m));
  let ops = ref 0 and op_errors = ref 0 in
  let out_of_space = ref 0 in
  let read_us = Stat.Summary.create () in
  let write_us = Stat.Summary.create () in
  let energy_j = Stat.Summary.create () in
  let wear_max_erases = Stat.Quantiles.create () in
  let wear_stddev = Stat.Summary.create () in
  let write_amp = Stat.Summary.create () in
  let lifetime_years = Stat.Quantiles.create () in
  let unbounded = ref 0 and past_wearout = ref 0 in
  let faults = ref 0 and cold_restarts = ref 0 in
  let blocks_lost = ref 0 and files_damaged = ref 0 in
  let by_variant = Hashtbl.create 8 and by_workload = Hashtbl.create 8 in
  let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)) in
  let probes = ref Probe.Snapshot.empty in
  let absorb (d, snap) =
    bump by_variant d.d_variant;
    bump by_workload d.d_workload;
    if d.d_out_of_space then incr out_of_space
    else begin
      ops := !ops + d.d_ops;
      op_errors := !op_errors + d.d_op_errors;
      Stat.Summary.observe read_us d.d_read_us;
      Stat.Summary.observe write_us d.d_write_us;
      Stat.Summary.observe energy_j d.d_energy_j;
      Stat.Quantiles.observe wear_max_erases (float_of_int d.d_max_erases);
      Stat.Summary.observe wear_stddev d.d_wear_stddev;
      Stat.Summary.observe write_amp d.d_write_amp;
      if Float.is_finite d.d_lifetime_years then begin
        Stat.Quantiles.observe lifetime_years d.d_lifetime_years;
        if d.d_lifetime_years <= s.wearout_horizon_years then incr past_wearout
      end
      else incr unbounded;
      faults := !faults + d.d_faults;
      cold_restarts := !cold_restarts + d.d_cold_restarts;
      blocks_lost := !blocks_lost + d.d_blocks_lost;
      files_damaged := !files_damaged + d.d_files_damaged
    end;
    probes := Probe.Snapshot.merge !probes snap
  in
  (* Stream the fleet: one shard of devices exists at a time.  Within a
     shard the pool preserves submission order, across shards the loop is
     sequential, and [absorb] folds in index order — so the aggregates are
     byte-identical at any job count and any shard size, and peak heap is
     O(shard x jobs) regardless of [s.devices]. *)
  let start = ref 0 in
  while !start < s.devices do
    let stop = Stdlib.min s.devices (!start + s.shard) in
    let lo = !start in
    let indices = List.init (stop - lo) (fun i -> lo + i) in
    let shard_reports =
      Pool.run_map ?jobs (fun index -> simulate_device_full s ~index) indices
    in
    List.iter absorb shard_reports;
    start := stop;
    match on_shard with
    | Some f -> f ~done_devices:stop ~total:s.devices
    | None -> ()
  done;
  {
    devices = s.devices;
    out_of_space = !out_of_space;
    ops = !ops;
    op_errors = !op_errors;
    read_us;
    write_us;
    energy_j;
    wear_max_erases;
    wear_stddev;
    write_amp;
    lifetime_years;
    unbounded_lifetimes = !unbounded;
    past_wearout = !past_wearout;
    faults = !faults;
    cold_restarts = !cold_restarts;
    blocks_lost = !blocks_lost;
    files_damaged = !files_damaged;
    by_variant =
      List.filter_map
        (fun v ->
          Option.map (fun n -> (v.v_name, n)) (Hashtbl.find_opt by_variant v.v_name))
        s.variants;
    by_workload =
      List.filter_map
        (fun name ->
          Option.map (fun n -> (name, n)) (Hashtbl.find_opt by_workload name))
        (workload_names s);
    probes = !probes;
  }

let pp_report ppf r =
  let counts ppf l =
    Fmt.(list ~sep:(any " ") (fun ppf (name, n) -> Fmt.pf ppf "%s=%d" name n)) ppf l
  in
  Fmt.pf ppf "fleet: %d devices (%d out of space)@," r.devices r.out_of_space;
  Fmt.pf ppf "  by variant:  %a@," counts r.by_variant;
  Fmt.pf ppf "  by workload: %a@," counts r.by_workload;
  Fmt.pf ppf "  ops: %d applied, %d errors@," r.ops r.op_errors;
  Fmt.pf ppf "  read us/op:  mean of device means %.2f (stddev %.2f)@,"
    (Stat.Summary.mean r.read_us)
    (Stat.Summary.stddev r.read_us);
  Fmt.pf ppf "  write us/op: mean of device means %.2f (stddev %.2f)@,"
    (Stat.Summary.mean r.write_us)
    (Stat.Summary.stddev r.write_us);
  Fmt.pf ppf "  energy J:    mean %.3f (stddev %.3f)@,"
    (Stat.Summary.mean r.energy_j)
    (Stat.Summary.stddev r.energy_j);
  Fmt.pf ppf "  wear (max erases/device): p50 %.0f  p90 %.0f  p99 %.0f@,"
    (Stat.Quantiles.quantile r.wear_max_erases 0.5)
    (Stat.Quantiles.quantile r.wear_max_erases 0.9)
    (Stat.Quantiles.quantile r.wear_max_erases 0.99);
  Fmt.pf ppf "  write amplification: mean %.3f@," (Stat.Summary.mean r.write_amp);
  (if Stat.Quantiles.count r.lifetime_years > 0 then
     Fmt.pf ppf "  lifetime years: p10 %.1f  p50 %.1f  (%d devices unbounded)@,"
       (Stat.Quantiles.quantile r.lifetime_years 0.1)
       (Stat.Quantiles.quantile r.lifetime_years 0.5)
       r.unbounded_lifetimes
   else Fmt.pf ppf "  lifetime years: all %d devices unbounded@," r.unbounded_lifetimes);
  Fmt.pf ppf "  past wear-out within horizon: %d (%.2f%%)@," r.past_wearout
    (100.0 *. float_of_int r.past_wearout /. float_of_int (Stdlib.max 1 r.devices));
  Fmt.pf ppf "  faults: %d injected, %d cold restarts, %d blocks lost, %d files damaged"
    r.faults r.cold_restarts r.blocks_lost r.files_damaged
