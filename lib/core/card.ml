open Sim

type checkpoint = (string * int * Storage.Manager.block list) list

type state = {
  manager : Storage.Manager.t;
  fs : Fs.Memfs.t;
}

type t = {
  card_name : string;
  engine : Engine.t;
  host_dram : Device.Dram.t;
  card_flash : Device.Flash.t;
  mutable state : state option;  (** None while ejected. *)
  (* While ejected, the last manager stands in for the card's on-flash
     sector headers (the device model does not store payloads); insertion
     remounts from it. *)
  mutable dormant : Storage.Manager.t option;
  (* The namespace checkpoint written to the card at the last orderly
     eject; conceptually stored in reserved sectors on the card, so it
     travels with it. *)
  mutable checkpoint : checkpoint option;
}

let create ?(name = "flash-card") ?(nbanks = 2) ?(spec = Device.Specs.intel_flash)
    ?(manager = Storage.Manager.default_config) ~size_mb ~engine ~host_dram () =
  let card_flash =
    Device.Flash.create
      (Device.Flash.config ~spec ~nbanks ~size_bytes:(size_mb * Units.mib) ())
  in
  let mgr = Storage.Manager.create manager ~engine ~flash:card_flash ~dram:host_dram in
  let fs = Fs.Memfs.create_fs ~manager:mgr () in
  {
    card_name = name;
    engine;
    host_dram;
    card_flash;
    state = Some { manager = mgr; fs };
    dormant = None;
    checkpoint = None;
  }

let name t = t.card_name
let flash t = t.card_flash
let size_bytes t = Device.Flash.size_bytes t.card_flash
let inserted t = t.state <> None

let state t =
  match t.state with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Card %s: not inserted" t.card_name)

let fs t = (state t).fs
let manager t = (state t).manager

type eject_report = {
  flushed_blocks : int;
  lost_blocks : int;
  eject_latency : Time.span;
}

let pp_eject_report ppf r =
  Fmt.pf ppf "flushed=%d lost=%d latency=%a" r.flushed_blocks r.lost_blocks Time.pp_span
    r.eject_latency

(* Writing the checkpoint charges the card for its metadata bytes. *)
let write_checkpoint t st =
  let entries = Fs.Memfs.enumerate st.fs in
  let bytes =
    List.fold_left
      (fun acc (path, _, blocks) -> acc + String.length path + 16 + (8 * List.length blocks))
      64 entries
  in
  let cursor = ref (Engine.now t.engine) in
  let sector_bytes = Device.Flash.sector_bytes t.card_flash in
  let sectors = Units.ceil_div bytes sector_bytes in
  (* The reserved checkpoint area is rewritten in place: model its cost as
     [sectors] erase+program cycles on bank 0's first sectors. *)
  for s = 0 to sectors - 1 do
    (match Device.Flash.read t.card_flash ~now:!cursor ~sector:s ~bytes:16 with
    | Ok op -> cursor := op.Device.Flash.finish
    | Error _ -> ());
    cursor := Time.add !cursor (Time.span_scale Device.Specs.(intel_flash.f_erase) 1.0);
    cursor :=
      Time.add !cursor
        (Device.Specs.access_time Device.Specs.(intel_flash.f_write) ~bytes:sector_bytes)
  done;
  t.checkpoint <- Some entries;
  Time.diff !cursor (Engine.now t.engine)

let eject ?(surprise = false) t =
  let st = state t in
  let before = Storage.Manager.stats st.manager in
  let dirty = before.Storage.Manager.dirty_blocks in
  let report =
    if surprise then begin
      (* The buffer (host DRAM) still holds the card's dirty data: gone.
         Detaching also cancels the pending writeback timer — without it
         the dormant manager would keep programming a card that is no
         longer in the slot. *)
      let lost = Storage.Manager.detach st.manager in
      { flushed_blocks = 0; lost_blocks = lost; eject_latency = Time.span_zero }
    end
    else begin
      let flush_span = Storage.Manager.flush_all st.manager in
      let ckpt_span = write_checkpoint t st in
      ignore (Storage.Manager.detach st.manager);
      {
        flushed_blocks = dirty;
        lost_blocks = 0;
        eject_latency = Time.span_add flush_span ckpt_span;
      }
    end
  in
  t.dormant <- Some st.manager;
  t.state <- None;
  report

type insert_report = { scan_time : Time.span; blocks_recovered : int }

let pp_insert_report ppf r =
  Fmt.pf ppf "scan=%a recovered=%d" Time.pp_span r.scan_time r.blocks_recovered

let insert t =
  if inserted t then invalid_arg (Printf.sprintf "Card %s: already inserted" t.card_name);
  let dormant =
    match t.dormant with
    | Some m -> m
    | None -> invalid_arg (Printf.sprintf "Card %s: never initialized" t.card_name)
  in
  (* Scan the card's sector headers and rebuild the storage manager. *)
  let manager, scan_time, report = Storage.Manager.crash_and_remount dormant in
  let fs = Fs.Memfs.create_fs ~manager () in
  (* Rebuild the namespace from the checkpoint the card carries; files
     whose blocks did not survive (dirty at a surprise eject, never
     flushed) are dropped. *)
  let adopted = Hashtbl.create 64 in
  (match t.checkpoint with
  | None -> ()
  | Some entries ->
    List.iter
      (fun (path, size, blocks) ->
        if List.for_all (Storage.Manager.block_exists manager) blocks then begin
          (* Recreate parent directories along the way. *)
          (match Fs.Path.parse path with
          | Ok components ->
            let rec mkdirs prefix = function
              | [] | [ _ ] -> ()
              | dir :: rest ->
                let p = prefix ^ "/" ^ dir in
                (match Fs.Memfs.mkdir fs p with Ok _ | Error _ -> ());
                mkdirs p rest
            in
            mkdirs "" components
          | Error _ -> ());
          match Fs.Memfs.adopt fs path ~size ~blocks with
          | Ok () -> List.iter (fun b -> Hashtbl.replace adopted b ()) blocks
          | Error _ -> ()
        end)
      entries);
  (* Any surviving blocks the checkpoint does not reach are scavenged into
     numbered files, so no recovered data is silently dropped. *)
  let bs = Storage.Manager.block_bytes manager in
  let counter = ref 0 in
  List.iter
    (fun b ->
      if (not (Hashtbl.mem adopted b)) && Storage.Manager.segment_of_block manager b <> None
      then begin
        let path = Printf.sprintf "/recovered-%d" !counter in
        incr counter;
        match Fs.Memfs.adopt fs path ~size:bs ~blocks:[ b ] with
        | Ok () -> ()
        | Error _ -> ()
      end)
    (Storage.Manager.known_blocks manager);
  t.state <- Some { manager; fs };
  t.dormant <- None;
  { scan_time; blocks_recovered = report.Storage.Manager.live_recovered }
