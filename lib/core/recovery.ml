type outcome = {
  dirty_blocks : int;
  lost_blocks : int;
  survived_by : [ `Primary_battery | `Backup_battery | `Nothing ];
  flash_blocks_intact : int;
}

let power_failure ~manager ~battery ~dram_battery_backed =
  let stats = Storage.Manager.stats manager in
  let dirty = stats.Storage.Manager.dirty_blocks in
  let survived_by =
    if not dram_battery_backed then `Nothing
    else if Device.Battery.exhausted battery then `Nothing
    else if Device.Battery.on_backup battery then `Backup_battery
    else `Primary_battery
  in
  {
    dirty_blocks = dirty;
    lost_blocks = (match survived_by with `Nothing -> dirty | _ -> 0);
    survived_by;
    flash_blocks_intact = stats.Storage.Manager.live_blocks;
  }

type holdup = { primary_days : float; backup_hours : float }

let dram_holdup ~dram ~battery =
  let spec = Device.Dram.spec dram in
  let refresh_w =
    Device.Power.watts_of_mw
      (spec.Device.Specs.d_refresh_mw_per_mb
      *. Sim.Units.to_mib (Device.Dram.size_bytes dram))
  in
  let primary_days =
    Device.Battery.primary_joules battery /. refresh_w /. 86_400.0
  in
  let backup_hours = Device.Battery.backup_joules battery /. refresh_w /. 3_600.0 in
  { primary_days; backup_hours }

let pp_holdup ppf h =
  Fmt.pf ppf "%.1f days on primary, %.1f h on backup" h.primary_days
    h.backup_hours

let pp_outcome ppf o =
  Fmt.pf ppf "dirty=%d lost=%d survived_by=%s flash_intact=%d" o.dirty_blocks
    o.lost_blocks
    (match o.survived_by with
    | `Primary_battery -> "primary"
    | `Backup_battery -> "backup"
    | `Nothing -> "nothing")
    o.flash_blocks_intact
