(** Whole-machine configurations.

    A configuration describes a mobile computer: how much battery-backed
    DRAM, what stable storage (flash for the paper's solid-state
    organization, a small disk for the conventional baseline), the storage
    manager's policies, and the battery.  Experiments mostly start from
    {!solid_state} or {!conventional} and override fields. *)

type storage =
  | Solid_state of {
      flash_bytes : int;  (** Per card: total flash is [cards * flash_bytes]. *)
      nbanks : int;  (** Per card. *)
      flash_spec : Device.Specs.flash_spec;
      endurance_override : int option;
      manager : Storage.Manager.config;
      cards : int;
          (** PCMCIA flash cards behind a striped {!Storage.Array}.
              [cards = 1] mounts the manager directly — byte-identical to
              the pre-array machine (enforced by test and CI). *)
      striping : Storage.Striping.policy;  (** Ignored when [cards = 1]. *)
      front_cache_blocks : int;
          (** Shared front cache over the array; 0 = off.  Ignored when
              [cards = 1]. *)
    }
  | Conventional of {
      disk_spec : Device.Specs.disk_spec;
      spindown_timeout : Sim.Time.span option;
      ffs : Fs.Ffs.config;
    }

type t = {
  name : string;
  dram_bytes : int;
  battery_backed_dram : bool;
  storage : storage;
  battery_wh : float;  (** Primary battery capacity. *)
  backup_wh : float;  (** Lithium backup for DRAM retention. *)
  seed : int;
}

val solid_state :
  ?name:string ->
  ?dram_mb:int ->
  ?flash_mb:int ->
  ?nbanks:int ->
  ?manager:Storage.Manager.config ->
  ?flash_spec:Device.Specs.flash_spec ->
  ?endurance_override:int ->
  ?cards:int ->
  ?striping:Storage.Striping.policy ->
  ?front_cache_blocks:int ->
  ?battery_wh:float ->
  ?backup_wh:float ->
  ?seed:int ->
  unit ->
  t
(** The paper's machine: defaults 4 MB DRAM, 20 MB Intel-style flash in
    4 banks, default manager policies, 10 Wh primary + 0.5 Wh backup.
    [cards] (default 1) scales out to a striped multi-card array —
    [flash_mb] is then per card — striped by [striping] (default
    round-robin, 4-block strips) behind an optional shared front cache. *)

val conventional :
  ?name:string ->
  ?dram_mb:int ->
  ?disk_spec:Device.Specs.disk_spec ->
  ?spindown_timeout:Sim.Time.span ->
  ?ffs:Fs.Ffs.config ->
  ?battery_wh:float ->
  ?seed:int ->
  unit ->
  t
(** The baseline: same DRAM, an HP KittyHawk-class disk with a 10 s
    spin-down timeout, a classic FFS with a 256 KB buffer cache. *)

val dollars : t -> float
(** Approximate 1993 cost of the machine's storage, from the Section 2
    price points — used by the sizing experiment. *)
