(** Synthetic file-system workload generator.

    The paper's Section 3.3 argument rests on measured Unix workload
    properties published in the BSD trace study (Ousterhout et al., SOSP-10)
    and the Sprite study (Baker et al., SOSP-13): most files are small; a
    large share of written bytes goes to short-lived files or is overwritten
    within tens of seconds; reads outnumber writes; file popularity is
    heavily skewed.  This generator reproduces those summary statistics from
    a parameterized profile, so experiments can sweep them.

    The generator is deterministic given a profile, an {!Sim.Rng.t}, and a
    duration. *)

type profile = {
  name : string;
  ops_per_second : float;  (** Mean arrival rate of operations. *)
  read_fraction : float;  (** Among data operations. *)
  full_read_fraction : float;
      (** Among reads: the share that scans the whole file sequentially —
          the dominant access pattern the BSD study measured. *)
  io_bytes : Sim.Distribution.t;  (** Transfer size per read/write. *)
  new_file_fraction : float;
      (** Among write events: the share that creates a fresh file and writes
          it in full (temporaries, spool files, saved documents). *)
  new_file_bytes : Sim.Distribution.t;
  short_lived_fraction : float;
      (** Among fresh files: the share deleted again after a short life —
          the Sprite "most new bytes die young" property. *)
  short_lifetime_s : Sim.Distribution.t;  (** Lifetime of those files, seconds. *)
  whole_file_rewrite_fraction : float;
      (** Among write events: truncate-and-rewrite of an existing file (the
          editor save pattern); kills all the file's previous bytes. *)
  overwrite_bias : float;
      (** Among in-place updates: probability of hitting the same region as
          the previous update to that file (log append, counter update)
          rather than a uniformly random block. *)
  population : int;  (** Long-lived files present at time zero. *)
  file_bytes : Sim.Distribution.t;  (** Their initial sizes. *)
  zipf_s : float;  (** Popularity skew across the population. *)
}

val validate : profile -> (unit, string) result
(** Check that fractions are probabilities and counts are positive. *)

type t = {
  profile : profile;
  initial_files : (Record.file_id * int) list;
      (** Files (id, size) assumed present — installed programs and old data.
          Loading them is setup, not traced traffic. *)
  records : Record.t list;  (** Time-ordered operations. *)
}

type stream = {
  stream_profile : profile;
  stream_initial_files : (Record.file_id * int) list;
      (** Eager — sized by the profile's population, not the duration. *)
  seq : Record.t Seq.t;
      (** Time-ordered operations, produced lazily as the consumer pulls:
          memory stays constant in the trace duration.  The sequence is
          {e ephemeral} — it drives the generator's RNG, so consume it at
          most once; re-evaluating a prefix replays different randomness.
          For multiple passes, call {!generate_seq} again with a fresh RNG
          of the same seed (generation is deterministic), or materialize
          with {!generate}. *)
}

val generate_seq : profile -> rng:Sim.Rng.t -> duration:Sim.Time.span -> stream
(** Generate a trace covering [duration] of simulated time, streaming.
    Buffered lookahead is bounded by a single arrival's burst, so traces
    arbitrarily longer than RAM can be generated, written, or replayed.
    @raise Invalid_argument if [validate] fails. *)

val generate : profile -> rng:Sim.Rng.t -> duration:Sim.Time.span -> t
(** [generate_seq] materialized to a list, in the same record order with
    byte-identical records.  Convenient for analyses that need several
    passes; memory grows linearly with [duration].
    @raise Invalid_argument if [validate] fails. *)

val first_fresh_file : t -> Record.file_id
(** File ids at or above this value were created during the trace. *)

val stream_first_fresh_file : stream -> Record.file_id
(** Same boundary, for a streamed trace. *)
