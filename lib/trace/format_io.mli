(** Text serialization of traces.

    One record per line:
    {v
    <ns> create <file>
    <ns> write <file> <offset> <bytes>
    <ns> read <file> <offset> <bytes>
    <ns> trunc <file> <size>
    <ns> delete <file>
    v}
    Lines starting with ['#'] and blank lines are ignored on input.

    A trace may carry its preload set as directives that are comments to
    the record parser but recognized by {!parse_init}:
    {v
    #init <file> <size>
    v} *)

val to_line : Record.t -> string

val of_line : string -> (Record.t option, string) result
(** [Ok None] for comments and blank lines; [Error msg] on malformed
    input. *)

(** {1 Streaming}

    These process one record at a time and retain none of them, so traces
    far larger than RAM can be written, scanned, and replayed.  The list
    functions below are wrappers over them. *)

val write_seq : out_channel -> Record.t Seq.t -> int
(** Write records as they are pulled from the sequence; returns how many
    were written. *)

val write_file_seq :
  ?initial_files:(Record.file_id * int) list -> string -> Record.t Seq.t -> int
(** Init directives first, then the streamed records; returns the record
    count. *)

val fold_channel :
  ?on_init:(Record.file_id * int -> unit) ->
  in_channel ->
  init:'a ->
  f:('a -> Record.t -> 'a) ->
  ('a, string) result
(** Fold over every record to end of channel in constant memory.  With
    [on_init], init directives are reported through it (wherever they
    appear); otherwise they are skipped as comments.  The error message
    includes the line number. *)

val read_seq :
  ?on_init:(Record.file_id * int -> unit) -> in_channel -> Record.t Seq.t
(** Lazy record sequence over a channel; comments and blanks are skipped,
    init directives go to [on_init] if given.  Ephemeral — it advances the
    channel, so consume it at most once, within the channel's lifetime.
    @raise Failure on malformed input (use {!fold_channel} to validate
    first when the input is untrusted). *)

val write_channel : out_channel -> Record.t list -> unit

val read_channel : in_channel -> (Record.t list, string) result
(** Reads to end of channel.  The error message includes the line number. *)

val init_directive : Record.file_id -> int -> string
(** ["#init <file> <size>"] — a file assumed present before the trace. *)

val parse_init : string -> (Record.file_id * int) option
(** Recognize an init directive (and nothing else). *)

val write_file : ?initial_files:(Record.file_id * int) list -> string -> Record.t list -> unit
(** Writes init directives first, then the records. *)

val read_file : string -> (Record.t list, string) result

val read_file_with_init :
  string -> ((Record.file_id * int) list * Record.t list, string) result
(** Like {!read_file}, also collecting the init directives. *)
