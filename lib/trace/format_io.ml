open Sim

let to_line r =
  let ns = Time.to_ns r.Record.at in
  match r.Record.op with
  | Record.Create { file } -> Printf.sprintf "%d create %d" ns file
  | Record.Write { file; offset; bytes } ->
    Printf.sprintf "%d write %d %d %d" ns file offset bytes
  | Record.Read { file; offset; bytes } ->
    Printf.sprintf "%d read %d %d %d" ns file offset bytes
  | Record.Truncate { file; size } -> Printf.sprintf "%d trunc %d %d" ns file size
  | Record.Delete { file } -> Printf.sprintf "%d delete %d" ns file

let of_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else begin
    let fields = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
    let int s =
      match int_of_string_opt s with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "not an integer: %S" s)
    in
    let ( let* ) = Result.bind in
    let make at op = Ok (Some { Record.at = Time.of_ns at; op }) in
    match fields with
    | [ at; "create"; file ] ->
      let* at = int at in
      let* file = int file in
      make at (Record.Create { file })
    | [ at; "write"; file; offset; bytes ] ->
      let* at = int at in
      let* file = int file in
      let* offset = int offset in
      let* bytes = int bytes in
      make at (Record.Write { file; offset; bytes })
    | [ at; "read"; file; offset; bytes ] ->
      let* at = int at in
      let* file = int file in
      let* offset = int offset in
      let* bytes = int bytes in
      make at (Record.Read { file; offset; bytes })
    | [ at; "trunc"; file; size ] ->
      let* at = int at in
      let* file = int file in
      let* size = int size in
      make at (Record.Truncate { file; size })
    | [ at; "delete"; file ] ->
      let* at = int at in
      let* file = int file in
      make at (Record.Delete { file })
    | _ -> Error (Printf.sprintf "unrecognized record: %S" line)
  end

let init_directive file size = Printf.sprintf "#init %d %d" file size

let parse_init line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "#init"; file; size ] -> begin
    match (int_of_string_opt file, int_of_string_opt size) with
    | Some file, Some size -> Some (file, size)
    | _ -> None
  end
  | _ -> None

(* --- Streaming writes --------------------------------------------------------- *)

let write_seq oc records =
  let n = ref 0 in
  Seq.iter
    (fun r ->
      output_string oc (to_line r);
      output_char oc '\n';
      incr n)
    records;
  !n

let write_channel oc records = ignore (write_seq oc (List.to_seq records))

let write_file_seq ?(initial_files = []) path records =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun (file, size) ->
          output_string oc (init_directive file size);
          output_char oc '\n')
        initial_files;
      write_seq oc records)

let write_file ?initial_files path records =
  ignore (write_file_seq ?initial_files path (List.to_seq records))

(* --- Streaming reads ---------------------------------------------------------- *)

let fold_channel ?on_init ic ~init ~f =
  let rec go lineno acc =
    match In_channel.input_line ic with
    | None -> Ok acc
    | Some line -> begin
      match (on_init, parse_init line) with
      | Some handle, Some directive ->
        handle directive;
        go (lineno + 1) acc
      | _ -> begin
        match of_line line with
        | Ok None -> go (lineno + 1) acc
        | Ok (Some r) -> go (lineno + 1) (f acc r)
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      end
    end
  in
  go 1 init

let read_seq ?on_init ic =
  let lineno = ref 0 in
  let rec next () =
    match In_channel.input_line ic with
    | None -> Seq.Nil
    | Some line -> begin
      incr lineno;
      match (on_init, parse_init line) with
      | Some handle, Some directive ->
        handle directive;
        next ()
      | _ -> begin
        match of_line line with
        | Ok None -> next ()
        | Ok (Some r) -> Seq.Cons (r, next)
        | Error msg -> failwith (Printf.sprintf "line %d: %s" !lineno msg)
      end
    end
  in
  next

let read_channel ic =
  Result.map List.rev
    (fold_channel ic ~init:[] ~f:(fun acc r -> r :: acc))

let read_file path = In_channel.with_open_text path read_channel

let read_file_with_init path =
  In_channel.with_open_text path (fun ic ->
      let inits = ref [] in
      match
        fold_channel ic
          ~on_init:(fun (file, size) -> inits := (file, size) :: !inits)
          ~init:[]
          ~f:(fun acc r -> r :: acc)
      with
      | Ok records -> Ok (List.rev !inits, List.rev records)
      | Error msg -> Error msg)
