open Sim

type summary = {
  ops : int;
  creates : int;
  reads : int;
  writes : int;
  truncates : int;
  deletes : int;
  bytes_read : int;
  bytes_written : int;
  distinct_files : int;
  duration : Time.span;
}

let summarize_seq records =
  let files = Hashtbl.create 256 in
  let creates = ref 0
  and reads = ref 0
  and writes = ref 0
  and truncates = ref 0
  and deletes = ref 0
  and bytes_read = ref 0
  and bytes_written = ref 0
  and ops = ref 0
  and last = ref Time.zero in
  Seq.iter
    (fun r ->
      incr ops;
      Hashtbl.replace files (Record.file r) ();
      last := Time.max !last r.Record.at;
      match r.Record.op with
      | Record.Create _ -> incr creates
      | Record.Read { bytes; _ } ->
        incr reads;
        bytes_read := !bytes_read + bytes
      | Record.Write { bytes; _ } ->
        incr writes;
        bytes_written := !bytes_written + bytes
      | Record.Truncate _ -> incr truncates
      | Record.Delete _ -> incr deletes)
    records;
  {
    ops = !ops;
    creates = !creates;
    reads = !reads;
    writes = !writes;
    truncates = !truncates;
    deletes = !deletes;
    bytes_read = !bytes_read;
    bytes_written = !bytes_written;
    distinct_files = Hashtbl.length files;
    duration = Time.diff !last Time.zero;
  }

let summarize records = summarize_seq (List.to_seq records)

let write_rate_bytes_per_s s =
  let secs = Time.span_to_s s.duration in
  if secs <= 0.0 then 0.0 else float_of_int s.bytes_written /. secs

type death = { written_bytes : int; dead_bytes : int; dead_fraction : float }

let block = 512

let write_death records ~window =
  let window_ns = Time.span_to_ns window in
  (* file -> (block index -> birth time of the data currently there) *)
  let births : (int, (int, Time.t) Hashtbl.t) Hashtbl.t = Hashtbl.create 256 in
  let written = ref 0 and dead = ref 0 in
  let file_births file =
    match Hashtbl.find_opt births file with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 16 in
      Hashtbl.replace births file h;
      h
  in
  let kill ~at birth =
    if Time.to_ns at - Time.to_ns birth <= window_ns then dead := !dead + block
  in
  let kill_block ~at h b =
    match Hashtbl.find_opt h b with
    | Some birth ->
      kill ~at birth;
      Hashtbl.remove h b
    | None -> ()
  in
  List.iter
    (fun r ->
      let at = r.Record.at in
      match r.Record.op with
      | Record.Write { file; offset; bytes } ->
        written := !written + bytes;
        let h = file_births file in
        let first = offset / block and last = (offset + bytes - 1) / block in
        for b = first to last do
          kill_block ~at h b;
          Hashtbl.replace h b at
        done
      | Record.Truncate { file; size } ->
        let h = file_births file in
        let keep = Units.ceil_div size block in
        let victims =
          Hashtbl.fold (fun b _ acc -> if b >= keep then b :: acc else acc) h []
        in
        List.iter (kill_block ~at h) victims
      | Record.Delete { file } -> begin
        match Hashtbl.find_opt births file with
        | Some h ->
          Hashtbl.iter (fun _ birth -> kill ~at birth) h;
          Hashtbl.remove births file
        | None -> ()
      end
      | Record.Create _ | Record.Read _ -> ())
    records;
  let written_bytes = !written in
  let dead_bytes = min !dead written_bytes in
  {
    written_bytes;
    dead_bytes;
    dead_fraction =
      (if written_bytes = 0 then 0.0
       else float_of_int dead_bytes /. float_of_int written_bytes);
  }

let pp_summary ppf s =
  Fmt.pf ppf
    "ops=%d creates=%d reads=%d writes=%d truncs=%d deletes=%d read=%a written=%a \
     files=%d span=%a"
    s.ops s.creates s.reads s.writes s.truncates s.deletes Fmt.byte_size s.bytes_read
    Fmt.byte_size s.bytes_written s.distinct_files Time.pp_span s.duration
