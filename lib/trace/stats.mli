(** Trace analysis.

    Computes from a trace the summary statistics the paper's argument
    depends on — in particular the *write-death profile*: what fraction of
    written bytes is overwritten, truncated away, or deleted within a time
    window.  That fraction is the theoretical ceiling on the write traffic a
    battery-backed DRAM buffer with that writeback delay can absorb
    (Section 3.3, citing Baker et al.). *)

type summary = {
  ops : int;
  creates : int;
  reads : int;
  writes : int;
  truncates : int;
  deletes : int;
  bytes_read : int;
  bytes_written : int;
  distinct_files : int;
  duration : Sim.Time.span;  (** Last record timestamp. *)
}

val summarize : Record.t list -> summary

val summarize_seq : Record.t Seq.t -> summary
(** Single streaming pass; memory stays constant (distinct-file tracking
    aside) however long the trace is. *)

val write_rate_bytes_per_s : summary -> float

type death = {
  written_bytes : int;  (** Total bytes of write payload. *)
  dead_bytes : int;
      (** Bytes whose data was superseded (overwritten / truncated /
          deleted) within the window of their write. *)
  dead_fraction : float;
}

val write_death : Record.t list -> window:Sim.Time.span -> death
(** Block-granularity (512 B) write-death analysis.  Bytes still live at the
    end of the trace are counted as surviving. *)

val pp_summary : Format.formatter -> summary -> unit
