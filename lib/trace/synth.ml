open Sim

type profile = {
  name : string;
  ops_per_second : float;
  read_fraction : float;
  full_read_fraction : float;
  io_bytes : Distribution.t;
  new_file_fraction : float;
  new_file_bytes : Distribution.t;
  short_lived_fraction : float;
  short_lifetime_s : Distribution.t;
  whole_file_rewrite_fraction : float;
  overwrite_bias : float;
  population : int;
  file_bytes : Distribution.t;
  zipf_s : float;
}

let validate p =
  let prob name v =
    if v < 0.0 || v > 1.0 then Error (Printf.sprintf "%s must be in [0,1], got %g" name v)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = prob "read_fraction" p.read_fraction in
  let* () = prob "full_read_fraction" p.full_read_fraction in
  let* () = prob "new_file_fraction" p.new_file_fraction in
  let* () = prob "short_lived_fraction" p.short_lived_fraction in
  let* () = prob "whole_file_rewrite_fraction" p.whole_file_rewrite_fraction in
  let* () = prob "overwrite_bias" p.overwrite_bias in
  let* () =
    if p.new_file_fraction +. p.whole_file_rewrite_fraction > 1.0 then
      Error "new_file_fraction + whole_file_rewrite_fraction > 1"
    else Ok ()
  in
  let* () = if p.population <= 0 then Error "population must be positive" else Ok () in
  if p.ops_per_second <= 0.0 then Error "ops_per_second must be positive" else Ok ()

type t = {
  profile : profile;
  initial_files : (Record.file_id * int) list;
  records : Record.t list;
}

type stream = {
  stream_profile : profile;
  stream_initial_files : (Record.file_id * int) list;
  seq : Record.t Seq.t;
}

let block = 512

let align offset = offset - (offset mod block)

(* Mutable generation state.  Emitted records wait in [buf] until the
   consumer pulls them, so memory stays bounded by one arrival's burst (a
   whole-file write) no matter how long the trace runs. *)
type state = {
  rng : Rng.t;
  zipf : Distribution.Zipf.t;
  sizes : (int, int) Hashtbl.t;  (* live file -> size *)
  last_write : (int, int) Hashtbl.t;  (* file -> offset of previous update *)
  deletions : int Event_queue.t;  (* scheduled deaths of short-lived files *)
  mutable next_id : int;
  buf : Record.t Queue.t;
  mutable now : Time.t;
  mutable finished : bool;
}

let emit st ~at op = Queue.add { Record.at; op } st.buf

(* Sizes are clamped: 1993 mobile files are small, and unbounded lognormal
   tails would let one freak multi-megabyte file dominate every mean. *)
let max_file_bytes = 256 * 1024
let max_io_bytes = 64 * 1024

let sample_bytes ?(cap = max_file_bytes) dist rng ~min_bytes =
  min cap (max min_bytes (Distribution.sample_int dist rng))

(* Emit Create + sequential whole-file writes; returns the file id. *)
let create_and_write st ~at ~size ~io_dist =
  let file = st.next_id in
  st.next_id <- st.next_id + 1;
  Hashtbl.replace st.sizes file size;
  emit st ~at (Record.Create { file });
  let rec chunks offset =
    if offset < size then begin
      let n = min (size - offset) (sample_bytes ~cap:max_io_bytes io_dist st.rng ~min_bytes:block) in
      emit st ~at (Record.Write { file; offset; bytes = n });
      chunks (offset + n)
    end
  in
  chunks 0;
  file

let flush_deletions st ~upto =
  let rec go () =
    if
      (not (Event_queue.is_empty st.deletions))
      && Time.( <= ) (Event_queue.peek_time_exn st.deletions) upto
    then begin
      let at = Event_queue.peek_time_exn st.deletions in
      let file = Event_queue.pop_exn st.deletions in
      if Hashtbl.mem st.sizes file then begin
        Hashtbl.remove st.sizes file;
        Hashtbl.remove st.last_write file;
        emit st ~at (Record.Delete { file })
      end;
      go ()
    end
  in
  go ()

let pick_population_file st = Distribution.Zipf.sample st.zipf st.rng

let do_read p st ~at =
  let file = pick_population_file st in
  match Hashtbl.find_opt st.sizes file with
  | None -> ()  (* population files are never deleted; defensive *)
  | Some size when size >= block ->
    if Rng.bernoulli st.rng ~p:p.full_read_fraction then begin
      (* The dominant BSD pattern: read the whole file sequentially. *)
      let rec chunks offset =
        if offset < size then begin
          let n =
            min (size - offset)
              (sample_bytes ~cap:max_io_bytes p.io_bytes st.rng ~min_bytes:block)
          in
          emit st ~at (Record.Read { file; offset; bytes = n });
          chunks (offset + n)
        end
      in
      chunks 0
    end
    else begin
      let bytes =
        min size (sample_bytes ~cap:max_io_bytes p.io_bytes st.rng ~min_bytes:block)
      in
      let offset = align (Rng.int st.rng (max 1 (size - bytes + 1))) in
      emit st ~at (Record.Read { file; offset; bytes })
    end
  | Some _ -> ()

let do_new_file p st ~at =
  let size = sample_bytes p.new_file_bytes st.rng ~min_bytes:block in
  let file = create_and_write st ~at ~size ~io_dist:p.io_bytes in
  if Rng.bernoulli st.rng ~p:p.short_lived_fraction then begin
    let life = Time.span_s (Float.max 0.1 (Distribution.sample p.short_lifetime_s st.rng)) in
    ignore (Event_queue.add st.deletions ~at:(Time.add at life) file)
  end

let do_whole_file_rewrite p st ~at =
  let file = pick_population_file st in
  match Hashtbl.find_opt st.sizes file with
  | None -> ()
  | Some old_size ->
    emit st ~at (Record.Truncate { file; size = 0 });
    let size = max block (min (2 * old_size) (max block old_size)) in
    Hashtbl.replace st.sizes file size;
    let rec chunks offset =
      if offset < size then begin
        let n = min (size - offset) (sample_bytes ~cap:max_io_bytes p.io_bytes st.rng ~min_bytes:block) in
        emit st ~at (Record.Write { file; offset; bytes = n });
        chunks (offset + n)
      end
    in
    chunks 0

let do_update p st ~at =
  let file = pick_population_file st in
  match Hashtbl.find_opt st.sizes file with
  | None -> ()
  | Some size ->
    let bytes = min (max block size) (sample_bytes ~cap:max_io_bytes p.io_bytes st.rng ~min_bytes:block) in
    let offset =
      match Hashtbl.find_opt st.last_write file with
      | Some prev when Rng.bernoulli st.rng ~p:p.overwrite_bias -> prev
      | Some _ | None -> align (Rng.int st.rng (max 1 size))
    in
    Hashtbl.replace st.last_write file offset;
    if offset + bytes > size then Hashtbl.replace st.sizes file (offset + bytes);
    emit st ~at (Record.Write { file; offset; bytes })

(* Advance the state machine by one arrival, buffering whatever it emits.
   Samples the RNG in exactly the order the eager generator always did, so
   the streamed trace is byte-identical to the materialized one. *)
let step p st ~interarrival ~stop =
  let gap = Time.span_s (Float.max 1e-6 (Distribution.sample interarrival st.rng)) in
  let at = Time.add st.now gap in
  if Time.( < ) stop at then begin
    flush_deletions st ~upto:stop;
    st.finished <- true
  end
  else begin
    flush_deletions st ~upto:at;
    let x = Rng.unit_float st.rng in
    if x < p.read_fraction then do_read p st ~at
    else begin
      let y = Rng.unit_float st.rng in
      if y < p.new_file_fraction then do_new_file p st ~at
      else if y < p.new_file_fraction +. p.whole_file_rewrite_fraction then
        do_whole_file_rewrite p st ~at
      else do_update p st ~at
    end;
    st.now <- at
  end

let generate_seq p ~rng ~duration =
  (match validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Synth.generate: " ^ msg));
  let st =
    {
      rng;
      zipf = Distribution.Zipf.create ~n:p.population ~s:p.zipf_s;
      sizes = Hashtbl.create 1024;
      last_write = Hashtbl.create 1024;
      deletions = Event_queue.create ();
      next_id = p.population;
      buf = Queue.create ();
      now = Time.zero;
      finished = false;
    }
  in
  let initial_files =
    List.init p.population (fun file ->
        let size = sample_bytes p.file_bytes rng ~min_bytes:block in
        Hashtbl.replace st.sizes file size;
        (file, size))
  in
  let interarrival = Distribution.Exponential { mean = 1.0 /. p.ops_per_second } in
  let stop = Time.add Time.zero duration in
  let rec next () =
    if not (Queue.is_empty st.buf) then Seq.Cons (Queue.pop st.buf, next)
    else if st.finished then Seq.Nil
    else begin
      step p st ~interarrival ~stop;
      next ()
    end
  in
  { stream_profile = p; stream_initial_files = initial_files; seq = next }

let generate p ~rng ~duration =
  let s = generate_seq p ~rng ~duration in
  {
    profile = s.stream_profile;
    initial_files = s.stream_initial_files;
    records = List.of_seq s.seq;
  }

let first_fresh_file t = t.profile.population
let stream_first_fresh_file s = s.stream_profile.population
