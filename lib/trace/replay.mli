(** Trace replay.

    Drives a time-ordered trace through a consumer while keeping a
    simulation engine's clock in step, so that background activity scheduled
    on the engine (writeback timers, cleaners, battery accounting)
    interleaves with foreground operations at the right instants.

    The sequence variants pull records on demand and retain none of them:
    replay of a streamed or file-backed trace runs in constant memory no
    matter how long the trace is.  The list variants are thin wrappers. *)

val run_seq :
  Sim.Engine.t -> Record.t Seq.t -> f:(Sim.Engine.t -> Record.t -> unit) -> unit
(** For each record in order: run every engine event due before the record's
    timestamp, advance the clock to it, and apply [f].  Records stamped in
    the past (before the current clock) are applied at the current clock
    time — a foreground operation cannot begin before its predecessor's
    bookkeeping completed. *)

val run :
  Sim.Engine.t -> Record.t list -> f:(Sim.Engine.t -> Record.t -> unit) -> unit
(** [run_seq] over a materialized trace. *)

val run_all_seq :
  Sim.Engine.t ->
  Record.t Seq.t ->
  f:(Sim.Engine.t -> Record.t -> unit) ->
  drain_until:Sim.Time.t ->
  unit
(** [run_seq] followed by running the engine's agenda up to [drain_until] —
    letting pending flushes and cleaners finish after the last foreground
    operation. *)

val run_all :
  Sim.Engine.t ->
  Record.t list ->
  f:(Sim.Engine.t -> Record.t -> unit) ->
  drain_until:Sim.Time.t ->
  unit
(** [run_all_seq] over a materialized trace. *)
