(** Trace replay.

    Drives a time-ordered trace through a consumer while keeping a
    simulation engine's clock in step, so that background activity scheduled
    on the engine (writeback timers, cleaners, battery accounting)
    interleaves with foreground operations at the right instants.

    The sequence variants pull records on demand and retain none of them:
    replay of a streamed or file-backed trace runs in constant memory no
    matter how long the trace is.  The list variants are thin wrappers. *)

(** A trace lowered to flat struct-of-arrays form for the compiled replay
    fast path: consumers index int arrays instead of matching on
    {!Record.op} and allocating per-record closures.  Compile once, replay
    many times — the arrays are immutable by convention. *)
module Compiled : sig
  type t = private {
    n : int;
    at_ns : int array;  (** Record instants, in trace time (ns). *)
    tag : int array;  (** One of the [tag_*] values below. *)
    file : int array;
    arg1 : int array;  (** offset (write/read) or size (truncate); else 0. *)
    arg2 : int array;  (** bytes (write/read); else 0. *)
  }
  (** Fields are exposed (read-only) so replay loops index the arrays
      directly; construct only through {!compile_seq}/{!compile}. *)

  val compile_seq : Record.t Seq.t -> t
  (** Materialize and lower a trace.  Unlike {!run_seq}, this holds the
      whole trace (5 ints per record). *)

  val compile : Record.t list -> t

  val length : t -> int

  val record : t -> int -> Record.t
  (** Reconstruct record [i] (for fallback paths and tests). *)

  (** Dense dispatch tags; [tag] is always one of these. *)

  val tag_create : int
  val tag_write : int
  val tag_read : int
  val tag_truncate : int
  val tag_delete : int
end

val run_seq :
  Sim.Engine.t -> Record.t Seq.t -> f:(Sim.Engine.t -> Record.t -> unit) -> unit
(** For each record in order: run every engine event due before the record's
    timestamp, advance the clock to it, and apply [f].  Records stamped in
    the past (before the current clock) are applied at the current clock
    time — a foreground operation cannot begin before its predecessor's
    bookkeeping completed. *)

val run :
  Sim.Engine.t -> Record.t list -> f:(Sim.Engine.t -> Record.t -> unit) -> unit
(** [run_seq] over a materialized trace. *)

val run_all_seq :
  Sim.Engine.t ->
  Record.t Seq.t ->
  f:(Sim.Engine.t -> Record.t -> unit) ->
  drain_until:Sim.Time.t ->
  unit
(** [run_seq] followed by running the engine's agenda up to [drain_until] —
    letting pending flushes and cleaners finish after the last foreground
    operation. *)

val run_all :
  Sim.Engine.t ->
  Record.t list ->
  f:(Sim.Engine.t -> Record.t -> unit) ->
  drain_until:Sim.Time.t ->
  unit
(** [run_all_seq] over a materialized trace. *)
