open Sim

(* --- Compiled traces ------------------------------------------------------

   A trace lowered to flat, pre-sized struct-of-arrays form: one int per
   field per record, no constructors, no per-record boxing.  Replay loops
   index these arrays directly instead of matching on [Record.op] and
   allocating a closure environment per record — the dispatch tag doubles
   as the index into whatever handler table the consumer pre-resolves. *)

module Compiled = struct
  (* Dispatch tags, densely numbered for table dispatch. *)
  let tag_create = 0
  let tag_write = 1
  let tag_read = 2
  let tag_truncate = 3
  let tag_delete = 4

  type t = {
    n : int;
    at_ns : int array;  (** Record instants, in trace time (ns). *)
    tag : int array;  (** One of the [tag_*] values. *)
    file : int array;
    arg1 : int array;  (** offset (write/read) or size (truncate); else 0. *)
    arg2 : int array;  (** bytes (write/read); else 0. *)
  }

  let length c = c.n

  let tag_of_op = function
    | Record.Create _ -> tag_create
    | Record.Write _ -> tag_write
    | Record.Read _ -> tag_read
    | Record.Truncate _ -> tag_truncate
    | Record.Delete _ -> tag_delete

  let compile_seq records =
    let cap = ref 1024 in
    let at_ns = ref (Array.make !cap 0) in
    let tag = ref (Array.make !cap 0) in
    let file = ref (Array.make !cap 0) in
    let arg1 = ref (Array.make !cap 0) in
    let arg2 = ref (Array.make !cap 0) in
    let n = ref 0 in
    let grow () =
      let ncap = 2 * !cap in
      let extend a = let na = Array.make ncap 0 in Array.blit !a 0 na 0 !n; a := na in
      extend at_ns; extend tag; extend file; extend arg1; extend arg2;
      cap := ncap
    in
    Seq.iter
      (fun r ->
        if !n = !cap then grow ();
        let i = !n in
        !at_ns.(i) <- Time.to_ns r.Record.at;
        !tag.(i) <- tag_of_op r.Record.op;
        !file.(i) <- Record.file r;
        (match r.Record.op with
        | Record.Write { offset; bytes; _ } | Record.Read { offset; bytes; _ } ->
          !arg1.(i) <- offset;
          !arg2.(i) <- bytes
        | Record.Truncate { size; _ } -> !arg1.(i) <- size
        | Record.Create _ | Record.Delete _ -> ());
        incr n)
      records;
    let shrink a = if Array.length !a = !n then !a else Array.sub !a 0 !n in
    {
      n = !n;
      at_ns = shrink at_ns;
      tag = shrink tag;
      file = shrink file;
      arg1 = shrink arg1;
      arg2 = shrink arg2;
    }

  let compile records = compile_seq (List.to_seq records)

  (* Reconstruct a record (fallback paths and round-trip tests). *)
  let record c i =
    let file = c.file.(i) in
    let op =
      match c.tag.(i) with
      | 0 -> Record.Create { file }
      | 1 -> Record.Write { file; offset = c.arg1.(i); bytes = c.arg2.(i) }
      | 2 -> Record.Read { file; offset = c.arg1.(i); bytes = c.arg2.(i) }
      | 3 -> Record.Truncate { file; size = c.arg1.(i) }
      | _ -> Record.Delete { file }
    in
    { Record.at = Time.of_ns c.at_ns.(i); op }
end

let run_seq engine records ~f =
  Seq.iter
    (fun r ->
      let at = r.Record.at in
      if Time.( < ) (Engine.now engine) at then Engine.run_until engine at;
      f engine r)
    records

let run engine records ~f = run_seq engine (List.to_seq records) ~f

let run_all_seq engine records ~f ~drain_until =
  run_seq engine records ~f;
  Engine.run_until engine drain_until

let run_all engine records ~f ~drain_until =
  run_all_seq engine (List.to_seq records) ~f ~drain_until
