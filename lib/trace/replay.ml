open Sim

let run_seq engine records ~f =
  Seq.iter
    (fun r ->
      let at = r.Record.at in
      if Time.( < ) (Engine.now engine) at then Engine.run_until engine at;
      f engine r)
    records

let run engine records ~f = run_seq engine (List.to_seq records) ~f

let run_all_seq engine records ~f ~drain_until =
  run_seq engine records ~f;
  Engine.run_until engine drain_until

let run_all engine records ~f ~drain_until =
  run_all_seq engine (List.to_seq records) ~f ~drain_until
