open Sim

type config = {
  spec : Specs.flash_spec;
  nbanks : int;
  sectors_per_bank : int;
  endurance_override : int option;
}

let config ?(spec = Specs.intel_flash) ?(nbanks = 1) ?endurance_override ~size_bytes () =
  if size_bytes <= 0 then invalid_arg "Flash.config: size_bytes <= 0";
  if nbanks <= 0 then invalid_arg "Flash.config: nbanks <= 0";
  let sectors = Units.ceil_div size_bytes spec.Specs.f_sector_bytes in
  let sectors_per_bank = Units.ceil_div sectors nbanks in
  { spec; nbanks; sectors_per_bank; endurance_override }

type sector_state = {
  mutable erase_count : int;
  mutable programmed : int;  (** Bytes programmed since the last erase. *)
  mutable bad : bool;
}

type t = {
  cfg : config;
  endurance : int;
  active_w : float; (* constant for a fixed geometry; hoisted out of [service] *)
  idle_w : float;
  sectors : sector_state array;
  bank_busy : Time.t array;
  meter : Power.Meter.t;
  c_reads : Stat.Counter.t;
  c_programs : Stat.Counter.t;
  c_erases : Stat.Counter.t;
  c_bytes_read : Stat.Counter.t;
  c_bytes_programmed : Stat.Counter.t;
  mutable wait_ns : int;
  mutable read_wait_ns : int;
  read_wait_hist : Stat.Histogram.t;
}

let create cfg =
  if cfg.nbanks <= 0 || cfg.sectors_per_bank <= 0 then
    invalid_arg "Flash.create: empty geometry";
  let n = cfg.nbanks * cfg.sectors_per_bank in
  let bytes = n * cfg.spec.Specs.f_sector_bytes in
  {
    cfg;
    active_w =
      Power.watts_of_mw (cfg.spec.Specs.f_active_mw_per_mb *. Units.to_mib bytes);
    idle_w = Power.watts_of_mw (cfg.spec.Specs.f_idle_mw_per_mb *. Units.to_mib bytes);
    endurance =
      (match cfg.endurance_override with
      | Some e ->
        if e <= 0 then invalid_arg "Flash.create: endurance <= 0";
        e
      | None -> cfg.spec.Specs.f_endurance);
    sectors = Array.init n (fun _ -> { erase_count = 0; programmed = 0; bad = false });
    bank_busy = Array.make cfg.nbanks Time.zero;
    meter = Power.Meter.create ~label:"flash";
    c_reads = Stat.Counter.create ();
    c_programs = Stat.Counter.create ();
    c_erases = Stat.Counter.create ();
    c_bytes_read = Stat.Counter.create ();
    c_bytes_programmed = Stat.Counter.create ();
    wait_ns = 0;
    read_wait_ns = 0;
    read_wait_hist = Stat.Histogram.create ();
  }

let nbanks t = t.cfg.nbanks
let sectors_per_bank t = t.cfg.sectors_per_bank
let nsectors t = Array.length t.sectors
let sector_bytes t = t.cfg.spec.Specs.f_sector_bytes
let size_bytes t = nsectors t * sector_bytes t
let spec t = t.cfg.spec
let endurance t = t.endurance

let bank_of_sector t sector =
  if sector < 0 || sector >= nsectors t then invalid_arg "Flash.bank_of_sector";
  sector / t.cfg.sectors_per_bank

type op = { start : Time.t; finish : Time.t }

let waited ~now op = Time.diff op.start now
let latency ~now op = Time.diff op.finish now

type error = Bad_sector | Overwrite_without_erase

let pp_error ppf = function
  | Bad_sector -> Fmt.string ppf "bad sector (worn out)"
  | Overwrite_without_erase -> Fmt.string ppf "overwrite without erase"

let state t sector =
  if sector < 0 || sector >= nsectors t then invalid_arg "Flash: sector out of range";
  t.sectors.(sector)

let op_name = function
  | `Read -> "flash.read"
  | `Program -> "flash.program"
  | `Erase -> "flash.erase"

(* Serialize the request behind its bank and account time and energy. *)
let service t ~now ~sector ~op dur =
  let bank = bank_of_sector t sector in
  let start = Time.max now t.bank_busy.(bank) in
  let finish = Time.add start dur in
  t.bank_busy.(bank) <- finish;
  let w = Time.span_to_ns (Time.diff start now) in
  t.wait_ns <- t.wait_ns + w;
  (match op with
  | `Read ->
    t.read_wait_ns <- t.read_wait_ns + w;
    Stat.Histogram.observe t.read_wait_hist (float_of_int w /. 1e3)
  | `Program | `Erase -> ());
  if Probe.timeline_enabled () then
    Probe.span ~name:(op_name op) ~cat:"flash" ~tid:bank
      ~args:[ ("sector", string_of_int sector) ]
      ~start ~finish ();
  Power.Meter.charge_power t.meter ~watts:t.active_w dur;
  { start; finish }

let check_bytes t bytes =
  if bytes < 0 || bytes > sector_bytes t then invalid_arg "Flash: bytes out of range"

let p_reads = Probe.counter "device.flash.reads"
let p_programs = Probe.counter "device.flash.programs"
let p_erases = Probe.counter "device.flash.erases"
let p_bytes_read = Probe.counter "device.flash.bytes_read"
let p_bytes_programmed = Probe.counter "device.flash.bytes_programmed"

let read t ~now ~sector ~bytes =
  check_bytes t bytes;
  let s = state t sector in
  if s.bad then Error Bad_sector
  else begin
    let dur = Specs.access_time t.cfg.spec.Specs.f_read ~bytes in
    let op = service t ~now ~sector ~op:`Read dur in
    Stat.Counter.incr t.c_reads;
    Stat.Counter.add t.c_bytes_read bytes;
    Probe.incr p_reads;
    Probe.add p_bytes_read bytes;
    Ok op
  end

let program t ~now ~sector ~bytes =
  check_bytes t bytes;
  let s = state t sector in
  if s.bad then Error Bad_sector
  else if s.programmed + bytes > sector_bytes t then Error Overwrite_without_erase
  else begin
    let dur = Specs.access_time t.cfg.spec.Specs.f_write ~bytes in
    let op = service t ~now ~sector ~op:`Program dur in
    s.programmed <- s.programmed + bytes;
    Stat.Counter.incr t.c_programs;
    Stat.Counter.add t.c_bytes_programmed bytes;
    Probe.incr p_programs;
    Probe.add p_bytes_programmed bytes;
    Ok op
  end

let erase t ~now ~sector =
  let s = state t sector in
  if s.bad then Error Bad_sector
  else begin
    let op = service t ~now ~sector ~op:`Erase t.cfg.spec.Specs.f_erase in
    s.erase_count <- s.erase_count + 1;
    s.programmed <- 0;
    if s.erase_count >= t.endurance then s.bad <- true;
    Stat.Counter.incr t.c_erases;
    Probe.incr p_erases;
    Ok op
  end

let bank_busy_until t ~bank =
  if bank < 0 || bank >= nbanks t then invalid_arg "Flash.bank_busy_until";
  t.bank_busy.(bank)

let erase_count t ~sector = (state t sector).erase_count
let is_bad t ~sector = (state t sector).bad
let programmed_bytes t ~sector = (state t sector).programmed

let bad_sectors t =
  Array.fold_left (fun acc s -> if s.bad then acc + 1 else acc) 0 t.sectors

let live_capacity_bytes t = (nsectors t - bad_sectors t) * sector_bytes t

let wear_summary t =
  let summary = Stat.Summary.create () in
  Array.iter (fun s -> Stat.Summary.observe summary (float_of_int s.erase_count)) t.sectors;
  summary

let meter t = t.meter

let charge_idle t d = Power.Meter.charge_background t.meter ~watts:t.idle_w d
let reads t = Stat.Counter.value t.c_reads
let programs t = Stat.Counter.value t.c_programs
let erases t = Stat.Counter.value t.c_erases
let bytes_read t = Stat.Counter.value t.c_bytes_read
let bytes_programmed t = Stat.Counter.value t.c_bytes_programmed
let total_wait t = Time.span_ns t.wait_ns
let read_wait t = Time.span_ns t.read_wait_ns
let read_wait_us t = t.read_wait_hist

let factory_reset t =
  (* Back to the state [create] built: pristine sectors, idle banks, zero
     meters.  The sector-state and bank arrays — the device's dominant
     allocation — are reused in place, which is the point: shard-churning
     fleet drivers recycle one device across many simulated machines. *)
  Array.iter
    (fun s ->
      s.erase_count <- 0;
      s.programmed <- 0;
      s.bad <- false)
    t.sectors;
  Array.fill t.bank_busy 0 (Array.length t.bank_busy) Time.zero;
  t.wait_ns <- 0;
  t.read_wait_ns <- 0;
  Stat.Histogram.reset t.read_wait_hist;
  Stat.Counter.reset t.c_reads;
  Stat.Counter.reset t.c_programs;
  Stat.Counter.reset t.c_erases;
  Stat.Counter.reset t.c_bytes_read;
  Stat.Counter.reset t.c_bytes_programmed;
  Power.Meter.reset t.meter

let reset_stats t =
  Stat.Counter.reset t.c_reads;
  Stat.Counter.reset t.c_programs;
  Stat.Counter.reset t.c_erases;
  Stat.Counter.reset t.c_bytes_read;
  Stat.Counter.reset t.c_bytes_programmed;
  t.wait_ns <- 0;
  t.read_wait_ns <- 0;
  Stat.Histogram.reset t.read_wait_hist;
  Power.Meter.reset t.meter
