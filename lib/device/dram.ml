open Sim

type t = {
  spec : Specs.dram_spec;
  size_bytes : int;
  battery_backed : bool;
  active_w : float; (* constant for a fixed geometry; hoisted out of [access] *)
  refresh_w : float;
  meter : Power.Meter.t;
  reads : Stat.Counter.t;
  writes : Stat.Counter.t;
  bytes_read : Stat.Counter.t;
  bytes_written : Stat.Counter.t;
}

let create ?(spec = Specs.nec_dram) ~size_bytes ~battery_backed () =
  if size_bytes <= 0 then invalid_arg "Dram.create: size_bytes <= 0";
  {
    spec;
    size_bytes;
    battery_backed;
    active_w =
      Power.watts_of_mw (spec.Specs.d_active_mw_per_mb *. Units.to_mib size_bytes);
    refresh_w =
      Power.watts_of_mw (spec.Specs.d_refresh_mw_per_mb *. Units.to_mib size_bytes);
    meter = Power.Meter.create ~label:"dram";
    reads = Stat.Counter.create ();
    writes = Stat.Counter.create ();
    bytes_read = Stat.Counter.create ();
    bytes_written = Stat.Counter.create ();
  }

let size_bytes t = t.size_bytes
let battery_backed t = t.battery_backed
let spec t = t.spec

let access t cost ~bytes ops traffic =
  let d = Specs.access_time cost ~bytes in
  Power.Meter.charge_power t.meter ~watts:t.active_w d;
  Stat.Counter.incr ops;
  Stat.Counter.add traffic bytes;
  d

let p_reads = Probe.counter "device.dram.reads"
let p_writes = Probe.counter "device.dram.writes"
let p_bytes_read = Probe.counter "device.dram.bytes_read"
let p_bytes_written = Probe.counter "device.dram.bytes_written"

let read t ~bytes =
  Probe.incr p_reads;
  Probe.add p_bytes_read bytes;
  access t t.spec.Specs.d_read ~bytes t.reads t.bytes_read

let write t ~bytes =
  Probe.incr p_writes;
  Probe.add p_bytes_written bytes;
  access t t.spec.Specs.d_write ~bytes t.writes t.bytes_written

let charge_idle t d = Power.Meter.charge_background t.meter ~watts:t.refresh_w d

let meter t = t.meter
let reads t = Stat.Counter.value t.reads
let writes t = Stat.Counter.value t.writes
let bytes_read t = Stat.Counter.value t.bytes_read
let bytes_written t = Stat.Counter.value t.bytes_written

let reset_stats t =
  Stat.Counter.reset t.reads;
  Stat.Counter.reset t.writes;
  Stat.Counter.reset t.bytes_read;
  Stat.Counter.reset t.bytes_written;
  Power.Meter.reset t.meter
