open Sim

type t = {
  capacity : float;
  backup_capacity : float;
  mutable primary : float;
  mutable backup : float;
  mutable unmet : float;
}

let create ?(backup_joules = 0.0) ~capacity_joules () =
  if capacity_joules <= 0.0 then invalid_arg "Battery.create: capacity <= 0";
  if backup_joules < 0.0 then invalid_arg "Battery.create: backup < 0";
  {
    capacity = capacity_joules;
    backup_capacity = backup_joules;
    primary = capacity_joules;
    backup = backup_joules;
    unmet = 0.0;
  }

let of_watt_hours ?(backup_wh = 0.0) wh =
  create ~backup_joules:(backup_wh *. 3600.0) ~capacity_joules:(wh *. 3600.0) ()

let drain t ~joules =
  if joules < 0.0 then invalid_arg "Battery.drain: negative";
  let from_primary = Float.min t.primary joules in
  t.primary <- t.primary -. from_primary;
  let rest = joules -. from_primary in
  let from_backup = Float.min t.backup rest in
  t.backup <- t.backup -. from_backup;
  t.unmet <- t.unmet +. (rest -. from_backup)

let primary_joules t = t.primary
let backup_joules t = t.backup
let exhausted t = t.primary <= 0.0 && t.backup <= 0.0
let on_backup t = t.primary <= 0.0 && t.backup > 0.0
let unmet_joules t = t.unmet
let swap_primary t = t.primary <- t.capacity
let deplete_primary t = t.primary <- 0.0

let recharge t =
  t.primary <- t.capacity;
  t.backup <- t.backup_capacity

type holdup = Finite of Time.span | Unbounded

let holdup_time t ~draw_watts =
  if draw_watts < 0.0 then invalid_arg "Battery.holdup_time: negative draw";
  if draw_watts = 0.0 then Unbounded
  else begin
    let seconds = (t.primary +. t.backup) /. draw_watts in
    (* Time.span is an int of nanoseconds; a draw small enough to overflow
       it is indistinguishable from no draw at all. *)
    if seconds >= float_of_int max_int /. 1e9 then Unbounded
    else Finite (Time.span_s seconds)
  end

let pp_holdup ppf = function
  | Unbounded -> Fmt.string ppf "unbounded"
  | Finite span -> Time.pp_span ppf span

let fraction_remaining t = t.primary /. t.capacity
