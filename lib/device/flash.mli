(** Flash memory device model.

    Flash provides direct-mapped, byte-granularity reads at near-DRAM speed,
    byte programming two orders of magnitude slower, erasure only in whole
    sectors, and a bounded number of erase cycles per sector, after which the
    sector goes bad.  The device is divided into banks that operate
    independently: while one bank is busy programming or erasing, reads to
    the same bank stall but other banks remain readable — the property the
    paper's Section 3.3 bank-partitioning argument relies on.

    The model enforces the write discipline in hardware terms: programming a
    sector can only consume bytes that have been erased and not yet
    programmed.  Validity of *data* (live vs dead) is a software notion and
    belongs to the storage manager, not here. *)

type t

type config = {
  spec : Specs.flash_spec;
  nbanks : int;
  sectors_per_bank : int;
  endurance_override : int option;
      (** Lower the per-sector erase-cycle budget for accelerated lifetime
          experiments; [None] uses the spec's endurance. *)
}

val config :
  ?spec:Specs.flash_spec ->
  ?nbanks:int ->
  ?endurance_override:int ->
  size_bytes:int ->
  unit ->
  config
(** Convenience constructor: [size_bytes] is rounded up to a whole number of
    sectors per bank.  [nbanks] defaults to 1.
    @raise Invalid_argument if sizes are non-positive. *)

val create : config -> t

(** {1 Geometry} *)

val nbanks : t -> int
val nsectors : t -> int
val sector_bytes : t -> int
val size_bytes : t -> int
val bank_of_sector : t -> int -> int
val sectors_per_bank : t -> int
val spec : t -> Specs.flash_spec
val endurance : t -> int

(** {1 Operations}

    Operations take the current simulated instant and return when the device
    completed the request.  A request to a busy bank waits for the bank. *)

type op = {
  start : Sim.Time.t;  (** When the bank began servicing the request. *)
  finish : Sim.Time.t;  (** When the request completed. *)
}

val waited : now:Sim.Time.t -> op -> Sim.Time.span
(** Queueing delay suffered before service began. *)

val latency : now:Sim.Time.t -> op -> Sim.Time.span
(** Total time from issue to completion. *)

type error =
  | Bad_sector  (** The sector wore out and is unusable. *)
  | Overwrite_without_erase
      (** Programming more bytes than the sector has erased capacity left. *)

val pp_error : Format.formatter -> error -> unit

val read : t -> now:Sim.Time.t -> sector:int -> bytes:int -> (op, error) result
(** Read [bytes] from a sector.  Fails only on a bad sector.
    @raise Invalid_argument if the sector is out of range or
    [bytes] exceeds the sector size. *)

val program : t -> now:Sim.Time.t -> sector:int -> bytes:int -> (op, error) result
(** Program [bytes] of erased space in the sector. *)

val erase : t -> now:Sim.Time.t -> sector:int -> (op, error) result
(** Erase the sector, recycling its programmed space and consuming one
    endurance cycle.  The erase that exhausts the endurance budget still
    succeeds; the sector is bad afterwards. *)

val bank_busy_until : t -> bank:int -> Sim.Time.t

(** {1 Wear and health} *)

val erase_count : t -> sector:int -> int
val is_bad : t -> sector:int -> bool
val programmed_bytes : t -> sector:int -> int
val bad_sectors : t -> int
val live_capacity_bytes : t -> int
(** Capacity excluding bad sectors. *)

val wear_summary : t -> Sim.Stat.Summary.t
(** Erase counts across all sectors (fresh summary on each call). *)

(** {1 Traffic and energy} *)

val meter : t -> Power.Meter.t
val charge_idle : t -> Sim.Time.span -> unit
val reads : t -> int
val programs : t -> int
val erases : t -> int
val bytes_read : t -> int
val bytes_programmed : t -> int
val total_wait : t -> Sim.Time.span
(** Cumulative time requests spent queued behind busy banks. *)

val read_wait : t -> Sim.Time.span
(** The queued-behind-busy-bank time suffered by reads alone. *)

val read_wait_us : t -> Sim.Stat.Histogram.t
(** Distribution of per-read queueing delays, in microseconds. *)

val reset_stats : t -> unit
(** Clears traffic counters and energy; wear state is preserved. *)

val factory_reset : t -> unit
(** Restore the device to the state {!create} built it in — pristine wear,
    no programmed bytes, idle banks, zero counters and meters — reusing
    the per-sector arrays in place.  A factory-reset device is
    observationally identical to a freshly created one, which lets
    shard-churning drivers ({!Ssmc.Fleet}) recycle the allocation across
    simulated machines; {!Ssmc.Machine.recycle}'s equivalence test pins
    the identity. *)
