(** Battery model.

    Mobile computers in the paper carry a primary battery that discharges
    gradually and a small lithium backup that preserves DRAM while the
    primary is depleted or being swapped.  DRAM contents are lost only when
    both are exhausted — the event that makes flash, not DRAM, the ultimate
    repository for long-lived data. *)

type t

val create : ?backup_joules:float -> capacity_joules:float -> unit -> t
(** A full primary battery and, optionally, a full lithium backup.
    @raise Invalid_argument on non-positive capacities. *)

val of_watt_hours : ?backup_wh:float -> float -> t
(** Convenience: capacities in watt-hours (1 Wh = 3600 J). *)

val drain : t -> joules:float -> unit
(** Consume energy: from the primary while it lasts, then from the backup.
    Draining an exhausted battery is recorded as unmet demand. *)

val primary_joules : t -> float
val backup_joules : t -> float

val exhausted : t -> bool
(** Both primary and backup are empty: DRAM contents are lost. *)

val on_backup : t -> bool
(** The primary is empty but the backup still holds. *)

val unmet_joules : t -> float
(** Demand that arrived after exhaustion. *)

val swap_primary : t -> unit
(** Replace the primary with a fresh one (the backup keeps DRAM alive
    meanwhile). *)

val deplete_primary : t -> unit
(** The primary runs out abruptly (fault injection: the gauge lied). *)

val recharge : t -> unit
(** Restore both primary and backup to full capacity — external power
    returned after a crash. *)

type holdup = Finite of Sim.Time.span | Unbounded

val holdup_time : t -> draw_watts:float -> holdup
(** How long the remaining charge sustains a constant draw.  A zero draw
    (or one small enough to overflow the span representation) holds
    forever: [Unbounded], not an error — an idle machine drawing nothing
    never loses DRAM.
    @raise Invalid_argument on a negative draw. *)

val pp_holdup : Format.formatter -> holdup -> unit

val fraction_remaining : t -> float
(** Remaining primary charge as a fraction of a fresh battery. *)
