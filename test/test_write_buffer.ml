open Sim

let make ?(capacity = 4) ?(delay = 30.0) ?(refresh = true) () =
  Storage.Write_buffer.create
    {
      Storage.Write_buffer.capacity_blocks = capacity;
      writeback_delay = Time.span_s delay;
      refresh_on_rewrite = refresh;
    }

let sec n = Time.of_ns (int_of_float (n *. 1e9))

let test_default_config_is_baker () =
  let c = Storage.Write_buffer.default_config in
  Alcotest.(check int) "1MB of blocks" 2048 c.Storage.Write_buffer.capacity_blocks;
  Alcotest.(check (float 1e-9)) "30s delay" 30.0
    (Time.span_to_s c.Storage.Write_buffer.writeback_delay)

let test_admit_and_absorb () =
  let b = make () in
  Alcotest.(check bool) "admit" true
    (Storage.Write_buffer.write b ~now:(sec 0.0) ~block:1 = Storage.Write_buffer.Admitted);
  Alcotest.(check bool) "absorb rewrite" true
    (Storage.Write_buffer.write b ~now:(sec 1.0) ~block:1 = Storage.Write_buffer.Absorbed);
  Alcotest.(check int) "size 1" 1 (Storage.Write_buffer.size b);
  Alcotest.(check int) "absorbed counter" 1 (Storage.Write_buffer.absorbed_writes b);
  Alcotest.(check int) "admitted counter" 1 (Storage.Write_buffer.admitted_blocks b)

let test_capacity_pressure () =
  let b = make ~capacity:2 () in
  ignore (Storage.Write_buffer.write b ~now:(sec 0.0) ~block:1);
  ignore (Storage.Write_buffer.write b ~now:(sec 1.0) ~block:2);
  Alcotest.(check bool) "full" true (Storage.Write_buffer.is_full b);
  Alcotest.(check bool) "third write needs eviction" true
    (Storage.Write_buffer.write b ~now:(sec 2.0) ~block:3
    = Storage.Write_buffer.Needs_eviction);
  Alcotest.(check int) "nothing inserted" 2 (Storage.Write_buffer.size b);
  (* Oldest deadline is the eviction victim. *)
  Alcotest.(check (option int)) "victim is oldest" (Some 1) (Storage.Write_buffer.oldest b);
  Alcotest.(check bool) "take removes" true (Storage.Write_buffer.take b ~block:1);
  Alcotest.(check bool) "retry succeeds" true
    (Storage.Write_buffer.write b ~now:(sec 2.0) ~block:3 = Storage.Write_buffer.Admitted)

let test_zero_capacity_write_through () =
  (* Capacity zero means a true pass-through: every write is pushed straight
     to eviction and the buffer itself never holds, expires, or counts
     anything. *)
  let b = make ~capacity:0 () in
  Alcotest.(check bool) "always needs eviction" true
    (Storage.Write_buffer.write b ~now:(sec 0.0) ~block:1
    = Storage.Write_buffer.Needs_eviction);
  Alcotest.(check bool) "rewrite too" true
    (Storage.Write_buffer.write b ~now:(sec 1.0) ~block:1
    = Storage.Write_buffer.Needs_eviction);
  Alcotest.(check int) "never holds anything" 0 (Storage.Write_buffer.size b);
  Alcotest.(check bool) "full by definition" true (Storage.Write_buffer.is_full b);
  Alcotest.(check bool) "nothing resident" false (Storage.Write_buffer.mem b ~block:1);
  Alcotest.(check (option int)) "no victim" None (Storage.Write_buffer.oldest b);
  Alcotest.(check bool) "no deadline pending" true
    (Storage.Write_buffer.next_deadline b = None);
  Alcotest.(check (list int)) "nothing ever expires" []
    (Storage.Write_buffer.take_expired b ~now:(sec 1000.0));
  Alcotest.(check (list int)) "drain is empty" [] (Storage.Write_buffer.drain b);
  Alcotest.(check bool) "readmit refused" false
    (Storage.Write_buffer.readmit b ~now:(sec 2.0) ~block:1);
  Alcotest.(check int) "no admissions counted" 0
    (Storage.Write_buffer.admitted_blocks b);
  Alcotest.(check int) "no absorptions counted" 0
    (Storage.Write_buffer.absorbed_writes b)

let test_expiry_order_and_timing () =
  let b = make ~capacity:10 ~delay:30.0 () in
  ignore (Storage.Write_buffer.write b ~now:(sec 0.0) ~block:1);
  ignore (Storage.Write_buffer.write b ~now:(sec 5.0) ~block:2);
  Alcotest.(check (list int)) "nothing expired yet" []
    (Storage.Write_buffer.take_expired b ~now:(sec 29.0));
  Alcotest.(check (list int)) "first expires" [ 1 ]
    (Storage.Write_buffer.take_expired b ~now:(sec 30.0));
  Alcotest.(check (list int)) "second follows" [ 2 ]
    (Storage.Write_buffer.take_expired b ~now:(sec 40.0));
  Alcotest.(check int) "empty" 0 (Storage.Write_buffer.size b)

let test_take_expired_limit () =
  let b = make ~capacity:10 ~delay:1.0 () in
  for block = 1 to 5 do
    ignore (Storage.Write_buffer.write b ~now:(sec 0.0) ~block)
  done;
  let first = Storage.Write_buffer.take_expired ~limit:2 b ~now:(sec 10.0) in
  Alcotest.(check (list int)) "limited batch" [ 1; 2 ] first;
  Alcotest.(check int) "rest retained" 3 (Storage.Write_buffer.size b)

let test_refresh_on_rewrite () =
  let b = make ~capacity:10 ~delay:30.0 ~refresh:true () in
  ignore (Storage.Write_buffer.write b ~now:(sec 0.0) ~block:1);
  ignore (Storage.Write_buffer.write b ~now:(sec 20.0) ~block:1);
  Alcotest.(check (list int)) "deadline pushed out" []
    (Storage.Write_buffer.take_expired b ~now:(sec 35.0));
  Alcotest.(check (list int)) "expires at refreshed deadline" [ 1 ]
    (Storage.Write_buffer.take_expired b ~now:(sec 50.0))

let test_no_refresh_variant () =
  let b = make ~capacity:10 ~delay:30.0 ~refresh:false () in
  ignore (Storage.Write_buffer.write b ~now:(sec 0.0) ~block:1);
  ignore (Storage.Write_buffer.write b ~now:(sec 20.0) ~block:1);
  Alcotest.(check (list int)) "original deadline holds" [ 1 ]
    (Storage.Write_buffer.take_expired b ~now:(sec 31.0))

let test_remove_cancels () =
  let b = make () in
  ignore (Storage.Write_buffer.write b ~now:(sec 0.0) ~block:1);
  Alcotest.(check bool) "dirty removed" true (Storage.Write_buffer.remove b ~block:1);
  Alcotest.(check bool) "absent remove" false (Storage.Write_buffer.remove b ~block:1);
  Alcotest.(check int) "cancelled counter" 1 (Storage.Write_buffer.cancelled_blocks b);
  Alcotest.(check (list int)) "never flushed" []
    (Storage.Write_buffer.take_expired b ~now:(sec 100.0))

let test_readmit () =
  let b = make ~capacity:2 () in
  Alcotest.(check bool) "readmit into space" true
    (Storage.Write_buffer.readmit b ~now:(sec 0.0) ~block:9);
  Alcotest.(check bool) "no double readmit" false
    (Storage.Write_buffer.readmit b ~now:(sec 0.0) ~block:9);
  Alcotest.(check int) "no counter change" 0 (Storage.Write_buffer.admitted_blocks b);
  ignore (Storage.Write_buffer.write b ~now:(sec 0.0) ~block:10);
  Alcotest.(check bool) "full rejects readmit" false
    (Storage.Write_buffer.readmit b ~now:(sec 0.0) ~block:11)

let test_drain () =
  let b = make ~capacity:10 () in
  ignore (Storage.Write_buffer.write b ~now:(sec 0.0) ~block:3);
  ignore (Storage.Write_buffer.write b ~now:(sec 1.0) ~block:1);
  ignore (Storage.Write_buffer.write b ~now:(sec 2.0) ~block:2);
  Alcotest.(check (list int)) "drain in deadline order" [ 3; 1; 2 ]
    (Storage.Write_buffer.drain b);
  Alcotest.(check int) "empty after drain" 0 (Storage.Write_buffer.size b)

let test_stale_entries_interleaved () =
  (* Refreshes and removals leave stale queue entries sharing instants
     with live ones.  [take_expired ~limit] must deliver live blocks in
     deadline order and count only them against the limit. *)
  let b = make ~capacity:10 ~delay:30.0 ~refresh:true () in
  (* Blocks 1..4 admitted at t=0 (deadline 30), then 1 and 3 refreshed at
     t=5 (deadline 35) — their t=30 entries go stale.  Block 5 admitted
     at t=5 lands at the same 35 instant as the refreshes.  Block 2 is
     removed: its t=30 entry is stale too. *)
  for block = 1 to 4 do
    ignore (Storage.Write_buffer.write b ~now:(sec 0.0) ~block)
  done;
  ignore (Storage.Write_buffer.write b ~now:(sec 5.0) ~block:1);
  ignore (Storage.Write_buffer.write b ~now:(sec 5.0) ~block:3);
  ignore (Storage.Write_buffer.write b ~now:(sec 5.0) ~block:5);
  ignore (Storage.Write_buffer.remove b ~block:2);
  (* At t=30 only block 4 is genuinely due; the stale entries for 1, 2,
     and 3 at that instant must not consume the limit or surface. *)
  Alcotest.(check (list int)) "stale entries don't count against limit" [ 4 ]
    (Storage.Write_buffer.take_expired ~limit:1 b ~now:(sec 30.0));
  (* The refreshed deadline delivers 1, 3, 5 in admission order within
     the shared instant, limit counting live blocks only. *)
  Alcotest.(check (list int)) "same-instant batch respects limit" [ 1; 3 ]
    (Storage.Write_buffer.take_expired ~limit:2 b ~now:(sec 35.0));
  Alcotest.(check (list int)) "remainder follows in order" [ 5 ]
    (Storage.Write_buffer.take_expired b ~now:(sec 35.0));
  Alcotest.(check int) "buffer drained" 0 (Storage.Write_buffer.size b)

let test_refresh_does_not_leak_queue_entries () =
  (* Each refresh re-adds a queue entry; compaction must keep the queue
     within a constant factor of the live population instead of letting
     stale entries pile up one per rewrite. *)
  let b = make ~capacity:8 ~delay:30.0 ~refresh:true () in
  for round = 0 to 999 do
    for block = 1 to 8 do
      ignore (Storage.Write_buffer.write b ~now:(sec (float_of_int round)) ~block)
    done
  done;
  Alcotest.(check int) "live population" 8 (Storage.Write_buffer.size b);
  Alcotest.(check bool)
    (Printf.sprintf "queue stays bounded (pending %d)"
       (Storage.Write_buffer.pending_entries b))
    true
    (Storage.Write_buffer.pending_entries b <= 32);
  (* And the survivors still come out in deadline order. *)
  Alcotest.(check (list int)) "delivery order intact" [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    (Storage.Write_buffer.take_expired b ~now:(sec 2000.0))

(* Conservation: every admitted block is eventually flushed (taken),
   cancelled, or still resident. *)
let prop_conservation =
  QCheck.Test.make ~name:"write_buffer: blocks are conserved" ~count:300
    QCheck.(list (pair (int_bound 20) (int_bound 2)))
    (fun ops ->
      let b = make ~capacity:8 ~delay:10.0 () in
      let taken = ref 0 in
      let clock = ref 0.0 in
      List.iter
        (fun (block, action) ->
          clock := !clock +. 1.0;
          match action with
          | 0 -> begin
            match Storage.Write_buffer.write b ~now:(sec !clock) ~block with
            | Storage.Write_buffer.Needs_eviction -> begin
              match Storage.Write_buffer.oldest b with
              | Some victim ->
                ignore (Storage.Write_buffer.take b ~block:victim);
                incr taken;
                ignore (Storage.Write_buffer.write b ~now:(sec !clock) ~block)
              | None -> ()
            end
            | Storage.Write_buffer.Admitted | Storage.Write_buffer.Absorbed -> ()
          end
          | 1 -> ignore (Storage.Write_buffer.remove b ~block)
          | _ ->
            taken := !taken + List.length (Storage.Write_buffer.take_expired b ~now:(sec !clock)))
        ops;
      Storage.Write_buffer.admitted_blocks b
      = !taken + Storage.Write_buffer.cancelled_blocks b + Storage.Write_buffer.size b)

let suite =
  [
    Alcotest.test_case "default is Baker's config" `Quick test_default_config_is_baker;
    Alcotest.test_case "admit & absorb" `Quick test_admit_and_absorb;
    Alcotest.test_case "capacity pressure" `Quick test_capacity_pressure;
    Alcotest.test_case "zero capacity" `Quick test_zero_capacity_write_through;
    Alcotest.test_case "expiry order" `Quick test_expiry_order_and_timing;
    Alcotest.test_case "expiry limit" `Quick test_take_expired_limit;
    Alcotest.test_case "refresh on rewrite" `Quick test_refresh_on_rewrite;
    Alcotest.test_case "no-refresh variant" `Quick test_no_refresh_variant;
    Alcotest.test_case "remove cancels" `Quick test_remove_cancels;
    Alcotest.test_case "readmit" `Quick test_readmit;
    Alcotest.test_case "drain" `Quick test_drain;
    Alcotest.test_case "stale entries interleaved" `Quick test_stale_entries_interleaved;
    Alcotest.test_case "refresh does not leak queue entries" `Quick
      test_refresh_does_not_leak_queue_entries;
    QCheck_alcotest.to_alcotest prop_conservation;
  ]
