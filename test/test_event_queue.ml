open Sim

let t ns = Time.of_ns ns

let test_empty () =
  let q : int Event_queue.t = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check int) "length 0" 0 (Event_queue.length q);
  Alcotest.(check bool) "pop none" true (Event_queue.pop q = None);
  Alcotest.(check bool) "peek none" true (Event_queue.peek_time q = None)

let test_ordering () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~at:(t 30) "c");
  ignore (Event_queue.add q ~at:(t 10) "a");
  ignore (Event_queue.add q ~at:(t 20) "b");
  let pop () = Option.get (Event_queue.pop q) in
  let at1, v1 = pop () in
  Alcotest.(check int) "first time" 10 (Time.to_ns at1);
  Alcotest.(check string) "first value" "a" v1;
  Alcotest.(check string) "second" "b" (snd (pop ()));
  Alcotest.(check string) "third" "c" (snd (pop ()));
  Alcotest.(check bool) "drained" true (Event_queue.is_empty q)

let test_fifo_for_equal_times () =
  let q = Event_queue.create () in
  List.iter (fun v -> ignore (Event_queue.add q ~at:(t 5) v)) [ "x"; "y"; "z" ];
  let order = List.init 3 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list string)) "insertion order preserved" [ "x"; "y"; "z" ] order

let test_cancel () =
  let q = Event_queue.create () in
  let h1 = Event_queue.add q ~at:(t 1) "a" in
  ignore (Event_queue.add q ~at:(t 2) "b");
  Event_queue.cancel q h1;
  Alcotest.(check int) "live after cancel" 1 (Event_queue.length q);
  Alcotest.(check string) "cancelled entry skipped" "b" (snd (Option.get (Event_queue.pop q)));
  (* Cancelling twice or after firing is a no-op. *)
  Event_queue.cancel q h1;
  Alcotest.(check int) "still consistent" 0 (Event_queue.length q)

let test_cancel_head_updates_peek () =
  let q = Event_queue.create () in
  let h = Event_queue.add q ~at:(t 1) "head" in
  ignore (Event_queue.add q ~at:(t 9) "tail");
  Event_queue.cancel q h;
  Alcotest.(check int) "peek skips cancelled head" 9
    (Time.to_ns (Option.get (Event_queue.peek_time q)))

let test_clear () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~at:(t 1) 1);
  ignore (Event_queue.add q ~at:(t 2) 2);
  Event_queue.clear q;
  Alcotest.(check bool) "cleared" true (Event_queue.is_empty q)

let test_interleaved_add_pop () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~at:(t 10) 10);
  ignore (Event_queue.add q ~at:(t 5) 5);
  Alcotest.(check int) "min first" 5 (snd (Option.get (Event_queue.pop q)));
  ignore (Event_queue.add q ~at:(t 1) 1);
  Alcotest.(check int) "new min" 1 (snd (Option.get (Event_queue.pop q)));
  Alcotest.(check int) "remaining" 10 (snd (Option.get (Event_queue.pop q)))

let prop_pop_sorted =
  QCheck.Test.make ~name:"event_queue: pops are time-sorted" ~count:300
    QCheck.(list (int_bound 100_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i at -> ignore (Event_queue.add q ~at:(t at) i)) times;
      let rec drain acc =
        match Event_queue.pop q with
        | Some (at, _) -> drain (Time.to_ns at :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare times)

let prop_cancel_removes =
  QCheck.Test.make ~name:"event_queue: cancelled events never pop" ~count:200
    QCheck.(list (pair (int_bound 1000) bool))
    (fun entries ->
      let q = Event_queue.create () in
      let kept = ref [] in
      List.iteri
        (fun i (at, keep) ->
          let h = Event_queue.add q ~at:(t at) i in
          if keep then kept := i :: !kept else Event_queue.cancel q h)
        entries;
      let rec drain acc =
        match Event_queue.pop q with
        | Some (_, v) -> drain (v :: acc)
        | None -> acc
      in
      let popped = drain [] in
      List.sort compare popped = List.sort compare !kept)

(* --- Kind-parametrized model check ----------------------------------------

   Random add/cancel/pop interleavings against a naive insertion-ordered
   reference, over all three queue kinds (mirrors test_seg_index's
   model-based approach).  Adds respect the wheel's contract — never
   before the last popped instant — which is exactly what the engine
   guarantees. *)

let prop_matches_model kind =
  let name =
    Printf.sprintf "event_queue(%s): matches reference model"
      (Event_queue.kind_name kind)
  in
  QCheck.Test.make ~name ~count:300
    QCheck.(list (pair (int_bound 2) (int_bound 40)))
    (fun ops ->
      let q = Event_queue.create ~kind () in
      (* Alive entries in insertion order: (at_ns, id, handle). *)
      let model = ref [] in
      let next_id = ref 0 in
      let watermark = ref 0 in
      let expected_min () =
        (* Earliest instant; insertion order breaks ties. *)
        match !model with
        | [] -> None
        | first :: rest ->
          Some
            (List.fold_left
               (fun ((bat, _, _) as best) ((at, _, _) as e) ->
                 if at < bat then e else best)
               first rest)
      in
      let ok = ref true in
      let do_pop () =
        match (Event_queue.pop q, expected_min ()) with
        | None, None -> ()
        | Some (at, v), Some (eat, eid, _) ->
          if Time.to_ns at <> eat || v <> eid then ok := false
          else begin
            watermark := eat;
            model := List.filter (fun (_, id, _) -> id <> eid) !model
          end
        | Some _, None | None, Some _ -> ok := false
      in
      List.iter
        (fun (action, x) ->
          match action with
          | 0 ->
            let at = !watermark + x in
            let id = !next_id in
            incr next_id;
            let h = Event_queue.add q ~at:(t at) id in
            model := !model @ [ (at, id, h) ]
          | 1 ->
            let n = List.length !model in
            if n > 0 then begin
              let at, id, h = List.nth !model (x mod n) in
              ignore at;
              Event_queue.cancel q h;
              model := List.filter (fun (_, i, _) -> i <> id) !model
            end
          | _ -> do_pop ())
        ops;
      while !ok && not (Event_queue.is_empty q) do
        do_pop ()
      done;
      !ok && Event_queue.is_empty q && !model = [])

let test_wheel_rejects_past_add () =
  let q = Event_queue.create ~kind:Event_queue.Wheel () in
  ignore (Event_queue.add q ~at:(t 100) "a");
  Alcotest.(check string) "pop" "a" (snd (Option.get (Event_queue.pop q)));
  ignore (Event_queue.add q ~at:(t 100) "same instant ok");
  Alcotest.check_raises "below the cursor"
    (Invalid_argument "Timing_wheel.add: instant before the wheel cursor") (fun () ->
      ignore (Event_queue.add q ~at:(t 99) "b"))

(* Far-apart instants force entries into high wheel levels and exercise
   the cascade path on extraction. *)
let test_wheel_cascades () =
  let q = Event_queue.create ~kind:Event_queue.Checked () in
  let times = [ 0; 1; 31; 32; 33; 1_000; 1_024; 32_768; 1_000_000; 1_048_576 ] in
  List.iter (fun at -> ignore (Event_queue.add q ~at:(t at) at)) (List.rev times);
  let popped = List.init (List.length times) (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list int)) "sorted across levels" times popped

(* Regression for the space leak: popped (and cleared) entries must not
   keep payload closures reachable from the queue's internal arrays. *)
let test_popped_payloads_collectible () =
  List.iter
    (fun kind ->
      let q = Event_queue.create ~kind () in
      let n = 32 in
      let weak = Weak.create n in
      for i = 0 to n - 1 do
        let payload = ref i in
        Weak.set weak i (Some payload);
        ignore (Event_queue.add q ~at:(t i) payload)
      done;
      for _ = 1 to n / 2 do
        ignore (Event_queue.pop q)
      done;
      Event_queue.clear q;
      Gc.full_major ();
      let retained = ref 0 in
      for i = 0 to n - 1 do
        if Weak.check weak i then incr retained
      done;
      Alcotest.(check int)
        (Printf.sprintf "no payloads retained (%s)" (Event_queue.kind_name kind))
        0 !retained)
    [ Event_queue.Heap; Event_queue.Wheel; Event_queue.Checked ]

let suite =
  [
    Alcotest.test_case "empty queue" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO for equal times" `Quick test_fifo_for_equal_times;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "cancel head" `Quick test_cancel_head_updates_peek;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "interleaved add/pop" `Quick test_interleaved_add_pop;
    QCheck_alcotest.to_alcotest prop_pop_sorted;
    QCheck_alcotest.to_alcotest prop_cancel_removes;
    QCheck_alcotest.to_alcotest (prop_matches_model Event_queue.Heap);
    QCheck_alcotest.to_alcotest (prop_matches_model Event_queue.Wheel);
    QCheck_alcotest.to_alcotest (prop_matches_model Event_queue.Checked);
    Alcotest.test_case "wheel rejects past add" `Quick test_wheel_rejects_past_add;
    Alcotest.test_case "wheel cascades across levels" `Quick test_wheel_cascades;
    Alcotest.test_case "popped payloads collectible" `Quick
      test_popped_payloads_collectible;
  ]
