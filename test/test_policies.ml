(* Cleaner victim selection, wear-leveling, and bank-partitioning policies. *)
open Sim

let segment ~id ~fill ~kill ~touched =
  let s = Storage.Segment.create ~id ~first_sector:(id * 8) ~nslots:8 in
  Storage.Segment.open_ s;
  for b = 0 to fill - 1 do
    ignore (Storage.Segment.append s ~block:(100 * id + b))
  done;
  if fill < 8 then Storage.Segment.close s;
  List.iter (fun slot -> Storage.Segment.kill s ~slot) kill;
  Storage.Segment.touch s ~at:(Time.of_ns touched);
  s

(* --- Cleaner ----------------------------------------------------------------- *)

let test_greedy_picks_emptiest () =
  let a = segment ~id:0 ~fill:8 ~kill:[ 0 ] ~touched:0 in
  let b = segment ~id:1 ~fill:8 ~kill:[ 0; 1; 2; 3; 4 ] ~touched:0 in
  let c = segment ~id:2 ~fill:8 ~kill:[ 0; 1 ] ~touched:0 in
  let victim =
    Storage.Cleaner.select Storage.Cleaner.Greedy ~now:(Time.of_ns 100)
      ~eligible:(fun _ -> true)
      [| a; b; c |]
  in
  Alcotest.(check int) "emptiest chosen" 1 (Storage.Segment.id (Option.get victim))

let test_cost_benefit_prefers_old_segments () =
  (* Same utilization; the older segment must win. *)
  let young = segment ~id:0 ~fill:8 ~kill:[ 0; 1 ] ~touched:1_000_000_000 in
  let old = segment ~id:1 ~fill:8 ~kill:[ 0; 1 ] ~touched:0 in
  let victim =
    Storage.Cleaner.select Storage.Cleaner.Cost_benefit ~now:(Time.of_ns 2_000_000_000)
      ~eligible:(fun _ -> true)
      [| young; old |]
  in
  Alcotest.(check int) "older wins" 1 (Storage.Segment.id (Option.get victim))

let test_cost_benefit_cleans_fuller_old_over_emptier_young () =
  (* The LFS insight: an old segment at higher utilization can still be the
     better victim than a just-written emptier one. *)
  let young_empty = segment ~id:0 ~fill:8 ~kill:[ 0; 1; 2; 3 ] ~touched:999_000_000_000 in
  let old_fuller = segment ~id:1 ~fill:8 ~kill:[ 0; 1 ] ~touched:0 in
  let now = Time.of_ns 1_000_000_000_000 in
  let cb = Storage.Cleaner.Cost_benefit in
  Alcotest.(check bool) "old fuller scores higher" true
    (Storage.Cleaner.score cb ~now old_fuller
    > Storage.Cleaner.score cb ~now young_empty)

let test_select_respects_eligibility_and_state () =
  let open_seg = segment ~id:0 ~fill:4 ~kill:[ 0; 1; 2; 3 ] ~touched:0 in
  (* fill < 8 closes it; reopen a fresh one to have an Open segment. *)
  let fresh = Storage.Segment.create ~id:1 ~first_sector:64 ~nslots:8 in
  Storage.Segment.open_ fresh;
  let victim =
    Storage.Cleaner.select Storage.Cleaner.Greedy ~now:Time.zero
      ~eligible:(fun s -> Storage.Segment.id s <> 0)
      [| open_seg; fresh |]
  in
  Alcotest.(check bool) "nothing eligible" true (victim = None)

let test_write_amplification () =
  Alcotest.(check (float 1e-9)) "no cleaning" 1.0
    (Storage.Cleaner.write_amplification ~blocks_written:100 ~blocks_flushed:100);
  Alcotest.(check (float 1e-9)) "50% overhead" 1.5
    (Storage.Cleaner.write_amplification ~blocks_written:150 ~blocks_flushed:100);
  Alcotest.(check (float 1e-9)) "empty run" 1.0
    (Storage.Cleaner.write_amplification ~blocks_written:0 ~blocks_flushed:0)

(* --- Wear ---------------------------------------------------------------------- *)

let free_segment ~id = Storage.Segment.create ~id ~first_sector:(id * 8) ~nslots:8

let test_pick_free_policies () =
  let a = free_segment ~id:0 and b = free_segment ~id:1 and c = free_segment ~id:2 in
  let counts = [| 5; 1; 3 |] in
  let erase_count s = counts.(Storage.Segment.id s) in
  (match Storage.Wear.pick_free Storage.Wear.None_ ~erase_count [| a; b; c |] with
  | Some s -> Alcotest.(check int) "first-fit ignores wear" 0 (Storage.Segment.id s)
  | None -> Alcotest.fail "no pick");
  match Storage.Wear.pick_free Storage.Wear.Dynamic ~erase_count [| a; b; c |] with
  | Some s -> Alcotest.(check int) "dynamic picks least worn" 1 (Storage.Segment.id s)
  | None -> Alcotest.fail "no pick"

let test_pick_free_skips_non_free () =
  let used = segment ~id:0 ~fill:8 ~kill:[] ~touched:0 in
  let free = free_segment ~id:1 in
  match Storage.Wear.pick_free Storage.Wear.Dynamic ~erase_count:(fun _ -> 0) [| used; free |] with
  | Some s -> Alcotest.(check int) "only free considered" 1 (Storage.Segment.id s)
  | None -> Alcotest.fail "no pick"

let test_evenness () =
  let segs = Array.init 4 (fun id -> free_segment ~id) in
  let counts = [| 0; 10; 5; 5 |] in
  let e = Storage.Wear.evenness ~erase_count:(fun s -> counts.(Storage.Segment.id s)) segs in
  Alcotest.(check int) "min" 0 e.Storage.Wear.min_erases;
  Alcotest.(check int) "max" 10 e.Storage.Wear.max_erases;
  Alcotest.(check (float 1e-9)) "mean" 5.0 e.Storage.Wear.mean_erases

let test_relocation_trigger () =
  let closed = segment ~id:0 ~fill:8 ~kill:[] ~touched:0 in
  let other = segment ~id:1 ~fill:8 ~kill:[] ~touched:0 in
  (* max - mean = 15 > threshold 10. *)
  let counts = [| 0; 30 |] in
  let erase_count s = counts.(Storage.Segment.id s) in
  let policy = Storage.Wear.Static { spread_threshold = 10 } in
  (match
     Storage.Wear.relocation_victim policy ~erase_count ~eligible:(fun _ -> true)
       [| closed; other |]
   with
  | Some s -> Alcotest.(check int) "coldest segment relocated" 0 (Storage.Segment.id s)
  | None -> Alcotest.fail "should trigger");
  (* Below the threshold: no relocation. *)
  counts.(1) <- 5;
  Alcotest.(check bool) "no trigger below threshold" true
    (Storage.Wear.relocation_victim policy ~erase_count ~eligible:(fun _ -> true)
       [| closed; other |]
    = None);
  (* Dynamic never relocates. *)
  counts.(1) <- 100;
  Alcotest.(check bool) "dynamic never relocates" true
    (Storage.Wear.relocation_victim Storage.Wear.Dynamic ~erase_count
       ~eligible:(fun _ -> true) [| closed; other |]
    = None)

(* --- Tie-breaking ------------------------------------------------------------

   Both decision implementations (the reference scans here, the Seg_index
   fast path through the manager) must prefer the lowest segment id on
   ties; the differential tests rely on this being pinned down. *)

let test_pick_free_tie_lowest_id () =
  let segs = Array.init 4 (fun id -> free_segment ~id) in
  let erase_count _ = 7 in
  let check name policy ~for_cold =
    match Storage.Wear.pick_free ~for_cold policy ~erase_count segs with
    | Some s -> Alcotest.(check int) name 0 (Storage.Segment.id s)
    | None -> Alcotest.fail "no pick"
  in
  check "first-fit tie" Storage.Wear.None_ ~for_cold:false;
  check "dynamic tie" Storage.Wear.Dynamic ~for_cold:false;
  let static = Storage.Wear.Static { spread_threshold = 5 } in
  check "static hot tie" static ~for_cold:false;
  check "static cold tie" static ~for_cold:true

let test_cleaner_select_tie_lowest_id () =
  (* Identical utilization and age everywhere: the fold must keep its
     first (lowest-id) maximum under both policies. *)
  let segs =
    Array.init 4 (fun id -> segment ~id ~fill:8 ~kill:[ 0; 1 ] ~touched:1_000)
  in
  let now = Time.of_ns 500_000_000 in
  List.iter
    (fun (name, policy) ->
      match Storage.Cleaner.select policy ~now ~eligible:(fun _ -> true) segs with
      | Some s -> Alcotest.(check int) name 0 (Storage.Segment.id s)
      | None -> Alcotest.fail "no victim")
    [ ("greedy tie", Storage.Cleaner.Greedy);
      ("cost-benefit tie", Storage.Cleaner.Cost_benefit) ]

let test_relocation_victim_tie_lowest_id () =
  let segs = Array.init 3 (fun id -> segment ~id ~fill:8 ~kill:[] ~touched:0) in
  (* Equal wear on the closed segments, a spread-busting outlier via a
     fourth: make ids 0..2 all erase-count 0 and force the trigger with a
     high max elsewhere. *)
  let outlier = free_segment ~id:3 in
  let all = Array.append segs [| outlier |] in
  let erase_count s = if Storage.Segment.id s = 3 then 40 else 0 in
  match
    Storage.Wear.relocation_victim
      (Storage.Wear.Static { spread_threshold = 10 })
      ~erase_count ~eligible:(fun _ -> true) all
  with
  | Some s -> Alcotest.(check int) "lowest id relocated" 0 (Storage.Segment.id s)
  | None -> Alcotest.fail "should trigger"

let test_lifetime_writes () =
  Alcotest.(check (float 1e-9)) "even wear full budget" 1000.0
    (Storage.Wear.lifetime_writes ~endurance:10 ~total_sectors:100 ~max_erases:5
       ~total_erases:500);
  (* Skewed wear (max 4x the mean) quarters the lifetime. *)
  Alcotest.(check (float 1e-9)) "skew divides budget" 250.0
    (Storage.Wear.lifetime_writes ~endurance:10 ~total_sectors:100 ~max_erases:8
       ~total_erases:200);
  Alcotest.(check (float 0.0)) "nothing erased" infinity
    (Storage.Wear.lifetime_writes ~endurance:10 ~total_sectors:100 ~max_erases:0
       ~total_erases:0)

(* --- Banks ----------------------------------------------------------------------- *)

let test_banks_validate () =
  Alcotest.(check bool) "unified ok" true
    (Storage.Banks.validate Storage.Banks.Unified ~nbanks:1 = Ok ());
  Alcotest.(check bool) "partitioned ok" true
    (Storage.Banks.validate (Storage.Banks.Partitioned { write_banks = 1 }) ~nbanks:4
    = Ok ());
  Alcotest.(check bool) "must leave a read bank" true
    (Result.is_error
       (Storage.Banks.validate (Storage.Banks.Partitioned { write_banks = 4 }) ~nbanks:4));
  Alcotest.(check bool) "needs a write bank" true
    (Result.is_error
       (Storage.Banks.validate (Storage.Banks.Partitioned { write_banks = 0 }) ~nbanks:4))

let test_banks_allowed () =
  let p = Storage.Banks.Partitioned { write_banks = 2 } in
  Alcotest.(check bool) "fresh in write bank" true
    (Storage.Banks.allowed p ~nbanks:4 Storage.Banks.Fresh_write ~bank:1);
  Alcotest.(check bool) "fresh not in read bank" false
    (Storage.Banks.allowed p ~nbanks:4 Storage.Banks.Fresh_write ~bank:2);
  Alcotest.(check bool) "cold in read bank" true
    (Storage.Banks.allowed p ~nbanks:4 Storage.Banks.Cold_load ~bank:3);
  Alcotest.(check bool) "cold not in write bank" false
    (Storage.Banks.allowed p ~nbanks:4 Storage.Banks.Cold_load ~bank:0);
  Alcotest.(check bool) "cleaning output to read banks" true
    (Storage.Banks.allowed p ~nbanks:4 Storage.Banks.Clean_out ~bank:2);
  Alcotest.(check bool) "unified allows all" true
    (Storage.Banks.allowed Storage.Banks.Unified ~nbanks:4 Storage.Banks.Fresh_write
       ~bank:3);
  Alcotest.check_raises "bank range" (Invalid_argument "Banks.allowed: bank out of range")
    (fun () -> ignore (Storage.Banks.allowed p ~nbanks:4 Storage.Banks.Fresh_write ~bank:4))

let suite =
  [
    Alcotest.test_case "greedy picks emptiest" `Quick test_greedy_picks_emptiest;
    Alcotest.test_case "cost-benefit prefers old" `Quick test_cost_benefit_prefers_old_segments;
    Alcotest.test_case "cost-benefit LFS insight" `Quick
      test_cost_benefit_cleans_fuller_old_over_emptier_young;
    Alcotest.test_case "eligibility respected" `Quick test_select_respects_eligibility_and_state;
    Alcotest.test_case "write amplification" `Quick test_write_amplification;
    Alcotest.test_case "pick_free policies" `Quick test_pick_free_policies;
    Alcotest.test_case "pick_free skips used" `Quick test_pick_free_skips_non_free;
    Alcotest.test_case "evenness" `Quick test_evenness;
    Alcotest.test_case "relocation trigger" `Quick test_relocation_trigger;
    Alcotest.test_case "pick_free tie -> lowest id" `Quick test_pick_free_tie_lowest_id;
    Alcotest.test_case "select tie -> lowest id" `Quick test_cleaner_select_tie_lowest_id;
    Alcotest.test_case "relocation tie -> lowest id" `Quick
      test_relocation_victim_tie_lowest_id;
    Alcotest.test_case "lifetime writes" `Quick test_lifetime_writes;
    Alcotest.test_case "banks validate" `Quick test_banks_validate;
    Alcotest.test_case "banks allowed" `Quick test_banks_allowed;
  ]
