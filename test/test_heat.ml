open Sim

let sec n = Time.of_ns (int_of_float (n *. 1e9))

let test_unknown_block_cold () =
  let h = Storage.Heat.create ~half_life:(Time.span_s 10.0) () in
  Alcotest.(check (float 0.0)) "unknown" 0.0 (Storage.Heat.heat h ~now:(sec 5.0) ~block:1)

let test_accumulation () =
  let h = Storage.Heat.create ~half_life:(Time.span_s 10.0) () in
  Storage.Heat.record_write h ~now:(sec 0.0) ~block:1;
  Storage.Heat.record_write h ~now:(sec 0.0) ~block:1;
  Alcotest.(check (float 1e-9)) "two instant writes" 2.0
    (Storage.Heat.heat h ~now:(sec 0.0) ~block:1)

let test_decay_halves () =
  let h = Storage.Heat.create ~half_life:(Time.span_s 10.0) () in
  Storage.Heat.record_write h ~now:(sec 0.0) ~block:1;
  Alcotest.(check (float 1e-6)) "one half-life" 0.5
    (Storage.Heat.heat h ~now:(sec 10.0) ~block:1);
  Alcotest.(check (float 1e-6)) "two half-lives" 0.25
    (Storage.Heat.heat h ~now:(sec 20.0) ~block:1)

let test_decay_then_accumulate () =
  let h = Storage.Heat.create ~half_life:(Time.span_s 10.0) () in
  Storage.Heat.record_write h ~now:(sec 0.0) ~block:1;
  Storage.Heat.record_write h ~now:(sec 10.0) ~block:1;
  (* 1 decayed to 0.5, plus the new write. *)
  Alcotest.(check (float 1e-6)) "decayed + fresh" 1.5
    (Storage.Heat.heat h ~now:(sec 10.0) ~block:1)

let test_is_hot () =
  let h = Storage.Heat.create ~half_life:(Time.span_s 10.0) () in
  for _ = 1 to 5 do
    Storage.Heat.record_write h ~now:(sec 0.0) ~block:1
  done;
  Alcotest.(check bool) "hot now" true
    (Storage.Heat.is_hot h ~now:(sec 0.0) ~block:1 ~threshold:3.0);
  Alcotest.(check bool) "cools off" false
    (Storage.Heat.is_hot h ~now:(sec 60.0) ~block:1 ~threshold:3.0)

let test_forget () =
  let h = Storage.Heat.create ~half_life:(Time.span_s 10.0) () in
  Storage.Heat.record_write h ~now:(sec 0.0) ~block:1;
  Alcotest.(check int) "tracked" 1 (Storage.Heat.tracked h);
  Storage.Heat.forget h ~block:1;
  Alcotest.(check int) "forgotten" 0 (Storage.Heat.tracked h);
  Alcotest.(check (float 0.0)) "cold after forget" 0.0
    (Storage.Heat.heat h ~now:(sec 1.0) ~block:1)

let test_zero_half_life_rejected () =
  Alcotest.check_raises "zero half-life"
    (Invalid_argument "Heat.create: non-positive half_life") (fun () ->
      ignore (Storage.Heat.create ~half_life:Time.span_zero ()))

let test_sweep_evicts_cooled () =
  let h = Storage.Heat.create ~half_life:(Time.span_s 10.0) () in
  Storage.Heat.record_write h ~now:(sec 0.0) ~block:1;
  Storage.Heat.record_write h ~now:(sec 0.0) ~block:2;
  (* 30 half-lives later both entries are below the 2^-20 floor. *)
  Alcotest.(check int) "sweep drops both" 2
    (Storage.Heat.sweep h ~now:(sec 300.0));
  Alcotest.(check int) "empty after sweep" 0 (Storage.Heat.tracked h)

let test_sweep_keeps_warm () =
  let h = Storage.Heat.create ~half_life:(Time.span_s 10.0) () in
  Storage.Heat.record_write h ~now:(sec 0.0) ~block:1;
  (* cold *)
  Storage.Heat.record_write h ~now:(sec 299.0) ~block:2;
  (* warm *)
  Alcotest.(check int) "only the cold entry goes" 1
    (Storage.Heat.sweep h ~now:(sec 300.0));
  Alcotest.(check int) "warm survives" 1 (Storage.Heat.tracked h);
  Alcotest.(check bool) "and it is block 2" true
    (Storage.Heat.heat h ~now:(sec 300.0) ~block:2 > 0.0)

let test_tracked_bounded_over_long_replay () =
  (* The original bug: every block ever written stayed tracked forever.
     Touch many distinct blocks far apart in time; the periodic sweep keyed
     off record_write must keep the table from holding all of them. *)
  let h = Storage.Heat.create ~half_life:(Time.span_s 1.0) () in
  let nblocks = 10_000 in
  for b = 0 to nblocks - 1 do
    Storage.Heat.record_write h ~now:(sec (float_of_int b)) ~block:b
  done;
  Alcotest.(check bool)
    (Printf.sprintf "tracked %d << %d" (Storage.Heat.tracked h) nblocks)
    true
    (Storage.Heat.tracked h < nblocks / 10)

let prop_heat_decreasing_without_writes =
  QCheck.Test.make ~name:"heat: monotone decay without writes" ~count:200
    QCheck.(pair (float_range 0.1 100.0) (float_range 0.1 100.0))
    (fun (t1, dt) ->
      let h = Storage.Heat.create ~half_life:(Time.span_s 5.0) () in
      Storage.Heat.record_write h ~now:(sec 0.0) ~block:1;
      Storage.Heat.heat h ~now:(sec t1) ~block:1
      >= Storage.Heat.heat h ~now:(sec (t1 +. dt)) ~block:1)

let suite =
  [
    Alcotest.test_case "unknown cold" `Quick test_unknown_block_cold;
    Alcotest.test_case "accumulation" `Quick test_accumulation;
    Alcotest.test_case "decay halves" `Quick test_decay_halves;
    Alcotest.test_case "decay then accumulate" `Quick test_decay_then_accumulate;
    Alcotest.test_case "is_hot" `Quick test_is_hot;
    Alcotest.test_case "forget" `Quick test_forget;
    Alcotest.test_case "zero half-life" `Quick test_zero_half_life_rejected;
    Alcotest.test_case "sweep evicts cooled" `Quick test_sweep_evicts_cooled;
    Alcotest.test_case "sweep keeps warm" `Quick test_sweep_keeps_warm;
    Alcotest.test_case "tracked bounded" `Quick test_tracked_bounded_over_long_replay;
    QCheck_alcotest.to_alcotest prop_heat_decreasing_without_writes;
  ]
