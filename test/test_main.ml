let () =
  Alcotest.run "ssmc"
    [
      ("time", Test_time.suite);
      ("rng", Test_rng.suite);
      ("distribution", Test_distribution.suite);
      ("event_queue", Test_event_queue.suite);
      ("engine", Test_engine.suite);
      ("stat", Test_stat.suite);
      ("pool", Test_pool.suite);
      ("probe", Test_probe.suite);
      ("table_units", Test_table_units.suite);
      ("device", Test_device.suite);
      ("flash", Test_flash.suite);
      ("disk", Test_disk.suite);
      ("trace", Test_trace.suite);
      ("segment", Test_segment.suite);
      ("policies", Test_policies.suite);
      ("seg_index", Test_seg_index.suite);
      ("write_buffer", Test_write_buffer.suite);
      ("heat", Test_heat.suite);
      ("manager", Test_manager.suite);
      ("manager_diff", Test_manager_diff.suite);
      ("fs_base", Test_fs_base.suite);
      ("memfs", Test_memfs.suite);
      ("ffs", Test_ffs.suite);
      ("vm", Test_vm.suite);
      ("exec", Test_exec.suite);
      ("ssmc", Test_ssmc.suite);
      ("recovery_box", Test_recovery_box.suite);
      ("calibration", Test_calibration.suite);
      ("integration", Test_integration.suite);
      ("remount", Test_remount.suite);
      ("crash_consistency", Test_crash_consistency.suite);
      ("json", Test_json.suite);
      ("card", Test_card.suite);
      ("misc", Test_misc.suite);
    ]
