(* Seg_index: the bucketed multiset and the composite per-bank index that
   back the storage manager's O(log n) decisions. *)

module B = Storage.Seg_index.Bucketed
module I = Storage.Seg_index

let entry = Alcotest.(option (pair int int))

let test_bucketed_basics () =
  let b = B.create () in
  Alcotest.(check int) "empty size" 0 (B.size b);
  Alcotest.check entry "empty min" None (B.min_entry b);
  Alcotest.check entry "empty max" None (B.max_entry b);
  B.add b ~key:5 10;
  B.add b ~key:2 7;
  B.add b ~key:5 3;
  Alcotest.(check int) "size" 3 (B.size b);
  Alcotest.check entry "min key" (Some (2, 7)) (B.min_entry b);
  Alcotest.check entry "max key, lowest id in bucket" (Some (5, 3)) (B.max_entry b);
  B.remove b ~key:2 7;
  Alcotest.check entry "min moves after remove" (Some (5, 3)) (B.min_entry b);
  B.remove b ~key:5 3;
  Alcotest.check entry "tie mate remains" (Some (5, 10)) (B.min_entry b)

let test_bucketed_tie_lowest_id () =
  (* All keys equal: both extrema must report the lowest id — the property
     that makes index picks match the reference scans' first-in-id-order
     tie-breaking. *)
  let b = B.create () in
  List.iter (fun id -> B.add b ~key:4 id) [ 9; 1; 6; 3 ];
  Alcotest.check entry "min tie" (Some (4, 1)) (B.min_entry b);
  Alcotest.check entry "max tie" (Some (4, 1)) (B.max_entry b)

let test_bucketed_misuse_raises () =
  let b = B.create () in
  B.add b ~key:1 2;
  Alcotest.check_raises "double add"
    (Invalid_argument "Seg_index.Bucketed.add: id 2 already under key 1") (fun () ->
      B.add b ~key:1 2);
  Alcotest.check_raises "remove absent id"
    (Invalid_argument "Seg_index.Bucketed.remove: id 3 not under key 1") (fun () ->
      B.remove b ~key:1 3);
  Alcotest.check_raises "remove absent key"
    (Invalid_argument "Seg_index.Bucketed.remove: no bucket for key 9") (fun () ->
      B.remove b ~key:9 2)

(* Model-based check: the bucketed structure against a naive association
   list, over random add/remove/query sequences. *)
let prop_bucketed_matches_model =
  QCheck.Test.make ~name:"seg_index: bucketed matches naive model" ~count:300
    QCheck.(list (triple (int_bound 7) (int_bound 15) bool))
    (fun ops ->
      let b = B.create () in
      let model = ref [] in
      List.iter
        (fun (key, id, add) ->
          if add then begin
            if not (List.mem (key, id) !model) then begin
              B.add b ~key id;
              model := (key, id) :: !model
            end
          end
          else if List.mem (key, id) !model then begin
            B.remove b ~key id;
            model := List.filter (fun e -> e <> (key, id)) !model
          end)
        ops;
      let extreme pick =
        match !model with
        | [] -> None
        | l ->
          let key = List.fold_left (fun acc (k, _) -> pick acc k) (fst (List.hd l)) l in
          let ids = List.filter_map (fun (k, i) -> if k = key then Some i else None) l in
          Some (key, List.fold_left min (List.hd ids) ids)
      in
      B.size b = List.length !model
      && B.min_entry b = extreme min
      && B.max_entry b = extreme max)

let test_age_reps_order_and_cutoff () =
  let idx =
    I.create ~nbanks:1 ~wear_keyed:true ~track_live:false ~track_erase:false
      ~track_age:true
  in
  (* Three age groups; the middle one holds a tie on the live count. *)
  I.add_closed idx ~bank:0 ~id:5 ~live:3 ~erase:0 ~lt_ns:200;
  I.add_closed idx ~bank:0 ~id:1 ~live:6 ~erase:0 ~lt_ns:100;
  I.add_closed idx ~bank:0 ~id:7 ~live:2 ~erase:0 ~lt_ns:200;
  I.add_closed idx ~bank:0 ~id:2 ~live:2 ~erase:0 ~lt_ns:200;
  I.add_closed idx ~bank:0 ~id:9 ~live:0 ~erase:0 ~lt_ns:300;
  let seen = ref [] in
  I.iter_age_reps idx ~bank:0 ~f:(fun ~lt_ns ~id ->
      seen := (lt_ns, id) :: !seen;
      true);
  Alcotest.(check (list (pair int int)))
    "oldest first, emptiest-lowest-id rep per group"
    [ (100, 1); (200, 2); (300, 9) ]
    (List.rev !seen);
  (* Early cutoff stops the walk. *)
  let seen = ref [] in
  I.iter_age_reps idx ~bank:0 ~f:(fun ~lt_ns ~id ->
      seen := (lt_ns, id) :: !seen;
      false);
  Alcotest.(check (list (pair int int))) "stops on false" [ (100, 1) ] (List.rev !seen);
  (* A live-count change moves the representative. *)
  I.closed_live_changed idx ~bank:0 ~id:7 ~old_live:2 ~new_live:1 ~lt_ns:200;
  let seen = ref [] in
  I.iter_age_reps idx ~bank:0 ~f:(fun ~lt_ns:_ ~id ->
      seen := id :: !seen;
      true);
  Alcotest.(check (list int)) "rep follows live counts" [ 1; 7; 9 ] (List.rev !seen)

let test_free_side_counters () =
  let idx =
    I.create ~nbanks:2 ~wear_keyed:true ~track_live:true ~track_erase:true
      ~track_age:false
  in
  I.add_free idx ~bank:0 ~key:3 ~id:0;
  I.add_free idx ~bank:0 ~key:3 ~id:1;
  I.add_free idx ~bank:1 ~key:1 ~id:8;
  Alcotest.(check int) "total" 3 (I.free_count idx);
  Alcotest.(check int) "bank 0" 2 (I.bank_free_count idx ~bank:0);
  Alcotest.check entry "least worn, tie to low id" (Some (3, 0))
    (I.least_worn_free idx ~bank:0);
  I.remove_free idx ~bank:0 ~key:3 ~id:0;
  Alcotest.(check int) "total after remove" 2 (I.free_count idx);
  Alcotest.check entry "survivor" (Some (3, 1)) (I.least_worn_free idx ~bank:0);
  Alcotest.check entry "other bank untouched" (Some (1, 8)) (I.most_worn_free idx ~bank:1)

let suite =
  [
    Alcotest.test_case "bucketed basics" `Quick test_bucketed_basics;
    Alcotest.test_case "bucketed tie -> lowest id" `Quick test_bucketed_tie_lowest_id;
    Alcotest.test_case "bucketed misuse raises" `Quick test_bucketed_misuse_raises;
    QCheck_alcotest.to_alcotest prop_bucketed_matches_model;
    Alcotest.test_case "age reps order & cutoff" `Quick test_age_reps_order_and_cutoff;
    Alcotest.test_case "free side counters" `Quick test_free_side_counters;
  ]
