open Sim

let test_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy () =
  let a = Rng.create ~seed:3 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_split_independence () =
  let a = Rng.create ~seed:5 in
  let b = Rng.split a in
  (* The two streams should not be identical over a window. *)
  let same = ref 0 in
  for _ = 1 to 50 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  Alcotest.(check bool) "split streams diverge" true (!same < 5)

let test_split_ix () =
  (* split_ix t ~index:i is the stream the (i+1)-th consecutive split of a
     copy of t would yield... *)
  let t = Rng.create ~seed:29 in
  let splitter = Rng.copy t in
  let consecutive = List.init 4 (fun _ -> Rng.split splitter) in
  List.iteri
    (fun i s ->
      let keyed = Rng.split_ix t ~index:i in
      for _ = 1 to 10 do
        Alcotest.(check int64)
          (Printf.sprintf "split_ix %d matches %d-th split" i (i + 1))
          (Rng.bits64 s) (Rng.bits64 keyed)
      done)
    consecutive;
  (* ... and t itself is not advanced by any of it. *)
  Alcotest.(check int64) "split_ix is pure"
    (Rng.bits64 (Rng.create ~seed:29))
    (Rng.bits64 t);
  Alcotest.check_raises "negative index" (Invalid_argument "Rng.split_ix: negative index")
    (fun () -> ignore (Rng.split_ix (Rng.create ~seed:1) ~index:(-1)))

let test_split_ix2 () =
  (* split_ix2 is the fused two-level split: identical streams to
     split_ix (split_ix t ~index) ~index:stream, pure, and rejecting
     negative keys like its building block. *)
  let t = Rng.create ~seed:31 in
  for index = 0 to 5 do
    for stream = 0 to 5 do
      let fused = Rng.split_ix2 t ~index ~stream in
      let nested = Rng.split_ix (Rng.split_ix t ~index) ~index:stream in
      for _ = 1 to 5 do
        Alcotest.(check int64)
          (Printf.sprintf "split_ix2 (%d,%d) = nested split_ix" index stream)
          (Rng.bits64 nested) (Rng.bits64 fused)
      done
    done
  done;
  Alcotest.(check int64) "split_ix2 is pure"
    (Rng.bits64 (Rng.create ~seed:31))
    (Rng.bits64 t);
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.split_ix2: negative index") (fun () ->
      ignore (Rng.split_ix2 (Rng.create ~seed:1) ~index:(-1) ~stream:0));
  Alcotest.check_raises "negative stream"
    (Invalid_argument "Rng.split_ix2: negative stream") (fun () ->
      ignore (Rng.split_ix2 (Rng.create ~seed:1) ~index:0 ~stream:(-1)))

let test_split_ix2_fleet_collisions () =
  (* Domain separation at fleet scale: the per-device seed family must
     not collide anywhere across 2^20 device indices x 4 streams — a
     collision would hand two fleet devices correlated randomness.  The
     fingerprint is each derived generator's first draw (one int64 folded
     to an int); the set is checked by sort + adjacent scan, so the test
     is O(n log n) and allocation stays in one flat int array. *)
  let devices = 1 lsl 20 and streams = 4 in
  let t = Rng.create ~seed:1993 in
  let n = devices * streams in
  let fp = Array.make n 0 in
  for index = 0 to devices - 1 do
    for stream = 0 to streams - 1 do
      fp.((index * streams) + stream) <-
        Int64.to_int (Rng.bits64 (Rng.split_ix2 t ~index ~stream))
    done
  done;
  Array.sort compare fp;
  let collisions = ref 0 in
  for i = 1 to n - 1 do
    if fp.(i) = fp.(i - 1) then incr collisions
  done;
  Alcotest.(check int)
    (Printf.sprintf "no fingerprint collisions across %d device-index x stream pairs" n)
    0 !collisions

let test_int_bounds_errors () =
  let rng = Rng.create ~seed:11 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound <= 0") (fun () ->
      ignore (Rng.int rng 0));
  Alcotest.check_raises "bad range" (Invalid_argument "Rng.int_in: hi < lo") (fun () ->
      ignore (Rng.int_in rng ~lo:3 ~hi:2));
  Alcotest.check_raises "empty choose" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng [||]))

let test_uniformity_rough () =
  let rng = Rng.create ~seed:13 in
  let buckets = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d within 15%%" i)
        true
        (abs (c - (n / 10)) < n * 15 / 100))
    buckets

let test_bernoulli_extremes () =
  let rng = Rng.create ~seed:17 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng ~p:0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng ~p:1.0)
  done

let prop_int_in_bounds =
  QCheck.Test.make ~name:"rng: int bound respected" ~count:1000
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_int_in_range =
  QCheck.Test.make ~name:"rng: int_in inclusive range" ~count:1000
    QCheck.(triple small_int (int_range (-1000) 1000) (int_range 0 1000))
    (fun (seed, lo, extent) ->
      let rng = Rng.create ~seed in
      let hi = lo + extent in
      let v = Rng.int_in rng ~lo ~hi in
      v >= lo && v <= hi)

let prop_unit_float_range =
  QCheck.Test.make ~name:"rng: unit_float in [0,1)" ~count:1000 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed in
      let v = Rng.unit_float rng in
      v >= 0.0 && v < 1.0)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"rng: shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Rng.create ~seed in
      let a = Array.of_list l in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "split_ix keyed splitting" `Quick test_split_ix;
    Alcotest.test_case "split_ix2 two-level splitting" `Quick test_split_ix2;
    Alcotest.test_case "split_ix2 fleet-scale collision freedom" `Quick
      test_split_ix2_fleet_collisions;
    Alcotest.test_case "bound errors" `Quick test_int_bounds_errors;
    Alcotest.test_case "rough uniformity" `Quick test_uniformity_rough;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    QCheck_alcotest.to_alcotest prop_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_int_in_range;
    QCheck_alcotest.to_alcotest prop_unit_float_range;
    QCheck_alcotest.to_alcotest prop_shuffle_permutation;
  ]
