open Sim

(* A small machine: 256KB flash, 2 banks, 8-sector segments. *)
let make ?(flash_kib = 256) ?(nbanks = 2) ?(buffer_blocks = 16) ?(delay = 30.0)
    ?(cleaner = Storage.Cleaner.Cost_benefit) ?(wear = Storage.Wear.Dynamic)
    ?(banking = Storage.Banks.Unified) ?(endurance = 1_000) ?hot_threshold ?diff_log () =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create
      (Device.Flash.config ~nbanks ~endurance_override:endurance
         ~size_bytes:(flash_kib * 1024) ())
  in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let cfg =
    {
      Storage.Manager.default_config with
      Storage.Manager.segment_sectors = 8;
      buffer =
        {
          Storage.Write_buffer.capacity_blocks = buffer_blocks;
          writeback_delay = Time.span_s delay;
          refresh_on_rewrite = true;
        };
      cleaner;
      wear;
      banking;
      hot_threshold;
      diff_log;
    }
  in
  (engine, Storage.Manager.create cfg ~engine ~flash ~dram, flash)

let advance engine span = Engine.run_until engine (Time.add (Engine.now engine) span)

let test_create_validation () =
  let engine = Engine.create () in
  let flash = Device.Flash.create (Device.Flash.config ~nbanks:2 ~size_bytes:(64 * 1024) ()) in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let bad cfg msg =
    Alcotest.check_raises msg (Invalid_argument ("Manager.create: " ^ msg)) (fun () ->
        ignore (Storage.Manager.create cfg ~engine ~flash ~dram))
  in
  bad
    { Storage.Manager.default_config with Storage.Manager.segment_sectors = 100 }
    "segment does not fit in a bank";
  bad
    { Storage.Manager.default_config with Storage.Manager.low_water = 0 }
    "watermarks must satisfy 1 <= low <= high"

let test_write_read_free_cycle () =
  let _engine, m, _ = make () in
  let b = Storage.Manager.alloc m in
  let wspan = Storage.Manager.write_block m b in
  Alcotest.(check bool) "buffered write is DRAM-fast" true (Time.span_to_us wspan < 100.0);
  let rspan = Storage.Manager.read_block m b in
  Alcotest.(check bool) "read of dirty block is DRAM-fast" true
    (Time.span_to_us rspan < 100.0);
  let stats = Storage.Manager.stats m in
  Alcotest.(check int) "one client write" 1 stats.Storage.Manager.client_writes;
  Alcotest.(check int) "dirty" 1 stats.Storage.Manager.dirty_blocks;
  Storage.Manager.free_block m b;
  let stats = Storage.Manager.stats m in
  Alcotest.(check int) "cancelled" 1 stats.Storage.Manager.cancelled_blocks;
  Alcotest.check_raises "freed block unusable"
    (Invalid_argument (Printf.sprintf "Manager: unknown block %d" b)) (fun () ->
      ignore (Storage.Manager.read_block m b))

let test_flush_on_deadline () =
  let engine, m, flash = make ~delay:5.0 () in
  let b = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m b);
  Alcotest.(check int) "nothing programmed yet" 0 (Device.Flash.programs flash);
  advance engine (Time.span_s 10.0);
  Alcotest.(check int) "flushed after deadline" 1 (Device.Flash.programs flash);
  Alcotest.(check bool) "block now in flash" true
    (Storage.Manager.segment_of_block m b <> None);
  (* Reading it now touches flash. *)
  let rspan = Storage.Manager.read_block m b in
  Alcotest.(check bool) "flash-speed read" true (Time.span_to_us rspan > 10.0)

let test_absorption () =
  let engine, m, flash = make ~delay:5.0 () in
  let b = Storage.Manager.alloc m in
  for _ = 1 to 10 do
    ignore (Storage.Manager.write_block m b)
  done;
  advance engine (Time.span_s 60.0);
  (* Ten writes, one program. *)
  Alcotest.(check int) "one program for ten writes" 1 (Device.Flash.programs flash);
  let stats = Storage.Manager.stats m in
  Alcotest.(check int) "absorbed" 9 stats.Storage.Manager.absorbed_writes;
  Alcotest.(check (float 1e-9)) "reduction 90%" 0.9 stats.Storage.Manager.write_reduction

let test_cancellation_avoids_flash () =
  let engine, m, flash = make ~delay:5.0 () in
  let b = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m b);
  Storage.Manager.free_block m b;
  advance engine (Time.span_s 60.0);
  Alcotest.(check int) "never reached flash" 0 (Device.Flash.programs flash)

let test_write_through_mode () =
  let _engine, m, flash = make ~buffer_blocks:0 () in
  let b = Storage.Manager.alloc m in
  let span = Storage.Manager.write_block m b in
  Alcotest.(check int) "programmed immediately" 1 (Device.Flash.programs flash);
  Alcotest.(check bool) "client pays flash latency" true (Time.span_to_ms span > 1.0)

let test_overwrite_supersedes_flash_copy () =
  let engine, m, _ = make ~delay:1.0 () in
  let b = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m b);
  advance engine (Time.span_s 5.0);
  let seg1 = Option.get (Storage.Manager.segment_of_block m b) in
  ignore (Storage.Manager.write_block m b);
  Alcotest.(check bool) "flash copy superseded" true
    (Storage.Manager.segment_of_block m b = None);
  advance engine (Time.span_s 5.0);
  let seg2 = Option.get (Storage.Manager.segment_of_block m b) in
  ignore (seg1, seg2);
  let stats = Storage.Manager.stats m in
  Alcotest.(check int) "two programs" 2 stats.Storage.Manager.blocks_flushed

let test_cleaning_triggers_and_preserves () =
  (* Fill flash with live+dead data until cleaning must run. *)
  let engine, m, flash = make ~flash_kib:64 ~delay:0.5 ~buffer_blocks:4 () in
  (* 64KB = 128 sectors = 16 segments of 8. Write 100 blocks, rewrite them
     to create garbage, forcing cleaning. *)
  let blocks = Array.init 60 (fun _ -> Storage.Manager.alloc m) in
  Array.iter (fun b -> ignore (Storage.Manager.write_block m b)) blocks;
  advance engine (Time.span_s 5.0);
  Array.iter (fun b -> ignore (Storage.Manager.write_block m b)) blocks;
  advance engine (Time.span_s 5.0);
  Array.iter (fun b -> ignore (Storage.Manager.write_block m b)) blocks;
  advance engine (Time.span_s 5.0);
  let stats = Storage.Manager.stats m in
  Alcotest.(check bool) "cleaning ran" true (stats.Storage.Manager.cleanings > 0);
  Alcotest.(check bool) "erases happened" true (Device.Flash.erases flash > 0);
  (* Every block still lives exactly once. *)
  Alcotest.(check int) "all live" 60 stats.Storage.Manager.live_blocks;
  Array.iter
    (fun b ->
      Alcotest.(check bool) "block still mapped" true
        (Storage.Manager.segment_of_block m b <> None))
    blocks

let test_out_of_space () =
  let _engine, m, _ = make ~flash_kib:32 ~buffer_blocks:0 () in
  (* 32KB = 64 sectors; write-through fills them with live data. *)
  Alcotest.check_raises "out of space" Storage.Manager.Out_of_space (fun () ->
      for _ = 1 to 70 do
        let b = Storage.Manager.alloc m in
        ignore (Storage.Manager.write_block m b)
      done)

let test_load_cold_placement_partitioned () =
  let _engine, m, _ =
    make ~nbanks:2 ~banking:(Storage.Banks.Partitioned { write_banks = 1 }) ()
  in
  (* Cold loads land in the read-mostly banks (bank >= 1). *)
  for _ = 1 to 20 do
    let b = Storage.Manager.alloc m in
    Storage.Manager.load_cold m b;
    let seg = Option.get (Storage.Manager.segment_of_block m b) in
    let segs_per_bank = Storage.Manager.nsegments m / 2 in
    Alcotest.(check bool) "cold in read bank" true (seg >= segs_per_bank)
  done;
  (* Fresh writes land in the write bank. *)
  let b = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m b);
  ignore (Storage.Manager.flush_all m);
  let seg = Option.get (Storage.Manager.segment_of_block m b) in
  Alcotest.(check bool) "fresh in write bank" true
    (seg < Storage.Manager.nsegments m / 2)

let test_flush_all () =
  let _engine, m, flash = make () in
  let blocks = List.init 5 (fun _ -> Storage.Manager.alloc m) in
  List.iter (fun b -> ignore (Storage.Manager.write_block m b)) blocks;
  let span = Storage.Manager.flush_all m in
  Alcotest.(check int) "all programmed" 5 (Device.Flash.programs flash);
  Alcotest.(check bool) "took flash time" true (Time.span_to_ms span > 5.0);
  Alcotest.(check int) "buffer empty" 0
    (Storage.Manager.stats m).Storage.Manager.dirty_blocks

let test_hot_block_retention () =
  let engine, m, flash = make ~delay:2.0 ~hot_threshold:3.0 () in
  let hot = Storage.Manager.alloc m in
  let cold = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m cold);
  (* Keep the hot block hot across several deadlines. *)
  for _ = 1 to 10 do
    ignore (Storage.Manager.write_block m hot);
    advance engine (Time.span_s 1.0)
  done;
  advance engine (Time.span_s 4.0);
  let stats = Storage.Manager.stats m in
  Alcotest.(check bool) "hot retained at least once" true
    (stats.Storage.Manager.hot_retained > 0);
  Alcotest.(check int) "cold flushed" 1
    (Device.Flash.programs flash - stats.Storage.Manager.blocks_cleaned
    |> min (Device.Flash.programs flash));
  ignore cold

let test_wear_leveling_reduces_spread () =
  (* Hammer a hot set; static leveling should keep the erase spread below
     the none policy's. *)
  let run wear =
    let engine, m, _ =
      make ~flash_kib:32 ~buffer_blocks:4 ~delay:0.2 ~wear ~endurance:100_000 ()
    in
    (* 8 cold blocks pinning segments + hot rewrites *)
    let cold = Array.init 24 (fun _ -> Storage.Manager.alloc m) in
    Array.iter (fun b -> Storage.Manager.load_cold m b) cold;
    let hot = Array.init 8 (fun _ -> Storage.Manager.alloc m) in
    for _ = 1 to 300 do
      Array.iter (fun b -> ignore (Storage.Manager.write_block m b)) hot;
      advance engine (Time.span_s 1.0)
    done;
    let e = Storage.Manager.wear_evenness m in
    e.Storage.Wear.max_erases - e.Storage.Wear.min_erases
  in
  let spread_none = run Storage.Wear.None_ in
  let spread_static = run (Storage.Wear.Static { spread_threshold = 4 }) in
  Alcotest.(check bool)
    (Printf.sprintf "static spread (%d) < none spread (%d)" spread_static spread_none)
    true (spread_static < spread_none)

let test_watermark_flush () =
  (* A long deadline but a 50% occupancy watermark: crossing it starts
     background flushing well before any deadline expires. *)
  let engine = Engine.create () in
  let flash =
    Device.Flash.create (Device.Flash.config ~nbanks:2 ~size_bytes:(256 * 1024) ())
  in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let cfg =
    {
      Storage.Manager.default_config with
      Storage.Manager.segment_sectors = 8;
      flush_watermark = Some 0.5;
      buffer =
        {
          Storage.Write_buffer.capacity_blocks = 16;
          writeback_delay = Time.span_s 1000.0;
          refresh_on_rewrite = true;
        };
    }
  in
  let m = Storage.Manager.create cfg ~engine ~flash ~dram in
  for _ = 1 to 12 do
    let b = Storage.Manager.alloc m in
    ignore (Storage.Manager.write_block m b)
  done;
  advance engine (Time.span_s 5.0);
  let stats = Storage.Manager.stats m in
  Alcotest.(check bool) "flushed ahead of deadlines" true
    (stats.Storage.Manager.blocks_flushed > 0);
  Alcotest.(check bool) "occupancy brought under the watermark" true
    (stats.Storage.Manager.dirty_blocks <= 8);
  (* Without the watermark, nothing would have flushed yet. *)
  let engine2 = Engine.create () in
  let flash2 =
    Device.Flash.create (Device.Flash.config ~nbanks:2 ~size_bytes:(256 * 1024) ())
  in
  let dram2 = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let m2 =
    Storage.Manager.create
      { cfg with Storage.Manager.flush_watermark = None }
      ~engine:engine2 ~flash:flash2 ~dram:dram2
  in
  for _ = 1 to 12 do
    let b = Storage.Manager.alloc m2 in
    ignore (Storage.Manager.write_block m2 b)
  done;
  advance engine2 (Time.span_s 5.0);
  Alcotest.(check int) "control: all still buffered" 12
    (Storage.Manager.stats m2).Storage.Manager.dirty_blocks

let test_reset_traffic () =
  let engine, m, flash = make ~delay:0.5 () in
  let b = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m b);
  advance engine (Time.span_s 2.0);
  Storage.Manager.reset_traffic m;
  let stats = Storage.Manager.stats m in
  Alcotest.(check int) "writes reset" 0 stats.Storage.Manager.client_writes;
  Alcotest.(check int) "flush reset" 0 stats.Storage.Manager.blocks_flushed;
  Alcotest.(check int) "device reset" 0 (Device.Flash.programs flash);
  (* Placement survives the reset. *)
  Alcotest.(check bool) "mapping intact" true (Storage.Manager.segment_of_block m b <> None)

(* Device programs must exactly account for the manager's flush, clean and
   cold-load traffic: nothing programs flash except through those paths. *)
let prop_program_accounting =
  QCheck.Test.make ~name:"manager: device programs = flushed + cleaned + cold" ~count:40
    QCheck.(list_of_size (Gen.int_range 10 100) (pair (int_bound 19) (int_bound 4)))
    (fun ops ->
      let engine, m, flash = make ~flash_kib:64 ~buffer_blocks:8 ~delay:1.0 () in
      let blocks = Array.init 20 (fun _ -> Storage.Manager.alloc m) in
      List.iter
        (fun (i, action) ->
          match action with
          | 0 | 1 -> ignore (Storage.Manager.write_block m blocks.(i))
          | 2 -> ignore (Storage.Manager.read_block m blocks.(i))
          | 3 -> advance engine (Time.span_s 2.0)
          | _ ->
            (* Cold loads need a block with no data yet: use a fresh one. *)
            Storage.Manager.load_cold m (Storage.Manager.alloc m))
        ops;
      ignore (Storage.Manager.flush_all m);
      let stats = Storage.Manager.stats m in
      Device.Flash.programs flash
      = stats.Storage.Manager.blocks_flushed + stats.Storage.Manager.blocks_cleaned
        + stats.Storage.Manager.cold_loads
      && Device.Flash.bytes_programmed flash = 512 * Device.Flash.programs flash)

(* The file system is consistent at *every* instant, not just at rest:
   stop the clock mid-flush, mid-cleaning, and check. *)
let test_consistency_mid_flight () =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create (Device.Flash.config ~nbanks:2 ~size_bytes:(128 * 1024) ())
  in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let cfg =
    {
      Storage.Manager.default_config with
      Storage.Manager.segment_sectors = 8;
      buffer =
        {
          Storage.Write_buffer.capacity_blocks = 16;
          writeback_delay = Time.span_s 1.0;
          refresh_on_rewrite = false;
        };
    }
  in
  let m = Storage.Manager.create cfg ~engine ~flash ~dram in
  let fs = Fs.Memfs.create_fs ~manager:m () in
  let rng = Rng.create ~seed:41 in
  for round = 1 to 60 do
    let path = Printf.sprintf "/f%d" (Rng.int rng 8) in
    (match Fs.Memfs.write fs path ~offset:0 ~bytes:(512 * (1 + Rng.int rng 6)) with
    | Ok _ -> ()
    | Error Fs.Fs_error.Enoent ->
      ignore (Fs.Memfs.create fs path);
      ignore (Fs.Memfs.write fs path ~offset:0 ~bytes:512)
    | Error e -> Alcotest.failf "write: %a" Fs.Fs_error.pp e);
    if Rng.bernoulli rng ~p:0.2 then ignore (Fs.Memfs.unlink fs path);
    (* Advance by an odd sub-second step so we land between flush events. *)
    advance engine (Time.span_ms (50.0 +. float_of_int (Rng.int rng 900)));
    match Fs.Memfs.check fs with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "round %d: fsck: %s" round msg
  done

let prop_no_data_loss_random_ops =
  QCheck.Test.make ~name:"manager: random ops never lose a live block" ~count:30
    QCheck.(list_of_size (Gen.int_range 10 120) (pair (int_bound 19) (int_bound 3)))
    (fun ops ->
      let engine, m, _ = make ~flash_kib:64 ~buffer_blocks:8 ~delay:1.0 () in
      let blocks = Array.init 20 (fun _ -> Storage.Manager.alloc m) in
      let live = Array.make 20 false in
      List.iter
        (fun (i, action) ->
          match action with
          | 0 | 1 ->
            ignore (Storage.Manager.write_block m blocks.(i));
            live.(i) <- true
          | 2 ->
            if live.(i) then ignore (Storage.Manager.read_block m blocks.(i))
          | _ -> advance engine (Time.span_s 2.0))
        ops;
      ignore (Storage.Manager.flush_all m);
      (* Every written block has exactly one live flash home. *)
      Array.for_all2
        (fun b is_live ->
          if is_live then Storage.Manager.segment_of_block m b <> None else true)
        blocks live)

(* --- Page-differential logging -------------------------------------------- *)

let diff_cfg ?(delta_bytes = 64) ?(merge_len = 4) () =
  { Storage.Diff_log.default_config with Storage.Diff_log.delta_bytes; merge_len }

let diff_stats_exn m =
  match Storage.Manager.diff_stats m with
  | Some s -> s
  | None -> Alcotest.fail "diff_stats: expected Some"

let test_diff_delta_traffic () =
  (* Write-through so every overwrite programs synchronously; huge merge
     threshold so the chain never folds. *)
  let _engine, m, flash =
    make ~buffer_blocks:0 ~diff_log:(diff_cfg ~merge_len:100 ()) ()
  in
  let full = Storage.Manager.block_bytes m in
  let b = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m b);
  Alcotest.(check int) "first write programs a full page" full
    (Device.Flash.bytes_programmed flash);
  for _ = 1 to 3 do
    ignore (Storage.Manager.write_block m b)
  done;
  Alcotest.(check int) "overwrites program 64-byte deltas" (full + (3 * 64))
    (Device.Flash.bytes_programmed flash);
  Alcotest.(check int) "chain holds three deltas" 3
    (Storage.Manager.delta_chain_length m b);
  let s = diff_stats_exn m in
  Alcotest.(check int) "deltas_flushed" 3 s.Storage.Diff_log.deltas_flushed;
  Alcotest.(check int) "delta bytes" (3 * 64) s.Storage.Diff_log.delta_bytes_flushed;
  Alcotest.(check int) "no merge yet" 0 s.Storage.Diff_log.merges;
  (* The durable home reported is still the base page. *)
  Alcotest.(check bool) "base placement reported" true
    (Storage.Manager.location_of_block m b <> None)

let test_diff_read_reassembly () =
  let _engine, m, _ =
    make ~buffer_blocks:0 ~diff_log:(diff_cfg ~merge_len:100 ()) ()
  in
  let b = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m b);
  let base_read = Storage.Manager.read_block m b in
  for _ = 1 to 3 do
    ignore (Storage.Manager.write_block m b)
  done;
  let chained_read = Storage.Manager.read_block m b in
  Alcotest.(check bool) "reassembly costs more than a base read" true
    (Time.span_to_us chained_read > Time.span_to_us base_read);
  let s = diff_stats_exn m in
  Alcotest.(check int) "one reassembled read" 1 s.Storage.Diff_log.reassembled_reads

let test_diff_merge_at_threshold () =
  let _engine, m, _ = make ~buffer_blocks:0 ~diff_log:(diff_cfg ~merge_len:3 ()) () in
  let b = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m b);
  for _ = 1 to 3 do
    ignore (Storage.Manager.write_block m b)
  done;
  (* The third delta trips merge_len = 3: the chain folds back into one
     full page on the same flush cursor. *)
  let s = diff_stats_exn m in
  Alcotest.(check int) "one merge" 1 s.Storage.Diff_log.merges;
  Alcotest.(check int) "chain folded" 0 (Storage.Manager.delta_chain_length m b);
  Alcotest.(check int) "exactly one live slot remains" 1
    (Storage.Manager.stats m).Storage.Manager.live_blocks;
  Alcotest.(check bool) "block still flushed" true
    (Storage.Manager.segment_of_block m b <> None)

let test_diff_free_drops_chain () =
  let _engine, m, _ = make ~buffer_blocks:0 ~diff_log:(diff_cfg ~merge_len:100 ()) () in
  let b = Storage.Manager.alloc m in
  for _ = 0 to 2 do
    ignore (Storage.Manager.write_block m b)
  done;
  Alcotest.(check int) "chained before free" 2 (Storage.Manager.delta_chain_length m b);
  Storage.Manager.free_block m b;
  Alcotest.(check int) "no live slots after free" 0
    (Storage.Manager.stats m).Storage.Manager.live_blocks;
  Alcotest.(check int) "no chains after free" 0 (diff_stats_exn m).Storage.Diff_log.chains

let test_diff_buffered_absorption () =
  (* A chained block rewritten while dirty absorbs in DRAM as usual; the
     eventual deadline flush programs exactly one delta. *)
  let engine, m, flash = make ~delay:5.0 ~diff_log:(diff_cfg ~merge_len:100 ()) () in
  let b = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m b);
  advance engine (Time.span_s 10.0);
  Alcotest.(check bool) "base flushed" true (Storage.Manager.segment_of_block m b <> None);
  let before = Device.Flash.bytes_programmed flash in
  ignore (Storage.Manager.write_block m b);
  ignore (Storage.Manager.write_block m b);
  (* While dirty, the durable home is still the live base page. *)
  Alcotest.(check bool) "dirty" true (Storage.Manager.block_is_dirty m b);
  Alcotest.(check bool) "base stays reported while dirty" true
    (Storage.Manager.segment_of_block m b <> None);
  advance engine (Time.span_s 10.0);
  Alcotest.(check int) "two absorbed writes flush as one delta" (before + 64)
    (Device.Flash.bytes_programmed flash);
  Alcotest.(check int) "chain length 1" 1 (Storage.Manager.delta_chain_length m b)

let test_diff_crash_recovers_chain () =
  let _engine, m, _ = make ~buffer_blocks:0 ~diff_log:(diff_cfg ~merge_len:100 ()) () in
  let blocks = Array.init 4 (fun _ -> Storage.Manager.alloc m) in
  Array.iter (fun b -> ignore (Storage.Manager.write_block m b)) blocks;
  (* Chains of length 0, 1, 2, 3. *)
  Array.iteri
    (fun i b ->
      for _ = 1 to i do
        ignore (Storage.Manager.write_block m b)
      done)
    blocks;
  let m', _span, report = Storage.Manager.crash_and_remount m in
  Alcotest.(check int) "all blocks recovered" 4 report.Storage.Manager.live_recovered;
  Alcotest.(check int) "nothing lost" 0 report.Storage.Manager.buffered_lost;
  Array.iteri
    (fun i b ->
      Alcotest.(check int)
        (Printf.sprintf "block %d chain survives remount" i)
        i
        (Storage.Manager.delta_chain_length m' b);
      ignore (Storage.Manager.read_block m' b))
    blocks;
  (* Remount is idempotent: a second crash rebuilds the same chains. *)
  let m'', _, _ = Storage.Manager.crash_and_remount m' in
  Array.iteri
    (fun i b ->
      Alcotest.(check int)
        (Printf.sprintf "block %d chain survives second remount" i)
        i
        (Storage.Manager.delta_chain_length m'' b))
    blocks

let test_diff_cleaning_relocates_chains () =
  (* Tiny flash + churn forces the cleaner to copy base pages and delta
     records; every block must stay readable with its chain intact. *)
  let engine, m, _ =
    make ~flash_kib:64 ~buffer_blocks:0 ~diff_log:(diff_cfg ~merge_len:6 ()) ()
  in
  let blocks = Array.init 12 (fun _ -> Storage.Manager.alloc m) in
  let rng = Rng.create ~seed:7 in
  Array.iter (fun b -> ignore (Storage.Manager.write_block m b)) blocks;
  for _ = 1 to 400 do
    let b = blocks.(Rng.int rng 12) in
    ignore (Storage.Manager.write_block m b);
    advance engine (Time.span_ms 1.0)
  done;
  Array.iter
    (fun b ->
      Alcotest.(check bool) "flushed" true (Storage.Manager.segment_of_block m b <> None);
      ignore (Storage.Manager.read_block m b))
    blocks;
  (* Chains survive a crash even after the cleaner moved them around. *)
  let m', _, report = Storage.Manager.crash_and_remount m in
  Alcotest.(check int) "all recovered" 12 report.Storage.Manager.live_recovered;
  Array.iter (fun b -> ignore (Storage.Manager.read_block m' b)) blocks

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "write/read/free cycle" `Quick test_write_read_free_cycle;
    Alcotest.test_case "flush on deadline" `Quick test_flush_on_deadline;
    Alcotest.test_case "absorption" `Quick test_absorption;
    Alcotest.test_case "cancellation" `Quick test_cancellation_avoids_flash;
    Alcotest.test_case "write-through" `Quick test_write_through_mode;
    Alcotest.test_case "overwrite supersedes" `Quick test_overwrite_supersedes_flash_copy;
    Alcotest.test_case "cleaning preserves data" `Quick test_cleaning_triggers_and_preserves;
    Alcotest.test_case "out of space" `Quick test_out_of_space;
    Alcotest.test_case "partitioned placement" `Quick test_load_cold_placement_partitioned;
    Alcotest.test_case "flush_all" `Quick test_flush_all;
    Alcotest.test_case "hot retention" `Quick test_hot_block_retention;
    Alcotest.test_case "wear leveling spread" `Slow test_wear_leveling_reduces_spread;
    Alcotest.test_case "watermark flush" `Quick test_watermark_flush;
    Alcotest.test_case "consistency mid-flight" `Quick test_consistency_mid_flight;
    Alcotest.test_case "reset traffic" `Quick test_reset_traffic;
    Alcotest.test_case "diff: delta traffic" `Quick test_diff_delta_traffic;
    Alcotest.test_case "diff: read reassembly" `Quick test_diff_read_reassembly;
    Alcotest.test_case "diff: merge at threshold" `Quick test_diff_merge_at_threshold;
    Alcotest.test_case "diff: free drops chain" `Quick test_diff_free_drops_chain;
    Alcotest.test_case "diff: buffered absorption" `Quick test_diff_buffered_absorption;
    Alcotest.test_case "diff: crash recovers chains" `Quick test_diff_crash_recovers_chain;
    Alcotest.test_case "diff: cleaning relocates chains" `Quick
      test_diff_cleaning_relocates_chains;
    QCheck_alcotest.to_alcotest prop_program_accounting;
    QCheck_alcotest.to_alcotest prop_no_data_loss_random_ops;
  ]
