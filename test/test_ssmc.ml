(* Whole-machine assembly, trends, lifetime, recovery, sizing. *)
open Sim

(* --- Trends (Section 2 / E2) ------------------------------------------------- *)

let test_trend_anchors () =
  (* At the anchor year the model must reproduce the Section 2 price points. *)
  Alcotest.(check (float 0.01)) "flash $50/MB in 1993" 50.0
    (Ssmc.Trends.cost_per_mb Ssmc.Trends.Flash ~year:1993.0 ~capacity_mb:40.0);
  Alcotest.(check bool) "dram ~10x disk" true
    (Ssmc.Trends.cost_per_mb Ssmc.Trends.Dram ~year:1993.0 ~capacity_mb:20.0
     /. Ssmc.Trends.cost_per_mb Ssmc.Trends.Disk ~year:1993.0 ~capacity_mb:20.0
    > 8.0)

let test_costs_fall () =
  List.iter
    (fun tech ->
      Alcotest.(check bool)
        (Ssmc.Trends.tech_name tech ^ " gets cheaper")
        true
        (Ssmc.Trends.cost_per_mb tech ~year:2000.0 ~capacity_mb:100.0
        < Ssmc.Trends.cost_per_mb tech ~year:1993.0 ~capacity_mb:100.0))
    [ Ssmc.Trends.Dram; Ssmc.Trends.Flash; Ssmc.Trends.Disk ]

let test_flash_disk_crossover () =
  (* Conservative memory-trend rates put the 40MB crossover around the turn
     of the century... *)
  (match
     Ssmc.Trends.cost_crossover ~cheaper:Ssmc.Trends.Disk ~pricier:Ssmc.Trends.Flash
       ~capacity_mb:40.0 ()
   with
  | Some year ->
    Alcotest.(check bool)
      (Printf.sprintf "conservative crossover %.1f in [1999, 2008]" year)
      true (year >= 1999.0 && year <= 2008.0)
  | None -> Alcotest.fail "no conservative crossover found");
  (* ... while the Intel projection the paper quotes (flash $/MB halving
     yearly) reproduces "by the year 1996" for 40MB configurations. *)
  match
    Ssmc.Trends.cost_crossover ~flash_improvement:1.0 ~cheaper:Ssmc.Trends.Disk
      ~pricier:Ssmc.Trends.Flash ~capacity_mb:40.0 ()
  with
  | Some year ->
    Alcotest.(check bool)
      (Printf.sprintf "aggressive crossover %.1f in [1995, 1998]" year)
      true (year >= 1995.0 && year <= 1998.0)
  | None -> Alcotest.fail "no aggressive crossover found"

let test_large_disks_cross_later () =
  (* At trend rates the small drive's price floor bites before the
     crossover, so small configurations fall to flash years earlier. *)
  let small =
    Ssmc.Trends.cost_crossover ~cheaper:Ssmc.Trends.Disk ~pricier:Ssmc.Trends.Flash
      ~capacity_mb:40.0 ()
  in
  let large =
    Ssmc.Trends.cost_crossover ~cheaper:Ssmc.Trends.Disk ~pricier:Ssmc.Trends.Flash
      ~capacity_mb:1000.0 ()
  in
  match (small, large) with
  | Some s, Some l -> Alcotest.(check bool) "big disks stay cheaper longer" true (l > s)
  | Some _, None -> ()  (* no crossover in the window is "later" too *)
  | None, _ -> Alcotest.fail "small-capacity crossover missing"

let test_density_crossover () =
  (* DRAM (15 MB/in3, +40%/yr) passes the KittyHawk (19, +25%/yr) quickly. *)
  match Ssmc.Trends.density_crossover ~slower:Ssmc.Trends.Disk ~faster:Ssmc.Trends.Dram with
  | Some year ->
    Alcotest.(check bool)
      (Printf.sprintf "density crossover %.1f before 1998" year)
      true (year < 1998.0)
  | None -> Alcotest.fail "no density crossover"

let test_capacity_affordable () =
  (* Section 4's anchor: one budget buys 12MB DRAM / 20MB flash / 120MB disk. *)
  let budget = 12.0 *. Ssmc.Trends.cost_per_mb Ssmc.Trends.Dram ~year:1993.0 ~capacity_mb:12.0 in
  let flash_mb = Ssmc.Trends.capacity_affordable Ssmc.Trends.Flash ~year:1993.0 ~budget in
  let disk_mb = Ssmc.Trends.capacity_affordable Ssmc.Trends.Disk ~year:1993.0 ~budget in
  Alcotest.(check bool) "flash ~20MB" true (flash_mb > 17.0 && flash_mb < 23.0);
  Alcotest.(check bool) "disk ~120MB" true (disk_mb > 100.0 && disk_mb < 140.0)

(* --- Lifetime ------------------------------------------------------------------- *)

let test_lifetime_arithmetic () =
  let base =
    {
      Ssmc.Lifetime.endurance = 100_000;
      total_sectors = 40_960;  (* 20MB of 512B sectors *)
      sector_bytes = 512;
      flash_write_bytes_per_day = 10 * 1024 * 1024 |> float_of_int;
      write_amplification = 1.0;
      wear_skew = 1.0;
    }
  in
  let y = Ssmc.Lifetime.years base in
  (* 100k * 40960 sectors / (20480 erases/day) = 200k days ~ 547 years. *)
  Alcotest.(check bool) "even wear outlives the machine" true (y > 100.0);
  let skewed = Ssmc.Lifetime.years { base with Ssmc.Lifetime.wear_skew = 100.0 } in
  Alcotest.(check (float 1e-6)) "skew divides lifetime" (y /. 100.0) skewed;
  let amplified = Ssmc.Lifetime.years { base with Ssmc.Lifetime.write_amplification = 2.0 } in
  Alcotest.(check (float 1e-6)) "amplification halves lifetime" (y /. 2.0) amplified;
  Alcotest.(check (float 0.0)) "idle disk lives forever" infinity
    (Ssmc.Lifetime.years { base with Ssmc.Lifetime.flash_write_bytes_per_day = 0.0 })

(* --- Machine end-to-end ------------------------------------------------------------ *)

let small_trace seed =
  Trace.Synth.generate
    { Trace.Workloads.engineering with Trace.Synth.population = 50 }
    ~rng:(Rng.create ~seed) ~duration:(Time.span_s 60.0)

let test_solid_state_machine_runs () =
  let trace = small_trace 11 in
  let machine = Ssmc.Machine.create (Ssmc.Config.solid_state ~flash_mb:8 ~dram_mb:2 ()) in
  Ssmc.Machine.preload machine trace.Trace.Synth.initial_files;
  let r = Ssmc.Machine.run machine trace.Trace.Synth.records in
  Alcotest.(check int) "no op errors" 0 r.Ssmc.Machine.op_errors;
  Alcotest.(check int) "all ops applied" (List.length trace.Trace.Synth.records)
    r.Ssmc.Machine.ops_applied;
  Alcotest.(check bool) "energy consumed" true (r.Ssmc.Machine.energy_j > 0.0);
  Alcotest.(check bool) "battery drained some" true
    (r.Ssmc.Machine.battery_fraction_left < 1.0);
  (match r.Ssmc.Machine.manager_stats with
  | Some stats ->
    Alcotest.(check bool) "some absorption" true
      (stats.Storage.Manager.write_reduction > 0.1)
  | None -> Alcotest.fail "manager stats expected");
  match r.Ssmc.Machine.lifetime_years with
  | Some y -> Alcotest.(check bool) "finite lifetime estimate" true (y > 0.0)
  | None -> Alcotest.fail "lifetime expected"

let test_conventional_machine_runs () =
  let trace = small_trace 12 in
  let machine = Ssmc.Machine.create (Ssmc.Config.conventional ~dram_mb:2 ()) in
  Ssmc.Machine.preload machine trace.Trace.Synth.initial_files;
  let r = Ssmc.Machine.run machine trace.Trace.Synth.records in
  Alcotest.(check int) "no op errors" 0 r.Ssmc.Machine.op_errors;
  Alcotest.(check bool) "no manager" true (r.Ssmc.Machine.manager_stats = None);
  Alcotest.(check bool) "disk present" true (Ssmc.Machine.disk machine <> None)

let test_solid_beats_conventional () =
  let trace = small_trace 13 in
  let run cfg =
    let m = Ssmc.Machine.create cfg in
    Ssmc.Machine.preload m trace.Trace.Synth.initial_files;
    Ssmc.Machine.run m trace.Trace.Synth.records
  in
  let solid = run (Ssmc.Config.solid_state ()) in
  let conv = run (Ssmc.Config.conventional ()) in
  Alcotest.(check bool) "solid-state writes faster" true
    (Stat.Summary.mean solid.Ssmc.Machine.write_latency
    < Stat.Summary.mean conv.Ssmc.Machine.write_latency);
  Alcotest.(check bool) "solid-state uses less energy" true
    (solid.Ssmc.Machine.energy_j < conv.Ssmc.Machine.energy_j)

let test_config_dollars () =
  let cfg = Ssmc.Config.solid_state ~dram_mb:4 ~flash_mb:20 () in
  (* 4 * 83.3 + 20 * 50 = 1333 *)
  Alcotest.(check bool) "plausible cost" true
    (Ssmc.Config.dollars cfg > 1200.0 && Ssmc.Config.dollars cfg < 1500.0)

(* --- Recovery ------------------------------------------------------------------------ *)

let test_recovery_outcomes () =
  let engine = Engine.create () in
  let flash = Device.Flash.create (Device.Flash.config ~size_bytes:(256 * 1024) ()) in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let manager = Storage.Manager.create Storage.Manager.default_config ~engine ~flash ~dram in
  let b = Storage.Manager.alloc manager in
  ignore (Storage.Manager.write_block manager b);
  let battery = Device.Battery.create ~backup_joules:10.0 ~capacity_joules:100.0 () in
  let o = Ssmc.Recovery.power_failure ~manager ~battery ~dram_battery_backed:true in
  Alcotest.(check int) "dirty visible" 1 o.Ssmc.Recovery.dirty_blocks;
  Alcotest.(check int) "nothing lost on battery" 0 o.Ssmc.Recovery.lost_blocks;
  Alcotest.(check bool) "primary holds" true (o.Ssmc.Recovery.survived_by = `Primary_battery);
  Device.Battery.drain battery ~joules:105.0;
  let o2 = Ssmc.Recovery.power_failure ~manager ~battery ~dram_battery_backed:true in
  Alcotest.(check bool) "backup holds" true (o2.Ssmc.Recovery.survived_by = `Backup_battery);
  Device.Battery.drain battery ~joules:10.0;
  let o3 = Ssmc.Recovery.power_failure ~manager ~battery ~dram_battery_backed:true in
  Alcotest.(check int) "dirty data lost" 1 o3.Ssmc.Recovery.lost_blocks;
  let o4 = Ssmc.Recovery.power_failure ~manager ~battery ~dram_battery_backed:false in
  Alcotest.(check int) "no battery backing loses too" 1 o4.Ssmc.Recovery.lost_blocks

let test_holdup_days () =
  let dram = Device.Dram.create ~size_bytes:(4 * Units.mib) ~battery_backed:true () in
  let battery = Device.Battery.of_watt_hours ~backup_wh:0.5 10.0 in
  let h = Ssmc.Recovery.dram_holdup ~dram ~battery in
  (* 4MB at 0.5mW/MB = 2mW; 10Wh/2mW = 5000h ~ 208 days; backup 0.5Wh = 250h. *)
  Alcotest.(check bool) "primary holds many days" true (h.Ssmc.Recovery.primary_days > 30.0);
  Alcotest.(check bool) "backup holds many hours" true (h.Ssmc.Recovery.backup_hours > 10.0)

(* --- Sizing --------------------------------------------------------------------------- *)

let test_sizing_knee_logic () =
  let point ~fraction ~write_us =
    {
      Ssmc.Sizing.dram_fraction = fraction;
      dram_mb = 10.0 *. fraction;
      flash_mb = 10.0;
      buffer_mb = 1.0;
      mean_write_us = write_us;
      mean_read_us = 50.0;
      write_reduction = 0.4;
      energy_j = 1.0;
      lifetime_years = 10.0;
      permanent_capacity_mb = 5.0;
      out_of_space = false;
    }
  in
  let points =
    [
      point ~fraction:0.1 ~write_us:500.0;
      point ~fraction:0.2 ~write_us:55.0;
      point ~fraction:0.4 ~write_us:50.0;
      point ~fraction:0.6 ~write_us:49.0;
    ]
  in
  (match Ssmc.Sizing.knee points with
  | Some p ->
    Alcotest.(check (float 1e-9)) "knee at cheapest near-optimal" 0.2
      p.Ssmc.Sizing.dram_fraction
  | None -> Alcotest.fail "knee expected");
  Alcotest.(check bool) "empty points, no knee" true (Ssmc.Sizing.knee [] = None)

let test_sizing_knee_tolerance () =
  let point ?(out_of_space = false) ~fraction ~write_us () =
    {
      Ssmc.Sizing.dram_fraction = fraction;
      dram_mb = 10.0 *. fraction;
      flash_mb = 10.0;
      buffer_mb = 1.0;
      mean_write_us = write_us;
      mean_read_us = 50.0;
      write_reduction = 0.4;
      energy_j = 1.0;
      lifetime_years = 10.0;
      permanent_capacity_mb = 5.0;
      out_of_space;
    }
  in
  let fraction = function
    | Some p -> p.Ssmc.Sizing.dram_fraction
    | None -> Alcotest.fail "knee expected"
  in
  (* All points out of space: no viable configuration, no knee. *)
  let all_oos =
    [
      point ~out_of_space:true ~fraction:0.1 ~write_us:50.0 ();
      point ~out_of_space:true ~fraction:0.5 ~write_us:40.0 ();
    ]
  in
  Alcotest.(check bool) "all out of space, no knee" true (Ssmc.Sizing.knee all_oos = None);
  (* A single viable point is its own knee. *)
  let lone = point ~fraction:0.3 ~write_us:80.0 () in
  Alcotest.(check (float 1e-9)) "single point is the knee" 0.3
    (fraction (Ssmc.Sizing.knee [ lone ]));
  (* Equal write latencies: the knee prefers the smaller DRAM share. *)
  let tie =
    [
      point ~fraction:0.6 ~write_us:50.0 ();
      point ~fraction:0.2 ~write_us:50.0 ();
      point ~fraction:0.4 ~write_us:50.0 ();
    ]
  in
  Alcotest.(check (float 1e-9)) "tie breaks toward smaller DRAM share" 0.2
    (fraction (Ssmc.Sizing.knee tie));
  (* Tolerance widens or narrows the near-optimal band: 60us is within
     1.5x of the 45us optimum but outside the default 1.2x. *)
  let band =
    [
      point ~fraction:0.1 ~write_us:60.0 ();
      point ~fraction:0.3 ~write_us:52.0 ();
      point ~fraction:0.5 ~write_us:45.0 ();
    ]
  in
  Alcotest.(check (float 1e-9)) "default tolerance excludes 60us" 0.3
    (fraction (Ssmc.Sizing.knee band));
  Alcotest.(check (float 1e-9)) "tolerance 1.5 admits 60us" 0.1
    (fraction (Ssmc.Sizing.knee ~tolerance:1.5 band));
  Alcotest.(check (float 1e-9)) "tolerance 1.0 keeps only the optimum" 0.5
    (fraction (Ssmc.Sizing.knee ~tolerance:1.0 band));
  Alcotest.check_raises "tolerance below 1.0 rejected"
    (Invalid_argument "Sizing.knee: tolerance < 1.0") (fun () ->
      ignore (Ssmc.Sizing.knee ~tolerance:0.5 band))

let test_sizing_sweep_small () =
  (* A tiny sweep: just ensure it runs end-to-end and orders sanely. *)
  let points =
    Ssmc.Sizing.sweep ~budget_dollars:800.0 ~fractions:[ 0.1; 0.4 ]
      ~duration:(Time.span_s 30.0)
      ~profile:{ Trace.Workloads.pim with Trace.Synth.population = 30 }
      ()
  in
  Alcotest.(check int) "two points" 2 (List.length points);
  List.iter
    (fun p ->
      if not p.Ssmc.Sizing.out_of_space then begin
        Alcotest.(check bool) "dram+flash consume budget" true
          (p.Ssmc.Sizing.dram_mb > 0.0 && p.Ssmc.Sizing.flash_mb > 0.0)
      end)
    points

let suite =
  [
    Alcotest.test_case "trend anchors" `Quick test_trend_anchors;
    Alcotest.test_case "costs fall" `Quick test_costs_fall;
    Alcotest.test_case "flash/disk crossovers" `Quick test_flash_disk_crossover;
    Alcotest.test_case "large disks cross later" `Quick test_large_disks_cross_later;
    Alcotest.test_case "density crossover" `Quick test_density_crossover;
    Alcotest.test_case "capacity affordable" `Quick test_capacity_affordable;
    Alcotest.test_case "lifetime arithmetic" `Quick test_lifetime_arithmetic;
    Alcotest.test_case "solid-state machine" `Slow test_solid_state_machine_runs;
    Alcotest.test_case "conventional machine" `Slow test_conventional_machine_runs;
    Alcotest.test_case "solid beats conventional" `Slow test_solid_beats_conventional;
    Alcotest.test_case "config dollars" `Quick test_config_dollars;
    Alcotest.test_case "recovery outcomes" `Quick test_recovery_outcomes;
    Alcotest.test_case "holdup days" `Quick test_holdup_days;
    Alcotest.test_case "sizing knee" `Quick test_sizing_knee_logic;
    Alcotest.test_case "sizing knee tolerance" `Quick test_sizing_knee_tolerance;
    Alcotest.test_case "sizing sweep" `Slow test_sizing_sweep_small;
  ]
