(* Differential test of the storage manager's two decision implementations.

   Two managers over identical (but separate) machines run the same
   operation sequence: one with the [Scan] selector (the original
   scan-per-decision implementation, kept as the executable reference) and
   one with [Checked] (the indexed implementation, asserting equality with
   the scans at every decision point internally).  Externally we compare
   everything the manager exposes after every operation — so any
   divergence pins down the exact step, and the indexed fast path is held
   byte-identical to the reference across the whole policy grid. *)

open Sim

let mk ~selector ~cleaner ~wear ~banking ~buffer_blocks () =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create
      (Device.Flash.config ~nbanks:2 ~endurance_override:60
         ~size_bytes:(128 * 1024) ())
  in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let cfg =
    {
      Storage.Manager.default_config with
      Storage.Manager.segment_sectors = 8;
      buffer =
        {
          Storage.Write_buffer.capacity_blocks = buffer_blocks;
          writeback_delay = Time.span_ms 5.0;
          refresh_on_rewrite = true;
        };
      cleaner;
      wear;
      banking;
      selector;
    }
  in
  (engine, Storage.Manager.create cfg ~engine ~flash ~dram)

type op = Write of int | Fresh | Free of int | Cold | Advance of int

(* Interpret an int sequence as operations; both managers see the same
   ops, so allocation returns the same handles on both sides. *)
let op_of_int n =
  match n mod 6 with
  | 0 | 1 -> Write (n / 6)
  | 2 -> Fresh
  | 3 -> Free (n / 6)
  | 4 -> Advance (1 + (n / 6 mod 20))
  | _ -> Cold

let compare_managers ~step a b =
  let ctx fmt = Printf.ksprintf (fun s -> Printf.sprintf "step %d: %s" step s) fmt in
  if Storage.Manager.stats a <> Storage.Manager.stats b then
    Alcotest.failf "%s"
      (ctx "stats diverged: scan %s / checked %s"
         (Fmt.str "%a" Storage.Manager.pp_stats (Storage.Manager.stats a))
         (Fmt.str "%a" Storage.Manager.pp_stats (Storage.Manager.stats b)));
  if Storage.Manager.wear_evenness a <> Storage.Manager.wear_evenness b then
    Alcotest.failf "%s" (ctx "wear evenness diverged");
  if Storage.Manager.capacity_blocks a <> Storage.Manager.capacity_blocks b then
    Alcotest.failf "%s" (ctx "capacity diverged");
  List.iter
    (fun blk ->
      if Storage.Manager.segment_of_block a blk <> Storage.Manager.segment_of_block b blk
      then Alcotest.failf "%s" (ctx "block %d placement diverged" blk);
      if Storage.Manager.block_is_dirty a blk <> Storage.Manager.block_is_dirty b blk
      then Alcotest.failf "%s" (ctx "block %d dirtiness diverged" blk))
    (Storage.Manager.known_blocks a)

let run_diff ~ops ~cleaner ~wear ~banking ~buffer_blocks =
  let ea, a = mk ~selector:Storage.Manager.Scan ~cleaner ~wear ~banking ~buffer_blocks ()
  and eb, b =
    mk ~selector:Storage.Manager.Checked ~cleaner ~wear ~banking ~buffer_blocks ()
  in
  (* Keep enough headroom that random fills never hit Out_of_space. *)
  let cap = Storage.Manager.capacity_blocks a * 6 / 10 in
  let live = ref [] in
  let nlive = ref 0 in
  let pick_live n = List.nth !live (n mod !nlive) in
  let both f = f ea a; f eb b in
  List.iteri
    (fun step n ->
      (match op_of_int n with
      | Write k when !nlive > 0 ->
        let blk = pick_live k in
        both (fun _ m -> ignore (Storage.Manager.write_block m blk))
      | Write _ | Fresh when !nlive < cap ->
        let blk_a = Storage.Manager.alloc a in
        let blk_b = Storage.Manager.alloc b in
        assert (blk_a = blk_b);
        both (fun _ m -> ignore (Storage.Manager.write_block m blk_a));
        live := blk_a :: !live;
        incr nlive
      | Write _ | Fresh -> ()
      | Free k when !nlive > 0 ->
        let blk = pick_live k in
        both (fun _ m -> Storage.Manager.free_block m blk);
        live := List.filter (fun x -> x <> blk) !live;
        decr nlive
      | Free _ -> ()
      | Cold when !nlive < cap ->
        let blk_a = Storage.Manager.alloc a in
        let blk_b = Storage.Manager.alloc b in
        assert (blk_a = blk_b);
        both (fun _ m -> Storage.Manager.load_cold m blk_a);
        live := blk_a :: !live;
        incr nlive
      | Cold -> ()
      | Advance ms ->
        both (fun e _ ->
            Engine.run_until e (Time.add (Engine.now e) (Time.span_ms (float_of_int ms)))));
      compare_managers ~step a b)
    ops;
  (* Orderly shutdown and crash recovery must agree too. *)
  let fa = Storage.Manager.flush_all a and fb = Storage.Manager.flush_all b in
  if fa <> fb then Alcotest.fail "flush_all spans diverged";
  compare_managers ~step:(List.length ops) a b;
  let a', sa, ra = Storage.Manager.crash_and_remount a in
  let b', sb, rb = Storage.Manager.crash_and_remount b in
  if sa <> sb then Alcotest.fail "remount spans diverged";
  if ra <> rb then Alcotest.fail "remount reports diverged";
  if Storage.Manager.known_blocks a' <> Storage.Manager.known_blocks b' then
    Alcotest.fail "recovered block sets diverged";
  compare_managers ~step:(-1) a' b'

(* A cheap deterministic op stream, long enough to drive many cleanings
   (the 60-erase endurance also exercises sector wear-out and segment
   retirement on both paths). *)
let lcg_ops ~seed ~len =
  let s = ref seed in
  List.init len (fun _ ->
      s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
      !s mod 100_000)

let grid_case ~name ~seed ~len =
  Alcotest.test_case name `Slow (fun () ->
      List.iter
        (fun cleaner ->
          List.iter
            (fun wear ->
              List.iter
                (fun banking ->
                  List.iter
                    (fun buffer_blocks ->
                      run_diff ~ops:(lcg_ops ~seed ~len) ~cleaner ~wear ~banking
                        ~buffer_blocks)
                    [ 0; 8 ])
                [ Storage.Banks.Unified; Storage.Banks.Partitioned { write_banks = 1 } ])
            [
              Storage.Wear.None_;
              Storage.Wear.Dynamic;
              Storage.Wear.Static { spread_threshold = 5 };
            ])
        [ Storage.Cleaner.Greedy; Storage.Cleaner.Cost_benefit ])

(* Random sequences on two contrasting corners of the grid. *)
let prop_random_ops_agree ~name ~cleaner ~wear ~banking ~buffer_blocks =
  QCheck.Test.make ~name ~count:25
    QCheck.(list_of_size (Gen.int_range 30 150) (int_bound 99_999))
    (fun ops ->
      run_diff ~ops ~cleaner ~wear ~banking ~buffer_blocks;
      true)

let suite =
  [
    grid_case ~name:"scan vs indexed: policy grid" ~seed:42 ~len:420;
    grid_case ~name:"scan vs indexed: policy grid (alt seed)" ~seed:7 ~len:260;
    QCheck_alcotest.to_alcotest
      (prop_random_ops_agree ~name:"manager_diff: random ops (cost-benefit/dynamic)"
         ~cleaner:Storage.Cleaner.Cost_benefit ~wear:Storage.Wear.Dynamic
         ~banking:Storage.Banks.Unified ~buffer_blocks:8);
    QCheck_alcotest.to_alcotest
      (prop_random_ops_agree
         ~name:"manager_diff: random ops (greedy/static/partitioned/write-through)"
         ~cleaner:Storage.Cleaner.Greedy
         ~wear:(Storage.Wear.Static { spread_threshold = 4 })
         ~banking:(Storage.Banks.Partitioned { write_banks = 1 })
         ~buffer_blocks:0);
  ]
