(* Path parsing, errors, and the buffer cache / inode math underpinning Ffs. *)

let err = Alcotest.testable Fs.Fs_error.pp Fs.Fs_error.equal

(* --- Path -------------------------------------------------------------------- *)

let test_path_parse () =
  Alcotest.(check (result (list string) err)) "root" (Ok []) (Fs.Path.parse "/");
  Alcotest.(check (result (list string) err)) "simple" (Ok [ "a"; "b" ])
    (Fs.Path.parse "/a/b");
  Alcotest.(check (result (list string) err)) "double slash collapses"
    (Ok [ "a"; "b" ]) (Fs.Path.parse "/a//b");
  Alcotest.(check (result (list string) err)) "trailing slash ok" (Ok [ "a" ])
    (Fs.Path.parse "/a/");
  List.iter
    (fun bad ->
      Alcotest.(check (result (list string) err))
        bad
        (Error Fs.Fs_error.Einval)
        (Fs.Path.parse bad))
    [ ""; "relative"; "a/b"; "/a/../b"; "/./a" ]

let test_path_print_split () =
  Alcotest.(check string) "root prints" "/" (Fs.Path.to_string []);
  Alcotest.(check string) "nested" "/x/y" (Fs.Path.to_string [ "x"; "y" ]);
  Alcotest.(check bool) "split root" true (Fs.Path.split_last [] = None);
  (match Fs.Path.split_last [ "a"; "b"; "c" ] with
  | Some (parent, leaf) ->
    Alcotest.(check (list string)) "parent" [ "a"; "b" ] parent;
    Alcotest.(check string) "leaf" "c" leaf
  | None -> Alcotest.fail "split failed");
  Alcotest.(check bool) "valid name" true (Fs.Path.valid_name "file.txt");
  Alcotest.(check bool) "dot invalid" false (Fs.Path.valid_name ".");
  Alcotest.(check bool) "slash invalid" false (Fs.Path.valid_name "a/b")

let test_error_strings () =
  Alcotest.(check string) "enoent" "ENOENT" (Fs.Fs_error.to_string Fs.Fs_error.Enoent);
  Alcotest.(check string) "enospc" "ENOSPC" (Fs.Fs_error.to_string Fs.Fs_error.Enospc)

let prop_path_roundtrip =
  QCheck.Test.make ~name:"path: parse/print roundtrip" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 5) (string_gen_of_size (Gen.int_range 1 8) Gen.printable))
    (fun components ->
      let components = List.filter Fs.Path.valid_name components in
      let s = Fs.Path.to_string components in
      match Fs.Path.parse s with
      | Ok parsed -> parsed = components
      | Error _ -> false)

(* --- Buffer cache --------------------------------------------------------------- *)

let test_cache_basic_lru () =
  let c = Fs.Buffer_cache.create ~capacity_blocks:2 in
  Alcotest.(check bool) "miss first" true (Fs.Buffer_cache.find c ~key:1 = Fs.Buffer_cache.Miss);
  ignore (Fs.Buffer_cache.insert c ~key:1 ~dirty:false);
  ignore (Fs.Buffer_cache.insert c ~key:2 ~dirty:false);
  Alcotest.(check bool) "hit" true (Fs.Buffer_cache.find c ~key:1 = Fs.Buffer_cache.Hit);
  (* 2 is now LRU; inserting 3 evicts it. *)
  ignore (Fs.Buffer_cache.insert c ~key:3 ~dirty:false);
  Alcotest.(check bool) "lru evicted" false (Fs.Buffer_cache.contains c ~key:2);
  Alcotest.(check bool) "recent kept" true (Fs.Buffer_cache.contains c ~key:1);
  Alcotest.(check int) "hits" 1 (Fs.Buffer_cache.hits c);
  Alcotest.(check int) "misses" 1 (Fs.Buffer_cache.misses c)

let test_cache_dirty_writeback () =
  let c = Fs.Buffer_cache.create ~capacity_blocks:2 in
  ignore (Fs.Buffer_cache.insert c ~key:1 ~dirty:true);
  ignore (Fs.Buffer_cache.insert c ~key:2 ~dirty:false);
  let victims = Fs.Buffer_cache.insert c ~key:3 ~dirty:false in
  Alcotest.(check (list int)) "dirty victim returned" [ 1 ] victims;
  Alcotest.(check int) "writeback counted" 1 (Fs.Buffer_cache.writebacks c);
  (* Clean evictions return nothing. *)
  let victims2 = Fs.Buffer_cache.insert c ~key:4 ~dirty:false in
  Alcotest.(check (list int)) "clean eviction silent" [] victims2

let test_cache_mark_dirty_and_take () =
  let c = Fs.Buffer_cache.create ~capacity_blocks:4 in
  ignore (Fs.Buffer_cache.insert c ~key:1 ~dirty:false);
  ignore (Fs.Buffer_cache.insert c ~key:2 ~dirty:true);
  Alcotest.(check bool) "mark resident" true (Fs.Buffer_cache.mark_dirty c ~key:1);
  Alcotest.(check bool) "mark absent" false (Fs.Buffer_cache.mark_dirty c ~key:9);
  let dirty = Fs.Buffer_cache.take_dirty c in
  Alcotest.(check (list int)) "oldest first" [ 1; 2 ] (List.sort compare dirty);
  Alcotest.(check bool) "bits cleared" false (Fs.Buffer_cache.is_dirty c ~key:1);
  Alcotest.(check bool) "still resident" true (Fs.Buffer_cache.contains c ~key:1)

let test_cache_forget () =
  let c = Fs.Buffer_cache.create ~capacity_blocks:2 in
  ignore (Fs.Buffer_cache.insert c ~key:1 ~dirty:true);
  Fs.Buffer_cache.forget c ~key:1;
  Alcotest.(check bool) "gone" false (Fs.Buffer_cache.contains c ~key:1);
  (* Forgotten dirty block never writes back. *)
  ignore (Fs.Buffer_cache.insert c ~key:2 ~dirty:false);
  ignore (Fs.Buffer_cache.insert c ~key:3 ~dirty:false);
  let victims = Fs.Buffer_cache.insert c ~key:4 ~dirty:false in
  Alcotest.(check (list int)) "no stale writeback" [] victims

let test_cache_zero_capacity () =
  let c = Fs.Buffer_cache.create ~capacity_blocks:0 in
  let victims = Fs.Buffer_cache.insert c ~key:1 ~dirty:true in
  Alcotest.(check (list int)) "dirty passes through" [ 1 ] victims;
  Alcotest.(check bool) "not retained" false (Fs.Buffer_cache.contains c ~key:1)

(* The counting contract: find_or_insert records exactly one hit or one
   miss, where the old find-then-insert composition double-touched recency
   and let callers miscount. *)
let test_cache_find_or_insert_counts_once () =
  let c = Fs.Buffer_cache.create ~capacity_blocks:2 in
  (match Fs.Buffer_cache.find_or_insert c ~key:1 ~dirty:false with
  | Fs.Buffer_cache.Miss, victims ->
    Alcotest.(check (list int)) "no victims in empty cache" [] victims
  | Fs.Buffer_cache.Hit, _ -> Alcotest.fail "empty cache cannot hit");
  Alcotest.(check int) "one miss" 1 (Fs.Buffer_cache.misses c);
  Alcotest.(check int) "no hits" 0 (Fs.Buffer_cache.hits c);
  (match Fs.Buffer_cache.find_or_insert c ~key:1 ~dirty:true with
  | Fs.Buffer_cache.Hit, victims ->
    Alcotest.(check (list int)) "hit returns no victims" [] victims
  | Fs.Buffer_cache.Miss, _ -> Alcotest.fail "resident key must hit");
  Alcotest.(check int) "one hit" 1 (Fs.Buffer_cache.hits c);
  Alcotest.(check int) "still one miss" 1 (Fs.Buffer_cache.misses c);
  (* The hit arm ORed the dirty bit in. *)
  Alcotest.(check bool) "dirty after hit" true (Fs.Buffer_cache.is_dirty c ~key:1);
  (* The hit refreshed recency: 1 survives insertion of 2 and 3. *)
  ignore (Fs.Buffer_cache.find_or_insert c ~key:2 ~dirty:false);
  ignore (Fs.Buffer_cache.find_or_insert c ~key:3 ~dirty:false);
  Alcotest.(check bool) "recency refreshed" true (Fs.Buffer_cache.contains c ~key:3);
  Alcotest.(check int) "three misses total" 3 (Fs.Buffer_cache.misses c)

let test_cache_reset_counters () =
  let c = Fs.Buffer_cache.create ~capacity_blocks:1 in
  ignore (Fs.Buffer_cache.find_or_insert c ~key:1 ~dirty:true);
  ignore (Fs.Buffer_cache.find_or_insert c ~key:1 ~dirty:false);
  ignore (Fs.Buffer_cache.find_or_insert c ~key:2 ~dirty:false);
  Alcotest.(check bool) "counters non-zero" true
    (Fs.Buffer_cache.hits c > 0 && Fs.Buffer_cache.misses c > 0
    && Fs.Buffer_cache.writebacks c > 0);
  Fs.Buffer_cache.reset_counters c;
  Alcotest.(check int) "hits cleared" 0 (Fs.Buffer_cache.hits c);
  Alcotest.(check int) "misses cleared" 0 (Fs.Buffer_cache.misses c);
  Alcotest.(check int) "writebacks cleared" 0 (Fs.Buffer_cache.writebacks c);
  Alcotest.(check bool) "residency kept" true (Fs.Buffer_cache.contains c ~key:2)

let test_cache_reinsert_keeps_dirty () =
  let c = Fs.Buffer_cache.create ~capacity_blocks:2 in
  ignore (Fs.Buffer_cache.insert c ~key:1 ~dirty:true);
  ignore (Fs.Buffer_cache.insert c ~key:1 ~dirty:false);
  Alcotest.(check bool) "dirty bit sticky" true (Fs.Buffer_cache.is_dirty c ~key:1)

let prop_cache_never_exceeds_capacity =
  QCheck.Test.make ~name:"cache: size <= capacity" ~count:300
    QCheck.(pair (int_range 1 8) (list (pair (int_bound 30) bool)))
    (fun (cap, ops) ->
      let c = Fs.Buffer_cache.create ~capacity_blocks:cap in
      List.iter (fun (key, dirty) -> ignore (Fs.Buffer_cache.insert c ~key ~dirty)) ops;
      Fs.Buffer_cache.size c <= cap)

(* --- Ffs inode math --------------------------------------------------------------- *)

let ptrs = Fs.Ffs_inode.ptrs_per_block ~block_bytes:4096 (* 512 *)

let test_classify_boundaries () =
  let open Fs.Ffs_inode in
  Alcotest.(check bool) "first direct" true (classify ~ptrs 0 = Some (Direct 0));
  Alcotest.(check bool) "last direct" true (classify ~ptrs 11 = Some (Direct 11));
  Alcotest.(check bool) "first single" true (classify ~ptrs 12 = Some (Single 0));
  Alcotest.(check bool) "last single" true
    (classify ~ptrs (12 + ptrs - 1) = Some (Single (ptrs - 1)));
  Alcotest.(check bool) "first double" true
    (classify ~ptrs (12 + ptrs) = Some (Double (0, 0)));
  Alcotest.(check bool) "double split" true
    (classify ~ptrs (12 + ptrs + ptrs + 3) = Some (Double (1, 3)));
  Alcotest.(check bool) "beyond max" true
    (classify ~ptrs (max_blocks ~ptrs) = None);
  Alcotest.check_raises "negative" (Invalid_argument "Ffs_inode.classify: negative index")
    (fun () -> ignore (classify ~ptrs (-1)))

let test_depths () =
  let open Fs.Ffs_inode in
  Alcotest.(check int) "direct depth" 0 (indirect_depth ~ptrs 5);
  Alcotest.(check int) "single depth" 1 (indirect_depth ~ptrs 100);
  Alcotest.(check int) "double depth" 2 (indirect_depth ~ptrs (12 + ptrs + 5))

let test_max_blocks () =
  Alcotest.(check int) "max blocks" (12 + 512 + (512 * 512))
    (Fs.Ffs_inode.max_blocks ~ptrs:512);
  (* That is over a gigabyte of 4KB blocks: plenty for 1993. *)
  Alcotest.(check bool) "addresses > 1GB" true
    (Fs.Ffs_inode.max_blocks ~ptrs:512 * 4096 > 1 lsl 30)

let prop_classify_total_and_ordered =
  QCheck.Test.make ~name:"ffs_inode: classification covers indexes in order" ~count:500
    (QCheck.int_bound (12 + 512 + (512 * 512) - 1))
    (fun i ->
      match Fs.Ffs_inode.classify ~ptrs:512 i with
      | Some (Fs.Ffs_inode.Direct d) -> i < 12 && d = i
      | Some (Fs.Ffs_inode.Single j) -> i >= 12 && i < 12 + 512 && j = i - 12
      | Some (Fs.Ffs_inode.Double (j, k)) ->
        let r = i - 12 - 512 in
        j = r / 512 && k = r mod 512
      | None -> false)

let suite =
  [
    Alcotest.test_case "path parse" `Quick test_path_parse;
    Alcotest.test_case "path print/split" `Quick test_path_print_split;
    Alcotest.test_case "error strings" `Quick test_error_strings;
    QCheck_alcotest.to_alcotest prop_path_roundtrip;
    Alcotest.test_case "cache LRU" `Quick test_cache_basic_lru;
    Alcotest.test_case "cache dirty writeback" `Quick test_cache_dirty_writeback;
    Alcotest.test_case "cache mark/take dirty" `Quick test_cache_mark_dirty_and_take;
    Alcotest.test_case "cache forget" `Quick test_cache_forget;
    Alcotest.test_case "cache zero capacity" `Quick test_cache_zero_capacity;
    Alcotest.test_case "cache find_or_insert counts once" `Quick
      test_cache_find_or_insert_counts_once;
    Alcotest.test_case "cache reset_counters" `Quick test_cache_reset_counters;
    Alcotest.test_case "cache sticky dirty" `Quick test_cache_reinsert_keeps_dirty;
    QCheck_alcotest.to_alcotest prop_cache_never_exceeds_capacity;
    Alcotest.test_case "inode classify boundaries" `Quick test_classify_boundaries;
    Alcotest.test_case "inode depths" `Quick test_depths;
    Alcotest.test_case "inode max blocks" `Quick test_max_blocks;
    QCheck_alcotest.to_alcotest prop_classify_total_and_ordered;
  ]
