(* Fleet-scale simulation: determinism across job counts and shard
   sizes, fault composition, and the Machine.recycle = Machine.create
   identity the fleet's allocation reuse depends on. *)
open Sim

(* A small but heterogeneous fleet: cheap enough for the suite, yet it
   exercises every variant, several workloads, and shard remainders. *)
let small_spec ?(devices = 10) ?(shard = 4) ?(faults_per_device = 0) () =
  Ssmc.Fleet.spec ~devices ~shard ~base_seed:11 ~duration:(Time.span_s 30.0)
    ~faults_per_device ()

(* Reports hold only scalars, lists, summaries, and sketches — no
   closures, no machines — so structural comparison is a complete
   byte-identity check. *)
let check_reports_equal what (a : Ssmc.Fleet.report) (b : Ssmc.Fleet.report) =
  Alcotest.(check bool) (what ^ ": reports byte-identical") true
    (Stdlib.compare a b = 0);
  (* Spot checks so a failure names the field instead of "compare <> 0". *)
  Alcotest.(check int) (what ^ ": ops") a.Ssmc.Fleet.ops b.Ssmc.Fleet.ops;
  Alcotest.(check (float 0.0))
    (what ^ ": wear p99")
    (Stat.Quantiles.quantile a.Ssmc.Fleet.wear_max_erases 0.99)
    (Stat.Quantiles.quantile b.Ssmc.Fleet.wear_max_erases 0.99);
  Alcotest.(check string) (what ^ ": probes")
    (Json.to_string (Probe.Snapshot.to_json a.Ssmc.Fleet.probes))
    (Json.to_string (Probe.Snapshot.to_json b.Ssmc.Fleet.probes))

let test_jobs_invariance () =
  let spec = small_spec () in
  let r1 = Ssmc.Fleet.run ~jobs:1 spec in
  let r3 = Ssmc.Fleet.run ~jobs:3 spec in
  check_reports_equal "jobs 1 vs 3" r1 r3;
  Alcotest.(check int) "all devices accounted" spec.Ssmc.Fleet.devices
    (List.fold_left (fun acc (_, n) -> acc + n) 0 r1.Ssmc.Fleet.by_variant)

let test_shard_invariance () =
  let r_small = Ssmc.Fleet.run ~jobs:2 (small_spec ~shard:3 ()) in
  let r_big = Ssmc.Fleet.run ~jobs:2 (small_spec ~shard:64 ()) in
  check_reports_equal "shard 3 vs 64" r_small r_big

let test_fault_composition () =
  (* Random per-device fault schedules compose with fleet aggregation:
     every device takes its events, and the whole thing stays
     deterministic (same spec, same report — at different job counts). *)
  let spec = small_spec ~devices:8 ~faults_per_device:2 () in
  let r1 = Ssmc.Fleet.run ~jobs:1 spec in
  let r2 = Ssmc.Fleet.run ~jobs:2 spec in
  check_reports_equal "faulted runs" r1 r2;
  Alcotest.(check int) "every device took its faults" 16 r1.Ssmc.Fleet.faults

let test_simulate_device_matches_run () =
  (* The per-device path is the same whether driven alone or via [run]:
     summing per-device scalars reproduces the fleet totals. *)
  let spec = small_spec ~devices:6 ~shard:2 () in
  let reports =
    List.init spec.Ssmc.Fleet.devices (fun index ->
        Ssmc.Fleet.simulate_device spec ~index)
  in
  let fleet = Ssmc.Fleet.run ~jobs:2 spec in
  Alcotest.(check int) "ops add up" fleet.Ssmc.Fleet.ops
    (List.fold_left (fun acc d -> acc + d.Ssmc.Fleet.d_ops) 0 reports);
  Alcotest.(check int) "errors add up" fleet.Ssmc.Fleet.op_errors
    (List.fold_left (fun acc d -> acc + d.Ssmc.Fleet.d_op_errors) 0 reports);
  (* And re-simulating a device is bit-stable. *)
  let d2 = Ssmc.Fleet.simulate_device spec ~index:2 in
  let d2' = Ssmc.Fleet.simulate_device spec ~index:2 in
  Alcotest.(check bool) "device report reproducible" true (Stdlib.compare d2 d2' = 0)

let test_validate_rejects () =
  let bad devices shard = { (small_spec ()) with Ssmc.Fleet.devices; shard } in
  List.iter
    (fun spec ->
      match Ssmc.Fleet.validate spec with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "validate accepted a bad spec")
    [ bad 0 4; bad 4 0; { (small_spec ()) with Ssmc.Fleet.variants = [] };
      { (small_spec ()) with Ssmc.Fleet.mix = [] };
      { (small_spec ()) with Ssmc.Fleet.faults_per_device = -1 };
      { (small_spec ()) with Ssmc.Fleet.wearout_horizon_years = 0.0 } ];
  Alcotest.check_raises "run rejects"
    (Invalid_argument "Fleet.run: devices < 1") (fun () ->
      ignore (Ssmc.Fleet.run (bad 0 4)))

(* --- Machine.recycle = Machine.create ----------------------------------- *)

let run_workload machine records =
  Ssmc.Machine.preload machine [ (1, 65536); (2, 32768) ];
  Ssmc.Machine.run machine records

let make_trace ~seed ~profile =
  (Trace.Synth.generate profile ~rng:(Rng.create ~seed) ~duration:(Time.span_s 60.0))
    .Trace.Synth.records

let test_recycle_identity () =
  (* A recycled machine must produce byte-identical run results to a
     freshly created one — this identity is what lets the fleet reuse
     machine allocations across shard churn without changing anything. *)
  let cfg = Ssmc.Config.solid_state ~flash_mb:8 ~dram_mb:2 ~seed:23 () in
  let records = make_trace ~seed:23 ~profile:Trace.Workloads.pim in
  let fresh = Ssmc.Machine.create cfg in
  let r_fresh = run_workload fresh records in
  (* Dirty a machine with a different workload, then recycle it into the
     same config: wear, programmed bytes, counters, meters must all reset. *)
  let dirty = Ssmc.Machine.create cfg in
  ignore (run_workload dirty (make_trace ~seed:99 ~profile:Trace.Workloads.compile));
  let recycled = Ssmc.Machine.recycle dirty cfg in
  let r_recycled = run_workload recycled records in
  Alcotest.(check bool) "recycle = create (full result)" true
    (Stdlib.compare r_fresh r_recycled = 0);
  Alcotest.(check int) "ops" r_fresh.Ssmc.Machine.ops_applied
    r_recycled.Ssmc.Machine.ops_applied;
  Alcotest.(check (float 0.0)) "energy" r_fresh.Ssmc.Machine.energy_j
    r_recycled.Ssmc.Machine.energy_j;
  (* The reuse actually happened: same flash device object underneath. *)
  (match (Ssmc.Machine.flash dirty, Ssmc.Machine.flash recycled) with
  | Some a, Some b ->
    Alcotest.(check bool) "flash allocation reused" true (a == b)
  | _ -> Alcotest.fail "expected flash on both machines")

let test_recycle_shape_mismatch_falls_back () =
  let cfg_a = Ssmc.Config.solid_state ~flash_mb:8 ~seed:5 () in
  let cfg_b = Ssmc.Config.solid_state ~flash_mb:16 ~seed:5 () in
  let records = make_trace ~seed:5 ~profile:Trace.Workloads.pim in
  let old = Ssmc.Machine.create cfg_a in
  ignore (run_workload old records);
  let recycled = Ssmc.Machine.recycle old cfg_b in
  let r_recycled = run_workload recycled records in
  let r_fresh = run_workload (Ssmc.Machine.create cfg_b) records in
  Alcotest.(check bool) "fallback result identical to create" true
    (Stdlib.compare r_fresh r_recycled = 0);
  match (Ssmc.Machine.flash old, Ssmc.Machine.flash recycled) with
  | Some a, Some b ->
    Alcotest.(check bool) "different geometry means fresh flash" true (a != b)
  | _ -> Alcotest.fail "expected flash on both machines"

let suite =
  [
    Alcotest.test_case "report invariant under jobs" `Quick test_jobs_invariance;
    Alcotest.test_case "report invariant under shard size" `Quick test_shard_invariance;
    Alcotest.test_case "fault schedules compose deterministically" `Quick
      test_fault_composition;
    Alcotest.test_case "simulate_device matches run" `Quick
      test_simulate_device_matches_run;
    Alcotest.test_case "validate rejects bad specs" `Quick test_validate_rejects;
    Alcotest.test_case "recycle identical to create" `Quick test_recycle_identity;
    Alcotest.test_case "recycle falls back on shape mismatch" `Quick
      test_recycle_shape_mismatch_falls_back;
  ]
