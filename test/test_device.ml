open Sim

let span = Alcotest.testable Time.pp_span (fun a b -> Time.span_to_ns a = Time.span_to_ns b)

(* --- Specs ------------------------------------------------------------------ *)

let test_access_time () =
  let cost = { Device.Specs.fixed = Time.span_ns 100; per_byte_ns = 10.0 } in
  Alcotest.check span "fixed only" (Time.span_ns 100) (Device.Specs.access_time cost ~bytes:0);
  Alcotest.check span "with transfer" (Time.span_ns 1_120)
    (Device.Specs.access_time cost ~bytes:102);
  Alcotest.check_raises "negative size"
    (Invalid_argument "Specs.access_time: negative size") (fun () ->
      ignore (Device.Specs.access_time cost ~bytes:(-1)))

let test_paper_ratios () =
  (* Section 2: flash writes are two orders of magnitude slower than reads. *)
  let f = Device.Specs.intel_flash in
  let read = Device.Specs.access_time f.Device.Specs.f_read ~bytes:512 in
  let write = Device.Specs.access_time f.Device.Specs.f_write ~bytes:512 in
  let ratio = Time.span_to_us write /. Time.span_to_us read in
  Alcotest.(check bool) "write/read ratio ~100x" true (ratio > 50.0 && ratio < 200.0);
  (* DRAM is ten times the cost of disk per megabyte. *)
  let dram_cost = Device.Specs.(nec_dram.d_econ.dollars_per_mb) in
  let disk_cost = Device.Specs.(hp_kittyhawk.k_econ.dollars_per_mb) in
  Alcotest.(check bool) "10:1 cost ratio" true
    (dram_cost /. disk_cost > 8.0 && dram_cost /. disk_cost < 12.0);
  (* Densities: DRAM 15 vs KittyHawk 19 MB/in^3, flash within 20% of disk. *)
  Alcotest.(check bool) "flash density within 20% of KittyHawk" true
    (Device.Specs.(intel_flash.f_econ.mb_per_cubic_inch)
     /. Device.Specs.(hp_kittyhawk.k_econ.mb_per_cubic_inch)
    > 0.79);
  Alcotest.(check int) "512B erase sectors" 512 Device.Specs.(intel_flash.f_sector_bytes);
  Alcotest.(check int) "100k cycles" 100_000 Device.Specs.(intel_flash.f_endurance)

(* --- Power ------------------------------------------------------------------- *)

let test_meter () =
  let m = Device.Power.Meter.create ~label:"test" in
  Device.Power.Meter.charge m ~joules:2.0;
  Device.Power.Meter.charge_power m ~watts:5.0 (Time.span_s 2.0);
  Alcotest.(check (float 1e-9)) "active" 12.0 (Device.Power.Meter.active_joules m);
  Device.Power.Meter.charge_background m ~watts:1.0 (Time.span_s 3.0);
  Alcotest.(check (float 1e-9)) "background" 3.0 (Device.Power.Meter.background_joules m);
  Alcotest.(check (float 1e-9)) "total" 15.0 (Device.Power.Meter.total_joules m);
  Alcotest.check_raises "negative charge"
    (Invalid_argument "Power.Meter.charge: negative") (fun () ->
      Device.Power.Meter.charge m ~joules:(-1.0));
  Device.Power.Meter.reset m;
  Alcotest.(check (float 0.0)) "reset" 0.0 (Device.Power.Meter.total_joules m)

(* --- Battery ------------------------------------------------------------------ *)

let test_battery_drain_order () =
  let b = Device.Battery.create ~backup_joules:10.0 ~capacity_joules:100.0 () in
  Device.Battery.drain b ~joules:60.0;
  Alcotest.(check (float 1e-9)) "primary drained first" 40.0
    (Device.Battery.primary_joules b);
  Alcotest.(check (float 1e-9)) "backup untouched" 10.0 (Device.Battery.backup_joules b);
  Device.Battery.drain b ~joules:45.0;
  Alcotest.(check (float 1e-9)) "primary empty" 0.0 (Device.Battery.primary_joules b);
  Alcotest.(check (float 1e-9)) "backup partially used" 5.0
    (Device.Battery.backup_joules b);
  Alcotest.(check bool) "on backup" true (Device.Battery.on_backup b);
  Device.Battery.drain b ~joules:10.0;
  Alcotest.(check bool) "exhausted" true (Device.Battery.exhausted b);
  Alcotest.(check (float 1e-9)) "unmet recorded" 5.0 (Device.Battery.unmet_joules b)

let test_battery_swap () =
  let b = Device.Battery.create ~backup_joules:10.0 ~capacity_joules:100.0 () in
  Device.Battery.drain b ~joules:100.0;
  Alcotest.(check bool) "on backup during swap" true (Device.Battery.on_backup b);
  Device.Battery.swap_primary b;
  Alcotest.(check (float 1e-9)) "fresh primary" 100.0 (Device.Battery.primary_joules b);
  Alcotest.(check bool) "off backup" false (Device.Battery.on_backup b)

let test_battery_holdup () =
  let b = Device.Battery.of_watt_hours 1.0 in
  (* 1 Wh = 3600 J at 1 W = 3600 s. *)
  (match Device.Battery.holdup_time b ~draw_watts:1.0 with
  | Device.Battery.Finite s -> Alcotest.check span "holdup" (Time.span_s 3600.0) s
  | Device.Battery.Unbounded -> Alcotest.fail "finite draw must give finite holdup");
  Alcotest.(check (float 1e-9)) "fraction" 1.0 (Device.Battery.fraction_remaining b)

(* --- DRAM --------------------------------------------------------------------- *)

let test_dram () =
  let d = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let r = Device.Dram.read d ~bytes:512 in
  (* 100ns fixed + 10ns/B * 512B *)
  Alcotest.check span "read latency" (Time.span_ns 5_220) r;
  ignore (Device.Dram.write d ~bytes:1024);
  Alcotest.(check int) "reads" 1 (Device.Dram.reads d);
  Alcotest.(check int) "writes" 1 (Device.Dram.writes d);
  Alcotest.(check int) "bytes read" 512 (Device.Dram.bytes_read d);
  Alcotest.(check int) "bytes written" 1024 (Device.Dram.bytes_written d);
  Alcotest.(check bool) "battery backed" true (Device.Dram.battery_backed d);
  Alcotest.(check bool) "energy charged" true
    (Device.Power.Meter.active_joules (Device.Dram.meter d) > 0.0);
  Device.Dram.charge_idle d (Time.span_s 1.0);
  Alcotest.(check bool) "idle charged" true
    (Device.Power.Meter.background_joules (Device.Dram.meter d) > 0.0);
  Device.Dram.reset_stats d;
  Alcotest.(check int) "reset" 0 (Device.Dram.reads d)

let suite =
  [
    Alcotest.test_case "access_time" `Quick test_access_time;
    Alcotest.test_case "paper's Section 2 ratios" `Quick test_paper_ratios;
    Alcotest.test_case "power meter" `Quick test_meter;
    Alcotest.test_case "battery drain order" `Quick test_battery_drain_order;
    Alcotest.test_case "battery swap" `Quick test_battery_swap;
    Alcotest.test_case "battery holdup" `Quick test_battery_holdup;
    Alcotest.test_case "dram device" `Quick test_dram;
  ]
