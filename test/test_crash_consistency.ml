(* Differential crash-consistency harness (the §3.3 safety argument, run
   live).  For crash points spread across an operation sequence and the
   full cleaner × wear × banking × buffering policy grid, two managers —
   one [Checked] (every internal decision asserted against the scan
   reference) and one [Scan] — run the same prefix, crash, and remount.
   The pre-crash state of each manager is its own crash-free reference:
   the crash destroys only DRAM, so everything flash-resident must come
   back exactly where it was, wear statistics and all, and the only
   permissible loss is what sat dirty in the write buffer. *)

open Sim

let mk ?diff_log ~selector ~cleaner ~wear ~banking ~buffer_blocks () =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create
      (Device.Flash.config ~nbanks:2 ~endurance_override:60
         ~size_bytes:(128 * 1024) ())
  in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let cfg =
    {
      Storage.Manager.default_config with
      Storage.Manager.segment_sectors = 8;
      buffer =
        {
          Storage.Write_buffer.capacity_blocks = buffer_blocks;
          writeback_delay = Time.span_ms 5.0;
          refresh_on_rewrite = true;
        };
      cleaner;
      wear;
      banking;
      selector;
      diff_log;
    }
  in
  (engine, Storage.Manager.create cfg ~engine ~flash ~dram)

type op = Write of int | Fresh | Free of int | Cold | Advance of int

let op_of_int n =
  match n mod 6 with
  | 0 | 1 -> Write (n / 6)
  | 2 -> Fresh
  | 3 -> Free (n / 6)
  | 4 -> Advance (1 + (n / 6 mod 20))
  | _ -> Cold

let lcg_ops ~seed ~len =
  let s = ref seed in
  List.init len (fun _ ->
      s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
      !s mod 100_000)

(* Drive one manager through the op stream.  Deterministic in the stream,
   so two managers fed the same list allocate identical handles. *)
let run_ops (engine, m) ops =
  let cap = Storage.Manager.capacity_blocks m * 6 / 10 in
  let live = ref [] in
  let nlive = ref 0 in
  List.iter
    (fun n ->
      match op_of_int n with
      | Write k when !nlive > 0 ->
        ignore (Storage.Manager.write_block m (List.nth !live (k mod !nlive)))
      | Write _ | Fresh when !nlive < cap ->
        let b = Storage.Manager.alloc m in
        ignore (Storage.Manager.write_block m b);
        live := b :: !live;
        incr nlive
      | Write _ | Fresh -> ()
      | Free k when !nlive > 0 ->
        let b = List.nth !live (k mod !nlive) in
        Storage.Manager.free_block m b;
        live := List.filter (fun x -> x <> b) !live;
        decr nlive
      | Free _ -> ()
      | Cold when !nlive < cap ->
        let b = Storage.Manager.alloc m in
        Storage.Manager.load_cold m b;
        live := b :: !live;
        incr nlive
      | Cold -> ()
      | Advance ms ->
        Engine.run_until engine
          (Time.add (Engine.now engine) (Time.span_ms (float_of_int ms))))
    ops

(* Everything the invariants need about a manager at one instant. *)
type snapshot = {
  blocks : (int * bool * (int * int) option) list;
      (* (block, dirty, flash placement), ascending by block *)
  segs : Storage.Manager.segment_snapshot array;
  evenness : Storage.Wear.evenness;
  dirty : int;
  free_segments : int;
  capacity : int;
}

let snapshot m =
  {
    blocks =
      List.map
        (fun b ->
          ( b,
            Storage.Manager.block_is_dirty m b,
            Storage.Manager.location_of_block m b ))
        (Storage.Manager.known_blocks m);
    segs = Storage.Manager.segment_snapshots m;
    evenness = Storage.Manager.wear_evenness m;
    dirty = (Storage.Manager.stats m).Storage.Manager.dirty_blocks;
    free_segments = (Storage.Manager.stats m).Storage.Manager.free_segments;
    capacity = Storage.Manager.capacity_blocks m;
  }

let fail ~ctx fmt = Printf.ksprintf (fun s -> Alcotest.failf "%s: %s" ctx s) fmt

(* The heart of the harness: pre-crash state vs the remounted manager. *)
let check_invariants ~ctx pre post report =
  let module M = Storage.Manager in
  let post_blocks = List.map (fun (b, _, _) -> b) post.blocks in
  let pre_flashed =
    List.filter_map (fun (b, _, loc) -> Option.map (fun l -> (b, l)) loc) pre.blocks
  in
  (* 1. Live flash blocks are never lost, and keep their exact placement. *)
  List.iter
    (fun (b, loc) ->
      match List.assoc_opt b (List.map (fun (b, _, l) -> (b, l)) post.blocks) with
      | Some (Some loc') when loc' = loc -> ()
      | Some _ -> fail ~ctx "flash block %d moved across the crash" b
      | None -> fail ~ctx "flash-resident block %d lost by the crash" b)
    pre_flashed;
  (* 2. Nothing appears from nowhere: recovered ⊆ known-before, and any
     recovered block that was not flash-resident must be a dirty block
     rolled back to an older durable version. *)
  List.iter
    (fun b ->
      match List.find_opt (fun (b', _, _) -> b' = b) pre.blocks with
      | None -> fail ~ctx "block %d resurrected from nothing" b
      | Some (_, dirty, loc) ->
        if loc = None && not dirty then
          fail ~ctx "block %d recovered but had no data at the crash" b)
    post_blocks;
  (* 3. Loss is bounded by the write buffer: every lost block was dirty,
     and the report accounts for the buffer exactly. *)
  let lost =
    List.filter (fun (b, _, _) -> not (List.mem b post_blocks)) pre.blocks
  in
  List.iter
    (fun (b, dirty, _) ->
      if not dirty then fail ~ctx "non-dirty block %d lost" b)
    lost;
  if List.length lost > pre.dirty then
    fail ~ctx "lost %d blocks but only %d were dirty" (List.length lost) pre.dirty;
  (* Per-card array checks pass [None]: the remount report is summed over
     every card, so the per-manager equality only holds in aggregate. *)
  (match report with
  | Some r ->
    if r.M.buffered_lost <> pre.dirty then
      fail ~ctx "report says %d buffered lost but buffer held %d" r.M.buffered_lost
        pre.dirty
  | None -> ());
  (* Rollback accounting: dirty blocks either vanish (lost) or roll back
     to a flash copy. *)
  let rollbacks =
    List.filter
      (fun (b, dirty, loc) -> dirty && loc = None && List.mem b post_blocks)
      pre.blocks
    |> List.length
  in
  let dirty_with_stale =
    List.filter (fun (b, dirty, _) -> dirty && List.mem b post_blocks) pre.blocks
    |> List.length
  in
  ignore dirty_with_stale;
  (* 4. Wear state is untouched by a crash: evenness, per-segment erase
     counts, and the retired set all match the crash-free reference. *)
  if post.evenness <> pre.evenness then fail ~ctx "wear evenness changed";
  if Array.length post.segs <> Array.length pre.segs then
    fail ~ctx "segment count changed";
  Array.iteri
    (fun i (s : M.segment_snapshot) ->
      let s' = post.segs.(i) in
      if s'.M.seg_erases <> s.M.seg_erases then
        fail ~ctx "segment %d erase count %d -> %d" i s.M.seg_erases s'.M.seg_erases;
      if s'.M.seg_retired <> s.M.seg_retired then
        fail ~ctx "segment %d retirement flipped" i;
      (* 5. Physical occupancy: programmed slots are exactly preserved;
         live counts only grow (rollback copies count as live again). *)
      if s'.M.seg_used <> s.M.seg_used then
        fail ~ctx "segment %d used slots %d -> %d" i s.M.seg_used s'.M.seg_used;
      if s'.M.seg_live < s.M.seg_live then
        fail ~ctx "segment %d lost live blocks (%d -> %d)" i s.M.seg_live
          s'.M.seg_live;
      (* State compatibility: a partially-filled Open segment remounts as
         Closed (or Free when it held nothing); everything else is
         preserved. *)
      match (s.M.seg_state, s'.M.seg_state) with
      | Storage.Segment.Open, (Storage.Segment.Closed | Storage.Segment.Free) -> ()
      | a, b when a = b -> ()
      | _ -> fail ~ctx "segment %d state changed incompatibly" i)
    pre.segs;
  let live_sum snaps =
    Array.fold_left (fun acc s -> acc + s.M.seg_live) 0 snaps
  in
  if live_sum post.segs <> live_sum pre.segs + rollbacks then
    fail ~ctx "live-block total %d, expected %d + %d rollbacks"
      (live_sum post.segs) (live_sum pre.segs) rollbacks;
  (* 6. Capacity accounting survives, and the remounted buffer is clean. *)
  if post.capacity <> pre.capacity then fail ~ctx "capacity changed";
  if post.free_segments <> pre.free_segments then
    fail ~ctx "free segments %d -> %d" pre.free_segments post.free_segments;
  if post.dirty <> 0 then fail ~ctx "remounted manager has dirty blocks"

let run_crash_point ?diff_log ~ctx ~ops ~crash_index ~cleaner ~wear ~banking
    ~buffer_blocks () =
  let prefix = List.filteri (fun i _ -> i < crash_index) ops in
  (* Both selectors crash at the same point: the Checked manager asserts
     indexed-vs-scan agreement internally at every decision, and the
     externally visible recovery must agree with the plain Scan manager. *)
  let ea, a =
    mk ?diff_log ~selector:Storage.Manager.Checked ~cleaner ~wear ~banking
      ~buffer_blocks ()
  in
  let eb, b =
    mk ?diff_log ~selector:Storage.Manager.Scan ~cleaner ~wear ~banking ~buffer_blocks
      ()
  in
  run_ops (ea, a) prefix;
  run_ops (eb, b) prefix;
  let pre_a = snapshot a in
  let pre_b = snapshot b in
  if pre_a.blocks <> pre_b.blocks then
    fail ~ctx "selectors diverged before the crash";
  let a', span_a, report_a = Storage.Manager.crash_and_remount a in
  let b', span_b, report_b = Storage.Manager.crash_and_remount b in
  if span_a <> span_b then fail ~ctx "remount spans diverged across selectors";
  if report_a <> report_b then fail ~ctx "remount reports diverged across selectors";
  let post_a = snapshot a' in
  let post_b = snapshot b' in
  if post_a.blocks <> post_b.blocks then
    fail ~ctx "recovered block sets diverged across selectors";
  check_invariants ~ctx pre_a post_a (Some report_a);
  check_invariants ~ctx pre_b post_b (Some report_b);
  (* 8. Remount is idempotent: crashing the already-clean remounted
     manager recovers the identical state and loses nothing. *)
  let a'', _, report2 = Storage.Manager.crash_and_remount a' in
  if report2.Storage.Manager.buffered_lost <> 0 then
    fail ~ctx "second remount claims buffered loss";
  let post2 = snapshot a'' in
  if post2.blocks <> post_a.blocks then fail ~ctx "remount not idempotent"

(* 24 configs x 9 crash points = 216 crash scenarios (>= the 200 the
   acceptance criteria require), every one over both selectors. *)
let crash_indices = [ 15; 40; 77; 120; 161; 200; 247; 301; 355 ]

let grid_case ?diff_log ~name ~seed ~len () =
  Alcotest.test_case name `Slow (fun () ->
      let ops = lcg_ops ~seed ~len in
      List.iter
        (fun cleaner ->
          List.iter
            (fun wear ->
              List.iter
                (fun banking ->
                  List.iter
                    (fun buffer_blocks ->
                      List.iter
                        (fun crash_index ->
                          let ctx =
                            Printf.sprintf "%s/%s/%s buf=%d crash@%d%s"
                              (Storage.Cleaner.policy_name cleaner)
                              (Storage.Wear.policy_name wear)
                              (Storage.Banks.policy_name banking)
                              buffer_blocks crash_index
                              (if diff_log = None then "" else " +diff")
                          in
                          run_crash_point ?diff_log ~ctx ~ops ~crash_index ~cleaner
                            ~wear ~banking ~buffer_blocks ())
                        crash_indices)
                    [ 0; 8 ])
                [ Storage.Banks.Unified; Storage.Banks.Partitioned { write_banks = 1 } ])
            [
              Storage.Wear.None_;
              Storage.Wear.Dynamic;
              Storage.Wear.Static { spread_threshold = 5 };
            ])
        [ Storage.Cleaner.Greedy; Storage.Cleaner.Cost_benefit ])

(* A quick single-config pass so even `-q` runs exercise the crash path. *)
let quick_case =
  Alcotest.test_case "single config, all crash points" `Quick (fun () ->
      let ops = lcg_ops ~seed:42 ~len:360 in
      List.iter
        (fun crash_index ->
          run_crash_point
            ~ctx:(Printf.sprintf "quick crash@%d" crash_index)
            ~ops ~crash_index ~cleaner:Storage.Cleaner.Cost_benefit
            ~wear:Storage.Wear.Dynamic ~banking:Storage.Banks.Unified
            ~buffer_blocks:8 ())
        crash_indices)

(* The same single-config pass with page-differential logging on: delta
   chains are durable state, so every crash point must bring them back
   under the very same invariants (a chained block's reported placement
   is its base page, before and after). *)
let diff_quick_case =
  Alcotest.test_case "single config + diff logging, all crash points" `Quick
    (fun () ->
      let ops = lcg_ops ~seed:42 ~len:360 in
      List.iter
        (fun crash_index ->
          run_crash_point
            ~diff_log:Storage.Diff_log.default_config
            ~ctx:(Printf.sprintf "diff quick crash@%d" crash_index)
            ~ops ~crash_index ~cleaner:Storage.Cleaner.Cost_benefit
            ~wear:Storage.Wear.Dynamic ~banking:Storage.Banks.Unified
            ~buffer_blocks:8 ())
        crash_indices)

(* --- Multi-card arrays: crashes inside partial-stripe writes. ---------------
   The same differential idea one level up: a 2-card striped array runs
   the op stream, crashes, remounts every card.  Each card's manager must
   satisfy every single-manager invariant against its own pre-crash state
   (with the loss report checked in aggregate — it is summed over cards),
   and on top of that the array's arithmetic placement must keep holding:
   recovered globals still route to the same card and segment, and the
   rebuilt global cursor collides with nothing even when the cards lost
   different numbers of never-flushed tail allocations. *)

let mk_array ?(ncards = 2) ?policy ~strip_blocks ~buffer_blocks () =
  let engine = Engine.create () in
  let flashes =
    Array.init ncards (fun _ ->
        Device.Flash.create
          (Device.Flash.config ~nbanks:2 ~endurance_override:60
             ~size_bytes:(128 * 1024) ()))
  in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let cfg =
    {
      Storage.Manager.default_config with
      Storage.Manager.segment_sectors = 8;
      buffer =
        {
          Storage.Write_buffer.capacity_blocks = buffer_blocks;
          writeback_delay = Time.span_ms 5.0;
          refresh_on_rewrite = true;
        };
    }
  in
  let striping =
    match policy with
    | Some p -> p
    | None -> Storage.Striping.Round_robin { strip_blocks }
  in
  (engine, Storage.Array.create ~front_cache_blocks:8 ~striping cfg ~engine ~flashes ~dram)

(* [run_ops] over the array surface: same stream shape, so crash points
   land mid-stream exactly like the single-manager grid — including
   inside partial stripes, since fresh allocations interleave freely with
   strip boundaries. *)
(* Passing [live] lets a caller split the stream around an event (a card
   eject) and resume with the same working set. *)
let run_ops_array ?(live = ref []) (engine, a) ops =
  let cap = Storage.Array.capacity_blocks a * 6 / 10 in
  let nlive = ref (List.length !live) in
  List.iter
    (fun n ->
      match op_of_int n with
      | Write k when !nlive > 0 ->
        ignore (Storage.Array.write_block a (List.nth !live (k mod !nlive)))
      | Write _ | Fresh when !nlive < cap ->
        let b = Storage.Array.alloc a in
        ignore (Storage.Array.write_block a b);
        live := b :: !live;
        incr nlive
      | Write _ | Fresh -> ()
      | Free k when !nlive > 0 ->
        let b = List.nth !live (k mod !nlive) in
        Storage.Array.free_block a b;
        live := List.filter (fun x -> x <> b) !live;
        decr nlive
      | Free _ -> ()
      | Cold when !nlive < cap ->
        let b = Storage.Array.alloc a in
        Storage.Array.load_cold a b;
        live := b :: !live;
        incr nlive
      | Cold -> ()
      | Advance ms ->
        Engine.run_until engine
          (Time.add (Engine.now engine) (Time.span_ms (float_of_int ms))))
    ops

let array_managers a = Array.init (Storage.Array.ncards a) (Storage.Array.manager a)

let run_array_crash_point ~ctx ~ops ~crash_index ~strip_blocks ~buffer_blocks =
  let prefix = List.filteri (fun i _ -> i < crash_index) ops in
  let engine, a = mk_array ~strip_blocks ~buffer_blocks () in
  run_ops_array (engine, a) prefix;
  let pre = Array.map snapshot (array_managers a) in
  let pre_dirty_total = Array.fold_left (fun acc s -> acc + s.dirty) 0 pre in
  let policy = Storage.Array.striping a in
  let a', _span, report = Storage.Array.crash_and_remount a in
  let post = Array.map snapshot (array_managers a') in
  (* Every single-manager invariant, per card, against its own history. *)
  Array.iteri
    (fun card pre_card ->
      check_invariants
        ~ctx:(Printf.sprintf "%s card%d" ctx card)
        pre_card post.(card) None)
    pre;
  (* The summed report accounts for every card's buffer exactly. *)
  if report.Storage.Manager.buffered_lost <> pre_dirty_total then
    fail ~ctx "summed report says %d buffered lost but the buffers held %d"
      report.Storage.Manager.buffered_lost pre_dirty_total;
  (* Arithmetic placement survives: each recovered local maps back to a
     global that the array still routes to the same card and segment. *)
  Array.iteri
    (fun card post_card ->
      List.iter
        (fun (local, _, _) ->
          let g = Storage.Striping.global_of policy ~ncards:2 ~card ~local in
          if Storage.Array.card_of_block a' g <> card then
            fail ~ctx "global %d re-routed off card %d" g card;
          if not (Storage.Array.block_exists a' g) then
            fail ~ctx "recovered local %d on card %d unreachable as global %d" local
              card g;
          let direct =
            Storage.Manager.segment_of_block (Storage.Array.manager a' card) local
          in
          if Storage.Array.segment_of_block a' g <> direct then
            fail ~ctx "global %d disagrees with card %d about its segment" g card)
        post_card.blocks)
    post;
  (* The rebuilt cursor is collision-free: a fresh stripe of allocations
     lands where the arithmetic says (the array asserts placement on
     every alloc), strictly above every recovered global. *)
  let top =
    Array.to_seq post
    |> Seq.mapi (fun card s ->
           List.fold_left
             (fun acc (local, _, _) ->
               max acc (Storage.Striping.global_of policy ~ncards:2 ~card ~local))
             (-1) s.blocks)
    |> Seq.fold_left max (-1)
  in
  let fresh = List.init ((2 * strip_blocks) + 3) (fun _ -> Storage.Array.alloc a') in
  List.iter
    (fun g ->
      if g <= top then fail ~ctx "fresh global %d collides (top recovered %d)" g top;
      ignore (Storage.Array.write_block a' g))
    fresh;
  ignore (Storage.Array.flush_all a');
  (* Idempotence one level up: remounting the remounted array changes
     nothing it recovered (modulo the fresh stripe, which is now durable). *)
  let a'', _, report2 = Storage.Array.crash_and_remount a' in
  if report2.Storage.Manager.buffered_lost <> 0 then
    fail ~ctx "second remount claims buffered loss";
  Array.iteri
    (fun card post_card ->
      let again = snapshot (Storage.Array.manager a'' card) in
      let recovered_locals =
        List.filter
          (fun (local, _, _) ->
            List.exists (fun (l, _, _) -> l = local) post_card.blocks)
          again.blocks
      in
      if List.length recovered_locals < List.length post_card.blocks then
        fail ~ctx "card %d dropped recovered blocks on the second remount" card)
    post

let array_quick_case =
  Alcotest.test_case "2-card array, strip grid x crash points" `Quick (fun () ->
      let ops = lcg_ops ~seed:42 ~len:360 in
      List.iter
        (fun strip_blocks ->
          List.iter
            (fun crash_index ->
              run_array_crash_point
                ~ctx:(Printf.sprintf "array strip=%d crash@%d" strip_blocks crash_index)
                ~ops ~crash_index ~strip_blocks ~buffer_blocks:8)
            crash_indices)
        [ 1; 4 ])

let array_grid_case =
  Alcotest.test_case "2-card array, strip x buffer grid" `Slow (fun () ->
      let ops = lcg_ops ~seed:97 ~len:360 in
      List.iter
        (fun strip_blocks ->
          List.iter
            (fun buffer_blocks ->
              List.iter
                (fun crash_index ->
                  run_array_crash_point
                    ~ctx:
                      (Printf.sprintf "array strip=%d buf=%d crash@%d" strip_blocks
                         buffer_blocks crash_index)
                    ~ops ~crash_index ~strip_blocks ~buffer_blocks)
                crash_indices)
            [ 0; 8 ])
        [ 1; 4; 8 ])

(* Crashes at every fill level of a partial stripe: whole stripes made
   durable, then [fill] fresh allocations left dirty across the strip
   boundary.  Exactly [fill] blocks may die, and the survivors (and the
   re-aligned cursor) must come back consistent. *)
let test_partial_stripe_crashes () =
  List.iter
    (fun strip_blocks ->
      let stripe = 2 * strip_blocks in
      let fills =
        List.sort_uniq compare
          [ 1; strip_blocks; strip_blocks + 1; stripe - 1; stripe + 1 ]
        |> List.filter (fun f -> f >= 1)
      in
      List.iter
        (fun fill ->
          let ctx = Printf.sprintf "strip=%d fill=%d" strip_blocks fill in
          let engine, a = mk_array ~strip_blocks ~buffer_blocks:64 () in
          let burst n =
            List.init n (fun _ ->
                let g = Storage.Array.alloc a in
                ignore (Storage.Array.write_block a g);
                g)
          in
          let durable = burst (4 * stripe) in
          Engine.run_until engine (Time.add (Engine.now engine) (Time.span_ms 50.0));
          let tail = burst fill in
          let a', _span, report = Storage.Array.crash_and_remount a in
          if report.Storage.Manager.buffered_lost <> fill then
            fail ~ctx "lost %d buffered blocks, expected the %d-block tail"
              report.Storage.Manager.buffered_lost fill;
          List.iter
            (fun g ->
              if not (Storage.Array.block_exists a' g) then
                fail ~ctx "durable block %d lost" g)
            durable;
          List.iter
            (fun g ->
              if Storage.Array.block_exists a' g then
                fail ~ctx "never-flushed tail block %d resurrected" g)
            tail;
          (* The tail died entirely, so its handles were never durable:
             the cursor resumes at the first tail global and the next
             stripe of allocations is collision-free by the arithmetic
             (asserted inside the array on every alloc). *)
          let resumed = Storage.Array.alloc a' in
          if resumed <> 4 * stripe then
            fail ~ctx "cursor resumed at %d, expected %d" resumed (4 * stripe);
          ignore (Storage.Array.write_block a' resumed);
          ignore (Storage.Array.flush_all a'))
        fills)
    [ 1; 4 ]

(* --- Parity arrays: surprise eject mid-stream, degraded service, rebuild. ---
   The acceptance grid one level up from crashes: a 3-card parity array
   runs the same op stream, loses a card by surprise at an arbitrary
   point, and must (a) keep every live block reachable and readable —
   the degraded-equivalence assertion: eject + reconstruct ≡ before —
   (b) keep serving the rest of the stream degraded, and (c) return to
   full health when a replacement card rebuilds, optionally with a power
   crash in between while still degraded. *)

let all_alive_and_readable ~ctx a live =
  List.iter
    (fun g ->
      if not (Storage.Array.block_exists a g) then fail ~ctx "live block %d vanished" g;
      match Storage.Array.read_block a g with
      | (_ : Time.span) -> ()
      | exception e ->
        fail ~ctx "live block %d unreadable: %s" g (Printexc.to_string e))
    live

let rebuild_to_health ~ctx engine a ~card =
  Storage.Array.reinsert_card a ~card;
  let tries = ref 0 in
  while Storage.Array.health a <> `Healthy && !tries < 120 do
    Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 1.0));
    incr tries
  done;
  if Storage.Array.health a <> `Healthy then
    fail ~ctx "rebuild did not complete within %d simulated seconds" !tries

let run_parity_eject_point ~ctx ~ops ~eject_index ~victim ~crash_while_degraded
    ~strip_blocks ~buffer_blocks =
  let prefix = List.filteri (fun i _ -> i < eject_index) ops in
  let suffix = List.filteri (fun i _ -> i >= eject_index) ops in
  let engine, a =
    mk_array ~ncards:3
      ~policy:(Storage.Striping.Parity { strip_blocks; rotate = true })
      ~strip_blocks ~buffer_blocks ()
  in
  let live = ref [] in
  run_ops_array ~live (engine, a) prefix;
  let r = Storage.Array.eject_card ~surprise:true a ~card:victim in
  ignore (r : Storage.Array.eject_report);
  if Storage.Array.health a <> `Degraded victim then fail ~ctx "not degraded after eject";
  (* Degraded equivalence: the eject changes nothing the client can see. *)
  all_alive_and_readable ~ctx:(ctx ^ " (just ejected)") a !live;
  (* The stream continues against the degraded array — writes, frees,
     cold loads, and fresh allocations that route to the missing card. *)
  run_ops_array ~live (engine, a) suffix;
  all_alive_and_readable ~ctx:(ctx ^ " (degraded, stream done)") a !live;
  let a, live =
    if not crash_while_degraded then (a, !live)
    else begin
      (* Power dies while the card is still out.  Whatever had a durable
         home — its own segment, or its parity block's — must come back;
         the degraded state itself must survive the remount.  A dirty
         block's flash copy (its own or its parity's) is stale, and the
         remount discards stale versions, so dirty blocks don't count. *)
      let durable =
        List.filter
          (fun g ->
            Storage.Array.segment_of_block a g <> None
            && not (Storage.Array.block_is_dirty a g))
          !live
      in
      let a', _span, _report = Storage.Array.crash_and_remount a in
      if Storage.Array.health a' <> `Degraded victim then
        fail ~ctx "crash while degraded dropped the degraded state";
      all_alive_and_readable ~ctx:(ctx ^ " (after degraded crash)") a' durable;
      (a', durable)
    end
  in
  rebuild_to_health ~ctx engine a ~card:victim;
  let ps = Storage.Array.parity_stats a in
  if
    List.exists (fun g -> Storage.Array.card_of_block a g = victim) live
    && ps.Storage.Array.rebuilt_blocks = 0
  then fail ~ctx "the victim held data but the rebuild streamed nothing";
  all_alive_and_readable ~ctx:(ctx ^ " (rebuilt)") a live;
  ignore (Storage.Array.flush_all a);
  List.iter
    (fun g ->
      if
        Storage.Array.card_of_block a g = victim
        && Storage.Array.segment_of_block a g = None
      then fail ~ctx "rebuilt block %d has no flash home" g)
    live;
  (* Allocation resumes collision-free (the array asserts placement on
     every alloc) and the fresh stripe becomes durable. *)
  let fresh = List.init (3 * strip_blocks) (fun _ -> Storage.Array.alloc a) in
  List.iter (fun g -> ignore (Storage.Array.write_block a g)) fresh;
  ignore (Storage.Array.flush_all a)

let parity_quick_case =
  Alcotest.test_case "3-card parity: eject/degraded/rebuild points" `Quick (fun () ->
      let ops = lcg_ops ~seed:42 ~len:360 in
      List.iter
        (fun crash_while_degraded ->
          List.iter
            (fun strip_blocks ->
              List.iter
                (fun eject_index ->
                  run_parity_eject_point
                    ~ctx:
                      (Printf.sprintf "parity strip=%d eject@%d%s" strip_blocks
                         eject_index
                         (if crash_while_degraded then " +crash" else ""))
                    ~ops ~eject_index ~victim:1 ~crash_while_degraded ~strip_blocks
                    ~buffer_blocks:8)
                [ 40; 161; 301 ])
            [ 1; 4 ])
        [ false; true ])

let parity_grid_case =
  Alcotest.test_case "3-card parity: victim x strip x eject grid" `Slow (fun () ->
      let ops = lcg_ops ~seed:97 ~len:360 in
      List.iter
        (fun victim ->
          List.iter
            (fun crash_while_degraded ->
              List.iter
                (fun strip_blocks ->
                  List.iter
                    (fun eject_index ->
                      run_parity_eject_point
                        ~ctx:
                          (Printf.sprintf "parity victim=%d strip=%d eject@%d%s"
                             victim strip_blocks eject_index
                             (if crash_while_degraded then " +crash" else ""))
                        ~ops ~eject_index ~victim ~crash_while_degraded
                        ~strip_blocks ~buffer_blocks:8)
                    crash_indices)
                [ 1; 4 ])
            [ false; true ])
        [ 0; 1; 2 ])

(* --- Machine-level faults: battery state decides what survives. ------------- *)

let solid_machine ?(backup_wh = 0.1) () =
  Ssmc.Machine.create (Ssmc.Config.solid_state ~backup_wh ~seed:11 ())

let write_some machine n =
  let memfs = Option.get (Ssmc.Machine.memfs machine) in
  (match Fs.Memfs.mkdir memfs "/data" with
  | Ok _ | Error Fs.Fs_error.Eexist -> ()
  | Error e -> Alcotest.failf "mkdir: %s" (Fmt.str "%a" Fs.Fs_error.pp e));
  for i = 0 to n - 1 do
    let path = Printf.sprintf "/data/f%d" i in
    (match Fs.Memfs.create memfs path with
    | Ok _ | Error Fs.Fs_error.Eexist -> ()
    | Error e -> Alcotest.failf "create: %s" (Fmt.str "%a" Fs.Fs_error.pp e));
    match Fs.Memfs.write memfs path ~offset:0 ~bytes:1024 with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "write: %s" (Fmt.str "%a" Fs.Fs_error.pp e)
  done

let test_warm_fault_loses_nothing () =
  let machine = solid_machine () in
  write_some machine 8;
  let mgr_before = Option.get (Ssmc.Machine.manager machine) in
  let dirty = (Storage.Manager.stats mgr_before).Storage.Manager.dirty_blocks in
  Alcotest.(check bool) "buffer has dirty data" true (dirty > 0);
  let o = Ssmc.Machine.inject_fault machine Fault.Power_failure in
  Alcotest.(check bool) "battery held" true (o.Ssmc.Machine.survived_by <> `Nothing);
  Alcotest.(check int) "nothing lost" 0 o.Ssmc.Machine.blocks_lost;
  Alcotest.(check bool) "no restart" false o.Ssmc.Machine.cold_restart;
  Alcotest.(check bool) "manager untouched" true
    (Option.get (Ssmc.Machine.manager machine) == mgr_before);
  let memfs = Option.get (Ssmc.Machine.memfs machine) in
  match Fs.Memfs.check memfs with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "fsck after warm fault: %s" msg

let test_cold_fault_bounded_loss () =
  let machine = solid_machine ~backup_wh:0.0 () in
  write_some machine 8;
  let mgr = Option.get (Ssmc.Machine.manager machine) in
  let dirty = (Storage.Manager.stats mgr).Storage.Manager.dirty_blocks in
  (* No backup: depleting the primary forces a cold restart. *)
  let o = Ssmc.Machine.inject_fault machine Fault.Battery_depletion in
  Alcotest.(check bool) "nothing held" true (o.Ssmc.Machine.survived_by = `Nothing);
  Alcotest.(check bool) "cold restart" true o.Ssmc.Machine.cold_restart;
  Alcotest.(check int) "dirty counted" dirty o.Ssmc.Machine.dirty_at_fault;
  Alcotest.(check bool) "loss bounded by buffer" true
    (o.Ssmc.Machine.blocks_lost <= dirty);
  (match o.Ssmc.Machine.remount with
  | Some r -> Alcotest.(check int) "report matches" dirty r.Storage.Manager.buffered_lost
  | None -> Alcotest.fail "cold restart must carry a remount report");
  (* The machine came back: fsck passes and it takes new writes. *)
  let memfs = Option.get (Ssmc.Machine.memfs machine) in
  (match Fs.Memfs.check memfs with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "fsck after cold restart: %s" msg);
  write_some machine 2;
  match Fs.Memfs.check (Option.get (Ssmc.Machine.memfs machine)) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "fsck after resumed writes: %s" msg

let test_swap_rides_backup () =
  let machine = solid_machine ~backup_wh:0.1 () in
  write_some machine 4;
  let o = Ssmc.Machine.inject_fault machine Fault.Battery_swap in
  Alcotest.(check bool) "backup carried the swap" true
    (o.Ssmc.Machine.survived_by = `Backup_battery);
  Alcotest.(check int) "nothing lost" 0 o.Ssmc.Machine.blocks_lost;
  let b = Ssmc.Machine.battery machine in
  Alcotest.(check (float 1e-9)) "fresh primary" 1.0 (Device.Battery.fraction_remaining b)

let test_run_seq_with_faults () =
  (* A trace-driven run with a mid-run fault schedule: the replay resumes
     across each fault and the outcomes land in the result, warm ones
     losing nothing. *)
  let machine = solid_machine () in
  let trace =
    Trace.Synth.generate Trace.Workloads.pim ~rng:(Rng.create ~seed:5)
      ~duration:(Time.span_s 30.0)
  in
  Ssmc.Machine.preload machine trace.Trace.Synth.initial_files;
  let faults =
    Fault.schedule
      [
        { Fault.after = Time.span_s 5.0; kind = Fault.Power_failure };
        { Fault.after = Time.span_s 12.0; kind = Fault.Battery_swap };
        { Fault.after = Time.span_s 21.0; kind = Fault.Battery_depletion };
      ]
  in
  let result = Ssmc.Machine.run ~faults machine trace.Trace.Synth.records in
  Alcotest.(check int) "all faults fired" 3 (List.length result.Ssmc.Machine.fault_log);
  List.iter
    (fun o ->
      if o.Ssmc.Machine.survived_by <> `Nothing then begin
        Alcotest.(check int) "warm fault loses nothing" 0 o.Ssmc.Machine.blocks_lost;
        Alcotest.(check bool) "warm fault needs no remount" true
          (o.Ssmc.Machine.remount = None)
      end
      else
        Alcotest.(check bool) "cold loss bounded" true
          (o.Ssmc.Machine.blocks_lost <= o.Ssmc.Machine.dirty_at_fault))
    result.Ssmc.Machine.fault_log;
  Alcotest.(check bool) "trace resumed after faults" true
    (result.Ssmc.Machine.ops_applied > 0);
  match Fs.Memfs.check (Option.get (Ssmc.Machine.memfs machine)) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "fsck after faulted run: %s" msg

let test_conventional_machine_rejects_faults () =
  let machine = Ssmc.Machine.create (Ssmc.Config.conventional ()) in
  Alcotest.check_raises "conventional machine"
    (Invalid_argument "Machine: fault injection requires solid-state storage")
    (fun () -> ignore (Ssmc.Machine.inject_fault machine Fault.Power_failure))

let suite =
  [
    quick_case;
    diff_quick_case;
    grid_case ~name:"policy grid x crash points" ~seed:42 ~len:360 ();
    grid_case ~diff_log:Storage.Diff_log.default_config
      ~name:"policy grid x crash points (diff logging)" ~seed:42 ~len:360 ();
    array_quick_case;
    array_grid_case;
    Alcotest.test_case "partial-stripe crash points (2 cards)" `Quick
      test_partial_stripe_crashes;
    parity_quick_case;
    parity_grid_case;
    Alcotest.test_case "warm fault loses nothing" `Quick test_warm_fault_loses_nothing;
    Alcotest.test_case "cold fault: loss bounded by buffer" `Quick
      test_cold_fault_bounded_loss;
    Alcotest.test_case "battery swap rides the backup" `Quick test_swap_rides_backup;
    Alcotest.test_case "run_seq with a fault schedule" `Quick test_run_seq_with_faults;
    Alcotest.test_case "conventional machine rejects faults" `Quick
      test_conventional_machine_rejects_faults;
  ]
