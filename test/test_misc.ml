(* Coverage for the smaller public APIs not exercised elsewhere. *)
open Sim

let test_vfs_path_of_file_id () =
  Alcotest.(check string) "mapping" "/data/f17" (Fs.Vfs.path_of_file_id 17)

let test_engine_advance_to () =
  let e = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule e ~at:(Time.of_ns 50) (fun _ -> fired := true));
  Engine.advance_to e (Time.of_ns 100);
  Alcotest.(check int) "clock moved" 100 (Time.to_ns (Engine.now e));
  Alcotest.(check bool) "due events delivered" true !fired;
  (* Advancing into the past is a no-op. *)
  Engine.advance_to e (Time.of_ns 10);
  Alcotest.(check int) "no backwards motion" 100 (Time.to_ns (Engine.now e))

let test_flash_wear_summary () =
  let f =
    Device.Flash.create
      (Device.Flash.config ~endurance_override:100 ~size_bytes:(8 * 1024) ())
  in
  ignore (Device.Flash.erase f ~now:Time.zero ~sector:0);
  ignore (Device.Flash.erase f ~now:Time.zero ~sector:0);
  let s = Device.Flash.wear_summary f in
  Alcotest.(check int) "one entry per sector" 16 (Stat.Summary.count s);
  Alcotest.(check (option (float 1e-9))) "max" (Some 2.0) (Stat.Summary.max s);
  Alcotest.(check (float 1e-9)) "total erases" 2.0 (Stat.Summary.total s)

let test_trends_configuration_cost () =
  (* 20MB of flash at $50/MB in 1993. *)
  Alcotest.(check (float 1.0)) "20MB flash ~ $1000" 1000.0
    (Ssmc.Trends.configuration_cost Ssmc.Trends.Flash ~year:1993.0 ~capacity_mb:20.0);
  Alcotest.(check string) "tech names" "DRAM" (Ssmc.Trends.tech_name Ssmc.Trends.Dram)

let test_machine_manual_account () =
  let machine = Ssmc.Machine.create (Ssmc.Config.solid_state ()) in
  let engine = Ssmc.Machine.engine machine in
  Engine.run_until engine (Time.of_ns 60_000_000_000);
  Ssmc.Machine.account machine;
  (* A minute of idle self-refresh and flash standby must drain something. *)
  Alcotest.(check bool) "battery drained by idle draw" true
    (Device.Battery.fraction_remaining (Ssmc.Machine.battery machine) < 1.0)

let test_fs_names () =
  let engine = Engine.create () in
  let flash = Device.Flash.create (Device.Flash.config ~size_bytes:(256 * 1024) ()) in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let manager = Storage.Manager.create Storage.Manager.default_config ~engine ~flash ~dram in
  let memfs = Fs.Memfs.create_fs ~manager () in
  Alcotest.(check string) "memfs" "memfs" (Fs.Memfs.name memfs);
  let disk = Device.Disk.create ~rng:(Rng.create ~seed:1) () in
  let ffs = Fs.Ffs.create_fs ~engine:(Engine.create ()) ~disk ~dram () in
  Alcotest.(check string) "ffs" "ffs" (Fs.Ffs.name ffs)

let test_policy_printers () =
  Alcotest.(check string) "greedy" "greedy" (Storage.Cleaner.policy_name Storage.Cleaner.Greedy);
  Alcotest.(check string) "cb" "cost-benefit"
    (Storage.Cleaner.policy_name Storage.Cleaner.Cost_benefit);
  Alcotest.(check string) "wear none" "none" (Storage.Wear.policy_name Storage.Wear.None_);
  Alcotest.(check string) "wear static" "static(5)"
    (Storage.Wear.policy_name (Storage.Wear.Static { spread_threshold = 5 }));
  Alcotest.(check string) "banks" "partitioned(2)"
    (Storage.Banks.policy_name (Storage.Banks.Partitioned { write_banks = 2 }));
  Alcotest.(check string) "prot" "rwx"
    (Fmt.str "%a" Vmem.Page_table.pp_prot Vmem.Page_table.prot_rwx)

let test_block_is_dirty () =
  let engine = Engine.create () in
  let flash = Device.Flash.create (Device.Flash.config ~size_bytes:(256 * 1024) ()) in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let manager = Storage.Manager.create Storage.Manager.default_config ~engine ~flash ~dram in
  let b = Storage.Manager.alloc manager in
  Alcotest.(check bool) "blank not dirty" false (Storage.Manager.block_is_dirty manager b);
  ignore (Storage.Manager.write_block manager b);
  Alcotest.(check bool) "buffered dirty" true (Storage.Manager.block_is_dirty manager b);
  ignore (Storage.Manager.flush_all manager);
  Alcotest.(check bool) "flushed not dirty" false (Storage.Manager.block_is_dirty manager b)

let test_battery_edge_cases () =
  Alcotest.check_raises "zero capacity" (Invalid_argument "Battery.create: capacity <= 0")
    (fun () -> ignore (Device.Battery.create ~capacity_joules:0.0 ()));
  let b = Device.Battery.create ~capacity_joules:10.0 () in
  Alcotest.check_raises "negative drain" (Invalid_argument "Battery.drain: negative")
    (fun () -> Device.Battery.drain b ~joules:(-1.0));
  Alcotest.check_raises "negative draw holdup"
    (Invalid_argument "Battery.holdup_time: negative draw") (fun () ->
      ignore (Device.Battery.holdup_time b ~draw_watts:(-1.0)));
  (* An idle machine drawing nothing keeps its DRAM forever — not a crash. *)
  Alcotest.(check bool) "zero draw holds forever" true
    (Device.Battery.holdup_time b ~draw_watts:0.0 = Device.Battery.Unbounded);
  Alcotest.(check bool) "vanishing draw saturates to unbounded" true
    (Device.Battery.holdup_time b ~draw_watts:1e-300 = Device.Battery.Unbounded)

let test_sizing_pp_and_lifetime_errors () =
  Alcotest.check_raises "bad skew" (Invalid_argument "Lifetime.years: skew < 1")
    (fun () ->
      ignore
        (Ssmc.Lifetime.years
           {
             Ssmc.Lifetime.endurance = 10;
             total_sectors = 10;
             sector_bytes = 512;
             flash_write_bytes_per_day = 1.0;
             write_amplification = 1.0;
             wear_skew = 0.5;
           }))

let test_replay_run_all () =
  let engine = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule engine ~at:(Time.of_ns 5_000) (fun _ -> fired := true));
  let records =
    [ { Trace.Record.at = Time.of_ns 1_000; op = Trace.Record.Create { file = 1 } } ]
  in
  Trace.Replay.run_all engine records ~f:(fun _ _ -> ()) ~drain_until:(Time.of_ns 10_000);
  Alcotest.(check bool) "post-trace event drained" true !fired;
  Alcotest.(check int) "clock at drain point" 10_000 (Time.to_ns (Engine.now engine))

let test_chart_empty_and_flat () =
  (* Degenerate inputs render without crashing. *)
  ignore (Sim.Chart.bars ~title:"empty" ~unit:"" []);
  let flat = Sim.Chart.bars ~title:"flat" ~unit:"u" [ ("a", 0.0); ("b", 0.0) ] in
  Alcotest.(check bool) "zero-height bars" true (String.length flat > 0)

let test_calibration_pp () =
  let t =
    Trace.Synth.generate Trace.Workloads.pim ~rng:(Rng.create ~seed:5)
      ~duration:(Time.span_s 120.0)
  in
  let report = Trace.Calibration.analyze t in
  let rendered = Fmt.str "%a" Trace.Calibration.pp_report report in
  Alcotest.(check bool) "report renders" true (String.length rendered > 50)

let test_machine_drain_parameter () =
  let trace =
    Trace.Synth.generate
      { Trace.Workloads.pim with Trace.Synth.population = 20 }
      ~rng:(Rng.create ~seed:31) ~duration:(Time.span_s 30.0)
  in
  let machine = Ssmc.Machine.create (Ssmc.Config.solid_state ~seed:31 ()) in
  Ssmc.Machine.preload machine trace.Trace.Synth.initial_files;
  let result = Ssmc.Machine.run ~drain:(Time.span_s 300.0) machine trace.Trace.Synth.records in
  (* A long drain gives every deadline time to flush. *)
  let stats = Option.get result.Ssmc.Machine.manager_stats in
  Alcotest.(check int) "nothing left dirty" 0 stats.Storage.Manager.dirty_blocks;
  Alcotest.(check bool) "elapsed covers the drain" true
    (Time.span_to_s result.Ssmc.Machine.elapsed >= 300.0)

let test_card_eject_report_pp () =
  let engine = Engine.create () in
  let host_dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let card = Ssmc.Card.create ~size_mb:1 ~engine ~host_dram () in
  let report = Ssmc.Card.eject card in
  let rendered = Fmt.str "%a" Ssmc.Card.pp_eject_report report in
  Alcotest.(check bool) "renders" true (String.length rendered > 10)

let suite =
  [
    Alcotest.test_case "vfs path mapping" `Quick test_vfs_path_of_file_id;
    Alcotest.test_case "engine advance_to" `Quick test_engine_advance_to;
    Alcotest.test_case "flash wear summary" `Quick test_flash_wear_summary;
    Alcotest.test_case "trends configuration cost" `Quick test_trends_configuration_cost;
    Alcotest.test_case "machine manual account" `Quick test_machine_manual_account;
    Alcotest.test_case "fs names" `Quick test_fs_names;
    Alcotest.test_case "policy printers" `Quick test_policy_printers;
    Alcotest.test_case "block_is_dirty" `Quick test_block_is_dirty;
    Alcotest.test_case "battery edge cases" `Quick test_battery_edge_cases;
    Alcotest.test_case "lifetime errors" `Quick test_sizing_pp_and_lifetime_errors;
    Alcotest.test_case "replay run_all" `Quick test_replay_run_all;
    Alcotest.test_case "chart degenerate" `Quick test_chart_empty_and_flat;
    Alcotest.test_case "calibration pp" `Quick test_calibration_pp;
    Alcotest.test_case "machine drain" `Quick test_machine_drain_parameter;
    Alcotest.test_case "card report pp" `Quick test_card_eject_report_pp;
  ]
