open Sim

let test_initial_state () =
  let e = Engine.create () in
  Alcotest.(check int) "clock at zero" 0 (Time.to_ns (Engine.now e));
  Alcotest.(check int) "no events" 0 (Engine.pending e);
  Alcotest.(check bool) "step on empty" false (Engine.step e)

let test_event_order_and_clock () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~at:(Time.of_ns 20) (fun e -> log := ("b", Time.to_ns (Engine.now e)) :: !log));
  ignore (Engine.schedule e ~at:(Time.of_ns 10) (fun e -> log := ("a", Time.to_ns (Engine.now e)) :: !log));
  Engine.run e;
  Alcotest.(check (list (pair string int)))
    "events in order at their instants"
    [ ("a", 10); ("b", 20) ]
    (List.rev !log)

let test_schedule_in_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~at:(Time.of_ns 100) (fun _ -> ()));
  Engine.run e;
  Alcotest.check_raises "past scheduling"
    (Invalid_argument "Engine.schedule: instant in the past") (fun () ->
      ignore (Engine.schedule e ~at:(Time.of_ns 50) (fun _ -> ())))

let test_schedule_after () =
  let e = Engine.create () in
  let fired = ref (-1) in
  ignore (Engine.schedule_after e ~after:(Time.span_ns 42) (fun e -> fired := Time.to_ns (Engine.now e)));
  Engine.run e;
  Alcotest.(check int) "relative schedule" 42 !fired

let test_cascading_events () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec chain e =
    incr count;
    if !count < 5 then ignore (Engine.schedule_after e ~after:(Time.span_ns 10) chain)
  in
  ignore (Engine.schedule_after e ~after:(Time.span_ns 10) chain);
  Engine.run e;
  Alcotest.(check int) "chain length" 5 !count;
  Alcotest.(check int) "final clock" 50 (Time.to_ns (Engine.now e))

let test_run_until () =
  let e = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun ns -> ignore (Engine.schedule e ~at:(Time.of_ns ns) (fun _ -> fired := ns :: !fired)))
    [ 10; 20; 30; 40 ];
  Engine.run_until e (Time.of_ns 25);
  Alcotest.(check (list int)) "only due events" [ 10; 20 ] (List.rev !fired);
  Alcotest.(check int) "clock advanced exactly" 25 (Time.to_ns (Engine.now e));
  Engine.run_until e (Time.of_ns 100);
  Alcotest.(check (list int)) "rest delivered" [ 10; 20; 30; 40 ] (List.rev !fired);
  Alcotest.(check int) "clock at limit" 100 (Time.to_ns (Engine.now e))

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~at:(Time.of_ns 10) (fun _ -> fired := true) in
  Engine.cancel e h;
  Engine.run e;
  Alcotest.(check bool) "cancelled event never fires" false !fired

let test_schedule_every () =
  let e = Engine.create () in
  let ticks = ref [] in
  Engine.schedule_every e ~every:(Time.span_ns 100) ~until:(Time.of_ns 450) (fun e ->
      ticks := Time.to_ns (Engine.now e) :: !ticks);
  Engine.run e;
  Alcotest.(check (list int)) "periodic ticks" [ 100; 200; 300; 400 ] (List.rev !ticks);
  (* No phantom event past [until]: the drained clock stops at the last
     tick instead of coasting one period beyond the window. *)
  Alcotest.(check int) "clock stops at last tick" 400 (Time.to_ns (Engine.now e));
  Alcotest.(check int) "agenda empty" 0 (Engine.pending e)

let test_schedule_every_until_inclusive () =
  (* A tick landing exactly on [until] fires — pinned, the old check
     decided after the period had elapsed. *)
  let e = Engine.create () in
  let ticks = ref [] in
  Engine.schedule_every e ~every:(Time.span_ns 100) ~until:(Time.of_ns 400) (fun e ->
      ticks := Time.to_ns (Engine.now e) :: !ticks);
  Engine.run e;
  Alcotest.(check (list int)) "tick on until fires" [ 100; 200; 300; 400 ]
    (List.rev !ticks);
  Alcotest.(check int) "nothing scheduled past until" 0 (Engine.pending e);
  (* until before the first tick: never fires, nothing enqueued. *)
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule_every e ~every:(Time.span_ns 100) ~until:(Time.of_ns 99) (fun _ ->
      fired := true);
  Alcotest.(check int) "no first tick enqueued" 0 (Engine.pending e);
  Engine.run e;
  Alcotest.(check bool) "never fires" false !fired

let test_schedule_every_zero_period () =
  let e = Engine.create () in
  Alcotest.check_raises "zero period"
    (Invalid_argument "Engine.schedule_every: zero period") (fun () ->
      Engine.schedule_every e ~every:Time.span_zero (fun _ -> ()))

let test_step_delivers_timestamp_group () =
  let e = Engine.create () in
  let log = ref [] in
  List.iter
    (fun tag -> ignore (Engine.schedule e ~at:(Time.of_ns 5) (fun _ -> log := tag :: !log)))
    [ 1; 2 ];
  ignore (Engine.schedule e ~at:(Time.of_ns 9) (fun _ -> log := 9 :: !log));
  ignore
    (Engine.schedule e ~at:(Time.of_ns 5) (fun e ->
         (* Extending the batch at the current instant stays in-batch. *)
         ignore (Engine.schedule e ~at:(Engine.now e) (fun _ -> log := 4 :: !log));
         log := 3 :: !log));
  Alcotest.(check bool) "one step" true (Engine.step e);
  Alcotest.(check (list int))
    "whole group, including same-instant adds" [ 1; 2; 3; 4 ] (List.rev !log);
  Alcotest.(check int) "clock at the group instant" 5 (Time.to_ns (Engine.now e));
  Alcotest.(check int) "later event untouched" 1 (Engine.pending e)

let test_same_instant_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  List.iter
    (fun tag -> ignore (Engine.schedule e ~at:(Time.of_ns 5) (fun _ -> log := tag :: !log)))
    [ 1; 2; 3 ];
  Engine.run e;
  Alcotest.(check (list int)) "same-instant order" [ 1; 2; 3 ] (List.rev !log)

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "order and clock" `Quick test_event_order_and_clock;
    Alcotest.test_case "past schedule rejected" `Quick test_schedule_in_past_rejected;
    Alcotest.test_case "schedule_after" `Quick test_schedule_after;
    Alcotest.test_case "cascading events" `Quick test_cascading_events;
    Alcotest.test_case "run_until" `Quick test_run_until;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "schedule_every" `Quick test_schedule_every;
    Alcotest.test_case "schedule_every until inclusive" `Quick
      test_schedule_every_until_inclusive;
    Alcotest.test_case "zero period" `Quick test_schedule_every_zero_period;
    Alcotest.test_case "same-instant FIFO" `Quick test_same_instant_fifo;
    Alcotest.test_case "step delivers timestamp group" `Quick
      test_step_delivers_timestamp_group;
  ]
