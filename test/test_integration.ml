(* Cross-module integration tests: whole machines under failure and load,
   determinism end-to-end, and logical equivalence of the two file
   systems. *)
open Sim

let small_profile =
  { Trace.Workloads.engineering with Trace.Synth.population = 40; ops_per_second = 4.0 }

let gen seed secs =
  Trace.Synth.generate small_profile ~rng:(Rng.create ~seed) ~duration:(Time.span_s secs)

(* --- Determinism ------------------------------------------------------------- *)

let run_once seed =
  let trace = gen seed 90.0 in
  let machine = Ssmc.Machine.create (Ssmc.Config.solid_state ~seed ()) in
  Ssmc.Machine.preload machine trace.Trace.Synth.initial_files;
  Ssmc.Machine.run machine trace.Trace.Synth.records

let test_whole_machine_determinism () =
  let a = run_once 21 and b = run_once 21 in
  Alcotest.(check int) "same op count" a.Ssmc.Machine.ops_applied b.Ssmc.Machine.ops_applied;
  Alcotest.(check (float 0.0)) "identical busy time"
    (Time.span_to_us a.Ssmc.Machine.busy)
    (Time.span_to_us b.Ssmc.Machine.busy);
  Alcotest.(check (float 0.0)) "identical energy" a.Ssmc.Machine.energy_j
    b.Ssmc.Machine.energy_j;
  let sa = Option.get a.Ssmc.Machine.manager_stats in
  let sb = Option.get b.Ssmc.Machine.manager_stats in
  Alcotest.(check int) "identical flush count" sa.Storage.Manager.blocks_flushed
    sb.Storage.Manager.blocks_flushed

(* --- Trace file round trip through a machine ----------------------------------- *)

let test_trace_file_roundtrip_same_result () =
  let trace = gen 22 60.0 in
  let path = Filename.temp_file "ssmc" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.Format_io.write_file path trace.Trace.Synth.records;
      let records =
        match Trace.Format_io.read_file path with
        | Ok r -> r
        | Error e -> Alcotest.fail e
      in
      let run records =
        let machine = Ssmc.Machine.create (Ssmc.Config.solid_state ~seed:22 ()) in
        Ssmc.Machine.preload machine trace.Trace.Synth.initial_files;
        Ssmc.Machine.run machine records
      in
      let direct = run trace.Trace.Synth.records in
      let via_file = run records in
      Alcotest.(check int) "ops" direct.Ssmc.Machine.ops_applied
        via_file.Ssmc.Machine.ops_applied;
      Alcotest.(check (float 0.0)) "busy identical"
        (Time.span_to_us direct.Ssmc.Machine.busy)
        (Time.span_to_us via_file.Ssmc.Machine.busy))

(* --- Battery exhaustion mid-run -------------------------------------------------- *)

let test_battery_exhaustion_mid_run () =
  let trace = gen 23 600.0 in
  (* A hopeless battery: the accounting must drain it to zero and keep
     counting unmet demand rather than crash. *)
  let machine =
    Ssmc.Machine.create
      (Ssmc.Config.solid_state ~battery_wh:0.0005 ~backup_wh:0.0001 ~seed:23 ())
  in
  Ssmc.Machine.preload machine trace.Trace.Synth.initial_files;
  let result = Ssmc.Machine.run machine trace.Trace.Synth.records in
  let battery = Ssmc.Machine.battery machine in
  Alcotest.(check bool) "battery exhausted" true (Device.Battery.exhausted battery);
  Alcotest.(check bool) "unmet demand recorded" true
    (Device.Battery.unmet_joules battery > 0.0);
  (* The run itself still completes (the simulator models, it doesn't die). *)
  Alcotest.(check int) "all ops applied" (List.length trace.Trace.Synth.records)
    result.Ssmc.Machine.ops_applied;
  (* And the failure analysis says DRAM contents are gone. *)
  let manager = Option.get (Ssmc.Machine.manager machine) in
  let outcome =
    Ssmc.Recovery.power_failure ~manager ~battery ~dram_battery_backed:true
  in
  Alcotest.(check bool) "nothing protects DRAM" true
    (outcome.Ssmc.Recovery.survived_by = `Nothing)

(* --- Flash wear-out mid-run ------------------------------------------------------- *)

let test_flash_wearout_mid_run () =
  (* Tiny endurance: segments retire during the run; the machine keeps
     going until space genuinely runs out (if ever). *)
  let trace = gen 24 900.0 in
  let machine =
    Ssmc.Machine.create
      (Ssmc.Config.solid_state ~flash_mb:4 ~endurance_override:60 ~seed:24 ())
  in
  Ssmc.Machine.preload machine trace.Trace.Synth.initial_files;
  (match Ssmc.Machine.run machine trace.Trace.Synth.records with
  | _result -> ()
  | exception Storage.Manager.Out_of_space -> () (* acceptable: the device died *));
  let flash = Option.get (Ssmc.Machine.flash machine) in
  let manager = Option.get (Ssmc.Machine.manager machine) in
  let stats = Storage.Manager.stats manager in
  (* Wear happened; whether sectors died depends on the workload, but the
     accounting must be consistent either way. *)
  Alcotest.(check bool) "erases happened" true (Device.Flash.erases flash > 0);
  Alcotest.(check bool) "capacity accounting consistent" true
    (Storage.Manager.capacity_blocks manager
    = (Storage.Manager.nsegments manager - stats.Storage.Manager.retired_segments) * 32)

(* --- Streaming replay equals list replay ------------------------------------------ *)

let check_same_result label (a : Ssmc.Machine.result) (b : Ssmc.Machine.result) =
  let chk what = Alcotest.(check int) (label ^ ": " ^ what) in
  chk "ops" a.Ssmc.Machine.ops_applied b.Ssmc.Machine.ops_applied;
  chk "errors" a.Ssmc.Machine.op_errors b.Ssmc.Machine.op_errors;
  Alcotest.(check (float 0.0)) (label ^ ": busy")
    (Time.span_to_us a.Ssmc.Machine.busy)
    (Time.span_to_us b.Ssmc.Machine.busy);
  Alcotest.(check (float 0.0)) (label ^ ": energy") a.Ssmc.Machine.energy_j
    b.Ssmc.Machine.energy_j;
  let sa = Option.get a.Ssmc.Machine.manager_stats in
  let sb = Option.get b.Ssmc.Machine.manager_stats in
  chk "flushes" sa.Storage.Manager.blocks_flushed sb.Storage.Manager.blocks_flushed;
  chk "client writes" sa.Storage.Manager.client_writes sb.Storage.Manager.client_writes;
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%s: write p%.0f" label (100.0 *. q))
        (Stat.Histogram.quantile a.Ssmc.Machine.write_hist_us q)
        (Stat.Histogram.quantile b.Ssmc.Machine.write_hist_us q))
    [ 0.5; 0.9; 0.99 ]

let test_streaming_replay_equivalence () =
  (* The same workload replayed three ways — materialized list, that list
     as a Seq, and generated-on-the-fly — must give identical results and
     identical final file-system state. *)
  let machine () = Ssmc.Machine.create (Ssmc.Config.solid_state ~seed:25 ()) in
  let trace = gen 25 120.0 in
  let finish m result = (result, m) in
  let via_list =
    let m = machine () in
    Ssmc.Machine.preload m trace.Trace.Synth.initial_files;
    finish m (Ssmc.Machine.run m trace.Trace.Synth.records)
  in
  let via_seq_of_list =
    let m = machine () in
    Ssmc.Machine.preload m trace.Trace.Synth.initial_files;
    finish m (Ssmc.Machine.run_seq m (List.to_seq trace.Trace.Synth.records))
  in
  let via_stream =
    let m = machine () in
    let t =
      Trace.Synth.generate_seq small_profile ~rng:(Rng.create ~seed:25)
        ~duration:(Time.span_s 120.0)
    in
    Ssmc.Machine.preload m t.Trace.Synth.stream_initial_files;
    finish m (Ssmc.Machine.run_seq m t.Trace.Synth.seq)
  in
  let (r_list, m_list) = via_list in
  List.iter
    (fun (label, (r, m)) ->
      check_same_result label r_list r;
      let fs_of m = Option.get (Ssmc.Machine.memfs m) in
      (match Fs.Memfs.check (fs_of m) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: fsck: %s" label msg);
      Alcotest.(check int) (label ^ ": metadata bytes")
        (Fs.Memfs.metadata_bytes (fs_of m_list))
        (Fs.Memfs.metadata_bytes (fs_of m)))
    [ ("seq-of-list", via_seq_of_list); ("end-to-end stream", via_stream) ]

(* --- Compiled replay equals interpreted replay ------------------------------------ *)

let test_compiled_replay_equivalence () =
  (* The compiled fast path must be a pure speedup: same trace, same
     machine, byte-identical result — including across a mid-run cold
     restart, which kills the pre-resolved route out from under it. *)
  let trace = gen 26 120.0 in
  let compiled = Trace.Replay.Compiled.compile trace.Trace.Synth.records in
  let machine () =
    (* No backup battery: a depletion fault forces a cold restart. *)
    Ssmc.Machine.create (Ssmc.Config.solid_state ~backup_wh:0.0 ~seed:26 ())
  in
  let run ?faults driver =
    let m = machine () in
    Ssmc.Machine.preload m trace.Trace.Synth.initial_files;
    let r = driver ?faults m in
    (match Fs.Memfs.check (Option.get (Ssmc.Machine.memfs m)) with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "fsck: %s" msg);
    r
  in
  let interpreted ?faults m = Ssmc.Machine.run ?faults m trace.Trace.Synth.records in
  let fast ?faults m = Ssmc.Machine.run_compiled ?faults m compiled in
  let deep_check label (a : Ssmc.Machine.result) (b : Ssmc.Machine.result) =
    check_same_result label a b;
    let fcheck what va vb = Alcotest.(check (float 0.0)) (label ^ ": " ^ what) va vb in
    fcheck "elapsed" (Time.span_to_us a.Ssmc.Machine.elapsed)
      (Time.span_to_us b.Ssmc.Machine.elapsed);
    fcheck "read mean"
      (Stat.Summary.mean a.Ssmc.Machine.read_latency)
      (Stat.Summary.mean b.Ssmc.Machine.read_latency);
    fcheck "write mean"
      (Stat.Summary.mean a.Ssmc.Machine.write_latency)
      (Stat.Summary.mean b.Ssmc.Machine.write_latency);
    fcheck "meta mean"
      (Stat.Summary.mean a.Ssmc.Machine.meta_latency)
      (Stat.Summary.mean b.Ssmc.Machine.meta_latency)
  in
  deep_check "compiled" (run interpreted) (run fast);
  let faults = [ { Fault.after = Time.span_s 40.0; kind = Fault.Battery_depletion } ] in
  let af = run ~faults interpreted in
  let bf = run ~faults fast in
  Alcotest.(check bool) "cold restart happened" true
    (List.exists (fun o -> o.Ssmc.Machine.cold_restart) bf.Ssmc.Machine.fault_log);
  deep_check "compiled+cold-restart" af bf

(* --- memfs / ffs logical equivalence ---------------------------------------------- *)

let apply_all (type fs) (module F : Fs.Vfs.S with type t = fs) (fs : fs) ops =
  List.iter
    (fun op ->
      let ignore_result = function Ok _ | Error _ -> () in
      match op with
      | `Mkdir p -> ignore_result (F.mkdir fs p)
      | `Create p -> ignore_result (F.create fs p)
      | `Write (p, off, n) -> ignore_result (F.write fs p ~offset:off ~bytes:n)
      | `Truncate (p, n) -> ignore_result (F.truncate fs p ~size:n)
      | `Rename (a, b) -> ignore_result (F.rename fs a b)
      | `Unlink p -> ignore_result (F.unlink fs p))
    ops

let observe (type fs) (module F : Fs.Vfs.S with type t = fs) (fs : fs) paths =
  List.map
    (fun p ->
      ( p,
        F.exists fs p,
        (match F.file_size fs p with Ok n -> n | Error _ -> -1),
        match F.readdir fs p with Ok l -> l | Error _ -> [] ))
    paths

let test_fs_equivalence () =
  let engine_m = Engine.create () in
  let flash = Device.Flash.create (Device.Flash.config ~nbanks:2 ~size_bytes:(2 * Units.mib) ()) in
  let dram_m = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let manager = Storage.Manager.create Storage.Manager.default_config ~engine:engine_m ~flash ~dram:dram_m in
  let memfs = Fs.Memfs.create_fs ~manager () in
  let engine_f = Engine.create () in
  let disk = Device.Disk.create ~rng:(Rng.create ~seed:9) () in
  let dram_f = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let ffs = Fs.Ffs.create_fs ~engine:engine_f ~disk ~dram:dram_f () in
  let ops =
    [
      `Mkdir "/a";
      `Mkdir "/a/b";
      `Create "/a/b/one";
      `Write ("/a/b/one", 0, 5000);
      `Create "/two";
      `Write ("/two", 8192, 100);
      `Truncate ("/a/b/one", 1000);
      `Rename ("/a/b/one", "/a/renamed");
      `Rename ("/a", "/z");  (* moving a directory moves the subtree *)
      `Create "/z/b/back";
      `Unlink "/two";
      `Unlink "/nonexistent";  (* both must reject identically *)
      `Rename ("/z", "/z/b/cycle");  (* both must reject: into own subtree *)
    ]
  in
  apply_all (module Fs.Memfs) memfs ops;
  apply_all (module Fs.Ffs) ffs ops;
  let paths =
    [ "/"; "/a"; "/z"; "/z/b"; "/z/renamed"; "/z/b/back"; "/two"; "/a/b/one" ]
  in
  (match Fs.Memfs.check memfs with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "memfs fsck: %s" msg);
  (match Fs.Ffs.check ffs with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "ffs fsck: %s" msg);
  let om = observe (module Fs.Memfs) memfs paths in
  let off = observe (module Fs.Ffs) ffs paths in
  List.iter2
    (fun (p, e1, s1, d1) (_, e2, s2, d2) ->
      Alcotest.(check bool) (p ^ " existence agrees") e1 e2;
      Alcotest.(check int) (p ^ " size agrees") s1 s2;
      Alcotest.(check (list string)) (p ^ " listing agrees") d1 d2)
    om off

(* --- Rename semantics (per FS) --------------------------------------------------- *)

let test_rename_memfs () =
  let engine = Engine.create () in
  let flash = Device.Flash.create (Device.Flash.config ~size_bytes:(512 * 1024) ()) in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let manager = Storage.Manager.create Storage.Manager.default_config ~engine ~flash ~dram in
  let fs = Fs.Memfs.create_fs ~manager () in
  let ok = function Ok v -> v | Error e -> Alcotest.failf "%a" Fs.Fs_error.pp e in
  ignore (ok (Fs.Memfs.create fs "/f"));
  ignore (ok (Fs.Memfs.write fs "/f" ~offset:0 ~bytes:1234));
  ignore (ok (Fs.Memfs.rename fs "/f" "/g"));
  Alcotest.(check bool) "source gone" false (Fs.Memfs.exists fs "/f");
  Alcotest.(check int) "data follows" 1234 (ok (Fs.Memfs.file_size fs "/g"));
  Alcotest.(check bool) "dst exists rejected" true
    (match
       Fs.Memfs.create fs "/h" |> Result.get_ok |> ignore;
       Fs.Memfs.rename fs "/g" "/h"
     with
    | Error Fs.Fs_error.Eexist -> true
    | _ -> false);
  Alcotest.(check bool) "missing source" true
    (Fs.Memfs.rename fs "/nope" "/x" = Error Fs.Fs_error.Enoent)

let test_rename_ffs_costs_io () =
  let engine = Engine.create () in
  let disk = Device.Disk.create ~rng:(Rng.create ~seed:10) () in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let fs = Fs.Ffs.create_fs ~engine ~disk ~dram () in
  let ok = function Ok v -> v | Error e -> Alcotest.failf "%a" Fs.Fs_error.pp e in
  ignore (ok (Fs.Ffs.create fs "/f"));
  let span = ok (Fs.Ffs.rename fs "/f" "/g") in
  Alcotest.(check bool) "synchronous metadata writes" true (Time.span_to_ms span > 1.0);
  Alcotest.(check bool) "renamed" true (Fs.Ffs.exists fs "/g")

let suite =
  [
    Alcotest.test_case "whole-machine determinism" `Slow test_whole_machine_determinism;
    Alcotest.test_case "trace file roundtrip" `Quick test_trace_file_roundtrip_same_result;
    Alcotest.test_case "streaming replay equivalence" `Quick
      test_streaming_replay_equivalence;
    Alcotest.test_case "compiled replay equivalence" `Quick
      test_compiled_replay_equivalence;
    Alcotest.test_case "battery exhaustion mid-run" `Slow test_battery_exhaustion_mid_run;
    Alcotest.test_case "flash wear-out mid-run" `Slow test_flash_wearout_mid_run;
    Alcotest.test_case "memfs/ffs equivalence" `Quick test_fs_equivalence;
    Alcotest.test_case "rename (memfs)" `Quick test_rename_memfs;
    Alcotest.test_case "rename (ffs) costs io" `Quick test_rename_ffs_costs_io;
  ]
