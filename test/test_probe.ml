(* Sim.Probe: registry semantics, snapshot algebra, per-domain merging,
   Chrome-trace emission, and the Machine.preload "start clean" contract. *)
open Sim

(* Every test leaves the probes as it found them: disabled and clean. *)
let with_probes ?(timeline = false) f =
  Probe.set_metrics true;
  if timeline then Probe.set_timeline true;
  Probe.reset_all ();
  Fun.protect f ~finally:(fun () ->
      Probe.reset_all ();
      Probe.set_metrics false;
      Probe.set_timeline false)

let test_record_and_snapshot () =
  with_probes (fun () ->
      let c = Probe.counter "t.c" and g = Probe.gauge "t.g" in
      let s = Probe.summary "t.s" and h = Probe.histogram "t.h" in
      Probe.incr c;
      Probe.add c 4;
      Probe.set g 2.5;
      Probe.observe s 1.0;
      Probe.observe s 3.0;
      Probe.observe_hist h 10.0;
      let snap = Probe.snapshot () in
      let names = List.map fst snap in
      Alcotest.(check (list string)) "sorted by name" (List.sort compare names) names;
      Alcotest.(check int) "counter" 5 (Probe.Snapshot.counter_value snap "t.c");
      (match Probe.Snapshot.find snap "t.g" with
      | Some (Probe.Snapshot.Gauge v) -> Alcotest.(check (float 0.0)) "gauge" 2.5 v
      | _ -> Alcotest.fail "gauge missing");
      (match Probe.Snapshot.find snap "t.s" with
      | Some (Probe.Snapshot.Summary { n; sum; vmin; vmax }) ->
        Alcotest.(check int) "summary n" 2 n;
        Alcotest.(check (float 1e-9)) "summary sum" 4.0 sum;
        Alcotest.(check (float 1e-9)) "summary min" 1.0 vmin;
        Alcotest.(check (float 1e-9)) "summary max" 3.0 vmax
      | _ -> Alcotest.fail "summary missing");
      match Probe.Snapshot.find snap "t.h" with
      | Some (Probe.Snapshot.Histogram buckets) ->
        Alcotest.(check int) "histogram count" 1
          (List.fold_left (fun a (_, _, n) -> a + n) 0 buckets)
      | _ -> Alcotest.fail "histogram missing")

let test_disabled_is_noop () =
  Probe.set_metrics false;
  Probe.reset_all ();
  Probe.incr (Probe.counter "t.off");
  Probe.observe (Probe.summary "t.off_s") 1.0;
  let snap = Probe.snapshot () in
  Alcotest.(check bool) "nothing recorded" true
    (List.for_all (fun (_, v) -> Probe.Snapshot.is_zero v) snap);
  Alcotest.(check int) "counter absent" 0 (Probe.Snapshot.counter_value snap "t.off")

let test_kind_clash () =
  with_probes (fun () ->
      Probe.incr (Probe.counter "t.clash");
      match Probe.set (Probe.gauge "t.clash") 1.0 with
      | () -> Alcotest.fail "expected Invalid_argument on kind clash"
      | exception Invalid_argument _ -> ())

(* --- Snapshot algebra (counter-only snapshots built directly) ---------------- *)

let alphabet = [ "m.a"; "m.b"; "m.c"; "m.d"; "m.e" ]

let snap_gen =
  QCheck.Gen.(
    list_size (int_range 0 6)
      (pair (oneofl alphabet) (int_range 0 100))
    >|= fun kvs ->
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (k, v) ->
        Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      kvs;
    List.sort compare
      (Hashtbl.fold
         (fun k v acc -> (k, Probe.Snapshot.Counter v) :: acc)
         tbl []))

let pp_snap snap =
  String.concat ";"
    (List.map
       (fun (k, v) ->
         match v with
         | Probe.Snapshot.Counter c -> Printf.sprintf "%s=%d" k c
         | _ -> k)
       snap)

let snap_arb = QCheck.make ~print:pp_snap snap_gen
let cv = Probe.Snapshot.counter_value

let prop_diff_self_is_zero =
  QCheck.Test.make ~name:"probe: diff s s is all-zero" ~count:200 snap_arb
    (fun s ->
      List.for_all
        (fun (_, v) -> Probe.Snapshot.is_zero v)
        (Probe.Snapshot.diff ~later:s ~earlier:s))

let prop_merge_empty_identity =
  QCheck.Test.make ~name:"probe: merge s empty = s" ~count:200 snap_arb
    (fun s ->
      Probe.Snapshot.merge s Probe.Snapshot.empty = s
      && Probe.Snapshot.merge Probe.Snapshot.empty s = s)

let prop_merge_adds_and_commutes =
  QCheck.Test.make ~name:"probe: merge adds counters, commutatively" ~count:200
    (QCheck.pair snap_arb snap_arb)
    (fun (a, b) ->
      let m = Probe.Snapshot.merge a b in
      m = Probe.Snapshot.merge b a
      && List.for_all (fun k -> cv m k = cv a k + cv b k) alphabet)

let prop_diff_recovers_merge =
  QCheck.Test.make ~name:"probe: diff (merge a b) b recovers a" ~count:200
    (QCheck.pair snap_arb snap_arb)
    (fun (a, b) ->
      let d = Probe.Snapshot.diff ~later:(Probe.Snapshot.merge a b) ~earlier:b in
      List.for_all (fun k -> cv d k = cv a k) alphabet)

(* --- Pool-domain merging ----------------------------------------------------- *)

(* Each work item resets its domain, records, and snapshots: the merged
   total must be identical at any job count (items run sequentially within
   a domain, merge happens in submission order on the caller). *)
let pool_work i =
  Probe.reset ();
  let c = Probe.counter "t.pool.c" and s = Probe.summary "t.pool.s" in
  for _ = 0 to i do
    Probe.incr c
  done;
  Probe.observe s (float_of_int i);
  Probe.snapshot ()

let test_pool_merge_order_independent () =
  with_probes (fun () ->
      let items = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
      let merged jobs =
        Pool.run_map ~jobs pool_work items
        |> List.fold_left Probe.Snapshot.merge Probe.Snapshot.empty
      in
      let seq = merged 1 in
      let par = merged 2 in
      Alcotest.(check bool) "jobs 1 = jobs 2" true (seq = par);
      Alcotest.(check int) "total increments" 36 (cv seq "t.pool.c");
      match Probe.Snapshot.find seq "t.pool.s" with
      | Some (Probe.Snapshot.Summary { n; sum; _ }) ->
        Alcotest.(check int) "pooled n" 8 n;
        Alcotest.(check (float 1e-9)) "pooled sum" 28.0 sum
      | _ -> Alcotest.fail "pooled summary missing")

(* --- Timeline ---------------------------------------------------------------- *)

let test_timeline_chrome_json () =
  with_probes ~timeline:true (fun () ->
      (* Recorded out of timestamp order on purpose. *)
      Probe.span ~name:"b" ~cat:"test" ~start:(Time.of_ns 2_000)
        ~finish:(Time.of_ns 3_000) ();
      Probe.span ~name:"a" ~cat:"test"
        ~args:[ ("k", "v") ]
        ~start:(Time.of_ns 0) ~finish:(Time.of_ns 1_000) ();
      Probe.instant ~name:"i" ~cat:"test" ~at:(Time.of_ns 500) ();
      let evs = Probe.Timeline.events () in
      Alcotest.(check int) "three events" 3 (List.length evs);
      let ts = List.map (fun e -> e.Probe.Timeline.ev_ts_ns) evs in
      Alcotest.(check bool) "timestamps monotone" true (List.sort compare ts = ts);
      (match Json.of_string (Json.to_string (Probe.Timeline.to_chrome_json evs)) with
      | Error e -> Alcotest.failf "trace JSON unparseable: %s" e
      | Ok (Json.Obj fields) -> (
        match List.assoc_opt "traceEvents" fields with
        | Some (Json.List l) -> Alcotest.(check int) "traceEvents" 3 (List.length l)
        | _ -> Alcotest.fail "no traceEvents list")
      | Ok _ -> Alcotest.fail "trace JSON is not an object");
      match
        Probe.span ~name:"bad" ~cat:"test" ~start:(Time.of_ns 10)
          ~finish:(Time.of_ns 5) ()
      with
      | () -> Alcotest.fail "expected Invalid_argument on negative span"
      | exception Invalid_argument _ -> ())

let prop_timeline_roundtrip =
  QCheck.Test.make ~name:"probe: timeline JSON parses, timestamps monotone"
    ~count:50
    QCheck.(
      list_of_size (Gen.int_range 0 40) (pair (int_bound 1_000_000) (int_bound 10_000)))
    (fun spans ->
      Probe.set_timeline true;
      Probe.reset ();
      Fun.protect
        ~finally:(fun () ->
          Probe.reset ();
          Probe.set_timeline false)
        (fun () ->
          List.iter
            (fun (start, dur) ->
              Probe.span ~name:"s" ~cat:"q" ~start:(Time.of_ns start)
                ~finish:(Time.of_ns (start + dur)) ())
            spans;
          let evs = Probe.Timeline.events () in
          let ts = List.map (fun e -> e.Probe.Timeline.ev_ts_ns) evs in
          List.length evs = List.length spans
          && List.sort compare ts = ts
          &&
          match Json.of_string (Json.to_string (Probe.Timeline.to_chrome_json evs)) with
          | Ok _ -> true
          | Error _ -> false))

(* --- Machine.preload "start clean" contract ---------------------------------- *)

let dirty_then_preload cfg =
  let machine = Ssmc.Machine.create cfg in
  let apply op = ignore (Ssmc.Machine.apply machine { Trace.Record.at = Time.zero; op }) in
  apply (Trace.Record.Create { file = 9001 });
  apply (Trace.Record.Write { file = 9001; offset = 0; bytes = 65536 });
  apply (Trace.Record.Read { file = 9001; offset = 0; bytes = 4096 });
  (* A read of a missing file: the op-error counter must clear too. *)
  apply (Trace.Record.Read { file = 9999; offset = 0; bytes = 512 });
  apply (Trace.Record.Delete { file = 9001 });
  Ssmc.Machine.preload machine [ (1, 16384); (2, 8192) ];
  let snap = Probe.snapshot () in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s zero after preload" name)
        true
        (Probe.Snapshot.is_zero v))
    snap;
  match Ssmc.Machine.ffs machine with
  | None -> ()
  | Some f ->
    let cache = Fs.Ffs.cache f in
    Alcotest.(check int) "cache hits zero" 0 (Fs.Buffer_cache.hits cache);
    Alcotest.(check int) "cache misses zero" 0 (Fs.Buffer_cache.misses cache);
    Alcotest.(check int) "cache writebacks zero" 0 (Fs.Buffer_cache.writebacks cache)

let test_preload_starts_clean () =
  with_probes (fun () ->
      dirty_then_preload (Ssmc.Config.solid_state ~seed:5 ());
      dirty_then_preload (Ssmc.Config.conventional ~seed:5 ()))

let suite =
  [
    Alcotest.test_case "record and snapshot" `Quick test_record_and_snapshot;
    Alcotest.test_case "disabled is no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "kind clash rejected" `Quick test_kind_clash;
    QCheck_alcotest.to_alcotest prop_diff_self_is_zero;
    QCheck_alcotest.to_alcotest prop_merge_empty_identity;
    QCheck_alcotest.to_alcotest prop_merge_adds_and_commutes;
    QCheck_alcotest.to_alcotest prop_diff_recovers_merge;
    Alcotest.test_case "pool merge order-independent" `Quick
      test_pool_merge_order_independent;
    Alcotest.test_case "timeline chrome JSON" `Quick test_timeline_chrome_json;
    QCheck_alcotest.to_alcotest prop_timeline_roundtrip;
    Alcotest.test_case "preload starts clean" `Quick test_preload_starts_clean;
  ]
