open Sim

let err = Alcotest.testable Fs.Fs_error.pp Fs.Fs_error.equal
let span_ok = Alcotest.testable Time.pp_span (fun _ _ -> true)
let res = Alcotest.result span_ok err

let make ?(flash_kib = 512) () =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create (Device.Flash.config ~nbanks:2 ~size_bytes:(flash_kib * 1024) ())
  in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let manager =
    Storage.Manager.create
      { Storage.Manager.default_config with Storage.Manager.segment_sectors = 8 }
      ~engine ~flash ~dram
  in
  (engine, Fs.Memfs.create_fs ~manager ())

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %a" Fs.Fs_error.pp e

let test_create_and_namespace () =
  let _e, fs = make () in
  ignore (ok (Fs.Memfs.mkdir fs "/dir"));
  ignore (ok (Fs.Memfs.create fs "/dir/file"));
  Alcotest.(check bool) "exists" true (Fs.Memfs.exists fs "/dir/file");
  Alcotest.(check bool) "root exists" true (Fs.Memfs.exists fs "/");
  Alcotest.(check int) "empty file" 0 (ok (Fs.Memfs.file_size fs "/dir/file"));
  Alcotest.(check (list string)) "readdir" [ "file" ] (ok (Fs.Memfs.readdir fs "/dir"));
  Alcotest.check res "duplicate create" (Error Fs.Fs_error.Eexist)
    (Fs.Memfs.create fs "/dir/file");
  Alcotest.check res "missing parent" (Error Fs.Fs_error.Enoent)
    (Fs.Memfs.create fs "/nope/file");
  Alcotest.check res "file as dir" (Error Fs.Fs_error.Enotdir)
    (Fs.Memfs.create fs "/dir/file/sub");
  Alcotest.check res "bad path" (Error Fs.Fs_error.Einval) (Fs.Memfs.create fs "rel")

let test_write_read_sizes () =
  let _e, fs = make () in
  ignore (ok (Fs.Memfs.create fs "/f"));
  ignore (ok (Fs.Memfs.write fs "/f" ~offset:0 ~bytes:1000));
  Alcotest.(check int) "size" 1000 (ok (Fs.Memfs.file_size fs "/f"));
  ignore (ok (Fs.Memfs.write fs "/f" ~offset:2000 ~bytes:100));
  Alcotest.(check int) "sparse extend" 2100 (ok (Fs.Memfs.file_size fs "/f"));
  ignore (ok (Fs.Memfs.read fs "/f" ~offset:0 ~bytes:2100));
  (* Reading past EOF reads nothing and is not an error. *)
  ignore (ok (Fs.Memfs.read fs "/f" ~offset:5000 ~bytes:100));
  Alcotest.check res "negative offset" (Error Fs.Fs_error.Einval)
    (Fs.Memfs.read fs "/f" ~offset:(-1) ~bytes:10);
  Alcotest.check res "read of dir" (Error Fs.Fs_error.Eisdir)
    (Fs.Memfs.read fs "/" ~offset:0 ~bytes:1)

let test_metadata_ops_are_dram_fast () =
  let _e, fs = make () in
  ignore (ok (Fs.Memfs.mkdir fs "/d"));
  let span = ok (Fs.Memfs.create fs "/d/f") in
  (* Memory-resident metadata: microseconds, not milliseconds. *)
  Alcotest.(check bool) "create ~us" true (Time.span_to_us span < 50.0);
  let wspan = ok (Fs.Memfs.write fs "/d/f" ~offset:0 ~bytes:4096) in
  Alcotest.(check bool) "buffered write ~us" true (Time.span_to_us wspan < 200.0)

let test_truncate_frees_blocks () =
  let _e, fs = make () in
  ignore (ok (Fs.Memfs.create fs "/f"));
  ignore (ok (Fs.Memfs.write fs "/f" ~offset:0 ~bytes:4096));
  let manager = Fs.Memfs.manager fs in
  let before = (Storage.Manager.stats manager).Storage.Manager.dirty_blocks in
  Alcotest.(check int) "eight blocks dirty" 8 before;
  ignore (ok (Fs.Memfs.truncate fs "/f" ~size:1024));
  let after = (Storage.Manager.stats manager).Storage.Manager.dirty_blocks in
  Alcotest.(check int) "six freed" 2 after;
  Alcotest.(check int) "size" 1024 (ok (Fs.Memfs.file_size fs "/f"));
  Alcotest.(check int) "two blocks remain" 2
    (List.length (ok (Fs.Memfs.file_blocks fs "/f")))

let test_unlink_and_rmdir () =
  let _e, fs = make () in
  ignore (ok (Fs.Memfs.mkdir fs "/d"));
  ignore (ok (Fs.Memfs.create fs "/d/f"));
  ignore (ok (Fs.Memfs.write fs "/d/f" ~offset:0 ~bytes:512));
  Alcotest.check res "rmdir non-empty" (Error Fs.Fs_error.Enotempty)
    (Fs.Memfs.rmdir fs "/d");
  ignore (ok (Fs.Memfs.unlink fs "/d/f"));
  Alcotest.(check bool) "gone" false (Fs.Memfs.exists fs "/d/f");
  Alcotest.check res "double unlink" (Error Fs.Fs_error.Enoent) (Fs.Memfs.unlink fs "/d/f");
  Alcotest.check res "unlink dir" (Error Fs.Fs_error.Eisdir) (Fs.Memfs.unlink fs "/d");
  ignore (ok (Fs.Memfs.rmdir fs "/d"));
  Alcotest.(check bool) "dir gone" false (Fs.Memfs.exists fs "/d")

let test_no_indirect_blocks_flat_map () =
  (* A "large" file costs the same per-block metadata as a small one: the
     block map is flat.  Read latency of block 1000 equals block 0. *)
  let _e, fs = make ~flash_kib:2048 () in
  ignore (ok (Fs.Memfs.create fs "/big"));
  ignore (ok (Fs.Memfs.write fs "/big" ~offset:0 ~bytes:512));
  ignore (ok (Fs.Memfs.write fs "/big" ~offset:(900 * 512) ~bytes:512));
  let near = ok (Fs.Memfs.read fs "/big" ~offset:0 ~bytes:512) in
  let far = ok (Fs.Memfs.read fs "/big" ~offset:(900 * 512) ~bytes:512) in
  Alcotest.(check int) "identical cost near/far" (Time.span_to_ns near)
    (Time.span_to_ns far)

let test_preload_goes_cold () =
  let _e, fs = make () in
  ignore (ok (Fs.Memfs.mkdir fs "/data"));
  (match Fs.Memfs.preload fs "/data/app" ~size:8192 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "preload: %a" Fs.Fs_error.pp e);
  Alcotest.(check int) "size" 8192 (ok (Fs.Memfs.file_size fs "/data/app"));
  let manager = Fs.Memfs.manager fs in
  let stats = Storage.Manager.stats manager in
  Alcotest.(check int) "16 cold loads" 16 stats.Storage.Manager.cold_loads;
  Alcotest.(check int) "nothing dirty" 0 stats.Storage.Manager.dirty_blocks;
  (* Preloaded data reads straight from flash. *)
  let span = ok (Fs.Memfs.read fs "/data/app" ~offset:0 ~bytes:512) in
  Alcotest.(check bool) "flash-speed read" true (Time.span_to_us span > 10.0)

let test_metadata_bytes_grow () =
  let _e, fs = make () in
  let empty = Fs.Memfs.metadata_bytes fs in
  ignore (ok (Fs.Memfs.mkdir fs "/d"));
  for i = 0 to 9 do
    ignore (ok (Fs.Memfs.create fs (Printf.sprintf "/d/f%d" i)))
  done;
  Alcotest.(check bool) "metadata grew" true (Fs.Memfs.metadata_bytes fs > empty)

let test_sync_flushes () =
  let _e, fs = make () in
  ignore (ok (Fs.Memfs.create fs "/f"));
  ignore (ok (Fs.Memfs.write fs "/f" ~offset:0 ~bytes:2048));
  ignore (Fs.Memfs.sync fs);
  let stats = Storage.Manager.stats (Fs.Memfs.manager fs) in
  Alcotest.(check int) "buffer drained" 0 stats.Storage.Manager.dirty_blocks;
  Alcotest.(check int) "flushed" 4 stats.Storage.Manager.blocks_flushed

let test_enumerate_and_adopt () =
  let _e, fs = make () in
  ignore (ok (Fs.Memfs.mkdir fs "/d"));
  ignore (ok (Fs.Memfs.create fs "/d/a"));
  ignore (ok (Fs.Memfs.write fs "/d/a" ~offset:0 ~bytes:1024));
  ignore (ok (Fs.Memfs.create fs "/b"));
  ignore (ok (Fs.Memfs.write fs "/b" ~offset:0 ~bytes:512));
  let entries = Fs.Memfs.enumerate fs in
  Alcotest.(check (list string)) "paths sorted" [ "/b"; "/d/a" ]
    (List.map (fun (p, _, _) -> p) entries);
  let _, size_a, blocks_a = List.nth entries 1 in
  Alcotest.(check int) "size" 1024 size_a;
  Alcotest.(check int) "two blocks" 2 (List.length blocks_a);
  (* Adopt those blocks under a new name in a second namespace over the
     same manager (what card insertion does). *)
  let fs2 = Fs.Memfs.create_fs ~manager:(Fs.Memfs.manager fs) () in
  (match Fs.Memfs.adopt fs2 "/resurrected" ~size:1024 ~blocks:blocks_a with
  | Ok () -> ()
  | Error e -> Alcotest.failf "adopt: %a" Fs.Fs_error.pp e);
  Alcotest.(check int) "adopted size" 1024 (ok (Fs.Memfs.file_size fs2 "/resurrected"));
  Alcotest.check_raises "unknown block rejected"
    (Invalid_argument "Memfs.adopt: unknown block") (fun () ->
      ignore (Fs.Memfs.adopt fs2 "/bogus" ~size:512 ~blocks:[ 999_999 ]))

(* Random operation sequences keep the FS and the storage manager consistent. *)
let prop_random_ops_consistent =
  QCheck.Test.make ~name:"memfs: random ops keep sizes consistent" ~count:50
    QCheck.(list_of_size (Gen.int_range 5 60) (pair (int_bound 4) (int_bound 3)))
    (fun ops ->
      let _e, fs = make () in
      let shadow = Hashtbl.create 8 in
      List.iter
        (fun (file, action) ->
          let path = Printf.sprintf "/f%d" file in
          match action with
          | 0 -> begin
            match Fs.Memfs.create fs path with
            | Ok _ -> Hashtbl.replace shadow path 0
            | Error Fs.Fs_error.Eexist -> ()
            | Error e -> Alcotest.failf "create: %a" Fs.Fs_error.pp e
          end
          | 1 ->
            if Hashtbl.mem shadow path then begin
              ignore (Fs.Memfs.write fs path ~offset:0 ~bytes:700 |> Result.get_ok);
              Hashtbl.replace shadow path (max 700 (Hashtbl.find shadow path))
            end
          | 2 ->
            if Hashtbl.mem shadow path then begin
              ignore (Fs.Memfs.unlink fs path |> Result.get_ok);
              Hashtbl.remove shadow path
            end
          | _ ->
            if Hashtbl.mem shadow path then
              ignore (Fs.Memfs.read fs path ~offset:0 ~bytes:512 |> Result.get_ok))
        ops;
      (match Fs.Memfs.check fs with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "fsck: %s" msg);
      ignore (Fs.Memfs.sync fs);
      (match Fs.Memfs.check fs with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "fsck after sync: %s" msg);
      Hashtbl.fold
        (fun path size acc ->
          acc && Fs.Memfs.exists fs path && Fs.Memfs.file_size fs path = Ok size)
        shadow true)

(* --- Blockmap (white-box) ---------------------------------------------------------- *)

let test_blockmap_edges () =
  let open Fs.Memfs.Blockmap in
  let m = create () in
  Alcotest.(check int) "empty length" 0 (length m);
  Alcotest.(check int) "find on empty" no_block (find m 0);
  Alcotest.(check (option int)) "get on empty" None (get m 5);
  set m 3 42;
  Alcotest.(check int) "length grows past holes" 4 (length m);
  Alcotest.(check int) "intermediate slot is a hole" no_block (find m 1);
  Alcotest.(check (option int)) "get boxes the handle" (Some 42) (get m 3);
  Alcotest.(check int) "beyond length" no_block (find m 100);
  Alcotest.check_raises "negative handle rejected"
    (Invalid_argument "Blockmap.set: negative block") (fun () -> set m 0 (-2));
  Alcotest.(check (list int)) "crop beyond length drops nothing" [] (crop m 10);
  Alcotest.(check int) "crop beyond length keeps length" 4 (length m);
  Alcotest.(check (list int)) "negative crop drops all live" [ 42 ] (crop m (-3));
  Alcotest.(check int) "negative crop empties" 0 (length m)

(* Random set/crop interleavings agree with a hashtable model, slot for
   slot, including the dropped-handle lists crop reports. *)
let prop_blockmap_model =
  QCheck.Test.make ~name:"memfs: blockmap matches its model" ~count:300
    QCheck.(
      list_of_size (Gen.int_range 1 40) (triple (int_bound 1) (int_bound 40) (int_bound 500)))
    (fun ops ->
      let m = Fs.Memfs.Blockmap.create () in
      let model = Hashtbl.create 16 in
      let model_len = ref 0 in
      let ok = ref true in
      List.iter
        (fun (kind, i, v) ->
          if kind = 0 then begin
            Fs.Memfs.Blockmap.set m i v;
            Hashtbl.replace model i v;
            model_len := max !model_len (i + 1)
          end
          else begin
            let n = i - 2 (* exercise negative crops too *) in
            let dropped = Fs.Memfs.Blockmap.crop m n in
            let floor = max n 0 in
            let expect =
              List.init (max 0 (!model_len - floor)) (fun k -> floor + k)
              |> List.filter_map (fun j ->
                     Option.map (fun v -> (j, v)) (Hashtbl.find_opt model j))
            in
            List.iter (fun (j, _) -> Hashtbl.remove model j) expect;
            model_len := min !model_len floor;
            if dropped <> List.map snd expect then ok := false
          end)
        ops;
      ok := !ok && Fs.Memfs.Blockmap.length m = !model_len;
      for j = 0 to !model_len + 4 do
        let expect =
          if j < !model_len then
            Option.value (Hashtbl.find_opt model j) ~default:Fs.Memfs.Blockmap.no_block
          else Fs.Memfs.Blockmap.no_block
        in
        if Fs.Memfs.Blockmap.find m j <> expect then ok := false
      done;
      let live = ref [] in
      Fs.Memfs.Blockmap.iter_live (fun b -> live := b :: !live) m;
      let expect_live =
        List.init !model_len Fun.id |> List.filter_map (Hashtbl.find_opt model)
      in
      !ok && List.rev !live = expect_live)

let suite =
  [
    Alcotest.test_case "namespace" `Quick test_create_and_namespace;
    Alcotest.test_case "write/read sizes" `Quick test_write_read_sizes;
    Alcotest.test_case "metadata DRAM-fast" `Quick test_metadata_ops_are_dram_fast;
    Alcotest.test_case "truncate frees" `Quick test_truncate_frees_blocks;
    Alcotest.test_case "unlink & rmdir" `Quick test_unlink_and_rmdir;
    Alcotest.test_case "flat block map" `Quick test_no_indirect_blocks_flat_map;
    Alcotest.test_case "preload cold" `Quick test_preload_goes_cold;
    Alcotest.test_case "metadata accounting" `Quick test_metadata_bytes_grow;
    Alcotest.test_case "sync flushes" `Quick test_sync_flushes;
    Alcotest.test_case "enumerate & adopt" `Quick test_enumerate_and_adopt;
    Alcotest.test_case "blockmap edges" `Quick test_blockmap_edges;
    QCheck_alcotest.to_alcotest prop_blockmap_model;
    QCheck_alcotest.to_alcotest prop_random_ops_consistent;
  ]
