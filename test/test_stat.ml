open Sim

let test_counter () =
  let c = Stat.Counter.create () in
  Alcotest.(check int) "initial" 0 (Stat.Counter.value c);
  Stat.Counter.incr c;
  Stat.Counter.add c 5;
  Alcotest.(check int) "accumulated" 6 (Stat.Counter.value c);
  Stat.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Stat.Counter.value c)

let test_summary_empty () =
  let s = Stat.Summary.create () in
  Alcotest.(check int) "count" 0 (Stat.Summary.count s);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Stat.Summary.mean s);
  Alcotest.(check (float 0.0)) "variance" 0.0 (Stat.Summary.variance s);
  Alcotest.(check (option (float 0.0))) "min" None (Stat.Summary.min s);
  Alcotest.(check (option (float 0.0))) "max" None (Stat.Summary.max s)

let test_summary_known_values () =
  let s = Stat.Summary.create () in
  List.iter (Stat.Summary.observe s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stat.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stat.Summary.mean s);
  (* Sample variance of this classic data set is 32/7. *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Stat.Summary.variance s);
  Alcotest.(check (option (float 1e-9))) "min" (Some 2.0) (Stat.Summary.min s);
  Alcotest.(check (option (float 1e-9))) "max" (Some 9.0) (Stat.Summary.max s);
  Alcotest.(check (float 1e-9)) "total" 40.0 (Stat.Summary.total s)

let test_summary_single () =
  let s = Stat.Summary.create () in
  Stat.Summary.observe s 3.0;
  Alcotest.(check (float 0.0)) "variance of single" 0.0 (Stat.Summary.variance s)

let test_histogram_empty () =
  let h = Stat.Histogram.create () in
  Alcotest.(check int) "count" 0 (Stat.Histogram.count h);
  Alcotest.(check (float 0.0)) "quantile of empty" 0.0 (Stat.Histogram.quantile h 0.5);
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Stat.Histogram.mean h)

let test_histogram_buckets () =
  let h = Stat.Histogram.create () in
  List.iter (Stat.Histogram.observe h) [ 0.5; 1.5; 3.0; 3.9; 100.0 ];
  Alcotest.(check int) "count" 5 (Stat.Histogram.count h);
  let buckets = Stat.Histogram.buckets h in
  Alcotest.(check bool) "ascending, non-empty" true (List.length buckets >= 3);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 buckets in
  Alcotest.(check int) "mass conserved" 5 total;
  List.iter
    (fun (lo, hi, _) -> Alcotest.(check bool) "lo < hi" true (lo < hi))
    buckets

let test_histogram_quantiles () =
  let h = Stat.Histogram.create () in
  for _ = 1 to 90 do
    Stat.Histogram.observe h 10.0
  done;
  for _ = 1 to 10 do
    Stat.Histogram.observe h 10_000.0
  done;
  let p50 = Stat.Histogram.quantile h 0.5 in
  let p99 = Stat.Histogram.quantile h 0.99 in
  Alcotest.(check bool) "p50 near 10 (bucket-approximate)" true (p50 >= 8.0 && p50 <= 16.0);
  Alcotest.(check bool) "p99 near 10000" true (p99 >= 8192.0 && p99 <= 16384.0);
  Alcotest.check_raises "bad quantile" (Invalid_argument "Histogram.quantile")
    (fun () -> ignore (Stat.Histogram.quantile h 1.5))

let test_histogram_negative_clamped () =
  let h = Stat.Histogram.create () in
  Stat.Histogram.observe h (-5.0);
  Alcotest.(check int) "counted" 1 (Stat.Histogram.count h);
  Alcotest.(check (float 0.0)) "mean clamped" 0.0 (Stat.Histogram.mean h)

let test_histogram_merge () =
  let a = Stat.Histogram.create () and b = Stat.Histogram.create () in
  List.iter (Stat.Histogram.observe a) [ 1.0; 2.0 ];
  List.iter (Stat.Histogram.observe b) [ 4.0; 8.0 ];
  let m = Stat.Histogram.merge a b in
  Alcotest.(check int) "merged count" 4 (Stat.Histogram.count m);
  Alcotest.(check (float 1e-9)) "merged mean" 3.75 (Stat.Histogram.mean m);
  (* Merge does not mutate the inputs. *)
  Alcotest.(check int) "a unchanged" 2 (Stat.Histogram.count a)

let prop_welford_matches_naive =
  QCheck.Test.make ~name:"summary: Welford matches naive mean/variance" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-1000.0) 1000.0))
    (fun values ->
      let s = Stat.Summary.create () in
      List.iter (Stat.Summary.observe s) values;
      let n = float_of_int (List.length values) in
      let mean = List.fold_left ( +. ) 0.0 values /. n in
      let var =
        List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 values /. (n -. 1.0)
      in
      Float.abs (Stat.Summary.mean s -. mean) < 1e-6 *. (1.0 +. Float.abs mean)
      && Float.abs (Stat.Summary.variance s -. var) < 1e-6 *. (1.0 +. var))

let prop_histogram_mass =
  QCheck.Test.make ~name:"histogram: bucket mass equals count" ~count:200
    QCheck.(list (float_range 0.0 1e9))
    (fun values ->
      let h = Stat.Histogram.create () in
      List.iter (Stat.Histogram.observe h) values;
      let mass =
        List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Stat.Histogram.buckets h)
      in
      mass = List.length values)

let prop_quantile_boundaries =
  (* Boundary contract: q=0 and q=1 always answer (0 when empty), and with a
     single observation every quantile lands in that observation's bucket. *)
  QCheck.Test.make ~name:"histogram: quantile boundaries" ~count:200
    QCheck.(pair (float_range 0.0 1e9) (float_range 0.0 1.0))
    (fun (x, q) ->
      let empty = Stat.Histogram.create () in
      let at_bounds_empty =
        Stat.Histogram.quantile empty 0.0 = 0.0
        && Stat.Histogram.quantile empty 1.0 = 0.0
        && Stat.Histogram.quantile empty q = 0.0
      in
      let h = Stat.Histogram.create () in
      Stat.Histogram.observe h x;
      (* Bucket i>0 spans [2^(i-1), 2^i); its geometric midpoint stays within
         a factor of sqrt 2 of any member, and bucket 0 answers 0.5. *)
      let within v =
        if x < 1.0 then v = 0.5
        else v >= x /. 2.0 && v <= x *. 2.0
      in
      at_bounds_empty
      && within (Stat.Histogram.quantile h 0.0)
      && within (Stat.Histogram.quantile h q)
      && within (Stat.Histogram.quantile h 1.0))

let prop_quantile_monotone =
  QCheck.Test.make ~name:"histogram: quantiles are monotone" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 100) (float_range 0.0 1e6))
    (fun values ->
      let h = Stat.Histogram.create () in
      List.iter (Stat.Histogram.observe h) values;
      Stat.Histogram.quantile h 0.25 <= Stat.Histogram.quantile h 0.75)

(* --- streaming quantile sketch --- *)

(* Exact nearest-rank quantile over a materialized sample: the reference
   the sketch is compared against. *)
let exact_quantile values q =
  let a = Array.of_list values in
  Array.sort Float.compare a;
  let n = Array.length a in
  a.(int_of_float (Float.round (q *. float_of_int (n - 1))))

let test_quantiles_empty_and_errors () =
  let s = Stat.Quantiles.create () in
  Alcotest.(check int) "count" 0 (Stat.Quantiles.count s);
  Alcotest.(check (float 0.0)) "quantile of empty" 0.0 (Stat.Quantiles.quantile s 0.5);
  Alcotest.check_raises "bad quantile" (Invalid_argument "Quantiles.quantile")
    (fun () -> ignore (Stat.Quantiles.quantile s 1.5));
  Alcotest.check_raises "bad k" (Invalid_argument "Quantiles.create: k < 2")
    (fun () -> ignore (Stat.Quantiles.create ~k:1 ()))

let test_quantiles_exact_when_small () =
  (* With n <= k nothing is ever compacted, so the sketch IS the sample
     and every quantile equals the exact nearest-rank answer. *)
  let s = Stat.Quantiles.create ~k:64 () in
  let values = List.init 50 (fun i -> float_of_int ((i * 37) mod 50)) in
  List.iter (Stat.Quantiles.observe s) values;
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "exact at q=%.2f" q)
        (exact_quantile values q) (Stat.Quantiles.quantile s q))
    [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ]

let test_quantiles_merge_exact_when_small () =
  let a = Stat.Quantiles.create ~k:64 () in
  let b = Stat.Quantiles.create ~k:64 () in
  let va = List.init 20 (fun i -> float_of_int (i * 3)) in
  let vb = List.init 20 (fun i -> 1000.0 -. float_of_int (i * 7)) in
  List.iter (Stat.Quantiles.observe a) va;
  List.iter (Stat.Quantiles.observe b) vb;
  let m = Stat.Quantiles.merge a b in
  Alcotest.(check int) "merged count" 40 (Stat.Quantiles.count m);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "merge exact at q=%.2f" q)
        (exact_quantile (va @ vb) q)
        (Stat.Quantiles.quantile m q))
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
  Alcotest.check_raises "mismatched k"
    (Invalid_argument "Quantiles.merge: sketches of different k") (fun () ->
      ignore (Stat.Quantiles.merge a (Stat.Quantiles.create ~k:32 ())))

let test_quantiles_space_bound () =
  (* O(k log (n/k)) space: a million observations through a k=256 sketch
     must keep only a few thousand values. *)
  let s = Stat.Quantiles.create () in
  let rng = Sim.Rng.create ~seed:99 in
  for _ = 1 to 1_000_000 do
    Stat.Quantiles.observe s (Sim.Rng.float rng 1e6)
  done;
  Alcotest.(check int) "count" 1_000_000 (Stat.Quantiles.count s);
  Alcotest.(check bool)
    (Printf.sprintf "space %d <= 4096" (Stat.Quantiles.space s))
    true
    (Stat.Quantiles.space s <= 4096)

let test_quantiles_reset () =
  let s = Stat.Quantiles.create ~k:8 () in
  for i = 1 to 100 do
    Stat.Quantiles.observe s (float_of_int i)
  done;
  Stat.Quantiles.reset s;
  Alcotest.(check int) "count after reset" 0 (Stat.Quantiles.count s);
  Alcotest.(check int) "space after reset" 0 (Stat.Quantiles.space s);
  Stat.Quantiles.observe s 5.0;
  Alcotest.(check (float 0.0)) "usable after reset" 5.0 (Stat.Quantiles.quantile s 0.5)

(* Rank error of the sketch against the exact sample quantile: the
   fraction of the sample between the two answers. *)
let rank_error values sketch q =
  let a = Array.of_list values in
  Array.sort Float.compare a;
  let n = Array.length a in
  let rank v =
    (* values <= v, by binary-search-free scan kept simple: n is 20k. *)
    let c = ref 0 in
    Array.iter (fun x -> if x <= v then incr c) a;
    !c
  in
  let exact = int_of_float (Float.round (q *. float_of_int (n - 1))) + 1 in
  let got = rank (Stat.Quantiles.quantile sketch q) in
  abs (got - exact) |> float_of_int |> fun d -> d /. float_of_int n

let prop_quantiles_approximation =
  QCheck.Test.make ~name:"quantiles: sketch within 5% rank error at n=20k"
    ~count:5 QCheck.small_int (fun seed ->
      let rng = Sim.Rng.create ~seed in
      let s = Stat.Quantiles.create ~k:128 () in
      let values = List.init 20_000 (fun _ -> Sim.Rng.float rng 1e4) in
      List.iter (Stat.Quantiles.observe s) values;
      List.for_all
        (fun q -> rank_error values s q <= 0.05)
        [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ])

let prop_quantiles_merge_matches_stream =
  (* Merging sketches of two halves must answer like a (similarly sized)
     sketch — within rank-error tolerance of the exact pooled sample. *)
  QCheck.Test.make ~name:"quantiles: merge of halves within 5% rank error"
    ~count:5 QCheck.small_int (fun seed ->
      let rng = Sim.Rng.create ~seed in
      let a = Stat.Quantiles.create ~k:128 () in
      let b = Stat.Quantiles.create ~k:128 () in
      let va = List.init 8_000 (fun _ -> Sim.Rng.float rng 1e4) in
      let vb = List.init 8_000 (fun _ -> 5e3 +. Sim.Rng.float rng 1e4) in
      List.iter (Stat.Quantiles.observe a) va;
      List.iter (Stat.Quantiles.observe b) vb;
      let m = Stat.Quantiles.merge a b in
      Stat.Quantiles.count m = 16_000
      && List.for_all
           (fun q -> rank_error (va @ vb) m q <= 0.05)
           [ 0.1; 0.5; 0.9 ])

let prop_quantiles_monotone =
  QCheck.Test.make ~name:"quantiles: monotone in q" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 500) (float_range 0.0 1e6))
    (fun values ->
      let s = Stat.Quantiles.create ~k:16 () in
      List.iter (Stat.Quantiles.observe s) values;
      Stat.Quantiles.quantile s 0.25 <= Stat.Quantiles.quantile s 0.75)

let suite =
  [
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "summary known values" `Quick test_summary_known_values;
    Alcotest.test_case "summary single" `Quick test_summary_single;
    Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "histogram clamps negatives" `Quick test_histogram_negative_clamped;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "quantiles empty and errors" `Quick test_quantiles_empty_and_errors;
    Alcotest.test_case "quantiles exact when small" `Quick test_quantiles_exact_when_small;
    Alcotest.test_case "quantiles merge exact when small" `Quick
      test_quantiles_merge_exact_when_small;
    Alcotest.test_case "quantiles space bound" `Quick test_quantiles_space_bound;
    Alcotest.test_case "quantiles reset" `Quick test_quantiles_reset;
    QCheck_alcotest.to_alcotest prop_quantiles_approximation;
    QCheck_alcotest.to_alcotest prop_quantiles_merge_matches_stream;
    QCheck_alcotest.to_alcotest prop_quantiles_monotone;
    QCheck_alcotest.to_alcotest prop_welford_matches_naive;
    QCheck_alcotest.to_alcotest prop_histogram_mass;
    QCheck_alcotest.to_alcotest prop_quantile_boundaries;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
  ]
