open Sim

let test_counter () =
  let c = Stat.Counter.create () in
  Alcotest.(check int) "initial" 0 (Stat.Counter.value c);
  Stat.Counter.incr c;
  Stat.Counter.add c 5;
  Alcotest.(check int) "accumulated" 6 (Stat.Counter.value c);
  Stat.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Stat.Counter.value c)

let test_summary_empty () =
  let s = Stat.Summary.create () in
  Alcotest.(check int) "count" 0 (Stat.Summary.count s);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Stat.Summary.mean s);
  Alcotest.(check (float 0.0)) "variance" 0.0 (Stat.Summary.variance s);
  Alcotest.(check (option (float 0.0))) "min" None (Stat.Summary.min s);
  Alcotest.(check (option (float 0.0))) "max" None (Stat.Summary.max s)

let test_summary_known_values () =
  let s = Stat.Summary.create () in
  List.iter (Stat.Summary.observe s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stat.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stat.Summary.mean s);
  (* Sample variance of this classic data set is 32/7. *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Stat.Summary.variance s);
  Alcotest.(check (option (float 1e-9))) "min" (Some 2.0) (Stat.Summary.min s);
  Alcotest.(check (option (float 1e-9))) "max" (Some 9.0) (Stat.Summary.max s);
  Alcotest.(check (float 1e-9)) "total" 40.0 (Stat.Summary.total s)

let test_summary_single () =
  let s = Stat.Summary.create () in
  Stat.Summary.observe s 3.0;
  Alcotest.(check (float 0.0)) "variance of single" 0.0 (Stat.Summary.variance s)

let test_histogram_empty () =
  let h = Stat.Histogram.create () in
  Alcotest.(check int) "count" 0 (Stat.Histogram.count h);
  Alcotest.(check (float 0.0)) "quantile of empty" 0.0 (Stat.Histogram.quantile h 0.5);
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Stat.Histogram.mean h)

let test_histogram_buckets () =
  let h = Stat.Histogram.create () in
  List.iter (Stat.Histogram.observe h) [ 0.5; 1.5; 3.0; 3.9; 100.0 ];
  Alcotest.(check int) "count" 5 (Stat.Histogram.count h);
  let buckets = Stat.Histogram.buckets h in
  Alcotest.(check bool) "ascending, non-empty" true (List.length buckets >= 3);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 buckets in
  Alcotest.(check int) "mass conserved" 5 total;
  List.iter
    (fun (lo, hi, _) -> Alcotest.(check bool) "lo < hi" true (lo < hi))
    buckets

let test_histogram_quantiles () =
  let h = Stat.Histogram.create () in
  for _ = 1 to 90 do
    Stat.Histogram.observe h 10.0
  done;
  for _ = 1 to 10 do
    Stat.Histogram.observe h 10_000.0
  done;
  let p50 = Stat.Histogram.quantile h 0.5 in
  let p99 = Stat.Histogram.quantile h 0.99 in
  Alcotest.(check bool) "p50 near 10 (bucket-approximate)" true (p50 >= 8.0 && p50 <= 16.0);
  Alcotest.(check bool) "p99 near 10000" true (p99 >= 8192.0 && p99 <= 16384.0);
  Alcotest.check_raises "bad quantile" (Invalid_argument "Histogram.quantile")
    (fun () -> ignore (Stat.Histogram.quantile h 1.5))

let test_histogram_negative_clamped () =
  let h = Stat.Histogram.create () in
  Stat.Histogram.observe h (-5.0);
  Alcotest.(check int) "counted" 1 (Stat.Histogram.count h);
  Alcotest.(check (float 0.0)) "mean clamped" 0.0 (Stat.Histogram.mean h)

let test_histogram_merge () =
  let a = Stat.Histogram.create () and b = Stat.Histogram.create () in
  List.iter (Stat.Histogram.observe a) [ 1.0; 2.0 ];
  List.iter (Stat.Histogram.observe b) [ 4.0; 8.0 ];
  let m = Stat.Histogram.merge a b in
  Alcotest.(check int) "merged count" 4 (Stat.Histogram.count m);
  Alcotest.(check (float 1e-9)) "merged mean" 3.75 (Stat.Histogram.mean m);
  (* Merge does not mutate the inputs. *)
  Alcotest.(check int) "a unchanged" 2 (Stat.Histogram.count a)

let prop_welford_matches_naive =
  QCheck.Test.make ~name:"summary: Welford matches naive mean/variance" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-1000.0) 1000.0))
    (fun values ->
      let s = Stat.Summary.create () in
      List.iter (Stat.Summary.observe s) values;
      let n = float_of_int (List.length values) in
      let mean = List.fold_left ( +. ) 0.0 values /. n in
      let var =
        List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 values /. (n -. 1.0)
      in
      Float.abs (Stat.Summary.mean s -. mean) < 1e-6 *. (1.0 +. Float.abs mean)
      && Float.abs (Stat.Summary.variance s -. var) < 1e-6 *. (1.0 +. var))

let prop_histogram_mass =
  QCheck.Test.make ~name:"histogram: bucket mass equals count" ~count:200
    QCheck.(list (float_range 0.0 1e9))
    (fun values ->
      let h = Stat.Histogram.create () in
      List.iter (Stat.Histogram.observe h) values;
      let mass =
        List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Stat.Histogram.buckets h)
      in
      mass = List.length values)

let prop_quantile_boundaries =
  (* Boundary contract: q=0 and q=1 always answer (0 when empty), and with a
     single observation every quantile lands in that observation's bucket. *)
  QCheck.Test.make ~name:"histogram: quantile boundaries" ~count:200
    QCheck.(pair (float_range 0.0 1e9) (float_range 0.0 1.0))
    (fun (x, q) ->
      let empty = Stat.Histogram.create () in
      let at_bounds_empty =
        Stat.Histogram.quantile empty 0.0 = 0.0
        && Stat.Histogram.quantile empty 1.0 = 0.0
        && Stat.Histogram.quantile empty q = 0.0
      in
      let h = Stat.Histogram.create () in
      Stat.Histogram.observe h x;
      (* Bucket i>0 spans [2^(i-1), 2^i); its geometric midpoint stays within
         a factor of sqrt 2 of any member, and bucket 0 answers 0.5. *)
      let within v =
        if x < 1.0 then v = 0.5
        else v >= x /. 2.0 && v <= x *. 2.0
      in
      at_bounds_empty
      && within (Stat.Histogram.quantile h 0.0)
      && within (Stat.Histogram.quantile h q)
      && within (Stat.Histogram.quantile h 1.0))

let prop_quantile_monotone =
  QCheck.Test.make ~name:"histogram: quantiles are monotone" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 100) (float_range 0.0 1e6))
    (fun values ->
      let h = Stat.Histogram.create () in
      List.iter (Stat.Histogram.observe h) values;
      Stat.Histogram.quantile h 0.25 <= Stat.Histogram.quantile h 0.75)

let suite =
  [
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "summary known values" `Quick test_summary_known_values;
    Alcotest.test_case "summary single" `Quick test_summary_single;
    Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "histogram clamps negatives" `Quick test_histogram_negative_clamped;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    QCheck_alcotest.to_alcotest prop_welford_matches_naive;
    QCheck_alcotest.to_alcotest prop_histogram_mass;
    QCheck_alcotest.to_alcotest prop_quantile_boundaries;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
  ]
