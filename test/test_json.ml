(* The JSON layer under `bench --json`: emission must never produce a
   document a standard parser rejects (RFC 8259 has no Infinity/NaN), and
   of_string must read back exactly what to_string wrote. *)

open Sim

let test_to_string_basics () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "bool" "true" (Json.to_string (Json.Bool true));
  Alcotest.(check string)
    "number keeps the bench %.6g format" "1234.57"
    (Json.to_string (Json.Number 1234.5678));
  Alcotest.(check string) "int" "42" (Json.to_string (Json.int 42));
  Alcotest.(check string)
    "escaping" {|"a\"b\\c\nd"|}
    (Json.to_string (Json.String "a\"b\\c\nd"));
  Alcotest.(check string)
    "object" {|{"a": 1, "b": [true, null]}|}
    (Json.to_string
       (Json.Obj
          [ ("a", Json.int 1); ("b", Json.List [ Json.Bool true; Json.Null ]) ]))

let test_non_finite_becomes_null () =
  (* The satellite bug: Summary.min/max of an empty summary used to leak
     "inf" into the emitted document.  [Json.number] is the safe door. *)
  Alcotest.(check string) "inf" "null" (Json.to_string (Json.number infinity));
  Alcotest.(check string) "-inf" "null" (Json.to_string (Json.number neg_infinity));
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.number nan));
  Alcotest.(check string) "finite passes" "1.5" (Json.to_string (Json.number 1.5));
  Alcotest.check_raises "raw non-finite Number refused"
    (Invalid_argument "Json.to_string: non-finite number (use Json.number)")
    (fun () -> ignore (Json.to_string (Json.Number infinity)))

let test_of_string_basics () =
  let parse s =
    match Json.of_string s with
    | Ok v -> v
    | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  Alcotest.(check bool) "null" true (parse "null" = Json.Null);
  Alcotest.(check bool) "number" true (parse " -1.5e2 " = Json.Number (-150.0));
  Alcotest.(check bool) "string escapes" true
    (parse {|"a\"b\\c\ndA"|} = Json.String "a\"b\\c\ndA");
  Alcotest.(check bool) "nested" true
    (parse {|{"a":[1,true,null],"b":{}}|}
    = Json.Obj
        [
          ("a", Json.List [ Json.Number 1.0; Json.Bool true; Json.Null ]);
          ("b", Json.Obj []);
        ]);
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.failf "parser accepted %S" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "Infinity"; "nan"; "1 2"; "\"unterminated" ]

let test_member () =
  let doc = Json.Obj [ ("x", Json.int 1); ("y", Json.Null) ] in
  Alcotest.(check bool) "present" true (Json.member "x" doc = Some (Json.Number 1.0));
  Alcotest.(check bool) "null member" true (Json.member "y" doc = Some Json.Null);
  Alcotest.(check bool) "absent" true (Json.member "z" doc = None);
  Alcotest.(check bool) "non-object" true (Json.member "x" (Json.int 1) = None)

(* Random finite documents roundtrip exactly: parse (print v) = v. *)
let gen_json =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         let leaf =
           oneof
             [
               return Json.Null;
               map (fun b -> Json.Bool b) bool;
               map (fun f -> Json.Number f) (float_bound_inclusive 1e9);
               map (fun i -> Json.int i) (int_range (-1000000) 1000000);
               map (fun s -> Json.String s) (string_size ~gen:printable (0 -- 12));
             ]
         in
         if n <= 0 then leaf
         else
           oneof
             [
               leaf;
               map (fun l -> Json.List l) (list_size (0 -- 4) (self (n / 2)));
               map
                 (fun kvs -> Json.Obj kvs)
                 (list_size (0 -- 4)
                    (pair (string_size ~gen:printable (1 -- 8)) (self (n / 2))));
             ])

let prop_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"to_string/of_string roundtrip" gen_json
    (fun v ->
      match Json.of_string (Json.to_string v) with
      | Error e -> QCheck2.Test.fail_reportf "reparse failed: %s" e
      | Ok v' ->
        (* %.6g rounds numbers, so compare the re-printed form: printing is a
           fixpoint after one trip. *)
        String.equal (Json.to_string v) (Json.to_string v'))

(* The shape `bench --json` writes: a metrics object full of summaries,
   including the empty-summary case that used to emit bare infinities. *)
let test_bench_shaped_document () =
  let summary name s =
    ( name,
      Json.Obj
        [
          ("count", Json.int (Stat.Summary.count s));
          ("mean", Json.number (Stat.Summary.mean s));
          ( "min",
            match Stat.Summary.min s with
            | Some v -> Json.number v
            | None -> Json.Null );
          ( "max",
            match Stat.Summary.max s with
            | Some v -> Json.number v
            | None -> Json.Null );
        ] )
  in
  let filled = Stat.Summary.create () in
  Stat.Summary.observe filled 3.0;
  Stat.Summary.observe filled 7.0;
  let doc =
    Json.Obj [ summary "write_us" filled; summary "idle_us" (Stat.Summary.create ()) ]
  in
  let s = Json.to_string doc in
  Alcotest.(check bool) "no bare infinity in the document" false
    (let has sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     has "inf" || has "nan");
  match Json.of_string s with
  | Error e -> Alcotest.failf "bench-shaped document unparseable: %s" e
  | Ok v ->
    let get path =
      match Json.member "idle_us" v with
      | Some o -> Json.member path o
      | None -> Alcotest.fail "idle_us missing"
    in
    Alcotest.(check bool) "empty min is null" true (get "min" = Some Json.Null);
    Alcotest.(check bool) "empty max is null" true (get "max" = Some Json.Null)

let suite =
  [
    Alcotest.test_case "to_string basics" `Quick test_to_string_basics;
    Alcotest.test_case "non-finite numbers become null" `Quick
      test_non_finite_becomes_null;
    Alcotest.test_case "of_string basics" `Quick test_of_string_basics;
    Alcotest.test_case "member" `Quick test_member;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "bench-shaped document" `Quick test_bench_shaped_document;
  ]
