(* The striped multi-card array: placement arithmetic, the shared front
   cache's counting contract, byte-identity of the one-card paths, and
   crash recovery of the global allocation cursor. *)
open Sim

(* --- Striping arithmetic. --------------------------------------------------- *)

let policies =
  [
    Storage.Striping.Round_robin { strip_blocks = 1 };
    Storage.Striping.Round_robin { strip_blocks = 3 };
    Storage.Striping.Round_robin { strip_blocks = 4 };
    Storage.Striping.Round_robin { strip_blocks = 16 };
    Storage.Striping.Hashed;
  ]

(* Replay the allocation order and keep per-card counts: [local_of] must
   be the running count for the block's card (dense local handles),
   [locals_before] the count for any card, and [global_of] the exact
   inverse.  This is the whole contract crash recovery leans on. *)
let test_striping_dense_roundtrip () =
  List.iter
    (fun policy ->
      let name = Storage.Striping.policy_name policy in
      List.iter
        (fun ncards ->
          let counts = Array.make ncards 0 in
          for g = 0 to 1999 do
            let card = Storage.Striping.card_of policy ~ncards ~block:g in
            if card < 0 || card >= ncards then
              Alcotest.failf "%s/%d: block %d routed to card %d" name ncards g card;
            for c = 0 to ncards - 1 do
              Alcotest.(check int)
                (Printf.sprintf "%s/%d: locals_before card %d at %d" name ncards c g)
                counts.(c)
                (Storage.Striping.locals_before policy ~ncards ~card:c g)
            done;
            let local = Storage.Striping.local_of policy ~ncards ~block:g in
            Alcotest.(check int)
              (Printf.sprintf "%s/%d: local of %d dense" name ncards g)
              counts.(card) local;
            Alcotest.(check int)
              (Printf.sprintf "%s/%d: global_of inverts %d" name ncards g)
              g
              (Storage.Striping.global_of policy ~ncards ~card ~local);
            counts.(card) <- counts.(card) + 1
          done)
        [ 1; 2; 3; 4; 5 ])
    policies

let test_striping_spreads_strips () =
  (* Round-robin with strip [s]: [s] consecutive handles per card, then
     the next card; one full stripe touches every card exactly once. *)
  let policy = Storage.Striping.Round_robin { strip_blocks = 4 } in
  let cards =
    List.init 24 (fun g -> Storage.Striping.card_of policy ~ncards:3 ~block:g)
  in
  Alcotest.(check (list int)) "strips rotate"
    [ 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2; 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2 ]
    cards

let test_striping_validate () =
  let ok p ncards =
    match Storage.Striping.validate p ~ncards with
    | Ok () -> true
    | Error _ -> false
  in
  Alcotest.(check bool) "valid" true
    (ok (Storage.Striping.Round_robin { strip_blocks = 4 }) 2);
  Alcotest.(check bool) "zero cards" false (ok Storage.Striping.Hashed 0);
  Alcotest.(check bool) "zero strip" false
    (ok (Storage.Striping.Round_robin { strip_blocks = 0 }) 2);
  Alcotest.(check bool) "parity wants two cards" false
    (ok (Storage.Striping.Parity { strip_blocks = 2; rotate = true }) 1);
  Alcotest.(check bool) "parity over two cards" true
    (ok (Storage.Striping.Parity { strip_blocks = 2; rotate = true }) 2)

(* Hand-checked parity geometry at n=3, s=2 — the worked example from
   DESIGN.md, pinned so a placement regression reads as arithmetic, not
   as a property-test shrink. *)
let test_parity_placement () =
  let cards p n =
    List.init n (fun g -> Storage.Striping.card_of p ~ncards:3 ~block:g)
  in
  let fixed = Storage.Striping.Parity { strip_blocks = 2; rotate = false } in
  Alcotest.(check (list int)) "RAID-4 shape: data never on the last card"
    [ 0; 0; 1; 1; 0; 0; 1; 1; 0; 0; 1; 1 ] (cards fixed 12);
  List.iter
    (fun g ->
      match Storage.Striping.parity_slot fixed ~ncards:3 ~block:g with
      | Some (pc, pl) ->
        Alcotest.(check int) "fixed parity pinned on card N-1" 2 pc;
        Alcotest.(check int) "parity local row-aligned with the data"
          (Storage.Striping.local_of fixed ~ncards:3 ~block:g)
          pl
      | None -> Alcotest.fail "parity policy must name a parity slot")
    (List.init 12 Fun.id);
  let rot = Storage.Striping.Parity { strip_blocks = 2; rotate = true } in
  Alcotest.(check (list int)) "RAID-5 shape: data steps around the parity card"
    [ 0; 0; 1; 1; 0; 0; 2; 2; 1; 1; 2; 2 ] (cards rot 12);
  Alcotest.(check (list int)) "parity card walks backwards per stripe"
    [ 2; 1; 0; 2; 1; 0 ]
    (List.init 6 (fun k ->
         Storage.Striping.parity_card_of_local rot ~ncards:3 ~local:(2 * k)));
  (* Parity slots have no client handle: the inverse refuses them. *)
  Alcotest.(check bool) "global_of raises on a parity slot" true
    (match Storage.Striping.global_of rot ~ncards:3 ~card:2 ~local:0 with
    | exception Invalid_argument _ -> true
    | (_ : int) -> false)

(* The roundtrip replay as a property over random geometry, parity
   included: model the eager parity-strip allocation exactly as the
   array performs it, and every closed form must agree with the replay
   at every step. *)
let striping_arbitrary =
  let policy_gen =
    QCheck.Gen.oneof
      [
        QCheck.Gen.map
          (fun s -> Storage.Striping.Round_robin { strip_blocks = s })
          (QCheck.Gen.int_range 1 8);
        QCheck.Gen.return Storage.Striping.Hashed;
        QCheck.Gen.map2
          (fun s rotate -> Storage.Striping.Parity { strip_blocks = s; rotate })
          (QCheck.Gen.int_range 1 8) QCheck.Gen.bool;
      ]
  in
  QCheck.make
    ~print:(fun (p, ncards, len) ->
      Printf.sprintf "%s, %d cards, %d blocks"
        (Storage.Striping.policy_name p)
        ncards len)
    QCheck.Gen.(triple policy_gen (int_range 2 5) (int_range 1 400))

let striping_replay_property (policy, ncards, len) =
  let module S = Storage.Striping in
  (match S.validate policy ~ncards with
  | Ok () -> ()
  | Error msg -> QCheck.Test.fail_reportf "validate rejected: %s" msg);
  let counts = Array.make ncards 0 in
  for g = 0 to len - 1 do
    (* [locals_before g] describes the world before [g] is allocated —
       before even the parity strip its allocation would open. *)
    for c = 0 to ncards - 1 do
      if S.locals_before policy ~ncards ~card:c g <> counts.(c) then
        QCheck.Test.fail_reportf "locals_before card %d at g=%d: %d, replay says %d"
          c g
          (S.locals_before policy ~ncards ~card:c g)
          counts.(c)
    done;
    (match S.parity_prealloc policy ~ncards ~block:g with
    | Some (pc, first, n) ->
      if counts.(pc) <> first then
        QCheck.Test.fail_reportf
          "prealloc at g=%d expects local %d on card %d, replay has %d" g first pc
          counts.(pc);
      for pl = first to first + n - 1 do
        if S.min_global_cursor policy ~ncards ~card:pc ~local:pl <> g + 1 then
          QCheck.Test.fail_reportf "parity slot (%d,%d): wrong min cursor" pc pl;
        match S.global_of policy ~ncards ~card:pc ~local:pl with
        | exception Invalid_argument _ -> ()
        | g' ->
          QCheck.Test.fail_reportf "parity slot (%d,%d) claims global %d" pc pl g'
      done;
      counts.(pc) <- counts.(pc) + n
    | None -> ());
    let card = S.card_of policy ~ncards ~block:g in
    if card < 0 || card >= ncards then
      QCheck.Test.fail_reportf "g=%d routed to card %d" g card;
    let local = S.local_of policy ~ncards ~block:g in
    if local <> counts.(card) then
      QCheck.Test.fail_reportf "g=%d got local %d, replay says %d" g local
        counts.(card);
    if S.global_of policy ~ncards ~card ~local <> g then
      QCheck.Test.fail_reportf "global_of fails to invert g=%d" g;
    if S.min_global_cursor policy ~ncards ~card ~local <> g + 1 then
      QCheck.Test.fail_reportf "data slot (%d,%d): wrong min cursor" card local;
    (match S.parity_slot policy ~ncards ~block:g with
    | Some (pc, pl) ->
      if pc = card then
        QCheck.Test.fail_reportf "g=%d landed on its own parity card" g;
      if pl <> local then
        QCheck.Test.fail_reportf "g=%d: parity local %d not row-aligned with %d" g
          pl local;
      if S.parity_card_of_local policy ~ncards ~local <> pc then
        QCheck.Test.fail_reportf "g=%d: parity_card_of_local disagrees" g
    | None -> (
      match policy with
      | S.Parity _ -> QCheck.Test.fail_reportf "no parity slot for g=%d" g
      | S.Round_robin _ | S.Hashed -> ()));
    counts.(card) <- counts.(card) + 1
  done;
  true

let qcheck_striping_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"striping: random geometry replays (parity included)"
       ~count:300 striping_arbitrary striping_replay_property)

(* --- Front cache: the Buffer_cache counting contract. ----------------------- *)

let test_front_cache_contract () =
  let c = Storage.Front_cache.create ~capacity_blocks:2 in
  Alcotest.(check bool) "miss on empty" true
    (Storage.Front_cache.find_or_insert c ~key:1 = Storage.Front_cache.Miss);
  Alcotest.(check bool) "hit after insert" true
    (Storage.Front_cache.find_or_insert c ~key:1 = Storage.Front_cache.Hit);
  ignore (Storage.Front_cache.find_or_insert c ~key:2);
  (* 1 is MRU (hit refreshed it), 2 next: inserting 3 evicts... touch 1
     first so 2 is the LRU victim. *)
  ignore (Storage.Front_cache.find_or_insert c ~key:1);
  ignore (Storage.Front_cache.find_or_insert c ~key:3);
  Alcotest.(check bool) "LRU evicted" false (Storage.Front_cache.contains c ~key:2);
  Alcotest.(check bool) "MRU survives" true (Storage.Front_cache.contains c ~key:1);
  Alcotest.(check int) "size capped" 2 (Storage.Front_cache.size c);
  Alcotest.(check int) "hits counted once each" 2 (Storage.Front_cache.hits c);
  Alcotest.(check int) "misses counted once each" 3 (Storage.Front_cache.misses c);
  (* [insert] counts nothing, [invalidate] removes. *)
  Storage.Front_cache.insert c ~key:9;
  Alcotest.(check int) "insert counts no hit" 2 (Storage.Front_cache.hits c);
  Alcotest.(check int) "insert counts no miss" 3 (Storage.Front_cache.misses c);
  Alcotest.(check bool) "insert resident" true (Storage.Front_cache.contains c ~key:9);
  Storage.Front_cache.invalidate c ~key:9;
  Alcotest.(check bool) "invalidated" false (Storage.Front_cache.contains c ~key:9);
  (* [clear] drops residency but keeps the counters (crash semantics). *)
  Storage.Front_cache.clear c;
  Alcotest.(check int) "clear keeps counters" 3 (Storage.Front_cache.misses c);
  Alcotest.(check int) "clear drops residency" 0 (Storage.Front_cache.size c);
  Storage.Front_cache.reset_counters c;
  Alcotest.(check int) "reset zeroes hits" 0 (Storage.Front_cache.hits c);
  Alcotest.(check int) "reset zeroes misses" 0 (Storage.Front_cache.misses c)

let test_front_cache_zero_capacity () =
  let c = Storage.Front_cache.create ~capacity_blocks:0 in
  Storage.Front_cache.insert c ~key:1;
  Alcotest.(check bool) "miss, always" true
    (Storage.Front_cache.find_or_insert c ~key:1 = Storage.Front_cache.Miss);
  Alcotest.(check bool) "second lookup still a miss" true
    (Storage.Front_cache.find_or_insert c ~key:1 = Storage.Front_cache.Miss);
  Alcotest.(check int) "nothing retained" 0 (Storage.Front_cache.size c);
  Alcotest.(check int) "both misses counted" 2 (Storage.Front_cache.misses c);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Front_cache.create: negative capacity") (fun () ->
      ignore (Storage.Front_cache.create ~capacity_blocks:(-1)))

let test_front_cache_lookup_commits_nothing () =
  (* [lookup] is the read path's probe: a miss counts but must leave no
     residency behind — the entry is only inserted after the card read
     actually returns. *)
  let c = Storage.Front_cache.create ~capacity_blocks:2 in
  Alcotest.(check bool) "miss on empty" true
    (Storage.Front_cache.lookup c ~key:7 = Storage.Front_cache.Miss);
  Alcotest.(check bool) "miss committed nothing" false
    (Storage.Front_cache.contains c ~key:7);
  Alcotest.(check bool) "still a miss" true
    (Storage.Front_cache.lookup c ~key:7 = Storage.Front_cache.Miss);
  Alcotest.(check int) "both misses counted" 2 (Storage.Front_cache.misses c);
  Storage.Front_cache.insert c ~key:7;
  Alcotest.(check bool) "hit once the read completed" true
    (Storage.Front_cache.lookup c ~key:7 = Storage.Front_cache.Hit);
  Alcotest.(check int) "hit counted" 1 (Storage.Front_cache.hits c);
  Alcotest.(check int) "insert itself uncounted" 2 (Storage.Front_cache.misses c)

(* --- One-card byte-identity: bare manager vs 1-card array vs Store. --------- *)

let mgr_cfg ~buffer_blocks =
  {
    Storage.Manager.default_config with
    Storage.Manager.segment_sectors = 8;
    buffer =
      {
        Storage.Write_buffer.capacity_blocks = buffer_blocks;
        writeback_delay = Time.span_ms 5.0;
        refresh_on_rewrite = true;
      };
  }

let mk_flash () =
  Device.Flash.create
    (Device.Flash.config ~nbanks:2 ~endurance_override:60 ~size_bytes:(128 * 1024) ())

let mk_dram () = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true ()

(* The same latency-observable op surface over Manager, Array, and Store,
   so one driver exercises all three. *)
type ops = {
  alloc : unit -> int;
  write : int -> float;
  read : int -> float;
  free : int -> unit;
  load_cold : int -> unit;
  flush : unit -> float;
}

let ops_of_manager m =
  {
    alloc = (fun () -> Storage.Manager.alloc m);
    write = (fun b -> Time.span_to_us (Storage.Manager.write_block m b));
    read = (fun b -> Time.span_to_us (Storage.Manager.read_block m b));
    free = (fun b -> Storage.Manager.free_block m b);
    load_cold = (fun b -> Storage.Manager.load_cold m b);
    flush = (fun () -> Time.span_to_us (Storage.Manager.flush_all m));
  }

let ops_of_array a =
  {
    alloc = (fun () -> Storage.Array.alloc a);
    write = (fun b -> Time.span_to_us (Storage.Array.write_block a b));
    read = (fun b -> Time.span_to_us (Storage.Array.read_block a b));
    free = (fun b -> Storage.Array.free_block a b);
    load_cold = (fun b -> Storage.Array.load_cold a b);
    flush = (fun () -> Time.span_to_us (Storage.Array.flush_all a));
  }

let ops_of_store s =
  {
    alloc = (fun () -> Storage.Store.alloc s);
    write = (fun b -> Time.span_to_us (Storage.Store.write_block s b));
    read = (fun b -> Time.span_to_us (Storage.Store.read_block s b));
    free = (fun b -> Storage.Store.free_block s b);
    load_cold = (fun b -> Storage.Store.load_cold s b);
    flush = (fun () -> Time.span_to_us (Storage.Store.flush_all s));
  }

(* A deterministic mixed workload; returns every observed latency in
   order, so two byte-identical paths produce equal lists. *)
let drive engine ops =
  let spans = ref [] in
  let push us = spans := us :: !spans in
  let blocks = Array.init 40 (fun _ -> ops.alloc ()) in
  Array.iteri (fun i b -> if i < 24 then ops.load_cold b else push (ops.write b)) blocks;
  Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 1.0));
  let state = ref 4242 in
  let next bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  let freed = Array.make 40 false in
  for _ = 1 to 300 do
    let k = next 40 in
    match next 5 with
    | 0 | 1 -> if not freed.(k) then push (ops.write blocks.(k))
    | 2 -> if not freed.(k) then push (ops.read blocks.(k))
    | 3 ->
      if not freed.(k) && next 7 = 0 then begin
        ops.free blocks.(k);
        freed.(k) <- true
      end
    | _ ->
      Engine.run_until engine
        (Time.add (Engine.now engine) (Time.span_ms (float_of_int (1 + next 20))))
  done;
  push (ops.flush ());
  List.rev !spans

let test_one_card_array_is_byte_identical () =
  (* Bare manager vs a 1-card array (front cache off) vs Store.Single:
     same flash geometry, same op stream, every latency equal — the array
     layer adds nothing at [cards = 1]. *)
  let run mk_ops =
    let engine = Engine.create () in
    let ops = mk_ops ~engine ~flash:(mk_flash ()) ~dram:(mk_dram ()) in
    drive engine ops
  in
  let cfg = mgr_cfg ~buffer_blocks:8 in
  let manager_spans =
    run (fun ~engine ~flash ~dram ->
        ops_of_manager (Storage.Manager.create cfg ~engine ~flash ~dram))
  in
  let array_spans =
    run (fun ~engine ~flash ~dram ->
        ops_of_array
          (Storage.Array.create
             ~striping:(Storage.Striping.Round_robin { strip_blocks = 4 })
             cfg ~engine ~flashes:[| flash |] ~dram))
  in
  let store_spans =
    run (fun ~engine ~flash ~dram ->
        ops_of_store
          (Storage.Store.Single (Storage.Manager.create cfg ~engine ~flash ~dram)))
  in
  Alcotest.(check (list (float 0.0))) "1-card array == bare manager" manager_spans
    array_spans;
  Alcotest.(check (list (float 0.0))) "Store.Single == bare manager" manager_spans
    store_spans

(* --- Multi-card behavior. --------------------------------------------------- *)

let mk_array ?(front_cache_blocks = 0) ?(buffer_blocks = 8) ?(ncards = 2)
    ?(strip_blocks = 4) ?policy () =
  let engine = Engine.create () in
  let flashes = Array.init ncards (fun _ -> mk_flash ()) in
  let striping =
    match policy with
    | Some p -> p
    | None -> Storage.Striping.Round_robin { strip_blocks }
  in
  let a =
    Storage.Array.create ~front_cache_blocks ~striping (mgr_cfg ~buffer_blocks)
      ~engine ~flashes ~dram:(mk_dram ())
  in
  (engine, a)

let advance engine span = Engine.run_until engine (Time.add (Engine.now engine) span)

let test_multi_card_placement () =
  let engine, a = mk_array ~ncards:2 ~strip_blocks:4 () in
  Alcotest.(check int) "capacity sums cards"
    (2 * Storage.Manager.capacity_blocks (Storage.Array.manager a 0))
    (Storage.Array.capacity_blocks a);
  let blocks = Array.init 32 (fun _ -> Storage.Array.alloc a) in
  Array.iteri (fun g b -> Alcotest.(check int) "handles dense from zero" g b) blocks;
  Array.iter (fun b -> ignore (Storage.Array.write_block a b)) blocks;
  advance engine (Time.span_s 1.0);
  Array.iter
    (fun b ->
      let policy = Storage.Array.striping a in
      Alcotest.(check int)
        (Printf.sprintf "block %d on its policy card" b)
        (Storage.Striping.card_of policy ~ncards:2 ~block:b)
        (Storage.Array.card_of_block a b);
      Alcotest.(check bool)
        (Printf.sprintf "block %d flushed somewhere" b)
        true
        (Storage.Array.segment_of_block a b <> None))
    blocks;
  (* Each card's manager saw exactly its locals, densely allocated. *)
  for card = 0 to 1 do
    let m = Storage.Array.manager a card in
    let locals = List.sort compare (Storage.Manager.known_blocks m) in
    Alcotest.(check (list int))
      (Printf.sprintf "card %d locals dense" card)
      (List.init 16 Fun.id) locals
  done;
  (* Per-card traffic sums to the array's stats. *)
  let sum =
    (Storage.Array.card_stats a 0).Storage.Manager.client_writes
    + (Storage.Array.card_stats a 1).Storage.Manager.client_writes
  in
  Alcotest.(check int) "writes split across cards" 32 sum;
  Alcotest.(check int) "array stats sum the cards" 32
    (Storage.Array.stats a).Storage.Manager.client_writes

let test_front_cache_serves_hot_reads () =
  let engine, a = mk_array ~front_cache_blocks:4 ~ncards:2 () in
  let b = Storage.Array.alloc a in
  ignore (Storage.Array.write_block a b);
  advance engine (Time.span_s 1.0);
  (* First read misses (flash speed, handle becomes resident), the second
     hits at DRAM speed without touching the card. *)
  let miss = Time.span_to_us (Storage.Array.read_block a b) in
  let hit = Time.span_to_us (Storage.Array.read_block a b) in
  Alcotest.(check int) "one miss" 1 (Storage.Array.front_cache_misses a);
  Alcotest.(check int) "one hit" 1 (Storage.Array.front_cache_hits a);
  Alcotest.(check bool) "hit is faster than flash" true (hit < miss);
  let card_reads = (Storage.Array.card_stats a 0).Storage.Manager.client_reads
                   + (Storage.Array.card_stats a 1).Storage.Manager.client_reads in
  Alcotest.(check int) "hit never reached a card" 1 card_reads;
  (* But the array's summed stats still count it as a served read. *)
  Alcotest.(check int) "array counts both reads" 2
    (Storage.Array.stats a).Storage.Manager.client_reads;
  (* A rewrite invalidates the residency: the next read misses again. *)
  ignore (Storage.Array.write_block a b);
  advance engine (Time.span_s 1.0);
  ignore (Storage.Array.read_block a b);
  Alcotest.(check int) "rewrite invalidated the entry" 2
    (Storage.Array.front_cache_misses a);
  (* And a free drops it for good. *)
  let b2 = Storage.Array.alloc a in
  ignore (Storage.Array.write_block a b2);
  advance engine (Time.span_s 1.0);
  ignore (Storage.Array.read_block a b2);
  Storage.Array.free_block a b2;
  Alcotest.(check bool) "freed block no longer known" false
    (Storage.Array.block_exists a b2)

let test_crash_wipes_front_cache () =
  let engine, a = mk_array ~front_cache_blocks:4 ~ncards:2 () in
  let b = Storage.Array.alloc a in
  ignore (Storage.Array.write_block a b);
  advance engine (Time.span_s 1.0);
  ignore (Storage.Array.read_block a b);
  ignore (Storage.Array.read_block a b);
  Alcotest.(check int) "resident before the crash" 1 (Storage.Array.front_cache_hits a);
  let a', _span, _report = Storage.Array.crash_and_remount a in
  Alcotest.(check int) "capacity survives" 4 (Storage.Array.front_cache_capacity a');
  (* DRAM died: the first read after remount must miss again. *)
  let h0 = Storage.Array.front_cache_hits a' in
  let m0 = Storage.Array.front_cache_misses a' in
  ignore (Storage.Array.read_block a' b);
  Alcotest.(check int) "no hit from a dead cache" h0 (Storage.Array.front_cache_hits a');
  Alcotest.(check int) "post-crash read is a miss" (m0 + 1)
    (Storage.Array.front_cache_misses a')

let test_crash_realigns_card_cursors () =
  (* Cards can lose different numbers of never-flushed tail allocations.
     Strip 1, 2 cards: g4 (card 0) dies dirty in the buffer while the
     younger g5 (card 1) reaches flash — after the crash the recovered
     global cursor is 6, but card 0 only ever flushed 2 locals.  The
     remount must pad card 0's cursor ([reserve_blocks]) or the next
     stripe-0 allocation would collide. *)
  let engine, a = mk_array ~ncards:2 ~strip_blocks:1 ~buffer_blocks:8 () in
  let burst n =
    List.init n (fun _ ->
        let g = Storage.Array.alloc a in
        ignore (Storage.Array.write_block a g);
        g)
  in
  (match burst 4 with
  | [ 0; 1; 2; 3 ] -> ()
  | _ -> Alcotest.fail "unexpected allocation order");
  advance engine (Time.span_ms 50.0);
  let g4 = Storage.Array.alloc a in
  ignore (Storage.Array.write_block a g4);
  Storage.Array.free_block a g4;
  let g5 = Storage.Array.alloc a in
  ignore (Storage.Array.write_block a g5);
  advance engine (Time.span_ms 50.0);
  Alcotest.(check int) "g5 on card 1" 1 (Storage.Array.card_of_block a g5);
  let a', _span, report = Storage.Array.crash_and_remount a in
  Alcotest.(check int) "nothing was dirty at the crash" 0
    report.Storage.Manager.buffered_lost;
  List.iter
    (fun g ->
      Alcotest.(check bool)
        (Printf.sprintf "block %d recovered" g)
        true
        (Storage.Store.block_exists (Storage.Store.Striped a') g))
    [ 0; 1; 2; 3; 5 ];
  Alcotest.(check bool) "freed g4 stays gone" false
    (Storage.Array.block_exists a' g4);
  (* The first post-crash allocation: global 6 -> card 0, local 3.  With
     an unpadded cursor card 0 would hand out local 2 and the arithmetic
     placement would be violated (the array asserts this internally). *)
  let g6 = Storage.Array.alloc a' in
  Alcotest.(check int) "cursor resumed past every recovered handle" 6 g6;
  Alcotest.(check int) "fresh handle on card 0" 0 (Storage.Array.card_of_block a' g6);
  ignore (Storage.Array.write_block a' g6);
  ignore (Storage.Array.flush_all a');
  Alcotest.(check bool) "fresh handle is durable" true
    (Storage.Array.segment_of_block a' g6 <> None)

let test_raising_read_leaves_nothing_resident () =
  (* The old read path committed front-cache residency *before* asking
     the card, so a read that then raised left a poisoned entry behind
     and the next read of the dead handle "hit" at DRAM speed instead of
     raising.  Residency now commits only after the card read returns. *)
  let engine, a = mk_array ~front_cache_blocks:4 ~ncards:2 () in
  let b = Storage.Array.alloc a in
  ignore (Storage.Array.write_block a b);
  advance engine (Time.span_s 1.0);
  Storage.Array.free_block a b;
  let misses = Storage.Array.front_cache_misses a in
  let raises () =
    match Storage.Array.read_block a b with
    | exception Invalid_argument _ -> true
    | (_ : Time.span) -> false
  in
  Alcotest.(check bool) "read of a freed block raises" true (raises ());
  Alcotest.(check bool) "and keeps raising" true (raises ());
  Alcotest.(check int) "no cache traffic for dead handles" misses
    (Storage.Array.front_cache_misses a);
  Alcotest.(check int) "and certainly no hits" 0 (Storage.Array.front_cache_hits a)

(* --- Parity arrays: maintenance, degraded mode, rebuild. -------------------- *)

let parity ?(strip_blocks = 2) ?(rotate = true) () =
  Storage.Striping.Parity { strip_blocks; rotate }

let test_parity_maintains_stats () =
  let engine, a = mk_array ~ncards:3 ~policy:(parity ()) () in
  let blocks = Array.init 12 (fun _ -> Storage.Array.alloc a) in
  Array.iter (fun b -> ignore (Storage.Array.write_block a b)) blocks;
  advance engine (Time.span_s 1.0);
  (* Each card holds exactly its share: data locals plus the eagerly
     allocated parity strips. *)
  let policy = Storage.Array.striping a in
  for card = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "card %d holds its data and parity locals" card)
      (Storage.Striping.locals_before policy ~ncards:3 ~card 12)
      (List.length (Storage.Manager.known_blocks (Storage.Array.manager a card)))
  done;
  (* Client counters see client traffic only: the array's own parity
     programs and RMW reads are subtracted back out. *)
  Alcotest.(check int) "client writes" 12
    (Storage.Array.stats a).Storage.Manager.client_writes;
  Array.iter (fun b -> ignore (Storage.Array.read_block a b)) blocks;
  Alcotest.(check int) "client reads" 12
    (Storage.Array.stats a).Storage.Manager.client_reads;
  (* The namespace-visible gauge excludes the parity blocks. *)
  Alcotest.(check int) "live gauge counts data blocks only" 12
    ((Storage.Array.stats a).Storage.Manager.live_blocks
    + (Storage.Array.stats a).Storage.Manager.dirty_blocks);
  let ps0 = Storage.Array.parity_stats a in
  Alcotest.(check bool) "parity programs issued" true
    (ps0.Storage.Array.parity_writes > 0);
  (* Rewriting flushed data is the small-write penalty: read old data,
     read old parity, program both. *)
  Array.iter (fun b -> ignore (Storage.Array.write_block a b)) blocks;
  let ps1 = Storage.Array.parity_stats a in
  Alcotest.(check bool) "RMW reads old data and old parity" true
    (ps1.Storage.Array.parity_reads >= ps0.Storage.Array.parity_reads + 24);
  Alcotest.(check int) "client writes still count only the client's" 24
    (Storage.Array.stats a).Storage.Manager.client_writes;
  Alcotest.(check int) "no degraded traffic while healthy" 0
    ps1.Storage.Array.degraded_reads

let test_eject_degraded_reinsert_rebuild () =
  let engine, a = mk_array ~front_cache_blocks:4 ~ncards:3 ~policy:(parity ()) () in
  let blocks = Array.init 16 (fun _ -> Storage.Array.alloc a) in
  Array.iter (fun b -> ignore (Storage.Array.write_block a b)) blocks;
  advance engine (Time.span_s 1.0);
  (* Leave a little dirty data in the buffers, then yank a card without
     warning. *)
  ignore (Storage.Array.write_block a blocks.(0));
  ignore (Storage.Array.write_block a blocks.(5));
  let victim = 1 in
  let on_victim =
    Array.to_list blocks
    |> List.filter (fun b -> Storage.Array.card_of_block a b = victim)
  in
  Alcotest.(check bool) "the victim card holds data" true (on_victim <> []);
  let r = Storage.Array.eject_card ~surprise:true a ~card:victim in
  Alcotest.(check bool) "degraded" true (Storage.Array.health a = `Degraded victim);
  Alcotest.(check bool) "degraded blocks reported" true
    (r.Storage.Array.degraded_blocks > 0);
  (* Every block is still there and still readable: missing-card blocks
     reconstruct from the survivors. *)
  Array.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "block %d survives the eject" b)
        true
        (Storage.Array.block_exists a b);
      ignore (Storage.Array.read_block a b))
    blocks;
  let ps = Storage.Array.parity_stats a in
  Alcotest.(check int) "missing-card reads went degraded"
    (List.length on_victim)
    ps.Storage.Array.degraded_reads;
  Alcotest.(check int) "and every one reconstructed"
    (List.length on_victim)
    ps.Storage.Array.reconstructed_reads;
  (* The array keeps taking writes — to missing-card blocks (folded into
     parity alone) and to fresh allocations, some of which route to the
     missing card. *)
  ignore (Storage.Array.write_block a blocks.(2));
  let fresh = Array.init 8 (fun _ -> Storage.Array.alloc a) in
  Array.iter (fun b -> ignore (Storage.Array.write_block a b)) fresh;
  advance engine (Time.span_s 1.0);
  Array.iter (fun b -> ignore (Storage.Array.read_block a b)) fresh;
  let ps = Storage.Array.parity_stats a in
  Alcotest.(check bool) "degraded writes folded into parity" true
    (ps.Storage.Array.degraded_writes > 0);
  (* Client counters stay clean right through: 16 + 2 + 1 + 8 writes. *)
  Alcotest.(check int) "client writes unpolluted by reconstruction" 27
    (Storage.Array.stats a).Storage.Manager.client_writes;
  (* A blank replacement card: background rebuild streams the contents
     back while the array stays usable, then health returns. *)
  Storage.Array.reinsert_card a ~card:victim;
  Alcotest.(check bool) "rebuilding" true
    (Storage.Array.health a = `Rebuilding victim);
  advance engine (Time.span_s 5.0);
  Alcotest.(check bool) "rebuild completed" true (Storage.Array.health a = `Healthy);
  let ps = Storage.Array.parity_stats a in
  Alcotest.(check bool) "blocks streamed back" true
    (ps.Storage.Array.rebuilt_blocks > 0);
  Alcotest.(check bool) "rebuild time recorded" true
    (ps.Storage.Array.last_rebuild <> None);
  Array.iter
    (fun b ->
      Alcotest.(check bool) (Printf.sprintf "block %d present" b) true
        (Storage.Array.block_exists a b);
      if Storage.Array.card_of_block a b = victim then
        Alcotest.(check bool)
          (Printf.sprintf "block %d durable on the fresh card" b)
          true
          (Storage.Array.segment_of_block a b <> None))
    (Array.append blocks fresh);
  (* Reads of the rebuilt card's blocks reach the card again. *)
  let reads_before =
    (Storage.Array.card_stats a victim).Storage.Manager.client_reads
  in
  ignore (Storage.Array.read_block a blocks.(2));
  Alcotest.(check int) "reads reach the fresh card" (reads_before + 1)
    (Storage.Array.card_stats a victim).Storage.Manager.client_reads

let test_degraded_crash_keeps_flushed_blocks () =
  (* Eject, then lose power: what parity made durable must come back.
     Every block here was flushed (data and parity) before the eject, so
     the remounted array still reaches all of them — and a replacement
     card arriving after the reboot rebuilds as usual. *)
  let engine, a = mk_array ~ncards:3 ~policy:(parity ()) () in
  let blocks = Array.init 12 (fun _ -> Storage.Array.alloc a) in
  Array.iter (fun b -> ignore (Storage.Array.write_block a b)) blocks;
  advance engine (Time.span_s 1.0);
  ignore (Storage.Array.eject_card ~surprise:true a ~card:2);
  let a', _span, _report = Storage.Array.crash_and_remount a in
  Alcotest.(check bool) "still degraded after the crash" true
    (Storage.Array.health a' = `Degraded 2);
  Array.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "flushed block %d survives eject + crash" b)
        true
        (Storage.Array.block_exists a' b);
      ignore (Storage.Array.read_block a' b))
    blocks;
  Storage.Array.reinsert_card a' ~card:2;
  advance engine (Time.span_s 5.0);
  Alcotest.(check bool) "rebuilt after the reboot" true
    (Storage.Array.health a' = `Healthy)

let test_reinsert_empty_card_completes_immediately () =
  (* Regression: reinserting a card that never held striped data used to
     schedule a rebuild_step for zero slots, leaving the array stuck in
     [`Rebuilding] until an engine event fired for no work.  An empty
     rebuild must complete at reinsert time. *)
  let _engine, a = mk_array ~ncards:3 ~policy:(parity ()) () in
  let victim = 1 in
  ignore (Storage.Array.eject_card ~surprise:true a ~card:victim);
  Alcotest.(check bool) "degraded" true (Storage.Array.health a = `Degraded victim);
  Storage.Array.reinsert_card a ~card:victim;
  (* No engine time has passed: health must already be restored. *)
  Alcotest.(check bool) "healthy immediately, no engine run" true
    (Storage.Array.health a = `Healthy);
  let ps = Storage.Array.parity_stats a in
  Alcotest.(check int) "nothing streamed" 0 ps.Storage.Array.rebuilt_blocks;
  Alcotest.(check (option (float 0.0))) "zero-length rebuild recorded" (Some 0.0)
    (Option.map Time.span_to_s ps.Storage.Array.last_rebuild);
  (* The array is fully serviceable again. *)
  let b = Storage.Array.alloc a in
  ignore (Storage.Array.write_block a b);
  ignore (Storage.Array.flush_all a)

(* --- Machine-level: config plumbing and multi-card runs. -------------------- *)

let small_trace ~seed ~secs =
  Trace.Synth.generate Trace.Workloads.pim ~rng:(Rng.create ~seed)
    ~duration:(Time.span_s secs)

let test_machine_cards1_uses_single_path () =
  let machine = Ssmc.Machine.create (Ssmc.Config.solid_state ~flash_mb:2 ~seed:3 ()) in
  (match Ssmc.Machine.store machine with
  | Some (Storage.Store.Single _) -> ()
  | Some (Storage.Store.Striped _) -> Alcotest.fail "cards=1 must mount Store.Single"
  | None -> Alcotest.fail "solid-state machine has no store");
  Alcotest.(check bool) "manager accessor works" true
    (Ssmc.Machine.manager machine <> None);
  Alcotest.(check bool) "flash accessor works" true (Ssmc.Machine.flash machine <> None);
  Alcotest.(check int) "one card" 1 (Array.length (Ssmc.Machine.flashes machine))

let test_machine_four_cards_smoke () =
  let cfg =
    Ssmc.Config.solid_state ~flash_mb:2 ~cards:4
      ~striping:(Storage.Striping.Round_robin { strip_blocks = 8 })
      ~front_cache_blocks:64 ~seed:3 ()
  in
  let machine = Ssmc.Machine.create cfg in
  (match Ssmc.Machine.store machine with
  | Some (Storage.Store.Striped a) ->
    Alcotest.(check int) "four cards" 4 (Storage.Array.ncards a)
  | _ -> Alcotest.fail "cards=4 must mount Store.Striped");
  Alcotest.(check bool) "no single manager" true (Ssmc.Machine.manager machine = None);
  Alcotest.(check bool) "no single flash" true (Ssmc.Machine.flash machine = None);
  Alcotest.(check int) "per-card devices" 4 (Array.length (Ssmc.Machine.flashes machine));
  let trace = small_trace ~seed:7 ~secs:20.0 in
  Ssmc.Machine.preload machine trace.Trace.Synth.initial_files;
  let result = Ssmc.Machine.run machine trace.Trace.Synth.records in
  Alcotest.(check bool) "ops applied" true (result.Ssmc.Machine.ops_applied > 0);
  (match result.Ssmc.Machine.manager_stats with
  | Some stats ->
    Alcotest.(check bool) "writes reached the array" true
      (stats.Storage.Manager.client_writes > 0)
  | None -> Alcotest.fail "multi-card run must report summed stats");
  Alcotest.(check bool) "lifetime extrapolated over all cards" true
    (result.Ssmc.Machine.lifetime_years <> None);
  Alcotest.(check bool) "energy accounted" true (result.Ssmc.Machine.energy_j > 0.0);
  (* The workload actually spread: more than one card saw client writes. *)
  (match Ssmc.Machine.store machine with
  | Some (Storage.Store.Striped a) ->
    let busy_cards = ref 0 in
    for card = 0 to 3 do
      if (Storage.Array.card_stats a card).Storage.Manager.client_writes > 0 then
        incr busy_cards
    done;
    Alcotest.(check bool) "writes striped across cards" true (!busy_cards > 1)
  | _ -> ());
  match Fs.Memfs.check (Option.get (Ssmc.Machine.memfs machine)) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "fsck on the 4-card machine: %s" msg

let test_machine_four_cards_cold_fault () =
  let cfg =
    Ssmc.Config.solid_state ~flash_mb:2 ~cards:4 ~backup_wh:0.0 ~seed:11 ()
  in
  let machine = Ssmc.Machine.create cfg in
  let memfs = Option.get (Ssmc.Machine.memfs machine) in
  (match Fs.Memfs.mkdir memfs "/data" with
  | Ok _ | Error Fs.Fs_error.Eexist -> ()
  | Error e -> Alcotest.failf "mkdir: %s" (Fmt.str "%a" Fs.Fs_error.pp e));
  for i = 0 to 7 do
    let path = Printf.sprintf "/data/f%d" i in
    (match Fs.Memfs.create memfs path with
    | Ok _ | Error Fs.Fs_error.Eexist -> ()
    | Error e -> Alcotest.failf "create: %s" (Fmt.str "%a" Fs.Fs_error.pp e));
    match Fs.Memfs.write memfs path ~offset:0 ~bytes:2048 with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "write: %s" (Fmt.str "%a" Fs.Fs_error.pp e)
  done;
  let dirty =
    match Ssmc.Machine.store machine with
    | Some s -> (Storage.Store.stats s).Storage.Manager.dirty_blocks
    | None -> 0
  in
  let o = Ssmc.Machine.inject_fault machine Fault.Battery_depletion in
  Alcotest.(check bool) "cold restart" true o.Ssmc.Machine.cold_restart;
  Alcotest.(check int) "dirty counted across cards" dirty o.Ssmc.Machine.dirty_at_fault;
  Alcotest.(check bool) "loss bounded by the buffers" true
    (o.Ssmc.Machine.blocks_lost <= dirty);
  (match o.Ssmc.Machine.remount with
  | Some r ->
    Alcotest.(check int) "summed report matches" dirty r.Storage.Manager.buffered_lost
  | None -> Alcotest.fail "cold restart must carry a remount report");
  (* Every card came back behind a fresh striped store. *)
  (match Ssmc.Machine.store machine with
  | Some (Storage.Store.Striped _) -> ()
  | _ -> Alcotest.fail "remounted machine must still be striped");
  match Fs.Memfs.check (Option.get (Ssmc.Machine.memfs machine)) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "fsck after 4-card cold restart: %s" msg

let test_machine_card_eject_reinsert () =
  (* The acceptance story end to end: a 3-card parity machine loses a
     card without warning mid-life; every file stays readable (reads
     reconstruct), the namespace never notices, and a replacement card
     rebuilds back to full health under the same file system. *)
  let cfg =
    Ssmc.Config.solid_state ~flash_mb:2 ~cards:3
      ~striping:(Storage.Striping.Parity { strip_blocks = 4; rotate = true })
      ~front_cache_blocks:16 ~seed:5 ()
  in
  let machine = Ssmc.Machine.create cfg in
  let memfs = Option.get (Ssmc.Machine.memfs machine) in
  let engine = Ssmc.Machine.engine machine in
  (match Fs.Memfs.mkdir memfs "/data" with
  | Ok _ | Error Fs.Fs_error.Eexist -> ()
  | Error e -> Alcotest.failf "mkdir: %s" (Fmt.str "%a" Fs.Fs_error.pp e));
  for i = 0 to 11 do
    let path = Printf.sprintf "/data/f%d" i in
    (match Fs.Memfs.create memfs path with
    | Ok _ | Error Fs.Fs_error.Eexist -> ()
    | Error e -> Alcotest.failf "create: %s" (Fmt.str "%a" Fs.Fs_error.pp e));
    match Fs.Memfs.write memfs path ~offset:0 ~bytes:2048 with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "write: %s" (Fmt.str "%a" Fs.Fs_error.pp e)
  done;
  Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 1.0));
  let files () = List.map (fun (p, s, _) -> (p, s)) (Fs.Memfs.enumerate memfs) in
  let all_readable ctx =
    List.iter
      (fun (path, size, _) ->
        match Fs.Memfs.read memfs path ~offset:0 ~bytes:size with
        | Ok _ -> ()
        | Error e ->
          Alcotest.failf "%s: %s unreadable: %s" ctx path
            (Fmt.str "%a" Fs.Fs_error.pp e))
      (Fs.Memfs.enumerate memfs)
  in
  let fsck ctx =
    match Fs.Memfs.check memfs with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "fsck %s: %s" ctx msg
  in
  all_readable "before the eject";
  fsck "before the eject";
  let before = files () in
  let o =
    Ssmc.Machine.inject_fault machine (Fault.Card_eject { card = 1; surprise = true })
  in
  Alcotest.(check bool) "parity carried the eject" true
    (o.Ssmc.Machine.survived_by = `Parity);
  Alcotest.(check int) "no blocks lost" 0 o.Ssmc.Machine.blocks_lost;
  Alcotest.(check bool) "no restart" false o.Ssmc.Machine.cold_restart;
  (match Ssmc.Machine.store machine with
  | Some s ->
    Alcotest.(check bool) "store degraded" true
      (Storage.Store.health s = `Degraded 1)
  | None -> Alcotest.fail "solid-state machine lost its store");
  Alcotest.(check bool) "namespace untouched" true (files () = before);
  all_readable "degraded";
  fsck "while degraded";
  let o2 = Ssmc.Machine.inject_fault machine (Fault.Card_reinsert { card = 1 }) in
  Alcotest.(check bool) "reinsert is a parity event" true
    (o2.Ssmc.Machine.survived_by = `Parity);
  Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 10.0));
  (match Ssmc.Machine.store machine with
  | Some s ->
    Alcotest.(check bool) "rebuild completed" true (Storage.Store.health s = `Healthy);
    (match Storage.Store.parity_stats s with
    | Some ps ->
      Alcotest.(check bool) "blocks rebuilt" true
        (ps.Storage.Array.rebuilt_blocks > 0)
    | None -> Alcotest.fail "parity array must report parity stats")
  | None -> Alcotest.fail "solid-state machine lost its store");
  all_readable "after the rebuild";
  fsck "after the rebuild"

let suite =
  [
    Alcotest.test_case "striping: dense local handles round-trip" `Quick
      test_striping_dense_roundtrip;
    Alcotest.test_case "striping: strips rotate across cards" `Quick
      test_striping_spreads_strips;
    Alcotest.test_case "striping: validation" `Quick test_striping_validate;
    Alcotest.test_case "striping: parity geometry by hand" `Quick
      test_parity_placement;
    qcheck_striping_roundtrip;
    Alcotest.test_case "front cache: counting contract" `Quick test_front_cache_contract;
    Alcotest.test_case "front cache: lookup commits nothing on a miss" `Quick
      test_front_cache_lookup_commits_nothing;
    Alcotest.test_case "front cache: zero capacity passes through" `Quick
      test_front_cache_zero_capacity;
    Alcotest.test_case "one-card array is byte-identical to the manager" `Quick
      test_one_card_array_is_byte_identical;
    Alcotest.test_case "multi-card placement and per-card stats" `Quick
      test_multi_card_placement;
    Alcotest.test_case "front cache serves hot cross-card reads" `Quick
      test_front_cache_serves_hot_reads;
    Alcotest.test_case "crash wipes the front cache" `Quick test_crash_wipes_front_cache;
    Alcotest.test_case "crash re-aligns uneven card cursors" `Quick
      test_crash_realigns_card_cursors;
    Alcotest.test_case "raising read leaves nothing resident" `Quick
      test_raising_read_leaves_nothing_resident;
    Alcotest.test_case "parity: maintenance stays out of client stats" `Quick
      test_parity_maintains_stats;
    Alcotest.test_case "parity: eject, degraded service, rebuild" `Quick
      test_eject_degraded_reinsert_rebuild;
    Alcotest.test_case "parity: crash while degraded keeps flushed blocks" `Quick
      test_degraded_crash_keeps_flushed_blocks;
    Alcotest.test_case "parity: reinsert of a never-written card is instant" `Quick
      test_reinsert_empty_card_completes_immediately;
    Alcotest.test_case "machine: card eject and reinsert under parity" `Quick
      test_machine_card_eject_reinsert;
    Alcotest.test_case "machine: cards=1 mounts the single-manager path" `Quick
      test_machine_cards1_uses_single_path;
    Alcotest.test_case "machine: 4-card run end to end" `Quick
      test_machine_four_cards_smoke;
    Alcotest.test_case "machine: 4-card cold fault" `Quick
      test_machine_four_cards_cold_fault;
  ]
