(* The Domain pool's contract: observational equivalence with List.map at
   every job count, submission-order results, deterministic failures, and
   end-to-end equivalence of a pooled experiment sweep. *)
open Sim

let job_counts = [ 1; 2; 3; 4; 8 ]

(* A work function with per-item randomness derived the way pool clients
   are told to: an index-keyed split, no shared generator. *)
let keyed_work base_seed i =
  let rng = Rng.split_ix (Rng.create ~seed:base_seed) ~index:i in
  Int64.to_int (Int64.logand (Rng.bits64 rng) 0xFFFFFFL) + i

let test_map_equiv_list_map () =
  let f x = (x * x) - (3 * x) in
  List.iter
    (fun n ->
      let items = List.init n (fun i -> i - 7) in
      let expect = List.map f items in
      List.iter
        (fun jobs ->
          Alcotest.(check (list int))
            (Printf.sprintf "map n=%d jobs=%d" n jobs)
            expect
            (Pool.run_map ~jobs f items))
        job_counts)
    [ 0; 1; 2; 5; 64; 257 ]

let test_mapi_order () =
  let items = List.init 100 (fun i -> 100 - i) in
  List.iter
    (fun jobs ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "mapi keeps submission order, jobs=%d" jobs)
        (List.mapi (fun i x -> (i, x)) items)
        (Pool.run_mapi ~jobs (fun i x -> (i, x)) items))
    job_counts

let test_chunked () =
  let items = List.init 129 (fun i -> keyed_work 41 i) in
  let expect = List.map succ items in
  List.iter
    (fun chunk ->
      Pool.with_pool ~jobs:4 (fun pool ->
          Alcotest.(check (list int))
            (Printf.sprintf "chunk=%d" chunk)
            expect
            (Pool.map ~chunk pool succ items)))
    [ 1; 2; 7; 64; 1000 ]

let test_map_array () =
  let items = Array.init 83 (fun i -> keyed_work 43 i) in
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (array int))
        "map_array ≡ Array.map" (Array.map succ items)
        (Pool.map_array pool succ items))

let test_map_reduce_in_order () =
  (* A non-associative, non-commutative combine: order differences would
     show immediately in the result string. *)
  let items = List.init 40 (fun i -> keyed_work 47 i) in
  let combine acc v = acc ^ "," ^ string_of_int v in
  let expect = List.fold_left (fun acc x -> combine acc (x * 2)) "r" items in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check string)
            (Printf.sprintf "map_reduce in order, jobs=%d" jobs)
            expect
            (Pool.map_reduce pool ~map:(fun x -> x * 2) ~combine ~init:"r" items)))
    job_counts

exception Boom of int

let test_first_failure_wins () =
  (* Items 5 and 23 both fail; every job count must re-raise index 5's. *)
  let f x = if x = 5 || x = 23 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "first failure, jobs=%d" jobs)
        (Boom 5)
        (fun () -> ignore (Pool.run_map ~jobs f (List.init 40 Fun.id))))
    job_counts

let test_shutdown () =
  let pool = Pool.create ~jobs:2 () in
  Alcotest.(check int) "jobs" 2 (Pool.jobs pool);
  Alcotest.(check (list int)) "usable" [ 2; 4 ] (Pool.map pool (fun x -> x * 2) [ 1; 2 ]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "use after shutdown" (Invalid_argument "Pool: pool is shut down")
    (fun () -> ignore (Pool.map pool succ [ 1; 2; 3 ]))

let test_pool_reuse () =
  (* One pool across many batches, interleaved sizes. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun n ->
          let items = List.init n (fun i -> keyed_work 53 i) in
          Alcotest.(check (list int))
            (Printf.sprintf "batch n=%d" n)
            (List.map succ items) (Pool.map pool succ items))
        [ 64; 1; 0; 31; 128; 3 ])

let prop_map_matches_all_job_counts =
  QCheck.Test.make ~name:"pool: map ≡ List.map at jobs 1 and 4" ~count:50
    QCheck.(pair small_int (small_list int))
    (fun (salt, items) ->
      let f x = (x * 31) + salt in
      let expect = List.map f items in
      Pool.run_map ~jobs:1 f items = expect && Pool.run_map ~jobs:4 f items = expect)

(* End-to-end: a pooled experiment sweep is byte-identical at any job
   count, including the point records' floats. *)
let test_sweep_job_count_equivalence () =
  let sweep jobs =
    Ssmc.Sizing.sweep ~budget_dollars:800.0 ~fractions:[ 0.1; 0.3; 0.5 ]
      ~duration:(Time.span_s 20.0) ~jobs
      ~profile:{ Trace.Workloads.pim with Trace.Synth.population = 25 }
      ()
  in
  let sequential = sweep 1 in
  Alcotest.(check int) "three points" 3 (List.length sequential);
  List.iter
    (fun jobs ->
      (* Polymorphic compare: float fields must match bit-for-bit (nan
         compares equal to itself here, which is what we want for
         out-of-space points). *)
      Alcotest.(check bool)
        (Printf.sprintf "sweep jobs=%d ≡ jobs=1" jobs)
        true
        (Stdlib.compare sequential (sweep jobs) = 0))
    [ 2; 3; 8 ]

let suite =
  [
    Alcotest.test_case "map ≡ List.map" `Quick test_map_equiv_list_map;
    Alcotest.test_case "mapi order" `Quick test_mapi_order;
    Alcotest.test_case "chunked" `Quick test_chunked;
    Alcotest.test_case "map_array" `Quick test_map_array;
    Alcotest.test_case "map_reduce in order" `Quick test_map_reduce_in_order;
    Alcotest.test_case "first failure wins" `Quick test_first_failure_wins;
    Alcotest.test_case "shutdown" `Quick test_shutdown;
    Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
    QCheck_alcotest.to_alcotest prop_map_matches_all_job_counts;
    Alcotest.test_case "sweep equivalence across job counts" `Slow
      test_sweep_job_count_equivalence;
  ]
