open Sim

let record at op = { Trace.Record.at = Time.of_ns at; op }

let w file offset bytes = Trace.Record.Write { file; offset; bytes }
let r file offset bytes = Trace.Record.Read { file; offset; bytes }

(* --- Record helpers ------------------------------------------------------- *)

let test_record_accessors () =
  let rec1 = record 5 (w 3 0 100) in
  Alcotest.(check int) "file" 3 (Trace.Record.file rec1);
  Alcotest.(check int) "bytes written" 100 (Trace.Record.bytes_written rec1);
  Alcotest.(check int) "bytes read" 0 (Trace.Record.bytes_read rec1);
  Alcotest.(check bool) "data op" true (Trace.Record.is_data_op rec1);
  let rec2 = record 9 (Trace.Record.Delete { file = 7 }) in
  Alcotest.(check int) "delete file" 7 (Trace.Record.file rec2);
  Alcotest.(check bool) "not data op" false (Trace.Record.is_data_op rec2);
  Alcotest.(check bool) "time order" true (Trace.Record.compare_by_time rec1 rec2 < 0)

(* --- Compiled form ----------------------------------------------------------- *)

let test_compile_roundtrip () =
  (* Lowering to struct-of-arrays and reconstructing gives back the exact
     records, across every op shape and across the growth boundary. *)
  let many =
    List.init 3000 (fun i ->
        match i mod 5 with
        | 0 -> record i (Trace.Record.Create { file = i })
        | 1 -> record i (w i (i * 3) (i + 7))
        | 2 -> record i (r i (i * 2) (i + 1))
        | 3 -> record i (Trace.Record.Truncate { file = i; size = i * 11 })
        | _ -> record i (Trace.Record.Delete { file = i }))
  in
  let c = Trace.Replay.Compiled.compile many in
  Alcotest.(check int) "length" (List.length many) (Trace.Replay.Compiled.length c);
  List.iteri
    (fun i orig ->
      let back = Trace.Replay.Compiled.record c i in
      if back <> orig then
        Alcotest.failf "record %d did not round-trip: %a" i Trace.Record.pp back)
    many

(* --- Text format ------------------------------------------------------------ *)

let all_op_shapes =
  [
    record 1 (Trace.Record.Create { file = 1 });
    record 2 (w 1 0 512);
    record 3 (r 1 512 1024);
    record 4 (Trace.Record.Truncate { file = 1; size = 100 });
    record 5 (Trace.Record.Delete { file = 1 });
  ]

let test_format_roundtrip () =
  List.iter
    (fun rec_ ->
      let line = Trace.Format_io.to_line rec_ in
      match Trace.Format_io.of_line line with
      | Ok (Some back) ->
        Alcotest.(check string) "roundtrip" line (Trace.Format_io.to_line back)
      | Ok None -> Alcotest.fail "round-tripped to nothing"
      | Error e -> Alcotest.fail e)
    all_op_shapes

let test_format_comments_and_errors () =
  Alcotest.(check bool) "comment skipped" true (Trace.Format_io.of_line "# hi" = Ok None);
  Alcotest.(check bool) "blank skipped" true (Trace.Format_io.of_line "   " = Ok None);
  (match Trace.Format_io.of_line "1 frobnicate 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Trace.Format_io.of_line "xyz write 1 2 3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad integer accepted"

let test_format_file_io () =
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.Format_io.write_file path all_op_shapes;
      match Trace.Format_io.read_file path with
      | Ok records ->
        Alcotest.(check int) "count" (List.length all_op_shapes) (List.length records);
        List.iter2
          (fun a b ->
            Alcotest.(check string) "same" (Trace.Format_io.to_line a)
              (Trace.Format_io.to_line b))
          all_op_shapes records
      | Error e -> Alcotest.fail e)

let test_init_directives () =
  Alcotest.(check string) "render" "#init 7 1234" (Trace.Format_io.init_directive 7 1234);
  Alcotest.(check (option (pair int int))) "parse" (Some (7, 1234))
    (Trace.Format_io.parse_init "#init 7 1234");
  Alcotest.(check (option (pair int int))) "plain comment is not init" None
    (Trace.Format_io.parse_init "# hello");
  Alcotest.(check (option (pair int int))) "malformed" None
    (Trace.Format_io.parse_init "#init x y");
  (* A file written with directives round-trips both parts, and plain
     read_file still sees only the records. *)
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.Format_io.write_file ~initial_files:[ (0, 100); (1, 200) ] path all_op_shapes;
      (match Trace.Format_io.read_file_with_init path with
      | Ok (inits, records) ->
        Alcotest.(check (list (pair int int))) "inits" [ (0, 100); (1, 200) ] inits;
        Alcotest.(check int) "records" (List.length all_op_shapes) (List.length records)
      | Error e -> Alcotest.fail e);
      match Trace.Format_io.read_file path with
      | Ok records ->
        Alcotest.(check int) "directives are comments to read_file"
          (List.length all_op_shapes) (List.length records)
      | Error e -> Alcotest.fail e)

(* --- Synthetic generator ------------------------------------------------------ *)

let generate ?(profile = Trace.Workloads.engineering) ?(seed = 3) ?(secs = 120.0) () =
  Trace.Synth.generate profile ~rng:(Rng.create ~seed) ~duration:(Time.span_s secs)

let test_synth_time_ordered () =
  let t = generate () in
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "non-decreasing" true
        (Trace.Record.compare_by_time a b <= 0);
      check_sorted rest
    | [ _ ] | [] -> ()
  in
  check_sorted t.Trace.Synth.records

let test_synth_determinism () =
  let a = generate ~seed:5 () and b = generate ~seed:5 () in
  Alcotest.(check int) "same record count"
    (List.length a.Trace.Synth.records)
    (List.length b.Trace.Synth.records);
  List.iter2
    (fun x y ->
      Alcotest.(check string) "identical records" (Trace.Format_io.to_line x)
        (Trace.Format_io.to_line y))
    a.Trace.Synth.records b.Trace.Synth.records

let test_synth_ops_well_formed () =
  let t = generate () in
  let live = Hashtbl.create 64 in
  List.iter (fun (id, _) -> Hashtbl.replace live id ()) t.Trace.Synth.initial_files;
  List.iter
    (fun rec_ ->
      match rec_.Trace.Record.op with
      | Trace.Record.Create { file } ->
        Alcotest.(check bool) "create of fresh id" false (Hashtbl.mem live file);
        Hashtbl.replace live file ()
      | Trace.Record.Delete { file } ->
        Alcotest.(check bool) "delete of live file" true (Hashtbl.mem live file);
        Hashtbl.remove live file
      | Trace.Record.Write { file; offset; bytes } ->
        Alcotest.(check bool) "write to live file" true (Hashtbl.mem live file);
        Alcotest.(check bool) "sane range" true (offset >= 0 && bytes > 0)
      | Trace.Record.Read { file; offset; bytes } ->
        Alcotest.(check bool) "read of live file" true (Hashtbl.mem live file);
        Alcotest.(check bool) "sane range" true (offset >= 0 && bytes > 0)
      | Trace.Record.Truncate { file; size } ->
        Alcotest.(check bool) "truncate of live file" true (Hashtbl.mem live file);
        Alcotest.(check bool) "non-negative size" true (size >= 0))
    t.Trace.Synth.records

let test_synth_fresh_ids () =
  let t = generate () in
  let first = Trace.Synth.first_fresh_file t in
  Alcotest.(check int) "population boundary"
    t.Trace.Synth.profile.Trace.Synth.population first;
  List.iter
    (fun rec_ ->
      match rec_.Trace.Record.op with
      | Trace.Record.Create { file } ->
        Alcotest.(check bool) "created ids above population" true (file >= first)
      | _ -> ())
    t.Trace.Synth.records

let test_validate_profiles () =
  List.iter
    (fun p ->
      match Trace.Synth.validate p with
      | Ok () -> ()
      | Error e -> Alcotest.failf "profile %s invalid: %s" p.Trace.Synth.name e)
    Trace.Workloads.all;
  let bad = { Trace.Workloads.engineering with Trace.Synth.read_fraction = 1.5 } in
  match Trace.Synth.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad profile accepted"

let test_workload_lookup () =
  Alcotest.(check bool) "find engineering" true (Trace.Workloads.find "engineering" <> None);
  Alcotest.(check bool) "find nothing" true (Trace.Workloads.find "nope" = None);
  Alcotest.(check int) "four profiles" 4 (List.length Trace.Workloads.all)

(* --- Stats --------------------------------------------------------------------- *)

let test_summarize () =
  let records =
    [
      record 0 (Trace.Record.Create { file = 1 });
      record 10 (w 1 0 1000);
      record 20 (r 1 0 500);
      record 30 (Trace.Record.Delete { file = 1 });
    ]
  in
  let s = Trace.Stats.summarize records in
  Alcotest.(check int) "ops" 4 s.Trace.Stats.ops;
  Alcotest.(check int) "writes" 1 s.Trace.Stats.writes;
  Alcotest.(check int) "bytes written" 1000 s.Trace.Stats.bytes_written;
  Alcotest.(check int) "bytes read" 500 s.Trace.Stats.bytes_read;
  Alcotest.(check int) "files" 1 s.Trace.Stats.distinct_files;
  Alcotest.(check int) "duration" 30 (Time.span_to_ns s.Trace.Stats.duration)

let sec n = Time.of_ns (n * 1_000_000_000)

let test_write_death_by_delete () =
  (* 512B written, file deleted 5s later: dead within a 30s window. *)
  let records =
    [
      { Trace.Record.at = sec 0; op = w 1 0 512 };
      { Trace.Record.at = sec 5; op = Trace.Record.Delete { file = 1 } };
    ]
  in
  let d = Trace.Stats.write_death records ~window:(Time.span_s 30.0) in
  Alcotest.(check int) "written" 512 d.Trace.Stats.written_bytes;
  Alcotest.(check int) "dead" 512 d.Trace.Stats.dead_bytes;
  Alcotest.(check (float 1e-9)) "fraction" 1.0 d.Trace.Stats.dead_fraction

let test_write_death_by_overwrite () =
  let records =
    [
      { Trace.Record.at = sec 0; op = w 1 0 512 };
      { Trace.Record.at = sec 10; op = w 1 0 512 };  (* kills the first *)
      { Trace.Record.at = sec 50; op = w 1 0 512 };  (* second dies outside window *)
    ]
  in
  let d = Trace.Stats.write_death records ~window:(Time.span_s 30.0) in
  Alcotest.(check int) "written" 1536 d.Trace.Stats.written_bytes;
  Alcotest.(check int) "only the first death counts" 512 d.Trace.Stats.dead_bytes

let test_write_death_by_truncate () =
  let records =
    [
      { Trace.Record.at = sec 0; op = w 1 0 1024 };
      { Trace.Record.at = sec 1; op = Trace.Record.Truncate { file = 1; size = 512 } };
    ]
  in
  let d = Trace.Stats.write_death records ~window:(Time.span_s 30.0) in
  Alcotest.(check int) "tail died" 512 d.Trace.Stats.dead_bytes

let test_write_death_survivors () =
  let records = [ { Trace.Record.at = sec 0; op = w 1 0 2048 } ] in
  let d = Trace.Stats.write_death records ~window:(Time.span_s 30.0) in
  Alcotest.(check int) "nothing died" 0 d.Trace.Stats.dead_bytes;
  Alcotest.(check (float 1e-9)) "fraction 0" 0.0 d.Trace.Stats.dead_fraction

let test_engineering_death_fraction_matches_baker () =
  (* The Sprite-calibrated workload should have roughly half its written
     bytes dead within 30s — the premise of the paper's 40-50% claim. *)
  let t = generate ~secs:900.0 () in
  let d = Trace.Stats.write_death t.Trace.Synth.records ~window:(Time.span_s 30.0) in
  Alcotest.(check bool)
    (Printf.sprintf "death fraction %.2f in [0.35, 0.70]" d.Trace.Stats.dead_fraction)
    true
    (d.Trace.Stats.dead_fraction >= 0.35 && d.Trace.Stats.dead_fraction <= 0.70)

(* --- Replay ---------------------------------------------------------------------- *)

let test_replay_advances_clock () =
  let engine = Engine.create () in
  let records = [ record 100 (w 1 0 512); record 300 (r 1 0 512) ] in
  let seen = ref [] in
  Trace.Replay.run engine records ~f:(fun e rec_ ->
      seen := (Time.to_ns (Engine.now e), Trace.Record.file rec_) :: !seen);
  Alcotest.(check (list (pair int int)))
    "applied at the record instants"
    [ (100, 1); (300, 1) ]
    (List.rev !seen)

let test_replay_runs_due_events () =
  let engine = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule engine ~at:(Time.of_ns 50) (fun _ -> fired := true));
  Trace.Replay.run engine [ record 100 (w 1 0 1) ] ~f:(fun _ _ -> ());
  Alcotest.(check bool) "event before record fired" true !fired

(* --- Streaming ------------------------------------------------------------------- *)

let lines records = List.map Trace.Format_io.to_line records

let test_stream_equals_list () =
  (* The streamed generator must sample the RNG in exactly the eager
     order: same seed, byte-identical trace, for every workload. *)
  List.iter
    (fun profile ->
      let duration = Time.span_s 120.0 in
      let eager = Trace.Synth.generate profile ~rng:(Rng.create ~seed:9) ~duration in
      let streamed =
        Trace.Synth.generate_seq profile ~rng:(Rng.create ~seed:9) ~duration
      in
      Alcotest.(check (list (pair int int)))
        (profile.Trace.Synth.name ^ " initial files")
        eager.Trace.Synth.initial_files streamed.Trace.Synth.stream_initial_files;
      Alcotest.(check int)
        (profile.Trace.Synth.name ^ " fresh-id boundary")
        (Trace.Synth.first_fresh_file eager)
        (Trace.Synth.stream_first_fresh_file streamed);
      Alcotest.(check (list string))
        (profile.Trace.Synth.name ^ " records")
        (lines eager.Trace.Synth.records)
        (lines (List.of_seq streamed.Trace.Synth.seq)))
    Trace.Workloads.all

let test_stream_summary_equals_list () =
  let duration = Time.span_s 300.0 in
  let eager =
    Trace.Synth.generate Trace.Workloads.engineering ~rng:(Rng.create ~seed:13) ~duration
  in
  let streamed =
    Trace.Synth.generate_seq Trace.Workloads.engineering ~rng:(Rng.create ~seed:13)
      ~duration
  in
  let a = Trace.Stats.summarize eager.Trace.Synth.records in
  let b = Trace.Stats.summarize_seq streamed.Trace.Synth.seq in
  Alcotest.(check bool) "identical summaries" true (a = b)

let test_stream_file_roundtrip () =
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let inits = [ (0, 100); (1, 200) ] in
      let n =
        Trace.Format_io.write_file_seq ~initial_files:inits path
          (List.to_seq all_op_shapes)
      in
      Alcotest.(check int) "write_file_seq count" (List.length all_op_shapes) n;
      (* The streamed writer produces what the eager writer produced. *)
      let eager_path = Filename.temp_file "trace" ".txt" in
      Fun.protect
        ~finally:(fun () -> Sys.remove eager_path)
        (fun () ->
          Trace.Format_io.write_file ~initial_files:inits eager_path all_op_shapes;
          let slurp p = In_channel.with_open_text p In_channel.input_all in
          Alcotest.(check string) "byte-identical file" (slurp eager_path) (slurp path));
      (* read_seq sees both parts. *)
      let seen_inits = ref [] in
      let back =
        In_channel.with_open_text path (fun ic ->
            List.of_seq
              (Trace.Format_io.read_seq
                 ~on_init:(fun init -> seen_inits := init :: !seen_inits)
                 ic))
      in
      Alcotest.(check (list (pair int int))) "inits" inits (List.rev !seen_inits);
      Alcotest.(check (list string)) "records" (lines all_op_shapes) (lines back);
      (* fold_channel folds every record, in order. *)
      match
        In_channel.with_open_text path (fun ic ->
            Trace.Format_io.fold_channel ic ~init:0 ~f:(fun n _ -> n + 1))
      with
      | Ok n -> Alcotest.(check int) "fold count" (List.length all_op_shapes) n
      | Error e -> Alcotest.fail e)

let test_stream_read_errors () =
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "# fine\n1 write 1 0 512\n2 frobnicate 9\n");
      (match
         In_channel.with_open_text path (fun ic ->
             Trace.Format_io.fold_channel ic ~init:0 ~f:(fun n _ -> n + 1))
       with
      | Ok _ -> Alcotest.fail "garbage accepted"
      | Error e ->
        Alcotest.(check bool) ("error cites the line: " ^ e) true
          (String.length e >= 7 && String.sub e 0 7 = "line 3:"));
      match
        In_channel.with_open_text path (fun ic ->
            List.of_seq (Trace.Format_io.read_seq ic))
      with
      | exception Failure e ->
        Alcotest.(check bool) ("read_seq raises with line: " ^ e) true
          (String.length e >= 7 && String.sub e 0 7 = "line 3:")
      | _ -> Alcotest.fail "read_seq accepted garbage")

let suite =
  [
    Alcotest.test_case "record accessors" `Quick test_record_accessors;
    Alcotest.test_case "format roundtrip" `Quick test_format_roundtrip;
    Alcotest.test_case "format comments/errors" `Quick test_format_comments_and_errors;
    Alcotest.test_case "format file io" `Quick test_format_file_io;
    Alcotest.test_case "init directives" `Quick test_init_directives;
    Alcotest.test_case "synth time-ordered" `Quick test_synth_time_ordered;
    Alcotest.test_case "synth deterministic" `Quick test_synth_determinism;
    Alcotest.test_case "synth well-formed" `Quick test_synth_ops_well_formed;
    Alcotest.test_case "synth fresh ids" `Quick test_synth_fresh_ids;
    Alcotest.test_case "profiles validate" `Quick test_validate_profiles;
    Alcotest.test_case "workload lookup" `Quick test_workload_lookup;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "death by delete" `Quick test_write_death_by_delete;
    Alcotest.test_case "death by overwrite" `Quick test_write_death_by_overwrite;
    Alcotest.test_case "death by truncate" `Quick test_write_death_by_truncate;
    Alcotest.test_case "survivors" `Quick test_write_death_survivors;
    Alcotest.test_case "Baker death fraction" `Slow test_engineering_death_fraction_matches_baker;
    Alcotest.test_case "compile roundtrip" `Quick test_compile_roundtrip;
    Alcotest.test_case "replay clock" `Quick test_replay_advances_clock;
    Alcotest.test_case "replay due events" `Quick test_replay_runs_due_events;
    Alcotest.test_case "stream equals list" `Quick test_stream_equals_list;
    Alcotest.test_case "stream summary equals list" `Quick test_stream_summary_equals_list;
    Alcotest.test_case "stream file roundtrip" `Quick test_stream_file_roundtrip;
    Alcotest.test_case "stream read errors" `Quick test_stream_read_errors;
  ]
