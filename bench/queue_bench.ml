(* Wall-clock rates of the event-queue implementations (binary heap vs
   hierarchical timing wheel) across pending-set sizes.

   Three stages per (kind, pending) point, each in steady state:

   - fill:   add [n] events with uniformly random future instants;
   - churn:  the simulator's inner loop — pop the earliest event,
             reschedule one at a random later instant, pending count
             constant at [n];
   - cancel: add a batch of extra events and cancel every handle (lazy
             cancellation: O(1) per call, reclaimed at pop).

   The heap's churn is O(log n) per op; the wheel's is amortized O(1), so
   the gap should widen with [n].  Wall-clock only — the paper has no
   number to match; this pins the library's own scaling. *)
open Sim

let pending_sizes =
  (* The 1e7 point holds ~10M live entries (~0.5 GB with the heap's array);
     QUICK caps at 1e6 so smoke runs stay small. *)
  if Common.quick then [ 1_000; 100_000; 1_000_000 ]
  else [ 1_000; 100_000; 10_000_000 ]

let churn_ops = if Common.quick then 100_000 else 400_000
let horizon_ns = 1_000_000_000

let bench_kind kind n =
  let rng = Rng.create ~seed:(n + 17) in
  let q = Event_queue.create ~kind () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    ignore (Event_queue.add q ~at:(Time.of_ns (Rng.int rng horizon_ns)) i)
  done;
  let fill_s = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to churn_ops do
    let at = Time.to_ns (Event_queue.peek_time_exn q) in
    let v = Event_queue.pop_exn q in
    ignore (Event_queue.add q ~at:(Time.of_ns (at + 1 + Rng.int rng horizon_ns)) v)
  done;
  let churn_s = Unix.gettimeofday () -. t0 in
  let base = Time.to_ns (Event_queue.peek_time_exn q) in
  let handles =
    Array.init churn_ops (fun i ->
        Event_queue.add q ~at:(Time.of_ns (base + 1 + Rng.int rng horizon_ns)) (n + i))
  in
  let t0 = Unix.gettimeofday () in
  Array.iter (Event_queue.cancel q) handles;
  let cancel_s = Unix.gettimeofday () -. t0 in
  (fill_s, churn_s, cancel_s)

let run () =
  Common.section "event queue: heap vs timing wheel (wall-clock churn rates)";
  let table =
    Table.create ~title:"million ops/s (higher is better)"
      ~columns:
        [
          ("queue", Table.Left);
          ("pending", Table.Right);
          ("fill", Table.Right);
          ("churn", Table.Right);
          ("cancel", Table.Right);
        ]
  in
  List.iter
    (fun kind ->
      List.iter
        (fun n ->
          let fill_s, churn_s, cancel_s = bench_kind kind n in
          let rate ops s = if s > 0.0 then float_of_int ops /. s else Float.infinity in
          let fill = rate n fill_s in
          let churn = rate churn_ops churn_s in
          let cancel = rate churn_ops cancel_s in
          let metric stage v =
            Common.put_metric
              (Printf.sprintf "queue_%s_%d_%s_ops_per_s" (Event_queue.kind_name kind) n
                 stage)
              v
          in
          metric "fill" fill;
          metric "churn" churn;
          metric "cancel" cancel;
          Table.add_row table
            [
              Event_queue.kind_name kind;
              string_of_int n;
              Printf.sprintf "%.2f" (fill /. 1e6);
              Printf.sprintf "%.2f" (churn /. 1e6);
              Printf.sprintf "%.2f" (cancel /. 1e6);
            ])
        pending_sizes)
    [ Event_queue.Heap; Event_queue.Wheel ];
  Table.print table;
  Common.note "churn = pop earliest + reschedule later, pending count constant"
