(* The experiment harness: regenerates every quantitative claim in the
   paper (experiments E1-E9, see DESIGN.md and EXPERIMENTS.md), plus
   wall-clock micro-benchmarks of the simulator itself.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- e6 e8   # selected experiments
     QUICK=1 dune exec bench/main.exe    # shorter runs for iteration

   --json FILE additionally writes machine-readable results: per
   experiment its wall-clock seconds and the headline metrics it
   recorded, plus the process peak RSS. *)

let experiments =
  [
    ("e1", "Section 2 device comparison", E1_devices.run);
    ("e2", "Section 2 technology trends", E2_trends.run);
    ("e3", "Section 3.1 memory-resident FS vs disk FS", E3_filesystem.run);
    ("e4", "Section 3.1 map-in-place and copy-on-write", E4_inplace.run);
    ("e5", "Section 3.2 execute-in-place", E5_xip.run);
    ("e6", "Section 3.3 DRAM write buffering", E6_write_buffer.run);
    ("e7", "Section 3.3 cleaning and wear leveling", E7_cleaning_wear.run);
    ("e8", "Section 3.3 bank partitioning", E8_banks.run);
    ("e9", "Section 4 DRAM/flash sizing", E9_sizing.run);
    ("e10", "Section 2 storage power and battery life", E10_battery.run);
    ("stream", "streaming replay: peak heap vs trace length", Stream.run);
    ("micro", "simulator micro-benchmarks", Micro.run);
  ]

(* Peak resident set of this process, in kB, from the kernel's
   high-water mark ("VmHWM:  12345 kB" in /proc/self/status). *)
let max_rss_kb () =
  try
    In_channel.with_open_text "/proc/self/status" (fun ic ->
        let rec scan () =
          match In_channel.input_line ic with
          | None -> None
          | Some line -> (
            try Some (Scanf.sscanf line "VmHWM: %d kB" Fun.id)
            with Scanf.Scan_failure _ | Failure _ | End_of_file -> scan ())
        in
        scan ())
  with Sys_error _ -> None

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.6g" v
  else Printf.sprintf "%S" (Float.to_string v)

let write_json path runs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"quick\": %b,\n  \"max_rss_kb\": %s,\n"
       Common.quick
       (match max_rss_kb () with Some kb -> string_of_int kb | None -> "null"));
  Buffer.add_string buf "  \"experiments\": [\n";
  List.iteri
    (fun i (name, descr, wall_s, metrics) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"experiment\": \"%s\", \"description\": \"%s\", \"wall_s\": %s,\n\
           \      \"metrics\": { "
           (json_escape name) (json_escape descr) (json_float wall_s));
      List.iteri
        (fun j (key, v) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "\"%s\": %s" (json_escape key) (json_float v)))
        metrics;
      Buffer.add_string buf " } }")
    runs;
  Buffer.add_string buf "\n  ]\n}\n";
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf))

let () =
  let json_path, picks =
    let rec split acc = function
      | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
      | [ "--json" ] ->
        Fmt.epr "--json needs a file argument@.";
        exit 2
      | arg :: rest -> split (arg :: acc) rest
      | [] -> (None, List.rev acc)
    in
    split [] (List.tl (Array.to_list Sys.argv))
  in
  let requested =
    match picks with
    | [] -> List.map (fun (name, _, _) -> name) experiments
    | picks -> picks
  in
  let unknown =
    List.filter (fun pick -> not (List.exists (fun (n, _, _) -> n = pick) experiments))
      requested
  in
  if unknown <> [] then begin
    Fmt.epr "unknown experiment(s): %a@.known: %a@."
      Fmt.(list ~sep:sp string)
      unknown
      Fmt.(list ~sep:sp string)
      (List.map (fun (n, _, _) -> n) experiments);
    exit 2
  end;
  Fmt.pr
    "Reproduction harness for 'Operating System Implications of Solid-State Mobile \
     Computers' (HotOS-IV 1993)@.";
  if Common.quick then Fmt.pr "(QUICK mode: shortened runs)@.";
  let runs =
    List.map
      (fun pick ->
        let _, descr, run = List.find (fun (n, _, _) -> n = pick) experiments in
        ignore (Common.take_metrics ());
        let t0 = Unix.gettimeofday () in
        run ();
        let wall_s = Unix.gettimeofday () -. t0 in
        (pick, descr, wall_s, Common.take_metrics ()))
      requested
  in
  (match json_path with
  | None -> ()
  | Some path ->
    write_json path runs;
    Fmt.pr "@.wrote machine-readable results to %s@." path);
  Fmt.pr "@.done.@."
