(* The experiment harness: regenerates every quantitative claim in the
   paper (experiments E1-E9, see DESIGN.md and EXPERIMENTS.md), plus
   wall-clock micro-benchmarks of the simulator itself.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- e6 e8   # selected experiments
     dune exec bench/main.exe -- --list  # print the experiment table
     QUICK=1 dune exec bench/main.exe    # shorter runs for iteration

   --jobs N sizes the Domain pool independent simulation points run on
   (default: SSMC_JOBS or the machine's core count); results are
   byte-identical at any job count.  --json FILE additionally writes
   machine-readable results: per experiment its wall-clock seconds and
   the headline metrics it recorded, plus the job count and the process
   peak RSS. *)

let experiments =
  [
    ("e1", "Section 2 device comparison", E1_devices.run);
    ("e2", "Section 2 technology trends", E2_trends.run);
    ("e3", "Section 3.1 memory-resident FS vs disk FS", E3_filesystem.run);
    ("e4", "Section 3.1 map-in-place and copy-on-write", E4_inplace.run);
    ("e5", "Section 3.2 execute-in-place", E5_xip.run);
    ("e6", "Section 3.3 DRAM write buffering", E6_write_buffer.run);
    ("e7", "Section 3.3 cleaning and wear leveling", E7_cleaning_wear.run);
    ("e8", "Section 3.3 bank partitioning", E8_banks.run);
    ("e9", "Section 4 DRAM/flash sizing", E9_sizing.run);
    ("e10", "Section 2 storage power and battery life", E10_battery.run);
    ("e11", "Section 3.3 fault injection and crash recovery", E11_faults.run);
    ("e12", "fleet-scale simulation: a device population in bounded memory", E12_fleet.run);
    ("e13", "striped multi-card storage arrays", E13_card_array.run);
    ("e14", "parity strips and degraded operation", E14_parity.run);
    ("e15", "page-differential logging trade-off", E15_diff_log.run);
    ("stream", "streaming replay: peak heap vs trace length", Stream.run);
    ("queue", "event queue: heap vs timing wheel churn rates", Queue_bench.run);
    ("replay", "replay drivers: interpreted vs compiled A/B", Replay_bench.run);
    ("storage", "storage manager: indexed structures vs scan reference", Storage_bench.run);
    ("micro", "simulator micro-benchmarks", Micro.run);
    ("pool", "Domain pool: parallel speedup and sequential overhead", Pool_bench.run);
    ("probe", "Sim.Probe: disabled-path overhead vs replay cost", Probe_bench.run);
  ]

(* Peak resident set of this process, in kB, from the kernel's
   high-water mark ("VmHWM:  12345 kB" in /proc/self/status). *)
let max_rss_kb () =
  try
    In_channel.with_open_text "/proc/self/status" (fun ic ->
        let rec scan () =
          match In_channel.input_line ic with
          | None -> None
          | Some line -> (
            try Some (Scanf.sscanf line "VmHWM: %d kB" Fun.id)
            with Scanf.Scan_failure _ | Failure _ | End_of_file -> scan ())
        in
        scan ())
  with Sys_error _ -> None

(* Emission goes through Sim.Json: numbers keep the %.6g format the
   snapshot comparisons rely on, and non-finite values become null instead
   of leaking "inf"/"nan" tokens no standard parser accepts. *)
let write_json path runs =
  let open Sim.Json in
  let doc =
    Obj
      [
        ("quick", Bool Common.quick);
        ("jobs", int (Sim.Pool.default_jobs ()));
        ( "max_rss_kb",
          match max_rss_kb () with Some kb -> int kb | None -> Null );
        ( "experiments",
          List
            (List.map
               (fun (name, descr, wall_s, metrics, probes) ->
                 Obj
                   [
                     ("experiment", String name);
                     ("description", String descr);
                     ("wall_s", number wall_s);
                     ( "metrics",
                       Obj (List.map (fun (key, v) -> (key, number v)) metrics) );
                     ("probes", Sim.Probe.Snapshot.to_json probes);
                   ])
               runs) );
      ]
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string doc);
      Out_channel.output_char oc '\n')

let print_experiment_table () =
  let t =
    Sim.Table.create ~title:"experiments"
      ~columns:[ ("name", Sim.Table.Left); ("description", Sim.Table.Left) ]
  in
  List.iter (fun (name, descr, _) -> Sim.Table.add_row t [ name; descr ]) experiments;
  Sim.Table.print t

let usage () =
  Fmt.epr "usage: main.exe [--list] [--jobs N] [--json FILE] [EXPERIMENT...]@.";
  exit 2

let () =
  let json_path, jobs, list_only, picks =
    let rec parse (json, jobs, list_only, picks) = function
      | "--json" :: path :: rest -> parse (Some path, jobs, list_only, picks) rest
      | [ "--json" ] ->
        Fmt.epr "--json needs a file argument@.";
        usage ()
      | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> parse (json, Some j, list_only, picks) rest
        | _ ->
          Fmt.epr "--jobs needs a positive integer, got %S@." n;
          usage ())
      | [ "--jobs" ] ->
        Fmt.epr "--jobs needs an argument@.";
        usage ()
      | "--list" :: rest -> parse (json, jobs, true, picks) rest
      | arg :: rest -> parse (json, jobs, list_only, arg :: picks) rest
      | [] -> (json, jobs, list_only, List.rev picks)
    in
    parse (None, None, false, []) (List.tl (Array.to_list Sys.argv))
  in
  if list_only then begin
    print_experiment_table ();
    exit 0
  end;
  Option.iter Sim.Pool.set_default_jobs jobs;
  let requested =
    match picks with
    | [] -> List.map (fun (name, _, _) -> name) experiments
    | picks -> picks
  in
  (* One lookup per pick; unknown names are collected, not re-searched. *)
  let resolved =
    List.map
      (fun pick -> (pick, List.find_opt (fun (n, _, _) -> n = pick) experiments))
      requested
  in
  let unknown = List.filter_map (fun (p, r) -> if r = None then Some p else None) resolved in
  if unknown <> [] then begin
    Fmt.epr "unknown experiment(s): %a@.known: %a@."
      Fmt.(list ~sep:sp string)
      unknown
      Fmt.(list ~sep:sp string)
      (List.map (fun (n, _, _) -> n) experiments);
    exit 2
  end;
  Fmt.pr
    "Reproduction harness for 'Operating System Implications of Solid-State Mobile \
     Computers' (HotOS-IV 1993)@.";
  if Common.quick then Fmt.pr "(QUICK mode: shortened runs)@.";
  Fmt.pr "(domain pool: %d job%s)@." (Sim.Pool.default_jobs ())
    (if Sim.Pool.default_jobs () = 1 then "" else "s");
  (* The registry backs both the ad-hoc metric tables (E6/E7 read their
     counters from snapshots) and the per-experiment "probes" key in the
     JSON output, so metric recording stays on for the whole harness. *)
  Sim.Probe.set_metrics true;
  let runs =
    List.map
      (fun (name, descr, run) ->
        ignore (Common.take_metrics ());
        Sim.Probe.reset_all ();
        let t0 = Unix.gettimeofday () in
        run ();
        let wall_s = Unix.gettimeofday () -. t0 in
        (name, descr, wall_s, Common.take_metrics (), Sim.Probe.snapshot_all ()))
      (List.filter_map snd resolved)
  in
  (match json_path with
  | None -> ()
  | Some path ->
    write_json path runs;
    Fmt.pr "@.wrote machine-readable results to %s@." path);
  Fmt.pr "@.done.@."
