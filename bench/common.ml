(* Shared plumbing for the experiment harness. *)
open Sim

(* Experiment durations scale down when the QUICK environment variable is
   set, for fast iteration; published numbers use the full durations. *)
let quick = Sys.getenv_opt "QUICK" <> None

let minutes m =
  let m = if quick then Float.max 1.0 (m /. 5.0) else m in
  Time.span_s (60.0 *. m)

(* Decision-implementation override for the storage manager, so the CI
   snapshot check can run the same experiments under the indexed fast path
   and the scan reference and diff the JSON byte for byte. *)
let selector =
  match Sys.getenv_opt "SSMC_SELECTOR" with
  | None | Some "indexed" -> Storage.Manager.Indexed
  | Some "scan" -> Storage.Manager.Scan
  | Some "checked" -> Storage.Manager.Checked
  | Some other ->
      Fmt.epr "SSMC_SELECTOR: unknown selector %S (known: indexed scan checked)@."
        other;
      exit 2

let section title = Fmt.pr "@.######## %s ########@.@." title

let note fmt = Fmt.pr ("  " ^^ fmt ^^ "@.")

(* Machine-readable results: experiments record their headline numbers
   here and the harness drains them per experiment for --json output.  A
   queue, so take_metrics preserves insertion order by construction — the
   CI smoke diffs two runs' JSON, which needs a stable metric order.  Call
   put_metric only from the main domain (record pool results after the
   parallel phase, not inside work items). *)
let metrics : (string * float) Queue.t = Queue.create ()
let put_metric name value = Queue.add (name, value) metrics

let take_metrics () =
  let recorded = List.of_seq (Queue.to_seq metrics) in
  Queue.clear metrics;
  recorded

let run_machine ?(seed = 42) ~cfg ~profile ~duration () =
  (* The generated trace streams straight into the replay; no experiment
     holds a full record list. *)
  let trace = Trace.Synth.generate_seq profile ~rng:(Rng.create ~seed) ~duration in
  let machine = Ssmc.Machine.create cfg in
  Ssmc.Machine.preload machine trace.Trace.Synth.stream_initial_files;
  let result = Ssmc.Machine.run_seq machine trace.Trace.Synth.seq in
  (machine, result)

let p50 h = Stat.Histogram.quantile h 0.5
let p99 h = Stat.Histogram.quantile h 0.99

let cell_us v = Table.cell_f ~decimals:1 v
