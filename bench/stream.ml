(* The streaming pipeline's reason to exist: a trace ten times longer
   than E6/E7's 20 minutes replays in essentially the same heap, because
   generation, replay and statistics all pull records one at a time from
   the same Seq.t and none is ever retained.

   Measured per process, so the peak-heap comparison is cleanest when run
   standalone:  dune exec bench/main.exe -- stream *)
open Sim

let replay minutes =
  let duration = Common.minutes minutes in
  (* Flash sized for the 10x run: long-lived files accumulate with trace
     length (the workload keeps a growing home directory), so the device —
     unlike the replay pipeline — must be provisioned for the long run. *)
  let cfg = Ssmc.Config.solid_state ~flash_mb:384 ~dram_mb:16 ~seed:71 () in
  let machine = Ssmc.Machine.create cfg in
  let trace =
    Trace.Synth.generate_seq Trace.Workloads.engineering ~rng:(Rng.create ~seed:71)
      ~duration
  in
  Ssmc.Machine.preload machine trace.Trace.Synth.stream_initial_files;
  let result = Ssmc.Machine.run_seq machine trace.Trace.Synth.seq in
  Gc.compact ();
  let stat = Gc.stat () in
  (result, stat.Gc.live_words, stat.Gc.top_heap_words)

let words_to_mb w = float_of_int w *. float_of_int (Sys.word_size / 8) /. 1048576.0

let run () =
  Common.section
    "streaming replay: peak heap vs trace length (tentpole demonstration)";
  (* Less GC headroom so the peak tracks live data, not collection slack;
     the default 120% overhead lets the heap balloon on allocation churn. *)
  let ctrl = Gc.get () in
  Gc.set { ctrl with Gc.space_overhead = 60 };
  let short_min = 20.0 and long_min = 200.0 in
  (* Short first: top_heap_words is a process-lifetime high-water mark, so
     only this order can show the long run not raising it. *)
  let short_result, short_live, short_top = replay short_min in
  let long_result, long_live, long_top = replay long_min in
  let t =
    Table.create ~title:"same machine, 10x the trace"
      ~columns:
        [
          ("trace length", Table.Left);
          ("records applied", Table.Right);
          ("live heap (MB)", Table.Right);
          ("peak heap (MB)", Table.Right);
        ]
  in
  let row label (result : Ssmc.Machine.result) live top =
    Table.add_row t
      [
        label;
        Table.cell_i result.Ssmc.Machine.ops_applied;
        Printf.sprintf "%.2f" (words_to_mb live);
        Printf.sprintf "%.2f" (words_to_mb top);
      ]
  in
  row (Printf.sprintf "%.0f sim-min (E6 length)" short_min) short_result short_live
    short_top;
  row (Printf.sprintf "%.0f sim-min (10x)" long_min) long_result long_live long_top;
  Table.print t;
  let growth = float_of_int long_top /. float_of_int short_top in
  Common.note
    "peak heap grew %.2fx for a 10x longer trace (%d -> %d records); what does \
     grow is the simulated file system (10x the long-lived files), not the \
     pipeline — a materialized record list would scale with the records"
    growth short_result.Ssmc.Machine.ops_applied long_result.Ssmc.Machine.ops_applied;
  Common.put_metric "stream_short_sim_min" short_min;
  Common.put_metric "stream_long_sim_min" long_min;
  Common.put_metric "stream_short_records" (float_of_int short_result.Ssmc.Machine.ops_applied);
  Common.put_metric "stream_long_records" (float_of_int long_result.Ssmc.Machine.ops_applied);
  Common.put_metric "stream_short_peak_heap_mb" (words_to_mb short_top);
  Common.put_metric "stream_long_peak_heap_mb" (words_to_mb long_top);
  Common.put_metric "stream_peak_heap_growth" growth;
  Gc.set ctrl
