(* Micro-benchmark of the Domain pool itself: wall-clock of the same
   CPU-bound indexed map run (a) directly with List.map, (b) through
   Pool.run_map ~jobs:1 (which must degrade to the sequential path —
   the acceptance bar is <= 5% overhead), and (c) through the pool at the
   ambient job count (the speedup every converted sweep inherits).  The
   work items are RNG spins keyed by Rng.split_ix, like real sweep points:
   deterministic, independent, all-CPU. *)
open Sim

let items = 64
let passes = 5

let spin_iters = if Common.quick then 40_000 else 200_000

let work =
  let base = Rng.create ~seed:97 in
  fun i ->
    let rng = Rng.split_ix base ~index:i in
    let acc = ref 0L in
    for _ = 1 to spin_iters do
      acc := Int64.add !acc (Rng.bits64 rng)
    done;
    !acc

let indices = List.init items Fun.id

(* Best-of-N wall-clock per variant, passes interleaved round-robin so a
   noisy neighbor on the machine penalizes every variant alike. *)
let time_variants variants =
  let best = Array.make (List.length variants) infinity in
  let results = Array.make (List.length variants) [] in
  for _ = 1 to passes do
    List.iteri
      (fun i f ->
        let t0 = Unix.gettimeofday () in
        results.(i) <- f ();
        best.(i) <- Float.min best.(i) (Unix.gettimeofday () -. t0))
      variants
  done;
  (best, results)

let run () =
  Common.section "pool: Domain pool speedup and sequential overhead";
  let jobs = Pool.default_jobs () in
  let best, results =
    time_variants
      [
        (fun () -> List.map work indices);
        (fun () -> Pool.run_map ~jobs:1 work indices);
        (fun () -> Pool.run_map work indices);
      ]
  in
  let seq_s = best.(0) and one_s = best.(1) and par_s = best.(2) in
  if not (results.(0) = results.(1) && results.(0) = results.(2)) then
    failwith "pool: parallel map diverged from the sequential result";
  let overhead_pct = 100.0 *. ((one_s /. seq_s) -. 1.0) in
  let speedup = seq_s /. par_s in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "map of %d items x %d rng draws (best of %d passes)" items
           spin_iters passes)
      ~columns:[ ("path", Table.Left); ("wall ms", Table.Right); ("vs sequential", Table.Right) ]
  in
  Table.add_row t [ "List.map (direct)"; Printf.sprintf "%.1f" (1000.0 *. seq_s); "1.00x" ];
  Table.add_row t
    [
      "Pool.run_map ~jobs:1";
      Printf.sprintf "%.1f" (1000.0 *. one_s);
      Printf.sprintf "%+.1f%% overhead" overhead_pct;
    ];
  Table.add_row t
    [
      Printf.sprintf "Pool.run_map (jobs=%d)" jobs;
      Printf.sprintf "%.1f" (1000.0 *. par_s);
      Printf.sprintf "%.2fx speedup" speedup;
    ];
  Table.print t;
  Common.put_metric "pool_jobs" (float_of_int jobs);
  Common.put_metric "pool_seq_ms" (1000.0 *. seq_s);
  Common.put_metric "pool_jobs1_ms" (1000.0 *. one_s);
  Common.put_metric "pool_jobsN_ms" (1000.0 *. par_s);
  Common.put_metric "pool_jobs1_overhead_pct" overhead_pct;
  Common.put_metric "pool_speedup" speedup;
  Common.note "jobs=1 overhead vs direct sequential: %+.1f%% (bar: <= 5%%)" overhead_pct;
  Common.note "speedup at %d jobs: %.2fx" jobs speedup;
  if jobs = 1 then
    Common.note "(run with --jobs N or SSMC_JOBS=N on a multicore machine to see scaling)"
