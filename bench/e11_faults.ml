(* E11 — Section 3.3's robustness argument, exercised end to end: power
   can disappear at any instant, so how much data is ever at risk, and
   what does coming back cost?
   Shape to reproduce: while any battery holds, faults are non-events —
   battery-backed DRAM rides them out and nothing is lost.  The exposure
   is bounded at every instant by the write-buffer occupancy (the paper's
   reason to bound the writeback delay), and a cold restart loses at most
   that bound, then remounts by scanning flash headers in time linear in
   the sector count.  The invariant checks below are hard failures: CI
   runs this experiment, so a recovery regression fails the build. *)
open Sim

let invariant cond fmt =
  Printf.ksprintf (fun msg -> if not cond then failwith ("E11 invariant: " ^ msg)) fmt

(* One machine run with a fault schedule and a periodic data-at-risk
   sampler; returns the run result plus the sampled exposure summary. *)
let faulted_run ~backup_wh ~faults ~duration =
  let cfg = Ssmc.Config.solid_state ~backup_wh ~seed:77 () in
  let trace =
    Trace.Synth.generate_seq Trace.Workloads.pim ~rng:(Rng.create ~seed:77) ~duration
  in
  let machine = Ssmc.Machine.create cfg in
  Ssmc.Machine.preload machine trace.Trace.Synth.stream_initial_files;
  (* Sample the write buffer's dirty count once a simulated second: that
     number IS the data at risk — exactly what a battery-less crash at the
     sampling instant would lose.  Re-fetch the manager each tick: a cold
     restart replaces it. *)
  let risk = Stat.Summary.create () in
  let engine = Ssmc.Machine.engine machine in
  Engine.schedule_every engine ~every:(Time.span_s 1.0)
    ~until:(Time.add (Engine.now engine) duration)
    (fun _ ->
      match Ssmc.Machine.manager machine with
      | Some m ->
        Stat.Summary.observe risk
          (float_of_int (Storage.Manager.stats m).Storage.Manager.dirty_blocks)
      | None -> ());
  let result = Ssmc.Machine.run_seq ~faults machine trace.Trace.Synth.seq in
  (machine, result, risk)

let run () =
  Common.section "E11: fault injection and crash recovery (Section 3.3)";
  let duration = Common.minutes 20.0 in
  let quarter f = Time.span_s (f *. Time.span_to_s duration) in

  (* Run 1 — batteries present: a power failure, a battery swap, and a
     primary depletion all hit mid-run, and all must be non-events. *)
  let warm_faults =
    Fault.schedule
      [
        { Fault.after = quarter 0.25; kind = Fault.Battery_swap };
        { Fault.after = quarter 0.5; kind = Fault.Battery_depletion };
        { Fault.after = quarter 0.75; kind = Fault.Power_failure };
      ]
  in
  let _, warm, warm_risk = faulted_run ~backup_wh:0.5 ~faults:warm_faults ~duration in
  let warm_log = warm.Ssmc.Machine.fault_log in
  invariant (List.length warm_log = 3) "expected 3 warm faults, saw %d"
    (List.length warm_log);
  List.iter
    (fun o ->
      invariant (o.Ssmc.Machine.survived_by <> `Nothing) "%s not survived despite batteries"
        (Fault.kind_name o.Ssmc.Machine.kind);
      invariant (o.Ssmc.Machine.blocks_lost = 0) "%s lost %d blocks while a battery held"
        (Fault.kind_name o.Ssmc.Machine.kind)
        o.Ssmc.Machine.blocks_lost;
      invariant (not o.Ssmc.Machine.cold_restart) "%s cold-restarted while a battery held"
        (Fault.kind_name o.Ssmc.Machine.kind))
    warm_log;

  (* Run 2 — no backup battery: depleting the primary mid-run forces a
     cold restart.  Loss is bounded by the buffer occupancy at the crash,
     and the remount recovers every flash-resident block. *)
  let cold_faults =
    Fault.schedule [ { Fault.after = quarter 0.5; kind = Fault.Battery_depletion } ]
  in
  let machine, cold, cold_risk = faulted_run ~backup_wh:0.0 ~faults:cold_faults ~duration in
  let outcome =
    match cold.Ssmc.Machine.fault_log with
    | [ o ] -> o
    | l -> failwith (Printf.sprintf "E11 invariant: expected 1 cold fault, saw %d" (List.length l))
  in
  invariant outcome.Ssmc.Machine.cold_restart "depletion without backup must cold-restart";
  invariant
    (outcome.Ssmc.Machine.blocks_lost <= outcome.Ssmc.Machine.dirty_at_fault)
    "lost %d blocks but only %d were dirty" outcome.Ssmc.Machine.blocks_lost
    outcome.Ssmc.Machine.dirty_at_fault;
  let report =
    match outcome.Ssmc.Machine.remount with
    | Some r -> r
    | None -> failwith "E11 invariant: cold restart carries no remount report"
  in
  invariant
    (report.Storage.Manager.buffered_lost = outcome.Ssmc.Machine.dirty_at_fault)
    "remount report buffered_lost=%d but %d blocks were dirty"
    report.Storage.Manager.buffered_lost outcome.Ssmc.Machine.dirty_at_fault;
  (match Ssmc.Machine.memfs machine with
  | Some fs -> (
    match Fs.Memfs.check fs with
    | Ok () -> ()
    | Error msg -> failwith ("E11 invariant: fsck after cold restart: " ^ msg))
  | None -> failwith "E11 invariant: solid-state machine lost its memfs");

  (* Report. *)
  let t =
    Table.create ~title:"fault outcomes (pim workload)"
      ~columns:
        [
          ("run", Table.Left);
          ("fault", Table.Left);
          ("survived by", Table.Left);
          ("dirty at fault", Table.Right);
          ("blocks lost", Table.Right);
          ("files damaged", Table.Right);
          ("remount", Table.Left);
        ]
  in
  let survived_name = function
    | `Primary_battery -> "primary battery"
    | `Backup_battery -> "backup battery"
    | `Parity -> "parity"
    | `Nothing -> "nothing (cold restart)"
  in
  let add_row run (o : Ssmc.Machine.fault_outcome) =
    Table.add_row t
      [
        run;
        Fault.kind_name o.Ssmc.Machine.kind;
        survived_name o.Ssmc.Machine.survived_by;
        Table.cell_i o.Ssmc.Machine.dirty_at_fault;
        Table.cell_i o.Ssmc.Machine.blocks_lost;
        Table.cell_i o.Ssmc.Machine.files_damaged;
        (match o.Ssmc.Machine.remount with
        | None -> "-"
        | Some r ->
          Printf.sprintf "%d sectors, %d live, %d stale, %.2f ms"
            r.Storage.Manager.sectors_scanned r.Storage.Manager.live_recovered
            r.Storage.Manager.stale_discarded
            (1000.0 *. Time.span_to_s o.Ssmc.Machine.remount_span));
      ]
  in
  List.iter (add_row "batteries present") warm_log;
  List.iter (add_row "no backup") cold.Ssmc.Machine.fault_log;
  Table.print t;
  let risk_row name risk =
    Common.note "%s: data at risk mean %.1f blocks, max %.0f (sampled 1/s over %d s)"
      name (Stat.Summary.mean risk)
      (Option.value ~default:0.0 (Stat.Summary.max risk))
      (Stat.Summary.count risk)
  in
  risk_row "batteries present" warm_risk;
  risk_row "no backup" cold_risk;
  Common.note
    "while any battery holds, every fault is a non-event: battery-backed DRAM keeps the \
     write buffer and metadata, nothing is lost, the trace never notices";
  Common.note
    "the exposure window is the write buffer: a cold crash loses at most its occupancy \
     (here %d of %d dirty blocks), bounded by the writeback delay of Section 3.3"
    outcome.Ssmc.Machine.blocks_lost outcome.Ssmc.Machine.dirty_at_fault;
  Common.note
    "recovery is a header scan: %d sectors in %.2f ms of device time, no journal replay"
    report.Storage.Manager.sectors_scanned
    (1000.0 *. Time.span_to_s outcome.Ssmc.Machine.remount_span);

  (* Headline metrics for --json; all deterministic, so CI diffs them
     across selectors and against the checked-in snapshot. *)
  Common.put_metric "e11_warm_faults" (float_of_int (List.length warm_log));
  Common.put_metric "e11_warm_lost"
    (float_of_int (List.fold_left (fun a o -> a + o.Ssmc.Machine.blocks_lost) 0 warm_log));
  Common.put_metric "e11_warm_ops" (float_of_int warm.Ssmc.Machine.ops_applied);
  Common.put_metric "e11_warm_risk_mean" (Stat.Summary.mean warm_risk);
  Common.put_metric "e11_warm_risk_max"
    (Option.value ~default:0.0 (Stat.Summary.max warm_risk));
  Common.put_metric "e11_cold_dirty_at_crash"
    (float_of_int outcome.Ssmc.Machine.dirty_at_fault);
  Common.put_metric "e11_cold_lost" (float_of_int outcome.Ssmc.Machine.blocks_lost);
  Common.put_metric "e11_cold_files_damaged"
    (float_of_int outcome.Ssmc.Machine.files_damaged);
  Common.put_metric "e11_cold_ops" (float_of_int cold.Ssmc.Machine.ops_applied);
  Common.put_metric "e11_remount_sectors" (float_of_int report.Storage.Manager.sectors_scanned);
  Common.put_metric "e11_remount_live" (float_of_int report.Storage.Manager.live_recovered);
  Common.put_metric "e11_remount_stale" (float_of_int report.Storage.Manager.stale_discarded);
  Common.put_metric "e11_remount_ms"
    (1000.0 *. Time.span_to_s outcome.Ssmc.Machine.remount_span);
  Common.put_metric "e11_cold_risk_mean" (Stat.Summary.mean cold_risk);
  Common.put_metric "e11_cold_risk_max"
    (Option.value ~default:0.0 (Stat.Summary.max cold_risk))
