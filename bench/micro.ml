(* Wall-clock micro-benchmarks (Bechamel) of the simulator's hot data
   structures.  The paper offers no wall-clock numbers to match; these
   exist so performance regressions in the library itself are visible. *)
open Bechamel
open Toolkit

let test_event_queue =
  Test.make ~name:"event_queue: add+pop x64"
    (Staged.stage (fun () ->
         let q = Sim.Event_queue.create () in
         for i = 0 to 63 do
           ignore (Sim.Event_queue.add q ~at:(Sim.Time.of_ns ((i * 7919) mod 1000)) i)
         done;
         while Sim.Event_queue.pop q <> None do
           ()
         done))

let test_write_buffer =
  Test.make ~name:"write_buffer: 64 writes"
    (Staged.stage (fun () ->
         let b =
           Sim.Units.mib / 512
           |> fun capacity_blocks ->
           Storage.Write_buffer.create
             {
               Storage.Write_buffer.capacity_blocks;
               writeback_delay = Sim.Time.span_s 30.0;
               refresh_on_rewrite = true;
             }
         in
         for i = 0 to 63 do
           ignore (Storage.Write_buffer.write b ~now:Sim.Time.zero ~block:(i mod 16))
         done))

let test_zipf =
  let z = Sim.Distribution.Zipf.create ~n:1000 ~s:0.9 in
  let rng = Sim.Rng.create ~seed:1 in
  Test.make ~name:"zipf: sample (n=1000)"
    (Staged.stage (fun () -> ignore (Sim.Distribution.Zipf.sample z rng)))

let test_rng =
  let rng = Sim.Rng.create ~seed:2 in
  Test.make ~name:"rng: bits64" (Staged.stage (fun () -> ignore (Sim.Rng.bits64 rng)))

let test_cleaner_select =
  let segments =
    Array.init 64 (fun id ->
        let s = Storage.Segment.create ~id ~first_sector:(id * 32) ~nslots:32 in
        Storage.Segment.open_ s;
        for b = 0 to 31 do
          ignore (Storage.Segment.append s ~block:b)
        done;
        for slot = 0 to id mod 32 do
          Storage.Segment.kill s ~slot
        done;
        s)
  in
  Test.make ~name:"cleaner: cost-benefit select (64 segs)"
    (Staged.stage (fun () ->
         ignore
           (Storage.Cleaner.select Storage.Cleaner.Cost_benefit ~now:(Sim.Time.of_ns 1_000_000)
              ~eligible:(fun _ -> true)
              segments)))

let test_histogram =
  let h = Sim.Stat.Histogram.create () in
  Test.make ~name:"histogram: observe"
    (Staged.stage (fun () -> Sim.Stat.Histogram.observe h 123.0))

(* End-to-end throughput of the streaming pipeline.  Generation is
   deterministic in the seed, so the record count per run is fixed and a
   records/s figure falls out of the OLS ns/run estimate. *)
let gen_duration = Sim.Time.span_s 60.0

let gen_stream ~seed () =
  Trace.Synth.generate_seq Trace.Workloads.engineering
    ~rng:(Sim.Rng.create ~seed) ~duration:gen_duration

let gen_records =
  lazy (Seq.fold_left (fun n _ -> n + 1) 0 (gen_stream ~seed:3 ()).Trace.Synth.seq)

let test_tracegen =
  Test.make ~name:"tracegen: stream 60s engineering"
    (Staged.stage (fun () ->
         Seq.iter ignore (gen_stream ~seed:3 ()).Trace.Synth.seq))

let test_replay =
  Test.make ~name:"machine: streaming replay, 60s engineering"
    (Staged.stage (fun () ->
         let machine = Ssmc.Machine.create (Ssmc.Config.solid_state ~seed:5 ()) in
         let trace = gen_stream ~seed:3 () in
         Ssmc.Machine.preload machine trace.Trace.Synth.stream_initial_files;
         ignore (Ssmc.Machine.run_seq machine trace.Trace.Synth.seq)))

let run () =
  Common.section "micro-benchmarks of the simulator's hot paths (wall-clock)";
  let tests =
    [
      test_event_queue; test_write_buffer; test_zipf; test_rng; test_cleaner_select;
      test_histogram; test_tracegen; test_replay;
    ]
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:true () in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Sim.Table.create ~title:"nanoseconds per run (OLS estimate)"
      ~columns:[ ("benchmark", Sim.Table.Left); ("ns/run", Sim.Table.Right); ("R^2", Sim.Table.Right) ]
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let estimates = Hashtbl.create 16 in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
      in
      Hashtbl.replace estimates name estimate;
      let r2 = Option.value (Analyze.OLS.r_square ols) ~default:nan in
      Sim.Table.add_row table
        [ name; Printf.sprintf "%.1f" estimate; Printf.sprintf "%.3f" r2 ])
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  Sim.Table.print table;
  (* Convert the two pipeline benchmarks to records/s for --json. *)
  let throughput suffix metric label =
    Hashtbl.iter
      (fun name ns ->
        if
          String.length name >= String.length suffix
          && String.sub name (String.length name - String.length suffix)
               (String.length suffix)
             = suffix
          && ns > 0.0
        then begin
          let rps = float_of_int (Lazy.force gen_records) /. (ns *. 1e-9) in
          Common.put_metric metric rps;
          Common.note "%s: %.0f records/s" label rps
        end)
      estimates
  in
  throughput "stream 60s engineering" "tracegen_records_per_s" "trace generation";
  throughput "streaming replay, 60s engineering" "replay_records_per_s"
    "end-to-end replay"
