(* The two replay drivers, A/B on the same trace and machine config:

   - interpreted: [Machine.run_seq] — per-record variant match, path
     formatting/parsing, closure per operation;
   - compiled:    [Machine.run_compiled] over a pre-lowered
     [Trace.Replay.Compiled] trace — flat array dispatch and a
     pre-resolved route to "/data".

   The drivers are contractually byte-identical in every simulated
   quantity (asserted below; the test suite checks the full result), so
   the only difference is wall-clock — which is the point.  The trace is
   10x the E6 workload (engineering profile), long enough that steady-state
   throughput dominates machine setup. *)
open Sim

(* 10x E6's duration (E6 uses 20 min; QUICK scales both the same way). *)
let duration = Common.minutes 200.0

let run () =
  Common.section "replay drivers: interpreted vs compiled (A/B, same trace)";
  let trace =
    Trace.Synth.generate Trace.Workloads.engineering ~rng:(Rng.create ~seed:61)
      ~duration
  in
  let records = trace.Trace.Synth.records in
  let n = List.length records in
  let compiled = Trace.Replay.Compiled.compile records in
  let time_run driver =
    (* 10x the workload needs more than E6's 20 MB of flash to hold the
       live set; the driver comparison does not care about cleaning
       pressure, only that both drivers see the same machine. *)
    let machine =
      Ssmc.Machine.create (Ssmc.Config.solid_state ~flash_mb:256 ~dram_mb:32 ~seed:61 ())
    in
    Ssmc.Machine.preload machine trace.Trace.Synth.initial_files;
    let t0 = Unix.gettimeofday () in
    let result = driver machine in
    (Unix.gettimeofday () -. t0, result)
  in
  (* Alternate the drivers and keep each one's best time: the per-record
     win is a few percent, comparable to major-GC jitter, so a single
     back-to-back pair routinely reads backwards. *)
  let reps = 3 in
  let best driver =
    let best_s = ref infinity and result = ref None in
    for _ = 1 to reps do
      Gc.compact ();
      let s, r = time_run driver in
      if s < !best_s then begin
        best_s := s;
        result := Some r
      end
    done;
    (!best_s, Option.get !result)
  in
  let interp_s, ri = best (fun m -> Ssmc.Machine.run_seq m (List.to_seq records)) in
  let compiled_s, rc = best (fun m -> Ssmc.Machine.run_compiled m compiled) in
  (* A/B integrity: a faster driver that simulates something different is
     not a speedup, it is a bug. *)
  if
    ri.Ssmc.Machine.ops_applied <> rc.Ssmc.Machine.ops_applied
    || ri.Ssmc.Machine.op_errors <> rc.Ssmc.Machine.op_errors
    || Time.span_to_us ri.Ssmc.Machine.busy <> Time.span_to_us rc.Ssmc.Machine.busy
    || ri.Ssmc.Machine.energy_j <> rc.Ssmc.Machine.energy_j
  then failwith "replay bench: compiled driver diverged from interpreted";
  let rate s = if s > 0.0 then float_of_int n /. s else Float.infinity in
  let interp_rps = rate interp_s in
  let compiled_rps = rate compiled_s in
  let speedup = if interp_s > 0.0 then interp_s /. compiled_s else Float.nan in
  let table =
    Table.create ~title:"end-to-end replay (same trace, same machine config)"
      ~columns:
        [
          ("driver", Table.Left);
          ("records", Table.Right);
          ("wall s", Table.Right);
          ("records/s", Table.Right);
        ]
  in
  Table.add_row table
    [ "interpreted"; string_of_int n; Printf.sprintf "%.2f" interp_s;
      Printf.sprintf "%.0f" interp_rps ];
  Table.add_row table
    [ "compiled"; string_of_int n; Printf.sprintf "%.2f" compiled_s;
      Printf.sprintf "%.0f" compiled_rps ];
  Table.print table;
  Common.put_metric "replay_interpreted_records_per_s" interp_rps;
  Common.put_metric "replay_compiled_records_per_s" compiled_rps;
  Common.put_metric "replay_compiled_speedup" speedup;
  Common.note "compiled replay: %.2fx the interpreted driver (%d records)" speedup n;
  Common.note "results byte-identical across drivers (asserted)"
