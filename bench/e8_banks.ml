(* E8 — Section 3.3: partitioning flash into banks so reads of read-mostly
   data are not stalled behind slow programs and erases.
   Shape to reproduce: with a single shared pool, cold-data read latency
   degrades (especially in the tail) as background write/flush traffic
   grows; with the read-mostly data segregated into its own banks, reads
   stay flat at device read speed no matter the write rate. *)
open Sim

let nbanks = 4

let run_point ~banking ~write_blocks_per_s ~seed =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create
      (Device.Flash.config ~nbanks ~size_bytes:(8 * Units.mib) ())
  in
  let dram = Device.Dram.create ~size_bytes:(2 * Units.mib) ~battery_backed:true () in
  let cfg =
    {
      Storage.Manager.default_config with
      Storage.Manager.banking;
      selector = Common.selector;
      buffer =
        {
          Storage.Write_buffer.capacity_blocks = 512;
          writeback_delay = Time.span_s 5.0;
          refresh_on_rewrite = false;
        };
    }
  in
  let manager = Storage.Manager.create cfg ~engine ~flash ~dram in
  (* Cold, read-mostly data: 1MB of program/file blocks. *)
  let cold = Array.init 2048 (fun _ -> Storage.Manager.alloc manager) in
  Array.iter (fun b -> Storage.Manager.load_cold manager b) cold;
  Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 60.0));
  Storage.Manager.reset_traffic manager;
  (* A writer dirties fresh blocks at the given rate (they flush in the
     background), while a reader samples cold blocks. *)
  let rng = Rng.create ~seed in
  let read_lat = Stat.Histogram.create () in
  let seconds = if Common.quick then 60 else 180 in
  let hot = Array.init 4096 (fun _ -> Storage.Manager.alloc manager) in
  let hot_cursor = ref 0 in
  for _ = 1 to seconds do
    (* Writer: always-new blocks, so everything must flush to flash. *)
    for _ = 1 to write_blocks_per_s do
      ignore (Storage.Manager.write_block manager hot.(!hot_cursor mod Array.length hot));
      incr hot_cursor
    done;
    (* Reader: 20 cold reads spread through the second. *)
    for i = 0 to 19 do
      Engine.run_until engine
        (Time.add (Engine.now engine) (Time.span_ms (1000.0 /. 20.0 *. 0.999)));
      ignore i;
      let b = Rng.choose rng cold in
      Stat.Histogram.observe read_lat
        (Time.span_to_us (Storage.Manager.read_block manager b))
    done
  done;
  read_lat

let run () =
  Common.section "E8: flash bank partitioning (Section 3.3)";
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "cold-data read latency vs background write rate (%d banks)" nbanks)
      ~columns:
        [
          ("write rate", Table.Right);
          ("banking", Table.Left);
          ("read p50 (us)", Table.Right);
          ("read p99 (us)", Table.Right);
          ("read mean (us)", Table.Right);
        ]
  in
  (* Each point owns its engine/manager/RNG, so the six points run on the
     Domain pool; rows render afterwards in submission order. *)
  let rates = [ 8; 32; 96 ] in
  let policies = [ Storage.Banks.Unified; Storage.Banks.Partitioned { write_banks = 1 } ] in
  let cells =
    Pool.run_map
      (fun (write_blocks_per_s, banking) ->
        (write_blocks_per_s, banking, run_point ~banking ~write_blocks_per_s ~seed:81))
      (List.concat_map (fun r -> List.map (fun b -> (r, b)) policies) rates)
  in
  List.iteri
    (fun i (write_blocks_per_s, banking, h) ->
      let tag =
        Printf.sprintf "%d_%s" write_blocks_per_s (Storage.Banks.policy_name banking)
      in
      Common.put_metric ("e8_p50_" ^ tag) (Common.p50 h);
      Common.put_metric ("e8_p99_" ^ tag) (Common.p99 h);
      Common.put_metric ("e8_mean_" ^ tag) (Stat.Histogram.mean h);
      Table.add_row t
        [
          Table.cell_bytes (512 * write_blocks_per_s) ^ "/s";
          Storage.Banks.policy_name banking;
          Common.cell_us (Common.p50 h);
          Common.cell_us (Common.p99 h);
          Common.cell_us (Stat.Histogram.mean h);
        ];
      if (i + 1) mod List.length policies = 0 then Table.add_rule t)
    cells;
  Table.print t;
  Common.note
    "partitioned keeps read-mostly banks free of programs/erases: the paper's 'spread file \
     systems across flash memory banks appropriately'."
