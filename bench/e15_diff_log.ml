(* E15 — page-differential logging: the merge-threshold x overwrite-ratio
   trade-off curve.
   Shape to reproduce: programming a small delta record per overwrite
   instead of a whole page cuts flash write traffic roughly in proportion
   to how much of the workload is overwrites — but every delta lengthens
   the chain a read must reassemble, so read latency climbs with the
   merge threshold.  Sweeping the threshold at a fixed overwrite ratio
   traces the knob's whole trade-off: a low threshold merges eagerly
   (more full-page programs, short chains, fast reads), a high one lets
   chains run (least traffic, slowest reads).  The off baseline pays a
   full page per overwrite and anchors the reduction headline.

   Cells run a write-through manager so every overwrite programs
   synchronously and the ratio knob maps one-to-one onto flash traffic;
   fresh writes (the non-overwrite share) are short-lived allocations
   that are freed once a small window passes, which keeps occupancy flat
   while still costing their full page. *)
open Sim

let nbanks = 4
let flash_bytes = 2 * Units.mib
let churn_blocks = 256
let fresh_window = 64
let delta_bytes = 64

type cell = { merge_len : int option; overwrite_pct : int }
(* [merge_len = None] is the diff-off baseline. *)

let tag { merge_len; overwrite_pct } =
  Printf.sprintf "%s_r%d"
    (match merge_len with None -> "off" | Some l -> Printf.sprintf "m%d" l)
    overwrite_pct

let mk_manager { merge_len; _ } =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create (Device.Flash.config ~nbanks ~size_bytes:flash_bytes ())
  in
  let dram = Device.Dram.create ~size_bytes:(4 * Units.mib) ~battery_backed:true () in
  let cfg =
    {
      Storage.Manager.default_config with
      Storage.Manager.segment_sectors = 16;
      selector = Common.selector;
      buffer =
        {
          Storage.Write_buffer.capacity_blocks = 0;
          writeback_delay = Time.span_s 1.0;
          refresh_on_rewrite = false;
        };
      diff_log =
        Option.map
          (fun merge_len ->
            { Storage.Diff_log.default_config with Storage.Diff_log.delta_bytes; merge_len })
          merge_len;
    }
  in
  (engine, Storage.Manager.create cfg ~engine ~flash ~dram, flash)

type point = {
  p_bytes_programmed : int;
  p_bytes_per_write : float;
  p_read_mean_us : float;
  p_read_p99_us : float;
  p_deltas : int;
  p_merges : int;
}

let run_point cell =
  let engine, m, flash = mk_manager cell in
  let churn = Array.init churn_blocks (fun _ -> Storage.Manager.alloc m) in
  Array.iter (fun b -> Storage.Manager.load_cold m b) churn;
  Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 1.0));
  Storage.Manager.reset_traffic m;
  Device.Flash.reset_stats flash;
  let rounds = if Common.quick then 30 else 100 in
  let writes_per_round = 64 and reads_per_round = 32 in
  let lcg s = ((s * 1103515245) + 12345) land 0x3FFFFFFF in
  let wstate = ref 4242 and rstate = ref 777 in
  let fresh = Queue.create () in
  let wcursor = ref (Engine.now engine) in
  let rcursor = ref (Engine.now engine) in
  let nwrites = ref 0 in
  for _round = 1 to rounds do
    for _ = 1 to writes_per_round do
      wstate := lcg !wstate;
      let at = Time.max !wcursor (Engine.now engine) in
      incr nwrites;
      if !wstate mod 100 < cell.overwrite_pct then
        wcursor := Storage.Manager.write_block_at m ~at churn.(!wstate / 100 mod churn_blocks)
      else begin
        (* A short-lived fresh block: full-page program now, freed once
           the window slides past it — occupancy stays flat either way. *)
        let b = Storage.Manager.alloc m in
        wcursor := Storage.Manager.write_block_at m ~at b;
        Queue.push b fresh;
        if Queue.length fresh > fresh_window then
          Storage.Manager.free_block m (Queue.pop fresh)
      end
    done;
    (* Interleaved reads keep the banks contended like a real workload;
       they are not the latency measurement (their spans are dominated by
       waits behind the write stream, which shrink as deltas shrink the
       write traffic — the opposite axis of the trade-off). *)
    for _ = 1 to reads_per_round do
      rstate := lcg !rstate;
      let b = churn.(!rstate mod churn_blocks) in
      let at = Time.max !rcursor (Engine.now engine) in
      rcursor := Storage.Manager.read_block_at m ~at b
    done;
    Engine.run_until engine (Time.max !wcursor !rcursor)
  done;
  (* The read-latency axis, measured clean: quiesce the banks, then read
     every churn block once, cursor-threaded so each read pays exactly
     its own base-plus-chain reassembly cost. *)
  Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 1.0));
  let rlat = Stat.Histogram.create () in
  let rsum = ref 0.0 in
  let qcursor = ref (Engine.now engine) in
  Array.iter
    (fun b ->
      let at = !qcursor in
      let fin = Storage.Manager.read_block_at m ~at b in
      let us = Time.span_to_us (Time.diff fin at) in
      Stat.Histogram.observe rlat us;
      rsum := !rsum +. us;
      qcursor := fin)
    churn;
  let ds = Storage.Manager.diff_stats m in
  let stat field = match ds with None -> 0 | Some s -> field s in
  {
    p_bytes_programmed = Device.Flash.bytes_programmed flash;
    p_bytes_per_write =
      float_of_int (Device.Flash.bytes_programmed flash) /. float_of_int !nwrites;
    p_read_mean_us = !rsum /. float_of_int churn_blocks;
    p_read_p99_us = Common.p99 rlat;
    p_deltas = stat (fun s -> s.Storage.Diff_log.deltas_flushed);
    p_merges = stat (fun s -> s.Storage.Diff_log.merges);
  }

let merge_lens = [ 2; 4; 8; 16 ]
let ratios = [ 50; 95 ]

let cells =
  List.concat_map
    (fun overwrite_pct ->
      { merge_len = None; overwrite_pct }
      :: List.map (fun l -> { merge_len = Some l; overwrite_pct }) merge_lens)
    ratios

let run () =
  Common.section "E15: page-differential logging trade-off";
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "delta chains vs full-page rewrites (%dB deltas, %d-block churn set)"
           delta_bytes churn_blocks)
      ~columns:
        [
          ("overwrites", Table.Right);
          ("merge", Table.Left);
          ("bytes programmed", Table.Right);
          ("bytes/write", Table.Right);
          ("read mean (us)", Table.Right);
          ("read p99 (us)", Table.Right);
          ("deltas", Table.Right);
          ("merges", Table.Right);
        ]
  in
  let points = Pool.run_map (fun cell -> (cell, run_point cell)) cells in
  let previous_ratio = ref None in
  List.iter
    (fun (cell, p) ->
      if !previous_ratio <> None && !previous_ratio <> Some cell.overwrite_pct then
        Table.add_rule t;
      previous_ratio := Some cell.overwrite_pct;
      let cell_tag = tag cell in
      Common.put_metric ("e15_bytes_programmed_" ^ cell_tag)
        (float_of_int p.p_bytes_programmed);
      Common.put_metric ("e15_read_mean_us_" ^ cell_tag) p.p_read_mean_us;
      Common.put_metric ("e15_read_p99_us_" ^ cell_tag) p.p_read_p99_us;
      if cell.merge_len <> None then begin
        Common.put_metric ("e15_deltas_" ^ cell_tag) (float_of_int p.p_deltas);
        Common.put_metric ("e15_merges_" ^ cell_tag) (float_of_int p.p_merges)
      end;
      Table.add_row t
        [
          Printf.sprintf "%d%%" cell.overwrite_pct;
          (match cell.merge_len with None -> "off" | Some l -> Printf.sprintf "%d" l);
          Table.cell_i p.p_bytes_programmed;
          Printf.sprintf "%.0f" p.p_bytes_per_write;
          Common.cell_us p.p_read_mean_us;
          Common.cell_us p.p_read_p99_us;
          (if cell.merge_len = None then "-" else Table.cell_i p.p_deltas);
          (if cell.merge_len = None then "-" else Table.cell_i p.p_merges);
        ])
    points;
  Table.print t;
  let find want =
    List.fold_left (fun acc (c, p) -> if tag c = want then Some p else acc) None points
  in
  let bytes want =
    match find want with Some p -> float_of_int p.p_bytes_programmed | None -> nan
  in
  let read_mean want =
    match find want with Some p -> p.p_read_mean_us | None -> nan
  in
  (* Headline 1: at the default merge threshold (4) on the overwrite-heavy
     workload, diff logging must cut flash write traffic by >= 1.3x. *)
  let reduction = bytes "off_r95" /. bytes "m4_r95" in
  Common.put_metric "e15_traffic_reduction_default" reduction;
  (* Headline 2: the trade-off curve is monotone in the threshold — write
     traffic only falls as chains are allowed to run, read latency only
     climbs (tiny tolerance for bank-wait jitter). *)
  let monotone =
    let rec pairs = function
      | a :: (b :: _ as rest) -> (a, b) :: pairs rest
      | _ -> []
    in
    List.for_all
      (fun ratio ->
        List.for_all
          (fun (la, lb) ->
            let ta = Printf.sprintf "m%d_r%d" la ratio
            and tb = Printf.sprintf "m%d_r%d" lb ratio in
            bytes ta >= bytes tb *. 0.999
            && read_mean ta <= read_mean tb *. 1.001)
          (pairs merge_lens))
      ratios
  in
  Common.put_metric "e15_tradeoff_monotone" (if monotone then 1.0 else 0.0);
  Common.note
    "overwrite-heavy (95%%): deltas at merge=4 program %.2fx less than full-page \
     rewrites (CI asserts >= 1.3x); the merge knob trades write traffic for read \
     latency monotonically: %s."
    reduction
    (if monotone then "holds" else "VIOLATED (bug)");
  Common.note
    "the ratio knob scales the win: at 50%% overwrites the fresh-write share pays \
     full pages on both sides, so the curves converge toward the baseline."
