(* E3 — Section 3.1: the memory-resident file system against the
   conventional disk file system.
   Shape to reproduce: metadata operations drop from milliseconds (seek +
   synchronous metadata writes) to microseconds (DRAM accesses); data
   operations win by orders of magnitude except where the disk's buffer
   cache already absorbed them; sequential-vs-random makes no difference
   to memfs (no clustering to exploit, no seeks to avoid) while it is the
   dominant effect on disk. *)
open Sim

let microbench_table () =
  (* Directly exercise both file systems with controlled patterns. *)
  let engine_m = Engine.create () in
  let flash =
    Device.Flash.create (Device.Flash.config ~nbanks:4 ~size_bytes:(8 * Units.mib) ())
  in
  let dram_m = Device.Dram.create ~size_bytes:(4 * Units.mib) ~battery_backed:true () in
  let manager = Storage.Manager.create Storage.Manager.default_config ~engine:engine_m ~flash ~dram:dram_m in
  let memfs = Fs.Memfs.create_fs ~manager () in

  let engine_f = Engine.create () in
  let disk = Device.Disk.create ~rng:(Rng.create ~seed:31) () in
  let dram_f = Device.Dram.create ~size_bytes:(4 * Units.mib) ~battery_backed:true () in
  let ffs = Fs.Ffs.create_fs ~engine:engine_f ~disk ~dram:dram_f () in

  let ok = function
    | Ok v -> v
    | Error e -> Fmt.failwith "e3 microbench: %a" Fs.Fs_error.pp e
  in
  (* Pre-populate a 1MB file on each, then settle. *)
  ignore (ok (Fs.Memfs.create memfs "/seq"));
  ignore (ok (Fs.Memfs.write memfs "/seq" ~offset:0 ~bytes:Units.mib));
  ignore (Fs.Memfs.sync memfs);
  ignore (ok (Fs.Ffs.create ffs "/seq"));
  ignore (ok (Fs.Ffs.write ffs "/seq" ~offset:0 ~bytes:Units.mib));
  ignore (Fs.Ffs.sync ffs);
  Engine.run_until engine_m (Time.add (Engine.now engine_m) (Time.span_s 120.0));
  Engine.run_until engine_f (Time.add (Engine.now engine_f) (Time.span_s 120.0));

  (* Advance the owning engine past each operation so successive ops do not
     queue behind each other's device time — we measure isolated latency. *)
  let mean_on engine n f =
    let s = Stat.Summary.create () in
    for i = 0 to n - 1 do
      let span = f i in
      Stat.Summary.observe s (Time.span_to_us span);
      Engine.run_until engine
        (Time.add (Engine.now engine) (Time.span_add span (Time.span_ms 10.0)))
    done;
    Stat.Summary.mean s
  in
  let rng = Rng.create ~seed:33 in
  let random_offsets = Array.init 200 (fun _ -> Rng.int rng (Units.mib - 4096) / 512 * 512) in
  (* Sequence matters (creates before deletes): build each row in order. *)
  let create_m = mean_on engine_m 100 (fun i -> ok (Fs.Memfs.create memfs (Printf.sprintf "/m%d" i))) in
  let create_f = mean_on engine_f 100 (fun i -> ok (Fs.Ffs.create ffs (Printf.sprintf "/m%d" i))) in
  let seq_read_m =
    mean_on engine_m 200 (fun i ->
        ok (Fs.Memfs.read memfs "/seq" ~offset:(i * 4096 mod (Units.mib - 4096)) ~bytes:4096))
  in
  let seq_read_f =
    mean_on engine_f 200 (fun i ->
        ok (Fs.Ffs.read ffs "/seq" ~offset:(i * 4096 mod (Units.mib - 4096)) ~bytes:4096))
  in
  let rand_read_m =
    mean_on engine_m 200 (fun i -> ok (Fs.Memfs.read memfs "/seq" ~offset:random_offsets.(i) ~bytes:4096))
  in
  let rand_read_f =
    mean_on engine_f 200 (fun i -> ok (Fs.Ffs.read ffs "/seq" ~offset:random_offsets.(i) ~bytes:4096))
  in
  let overwrite_m =
    mean_on engine_m 200 (fun i -> ok (Fs.Memfs.write memfs "/seq" ~offset:random_offsets.(i) ~bytes:4096))
  in
  let overwrite_f =
    mean_on engine_f 200 (fun i -> ok (Fs.Ffs.write ffs "/seq" ~offset:random_offsets.(i) ~bytes:4096))
  in
  let delete_m = mean_on engine_m 100 (fun i -> ok (Fs.Memfs.unlink memfs (Printf.sprintf "/m%d" i))) in
  let delete_f = mean_on engine_f 100 (fun i -> ok (Fs.Ffs.unlink ffs (Printf.sprintf "/m%d" i))) in
  let rows =
    [
      ("create (empty file)", create_m, create_f);
      ("sequential read, 4KB", seq_read_m, seq_read_f);
      ("random read, 4KB", rand_read_m, rand_read_f);
      ("random overwrite, 4KB", overwrite_m, overwrite_f);
      ("delete", delete_m, delete_f);
    ]
  in
  let t =
    Table.create ~title:"file-system microbenchmarks (mean latency, us)"
      ~columns:
        [
          ("operation", Table.Left);
          ("memfs (DRAM+flash)", Table.Right);
          ("ffs (disk)", Table.Right);
          ("speedup", Table.Right);
        ]
  in
  List.iter
    (fun (name, m, f) ->
      Table.add_row t
        [ name; Common.cell_us m; Common.cell_us f; Printf.sprintf "%.0fx" (f /. m) ])
    rows;
  Table.print t;
  (* The clustering claim: on memfs sequential and random read identically. *)
  let seq_m = List.nth rows 1 and rand_m = List.nth rows 2 in
  let second (_, m, _) = m and third (_, _, f) = f in
  Common.note "memfs random/sequential read ratio: %.2f (clustering irrelevant in memory)"
    (second rand_m /. second seq_m);
  Common.note "ffs random/sequential read ratio: %.2f (seeks dominate on disk)"
    (third rand_m /. third seq_m)

let trace_table () =
  let duration = Common.minutes 10.0 in
  (* Each replay's probe snapshot (preload resets the registry, so it holds
     exactly that run) supplies the buffer-cache accounting below. *)
  let run cfg =
    let m, r =
      Common.run_machine ~cfg ~profile:Trace.Workloads.engineering ~duration ()
    in
    (m, r, Probe.snapshot ())
  in
  let solid_m, solid, solid_snap = run (Ssmc.Config.solid_state ()) in
  let conv_m, conv, conv_snap = run (Ssmc.Config.conventional ()) in
  let t =
    Table.create ~title:"engineering workload, whole-machine trace replay"
      ~columns:
        [
          ("metric", Table.Left);
          ("solid-state (memfs)", Table.Right);
          ("conventional (ffs)", Table.Right);
        ]
  in
  let frow name f = Table.add_row t [ name; f solid; f conv ] in
  frow "ops applied" (fun (r : Ssmc.Machine.result) -> Table.cell_i r.Ssmc.Machine.ops_applied);
  frow "read mean (us)" (fun r -> Common.cell_us (Stat.Summary.mean r.Ssmc.Machine.read_latency));
  frow "read p50 (us)" (fun r -> Common.cell_us (Common.p50 r.Ssmc.Machine.read_hist_us));
  frow "read p99 (us)" (fun r -> Common.cell_us (Common.p99 r.Ssmc.Machine.read_hist_us));
  frow "write mean (us)" (fun r -> Common.cell_us (Stat.Summary.mean r.Ssmc.Machine.write_latency));
  frow "write p50 (us)" (fun r -> Common.cell_us (Common.p50 r.Ssmc.Machine.write_hist_us));
  frow "write p99 (us)" (fun r -> Common.cell_us (Common.p99 r.Ssmc.Machine.write_hist_us));
  frow "metadata mean (us)" (fun r -> Common.cell_us (Stat.Summary.mean r.Ssmc.Machine.meta_latency));
  frow "foreground busy" (fun r -> Table.cell_span r.Ssmc.Machine.busy);
  frow "storage energy (J)" (fun r -> Table.cell_f r.Ssmc.Machine.energy_j);
  (* Section 3.1's space argument: the conventional machine duplicates
     stable data in a DRAM cache; the memory-resident system holds one
     copy (its buffer contents ARE the primary copy, not a duplicate). *)
  let cache_copy machine =
    match Ssmc.Machine.ffs machine with
    | Some ffs ->
      Table.cell_bytes
        (Fs.Buffer_cache.size (Fs.Ffs.cache ffs)
        * (Fs.Ffs.config ffs).Fs.Ffs.fs_block_bytes)
    | None -> "0B"
  in
  Table.add_row t
    [ "DRAM duplicating stable data"; cache_copy solid_m; cache_copy conv_m ];
  (* The disk FS pays for its duplicate copy in misses and write-backs; the
     memory-resident FS has no cache to hit or miss at all. *)
  let cache_row name key =
    Table.add_row t
      [
        name;
        Table.cell_i (Probe.Snapshot.counter_value solid_snap key);
        Table.cell_i (Probe.Snapshot.counter_value conv_snap key);
      ]
  in
  cache_row "buffer-cache hits" "fs.buffer_cache.hits";
  cache_row "buffer-cache misses" "fs.buffer_cache.misses";
  cache_row "buffer-cache write-backs" "fs.buffer_cache.writebacks";
  Table.print t;
  let hits = Probe.Snapshot.counter_value conv_snap "fs.buffer_cache.hits" in
  let misses = Probe.Snapshot.counter_value conv_snap "fs.buffer_cache.misses" in
  Common.put_metric "e3_cache_hits_conv" (float_of_int hits);
  Common.put_metric "e3_cache_misses_conv" (float_of_int misses);
  Common.put_metric "e3_cache_hit_rate_conv"
    (if hits + misses = 0 then 0.0
     else float_of_int hits /. float_of_int (hits + misses));
  Common.note "conventional buffer cache: %d hits / %d misses (%.1f%% hit rate)"
    hits misses
    (if hits + misses = 0 then 0.0
     else 100.0 *. float_of_int hits /. float_of_int (hits + misses))

(* Section 3.1 promises improved space utilization: fine-grained
   allocation (512B blocks) against the disk FS's 4KB blocks, measured as
   allocated-vs-logical bytes for a population of small files. *)
let space_table () =
  let sizes = [ 300; 700; 1500; 3000; 5000; 12_000 ] in
  let files_per_size = 40 in
  (* memfs side. *)
  let engine_m = Engine.create () in
  let flash = Device.Flash.create (Device.Flash.config ~nbanks:4 ~size_bytes:(8 * Units.mib) ()) in
  let dram_m = Device.Dram.create ~size_bytes:(4 * Units.mib) ~battery_backed:true () in
  let manager = Storage.Manager.create Storage.Manager.default_config ~engine:engine_m ~flash ~dram:dram_m in
  let memfs = Fs.Memfs.create_fs ~manager () in
  (* ffs side. *)
  let engine_f = Engine.create () in
  let disk = Device.Disk.create ~rng:(Rng.create ~seed:35) () in
  let dram_f = Device.Dram.create ~size_bytes:(4 * Units.mib) ~battery_backed:true () in
  let ffs = Fs.Ffs.create_fs ~engine:engine_f ~disk ~dram:dram_f () in
  let logical = ref 0 in
  List.iteri
    (fun si size ->
      for i = 0 to files_per_size - 1 do
        let path = Printf.sprintf "/s%d-%d" si i in
        logical := !logical + size;
        (match Fs.Memfs.create memfs path with Ok _ -> () | Error _ -> ());
        (match Fs.Memfs.write memfs path ~offset:0 ~bytes:size with Ok _ -> () | Error _ -> ());
        (match Fs.Ffs.create ffs path with Ok _ -> () | Error _ -> ());
        match Fs.Ffs.write ffs path ~offset:0 ~bytes:size with Ok _ -> () | Error _ -> ()
      done)
    sizes;
  ignore (Fs.Memfs.sync memfs);
  let mem_alloc =
    (Storage.Manager.stats manager).Storage.Manager.live_blocks
    * Storage.Manager.block_bytes manager
  in
  let ffs_alloc = Fs.Ffs.used_bytes ffs in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "space for %d small files (%s of logical data)"
           (List.length sizes * files_per_size)
           (Table.cell_bytes !logical))
      ~columns:
        [
          ("file system", Table.Left);
          ("allocated", Table.Right);
          ("overhead", Table.Right);
        ]
  in
  Table.add_row t
    [
      "memfs (512B blocks)";
      Table.cell_bytes mem_alloc;
      Table.cell_pct (float_of_int (mem_alloc - !logical) /. float_of_int !logical);
    ];
  Table.add_row t
    [
      "ffs (4KB blocks, 1KB fragments)";
      Table.cell_bytes ffs_alloc;
      Table.cell_pct (float_of_int (ffs_alloc - !logical) /. float_of_int !logical);
    ];
  (* And what classic whole-block allocation would have cost. *)
  let engine_w = Engine.create () in
  let disk_w = Device.Disk.create ~rng:(Rng.create ~seed:36) () in
  let dram_w = Device.Dram.create ~size_bytes:(4 * Units.mib) ~battery_backed:true () in
  let ffs_w =
    Fs.Ffs.create_fs
      ~config:{ Fs.Ffs.default_config with Fs.Ffs.frag_per_block = 1 }
      ~engine:engine_w ~disk:disk_w ~dram:dram_w ()
  in
  List.iteri
    (fun si size ->
      for i = 0 to files_per_size - 1 do
        let path = Printf.sprintf "/s%d-%d" si i in
        (match Fs.Ffs.create ffs_w path with Ok _ -> () | Error _ -> ());
        match Fs.Ffs.write ffs_w path ~offset:0 ~bytes:size with
        | Ok _ -> ()
        | Error _ -> ()
      done)
    sizes;
  let walloc = Fs.Ffs.used_bytes ffs_w in
  Table.add_row t
    [
      "ffs (4KB blocks, no fragments)";
      Table.cell_bytes walloc;
      Table.cell_pct (float_of_int (walloc - !logical) /. float_of_int !logical);
    ];
  Table.print t;
  Common.note
    "fine-grained flash allocation wastes a fraction of the disk FS's block rounding —      part of Section 3.1's 'improve space utilization'."

let run () =
  Common.section "E3: memory-resident vs disk file system (Section 3.1)";
  microbench_table ();
  space_table ();
  trace_table ()
