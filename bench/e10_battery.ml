(* E10 — Section 2's power argument: "flash memory offers significant
   power savings over disk drives, thus prolonging battery life", and
   robustness: no moving parts.
   Shape to reproduce: on a light, bursty mobile workload the solid-state
   machine's storage energy is dominated by milliwatt-level standby draw;
   the disk machine pays watts while spinning, and spin-down recovers much
   of it only at the cost of multi-second spin-up latency on the first
   access after an idle period. *)
open Sim

let projected_battery_hours ~energy_j ~elapsed ~battery_wh =
  let draw_w = energy_j /. Time.span_to_s elapsed in
  battery_wh *. 3600.0 /. draw_w /. 3600.0

let rec run () =
  Common.section "E10: storage power and battery life (Section 2)";
  let duration = Common.minutes 30.0 in
  let battery_wh = 10.0 in
  let t =
    Table.create ~title:"pim workload: storage energy and projected battery life"
      ~columns:
        [
          ("machine", Table.Left);
          ("storage energy (J)", Table.Right);
          ("avg storage draw (mW)", Table.Right);
          ("battery life (h, 10Wh, storage only)", Table.Right);
          ("read p99 (us)", Table.Right);
          ("spin-ups", Table.Right);
        ]
  in
  let row name cfg =
    let machine, r =
      Common.run_machine ~seed:101 ~cfg ~profile:Trace.Workloads.pim ~duration ()
    in
    let draw_mw = 1000.0 *. r.Ssmc.Machine.energy_j /. Time.span_to_s r.Ssmc.Machine.elapsed in
    Table.add_row t
      [
        name;
        Table.cell_f r.Ssmc.Machine.energy_j;
        Table.cell_f draw_mw;
        Printf.sprintf "%.0f"
          (projected_battery_hours ~energy_j:r.Ssmc.Machine.energy_j
             ~elapsed:r.Ssmc.Machine.elapsed ~battery_wh);
        Common.cell_us (Common.p99 r.Ssmc.Machine.read_hist_us);
        (match Ssmc.Machine.disk machine with
        | Some d -> Table.cell_i (Device.Disk.spin_ups d)
        | None -> "-");
      ]
  in
  row "solid-state (DRAM + flash)" (Ssmc.Config.solid_state ~seed:101 ());
  row "conventional, disk never spins down"
    (Ssmc.Config.conventional ~spindown_timeout:(Time.span_s 1e9) ~seed:101 ());
  row "conventional, 10s spin-down"
    (Ssmc.Config.conventional ~spindown_timeout:(Time.span_s 10.0) ~seed:101 ());
  row "conventional, 2s spin-down"
    (Ssmc.Config.conventional ~spindown_timeout:(Time.span_s 2.0) ~seed:101 ());
  Table.print t;
  Common.note
    "at this access rate the disk rarely idles past its timeout, so spin-down recovers \
     little energy while the aggressive setting pays a ~1s spin-up in the read tail; \
     the solid-state machine needs no such bargain.";
  Common.note
    "storage-only figures: the rest of the machine (CPU, display) draws the same either way.";
  recovery_table ()

(* What total power loss costs: the DRAM block map and write buffer are
   gone; a remount rebuilds the map by scanning flash sector headers.
   Battery-backed DRAM (primary for days, lithium backup for hours) exists
   so this path is almost never taken. *)
and recovery_table () =
  let t =
    Table.create ~title:"recovery after total power loss (remount scan of flash)"
      ~columns:
        [
          ("flash size", Table.Right);
          ("scan time", Table.Right);
          ("blocks recovered", Table.Right);
          ("dirty blocks lost", Table.Right);
        ]
  in
  List.iter
    (fun flash_mb ->
      let engine = Engine.create () in
      let flash =
        Device.Flash.create
          (Device.Flash.config ~nbanks:4 ~size_bytes:(flash_mb * Units.mib) ())
      in
      let dram = Device.Dram.create ~size_bytes:(4 * Units.mib) ~battery_backed:true () in
      let manager =
        Storage.Manager.create Storage.Manager.default_config ~engine ~flash ~dram
      in
      (* Fill a third of the device with data, leave a little dirty. *)
      let nblocks = Storage.Manager.capacity_blocks manager / 3 in
      for _ = 1 to nblocks do
        let b = Storage.Manager.alloc manager in
        Storage.Manager.load_cold manager b
      done;
      (* Let the preload drain every bank, then dirty a few blocks and pull
         the plug before their writeback deadline. *)
      let busy = ref (Engine.now engine) in
      for bank = 0 to Device.Flash.nbanks flash - 1 do
        busy := Time.max !busy (Device.Flash.bank_busy_until flash ~bank)
      done;
      Engine.run_until engine (Time.add !busy (Time.span_s 2.0));
      for _ = 1 to 32 do
        let b = Storage.Manager.alloc manager in
        ignore (Storage.Manager.write_block manager b)
      done;
      let _fresh, scan, report = Storage.Manager.crash_and_remount manager in
      Table.add_row t
        [
          Table.cell_bytes (flash_mb * Units.mib);
          Table.cell_span scan;
          Table.cell_i report.Storage.Manager.live_recovered;
          Table.cell_i report.Storage.Manager.buffered_lost;
        ])
    [ 10; 20; 40 ];
  Table.print t;
  Common.note
    "with batteries holding DRAM, reboot is instant and nothing is lost; the scan is the \
     price of the no-battery path only."
