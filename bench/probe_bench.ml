(* Sim.Probe overhead: the telemetry layer must be effectively free when
   nothing is listening.  Three measurements:

   - the disabled recording path (one atomic load and a branch), per call;
   - the enabled path, for scale;
   - the end-to-end replay, probes disabled, in ns per trace record.

   A fourth, non-Bechamel pass runs one instrumented replay with metrics on
   and counts how many probe recordings a trace record triggers on average.
   disabled-call cost x calls per record / replay cost per record is the
   fraction of replay time the dormant instrumentation can account for —
   CI pins it below 2%. *)
open Bechamel
open Toolkit

let p_bench = Sim.Probe.counter "bench.probe.incr"
let s_bench = Sim.Probe.summary "bench.probe.observe"

let test_disabled_incr =
  Test.make ~name:"probe: counter incr, disabled"
    (Staged.stage (fun () -> Sim.Probe.incr p_bench))

let test_disabled_observe =
  Test.make ~name:"probe: summary observe, disabled"
    (Staged.stage (fun () -> Sim.Probe.observe s_bench 123.0))

let test_enabled_incr =
  Test.make ~name:"probe: counter incr, enabled"
    (Staged.stage (fun () -> Sim.Probe.incr p_bench))

let test_enabled_observe =
  Test.make ~name:"probe: summary observe, enabled"
    (Staged.stage (fun () -> Sim.Probe.observe s_bench 123.0))

let gen_duration = Sim.Time.span_s 60.0

let gen_stream ~seed () =
  Trace.Synth.generate_seq Trace.Workloads.engineering
    ~rng:(Sim.Rng.create ~seed) ~duration:gen_duration

let gen_records =
  lazy (Seq.fold_left (fun n _ -> n + 1) 0 (gen_stream ~seed:3 ()).Trace.Synth.seq)

let replay () =
  let machine = Ssmc.Machine.create (Ssmc.Config.solid_state ~seed:5 ()) in
  let trace = gen_stream ~seed:3 () in
  Ssmc.Machine.preload machine trace.Trace.Synth.stream_initial_files;
  ignore (Ssmc.Machine.run_seq machine trace.Trace.Synth.seq)

let test_replay_disabled =
  Test.make ~name:"replay: 60s engineering, probes disabled"
    (Staged.stage replay)

(* How many probe recording CALLS one trace record triggers, measured on
   the same replay the denominator uses.  For most counters the value is
   the call count (one incr per unit); the byte counters and the VM fetch
   counter add many units in a single call, so they are excluded and their
   call sites counted via the sibling per-operation counter that shares the
   same branch (one bytes add per device read/program/write; one fetch add
   per program launch). *)
let bulk_counters =
  [
    "device.flash.bytes_read"; "device.flash.bytes_programmed";
    "device.dram.bytes_read"; "device.dram.bytes_written";
    "vm.exec.fetches"; "storage.heat.swept";
  ]

let recordings_per_record () =
  Sim.Probe.reset ();
  replay ();
  let snap = Sim.Probe.snapshot () in
  Sim.Probe.reset ();
  let per_unit =
    List.fold_left
      (fun acc (name, v) ->
        match v with
        | Sim.Probe.Snapshot.Counter c when not (List.mem name bulk_counters) ->
          acc + c
        | Sim.Probe.Snapshot.Counter _ -> acc
        | Sim.Probe.Snapshot.Gauge _ -> acc + 1
        | Sim.Probe.Snapshot.Summary s -> acc + s.n
        | Sim.Probe.Snapshot.Histogram buckets ->
          acc + List.fold_left (fun a (_, _, c) -> a + c) 0 buckets)
      0 snap
  in
  let c name = Sim.Probe.Snapshot.counter_value snap name in
  let bulk_calls =
    c "device.flash.reads" + c "device.flash.programs" + c "device.dram.reads"
    + c "device.dram.writes" + c "vm.exec.launches"
  in
  float_of_int (per_unit + bulk_calls) /. float_of_int (Lazy.force gen_records)

let estimate_all tests =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:true () in
  let grouped = Test.make_grouped ~name:"probe" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let estimate =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
      in
      (name, estimate) :: acc)
    results []

let find_estimate rows suffix =
  match
    List.find_opt
      (fun (name, _) ->
        String.length name >= String.length suffix
        && String.sub name
             (String.length name - String.length suffix)
             (String.length suffix)
           = suffix)
      rows
  with
  | Some (_, e) -> e
  | None -> nan

let run () =
  Common.section "probe overhead: dormant telemetry vs replay cost";
  (* The harness leaves metric recording on for the experiment tables; the
     disabled-path measurements need it off.  Restore on the way out. *)
  let was_metrics = Sim.Probe.metrics_enabled () in
  Sim.Probe.set_metrics false;
  let disabled_rows =
    estimate_all [ test_disabled_incr; test_disabled_observe; test_replay_disabled ]
  in
  Sim.Probe.set_metrics true;
  let enabled_rows = estimate_all [ test_enabled_incr; test_enabled_observe ] in
  let calls = recordings_per_record () in
  Sim.Probe.set_metrics was_metrics;
  let rows = disabled_rows @ enabled_rows in
  let t =
    Sim.Table.create ~title:"nanoseconds per call (OLS estimate)"
      ~columns:[ ("benchmark", Sim.Table.Left); ("ns", Sim.Table.Right) ]
  in
  List.iter
    (fun (name, e) -> Sim.Table.add_row t [ name; Printf.sprintf "%.1f" e ])
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  Sim.Table.print t;
  let disabled_incr_ns = find_estimate rows "counter incr, disabled" in
  let replay_ns = find_estimate rows "probes disabled" in
  let replay_ns_per_record = replay_ns /. float_of_int (Lazy.force gen_records) in
  let overhead =
    if Float.is_finite disabled_incr_ns && replay_ns_per_record > 0.0 then
      disabled_incr_ns *. calls /. replay_ns_per_record
    else nan
  in
  Common.put_metric "probe_disabled_incr_ns" disabled_incr_ns;
  Common.put_metric "probe_calls_per_record" calls;
  Common.put_metric "probe_replay_ns_per_record" replay_ns_per_record;
  Common.put_metric "probe_replay_overhead_frac" overhead;
  Common.note "%.1f probe calls per record, %.0f ns replay per record" calls
    replay_ns_per_record;
  Common.note
    "implied dormant-probe share of replay time: %.3f%% (CI pins < 2%%)"
    (100.0 *. overhead)
