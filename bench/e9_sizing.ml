(* E9 — Section 4: apportioning a fixed budget between DRAM and flash.
   Shape to reproduce: write latency falls steeply until the buffer covers
   the workload's writable working set, then flattens (the knee); beyond
   the knee extra DRAM buys little but costs flash capacity for permanent
   data; write-heavier workloads push the knee toward more DRAM. *)
open Sim

let table_for profile =
  let points =
    Ssmc.Sizing.sweep ~budget_dollars:1500.0
      ~duration:(Common.minutes 10.0)
      ~profile ()
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "budget split sweep, $1500, workload '%s'" profile.Trace.Synth.name)
      ~columns:
        [
          ("DRAM share", Table.Right);
          ("DRAM MB", Table.Right);
          ("flash MB", Table.Right);
          ("buffer MB", Table.Right);
          ("write us", Table.Right);
          ("read us", Table.Right);
          ("reduction", Table.Right);
          ("life (yr)", Table.Right);
          ("free for data MB", Table.Right);
        ]
  in
  List.iter
    (fun (p : Ssmc.Sizing.point) ->
      if p.Ssmc.Sizing.out_of_space then
        Table.add_row t
          [
            Table.cell_pct p.Ssmc.Sizing.dram_fraction;
            Table.cell_f p.Ssmc.Sizing.dram_mb;
            Table.cell_f p.Ssmc.Sizing.flash_mb;
            "-"; "out"; "of"; "space"; "-"; "-";
          ]
      else
        Table.add_row t
          [
            Table.cell_pct p.Ssmc.Sizing.dram_fraction;
            Table.cell_f p.Ssmc.Sizing.dram_mb;
            Table.cell_f p.Ssmc.Sizing.flash_mb;
            Printf.sprintf "%.2f" p.Ssmc.Sizing.buffer_mb;
            Common.cell_us p.Ssmc.Sizing.mean_write_us;
            Common.cell_us p.Ssmc.Sizing.mean_read_us;
            Table.cell_pct p.Ssmc.Sizing.write_reduction;
            (if Float.is_finite p.Ssmc.Sizing.lifetime_years then
               Printf.sprintf "%.1f" p.Ssmc.Sizing.lifetime_years
             else "inf");
            Table.cell_f p.Ssmc.Sizing.permanent_capacity_mb;
          ])
    points;
  Table.print t;
  Chart.print_bars ~title:"mean write latency vs DRAM share (log10 us)" ~unit:""
    (List.filter_map
       (fun (p : Ssmc.Sizing.point) ->
         if p.Ssmc.Sizing.out_of_space then None
         else
           Some
             ( Table.cell_pct p.Ssmc.Sizing.dram_fraction,
               Float.log10 (Float.max 1.0 p.Ssmc.Sizing.mean_write_us) ))
       points);
  (* Headline metrics for --json: every point's mean write latency plus
     the knee.  Deterministic at any --jobs, which the CI smoke asserts by
     diffing two runs. *)
  List.iter
    (fun (p : Ssmc.Sizing.point) ->
      Common.put_metric
        (Printf.sprintf "e9_%s_write_us_%02d" profile.Trace.Synth.name
           (int_of_float (Float.round (100.0 *. p.Ssmc.Sizing.dram_fraction))))
        p.Ssmc.Sizing.mean_write_us)
    points;
  match Ssmc.Sizing.knee points with
  | Some knee ->
    Common.put_metric
      (Printf.sprintf "e9_%s_knee_fraction" profile.Trace.Synth.name)
      knee.Ssmc.Sizing.dram_fraction;
    Common.note "knee for '%s': %.0f%% of budget on DRAM (%.1fMB DRAM / %.1fMB flash)"
      profile.Trace.Synth.name
      (100.0 *. knee.Ssmc.Sizing.dram_fraction)
      knee.Ssmc.Sizing.dram_mb knee.Ssmc.Sizing.flash_mb
  | None ->
    Common.put_metric
      (Printf.sprintf "e9_%s_knee_fraction" profile.Trace.Synth.name)
      (-1.0);
    Common.note "no feasible split for '%s'" profile.Trace.Synth.name

let run () =
  Common.section "E9: sizing DRAM vs flash under a fixed budget (Section 4)";
  table_for Trace.Workloads.engineering;
  table_for Trace.Workloads.pim;
  Common.note
    "the knee tracks the writable working set: the paper's 'the answer depends on the workload'."
