(* E12 — fleet-scale simulation: the paper's subject is a *product line*
   of solid-state mobile computers, so this experiment asks the
   population-level questions a single-machine run cannot: across N
   heterogeneous devices (three hardware models, four workloads,
   per-device seeds), where do the wear and lifetime distributions sit,
   and what fraction of the fleet wears out within the support horizon?

   Mechanically it is also the scale benchmark: devices stream through
   [Ssmc.Fleet] in shards, so peak heap is O(shard x jobs) no matter how
   large N is (the CI bounded-memory check pins this via the CLI), and
   the whole report is byte-identical at any --jobs (pinned by the e12_*
   snapshot diff).  Every device also takes one random power event, so
   fleet aggregation composes with the E11 fault machinery. *)

open Sim

let devices = if Common.quick then 64 else 512
let shard = 32

let run () =
  Common.section "E12: fleet-scale simulation (heterogeneous devices)";
  let spec =
    Ssmc.Fleet.spec ~devices ~shard ~base_seed:1993
      ~duration:(Common.minutes 2.0) ~faults_per_device:1 ()
  in
  let t0 = Unix.gettimeofday () in
  let r = Ssmc.Fleet.run spec in
  let wall = Unix.gettimeofday () -. t0 in
  Fmt.pr "@[<v>%a@]@." Ssmc.Fleet.pp_report r;
  let table =
    Table.create ~title:"fleet composition"
      ~columns:[ ("group", Table.Left); ("kind", Table.Left); ("devices", Table.Right) ]
  in
  List.iter
    (fun (name, n) -> Table.add_row table [ "variant"; name; string_of_int n ])
    r.Ssmc.Fleet.by_variant;
  List.iter
    (fun (name, n) -> Table.add_row table [ "workload"; name; string_of_int n ])
    r.Ssmc.Fleet.by_workload;
  Table.print table;
  let open Stat in
  let q sketch p =
    if Quantiles.count sketch = 0 then 0.0 else Quantiles.quantile sketch p
  in
  (* Deterministic headline metrics carry the e12_ prefix: pinned by the
     snapshot and compared across job counts in CI.  Wall-clock metrics
     carry the fleet_ prefix and are excluded from those diffs. *)
  Common.put_metric "e12_devices" (float_of_int r.Ssmc.Fleet.devices);
  Common.put_metric "e12_out_of_space" (float_of_int r.Ssmc.Fleet.out_of_space);
  Common.put_metric "e12_ops" (float_of_int r.Ssmc.Fleet.ops);
  Common.put_metric "e12_op_errors" (float_of_int r.Ssmc.Fleet.op_errors);
  Common.put_metric "e12_read_us_mean" (Summary.mean r.Ssmc.Fleet.read_us);
  Common.put_metric "e12_write_us_mean" (Summary.mean r.Ssmc.Fleet.write_us);
  Common.put_metric "e12_energy_j_mean" (Summary.mean r.Ssmc.Fleet.energy_j);
  Common.put_metric "e12_wear_p50" (q r.Ssmc.Fleet.wear_max_erases 0.5);
  Common.put_metric "e12_wear_p99" (q r.Ssmc.Fleet.wear_max_erases 0.99);
  Common.put_metric "e12_write_amp_mean" (Summary.mean r.Ssmc.Fleet.write_amp);
  Common.put_metric "e12_life_p50_years" (q r.Ssmc.Fleet.lifetime_years 0.5);
  Common.put_metric "e12_unbounded_lifetimes"
    (float_of_int r.Ssmc.Fleet.unbounded_lifetimes);
  Common.put_metric "e12_past_wearout_frac"
    (float_of_int r.Ssmc.Fleet.past_wearout /. float_of_int r.Ssmc.Fleet.devices);
  Common.put_metric "e12_faults" (float_of_int r.Ssmc.Fleet.faults);
  Common.put_metric "e12_cold_restarts" (float_of_int r.Ssmc.Fleet.cold_restarts);
  Common.put_metric "e12_blocks_lost" (float_of_int r.Ssmc.Fleet.blocks_lost);
  Common.put_metric "e12_files_damaged" (float_of_int r.Ssmc.Fleet.files_damaged);
  let heap_kw = (Gc.quick_stat ()).Gc.top_heap_words / 1000 in
  Common.put_metric "fleet_devices_per_s"
    (if wall > 0.0 then float_of_int devices /. wall else Float.infinity);
  Common.put_metric "fleet_wall_s" wall;
  Common.put_metric "fleet_peak_heap_kw" (float_of_int heap_kw);
  Common.put_metric "fleet_heap_kw_per_device"
    (float_of_int heap_kw /. float_of_int devices);
  Common.note "%d devices in %.1f s (%.1f devices/s), peak heap %d kwords"
    devices wall
    (if wall > 0.0 then float_of_int devices /. wall else Float.infinity)
    heap_kw;
  Common.note "wear p50/p99 %.0f/%.0f erases; %.1f%% of fleet past wear-out in %g y"
    (q r.Ssmc.Fleet.wear_max_erases 0.5)
    (q r.Ssmc.Fleet.wear_max_erases 0.99)
    (100.0 *. float_of_int r.Ssmc.Fleet.past_wearout /. float_of_int devices)
    spec.Ssmc.Fleet.wearout_horizon_years;
  Common.note "aggregates byte-identical at any --jobs and --fleet-shard (CI-pinned)"
