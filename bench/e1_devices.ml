(* E1 — Section 2's device comparison: DRAM vs flash vs small disks.
   Shape to reproduce: flash reads near DRAM reads; flash writes two orders
   of magnitude slower; disks milliseconds; flash draws the least power;
   DRAM ~10x disk cost per MB; densities within a small factor. *)
open Sim

let measured_disk_access spec ~seed =
  let disk = Device.Disk.create ~spec ~rng:(Rng.create ~seed) () in
  let summary = Stat.Summary.create () in
  let cursor = ref Time.zero in
  let nsectors = Device.Disk.capacity_bytes disk / 512 in
  let rng = Rng.create ~seed:(seed + 1) in
  for _ = 1 to 200 do
    let lba = Rng.int rng (nsectors - 1) in
    let op = Device.Disk.access disk ~now:!cursor ~lba ~bytes:512 ~kind:`Read in
    Stat.Summary.observe summary
      (Time.span_to_us (Time.diff op.Device.Disk.finish !cursor));
    cursor := op.Device.Disk.finish
  done;
  Stat.Summary.mean summary

let rec run () =
  Common.section "E1: storage technologies for small mobile computers (Section 2)";
  let t =
    Table.create ~title:"device characteristics (512B transfers)"
      ~columns:
        [
          ("device", Table.Left);
          ("read", Table.Right);
          ("write", Table.Right);
          ("erase unit", Table.Right);
          ("endurance", Table.Right);
          ("$/MB", Table.Right);
          ("MB/in3", Table.Right);
          ("active mW/MB", Table.Right);
          ("idle mW/MB", Table.Right);
        ]
  in
  let dram = Device.Specs.nec_dram in
  Table.add_row t
    [
      "NEC DRAM (battery-backed)";
      Table.cell_span (Device.Specs.access_time dram.Device.Specs.d_read ~bytes:512);
      Table.cell_span (Device.Specs.access_time dram.Device.Specs.d_write ~bytes:512);
      "-";
      "unlimited";
      Table.cell_f dram.Device.Specs.d_econ.Device.Specs.dollars_per_mb;
      Table.cell_f dram.Device.Specs.d_econ.Device.Specs.mb_per_cubic_inch;
      Table.cell_f dram.Device.Specs.d_active_mw_per_mb;
      Table.cell_f dram.Device.Specs.d_refresh_mw_per_mb;
    ];
  let flash_row name (spec : Device.Specs.flash_spec) =
    Table.add_row t
      [
        name;
        Table.cell_span (Device.Specs.access_time spec.Device.Specs.f_read ~bytes:512);
        Table.cell_span (Device.Specs.access_time spec.Device.Specs.f_write ~bytes:512);
        Table.cell_bytes spec.Device.Specs.f_sector_bytes;
        Printf.sprintf "%dk cycles" (spec.Device.Specs.f_endurance / 1000);
        Table.cell_f spec.Device.Specs.f_econ.Device.Specs.dollars_per_mb;
        Table.cell_f spec.Device.Specs.f_econ.Device.Specs.mb_per_cubic_inch;
        Table.cell_f spec.Device.Specs.f_active_mw_per_mb;
        Table.cell_f spec.Device.Specs.f_idle_mw_per_mb;
      ]
  in
  flash_row "Intel flash (memory-mapped)" Device.Specs.intel_flash;
  flash_row "SunDisk flash (drive-style)" Device.Specs.sundisk_flash;
  let disk_row name spec ~seed =
    let mib = Units.to_mib spec.Device.Specs.k_capacity_bytes in
    Table.add_row t
      [
        name;
        Printf.sprintf "%.1fms (measured avg)" (measured_disk_access spec ~seed /. 1000.0);
        "same as read";
        "-";
        "mechanical";
        Table.cell_f spec.Device.Specs.k_econ.Device.Specs.dollars_per_mb;
        Table.cell_f spec.Device.Specs.k_econ.Device.Specs.mb_per_cubic_inch;
        Table.cell_f (1000.0 *. spec.Device.Specs.k_spinning_w /. mib);
        Table.cell_f (1000.0 *. spec.Device.Specs.k_standby_w /. mib);
      ]
  in
  disk_row "HP KittyHawk 1.3\" disk" Device.Specs.hp_kittyhawk ~seed:21;
  disk_row "Fujitsu M2633 2.5\" disk" Device.Specs.fujitsu_m2633 ~seed:23;
  Table.print t;
  let flash = Device.Specs.intel_flash in
  let read_us =
    Time.span_to_us (Device.Specs.access_time flash.Device.Specs.f_read ~bytes:512)
  in
  let write_us =
    Time.span_to_us (Device.Specs.access_time flash.Device.Specs.f_write ~bytes:512)
  in
  Common.note "flash write/read ratio: %.0fx (paper: two orders of magnitude)"
    (write_us /. read_us);
  Common.note "DRAM/disk cost ratio: %.1fx (paper: ten times)"
    Device.Specs.(
      nec_dram.d_econ.dollars_per_mb /. hp_kittyhawk.k_econ.dollars_per_mb);
  which_flash ()

(* The paper contrasts the two flash products: Intel's memory-mapped parts
   (fast reads, for direct mapping and XIP) and SunDisk's drive-replacement
   parts (balanced, behind a controller).  Run the same machine on each —
   replicated over several seeds on the Domain pool, so the comparison
   carries 95% confidence half-widths instead of one sample per cell. *)
and which_flash () =
  let t =
    Table.create
      ~title:"which flash for secondary storage? (same machine, 3 seeds per cell)"
      ~columns:
        [
          ("workload", Table.Left);
          ("flash", Table.Left);
          ("read mean (us)", Table.Right);
          ("read p50 (us)", Table.Right);
          ("write mean (us)", Table.Right);
          ("energy (J)", Table.Right);
        ]
  in
  let duration = Common.minutes 5.0 in
  let seeds = [ 19; 20; 21 ] in
  let pm (c : Ssmc.Machine.ci) =
    Printf.sprintf "%.1f ±%.1f" c.Ssmc.Machine.mean c.Ssmc.Machine.half_width
  in
  List.iter
    (fun profile ->
      List.iter
        (fun (label, spec) ->
          let rep =
            Ssmc.Machine.run_replicated ~seeds (fun ~seed ->
                let cfg = Ssmc.Config.solid_state ~flash_spec:spec ~seed () in
                snd (Common.run_machine ~seed ~cfg ~profile ~duration ()))
          in
          (* The p50 comes from the seeds' pooled histogram. *)
          let pooled_reads =
            List.fold_left
              (fun acc (_, (r : Ssmc.Machine.result)) ->
                Stat.Histogram.merge acc r.Ssmc.Machine.read_hist_us)
              (Stat.Histogram.create ()) rep.Ssmc.Machine.runs
          in
          Table.add_row t
            [
              profile.Trace.Synth.name;
              label;
              pm rep.Ssmc.Machine.read_us;
              Common.cell_us (Common.p50 pooled_reads);
              pm rep.Ssmc.Machine.write_us;
              pm rep.Ssmc.Machine.energy_j;
            ])
        [ ("Intel (memory-mapped)", Device.Specs.intel_flash);
          ("SunDisk (drive-style)", Device.Specs.sundisk_flash) ];
      Table.add_rule t)
    [ Trace.Workloads.engineering; Trace.Workloads.database ];
  Table.print t;
  Common.note
    "memory-mapped flash wins read-heavy use (direct mapping, XIP); the drive-style \
     part's faster programs help only write-dominated loads."
