(* E6 — Section 3.3's headline number: "as little as one megabyte of
   battery-backed RAM can reduce write traffic by 40 to 50%" (Baker et
   al.).  Shape to reproduce: the reduction climbs steeply to the 40-50%
   band around 1MB of buffer on a Sprite-calibrated workload, then
   flattens; a longer writeback delay absorbs more; cancelling deleted
   data (short-lived files) is a large share of the savings. *)
open Sim

let buffer_config ~capacity_bytes ~delay_s ~refresh =
  {
    Storage.Write_buffer.capacity_blocks = capacity_bytes / 512;
    writeback_delay = Time.span_s delay_s;
    refresh_on_rewrite = refresh;
  }

(* Counters come from the probe registry rather than the manager's private
   stats record: preload resets both through the same chokepoint, so the
   snapshot taken right after the replay is exactly this run's traffic. *)
let run_with ?flush_watermark ~buffer ~seed ~duration () =
  let manager_cfg =
    { Storage.Manager.default_config with Storage.Manager.buffer; flush_watermark }
  in
  let cfg = Ssmc.Config.solid_state ~flash_mb:24 ~dram_mb:16 ~manager:manager_cfg ~seed () in
  let _m, result =
    Common.run_machine ~seed ~cfg ~profile:Trace.Workloads.engineering ~duration ()
  in
  (result, Probe.snapshot ())

let reduction snap =
  let writes = Probe.Snapshot.counter_value snap "storage.manager.client_writes" in
  let flushed = Probe.Snapshot.counter_value snap "storage.manager.blocks_flushed" in
  if writes = 0 then 0.0
  else 1.0 -. (float_of_int flushed /. float_of_int writes)

let row_of ~label ((result : Ssmc.Machine.result), snap) =
  let c name = Probe.Snapshot.counter_value snap name in
  [
    label;
    Table.cell_bytes (512 * c "storage.manager.client_writes");
    Table.cell_bytes (512 * c "storage.manager.blocks_flushed");
    Table.cell_pct (reduction snap);
    Table.cell_i (c "storage.write_buffer.absorbed");
    Table.cell_i (c "storage.write_buffer.cancelled");
    Common.cell_us (Stat.Summary.mean result.Ssmc.Machine.write_latency);
    (match result.Ssmc.Machine.lifetime_years with
    | Some y when Float.is_finite y -> Printf.sprintf "%.1f" y
    | _ -> "inf");
  ]

let columns =
  [
    ("configuration", Table.Left);
    ("written", Table.Right);
    ("to flash", Table.Right);
    ("reduction", Table.Right);
    ("absorbed", Table.Right);
    ("cancelled", Table.Right);
    ("write us", Table.Right);
    ("life (yr)", Table.Right);
  ]

let run () =
  Common.section "E6: DRAM write buffer vs flash write traffic (Section 3.3)";
  let duration = Common.minutes 20.0 in
  let t = Table.create ~title:"buffer size sweep (30s writeback delay)" ~columns in
  let curve = ref [] in
  List.iter
    (fun kib ->
      let buffer =
        buffer_config ~capacity_bytes:(kib * 1024) ~delay_s:30.0 ~refresh:true
      in
      let run = run_with ~buffer ~seed:61 ~duration () in
      curve :=
        (Table.cell_bytes (kib * 1024), 100.0 *. reduction (snd run)) :: !curve;
      Table.add_row t (row_of ~label:(Table.cell_bytes (kib * 1024)) run))
    [ 0; 128; 256; 512; 1024; 2048; 4096; 8192 ];
  Table.print t;
  Chart.print_bars ~title:"write-traffic reduction vs buffer size" ~unit:"%"
    (List.rev !curve);

  (* What fraction of written bytes dies within the delay window at all —
     the theoretical ceiling from the trace itself. *)
  let trace =
    Trace.Synth.generate Trace.Workloads.engineering ~rng:(Rng.create ~seed:61) ~duration
  in
  let death = Trace.Stats.write_death trace.Trace.Synth.records ~window:(Time.span_s 30.0) in
  Common.note "workload ceiling: %.1f%% of written bytes die within 30s (Baker: ~50%%)"
    (100.0 *. death.Trace.Stats.dead_fraction);

  let t2 = Table.create ~title:"ablations at 1MB of buffer" ~columns in
  List.iter
    (fun (label, delay_s, refresh) ->
      let buffer = buffer_config ~capacity_bytes:Units.mib ~delay_s ~refresh in
      Table.add_row t2 (row_of ~label (run_with ~buffer ~seed:61 ~duration ())))
    [
      ("5s delay", 5.0, true);
      ("30s delay (default)", 30.0, true);
      ("120s delay", 120.0, true);
      ("30s, no deadline refresh", 30.0, false);
    ];
  (* Flush-policy ablation: capacity-threshold flushing on top of the
     deadline. *)
  List.iter
    (fun (label, watermark) ->
      let buffer = buffer_config ~capacity_bytes:Units.mib ~delay_s:30.0 ~refresh:true in
      Table.add_row t2
        (row_of ~label (run_with ~flush_watermark:watermark ~buffer ~seed:61 ~duration ())))
    [ ("30s + flush at 50% full", 0.5); ("30s + flush at 80% full", 0.8) ];
  Table.print t2;

  let t3 = Table.create ~title:"1MB buffer across workloads" ~columns in
  List.iter
    (fun profile ->
      let manager_cfg =
        { Storage.Manager.default_config with
          Storage.Manager.buffer = buffer_config ~capacity_bytes:Units.mib ~delay_s:30.0 ~refresh:true }
      in
      let cfg = Ssmc.Config.solid_state ~flash_mb:24 ~dram_mb:16 ~manager:manager_cfg ~seed:62 () in
      let _m, result = Common.run_machine ~seed:62 ~cfg ~profile ~duration () in
      Table.add_row t3 (row_of ~label:profile.Trace.Synth.name (result, Probe.snapshot ())))
    Trace.Workloads.all;
  Table.print t3
