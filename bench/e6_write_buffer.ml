(* E6 — Section 3.3's headline number: "as little as one megabyte of
   battery-backed RAM can reduce write traffic by 40 to 50%" (Baker et
   al.).  Shape to reproduce: the reduction climbs steeply to the 40-50%
   band around 1MB of buffer on a Sprite-calibrated workload, then
   flattens; a longer writeback delay absorbs more; cancelling deleted
   data (short-lived files) is a large share of the savings. *)
open Sim

let buffer_config ~capacity_bytes ~delay_s ~refresh =
  {
    Storage.Write_buffer.capacity_blocks = capacity_bytes / 512;
    writeback_delay = Time.span_s delay_s;
    refresh_on_rewrite = refresh;
  }

let run_with ?flush_watermark ~buffer ~seed ~duration () =
  let manager_cfg =
    { Storage.Manager.default_config with Storage.Manager.buffer; flush_watermark }
  in
  let cfg = Ssmc.Config.solid_state ~flash_mb:24 ~dram_mb:16 ~manager:manager_cfg ~seed () in
  let _m, result =
    Common.run_machine ~seed ~cfg ~profile:Trace.Workloads.engineering ~duration ()
  in
  result

let row_of ~label (result : Ssmc.Machine.result) =
  let stats = Option.get result.Ssmc.Machine.manager_stats in
  [
    label;
    Table.cell_bytes (512 * stats.Storage.Manager.client_writes);
    Table.cell_bytes (512 * stats.Storage.Manager.blocks_flushed);
    Table.cell_pct stats.Storage.Manager.write_reduction;
    Table.cell_i stats.Storage.Manager.absorbed_writes;
    Table.cell_i stats.Storage.Manager.cancelled_blocks;
    Common.cell_us (Stat.Summary.mean result.Ssmc.Machine.write_latency);
    (match result.Ssmc.Machine.lifetime_years with
    | Some y when Float.is_finite y -> Printf.sprintf "%.1f" y
    | _ -> "inf");
  ]

let columns =
  [
    ("configuration", Table.Left);
    ("written", Table.Right);
    ("to flash", Table.Right);
    ("reduction", Table.Right);
    ("absorbed", Table.Right);
    ("cancelled", Table.Right);
    ("write us", Table.Right);
    ("life (yr)", Table.Right);
  ]

let run () =
  Common.section "E6: DRAM write buffer vs flash write traffic (Section 3.3)";
  let duration = Common.minutes 20.0 in
  let t = Table.create ~title:"buffer size sweep (30s writeback delay)" ~columns in
  let curve = ref [] in
  List.iter
    (fun kib ->
      let buffer =
        buffer_config ~capacity_bytes:(kib * 1024) ~delay_s:30.0 ~refresh:true
      in
      let result = run_with ~buffer ~seed:61 ~duration () in
      let stats = Option.get result.Ssmc.Machine.manager_stats in
      curve :=
        (Table.cell_bytes (kib * 1024), 100.0 *. stats.Storage.Manager.write_reduction)
        :: !curve;
      Table.add_row t (row_of ~label:(Table.cell_bytes (kib * 1024)) result))
    [ 0; 128; 256; 512; 1024; 2048; 4096; 8192 ];
  Table.print t;
  Chart.print_bars ~title:"write-traffic reduction vs buffer size" ~unit:"%"
    (List.rev !curve);

  (* What fraction of written bytes dies within the delay window at all —
     the theoretical ceiling from the trace itself. *)
  let trace =
    Trace.Synth.generate Trace.Workloads.engineering ~rng:(Rng.create ~seed:61) ~duration
  in
  let death = Trace.Stats.write_death trace.Trace.Synth.records ~window:(Time.span_s 30.0) in
  Common.note "workload ceiling: %.1f%% of written bytes die within 30s (Baker: ~50%%)"
    (100.0 *. death.Trace.Stats.dead_fraction);

  let t2 = Table.create ~title:"ablations at 1MB of buffer" ~columns in
  List.iter
    (fun (label, delay_s, refresh) ->
      let buffer = buffer_config ~capacity_bytes:Units.mib ~delay_s ~refresh in
      let result = run_with ~buffer ~seed:61 ~duration () in
      Table.add_row t2 (row_of ~label result))
    [
      ("5s delay", 5.0, true);
      ("30s delay (default)", 30.0, true);
      ("120s delay", 120.0, true);
      ("30s, no deadline refresh", 30.0, false);
    ];
  (* Flush-policy ablation: capacity-threshold flushing on top of the
     deadline. *)
  List.iter
    (fun (label, watermark) ->
      let buffer = buffer_config ~capacity_bytes:Units.mib ~delay_s:30.0 ~refresh:true in
      let result = run_with ~flush_watermark:watermark ~buffer ~seed:61 ~duration () in
      Table.add_row t2 (row_of ~label result))
    [ ("30s + flush at 50% full", 0.5); ("30s + flush at 80% full", 0.8) ];
  Table.print t2;

  let t3 = Table.create ~title:"1MB buffer across workloads" ~columns in
  List.iter
    (fun profile ->
      let manager_cfg =
        { Storage.Manager.default_config with
          Storage.Manager.buffer = buffer_config ~capacity_bytes:Units.mib ~delay_s:30.0 ~refresh:true }
      in
      let cfg = Ssmc.Config.solid_state ~flash_mb:24 ~dram_mb:16 ~manager:manager_cfg ~seed:62 () in
      let _m, result = Common.run_machine ~seed:62 ~cfg ~profile ~duration () in
      Table.add_row t3 (row_of ~label:profile.Trace.Synth.name result))
    Trace.Workloads.all;
  Table.print t3
