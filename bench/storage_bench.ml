(* Storage-manager decision paths: the indexed segment-state structures
   against the scan-per-decision reference they replaced.

   Three measurements:
   - Bechamel throughput of the steady-state rewrite+clean loop at 64, 512,
     and 4096 segments under both selectors — the scan reference grows
     linearly with segment count, the indexed path should stay near-flat;
   - allocation churn (GC minor words per write) under both selectors —
     the reference's per-decision Array.to_list / List.filter round trips
     against the list-free index walk;
   - a scaled-down E7-style policy grid wall-clocked under both selectors,
     with the final statistics asserted equal (the decisions are
     byte-identical; only the time to make them differs). *)

open Bechamel
open Toolkit
open Sim

(* 4 banks, 8-sector segments, 512B sectors: [nsegments] scales the flash
   size, everything else stays fixed.  Write-through buffering so every
   rewrite exercises acquire (and, at steady state, cleaning). *)
let make_manager ?(cleaner = Storage.Cleaner.Cost_benefit) ~nsegments ~selector () =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create
      (Device.Flash.config ~nbanks:4 ~size_bytes:(nsegments * 8 * 512) ())
  in
  let dram = Device.Dram.create ~size_bytes:(4 * Units.mib) ~battery_backed:true () in
  let cfg =
    {
      Storage.Manager.default_config with
      Storage.Manager.segment_sectors = 8;
      cleaner;
      buffer =
        {
          Storage.Write_buffer.capacity_blocks = 0;
          writeback_delay = Time.span_s 1.0;
          refresh_on_rewrite = false;
        };
      selector;
    }
  in
  (engine, Storage.Manager.create cfg ~engine ~flash ~dram)

(* A filled manager plus a deterministic rewrite stream: 85% of capacity
   live, rewrites spread over every block by an LCG so segments age into
   the mixed-utilization regime the cleaner actually faces. *)
let rewrite_state ~nsegments ~selector =
  let engine, manager = make_manager ~nsegments ~selector () in
  let live = 85 * Storage.Manager.capacity_blocks manager / 100 in
  let blocks = Array.init live (fun _ -> Storage.Manager.alloc manager) in
  Array.iter (fun b -> Storage.Manager.load_cold manager b) blocks;
  Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 1.0));
  let state = ref 12345 in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    blocks.(!state mod live)
  in
  (engine, manager, next)

let rewrites_per_run = 64

let throughput_test ~nsegments ~selector ~label =
  let engine, manager, next = rewrite_state ~nsegments ~selector in
  Test.make
    ~name:(Printf.sprintf "storage: %d rewrites, %d segs, %s" rewrites_per_run
             nsegments label)
    (Staged.stage (fun () ->
         for _ = 1 to rewrites_per_run do
           ignore (Storage.Manager.write_block manager (next ()))
         done;
         Engine.run_until engine (Time.add (Engine.now engine) (Time.span_us 500.0))))

let selectors =
  [ (Storage.Manager.Indexed, "indexed"); (Storage.Manager.Scan, "scan") ]

let sizes = [ 64; 512; 4096 ]

let throughput_table () =
  let tests =
    List.concat_map
      (fun nsegments ->
        List.map
          (fun (selector, label) -> throughput_test ~nsegments ~selector ~label)
          selectors)
      sizes
  in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Bechamel.Time.second 0.25) ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"storage" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimate_of name =
    Hashtbl.fold
      (fun key ols acc ->
        (* Keys are "storage <test name>". *)
        let suffix_matches =
          String.length key >= String.length name
          && String.sub key (String.length key - String.length name) (String.length name)
             = name
        in
        if suffix_matches then
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> acc
        else acc)
      results nan
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "rewrite+clean cost vs segment count (%d rewrites per run)"
           rewrites_per_run)
      ~columns:
        [
          ("segments", Table.Right);
          ("scan ns/run", Table.Right);
          ("indexed ns/run", Table.Right);
          ("speedup", Table.Right);
        ]
  in
  List.iter
    (fun nsegments ->
      let ns label =
        estimate_of
          (Printf.sprintf "storage: %d rewrites, %d segs, %s" rewrites_per_run
             nsegments label)
      in
      let scan = ns "scan" and indexed = ns "indexed" in
      Common.put_metric (Printf.sprintf "storage_ns_scan_%d" nsegments) scan;
      Common.put_metric (Printf.sprintf "storage_ns_indexed_%d" nsegments) indexed;
      Table.add_row t
        [
          Table.cell_i nsegments;
          Printf.sprintf "%.0f" scan;
          Printf.sprintf "%.0f" indexed;
          Printf.sprintf "%.1fx" (scan /. indexed);
        ])
    sizes;
  Table.print t;
  Common.note
    "scan cost grows with the segment array; the indexed walk should stay near-flat \
     from 512 to 4096 segments."

(* Allocation churn of the decision paths: minor-heap words per client
   write.  The scan reference materializes candidate lists twice per
   acquire; the index walk allocates only balanced-tree nodes on state
   transitions. *)
let allocation_table () =
  let writes = 4000 in
  let words_per_write selector =
    let _engine, manager, next = rewrite_state ~nsegments:512 ~selector in
    let before = Gc.minor_words () in
    for _ = 1 to writes do
      ignore (Storage.Manager.write_block manager (next ()))
    done;
    (Gc.minor_words () -. before) /. float_of_int writes
  in
  let t =
    Table.create ~title:"allocation churn (512 segments, write-through rewrites)"
      ~columns:[ ("selector", Table.Left); ("minor words / write", Table.Right) ]
  in
  List.iter
    (fun (selector, label) ->
      let words = words_per_write selector in
      Common.put_metric ("storage_words_per_write_" ^ label) words;
      Table.add_row t [ label; Printf.sprintf "%.0f" words ])
    selectors;
  Table.print t

(* Deadline-refresh churn: a hot working set rewritten in place, every
   rewrite refreshing its writeback deadline.  Each refresh enqueues a
   fresh timing-wheel entry and strands the old one; compaction must keep
   the queue within a constant factor of the live population (it used to
   grow by one stale entry per rewrite), and the amortized allocation per
   write must stay flat. *)
let refresh_churn_table () =
  let writes = 20_000 in
  let hot = 64 in
  let engine = Engine.create () in
  let flash =
    Device.Flash.create (Device.Flash.config ~nbanks:4 ~size_bytes:(4 * Units.mib) ())
  in
  let dram = Device.Dram.create ~size_bytes:(8 * Units.mib) ~battery_backed:true () in
  let cfg =
    {
      Storage.Manager.default_config with
      Storage.Manager.segment_sectors = 8;
      selector = Storage.Manager.Indexed;
      buffer =
        {
          Storage.Write_buffer.capacity_blocks = 256;
          writeback_delay = Time.span_s 600.0;
          refresh_on_rewrite = true;
        };
    }
  in
  let manager = Storage.Manager.create cfg ~engine ~flash ~dram in
  let blocks = Array.init hot (fun _ -> Storage.Manager.alloc manager) in
  Array.iter (fun b -> ignore (Storage.Manager.write_block manager b)) blocks;
  let before = Gc.minor_words () in
  for i = 1 to writes do
    ignore (Storage.Manager.write_block manager blocks.(i mod hot));
    if i mod 256 = 0 then
      Engine.run_until engine (Time.add (Engine.now engine) (Time.span_ms 1.0))
  done;
  let words = (Gc.minor_words () -. before) /. float_of_int writes in
  let pending = Storage.Manager.buffer_pending_entries manager in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "deadline-refresh churn (%d rewrites over %d hot blocks)"
           writes hot)
      ~columns:
        [
          ("minor words / write", Table.Right);
          ("queue entries", Table.Right);
          ("dirty blocks", Table.Right);
        ]
  in
  Common.put_metric "storage_words_per_refresh_write" words;
  Common.put_metric "storage_refresh_queue_entries" (float_of_int pending);
  Table.add_row t
    [ Printf.sprintf "%.0f" words; Table.cell_i pending; Table.cell_i hot ];
  Table.print t;
  Common.note
    "compaction keeps the writeback queue within a small constant of the dirty \
     population; without it the queue holds one stale entry per rewrite."

(* Flush batching through the card array: a drain issues one contiguous
   group per destination card (never ping-ponging sector-by-sector across
   cards), so the per-flush allocation cost should stay flat in the card
   count — each card drains its own buffer once. *)
let array_flush_table () =
  let cycles = 50 in
  let writes_per_cycle = 64 in
  let words_per_flush ncards =
    let engine = Engine.create () in
    let flashes =
      Stdlib.Array.init ncards (fun _ ->
          Device.Flash.create
            (Device.Flash.config ~nbanks:4 ~size_bytes:(4 * Units.mib) ()))
    in
    let dram =
      Device.Dram.create ~size_bytes:(8 * Units.mib) ~battery_backed:true ()
    in
    let cfg =
      {
        Storage.Manager.default_config with
        Storage.Manager.segment_sectors = 8;
        selector = Storage.Manager.Indexed;
        buffer =
          {
            Storage.Write_buffer.capacity_blocks = 1024;
            writeback_delay = Time.span_s 60.0;
            refresh_on_rewrite = false;
          };
      }
    in
    let store =
      if ncards = 1 then
        Storage.Store.Single (Storage.Manager.create cfg ~engine ~flash:flashes.(0) ~dram)
      else
        Storage.Store.Striped
          (Storage.Array.create
             ~striping:(Storage.Striping.Round_robin { strip_blocks = 4 })
             cfg ~engine ~flashes ~dram)
    in
    let blocks =
      Array.init (cycles * writes_per_cycle) (fun _ -> Storage.Store.alloc store)
    in
    let cursor = ref 0 in
    let words = ref 0.0 in
    for _ = 1 to cycles do
      for _ = 1 to writes_per_cycle do
        ignore (Storage.Store.write_block store blocks.(!cursor));
        incr cursor
      done;
      let before = Gc.minor_words () in
      ignore (Storage.Store.flush_all store);
      words := !words +. (Gc.minor_words () -. before);
      Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 1.0))
    done;
    !words /. float_of_int cycles
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "array drain cost (%d fresh blocks per flush)" writes_per_cycle)
      ~columns:[ ("cards", Table.Right); ("minor words / flush", Table.Right) ]
  in
  List.iter
    (fun ncards ->
      let words = words_per_flush ncards in
      Common.put_metric (Printf.sprintf "storage_words_per_flush_%dcards" ncards) words;
      Table.add_row t [ Table.cell_i ncards; Printf.sprintf "%.0f" words ])
    [ 1; 2; 4 ];
  Table.print t;
  Common.note
    "grouped per-card drains keep flush allocation flat in the card count; the \
     work itself splits across cards."

(* The front cache on the array's hot paths.  Every [write_block] and
   [free_block] invalidates the written handle and every cached read is a
   lookup — each a single hash probe (invalidate and insert used to pay a
   [find_opt] before their [remove]/[replace]).  One cycle per measured op
   exercises all three paths: invalidate a resident handle, re-insert it
   on the miss read, then hit it. *)
let front_cache_table () =
  let ops = 4000 in
  let nblocks = 128 in
  let engine = Engine.create () in
  let flashes =
    Stdlib.Array.init 2 (fun _ ->
        Device.Flash.create (Device.Flash.config ~nbanks:4 ~size_bytes:(4 * Units.mib) ()))
  in
  let dram = Device.Dram.create ~size_bytes:(8 * Units.mib) ~battery_backed:true () in
  let cfg =
    {
      Storage.Manager.default_config with
      Storage.Manager.segment_sectors = 8;
      selector = Storage.Manager.Indexed;
      buffer =
        {
          Storage.Write_buffer.capacity_blocks = 1024;
          writeback_delay = Time.span_s 60.0;
          refresh_on_rewrite = false;
        };
    }
  in
  let a =
    Storage.Array.create ~front_cache_blocks:256
      ~striping:(Storage.Striping.Round_robin { strip_blocks = 4 })
      cfg ~engine ~flashes ~dram
  in
  let blocks = Stdlib.Array.init nblocks (fun _ -> Storage.Array.alloc a) in
  Stdlib.Array.iter (Storage.Array.load_cold a) blocks;
  Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 60.0));
  Stdlib.Array.iter (fun b -> ignore (Storage.Array.read_block a b)) blocks;
  let before = Gc.minor_words () in
  for i = 1 to ops do
    let b = blocks.(i mod nblocks) in
    ignore (Storage.Array.write_block a b);
    ignore (Storage.Array.read_block a b);
    ignore (Storage.Array.read_block a b)
  done;
  let words = (Gc.minor_words () -. before) /. float_of_int ops in
  let t =
    Table.create
      ~title:"front-cache hot paths (invalidate + insert + hit per cycle)"
      ~columns:[ ("cache blocks", Table.Right); ("minor words / cycle", Table.Right) ]
  in
  Common.put_metric "storage_words_per_front_cycle" words;
  Table.add_row t [ Table.cell_i 256; Printf.sprintf "%.0f" words ];
  Table.print t;
  Common.note
    "each front-cache touch is one hash probe; the cycle's budget is dominated \
     by the write and miss-read themselves."

(* A scaled-down E7 cleaner grid, wall-clocked under both selectors.  The
   two runs must agree on every statistic — the selectors differ only in
   how fast they reach the same decisions. *)
let e7_grid selector =
  let cells = ref [] in
  List.iter
    (fun cleaner ->
      List.iter
        (fun utilization ->
          let engine, manager = make_manager ~cleaner ~nsegments:1024 ~selector () in
          let capacity = Storage.Manager.capacity_blocks manager in
          let live = int_of_float (float_of_int capacity *. utilization) in
          let blocks = Array.init live (fun _ -> Storage.Manager.alloc manager) in
          Array.iter (fun b -> Storage.Manager.load_cold manager b) blocks;
          Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 60.0));
          Storage.Manager.reset_traffic manager;
          let rng = Rng.create ~seed:75 in
          let zipf = Distribution.Zipf.create ~n:live ~s:1.0 in
          for _ = 1 to if Common.quick then 40 else 120 do
            for _ = 1 to 128 do
              ignore
                (Storage.Manager.write_block manager
                   blocks.(Distribution.Zipf.sample zipf rng))
            done;
            Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 1.0))
          done;
          cells :=
            (Storage.Manager.stats manager, Storage.Manager.wear_evenness manager)
            :: !cells)
        [ 0.75; 0.90 ])
    [ Storage.Cleaner.Greedy; Storage.Cleaner.Cost_benefit ];
  List.rev !cells

let e7_comparison () =
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let scan_cells, scan_s = time (fun () -> e7_grid Storage.Manager.Scan) in
  let indexed_cells, indexed_s = time (fun () -> e7_grid Storage.Manager.Indexed) in
  if scan_cells <> indexed_cells then
    failwith "storage bench: selectors disagreed on the E7 grid results";
  Common.put_metric "storage_e7_wall_scan_s" scan_s;
  Common.put_metric "storage_e7_wall_indexed_s" indexed_s;
  Common.note
    "E7-style grid (1024 segments): scan %.2fs, indexed %.2fs (%.1fx); results identical."
    scan_s indexed_s (scan_s /. indexed_s)

let run () =
  Common.section "storage manager: indexed decision structures vs scan reference";
  throughput_table ();
  allocation_table ();
  refresh_churn_table ();
  array_flush_table ();
  front_cache_table ();
  e7_comparison ()
