(* E13 — striped multi-card storage arrays (extends E8's bank story across
   whole cards).
   Shape to reproduce: with one card, background program/erase traffic
   (flushes and cleaning) holds the card's banks busy and read latency
   collapses into the erase shadow; striping the same workload over N
   independent cards spreads both the writes and the reads, so aggregate
   read throughput scales and the p99 tail drops.  A shared front cache
   over the array serves cross-card hot blocks at DRAM speed without
   touching any card.

   The sweep is card count x strip size x workload; each cell reports
   aggregate read throughput, read p99, and per-card wear/occupancy (the
   occupancy comes from the per-card busy_us probe summaries, i.e. the
   probe-label scheme Banks.probe_label defines for managers and cards
   alike).  A cards=1 cell is also re-run against the raw manager API to
   check the store wrapper adds nothing. *)
open Sim

let nbanks = 4
let flash_bytes_per_card = 2 * Units.mib
let block_bytes = 512
let nstreams = 8

type workload = Erase_heavy | Read_hot

let workload_name = function Erase_heavy -> "erase" | Read_hot -> "readhot"

type cell = { cards : int; strip : int; workload : workload }

let tag { cards; strip; workload } =
  Printf.sprintf "%dc_s%d_%s" cards strip (workload_name workload)

let mgr_cfg () =
  {
    Storage.Manager.default_config with
    Storage.Manager.selector = Common.selector;
    buffer =
      {
        Storage.Write_buffer.capacity_blocks = 512;
        writeback_delay = Time.span_s 5.0;
        refresh_on_rewrite = false;
      };
  }

(* The measured loop speaks to the store through this record so the same
   driver can run against a [Store.t] and against the raw [Manager.t] API —
   the cards=1 equivalence check below compares the two byte for byte. *)
type ops = {
  alloc : unit -> int;
  load_cold : int -> unit;
  write : int -> unit;
  read_at : at:Time.t -> int -> Time.t;
  flush : unit -> unit;
  reset : unit -> unit;
}

let ops_of_store store =
  {
    alloc = (fun () -> Storage.Store.alloc store);
    load_cold = Storage.Store.load_cold store;
    write = (fun b -> ignore (Storage.Store.write_block store b));
    read_at = (fun ~at b -> Storage.Store.read_block_at store ~at b);
    flush = (fun () -> ignore (Storage.Store.flush_all store));
    reset = (fun () -> Storage.Store.reset_traffic store);
  }

let ops_of_manager m =
  {
    alloc = (fun () -> Storage.Manager.alloc m);
    load_cold = Storage.Manager.load_cold m;
    write = (fun b -> ignore (Storage.Manager.write_block m b));
    read_at = (fun ~at b -> Storage.Manager.read_block_at m ~at b);
    flush = (fun () -> ignore (Storage.Manager.flush_all m));
    reset = (fun () -> Storage.Manager.reset_traffic m);
  }

(* Cold read-mostly data plus a churn set the writer rewrites; [nstreams]
   closed-loop readers each thread their own completion cursor, so reads
   overlap in simulated time and the makespan is the slowest stream's. *)
let drive ~engine ~ops ~workload =
  let cold = Array.init 2048 (fun _ -> ops.alloc ()) in
  let churn = Array.init 1024 (fun _ -> ops.alloc ()) in
  Array.iter ops.load_cold cold;
  Array.iter ops.load_cold churn;
  Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 60.0));
  ops.reset ();
  let rounds = if Common.quick then 30 else 120 in
  let reads_per_stream = 4 in
  let writes_per_round = match workload with Erase_heavy -> 96 | Read_hot -> 8 in
  let read_set =
    (* Read-hot concentrates on a front-cache-sized hot subset; erase-heavy
       reads spread over all the cold data. *)
    match workload with Erase_heavy -> cold | Read_hot -> Array.sub cold 0 128
  in
  let lat = Stat.Histogram.create () in
  let start = Engine.now engine in
  let cursors = Array.make nstreams start in
  let states = Array.init nstreams (fun i -> 12345 + (i * 7919)) in
  let lcg s = ((s * 1103515245) + 12345) land 0x3FFFFFFF in
  let wstate = ref 999 in
  let reads = ref 0 in
  for _round = 1 to rounds do
    for _ = 1 to writes_per_round do
      wstate := lcg !wstate;
      ops.write churn.(!wstate mod Array.length churn)
    done;
    ops.flush ();
    for _ = 1 to reads_per_stream do
      for i = 0 to nstreams - 1 do
        states.(i) <- lcg states.(i);
        let b = read_set.(states.(i) mod Array.length read_set) in
        let at = Time.max cursors.(i) (Engine.now engine) in
        let fin = ops.read_at ~at b in
        Stat.Histogram.observe lat (Time.span_to_us (Time.diff fin at));
        cursors.(i) <- fin;
        incr reads
      done
    done;
    Engine.run_until engine (Array.fold_left Time.max (Engine.now engine) cursors)
  done;
  let finish = Array.fold_left Time.max start cursors in
  let makespan_us = Time.span_to_us (Time.diff finish start) in
  let tput_mb_s = float_of_int (!reads * block_bytes) /. makespan_us in
  (tput_mb_s, lat, makespan_us)

type point = {
  p_tput_mb_s : float;
  p_lat : Stat.Histogram.t;
  p_occ : float array;  (* Per card: share of the array's total busy time. *)
  p_wear_max : int array;  (* Per card: max sector erase count. *)
  p_front_hits : int;
}

let summary_sum snap name =
  match Probe.Snapshot.find snap name with
  | Some (Probe.Snapshot.Summary { sum; _ }) -> sum
  | _ -> 0.0

let run_point ({ cards; strip; workload } as _cell) =
  let engine = Engine.create () in
  let flashes =
    Array.init cards (fun _ ->
        Device.Flash.create
          (Device.Flash.config ~nbanks ~size_bytes:flash_bytes_per_card ()))
  in
  let dram = Device.Dram.create ~size_bytes:(4 * Units.mib) ~battery_backed:true () in
  let cfg = mgr_cfg () in
  (* Read-hot always mounts the array (even at one card) so the front
     cache is in play; erase-heavy at one card takes the plain
     single-manager path the equivalence check guards. *)
  let front = match workload with Read_hot -> 256 | Erase_heavy -> 0 in
  let arr =
    if cards > 1 || workload = Read_hot then
      Some
        (Storage.Array.create ~front_cache_blocks:front
           ~striping:(Storage.Striping.Round_robin { strip_blocks = strip })
           cfg ~engine ~flashes ~dram)
    else None
  in
  let store =
    match arr with
    | Some a -> Storage.Store.Striped a
    | None ->
      Storage.Store.Single (Storage.Manager.create cfg ~engine ~flash:flashes.(0) ~dram)
  in
  let tput, lat, _makespan_us = drive ~engine ~ops:(ops_of_store store) ~workload in
  (* Per-card occupancy straight off the probe registry: the managers label
     their busy summaries through Banks.probe_label, "storage.manager" for
     a direct mount and "storage.card<i>" behind an array.  Reported as
     each card's share of the array's total busy time — even shares mean
     the striping spread the load. *)
  let snap = Probe.snapshot () in
  let managers = Storage.Store.managers store in
  let busy =
    Array.map
      (fun m ->
        summary_sum snap
          (Storage.Banks.probe_label ?card:(Storage.Manager.card m) "busy_us"))
      managers
  in
  let total_busy = Array.fold_left ( +. ) 0.0 busy in
  let occ =
    Array.map (fun b -> if total_busy = 0.0 then 0.0 else b /. total_busy) busy
  in
  let wear_max =
    Array.map
      (fun m -> (Storage.Manager.wear_evenness m).Storage.Wear.max_erases)
      managers
  in
  let front_hits =
    match arr with Some a -> Storage.Array.front_cache_hits a | None -> 0
  in
  {
    p_tput_mb_s = tput;
    p_lat = lat;
    p_occ = occ;
    p_wear_max = wear_max;
    p_front_hits = front_hits;
  }

(* The store wrapper must add nothing: one card driven through
   [Store.Single] and through the bare manager API must produce the same
   spans, hence the same histogram and throughput. *)
let equivalence_ok () =
  let mk () =
    let engine = Engine.create () in
    let flash =
      Device.Flash.create
        (Device.Flash.config ~nbanks ~size_bytes:flash_bytes_per_card ())
    in
    let dram =
      Device.Dram.create ~size_bytes:(4 * Units.mib) ~battery_backed:true ()
    in
    (engine, Storage.Manager.create (mgr_cfg ()) ~engine ~flash ~dram)
  in
  let engine1, m1 = mk () in
  let t1, l1, _ = drive ~engine:engine1 ~ops:(ops_of_manager m1) ~workload:Erase_heavy in
  let engine2, m2 = mk () in
  let t2, l2, _ =
    drive ~engine:engine2
      ~ops:(ops_of_store (Storage.Store.Single m2))
      ~workload:Erase_heavy
  in
  t1 = t2 && Stat.Histogram.buckets l1 = Stat.Histogram.buckets l2

let cells =
  [
    { cards = 1; strip = 1; workload = Erase_heavy };
    { cards = 2; strip = 1; workload = Erase_heavy };
    { cards = 2; strip = 16; workload = Erase_heavy };
    { cards = 4; strip = 1; workload = Erase_heavy };
    { cards = 4; strip = 16; workload = Erase_heavy };
    { cards = 1; strip = 4; workload = Read_hot };
    { cards = 2; strip = 4; workload = Read_hot };
    { cards = 4; strip = 4; workload = Read_hot };
  ]

let run () =
  Common.section "E13: striped multi-card storage arrays";
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "aggregate read throughput vs cards (%d read streams, %d banks/card)"
           nstreams nbanks)
      ~columns:
        [
          ("workload", Table.Left);
          ("cards", Table.Right);
          ("strip", Table.Right);
          ("read MB/s", Table.Right);
          ("read p99 (us)", Table.Right);
          ("per-card busy share", Table.Left);
          ("wear max", Table.Right);
          ("front hits", Table.Right);
        ]
  in
  (* Each cell owns its engine/devices, so the sweep runs on the Domain
     pool; the equivalence pair rides along as one more item. *)
  let points = Pool.run_map (fun cell -> (cell, run_point cell)) cells in
  let equiv = equivalence_ok () in
  let tput_of want =
    List.fold_left
      (fun acc (c, p) -> if tag c = want then p.p_tput_mb_s else acc)
      nan points
  in
  let previous_workload = ref None in
  List.iter
    (fun (cell, p) ->
      if !previous_workload <> None && !previous_workload <> Some cell.workload then
        Table.add_rule t;
      previous_workload := Some cell.workload;
      let cell_tag = tag cell in
      Common.put_metric ("e13_tput_mb_s_" ^ cell_tag) p.p_tput_mb_s;
      Common.put_metric ("e13_p99_us_" ^ cell_tag) (Common.p99 p.p_lat);
      Array.iteri
        (fun i o -> Common.put_metric (Printf.sprintf "e13_occ_c%d_%s" i cell_tag) o)
        p.p_occ;
      Common.put_metric
        ("e13_wear_max_" ^ cell_tag)
        (float_of_int (Array.fold_left max 0 p.p_wear_max));
      if cell.workload = Read_hot then
        Common.put_metric ("e13_front_hits_" ^ cell_tag) (float_of_int p.p_front_hits);
      Table.add_row t
        [
          workload_name cell.workload;
          Table.cell_i cell.cards;
          Table.cell_i cell.strip;
          Table.cell_f ~decimals:2 p.p_tput_mb_s;
          Common.cell_us (Common.p99 p.p_lat);
          String.concat "/"
            (Array.to_list (Array.map (fun o -> Printf.sprintf "%.2f" o) p.p_occ));
          Table.cell_i (Array.fold_left max 0 p.p_wear_max);
          (if cell.workload = Read_hot then Table.cell_i p.p_front_hits else "-");
        ])
    points;
  Table.print t;
  let scaling = tput_of "4c_s16_erase" /. tput_of "1c_s1_erase" in
  Common.put_metric "e13_read_scaling_4v1" scaling;
  Common.put_metric "e13_cards1_equiv" (if equiv then 1.0 else 0.0);
  Common.note
    "erase-heavy read throughput at 4 cards is %.1fx one card (CI asserts >= 2x); \
     cards=1 through the store wrapper is %s to the bare manager."
    scaling
    (if equiv then "byte-identical" else "NOT IDENTICAL (bug)");
  Common.note
    "read-hot rows: the shared front cache serves the cross-card hot set at DRAM \
     speed, so throughput stops depending on the card count."
