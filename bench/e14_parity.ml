(* E14 — parity strips and degraded operation (extends E13's striped
   array with RAID-4/5-shaped redundancy).
   Shape to reproduce: parity buys survival at a write premium.  With
   parity on, every client write also updates its row's parity block on
   another card — the classic small-write penalty of two extra reads and
   one extra program — so blocks_flushed grows and the write p99 climbs.
   In exchange, a surprise card eject mid-run loses nothing: every block
   on the missing card reconstructs from the surviving row members, and a
   blank replacement card rebuilds back to full health in the background.

   The sweep is parity on/off x card count x workload; each cell reports
   flushed blocks (the penalty numerator), write p99, and — for parity
   cells — survival after a surprise eject (share of the working set
   still present and readable), buffered blocks dropped by the eject,
   and the background rebuild's wall-clock.  A machine-level run rides
   along to pin the degraded-equivalence claim at the file-system layer:
   the namespace and every file's readability must be identical before
   and during the degraded window, and again after the rebuild. *)
open Sim

let nbanks = 4
let flash_bytes_per_card = 2 * Units.mib
let block_bytes = 512
let strip_blocks = 4

type workload = Write_heavy | Read_mostly

let workload_name = function Write_heavy -> "write" | Read_mostly -> "read"

type cell = { cards : int; parity : bool; workload : workload }

let tag { cards; parity; workload } =
  Printf.sprintf "%dc_%s_%s" cards
    (if parity then "par" else "off")
    (workload_name workload)

let mgr_cfg () =
  {
    Storage.Manager.default_config with
    Storage.Manager.selector = Common.selector;
    buffer =
      {
        Storage.Write_buffer.capacity_blocks = 512;
        writeback_delay = Time.span_s 5.0;
        refresh_on_rewrite = false;
      };
  }

let mk_array { cards; parity; workload } =
  let engine = Engine.create () in
  let flashes =
    Array.init cards (fun _ ->
        Device.Flash.create
          (Device.Flash.config ~nbanks ~size_bytes:flash_bytes_per_card ()))
  in
  let dram = Device.Dram.create ~size_bytes:(4 * Units.mib) ~battery_backed:true () in
  let striping =
    if parity then Storage.Striping.Parity { strip_blocks; rotate = true }
    else Storage.Striping.Round_robin { strip_blocks }
  in
  let front = match workload with Read_mostly -> 128 | Write_heavy -> 0 in
  ( engine,
    Storage.Array.create ~front_cache_blocks:front ~striping (mgr_cfg ()) ~engine
      ~flashes ~dram )

(* Steady-state phase shared by every cell: a cold read set plus a churn
   set the writer rewrites, write latency measured per operation through
   its own completion cursor (writes are buffered, so the span is DRAM
   cost plus — under parity — the RMW delta reads). *)
let drive_steady ~engine ~a ~workload =
  let cold = Array.init 768 (fun _ -> Storage.Array.alloc a) in
  let churn = Array.init 384 (fun _ -> Storage.Array.alloc a) in
  Array.iter (Storage.Array.load_cold a) cold;
  Array.iter (Storage.Array.load_cold a) churn;
  Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 60.0));
  Storage.Array.reset_traffic a;
  let rounds = if Common.quick then 20 else 80 in
  let writes_per_round, reads_per_round =
    match workload with Write_heavy -> (64, 16) | Read_mostly -> (8, 64)
  in
  let wlat = Stat.Histogram.create () in
  let wcursor = ref (Engine.now engine) in
  let rcursor = ref (Engine.now engine) in
  let lcg s = ((s * 1103515245) + 12345) land 0x3FFFFFFF in
  let wstate = ref 4242 and rstate = ref 777 in
  for _round = 1 to rounds do
    for _ = 1 to writes_per_round do
      wstate := lcg !wstate;
      let b = churn.(!wstate mod Array.length churn) in
      let at = Time.max !wcursor (Engine.now engine) in
      let fin = Storage.Array.write_block_at a ~at b in
      Stat.Histogram.observe wlat (Time.span_to_us (Time.diff fin at));
      wcursor := fin
    done;
    ignore (Storage.Array.flush_all a);
    for _ = 1 to reads_per_round do
      rstate := lcg !rstate;
      let b = cold.(!rstate mod Array.length cold) in
      let at = Time.max !rcursor (Engine.now engine) in
      rcursor := Storage.Array.read_block_at a ~at b
    done;
    Engine.run_until engine (Time.max !wcursor !rcursor)
  done;
  (Array.append cold churn, wlat)

type point = {
  p_flushed : int;
  p_write_p99_us : float;
  p_parity_writes : int;
  (* Parity cells only; zeroes / nan elsewhere. *)
  p_survival : float;
  p_lost_buffered : int;
  p_rebuild_ms : float;
  p_rebuilt : int;
}

(* Parity cells continue past steady state into the acceptance story:
   surprise-eject a card, count what the client can still see, push a
   round of degraded writes through the parity fold, then reinsert a
   blank card and clock the background rebuild. *)
let drive_eject_rebuild ~engine ~a ~live =
  let victim = 1 in
  let report = Storage.Array.eject_card ~surprise:true a ~card:victim in
  let present =
    Array.fold_left
      (fun acc b -> if Storage.Array.block_exists a b then acc + 1 else acc)
      0 live
  in
  (* Touch a sample of the survivors so reconstruction actually runs. *)
  let rcursor = ref (Engine.now engine) in
  for i = 0 to 63 do
    let b = live.(i * 17 mod Array.length live) in
    rcursor := Storage.Array.read_block_at a ~at:!rcursor b
  done;
  let wcursor = ref !rcursor in
  for i = 0 to 63 do
    wcursor := Storage.Array.write_block_at a ~at:!wcursor live.(i)
  done;
  ignore (Storage.Array.flush_all a);
  Engine.run_until engine !wcursor;
  Storage.Array.reinsert_card a ~card:victim;
  let tries = ref 0 in
  while Storage.Array.health a <> `Healthy && !tries < 600 do
    Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 0.1));
    incr tries
  done;
  let ps = Storage.Array.parity_stats a in
  let rebuild_ms =
    match ps.Storage.Array.last_rebuild with
    | Some span -> Time.span_to_us span /. 1000.0
    | None -> nan
  in
  ( float_of_int present /. float_of_int (Array.length live),
    report.Storage.Array.lost_buffered,
    rebuild_ms,
    ps.Storage.Array.rebuilt_blocks )

let run_point ({ parity; _ } as cell) =
  let engine, a = mk_array cell in
  let live, wlat = drive_steady ~engine ~a ~workload:cell.workload in
  let stats = Storage.Array.stats a in
  let ps = Storage.Array.parity_stats a in
  let survival, lost_buffered, rebuild_ms, rebuilt =
    if parity then drive_eject_rebuild ~engine ~a ~live else (nan, 0, nan, 0)
  in
  {
    p_flushed = stats.Storage.Manager.blocks_flushed;
    p_write_p99_us = Common.p99 wlat;
    p_parity_writes = ps.Storage.Array.parity_writes;
    p_survival = survival;
    p_lost_buffered = lost_buffered;
    p_rebuild_ms = rebuild_ms;
    p_rebuilt = rebuilt;
  }

(* The file-system-level degraded-equivalence pin the CI stanza asserts:
   a 3-card parity machine loses a card without warning mid-life; the
   namespace and every file's contents must read back identically while
   degraded, and the reinserted card must rebuild to a healthy array. *)
let degraded_fs_equiv () =
  let cfg =
    Ssmc.Config.solid_state ~flash_mb:2 ~cards:3
      ~striping:(Storage.Striping.Parity { strip_blocks; rotate = true })
      ~front_cache_blocks:32 ~seed:7 ()
  in
  let machine = Ssmc.Machine.create cfg in
  let memfs = Option.get (Ssmc.Machine.memfs machine) in
  let engine = Ssmc.Machine.engine machine in
  (match Fs.Memfs.mkdir memfs "/data" with
  | Ok _ | Error Fs.Fs_error.Eexist -> ()
  | Error _ -> failwith "e14: mkdir /data");
  for i = 0 to 23 do
    let path = Printf.sprintf "/data/f%d" i in
    (match Fs.Memfs.create memfs path with
    | Ok _ | Error Fs.Fs_error.Eexist -> ()
    | Error _ -> failwith "e14: create");
    match Fs.Memfs.write memfs path ~offset:0 ~bytes:2048 with
    | Ok _ -> ()
    | Error _ -> failwith "e14: write"
  done;
  Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 1.0));
  let namespace () = List.map (fun (p, s, _) -> (p, s)) (Fs.Memfs.enumerate memfs) in
  let all_readable () =
    List.for_all
      (fun (path, size, _) ->
        match Fs.Memfs.read memfs path ~offset:0 ~bytes:size with
        | Ok _ -> true
        | Error _ -> false)
      (Fs.Memfs.enumerate memfs)
  in
  let fsck () = Fs.Memfs.check memfs = Ok () in
  let before = namespace () in
  let pre_ok = all_readable () && fsck () in
  let o =
    Ssmc.Machine.inject_fault machine (Fault.Card_eject { card = 1; surprise = true })
  in
  let degraded_ok =
    o.Ssmc.Machine.survived_by = `Parity
    && o.Ssmc.Machine.blocks_lost = 0
    && (not o.Ssmc.Machine.cold_restart)
    && namespace () = before
    && all_readable () && fsck ()
  in
  ignore (Ssmc.Machine.inject_fault machine (Fault.Card_reinsert { card = 1 }));
  Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 10.0));
  let healthy_again =
    match Ssmc.Machine.store machine with
    | Some s -> Storage.Store.health s = `Healthy
    | None -> false
  in
  let after_ok = namespace () = before && all_readable () && fsck () in
  pre_ok && degraded_ok && healthy_again && after_ok

let cells =
  [
    { cards = 2; parity = false; workload = Write_heavy };
    { cards = 2; parity = true; workload = Write_heavy };
    { cards = 3; parity = false; workload = Write_heavy };
    { cards = 3; parity = true; workload = Write_heavy };
    { cards = 4; parity = false; workload = Write_heavy };
    { cards = 4; parity = true; workload = Write_heavy };
    { cards = 3; parity = false; workload = Read_mostly };
    { cards = 3; parity = true; workload = Read_mostly };
  ]

let run () =
  Common.section "E14: parity strips and degraded operation";
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "parity write penalty vs survival (strip=%d blocks, %d banks/card)"
           strip_blocks nbanks)
      ~columns:
        [
          ("workload", Table.Left);
          ("cards", Table.Right);
          ("parity", Table.Left);
          ("flushed", Table.Right);
          ("write p99 (us)", Table.Right);
          ("parity writes", Table.Right);
          ("survival", Table.Right);
          ("lost buf", Table.Right);
          ("rebuild (ms)", Table.Right);
          ("rebuilt", Table.Right);
        ]
  in
  let points = Pool.run_map (fun cell -> (cell, run_point cell)) cells in
  let fs_equiv = degraded_fs_equiv () in
  let find want =
    List.fold_left (fun acc (c, p) -> if tag c = want then Some p else acc) None points
  in
  let previous_workload = ref None in
  List.iter
    (fun (cell, p) ->
      if !previous_workload <> None && !previous_workload <> Some cell.workload then
        Table.add_rule t;
      previous_workload := Some cell.workload;
      let cell_tag = tag cell in
      Common.put_metric ("e14_flushed_" ^ cell_tag) (float_of_int p.p_flushed);
      Common.put_metric ("e14_write_p99_us_" ^ cell_tag) p.p_write_p99_us;
      if cell.parity then begin
        Common.put_metric ("e14_parity_writes_" ^ cell_tag)
          (float_of_int p.p_parity_writes);
        Common.put_metric ("e14_survival_" ^ cell_tag) p.p_survival;
        Common.put_metric ("e14_lost_buffered_" ^ cell_tag)
          (float_of_int p.p_lost_buffered);
        Common.put_metric ("e14_rebuild_ms_" ^ cell_tag) p.p_rebuild_ms;
        Common.put_metric ("e14_rebuilt_" ^ cell_tag) (float_of_int p.p_rebuilt)
      end;
      Table.add_row t
        [
          workload_name cell.workload;
          Table.cell_i cell.cards;
          (if cell.parity then "on" else "off");
          Table.cell_i p.p_flushed;
          Common.cell_us p.p_write_p99_us;
          (if cell.parity then Table.cell_i p.p_parity_writes else "-");
          (if cell.parity then Printf.sprintf "%.3f" p.p_survival else "-");
          (if cell.parity then Table.cell_i p.p_lost_buffered else "-");
          (if cell.parity then Table.cell_f ~decimals:1 p.p_rebuild_ms else "-");
          (if cell.parity then Table.cell_i p.p_rebuilt else "-");
        ])
    points;
  Table.print t;
  let flushed want =
    match find want with Some p -> float_of_int p.p_flushed | None -> nan
  in
  let penalty = flushed "3c_par_write" /. flushed "3c_off_write" in
  let survival =
    match find "3c_par_write" with Some p -> p.p_survival | None -> nan
  in
  Common.put_metric "e14_flush_penalty_3c" penalty;
  Common.put_metric "e14_degraded_fs_equiv" (if fs_equiv then 1.0 else 0.0);
  Common.note
    "3-card write-heavy: parity flushes %.2fx the blocks of the plain stripe (the \
     RAID small-write premium), and a surprise eject keeps %.0f%% of the working \
     set readable (CI asserts survival = 1 and penalty > 1)."
    penalty (100.0 *. survival);
  Common.note
    "machine-level degraded equivalence (namespace + every file's contents \
     identical before, during, and after the degraded window): %s."
    (if fs_equiv then "holds" else "VIOLATED (bug)")
